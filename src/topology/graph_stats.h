// Structural statistics of AS graphs: degree distributions (the "extreme
// skew in AS connectivity" the deployment strategy is designed to exploit,
// Section 4), customer-cone sizes, and AS-path-length profiles. Used by the
// topology test-suite to assert that the synthetic generator reproduces the
// empirical shape the paper's dynamics depend on, and by the Table 2–4
// benches.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/histogram.h"
#include "topology/as_graph.h"

namespace sbgp::topo {

struct DegreeStats {
  stats::IntHistogram histogram;
  double mean = 0.0;
  std::size_t max = 0;
  std::size_t median = 0;
  /// Fraction of all edge endpoints incident to the top 1% of nodes —
  /// a direct skew measure.
  double top1pct_endpoint_share = 0.0;
  /// Continuous MLE power-law exponent alpha fitted to degrees >= d_min
  /// (Clauset-Shalizi-Newman estimator with fixed d_min).
  double powerlaw_alpha = 0.0;
};

[[nodiscard]] DegreeStats degree_stats(const AsGraph& graph, std::size_t d_min = 2);

/// Customer-cone size (transitive customers + self) of every AS. The cone
/// of a Tier-1 covers most of the graph; stubs have cone 1.
[[nodiscard]] std::vector<std::size_t> customer_cone_sizes(const AsGraph& graph);

}  // namespace sbgp::topo
