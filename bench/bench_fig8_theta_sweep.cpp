// Figure 8: fraction of (a) ASes and (b) ISPs that are secure at termination
// as the deployment threshold theta sweeps, for the paper's early-adopter
// sets: none, top-k degree ISPs, the five CPs, CPs + top-5, and random ISPs.
#include "bench_common.h"
#include "stats/table.h"

int main(int argc, char** argv) {
  using namespace sbgp;
  const auto opt = bench::parse_options(argc, argv, /*default_nodes=*/1200);
  bench::print_header("Figure 8 - theta sweep x early-adopter sets", opt);

  auto net = bench::make_internet(opt);
  const auto& g = net.graph;
  const double n_ases = static_cast<double>(g.num_nodes());
  const double n_isps = static_cast<double>(g.num_isps());

  struct Set {
    std::string name;
    std::vector<topo::AsId> adopters;
  };
  // The paper's 36K-AS graph uses sets of 5..200 ISPs; scale k to our size.
  const std::size_t big_k = std::max<std::size_t>(10, g.num_isps() / 8);
  std::vector<Set> sets;
  sets.push_back({"none", core::select_adopters(net, core::AdopterStrategy::None, 0, 1)});
  sets.push_back({"top-5 ISPs",
                  core::select_adopters(net, core::AdopterStrategy::TopDegreeIsps, 5, 1)});
  sets.push_back({"top-" + std::to_string(big_k) + " ISPs",
                  core::select_adopters(net, core::AdopterStrategy::TopDegreeIsps, big_k, 1)});
  sets.push_back({"5 CPs",
                  core::select_adopters(net, core::AdopterStrategy::ContentProviders, 0, 1)});
  sets.push_back({"CPs + top-5",
                  core::select_adopters(net, core::AdopterStrategy::CpsPlusTopIsps, 5, 1)});
  sets.push_back({"random-" + std::to_string(big_k),
                  core::select_adopters(net, core::AdopterStrategy::RandomIsps, big_k, 7)});

  const std::vector<double> thetas{0.0, 0.05, 0.10, 0.20, 0.35, 0.50, 1.00};

  std::vector<std::string> headers{"theta"};
  for (const auto& s : sets) headers.push_back(s.name);
  stats::Table ases(headers), isps(headers);

  for (const double theta : thetas) {
    ases.begin_row();
    isps.begin_row();
    ases.add(theta, 2);
    isps.add(theta, 2);
    for (const auto& s : sets) {
      core::SimConfig cfg = bench::case_study_config(opt);
      cfg.theta = theta;
      core::DeploymentSimulator sim(g, cfg);
      const auto result =
          sim.run(core::DeploymentState::initial(g, s.adopters));
      ases.add_percent(
          static_cast<double>(result.final_state.num_secure()) / n_ases, 1);
      isps.add_percent(
          static_cast<double>(result.final_state.num_secure_of_class(
              g, topo::AsClass::Isp)) /
              n_isps,
          1);
    }
  }

  std::cout << "(a) fraction of ASes secure at termination\n";
  ases.print(std::cout);
  bench::print_paper_note(
      "for theta < 5% nearly every adopter set transitions ~85% of ASes; "
      "theta >= 10% needs high-degree adopters; top-200 at theta=50% still "
      "converts 53% of ASes.");
  std::cout << "\n(b) fraction of ISPs secure at termination\n";
  isps.print(std::cout);
  bench::print_paper_note(
      "at high theta very few ISPs deploy: most secure ASes are simplex "
      "stubs upgraded by their providers (96% at theta=50%, top-200 set).");
  return 0;
}
