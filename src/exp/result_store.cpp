#include "exp/result_store.h"

#include <algorithm>
#include <sstream>

namespace sbgp::exp {

Json JobRecord::to_json() const {
  Json j = Json::object();
  j.set("spec_hash", Json::string(std::to_string(spec_hash)));
  j.set("job_id", Json::number(static_cast<std::uint64_t>(job_id)));
  j.set("job_key", Json::string(job_key));
  j.set("status", Json::string(status));
  if (!error.empty()) j.set("error", Json::string(error));
  j.set("attempts", Json::number(static_cast<std::uint64_t>(attempts)));
  j.set("wall_ms", Json::number(wall_ms));
  j.set("outcome", Json::string(outcome));
  j.set("rounds", Json::number(static_cast<std::uint64_t>(rounds)));
  j.set("secure_ases", Json::number(static_cast<std::uint64_t>(secure_ases)));
  j.set("secure_isps", Json::number(static_cast<std::uint64_t>(secure_isps)));
  j.set("num_ases", Json::number(static_cast<std::uint64_t>(num_ases)));
  j.set("num_isps", Json::number(static_cast<std::uint64_t>(num_isps)));
  j.set("frac_ases", Json::number(frac_ases));
  j.set("frac_isps", Json::number(frac_isps));
  if (!scenario_key.empty()) {
    j.set("scenario_key", Json::string(scenario_key));
    j.set("scn_pairs", Json::number(static_cast<std::uint64_t>(scn_pairs)));
    j.set("scn_mean_fooled", Json::number(scn_mean_fooled));
    j.set("scn_mean_fooled_weight", Json::number(scn_mean_fooled_weight));
    j.set("scn_p90_fooled", Json::number(scn_p90_fooled));
    j.set("scn_disconnected", Json::number(scn_disconnected));
    j.set("scn_nonconverged",
          Json::number(static_cast<std::uint64_t>(scn_nonconverged)));
    if (scn_has_baseline) {
      j.set("scn_baseline_fooled", Json::number(scn_baseline_fooled));
    }
  }
  return j;
}

JobRecord JobRecord::from_json(const Json& j) {
  JobRecord r;
  // spec_hash is serialised as a decimal string: 64-bit hashes exceed the
  // 2^53 exact-integer range of JSON numbers.
  const Json* hash = j.find("spec_hash");
  if (hash == nullptr) throw JsonError("record missing spec_hash");
  r.spec_hash = std::stoull(hash->as_string());
  const Json* id = j.find("job_id");
  if (id == nullptr) throw JsonError("record missing job_id");
  r.job_id = static_cast<std::size_t>(id->as_u64());
  const Json* status = j.find("status");
  if (status == nullptr) throw JsonError("record missing status");
  r.status = status->as_string();
  if (const Json* v = j.find("job_key")) r.job_key = v->as_string();
  if (const Json* v = j.find("error")) r.error = v->as_string();
  if (const Json* v = j.find("attempts")) r.attempts = static_cast<int>(v->as_u64());
  if (const Json* v = j.find("wall_ms")) r.wall_ms = v->as_double();
  if (const Json* v = j.find("outcome")) r.outcome = v->as_string();
  if (const Json* v = j.find("rounds")) r.rounds = static_cast<std::size_t>(v->as_u64());
  if (const Json* v = j.find("secure_ases")) r.secure_ases = static_cast<std::size_t>(v->as_u64());
  if (const Json* v = j.find("secure_isps")) r.secure_isps = static_cast<std::size_t>(v->as_u64());
  if (const Json* v = j.find("num_ases")) r.num_ases = static_cast<std::size_t>(v->as_u64());
  if (const Json* v = j.find("num_isps")) r.num_isps = static_cast<std::size_t>(v->as_u64());
  if (const Json* v = j.find("frac_ases")) r.frac_ases = v->as_double();
  if (const Json* v = j.find("frac_isps")) r.frac_isps = v->as_double();
  if (const Json* v = j.find("scenario_key")) r.scenario_key = v->as_string();
  if (const Json* v = j.find("scn_pairs")) {
    r.scn_pairs = static_cast<std::size_t>(v->as_u64());
  }
  if (const Json* v = j.find("scn_mean_fooled")) r.scn_mean_fooled = v->as_double();
  if (const Json* v = j.find("scn_mean_fooled_weight")) {
    r.scn_mean_fooled_weight = v->as_double();
  }
  if (const Json* v = j.find("scn_p90_fooled")) r.scn_p90_fooled = v->as_double();
  if (const Json* v = j.find("scn_disconnected")) r.scn_disconnected = v->as_u64();
  if (const Json* v = j.find("scn_nonconverged")) {
    r.scn_nonconverged = static_cast<std::size_t>(v->as_u64());
  }
  if (const Json* v = j.find("scn_baseline_fooled")) {
    r.scn_has_baseline = true;
    r.scn_baseline_fooled = v->as_double();
  }
  return r;
}

std::string JobRecord::canonical_row() const {
  std::ostringstream os;
  os << job_id << ',' << job_key << ',' << status << ',' << outcome << ','
     << rounds << ',' << secure_ases << ',' << secure_isps << ',' << num_ases
     << ',' << num_isps << ',' << format_double(frac_ases) << ','
     << format_double(frac_isps);
  if (!scenario_key.empty()) {
    os << ',' << scenario_key << ',' << scn_pairs << ','
       << format_double(scn_mean_fooled) << ','
       << format_double(scn_mean_fooled_weight) << ','
       << format_double(scn_p90_fooled) << ',' << scn_disconnected << ','
       << scn_nonconverged;
    if (scn_has_baseline) os << ',' << format_double(scn_baseline_fooled);
  }
  return os.str();
}

ResultStore::ResultStore(std::string path) : path_(std::move(path)) {
  // If a previous sweep was killed mid-write the file can end without a
  // newline; appending straight after would corrupt the first new record.
  // Start on a fresh line in that case (the loader already skips the
  // truncated one).
  bool needs_newline = false;
  {
    std::ifstream in(path_, std::ios::binary | std::ios::ate);
    if (in && in.tellg() > 0) {
      in.seekg(-1, std::ios::end);
      char last = '\n';
      in.get(last);
      needs_newline = last != '\n';
    }
  }
  out_.open(path_, std::ios::app);
  if (!out_) throw JsonError("cannot open result store '" + path_ + "'");
  if (needs_newline) out_ << '\n';
}

void ResultStore::append(const JobRecord& r) {
  const std::string line = r.to_json().dump();
  std::scoped_lock lock(mutex_);
  out_ << line << '\n';
  out_.flush();
}

std::vector<JobRecord> ResultStore::load(const std::string& path,
                                         std::size_t* skipped_lines) {
  std::vector<JobRecord> records;
  if (skipped_lines != nullptr) *skipped_lines = 0;
  std::ifstream in(path);
  if (!in) return records;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    try {
      records.push_back(JobRecord::from_json(Json::parse(line)));
    } catch (const JsonError&) {
      if (skipped_lines != nullptr) ++*skipped_lines;
    }
  }
  return records;
}

std::unordered_map<std::size_t, JobRecord> ResultStore::latest_by_job(
    const std::vector<JobRecord>& records, std::uint64_t spec_hash) {
  std::unordered_map<std::size_t, JobRecord> latest;
  for (const JobRecord& r : records) {
    if (r.spec_hash != spec_hash) continue;
    latest[r.job_id] = r;  // file order: later records win
  }
  return latest;
}

StoreMerge merge_stores(const std::vector<std::string>& paths,
                        const std::uint64_t* spec_hash) {
  StoreMerge m;
  // Key → index into m.records; records is compacted + sorted at the end.
  std::unordered_map<std::uint64_t, std::unordered_map<std::size_t, std::size_t>>
      index;
  for (const std::string& path : paths) {
    std::size_t skipped = 0;
    for (JobRecord& r : ResultStore::load(path, &skipped)) {
      if (spec_hash != nullptr && r.spec_hash != *spec_hash) continue;
      ++m.inputs;
      auto& per_spec = index[r.spec_hash];
      const auto it = per_spec.find(r.job_id);
      if (it == per_spec.end()) {
        per_spec.emplace(r.job_id, m.records.size());
        m.records.push_back(std::move(r));
        continue;
      }
      ++m.duplicates;
      JobRecord& held = m.records[it->second];
      if (held.status == "ok") {
        if (r.status == "ok") {
          // A re-executed job: the deterministic payload must match bit for
          // bit. Keep the incumbent either way so the outcome does not
          // depend on store read order.
          ++m.reexecuted_ok;
          if (held.canonical_row() != r.canonical_row()) {
            ++m.reconcile_mismatches;
          }
        }
        // ok incumbent never loses to failed/timeout.
      } else if (r.status == "ok") {
        held = std::move(r);  // first success supersedes any failure
      } else {
        held = std::move(r);  // newer failure detail wins
      }
    }
    m.skipped_lines += skipped;
  }
  std::sort(m.records.begin(), m.records.end(),
            [](const JobRecord& a, const JobRecord& b) {
              return a.spec_hash != b.spec_hash ? a.spec_hash < b.spec_hash
                                                : a.job_id < b.job_id;
            });
  return m;
}

std::unordered_set<std::size_t> ResultStore::completed_ok(
    const std::vector<JobRecord>& records, std::uint64_t spec_hash) {
  std::unordered_set<std::size_t> done;
  for (const auto& [id, r] : latest_by_job(records, spec_hash)) {
    if (r.status == "ok") done.insert(id);
  }
  return done;
}

}  // namespace sbgp::exp
