// Performance bench for the rt::TreeDelta frontier projection kernel:
// projection-dominated best-response rounds with the kernel on vs off
// (SimConfig::projection_delta), identical results asserted, end-to-end
// wall-clock speedup reported per size. Acceptance bar: >= 3x at |V| = 10K.
//
// The workload is built to be projection-heavy, because that is the regime
// the kernel exists for (and the regime the paper's cluster burned its CPU
// on): the INCOMING utility model with turn-off allowed, seeded by a block
// of top-degree ISPs + the CPs. Under Eq. 2 with turn-off, every secure ISP
// in a destination's P-set is an off-candidate and every insecure ISP in P
// is an on-candidate — so each evaluated destination projects dozens-to-
// hundreds of hypothetical flips against one base tree, which is exactly
// the fan-out the delta kernel amortizes its bind() over. Rounds are capped
// (--max-rounds) to bound the full-rebuild baseline's runtime; both engines
// run the same cap and must agree bitwise.
//
// A --check-incremental pass (delta kernel ON) then re-verifies every
// cached bundle against lockstep from-scratch bundles at the two smaller
// sizes: the fresh comparison bundles use unsorted RIBs, which the delta
// kernel refuses by contract, so the checker is a genuinely independent
// recomputation and any overlay bug is a hard divergence, not a silent
// agreement of the code with itself.
//
//   bench_projection_delta [--seed S] [--threads T] [--x F] [--reps K]
//                          [--theta X] [--top K] [--max-rounds R]
//                          [--json-out FILE]
#include <chrono>
#include <cstring>
#include <iomanip>
#include <vector>

#include "bench_common.h"
#include "core/early_adopters.h"
#include "stats/table.h"

namespace {

using Clock = std::chrono::steady_clock;

double run_seconds(const sbgp::topo::Internet& net,
                   const sbgp::core::SimConfig& cfg,
                   const sbgp::core::DeploymentState& init, int reps,
                   sbgp::core::SimResult& out) {
  double best = 1e100;  // best-of-reps: robust against scheduler noise
  for (int r = 0; r < reps; ++r) {
    sbgp::core::DeploymentSimulator sim(net.graph, cfg);
    const auto t0 = Clock::now();
    out = sim.run(init);
    const auto t1 = Clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

bool bitwise_same(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

struct SizeReport {
  std::uint32_t nodes = 0;
  double full_s = 0.0;
  double delta_s = 0.0;
  double speedup = 0.0;
  bool identical = false;
  std::size_t proj_delta = 0;
  std::size_t proj_full = 0;
  std::size_t nodes_touched = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace sbgp;
  int reps = 1;  // the 10K full-rebuild baseline alone runs ~half a minute
  double theta = 0.05;
  std::size_t top = 10;
  std::size_t max_rounds = 2;
  std::vector<char*> args{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--reps" && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::string(argv[i]) == "--theta" && i + 1 < argc) {
      theta = std::atof(argv[++i]);
    } else if (std::string(argv[i]) == "--top" && i + 1 < argc) {
      top = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::string(argv[i]) == "--max-rounds" && i + 1 < argc) {
      max_rounds = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else {
      args.push_back(argv[i]);
    }
  }
  auto opt = bench::parse_options(static_cast<int>(args.size()), args.data());
  bench::print_header("perf - frontier-delta projection kernel", opt);

  const std::uint32_t sizes[] = {1000, 3000, 10000};
  std::vector<SizeReport> reports;
  bool all_identical = true;
  std::size_t divergences = 0;

  for (const std::uint32_t nodes : sizes) {
    bench::Options sized = opt;
    sized.nodes = nodes;
    auto net = bench::make_internet(sized);
    auto adopters = core::select_adopters(
        net, core::AdopterStrategy::TopDegreeIsps, top, /*seed=*/1);
    for (const auto cp : net.cps) adopters.push_back(cp);
    const auto init = core::DeploymentState::initial(net.graph, adopters);

    core::SimConfig cfg;
    cfg.model = core::UtilityModel::Incoming;
    cfg.theta = theta;
    cfg.threads = opt.threads;
    cfg.allow_turn_off = true;
    cfg.max_rounds = max_rounds;

    SizeReport rep;
    rep.nodes = nodes;
    core::SimResult full, fast;
    cfg.projection_delta = false;
    rep.full_s = run_seconds(net, cfg, init, reps, full);
    cfg.projection_delta = true;
    rep.delta_s = run_seconds(net, cfg, init, reps, fast);
    rep.speedup = rep.delta_s > 0 ? rep.full_s / rep.delta_s : 0.0;

    // Bitwise-identical cascades, not just close ones: outcome, round
    // trajectory, final flags, and final utilities compared exactly.
    rep.identical = full.outcome == fast.outcome &&
                    full.rounds_run() == fast.rounds_run() &&
                    full.final_state.flags() == fast.final_state.flags() &&
                    bitwise_same(full.final_utility, fast.final_utility);
    all_identical = all_identical && rep.identical;

    for (const auto& r : fast.rounds) {
      rep.proj_delta += r.proj_delta_applied;
      rep.proj_full += r.proj_full_fallback;
      rep.nodes_touched += r.proj_nodes_touched;
    }
    // The full-rebuild baseline must not have taken the delta path at all.
    for (const auto& r : full.rounds) {
      if (r.proj_delta_applied != 0) {
        std::cout << "ERROR: baseline run applied the delta kernel\n";
        all_identical = false;
      }
    }
    reports.push_back(rep);

    // Differential pass, smaller sizes only (check mode recomputes every
    // destination from scratch every round — at 10K that is minutes of
    // redundant verification the two smaller sizes already provide).
    if (nodes <= 3000) {
      cfg.check_incremental = true;
      try {
        core::DeploymentSimulator checked(net.graph, cfg);
        (void)checked.run(init);
      } catch (const core::IncrementalDivergence& e) {
        ++divergences;
        std::cout << "DIVERGENCE at " << nodes << ": " << e.what() << "\n";
      }
      cfg.check_incremental = false;
    }
  }

  stats::Table t({"|V|", "full-rebuild (s)", "delta (s)", "speedup",
                  "delta applied", "full fallback", "hit rate (%)",
                  "avg touched"});
  for (const auto& r : reports) {
    const std::size_t total = r.proj_delta + r.proj_full;
    t.begin_row();
    t.add(static_cast<std::size_t>(r.nodes));
    t.add(r.full_s);
    t.add(r.delta_s);
    t.add(r.speedup);
    t.add(r.proj_delta);
    t.add(r.proj_full);
    t.add(total > 0 ? 100.0 * static_cast<double>(r.proj_delta) /
                          static_cast<double>(total)
                    : 0.0);
    t.add(r.proj_delta > 0 ? static_cast<double>(r.nodes_touched) /
                                 static_cast<double>(r.proj_delta)
                           : 0.0);
  }
  t.print(std::cout);

  std::cout << std::fixed << std::setprecision(2)
            << "\nresults identical:  " << (all_identical ? "yes" : "NO")
            << "\ndivergences (check-incremental): " << divergences << "\n";
  bench::print_paper_note(
      "the per-candidate flip evaluation is the O(N^3) term that forced the "
      "paper onto a 200-node DryadLINQ cluster; the frontier kernel turns "
      "each flip into an O(affected) overlay of the base tree.");

  {
    bench::JsonOut json(opt);
    for (const auto& r : reports) {
      const std::string base =
          "projection_delta/" + std::to_string(r.nodes) + "/";
      json.add(base + "full_rebuild", r.full_s, "s");
      json.add(base + "delta_kernel", r.delta_s, "s");
      json.add(base + "speedup", r.speedup, "x");
      const std::size_t total = r.proj_delta + r.proj_full;
      json.add(base + "delta_hit_rate",
               total > 0 ? 100.0 * static_cast<double>(r.proj_delta) /
                               static_cast<double>(total)
                         : 0.0,
               "%");
    }
  }

  if (!all_identical || divergences != 0) return 1;
  // Hard acceptance gate: >= 3x end-to-end at |V| = 10K.
  const double gate = reports.back().speedup;
  std::cout << (gate >= 3.0 ? "PASS" : "FAIL") << ": 10K speedup "
            << std::setprecision(2) << gate << "x (gate 3x)\n";
  return gate >= 3.0 ? 0 : 1;
}
