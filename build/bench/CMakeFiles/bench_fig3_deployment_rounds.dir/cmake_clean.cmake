file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_deployment_rounds.dir/bench_fig3_deployment_rounds.cpp.o"
  "CMakeFiles/bench_fig3_deployment_rounds.dir/bench_fig3_deployment_rounds.cpp.o.d"
  "bench_fig3_deployment_rounds"
  "bench_fig3_deployment_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_deployment_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
