// The labelled AS graph of Section 3.1: nodes are ASes, edges carry the
// standard Gao–Rexford business relationships (customer-provider or
// peer-to-peer), nodes carry traffic weights and a class (stub / ISP /
// content provider).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace sbgp::topo {

/// Dense internal AS identifier, 0..num_nodes()-1.
using AsId = std::uint32_t;

/// Sentinel for "no AS".
inline constexpr AsId kNoAs = std::numeric_limits<AsId>::max();

/// The relationship of a neighbour *to this node*:
///  - Customer: the neighbour pays this node for transit.
///  - Peer:     settlement-free peering.
///  - Provider: this node pays the neighbour for transit.
enum class Link : std::uint8_t { Customer = 0, Peer = 1, Provider = 2 };

/// Returns the relationship as seen from the other endpoint.
[[nodiscard]] constexpr Link reverse(Link link) {
  switch (link) {
    case Link::Customer: return Link::Provider;
    case Link::Provider: return Link::Customer;
    case Link::Peer: return Link::Peer;
  }
  return Link::Peer;
}

/// AS classification per Section 3.1. Stubs have no customers and are not
/// content providers; ISPs are the remaining transit-providing ASes; content
/// providers are designated explicitly (Google/Facebook/... in the paper).
enum class AsClass : std::uint8_t { Stub = 0, Isp = 1, ContentProvider = 2 };

[[nodiscard]] const char* to_string(AsClass c);
[[nodiscard]] const char* to_string(Link l);

/// Membership test on a sorted id span — the one shared binary search used
/// by every sorted-adjacency lookup (link_between, the SecurityView simplex
/// check, LinkSet::contains, ...). Branchless: the halving step updates the
/// base pointer with a conditional move instead of branching, so the scan
/// loops that call this per candidate never pay a misprediction.
[[nodiscard]] inline bool sorted_contains(std::span<const AsId> v, AsId x) {
  const AsId* base = v.data();
  std::size_t len = v.size();
  if (len == 0) return false;
  while (len > 1) {
    const std::size_t half = len / 2;
    base += (base[half - 1] < x) ? half : 0;
    len -= half;
  }
  return *base == x;
}

/// One post-finalize topology mutation (see AsGraph::apply_delta). Endpoint
/// fields are dense ids; AddStub introduces a new node and refers to it by
/// external AS number only (its dense id is assigned on application and
/// reported in TopoPatchStats::new_nodes).
struct TopoOp {
  enum class Kind : std::uint8_t {
    AddCustomerProvider,  ///< a = provider, b = customer
    AddPeer,              ///< settlement-free a -- b
    RemoveEdge,           ///< drop the a -- b edge, whatever its relationship
    SetRelationship,      ///< re-label an existing a -- b edge to `rel`
    AddStub,              ///< new stub AS `asn`, homed on `providers`
  };
  Kind kind = Kind::RemoveEdge;
  AsId a = kNoAs;
  AsId b = kNoAs;
  /// SetRelationship only: the new relationship of `b` as seen from `a`
  /// (Customer = b becomes a's customer, Provider = b becomes a's provider).
  Link rel = Link::Peer;
  std::uint32_t asn = 0;        ///< AddStub: external AS number (must be new)
  std::vector<AsId> providers;  ///< AddStub: the new stub's providers
};

/// A batch of TopoOps, applied strictly in order (each op validates against
/// the graph as left by its predecessors).
struct TopoDelta {
  std::vector<TopoOp> ops;
};

/// What a post-finalize patch did, for invalidation layers and telemetry.
struct TopoPatchStats {
  /// Adjacency rows whose segments were rebuilt and re-sorted (untouched
  /// rows are streamed into the new CSR slab verbatim).
  std::size_t rows_touched = 0;
  /// The touched-rows budget was exceeded at least once: every row of the
  /// slab was re-gathered and re-sorted (same bytes, full-rebuild cost) —
  /// the same bail-out contract as rt::TreeDelta.
  bool full_rebuild = false;
  std::vector<AsId> touched;        ///< nodes whose adjacency changed
  std::vector<AsId> class_changed;  ///< nodes that crossed Stub <-> Isp
  std::vector<AsId> new_nodes;      ///< dense ids assigned by AddStub ops

  void merge(const TopoPatchStats& o);
};

/// Mutable AS-level topology. Construction: `add_as` for every node, then
/// `add_customer_provider` / `add_peer` edges, then `finalize()` (which
/// classifies nodes and freezes adjacency order). Accessors require a
/// finalized graph. After finalize(), the only supported mutations are the
/// declarative `apply_op` / `apply_delta` CSR patches below.
///
/// Storage: during construction edges live in per-node vectors; finalize()
/// compacts them into one CSR `adj_` array holding every node's neighbours
/// as contiguous sorted [customers | peers | providers] segments and drops
/// the build-time vectors. The adjacency accessors are spans into that
/// single array, so a whole-graph scan (the RIB BFS phases, the routing-tree
/// candidate walks) streams one allocation instead of pointer-chasing
/// 3·N heap vectors.
class AsGraph {
 public:
  AsGraph() = default;

  /// Adds an AS with external AS number `asn` (display-only label; may be
  /// any value but must be unique) and returns its dense id.
  AsId add_as(std::uint32_t asn);

  /// Adds `count` ASes with consecutive synthetic AS numbers; returns the
  /// id of the first.
  AsId add_many(std::uint32_t count);

  /// Declares `provider` to be a provider of `customer` (a customer-provider
  /// edge). Fails (returns false) on self-loops or duplicate edges.
  bool add_customer_provider(AsId provider, AsId customer);

  /// Declares a settlement-free peering edge between `a` and `b`.
  bool add_peer(AsId a, AsId b);

  /// Marks `as_id` as a content provider (affects classification).
  void mark_content_provider(AsId as_id);

  /// Was `as_id` explicitly marked as a content provider? Valid both before
  /// and after finalize() (post-finalize, cls() is the classification that
  /// resulted).
  [[nodiscard]] bool content_provider_marked(AsId as_id) const {
    return cp_mark_[as_id] != 0;
  }

  /// Classifies every AS, builds the CSR adjacency and freezes the graph.
  /// Must be called exactly once after construction; edge insertion
  /// afterwards is rejected.
  void finalize();

  [[nodiscard]] bool finalized() const { return finalized_; }
  [[nodiscard]] std::size_t num_nodes() const { return asn_.size(); }

  /// Total number of undirected edges, by relationship type.
  [[nodiscard]] std::size_t num_customer_provider_edges() const { return cp_edges_; }
  [[nodiscard]] std::size_t num_peer_edges() const { return peer_edges_; }

  /// External AS number label of `n`.
  [[nodiscard]] std::uint32_t asn(AsId n) const { return asn_[n]; }
  /// Dense id for an external AS number, or kNoAs if unknown. O(log n).
  [[nodiscard]] AsId find_asn(std::uint32_t asn) const;

  /// Adjacency by relationship, from n's point of view. Post-finalize these
  /// are sorted spans into the CSR segment [customers | peers | providers];
  /// pre-finalize they view the build vectors in insertion order (some
  /// gadget constructions inspect partial adjacency while still wiring).
  [[nodiscard]] std::span<const AsId> customers(AsId n) const {
    if (!finalized_) return build_customers_[n];
    return {adj_.data() + adj_begin_[n], adj_.data() + peer_start_[n]};
  }
  [[nodiscard]] std::span<const AsId> peers(AsId n) const {
    if (!finalized_) return build_peers_[n];
    return {adj_.data() + peer_start_[n], adj_.data() + prov_start_[n]};
  }
  [[nodiscard]] std::span<const AsId> providers(AsId n) const {
    if (!finalized_) return build_providers_[n];
    return {adj_.data() + prov_start_[n], adj_.data() + adj_begin_[n + 1]};
  }
  /// All neighbours of n in one span (customers, then peers, then providers).
  [[nodiscard]] std::span<const AsId> neighbors(AsId n) const {
    return {adj_.data() + adj_begin_[n], adj_.data() + adj_begin_[n + 1]};
  }

  /// Total degree (customers + peers + providers). Valid in both phases.
  [[nodiscard]] std::size_t degree(AsId n) const {
    if (finalized_) return adj_begin_[n + 1] - adj_begin_[n];
    return build_customers_[n].size() + build_peers_[n].size() +
           build_providers_[n].size();
  }

  /// Relationship of `b` to `a`, or nothing if not adjacent.
  /// Returns true and sets `out` when an edge exists.
  [[nodiscard]] bool link_between(AsId a, AsId b, Link& out) const;

  /// Classification (requires finalize()).
  [[nodiscard]] AsClass cls(AsId n) const { return class_[n]; }
  [[nodiscard]] bool is_stub(AsId n) const { return class_[n] == AsClass::Stub; }
  [[nodiscard]] bool is_isp(AsId n) const { return class_[n] == AsClass::Isp; }
  [[nodiscard]] bool is_content_provider(AsId n) const {
    return class_[n] == AsClass::ContentProvider;
  }

  /// Per-class node counts (requires finalize()).
  [[nodiscard]] std::size_t num_stubs() const { return n_stubs_; }
  [[nodiscard]] std::size_t num_isps() const { return n_isps_; }
  [[nodiscard]] std::size_t num_content_providers() const { return n_cps_; }

  /// Traffic weight w_n of Section 3.1 (default 1.0).
  [[nodiscard]] double weight(AsId n) const { return weight_[n]; }
  void set_weight(AsId n, double w) { weight_[n] = w; }
  /// Sum of all weights.
  [[nodiscard]] double total_weight() const;

  /// Structural validation: GR1 (no cycle in the customer-provider
  /// hierarchy), symmetric adjacency, no isolated finalized nodes allowed
  /// unless `allow_isolated`. Returns human-readable problems (empty = ok).
  [[nodiscard]] std::vector<std::string> validate(bool allow_isolated = false) const;

  /// ASes with no providers and at least one customer — the Tier-1 layer.
  [[nodiscard]] std::vector<AsId> tier_ones() const;

  /// Size of n's customer cone (transitive customers, including n).
  [[nodiscard]] std::size_t customer_cone_size(AsId n) const;

  /// Applies one post-finalize mutation as a CSR patch. Untouched adjacency
  /// rows are streamed into the fresh slab verbatim; only the (few) rows an
  /// op touches have their three segments re-gathered and re-sorted. When an
  /// op touches more than `row_budget` rows (0 = auto: max(64, N/4), the
  /// rt::TreeDelta bail-out shape) every row is re-gathered and re-sorted —
  /// bitwise-identical output either way, the budget only bounds the
  /// incremental bookkeeping. Endpoint Stub <-> Isp reclassification is
  /// applied (content-provider marks are immutable) and reported via
  /// TopoPatchStats::class_changed. AddCustomerProvider re-checks GR1 and
  /// rejects ops that would close a customer-provider cycle.
  ///
  /// Throws std::invalid_argument on invalid ops (unknown ids, self-loops,
  /// duplicate edges, missing edges, GR1 violations, duplicate ASN) and
  /// std::logic_error if the graph is not finalized. On throw the graph is
  /// unchanged.
  TopoPatchStats apply_op(const TopoOp& op, std::size_t row_budget = 0);

  /// Applies `delta.ops` in order (each op sees its predecessors' effects)
  /// and merges the per-op stats. On throw, ops before the offending one
  /// remain applied.
  TopoPatchStats apply_delta(const TopoDelta& delta, std::size_t row_budget = 0);

 private:
  bool add_edge_checked(AsId a, AsId b);
  void reclassify_after_patch(AsId n, TopoPatchStats& stats);
  [[nodiscard]] bool in_customer_cone(AsId root, AsId target) const;

  std::vector<std::uint32_t> asn_;
  // Build-phase adjacency; compacted into adj_ and released by finalize().
  std::vector<std::vector<AsId>> build_customers_;
  std::vector<std::vector<AsId>> build_peers_;
  std::vector<std::vector<AsId>> build_providers_;
  // Finalized CSR adjacency: node n's neighbours are
  // adj_[adj_begin_[n] .. adj_begin_[n+1]), segmented as
  // [customers: adj_begin_[n]..peer_start_[n]) [peers: ..prov_start_[n])
  // [providers: ..adj_begin_[n+1]), each segment sorted ascending.
  std::vector<AsId> adj_;
  std::vector<std::uint32_t> adj_begin_;   // size N+1
  std::vector<std::uint32_t> peer_start_;  // size N
  std::vector<std::uint32_t> prov_start_;  // size N
  std::vector<AsClass> class_;
  std::vector<double> weight_;
  // Plain bytes, not std::vector<bool>: the bit-proxy reference made every
  // classification loop read-modify-write shared words and gave accessors
  // an awkward proxy type.
  std::vector<std::uint8_t> cp_mark_;
  // Sorted (asn, id) index built at finalize() for find_asn.
  std::vector<std::pair<std::uint32_t, AsId>> asn_index_;
  std::size_t cp_edges_ = 0;
  std::size_t peer_edges_ = 0;
  std::size_t n_stubs_ = 0;
  std::size_t n_isps_ = 0;
  std::size_t n_cps_ = 0;
  bool finalized_ = false;
};

/// Applies the paper's traffic model (Section 3.1): every AS has unit
/// weight except the content providers in `cps`, which each get
///   w_CP = x * (N - |cps|) / (|cps| * (1 - x))
/// so that they jointly originate an `x` fraction of all traffic.
/// Returns w_CP. Requires 0 <= x < 1 and a finalized graph.
double apply_traffic_model(AsGraph& graph, std::span<const AsId> cps, double x);

}  // namespace sbgp::topo
