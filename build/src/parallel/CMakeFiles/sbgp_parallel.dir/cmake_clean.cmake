file(REMOVE_RECURSE
  "CMakeFiles/sbgp_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/sbgp_parallel.dir/thread_pool.cpp.o.d"
  "libsbgp_parallel.a"
  "libsbgp_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbgp_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
