// Table 4: degrees of the content providers vs the largest Tier-1s, base vs
// augmented graph. In the paper's augmented graph the five CPs have higher
// degree than even the largest Tier-1s — but almost entirely peering edges,
// and they provide no transit.
#include "bench_common.h"
#include "stats/table.h"

int main(int argc, char** argv) {
  using namespace sbgp;
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header("Table 4 - CP vs Tier-1 degrees", opt);

  topo::InternetConfig cfg;
  cfg.total_ases = opt.nodes;
  cfg.seed = opt.seed;
  const auto net = topo::generate_internet(cfg);
  const auto aug = topo::augment_cp_peering(net, 0.8, opt.seed + 1);

  stats::Table t({"AS", "class", "degree (base)", "degree (augmented)",
                  "peer edges (aug)", "customers (aug)"});
  auto row = [&](const std::string& label, topo::AsId n) {
    t.begin_row();
    t.add(label);
    t.add(std::string(topo::to_string(net.graph.cls(n))));
    t.add(net.graph.degree(n));
    t.add(aug.graph.degree(n));
    t.add(aug.graph.peers(n).size());
    t.add(aug.graph.customers(n).size());
  };
  for (std::size_t i = 0; i < net.cps.size(); ++i) {
    row("CP" + std::to_string(i + 1), net.cps[i]);
  }
  for (std::size_t i = 0; i < std::min<std::size_t>(5, net.tier1.size()); ++i) {
    row("Tier-1 #" + std::to_string(i + 1), net.tier1[i]);
  }
  t.print(std::cout);
  bench::print_paper_note(
      "in the augmented graph the five CPs out-degree the largest Tier-1s, "
      "but via peering only — they still provide no transit.");
  return 0;
}
