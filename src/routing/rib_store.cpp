#include "routing/rib_store.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace sbgp::rt {

RibStore::RibStore(const AsGraph& graph)
    : n_(graph.num_nodes()),
      cls_(n_ * n_, RouteClass::None),
      len_(n_ * n_, 0),
      tb_begin_(n_ * (n_ + 1), 0),
      order_(n_ * n_, kNoAs),
      order_len_(n_, 0),
      tb_data_(n_, nullptr),
      tb_len_(n_, 0),
      ready_(n_, 0),
      // Tiebreak sets average a few entries per reachable node; size the
      // first pool block for a quarter of the worst case so small graphs
      // stay small and big ones double only a few times.
      tb_arena_(std::max<std::size_t>(std::size_t{1} << 16, n_ * n_)) {}

void RibStore::put(AsId d, const DestRib& rib) {
  assert(d < n_ && ready_[d] == 0);
  assert(rib.dest == d && rib.impostor == kNoAs);
  assert(rib.tb_sorted);
  assert(rib.cls.size() == n_ && rib.tb_begin.size() == n_ + 1);
  std::memcpy(cls_.data() + d * n_, rib.cls.data(), n_ * sizeof(RouteClass));
  std::memcpy(len_.data() + d * n_, rib.len.data(), n_ * sizeof(std::uint16_t));
  std::memcpy(tb_begin_.data() + d * (n_ + 1), rib.tb_begin.data(),
              (n_ + 1) * sizeof(std::uint32_t));
  std::memcpy(order_.data() + d * n_, rib.order.data(),
              rib.order.size() * sizeof(AsId));
  order_len_[d] = static_cast<std::uint32_t>(rib.order.size());
  const std::size_t tb_n = rib.tb.size();
  AsId* slice = nullptr;
  if (tb_n > 0) {
    std::scoped_lock lock(tb_mutex_);
    slice = tb_arena_.alloc<AsId>(tb_n);
  }
  if (tb_n > 0) std::memcpy(slice, rib.tb.data(), tb_n * sizeof(AsId));
  tb_data_[d] = slice;
  tb_len_[d] = static_cast<std::uint32_t>(tb_n);
  ready_[d] = 1;
}

RibView RibStore::view(AsId d) const {
  assert(d < n_ && ready_[d] != 0);
  RibView v;
  v.dest = d;
  v.impostor = kNoAs;
  v.impostor_len = 0;
  v.tb_sorted = true;
  v.cls = {cls_.data() + d * n_, n_};
  v.len = {len_.data() + d * n_, n_};
  v.tb_begin = {tb_begin_.data() + d * (n_ + 1), n_ + 1};
  v.tb = {tb_data_[d], tb_len_[d]};
  v.order = {order_.data() + d * n_, order_len_[d]};
  return v;
}

std::size_t RibStore::bytes_reserved() const {
  return n_ * n_ * (sizeof(RouteClass) + sizeof(std::uint16_t) + sizeof(AsId)) +
         n_ * (n_ + 1) * sizeof(std::uint32_t) + tb_arena_.bytes_reserved() +
         n_ * (sizeof(const AsId*) + 2 * sizeof(std::uint32_t) + 1);
}

}  // namespace sbgp::rt
