# Empty dependencies file for bench_table3_cp_path_lengths.
# This may be replaced when dependencies are built.
