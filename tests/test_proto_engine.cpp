// Deeper protocol-engine behaviour tests: GR2 export compliance at the
// message level, LP/SP/SecP selection order, attestation propagation
// through insecure hops, soBGP parity, and convergence accounting.
#include <gtest/gtest.h>

#include "proto/engine.h"
#include "test_util.h"

namespace sbgp::proto {
namespace {

using test::make_chain;
using test::make_diamond;

std::vector<NodeSecurity> all(const topo::AsGraph& g, NodeSecurity v) {
  return std::vector<NodeSecurity>(g.num_nodes(), v);
}

TEST(Engine, Gr2PeerRoutesAreNotTransited) {
  // a -- b -- c peers in a line, d customer of c: a must have NO route to d.
  topo::AsGraph g;
  const auto a = g.add_as(1);
  const auto b = g.add_as(2);
  const auto c = g.add_as(3);
  const auto d = g.add_as(4);
  g.add_peer(a, b);
  g.add_peer(b, c);
  g.add_customer_provider(c, d);
  g.finalize();

  EngineConfig cfg;
  cfg.mode = SecurityMode::BgpOnly;
  BgpEngine engine(g, all(g, NodeSecurity::Insecure), cfg);
  ASSERT_TRUE(engine.run(d));
  EXPECT_EQ(engine.route(b).cls, rt::RouteClass::Peer);
  EXPECT_EQ(engine.route(a).cls, rt::RouteClass::None)
      << "b must not export a peer-learned route to its peer a";
}

TEST(Engine, LocalPreferenceBeatsLength) {
  // x has a long customer route and a short provider route; LP wins.
  topo::AsGraph g;
  const auto x = g.add_as(1);
  const auto c1 = g.add_as(2);
  const auto c2 = g.add_as(3);
  const auto d = g.add_as(4);
  g.add_customer_provider(x, c1);
  g.add_customer_provider(c1, c2);
  g.add_customer_provider(c2, d);
  g.add_customer_provider(d, x);
  g.finalize();

  EngineConfig cfg;
  cfg.mode = SecurityMode::BgpOnly;
  BgpEngine engine(g, all(g, NodeSecurity::Insecure), cfg);
  ASSERT_TRUE(engine.run(d));
  EXPECT_EQ(engine.route(x).cls, rt::RouteClass::Customer);
  EXPECT_EQ(engine.route(x).path.size(), 3u);
}

TEST(Engine, SecPSteersTieOnlyForValidatingReceivers) {
  const auto dg = make_diamond();
  // Secure everything except competitor "a"; e must route via b (fully
  // attested) regardless of the hash.
  std::vector<NodeSecurity> posture(dg.g.num_nodes(), NodeSecurity::Full);
  posture[dg.a] = NodeSecurity::Insecure;
  posture[dg.s] = NodeSecurity::Simplex;
  posture[dg.x] = NodeSecurity::Simplex;
  EngineConfig cfg;
  cfg.mode = SecurityMode::SBgp;
  BgpEngine engine(dg.g, posture, cfg);
  ASSERT_TRUE(engine.run(dg.s));
  EXPECT_EQ(engine.route(dg.e).next_hop, dg.b);
  EXPECT_TRUE(engine.route(dg.e).fully_secure());

  // An insecure e cannot validate: it must fall back to the hash whichever
  // branch is attested.
  posture[dg.e] = NodeSecurity::Insecure;
  BgpEngine engine2(dg.g, posture, cfg);
  ASSERT_TRUE(engine2.run(dg.s));
  EXPECT_EQ(engine2.route(dg.e).security_score, 0)
      << "non-validating receivers score every path 0";
}

TEST(Engine, AttestationsSurviveInsecureTransit) {
  // chain t -> m -> s with t, s secure but m insecure: t's received path
  // carries s's attestation but not m's => partial, not fully valid.
  const auto c = make_chain();
  std::vector<NodeSecurity> posture(c.g.num_nodes(), NodeSecurity::Insecure);
  posture[c.t] = NodeSecurity::Full;
  posture[c.s] = NodeSecurity::Full;
  EngineConfig cfg;
  cfg.mode = SecurityMode::SBgp;
  cfg.partial = PartialPathPolicy::PreferPartial;  // make partials visible
  BgpEngine engine(c.g, posture, cfg);
  ASSERT_TRUE(engine.run(c.s));
  EXPECT_EQ(engine.route(c.t).security_score, 1)
      << "one of two hops attested -> partial";
}

TEST(Engine, SoBgpMatchesSBgpVerdictsOnFullDeployment) {
  const auto net = test::small_internet(150, 31);
  std::vector<NodeSecurity> posture(net.graph.num_nodes(), NodeSecurity::Full);
  for (topo::AsId n = 0; n < net.graph.num_nodes(); ++n) {
    if (net.graph.is_stub(n)) posture[n] = NodeSecurity::Simplex;
  }
  EngineConfig scfg;
  scfg.mode = SecurityMode::SBgp;
  EngineConfig ocfg;
  ocfg.mode = SecurityMode::SoBgp;
  BgpEngine sbgp(net.graph, posture, scfg);
  BgpEngine sobgp(net.graph, posture, ocfg);
  for (topo::AsId d = 0; d < 10; ++d) {
    ASSERT_TRUE(sbgp.run(d));
    ASSERT_TRUE(sobgp.run(d));
    for (topo::AsId n = 0; n < net.graph.num_nodes(); ++n) {
      EXPECT_EQ(sbgp.route(n).next_hop, sobgp.route(n).next_hop)
          << "AS " << net.graph.asn(n) << " dest " << net.graph.asn(d);
      EXPECT_EQ(sbgp.route(n).fully_secure(), sobgp.route(n).fully_secure());
    }
  }
}

TEST(Engine, MessageCountsScaleWithEdges) {
  const auto net = test::small_internet(200, 17);
  EngineConfig cfg;
  cfg.mode = SecurityMode::BgpOnly;
  BgpEngine engine(net.graph, all(net.graph, NodeSecurity::Insecure), cfg);
  ASSERT_TRUE(engine.run(0));
  const auto edges =
      net.graph.num_customer_provider_edges() + net.graph.num_peer_edges();
  EXPECT_GE(engine.crypto_stats().messages, edges / 2)
      << "announcements must reach a good share of adjacencies";
  EXPECT_LE(engine.crypto_stats().messages, 50 * edges)
      << "convergence should not thrash";
}

TEST(Engine, RerunResetsState) {
  const auto c = make_chain();
  EngineConfig cfg;
  cfg.mode = SecurityMode::BgpOnly;
  BgpEngine engine(c.g, all(c.g, NodeSecurity::Insecure), cfg);
  ASSERT_TRUE(engine.run(c.s));
  EXPECT_EQ(engine.route(c.t).path.size(), 2u);
  ASSERT_TRUE(engine.run(c.t));  // different destination
  EXPECT_EQ(engine.current_dest(), c.t);
  EXPECT_EQ(engine.route(c.s).path.size(), 2u);
  EXPECT_EQ(engine.route(c.t).cls, rt::RouteClass::Self);
}

TEST(Engine, LongerLiesFoolFewerButLocalPreferenceStillBites) {
  // A longer lie attracts weakly fewer ASes than a short one — but never
  // zero here: the attacker's *providers* receive the lie over a customer
  // edge, and LP ranks customer routes above everything regardless of
  // length (the [15] traffic-attraction result, and the reason path
  // length-padding alone is not a defence).
  const auto net = test::small_internet(100, 3);
  EngineConfig cfg;
  cfg.mode = SecurityMode::BgpOnly;
  const topo::AsId dest = 0;

  // Attacker: any stub with providers, far from the dest.
  topo::AsId attacker = topo::kNoAs;
  for (topo::AsId n = 1; n < net.graph.num_nodes(); ++n) {
    if (net.graph.is_stub(n) && !net.graph.providers(n).empty()) attacker = n;
  }
  ASSERT_NE(attacker, topo::kNoAs);

  auto fooled_with_padding = [&](std::uint32_t pad) {
    BgpEngine engine(net.graph, all(net.graph, NodeSecurity::Insecure), cfg);
    if (!engine.run(dest)) return std::size_t{0};
    std::vector<std::uint32_t> lie{net.graph.asn(attacker)};
    for (std::uint32_t i = 0; i < pad; ++i) lie.push_back(90000 + i);
    lie.push_back(net.graph.asn(dest));
    if (!engine.inject(attacker, lie, dest)) return std::size_t{0};
    std::size_t fooled = 0;
    for (topo::AsId n = 0; n < net.graph.num_nodes(); ++n) {
      const auto& path = engine.route(n).path;
      if (std::find(path.begin(), path.end(), net.graph.asn(attacker)) !=
          path.end()) {
        ++fooled;
      }
    }
    return fooled;
  };

  const std::size_t short_lie = fooled_with_padding(0);
  const std::size_t long_lie = fooled_with_padding(12);
  EXPECT_GE(short_lie, long_lie) << "padding can only shrink the blast radius";
  EXPECT_GT(short_lie, 0u);
  EXPECT_GT(long_lie, 0u)
      << "the attacker's providers still prefer the customer-learned lie";
}

}  // namespace
}  // namespace sbgp::proto
