file(REMOVE_RECURSE
  "libsbgp_routing.a"
)
