// Tracing spans: an RAII `Span` records (name, tid, start, duration) into a
// global lock-free ring buffer; the buffer exports Chrome trace-event JSON
// (load via chrome://tracing or https://ui.perfetto.dev) or a plain-text
// top-N summary.
//
// Cost model: disabled spans are one relaxed atomic load (the constructor
// checks the enable flag and stores nullptr); enabled spans add two
// steady_clock reads and one fetch_add + 32-byte store on destruction. With
// -DSBGPSIM_OBS_DISABLED the OBS_SPAN macro expands to nothing at all.
//
// Span names must be string literals (or otherwise outlive the buffer): the
// ring stores the pointer, not a copy — this keeps record() allocation-free.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <vector>

#include "obs/metrics.h"  // now_ns

namespace sbgp::obs {

struct TraceEvent {
  const char* name = nullptr;  ///< string literal; nullptr = unwritten slot
  std::uint32_t tid = 0;       ///< small per-thread id (first-use order)
  std::uint64_t start_ns = 0;  ///< obs::now_ns() timebase
  std::uint64_t dur_ns = 0;
};

/// Fixed-capacity power-of-two ring of completed spans. Writers claim a slot
/// with one relaxed fetch_add and overwrite the oldest event on wrap (the
/// trace keeps the most recent window; `dropped()` reports the overwritten
/// count). Snapshots/exports are for quiescent buffers — concurrent writers
/// can tear an in-flight slot, so stop tracing (or the workload) first.
class TraceBuffer {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

  static TraceBuffer& global();

  explicit TraceBuffer(std::size_t capacity = kDefaultCapacity);

  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Re-sizes (rounded up to a power of two) and clears. Only call while
  /// disabled or quiescent.
  void set_capacity(std::size_t events);
  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }
  void clear();

  void record(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns);

  /// Total record() calls since the last clear(), and how many of those were
  /// overwritten by ring wrap-around.
  [[nodiscard]] std::uint64_t recorded() const;
  [[nodiscard]] std::uint64_t dropped() const;

  /// Retained events, oldest first. Quiescent-only (see class comment).
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// Chrome trace-event JSON: an array of complete ("ph":"X") events with
  /// microsecond timestamps. Hand-written serialisation — obs cannot depend
  /// on exp::json; tests round-trip the output through exp::Json::parse.
  void write_chrome_json(std::ostream& os) const;

  /// Per-name aggregate table (count, total/mean/max wall time), widest
  /// total first, at most `top_n` rows.
  void write_summary(std::ostream& os, std::size_t top_n = 12) const;

 private:
  std::vector<TraceEvent> buf_;  // size is a power of two
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<bool> enabled_{false};
};

/// RAII span: measures construction→destruction and records into the global
/// buffer. A span constructed while tracing is disabled stays disarmed even
/// if tracing is enabled before it ends; a span in flight when tracing is
/// turned off is dropped by the buffer's own enabled check in record().
class Span {
 public:
  explicit Span(const char* name) {
    if (TraceBuffer::global().enabled()) {
      name_ = name;
      start_ = now_ns();
    }
  }
  ~Span() {
    if (name_ != nullptr) {
      TraceBuffer::global().record(name_, start_, now_ns() - start_);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ = 0;
};

}  // namespace sbgp::obs

// Scoped span covering the rest of the enclosing block. `name` must be a
// string literal. Usage: OBS_SPAN("sim.round");
#ifdef SBGPSIM_OBS_DISABLED
#define OBS_SPAN(name) \
  do {                 \
  } while (0)
#else
#define SBGP_OBS_CONCAT2(a, b) a##b
#define SBGP_OBS_CONCAT(a, b) SBGP_OBS_CONCAT2(a, b)
#define OBS_SPAN(name) \
  ::sbgp::obs::Span SBGP_OBS_CONCAT(sbgp_obs_span_, __LINE__) { name }
#endif
