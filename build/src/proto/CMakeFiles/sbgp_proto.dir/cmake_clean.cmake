file(REMOVE_RECURSE
  "CMakeFiles/sbgp_proto.dir/attack.cpp.o"
  "CMakeFiles/sbgp_proto.dir/attack.cpp.o.d"
  "CMakeFiles/sbgp_proto.dir/crypto_sim.cpp.o"
  "CMakeFiles/sbgp_proto.dir/crypto_sim.cpp.o.d"
  "CMakeFiles/sbgp_proto.dir/engine.cpp.o"
  "CMakeFiles/sbgp_proto.dir/engine.cpp.o.d"
  "CMakeFiles/sbgp_proto.dir/rpki.cpp.o"
  "CMakeFiles/sbgp_proto.dir/rpki.cpp.o.d"
  "CMakeFiles/sbgp_proto.dir/sbgp.cpp.o"
  "CMakeFiles/sbgp_proto.dir/sbgp.cpp.o.d"
  "CMakeFiles/sbgp_proto.dir/sobgp.cpp.o"
  "CMakeFiles/sbgp_proto.dir/sobgp.cpp.o.d"
  "libsbgp_proto.a"
  "libsbgp_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbgp_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
