#include <gtest/gtest.h>

#include <sstream>

#include "stats/histogram.h"
#include "stats/table.h"

namespace sbgp::stats {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.begin_row();
  t.add(std::string("alpha"));
  t.add(42);
  t.begin_row();
  t.add(std::string("b"));
  t.add(7);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_EQ(t.rows(), 1u);  // last row still open until begin_row/print
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.begin_row();
  t.add(1);
  t.add(2.5, 1);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2.5\n");
}

TEST(Table, CsvEscapesRfc4180) {
  Table t({"name", "note"});
  t.begin_row();
  t.add(std::string("comma,here"));
  t.add(std::string("say \"hi\""));
  t.begin_row();
  t.add(std::string("line\nbreak"));
  t.add(std::string("plain"));
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(),
            "name,note\n"
            "\"comma,here\",\"say \"\"hi\"\"\"\n"
            "\"line\nbreak\",plain\n");
}

TEST(Table, CsvLeavesCleanCellsUnquoted) {
  Table t({"a"});
  t.begin_row();
  t.add(std::string("no special chars"));
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a\nno special chars\n");
}

TEST(Table, PercentFormatting) {
  Table t({"x"});
  t.begin_row();
  t.add_percent(0.856, 1);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("85.6%"), std::string::npos);
}

TEST(IntHistogram, BasicCountsAndMean) {
  IntHistogram h;
  h.add(1);
  h.add(1);
  h.add(3);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(2), 0u);
  EXPECT_EQ(h.max_value(), 3u);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0 / 3.0);
}

TEST(IntHistogram, FractionGreaterMatchesPaperStyleStat) {
  // "only 20% of tiebreak sets contain more than a single path"
  IntHistogram h;
  h.add(1, 80);
  h.add(2, 15);
  h.add(5, 5);
  EXPECT_DOUBLE_EQ(h.fraction_greater(1), 0.20);
  EXPECT_DOUBLE_EQ(h.ccdf(1), 1.0);
  EXPECT_DOUBLE_EQ(h.ccdf(2), 0.20);
}

TEST(IntHistogram, Quantiles) {
  IntHistogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.add(v);
  EXPECT_EQ(h.quantile(0.0), 1u);
  EXPECT_EQ(h.quantile(1.0), 100u);
  const std::uint64_t med = h.quantile(0.5);
  EXPECT_GE(med, 49u);
  EXPECT_LE(med, 52u);
}

TEST(IntHistogram, BinsSkipEmpty) {
  IntHistogram h;
  h.add(0);
  h.add(9);
  const auto bins = h.bins();
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_EQ(bins[0].first, 0u);
  EXPECT_EQ(bins[1].first, 9u);
}

TEST(BucketedCounter, BucketsAndLabels) {
  BucketedCounter b({10, 100, std::numeric_limits<std::uint64_t>::max()});
  EXPECT_EQ(b.bucket_of(0), 0u);
  EXPECT_EQ(b.bucket_of(10), 0u);
  EXPECT_EQ(b.bucket_of(11), 1u);
  EXPECT_EQ(b.bucket_of(1000), 2u);
  EXPECT_EQ(b.label(0), "0-10");
  EXPECT_EQ(b.label(1), "11-100");
  EXPECT_EQ(b.label(2), ">100");
  b.add_member(5);
  b.add_member(5);
  b.add_hit(7);
  EXPECT_DOUBLE_EQ(b.fraction(0), 0.5);
  EXPECT_DOUBLE_EQ(b.fraction(1), 0.0);
}

TEST(Summary, MedianAndQuantiles) {
  Summary s;
  for (const double v : {5.0, 1.0, 3.0, 2.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
}

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.median(), 0.0);
}

}  // namespace
}  // namespace sbgp::stats
