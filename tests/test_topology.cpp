#include <gtest/gtest.h>

#include <sstream>

#include "test_util.h"
#include "topology/as_graph.h"
#include "topology/graph_io.h"
#include "topology/topology_gen.h"

namespace sbgp::topo {
namespace {

TEST(AsGraph, BasicConstructionAndClassification) {
  AsGraph g;
  const AsId isp = g.add_as(100);
  const AsId stub = g.add_as(200);
  const AsId cp = g.add_as(300);
  g.mark_content_provider(cp);
  ASSERT_TRUE(g.add_customer_provider(isp, stub));
  ASSERT_TRUE(g.add_peer(isp, cp));
  g.finalize();

  EXPECT_TRUE(g.is_isp(isp));
  EXPECT_TRUE(g.is_stub(stub));
  EXPECT_TRUE(g.is_content_provider(cp));
  EXPECT_EQ(g.num_isps(), 1u);
  EXPECT_EQ(g.num_stubs(), 1u);
  EXPECT_EQ(g.num_content_providers(), 1u);
  EXPECT_EQ(g.degree(isp), 2u);
  EXPECT_EQ(g.num_customer_provider_edges(), 1u);
  EXPECT_EQ(g.num_peer_edges(), 1u);

  Link link;
  ASSERT_TRUE(g.link_between(isp, stub, link));
  EXPECT_EQ(link, Link::Customer);
  ASSERT_TRUE(g.link_between(stub, isp, link));
  EXPECT_EQ(link, Link::Provider);
  EXPECT_FALSE(g.link_between(stub, cp, link));
}

TEST(AsGraph, RejectsSelfLoopsAndDuplicates) {
  AsGraph g;
  const AsId a = g.add_as(1);
  const AsId b = g.add_as(2);
  EXPECT_FALSE(g.add_peer(a, a));
  EXPECT_TRUE(g.add_customer_provider(a, b));
  EXPECT_FALSE(g.add_customer_provider(a, b));
  EXPECT_FALSE(g.add_customer_provider(b, a));
  EXPECT_FALSE(g.add_peer(a, b));
}

TEST(AsGraph, ValidateDetectsProviderCycle) {
  AsGraph g;
  const AsId a = g.add_as(1);
  const AsId b = g.add_as(2);
  const AsId c = g.add_as(3);
  g.add_customer_provider(a, b);
  g.add_customer_provider(b, c);
  g.add_customer_provider(c, a);  // GR1 violation: a cycle of providers
  g.finalize();
  const auto problems = g.validate();
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("GR1"), std::string::npos);
}

TEST(AsGraph, FindAsnAndReverse) {
  AsGraph g;
  g.add_as(11);
  const AsId b = g.add_as(22);
  g.add_as(33);
  g.finalize();
  EXPECT_EQ(g.find_asn(22), b);
  EXPECT_EQ(g.find_asn(99), kNoAs);
  EXPECT_EQ(reverse(Link::Customer), Link::Provider);
  EXPECT_EQ(reverse(Link::Provider), Link::Customer);
  EXPECT_EQ(reverse(Link::Peer), Link::Peer);
}

TEST(AsGraph, CustomerConeAndTierOnes) {
  const auto d = test::make_diamond();
  // e's cone: everyone; a's cone: {a, s}.
  EXPECT_EQ(d.g.customer_cone_size(d.e), 5u);
  EXPECT_EQ(d.g.customer_cone_size(d.a), 2u);
  const auto t1 = d.g.tier_ones();
  ASSERT_EQ(t1.size(), 1u);
  EXPECT_EQ(t1.front(), d.e);
}

TEST(TrafficModel, MatchesPaperWeightFormula) {
  // The paper (Fig. 13) reports w_CP = 821 for x=10% on the 36,964-AS graph.
  AsGraph g;
  for (std::uint32_t i = 0; i < 100; ++i) g.add_as(i + 1);
  for (AsId i = 1; i < 100; ++i) g.add_customer_provider(0, i);
  std::vector<AsId> cps{1, 2, 3, 4, 5};
  for (const AsId cp : cps) g.mark_content_provider(cp);
  g.finalize();
  const double w = apply_traffic_model(g, cps, 0.10);
  // w_CP = x(N-5)/(5(1-x)) = 0.1*95/(5*0.9)
  EXPECT_NEAR(w, 0.1 * 95.0 / (5.0 * 0.9), 1e-12);
  // The five CPs jointly originate exactly 10% of total weight.
  double cp_weight = 0.0;
  for (const AsId cp : cps) cp_weight += g.weight(cp);
  EXPECT_NEAR(cp_weight / g.total_weight(), 0.10, 1e-12);
}

TEST(TrafficModel, RejectsBadFraction) {
  AsGraph g;
  g.add_as(1);
  g.finalize();
  std::vector<AsId> none;
  EXPECT_THROW(apply_traffic_model(g, none, 1.0), std::invalid_argument);
  EXPECT_THROW(apply_traffic_model(g, none, -0.1), std::invalid_argument);
}

TEST(GraphIo, RoundTripPreservesEverything) {
  const auto net = test::small_internet(200, 3);
  std::ostringstream os;
  write_as_rel(net.graph, os);
  std::istringstream is(os.str());
  const AsGraph copy = read_as_rel(is);

  ASSERT_EQ(copy.num_nodes(), net.graph.num_nodes());
  EXPECT_EQ(copy.num_customer_provider_edges(),
            net.graph.num_customer_provider_edges());
  EXPECT_EQ(copy.num_peer_edges(), net.graph.num_peer_edges());
  EXPECT_EQ(copy.num_stubs(), net.graph.num_stubs());
  EXPECT_EQ(copy.num_isps(), net.graph.num_isps());
  EXPECT_EQ(copy.num_content_providers(), net.graph.num_content_providers());
  // Edge-level equality via re-serialisation through a canonical id order is
  // overkill; spot-check adjacency of every node by ASN.
  for (AsId n = 0; n < net.graph.num_nodes(); ++n) {
    const AsId m = copy.find_asn(net.graph.asn(n));
    ASSERT_NE(m, kNoAs);
    EXPECT_EQ(copy.customers(m).size(), net.graph.customers(n).size());
    EXPECT_EQ(copy.peers(m).size(), net.graph.peers(n).size());
    EXPECT_EQ(copy.providers(m).size(), net.graph.providers(n).size());
    EXPECT_EQ(copy.cls(m), net.graph.cls(n));
  }
}

TEST(GraphIo, ParseErrors) {
  {
    std::istringstream is("1|2|7\n");
    EXPECT_THROW(read_as_rel(is), std::runtime_error);
  }
  {
    std::istringstream is("1|2\n");
    EXPECT_THROW(read_as_rel(is), std::runtime_error);
  }
  {
    std::istringstream is("abc|2|0\n");
    EXPECT_THROW(read_as_rel(is), std::runtime_error);
  }
  {
    std::istringstream is("1|1|0\n");  // self loop
    EXPECT_THROW(read_as_rel(is), std::runtime_error);
  }
}

// Captures the parser's exception message for a given document.
std::string parse_failure(const std::string& doc) {
  std::istringstream is(doc);
  try {
    (void)read_as_rel(is);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return {};
}

TEST(GraphIo, RejectsDuplicateEdgesWithLineNumber) {
  // Exact duplicate.
  std::string err = parse_failure("1|2|-1\n2|3|-1\n1|2|-1\n");
  EXPECT_NE(err.find("line 3"), std::string::npos) << err;
  EXPECT_NE(err.find("duplicate edge 1|2"), std::string::npos) << err;
  // Same adjacency under a different relationship (or orientation) is
  // still the same physical link — also a duplicate.
  err = parse_failure("1|2|-1\n2|1|-1\n");
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
  EXPECT_NE(err.find("duplicate edge"), std::string::npos) << err;
  err = parse_failure("1|2|0\n1|2|-1\n");
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
  EXPECT_NE(err.find("duplicate edge"), std::string::npos) << err;
}

TEST(GraphIo, RejectsSelfLoopsWithLineNumber) {
  std::string err = parse_failure("1|2|-1\n3|3|-1\n");
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
  EXPECT_NE(err.find("self-loop 3|3"), std::string::npos) << err;
  err = parse_failure("7|7|0\n");
  EXPECT_NE(err.find("line 1"), std::string::npos) << err;
  EXPECT_NE(err.find("self-loop 7|7"), std::string::npos) << err;
}

TEST(GraphIo, RejectsTrailingGarbageAfterRelationship) {
  for (const char* doc : {"1|2|-1x\n", "1|2|-1 \n", "1|2|0|extra\n", "1|2| 0\n"}) {
    const std::string err = parse_failure(doc);
    EXPECT_NE(err.find("line 1"), std::string::npos) << doc << " -> " << err;
    EXPECT_NE(err.find("unknown relationship"), std::string::npos)
        << doc << " -> " << err;
  }
}

TEST(GraphIo, AcceptsCrlfLineEndings) {
  std::istringstream is("# comment\r\n1|2|-1\r\n2|3|-1\r\n1|3|0\r\n\r\n");
  const AsGraph g = read_as_rel(is);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_customer_provider_edges(), 2u);
  EXPECT_EQ(g.num_peer_edges(), 1u);
}

TEST(GraphIo, CrlfSelfLoopStillRejected) {
  const std::string err = parse_failure("1|2|-1\r\n4|4|0\r\n");
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
  EXPECT_NE(err.find("self-loop 4|4"), std::string::npos) << err;
}

// ---- Generator invariants, swept over seeds and sizes -----------------

struct GenParam {
  std::uint32_t ases;
  std::uint64_t seed;
};

class GeneratorInvariants : public ::testing::TestWithParam<GenParam> {};

TEST_P(GeneratorInvariants, StructurallySound) {
  InternetConfig cfg;
  cfg.total_ases = GetParam().ases;
  cfg.num_tier1 = 5;
  cfg.seed = GetParam().seed;
  const Internet net = generate_internet(cfg);
  const AsGraph& g = net.graph;

  EXPECT_EQ(g.num_nodes(), cfg.total_ases);
  EXPECT_TRUE(g.validate().empty());

  // Class mix matches the paper's empirical skew: ~85% stubs.
  const double stub_frac =
      static_cast<double>(g.num_stubs()) / static_cast<double>(g.num_nodes());
  EXPECT_GT(stub_frac, 0.70);
  EXPECT_LT(stub_frac, 0.95);
  EXPECT_EQ(g.num_content_providers(), 5u);

  // Tier-1s exist, form the top of the hierarchy, and peer with each other.
  ASSERT_EQ(net.tier1.size(), 5u);
  for (const AsId t : net.tier1) {
    EXPECT_TRUE(g.providers(t).empty());
    EXPECT_FALSE(g.customers(t).empty());
  }
  Link link;
  ASSERT_TRUE(g.link_between(net.tier1[0], net.tier1[1], link));
  EXPECT_EQ(link, Link::Peer);

  // Degree skew: the max degree dwarfs the median.
  std::vector<std::size_t> degrees;
  for (AsId n = 0; n < g.num_nodes(); ++n) degrees.push_back(g.degree(n));
  std::sort(degrees.begin(), degrees.end());
  EXPECT_GE(degrees.back(), 10 * degrees[degrees.size() / 2]);

  // Every non-Tier-1 AS has at least one provider (connectivity).
  for (AsId n = 0; n < g.num_nodes(); ++n) {
    if (std::find(net.tier1.begin(), net.tier1.end(), n) == net.tier1.end()) {
      EXPECT_GE(g.providers(n).size(), 1u) << "AS " << g.asn(n);
    }
  }

  // Determinism: same seed, same graph.
  const Internet again = generate_internet(cfg);
  EXPECT_EQ(again.graph.num_customer_provider_edges(),
            g.num_customer_provider_edges());
  EXPECT_EQ(again.graph.num_peer_edges(), g.num_peer_edges());
}

INSTANTIATE_TEST_SUITE_P(Sweep, GeneratorInvariants,
                         ::testing::Values(GenParam{300, 1}, GenParam{300, 2},
                                           GenParam{800, 3}, GenParam{1500, 4},
                                           GenParam{1500, 99}));

TEST(Generator, MultiHomedStubsExist) {
  const auto net = test::small_internet(500, 11);
  std::size_t multihomed = 0, stubs = 0;
  for (AsId n = 0; n < net.graph.num_nodes(); ++n) {
    if (!net.graph.is_stub(n)) continue;
    ++stubs;
    if (net.graph.providers(n).size() >= 2) ++multihomed;
  }
  ASSERT_GT(stubs, 0u);
  // The DIAMOND dynamics need a substantial multi-homed population.
  EXPECT_GT(static_cast<double>(multihomed) / static_cast<double>(stubs), 0.25);
}

TEST(Generator, AugmentedGraphRaisesCpDegree) {
  const auto net = test::small_internet(600, 5);
  std::size_t added = 0;
  const auto aug = augment_cp_peering(net, 0.8, 123, &added);
  EXPECT_GT(added, 0u);
  EXPECT_TRUE(aug.graph.validate().empty());
  ASSERT_EQ(aug.cps.size(), net.cps.size());
  for (std::size_t i = 0; i < net.cps.size(); ++i) {
    EXPECT_GT(aug.graph.degree(aug.cps[i]), net.graph.degree(net.cps[i]));
  }
  // Augmentation only adds peer edges.
  EXPECT_EQ(aug.graph.num_customer_provider_edges(),
            net.graph.num_customer_provider_edges());
  EXPECT_EQ(aug.graph.num_peer_edges(), net.graph.num_peer_edges() + added);
}

TEST(Generator, TopDegreeIspsAreSortedIsps) {
  const auto net = test::small_internet(400, 9);
  const auto top = top_degree_isps(net.graph, 10);
  ASSERT_EQ(top.size(), 10u);
  for (std::size_t i = 0; i + 1 < top.size(); ++i) {
    EXPECT_GE(net.graph.degree(top[i]), net.graph.degree(top[i + 1]));
    EXPECT_TRUE(net.graph.is_isp(top[i]));
  }
}

TEST(Generator, InfeasibleConfigsThrow) {
  InternetConfig cfg;
  cfg.total_ases = 20;
  cfg.num_tier1 = 10;
  cfg.isp_fraction = 0.15;  // 3 ISPs < 10 tier-1s
  EXPECT_THROW(generate_internet(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace sbgp::topo
