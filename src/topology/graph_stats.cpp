#include "topology/graph_stats.h"

#include <algorithm>
#include <cmath>

namespace sbgp::topo {

DegreeStats degree_stats(const AsGraph& graph, std::size_t d_min) {
  DegreeStats out;
  const std::size_t n = graph.num_nodes();
  std::vector<std::size_t> degrees(n);
  double sum = 0.0;
  for (AsId i = 0; i < n; ++i) {
    degrees[i] = graph.degree(i);
    out.histogram.add(degrees[i]);
    sum += static_cast<double>(degrees[i]);
    out.max = std::max(out.max, degrees[i]);
  }
  out.mean = n == 0 ? 0.0 : sum / static_cast<double>(n);
  out.median = out.histogram.quantile(0.5);

  std::vector<std::size_t> sorted = degrees;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const std::size_t top = std::max<std::size_t>(1, n / 100);
  double top_sum = 0.0;
  for (std::size_t i = 0; i < top && i < sorted.size(); ++i) {
    top_sum += static_cast<double>(sorted[i]);
  }
  out.top1pct_endpoint_share = sum > 0 ? top_sum / sum : 0.0;

  // Continuous MLE: alpha = 1 + m / sum(ln(d_i / (d_min - 0.5))).
  double log_sum = 0.0;
  std::size_t m = 0;
  for (const std::size_t d : degrees) {
    if (d >= d_min) {
      log_sum += std::log(static_cast<double>(d) /
                          (static_cast<double>(d_min) - 0.5));
      ++m;
    }
  }
  out.powerlaw_alpha = (m > 0 && log_sum > 0)
                           ? 1.0 + static_cast<double>(m) / log_sum
                           : 0.0;
  return out;
}

std::vector<std::size_t> customer_cone_sizes(const AsGraph& graph) {
  const std::size_t n = graph.num_nodes();
  std::vector<std::size_t> out(n, 0);
  std::vector<std::uint32_t> mark(n, 0);
  std::uint32_t epoch = 0;
  std::vector<AsId> stack;
  for (AsId root = 0; root < n; ++root) {
    ++epoch;
    stack.assign(1, root);
    mark[root] = epoch;
    std::size_t count = 0;
    while (!stack.empty()) {
      const AsId x = stack.back();
      stack.pop_back();
      ++count;
      for (const AsId c : graph.customers(x)) {
        if (mark[c] != epoch) {
          mark[c] = epoch;
          stack.push_back(c);
        }
      }
    }
    out[root] = count;
  }
  return out;
}

}  // namespace sbgp::topo
