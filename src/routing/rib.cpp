#include "routing/rib.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <random>

namespace sbgp::rt {

namespace {
constexpr std::uint16_t kInf = std::numeric_limits<std::uint16_t>::max();
}  // namespace

const char* to_string(RouteClass c) {
  switch (c) {
    case RouteClass::Self: return "self";
    case RouteClass::Customer: return "customer";
    case RouteClass::Peer: return "peer";
    case RouteClass::Provider: return "provider";
    case RouteClass::None: return "none";
  }
  return "?";
}

RibComputer::RibComputer(const AsGraph& graph)
    : graph_(graph),
      cust_len_(graph.num_nodes(), kInf),
      chosen_len_(graph.num_nodes(), kInf),
      cls_(graph.num_nodes(), RouteClass::None) {
  queue_.reserve(graph.num_nodes());
}

void RibComputer::compute(AsId dest, DestRib& out, AsId impostor,
                          std::uint16_t impostor_len) {
  const std::size_t n = graph_.num_nodes();
  assert(dest < n);
  assert(impostor == kNoAs || (impostor < n && impostor != dest));
  assert(impostor_len < kInf - n && "claimed length leaves headroom for real hops");
  if (impostor == kNoAs) impostor_len = 0;
  std::fill(cust_len_.begin(), cust_len_.end(), kInf);
  std::fill(chosen_len_.begin(), chosen_len_.end(), kInf);
  std::fill(cls_.begin(), cls_.end(), RouteClass::None);

  // Phase 1 — customer routes: BFS from `dest` along customer->provider
  // edges. cust_len[i] is the length of i's shortest all-customer route,
  // i.e. the shortest chain i -> c1 -> ... -> dest descending the hierarchy.
  // In hijack mode the impostor co-originates the prefix (a second BFS
  // source).
  cust_len_[dest] = 0;
  if (impostor != kNoAs) cust_len_[impostor] = impostor_len;
  if (impostor_len == 0) {
    // Both sources at depth 0: plain FIFO BFS. The origin labels are the
    // global minimum, so no relaxation can touch them.
    queue_.clear();
    queue_.push_back(dest);
    if (impostor != kNoAs) queue_.push_back(impostor);
    for (std::size_t head = 0; head < queue_.size(); ++head) {
      const AsId x = queue_[head];
      const std::uint16_t next_len = static_cast<std::uint16_t>(cust_len_[x] + 1);
      for (AsId p : graph_.providers(x)) {
        if (cust_len_[p] == kInf) {
          cust_len_[p] = next_len;
          queue_.push_back(p);
        }
      }
    }
  } else {
    // Mixed source depths (forged announcement claims `impostor_len` hops):
    // Dial-bucket BFS. The origins' labels are pinned — the impostor always
    // advertises its claimed length even when a shorter genuine route into it
    // exists, and nothing may shorten the destination's own origination.
    const std::size_t need = static_cast<std::size_t>(impostor_len) + n + 2;
    if (buckets_.size() < need) buckets_.resize(need);
    for (auto& b : buckets_) b.clear();
    buckets_[0].push_back(dest);
    buckets_[impostor_len].push_back(impostor);
    for (std::size_t length = 0; length < buckets_.size(); ++length) {
      for (std::size_t idx = 0; idx < buckets_[length].size(); ++idx) {
        const AsId x = buckets_[length][idx];
        if (cust_len_[x] != length) continue;  // stale entry
        const auto next_len = static_cast<std::uint16_t>(length + 1);
        for (AsId p : graph_.providers(x)) {
          if (p == dest || p == impostor) continue;  // origin labels pinned
          if (next_len < cust_len_[p]) {
            cust_len_[p] = next_len;
            buckets_[next_len].push_back(p);
          }
        }
      }
    }
  }

  // Phase 2 — LP resolution for customer and peer routes. A peer route is
  // one peer edge on top of the peer's customer route (GR2: peers only
  // export customer routes to each other).
  cls_[dest] = RouteClass::Self;
  chosen_len_[dest] = 0;
  if (impostor != kNoAs) {
    cls_[impostor] = RouteClass::Self;
    chosen_len_[impostor] = impostor_len;
  }
  for (AsId i = 0; i < n; ++i) {
    if (i == dest || i == impostor) continue;
    if (cust_len_[i] != kInf) {
      cls_[i] = RouteClass::Customer;
      chosen_len_[i] = cust_len_[i];
      continue;
    }
    std::uint16_t best = kInf;
    for (AsId p : graph_.peers(i)) {
      if (cust_len_[p] != kInf) best = std::min<std::uint16_t>(best, cust_len_[p] + 1);
    }
    if (best != kInf) {
      cls_[i] = RouteClass::Peer;
      chosen_len_[i] = best;
    }
  }

  // Phase 3 — provider routes: a provider exports its chosen route to every
  // customer (GR2), so prov_len[c] = 1 + min over providers j of
  // chosen_len[j]. Multi-source Dijkstra with unit weights (Dial buckets):
  // sources are all customer/peer-class nodes plus the destination.
  std::size_t max_len = 0;
  for (AsId i = 0; i < n; ++i) {
    if (cls_[i] != RouteClass::None) max_len = std::max<std::size_t>(max_len, chosen_len_[i]);
  }
  if (buckets_.size() < max_len + n + 2) buckets_.resize(max_len + n + 2);
  for (auto& b : buckets_) b.clear();
  for (AsId i = 0; i < n; ++i) {
    if (cls_[i] != RouteClass::None) buckets_[chosen_len_[i]].push_back(i);
  }
  for (std::size_t length = 0; length < buckets_.size(); ++length) {
    for (std::size_t idx = 0; idx < buckets_[length].size(); ++idx) {
      const AsId j = buckets_[length][idx];
      if (chosen_len_[j] != length) continue;  // stale entry
      const auto next_len = static_cast<std::uint16_t>(length + 1);
      for (AsId c : graph_.customers(j)) {
        // Customer/peer-class nodes are settled; only None/Provider-class
        // nodes can improve via a provider route.
        if (cls_[c] == RouteClass::Customer || cls_[c] == RouteClass::Peer ||
            cls_[c] == RouteClass::Self) {
          continue;
        }
        if (next_len < chosen_len_[c]) {
          chosen_len_[c] = next_len;
          cls_[c] = RouteClass::Provider;
          buckets_[next_len].push_back(c);
        }
      }
    }
  }

  // Assemble the output RIB: classes, lengths, tiebreak sets, and the
  // ascending-length processing order.
  out.dest = dest;
  out.impostor = impostor;
  out.impostor_len = impostor_len;
  out.tb_sorted = false;
  out.cls.assign(cls_.begin(), cls_.end());
  out.len.assign(chosen_len_.begin(), chosen_len_.end());

  out.tb_begin.assign(n + 1, 0);
  out.tb.clear();
  for (AsId i = 0; i < n; ++i) {
    out.tb_begin[i] = static_cast<std::uint32_t>(out.tb.size());
    if (i == dest || i == impostor || cls_[i] == RouteClass::None) continue;
    const std::uint16_t want = static_cast<std::uint16_t>(chosen_len_[i] - 1);
    switch (cls_[i]) {
      case RouteClass::Customer:
        for (AsId c : graph_.customers(i)) {
          if (cust_len_[c] == want) out.tb.push_back(c);
        }
        break;
      case RouteClass::Peer:
        for (AsId p : graph_.peers(i)) {
          if (cust_len_[p] == want) out.tb.push_back(p);
        }
        break;
      case RouteClass::Provider:
        for (AsId j : graph_.providers(i)) {
          if (cls_[j] != RouteClass::None && chosen_len_[j] == want) out.tb.push_back(j);
        }
        break;
      case RouteClass::Self:
      case RouteClass::None:
        break;
    }
    assert(out.tb.size() > out.tb_begin[i] && "reachable node must have a candidate");
  }
  out.tb_begin[n] = static_cast<std::uint32_t>(out.tb.size());

  // Counting sort of routed nodes by chosen length (order[0] == dest).
  out.order.clear();
  out.order.reserve(n);
  {
    std::vector<std::uint32_t> count;
    std::uint16_t longest = 0;
    for (AsId i = 0; i < n; ++i) {
      if (cls_[i] != RouteClass::None) longest = std::max(longest, chosen_len_[i]);
    }
    count.assign(longest + 2, 0);
    for (AsId i = 0; i < n; ++i) {
      if (cls_[i] != RouteClass::None) ++count[chosen_len_[i]];
    }
    std::uint32_t acc = 0;
    for (auto& c : count) {
      const std::uint32_t here = c;
      c = acc;
      acc += here;
    }
    out.order.assign(acc, kNoAs);
    for (AsId i = 0; i < n; ++i) {
      if (cls_[i] != RouteClass::None) out.order[count[chosen_len_[i]]++] = i;
    }
  }
}

DestRib RibComputer::compute(AsId dest, AsId impostor,
                             std::uint16_t impostor_len) {
  DestRib out;
  compute(dest, out, impostor, impostor_len);
  return out;
}

PathLengthStats sample_path_lengths(const AsGraph& graph,
                                    std::size_t sample_destinations,
                                    std::uint64_t seed) {
  PathLengthStats out;
  RibComputer rc(graph);
  DestRib rib;
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<AsId> pick(
      0, static_cast<AsId>(graph.num_nodes() - 1));
  for (std::size_t k = 0; k < sample_destinations; ++k) {
    const AsId d = pick(rng);
    rc.compute(d, rib);
    std::size_t reachable = 0;
    for (const AsId i : rib.order) {
      if (i == d) continue;
      out.histogram.add(rib.len[i]);
      ++reachable;
    }
    out.unreachable_pairs += graph.num_nodes() - 1 - reachable;
  }
  out.mean = out.histogram.mean();
  out.p90 = out.histogram.quantile(0.9);
  return out;
}

double average_path_length_from(const AsGraph& graph, AsId src) {
  RibComputer rc(graph);
  DestRib rib;
  double sum = 0.0;
  std::size_t reachable = 0;
  for (AsId d = 0; d < graph.num_nodes(); ++d) {
    if (d == src) continue;
    rc.compute(d, rib);
    if (rib.reachable(src)) {
      sum += rib.len[src];
      ++reachable;
    }
  }
  return reachable == 0 ? 0.0 : sum / static_cast<double>(reachable);
}

}  // namespace sbgp::rt
