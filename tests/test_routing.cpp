#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "routing/rib.h"
#include "routing/routing_tree.h"
#include "test_util.h"

namespace sbgp::rt {
namespace {

using test::make_chain;
using test::make_diamond;
using test::small_internet;

SecurityView make_view(const topo::AsGraph& g, const std::vector<std::uint8_t>& flags,
                       bool stub_ties = true) {
  SecurityView v;
  v.graph = &g;
  v.base = flags.data();
  v.stub_breaks_ties = stub_ties;
  return v;
}

TEST(Rib, ChainClassesAndLengths) {
  const auto c = make_chain();  // t -> m -> s
  RibComputer rc(c.g);

  // Destination s: m has a customer route of length 1, t of length 2.
  const DestRib rib_s = rc.compute(c.s);
  EXPECT_EQ(rib_s.cls[c.s], RouteClass::Self);
  EXPECT_EQ(rib_s.cls[c.m], RouteClass::Customer);
  EXPECT_EQ(rib_s.len[c.m], 1);
  EXPECT_EQ(rib_s.cls[c.t], RouteClass::Customer);
  EXPECT_EQ(rib_s.len[c.t], 2);

  // Destination t: m and s climb provider edges.
  const DestRib rib_t = rc.compute(c.t);
  EXPECT_EQ(rib_t.cls[c.m], RouteClass::Provider);
  EXPECT_EQ(rib_t.len[c.m], 1);
  EXPECT_EQ(rib_t.cls[c.s], RouteClass::Provider);
  EXPECT_EQ(rib_t.len[c.s], 2);

  // Tiebreak sets are singletons on a chain.
  EXPECT_EQ(rib_s.tiebreak(c.t).size(), 1u);
  EXPECT_EQ(rib_t.tiebreak(c.s).size(), 1u);
  // order[] is ascending by length, destination first.
  ASSERT_FALSE(rib_s.order.empty());
  EXPECT_EQ(rib_s.order.front(), c.s);
}

TEST(Rib, PeerRouteOnlyOverCustomerRoutes) {
  // p1 -- p2 peers; d is p2's customer; x is p1's customer.
  // x reaches d via (x, p1, p2, d): provider, then one peer hop, then down.
  topo::AsGraph g;
  const auto p1 = g.add_as(1);
  const auto p2 = g.add_as(2);
  const auto d = g.add_as(3);
  const auto x = g.add_as(4);
  g.add_peer(p1, p2);
  g.add_customer_provider(p2, d);
  g.add_customer_provider(p1, x);
  g.finalize();

  RibComputer rc(g);
  const DestRib rib = rc.compute(d);
  EXPECT_EQ(rib.cls[p2], RouteClass::Customer);
  EXPECT_EQ(rib.cls[p1], RouteClass::Peer);
  EXPECT_EQ(rib.len[p1], 2);
  EXPECT_EQ(rib.cls[x], RouteClass::Provider);
  EXPECT_EQ(rib.len[x], 3);

  // GR2: d's own prefix via p2's *customer* route may cross one peer edge,
  // but x's provider route through p1 must not be re-exported to p1's peers
  // — verified structurally: p2 never gains a route through p1 to x?
  const DestRib rib_x = rc.compute(x);
  // p2's only way to x would be peer p1 -> customer x, but p1's route to x
  // is a customer route, so it IS exportable to the peer.
  EXPECT_EQ(rib_x.cls[p2], RouteClass::Peer);
  // d's route to x: d's provider p2 has a peer route, exportable to
  // customers: valley-free up-peer-down.
  EXPECT_EQ(rib_x.cls[d], RouteClass::Provider);
  EXPECT_EQ(rib_x.len[d], 3);
}

TEST(Rib, NoTransitThroughPeersForPeerRoutes) {
  // a -- b peers, b -- c peers, d customer of c. a must NOT reach d via
  // two consecutive peer hops (GR2 forbids it).
  topo::AsGraph g;
  const auto a = g.add_as(1);
  const auto b = g.add_as(2);
  const auto c = g.add_as(3);
  const auto d = g.add_as(4);
  g.add_peer(a, b);
  g.add_peer(b, c);
  g.add_customer_provider(c, d);
  g.finalize();

  RibComputer rc(g);
  const DestRib rib = rc.compute(d);
  EXPECT_EQ(rib.cls[c], RouteClass::Customer);
  EXPECT_EQ(rib.cls[b], RouteClass::Peer);
  EXPECT_EQ(rib.cls[a], RouteClass::None) << "two peer hops must be forbidden";
}

TEST(Rib, LocalPreferenceBeatsPathLength) {
  // x has a 3-hop customer route and a 1-hop provider route to d: LP wins.
  topo::AsGraph g;
  const auto x = g.add_as(1);
  const auto c1 = g.add_as(2);
  const auto c2 = g.add_as(3);
  const auto d = g.add_as(4);
  g.add_customer_provider(x, c1);
  g.add_customer_provider(c1, c2);
  g.add_customer_provider(c2, d);
  g.add_customer_provider(d, x);  // d also provides x directly (1 hop up)
  g.finalize();

  RibComputer rc(g);
  const DestRib rib = rc.compute(d);
  EXPECT_EQ(rib.cls[x], RouteClass::Customer);
  EXPECT_EQ(rib.len[x], 3);
}

TEST(Rib, DiamondTiebreakSet) {
  const auto dg = make_diamond();
  RibComputer rc(dg.g);
  const DestRib rib = rc.compute(dg.s);
  const auto tb = rib.tiebreak(dg.e);
  ASSERT_EQ(tb.size(), 2u);
  EXPECT_TRUE((tb[0] == dg.a && tb[1] == dg.b) || (tb[0] == dg.b && tb[1] == dg.a));
}

// Observation C.1: class and length are independent of the security state.
TEST(Rib, StateIndependenceOfClassAndLength) {
  const auto net = small_internet(300, 17);
  RibComputer rc(net.graph);
  TreeComputer tc(net.graph);
  TieBreakPolicy tb;
  DestRib rib;
  RoutingTree tree;

  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const auto state = test::random_state(net.graph, 0.4, seed);
    const auto view = make_view(net.graph, state.flags());
    for (topo::AsId d = 0; d < 40; ++d) {
      rc.compute(d, rib);
      tc.compute(rib, view, tb, tree);
      for (const topo::AsId i : rib.order) {
        if (i == d) continue;
        const auto path = TreeComputer::extract_path(tree, i);
        ASSERT_FALSE(path.empty());
        // The realised path length always equals the static RIB length,
        // whatever the state: SecP only picks within the tiebreak set.
        EXPECT_EQ(path.size() - 1, rib.len[i]);
      }
    }
  }
}

TEST(RoutingTree, SecurityTiebreakSteersWithinTiebreakSet) {
  const auto dg = make_diamond();
  RibComputer rc(dg.g);
  TreeComputer tc(dg.g);
  TieBreakPolicy tb;
  const DestRib rib = rc.compute(dg.s);
  RoutingTree tree;

  // Nobody secure: e picks by hash; record the choice.
  std::vector<std::uint8_t> flags(dg.g.num_nodes(), 0);
  tc.compute(rib, make_view(dg.g, flags), tb, tree);
  const topo::AsId hash_choice = tree.next_hop[dg.e];
  ASSERT_TRUE(hash_choice == dg.a || hash_choice == dg.b);
  EXPECT_EQ(tree.path_secure[dg.e], 0);

  // Secure e + the *other* ISP + s: the secure path must win the tie.
  const topo::AsId other = hash_choice == dg.a ? dg.b : dg.a;
  flags[dg.e] = flags[other] = flags[dg.s] = 1;
  tc.compute(rib, make_view(dg.g, flags), tb, tree);
  EXPECT_EQ(tree.next_hop[dg.e], other);
  EXPECT_EQ(tree.path_secure[dg.e], 1);
  EXPECT_EQ(tree.has_secure_candidate[dg.e], 1);

  // An insecure e ignores security and sticks with the hash choice.
  flags[dg.e] = 0;
  tc.compute(rib, make_view(dg.g, flags), tb, tree);
  EXPECT_EQ(tree.next_hop[dg.e], hash_choice);
  EXPECT_EQ(tree.path_secure[dg.e], 0);
}

TEST(RoutingTree, PartiallySecurePathsAreNotPreferred) {
  // Section 2.2.2: e must not prefer a partially-secure path. Make the
  // hash-choice branch partially secure (a secure, s insecure): no effect.
  const auto dg = make_diamond();
  RibComputer rc(dg.g);
  TreeComputer tc(dg.g);
  TieBreakPolicy tb;
  const DestRib rib = rc.compute(dg.s);
  RoutingTree tree;

  std::vector<std::uint8_t> flags(dg.g.num_nodes(), 0);
  tc.compute(rib, make_view(dg.g, flags), tb, tree);
  const topo::AsId hash_choice = tree.next_hop[dg.e];
  const topo::AsId other = hash_choice == dg.a ? dg.b : dg.a;

  flags[dg.e] = 1;
  flags[other] = 1;  // other branch partially secure (s itself insecure)
  tc.compute(rib, make_view(dg.g, flags), tb, tree);
  EXPECT_EQ(tree.next_hop[dg.e], hash_choice)
      << "a partially-secure path must not win the tie";
}

TEST(RoutingTree, SubtreeWeightsFoldCorrectly) {
  auto c = make_chain();
  c.g.set_weight(c.t, 5.0);
  RibComputer rc(c.g);
  TreeComputer tc(c.g);
  TieBreakPolicy tb;
  const DestRib rib = rc.compute(c.s);
  RoutingTree tree;
  std::vector<std::uint8_t> flags(c.g.num_nodes(), 0);
  tc.compute(rib, make_view(c.g, flags), tb, tree);
  EXPECT_DOUBLE_EQ(tree.subtree_weight[c.t], 5.0);
  EXPECT_DOUBLE_EQ(tree.subtree_weight[c.m], 6.0);
  EXPECT_DOUBLE_EQ(tree.subtree_weight[c.s], 7.0);
}

TEST(RoutingTree, FlipOnViewSecuresIspAndItsStubs) {
  const auto dg = make_diamond();
  std::vector<std::uint8_t> flags(dg.g.num_nodes(), 0);
  SecurityView view = make_view(dg.g, flags);
  view.flip_on = dg.a;
  EXPECT_TRUE(view.is_secure(dg.a));
  EXPECT_TRUE(view.is_secure(dg.s)) << "a's stub customer is simplex-secured";
  EXPECT_FALSE(view.is_secure(dg.b));
  EXPECT_FALSE(view.is_secure(dg.e));

  // flip_off overrides the base state; stubs stay secure (sticky).
  flags[dg.a] = flags[dg.s] = 1;
  SecurityView off = make_view(dg.g, flags);
  off.flip_off = dg.a;
  EXPECT_FALSE(off.is_secure(dg.a));
  EXPECT_TRUE(off.is_secure(dg.s));
}

TEST(RoutingTree, FrozenStubsAreNotSecuredByFlip) {
  const auto dg = make_diamond();
  std::vector<std::uint8_t> flags(dg.g.num_nodes(), 0);
  std::vector<std::uint8_t> frozen(dg.g.num_nodes(), 0);
  frozen[dg.s] = 1;
  SecurityView view = make_view(dg.g, flags);
  view.frozen = frozen.data();
  view.flip_on = dg.a;
  EXPECT_TRUE(view.is_secure(dg.a));
  EXPECT_FALSE(view.is_secure(dg.s));
}

// Valley-free property over random graphs: extracted paths never go
// customer->provider after having gone provider->customer or peer->peer.
TEST(RoutingTree, PathsAreValleyFreeAndSimple) {
  const auto net = small_internet(400, 23);
  RibComputer rc(net.graph);
  TreeComputer tc(net.graph);
  TieBreakPolicy tb;
  DestRib rib;
  RoutingTree tree;
  const auto state = test::random_state(net.graph, 0.3, 5);
  const auto view = make_view(net.graph, state.flags());

  std::mt19937_64 rng(99);
  std::uniform_int_distribution<topo::AsId> pick(
      0, static_cast<topo::AsId>(net.graph.num_nodes() - 1));
  for (int trial = 0; trial < 30; ++trial) {
    const topo::AsId d = pick(rng);
    rc.compute(d, rib);
    tc.compute(rib, view, tb, tree);
    for (int s_trial = 0; s_trial < 20; ++s_trial) {
      const topo::AsId src = pick(rng);
      if (src == d || !rib.reachable(src)) continue;
      const auto path = TreeComputer::extract_path(tree, src);
      ASSERT_GE(path.size(), 2u);
      // Simple path.
      auto sorted = path;
      std::sort(sorted.begin(), sorted.end());
      EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end());
      // Valley-free: phase may only go up (0) -> peer (1) -> down (2).
      int phase = 0;
      int peer_hops = 0;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        topo::Link link;
        ASSERT_TRUE(net.graph.link_between(path[i], path[i + 1], link));
        if (link == topo::Link::Provider) {
          EXPECT_EQ(phase, 0) << "climb after descent/peering";
        } else if (link == topo::Link::Peer) {
          EXPECT_LE(phase, 1);
          phase = 1;
          ++peer_hops;
        } else {
          phase = 2;
        }
      }
      EXPECT_LE(peer_hops, 1) << "at most one peer edge per path";
    }
  }
}

TEST(TieBreakPolicy, RankModeUsesAsnByDefault) {
  const auto dg = make_diamond();
  TieBreakPolicy tb;
  tb.mode = TieBreakPolicy::Mode::Rank;
  EXPECT_EQ(tb.key(dg.e, dg.a, dg.g), dg.g.asn(dg.a));
  std::vector<std::uint64_t> rank(dg.g.num_nodes(), 7);
  rank[dg.a] = 1;
  tb.rank = &rank;
  EXPECT_EQ(tb.key(dg.e, dg.a, dg.g), 1u);
}

TEST(TieBreakPolicy, PairwiseHashIsDeterministicAndSourceDependent) {
  const auto dg = make_diamond();
  TieBreakPolicy tb;
  const auto k1 = tb.key(dg.e, dg.a, dg.g);
  EXPECT_EQ(k1, tb.key(dg.e, dg.a, dg.g));
  EXPECT_NE(k1, tb.key(dg.a, dg.e, dg.g));
}

TEST(Rib, AveragePathLengthFromTierOneIsShort) {
  const auto net = small_internet(400, 31);
  const double t1 = average_path_length_from(net.graph, net.tier1.front());
  EXPECT_GT(t1, 0.5);
  EXPECT_LT(t1, 4.0);
}

}  // namespace
}  // namespace sbgp::rt
