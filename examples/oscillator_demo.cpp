// Demonstrates the dark side of security-as-tie-break (Section 7): the
// buyer's-remorse instance of Figure 13 and the CHICKEN-gadget oscillator,
// both driven through the public simulator API with frozen scaffolding
// nodes.
#include <iostream>

#include "core/simulator.h"
#include "gadgets/gadgets.h"

int main() {
  using namespace sbgp;

  std::cout << "== Buyer's remorse (Figure 13) ==\n";
  const auto remorse = gadgets::make_buyers_remorse();
  core::SimConfig cfg;
  remorse.configure(cfg);
  {
    core::DeploymentSimulator sim(remorse.graph, cfg);
    const auto result = sim.run(
        remorse.initial, [&](const core::RoundObservation& obs) {
          for (const auto n : *obs.flipping_off) {
            std::cout << "  round " << obs.round << ": AS"
                      << remorse.graph.asn(n)
                      << " turns S*BGP OFF (utility "
                      << (*obs.utility)[n] << " -> projected "
                      << (*obs.projected_off)[n] << ")\n";
          }
        });
    std::cout << "  outcome: " << core::to_string(result.outcome)
              << "; the telecom ISP is "
              << (result.final_state.is_secure(remorse.node("telecom"))
                      ? "secure"
                      : "insecure")
              << " at the end.\n\n";
  }

  std::cout << "== Oscillation (Appendix F / CHICKEN gadget) ==\n";
  const auto chicken = gadgets::make_chicken();
  chicken.configure(cfg);
  cfg.max_rounds = 10;
  core::DeploymentSimulator sim(chicken.graph, cfg);
  const auto p10 = chicken.node("10");
  const auto p20 = chicken.node("20");
  const auto result = sim.run(
      chicken.initial, [&](const core::RoundObservation& obs) {
        std::cout << "  round " << obs.round << ": (10 "
                  << ((*obs.secure)[p10] != 0 ? "ON" : "off") << ", 20 "
                  << ((*obs.secure)[p20] != 0 ? "ON" : "off") << ")";
        if (!obs.flipping_on->empty() || !obs.flipping_off->empty()) {
          std::cout << " -> " << obs.flipping_on->size() << " turn on, "
                    << obs.flipping_off->size() << " turn off";
        }
        std::cout << "\n";
      });
  std::cout << "  outcome: " << core::to_string(result.outcome)
            << " (the simulator detected a revisited state; Theorem 7.1 says "
               "deciding this in general is PSPACE-complete)\n";
  return 0;
}
