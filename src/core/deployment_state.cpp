#include "core/deployment_state.h"

namespace sbgp::core {

DeploymentState DeploymentState::initial(const AsGraph& graph,
                                         std::span<const AsId> early_adopters) {
  DeploymentState state(graph.num_nodes());
  for (const AsId a : early_adopters) {
    state.set_secure(a, true);
  }
  for (const AsId a : early_adopters) {
    if (graph.is_isp(a)) state.secure_isp_with_stubs(graph, a);
  }
  return state;
}

void DeploymentState::secure_isp_with_stubs(const AsGraph& graph, AsId isp) {
  set_secure(isp, true);
  for (const AsId c : graph.customers(isp)) {
    if (graph.is_stub(c)) set_secure(c, true);
  }
}

std::size_t DeploymentState::num_secure() const {
  std::size_t count = 0;
  for (const std::uint8_t s : secure_) count += s;
  return count;
}

std::size_t DeploymentState::num_secure_of_class(const AsGraph& graph,
                                                 topo::AsClass cls) const {
  std::size_t count = 0;
  for (AsId n = 0; n < secure_.size(); ++n) {
    if (secure_[n] != 0 && graph.cls(n) == cls) ++count;
  }
  return count;
}

std::uint64_t DeploymentState::hash() const {
  std::uint64_t h = 1469598103934665603ULL;
  for (const std::uint8_t s : secure_) {
    h ^= s;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace sbgp::core
