// scenario:: — the declarative attack & robustness engine.
//
// Four layers of coverage:
//  1. ScenarioSpec parsing: defaults, round-trips, field-path diagnostics,
//     matrix expansion order and key uniqueness;
//  2. pair sampling: bit-parity with the historical measure_resilience
//     stream, the attacker==victim resample rule, pool edge cases;
//  3. evaluation semantics: the SecureTiebreak fast path against the
//     path-vector reference router (per-AS chosen origins), interception
//     RIB lengths, what ROV / secure-first do and do not stop, and bitwise
//     determinism across thread-pool sizes;
//  4. exp:: integration: the scenario axis in JobSpec hashing/expansion,
//     JobRecord round-trips, and scheduler resume.
#include <gtest/gtest.h>

#include <fstream>
#include <random>

#include "core/resilience.h"
#include "exp/job_spec.h"
#include "exp/result_store.h"
#include "exp/scheduler.h"
#include "scenario/engine.h"
#include "scenario/reference_router.h"
#include "scenario/scenario_spec.h"
#include "test_util.h"

namespace sbgp::scenario {
namespace {

using topo::AsId;
using topo::kNoAs;

// ---------------------------------------------------------------------------
// 1. ScenarioSpec parsing & expansion

TEST(ScenarioSpec, EmptyDocumentIsTheDefaultSingleHijack) {
  const auto spec = ScenarioSpec::from_json(exp::Json::parse("{}"));
  EXPECT_EQ(spec.num_points(), 1u);
  const auto pts = spec.expand();
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_EQ(pts[0].attack, AttackKind::OriginHijack);
  EXPECT_EQ(pts[0].policy, DefensePolicy::SecureTiebreak);
  EXPECT_EQ(pts[0].placement, Placement::UniformRandom);
  EXPECT_EQ(pts[0].samples, 100u);
  EXPECT_EQ(pts[0].seed, 42u);
}

TEST(ScenarioSpec, RoundTripsThroughJson) {
  const auto spec = ScenarioSpec::from_json(exp::Json::parse(
      R"({"attacks": ["hijack", "interception", "downgrade"], "hops": [1, 3],)"
      R"( "policies": ["rov", "secure-first"], "placements": ["degree-tier"],)"
      R"( "tier_top": 7, "samples": 12, "seed": 9, "baseline": true})"));
  const auto again = ScenarioSpec::from_json(spec.to_json());
  const auto a = spec.expand(), b = again.expand();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].key(), b[i].key());
}

TEST(ScenarioSpec, HopsMultiplyOnlyInterceptionPoints) {
  const auto spec = ScenarioSpec::from_json(exp::Json::parse(
      R"({"attacks": ["hijack", "interception", "downgrade"], "hops": [1, 2, 5],)"
      R"( "policies": ["rov", "secure-tiebreak"]})"));
  // (1 hijack + 3 interception + 1 downgrade) x 2 policies x 1 placement.
  EXPECT_EQ(spec.num_points(), 10u);
  EXPECT_EQ(spec.expand().size(), 10u);
}

TEST(ScenarioSpec, ExpandedKeysAreUnique) {
  const auto spec = ScenarioSpec::from_json(exp::Json::parse(
      R"({"attacks": ["hijack", "interception", "downgrade"], "hops": [1, 2],)"
      R"( "policies": ["secure-tiebreak", "rov", "secure-first"],)"
      R"( "placements": ["uniform", "degree-tier", "stub-only"]})"));
  const auto pts = spec.expand();
  std::set<std::string> keys;
  for (const auto& p : pts) keys.insert(p.key());
  EXPECT_EQ(keys.size(), pts.size());
}

TEST(ScenarioSpec, DiagnosticsCarryTheFieldPath) {
  try {
    (void)ScenarioSpec::from_json(exp::Json::parse(R"({"attacks": ["foo"]})"));
    FAIL() << "expected JsonError";
  } catch (const exp::JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("scenario.attacks[0]"),
              std::string::npos)
        << e.what();
  }
  try {
    (void)ScenarioSpec::from_json(exp::Json::parse(R"({"samplez": 3})"),
                                  "jobs.scenario");
    FAIL() << "expected JsonError";
  } catch (const exp::JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("jobs.scenario"), std::string::npos)
        << e.what();
  }
}

TEST(ScenarioSpec, RejectsOutOfRangeValues) {
  EXPECT_THROW(
      (void)ScenarioSpec::from_json(exp::Json::parse(R"({"hops": [0]})")),
      exp::JsonError);
  EXPECT_THROW(
      (void)ScenarioSpec::from_json(exp::Json::parse(R"({"samples": 0})")),
      exp::JsonError);
  EXPECT_THROW((void)ScenarioSpec::from_json(
                   exp::Json::parse(R"({"placements": ["fixed"]})")),
               exp::JsonError);  // fixed placement requires attackers
  EXPECT_THROW((void)ScenarioSpec::from_json(
                   exp::Json::parse(R"({"policies": []})")),
               exp::JsonError);
}

TEST(ScenarioSpec, FromFileParsesAndValidates) {
  const std::string path = ::testing::TempDir() + "scn_spec.json";
  {
    std::ofstream out(path);
    out << R"({"attacks": ["downgrade"], "samples": 3})";
  }
  const auto spec = ScenarioSpec::from_file(path);
  EXPECT_EQ(spec.num_points(), 1u);
  EXPECT_EQ(spec.expand()[0].attack, AttackKind::Downgrade);
  EXPECT_EQ(spec.samples, 3u);
}

// ---------------------------------------------------------------------------
// 2. Pair sampling

TEST(ScenarioSampling, UniformReproducesTheLegacyResilienceStream) {
  const auto net = test::small_internet(150, 3);
  const ScenarioEngine engine(net.graph);
  Scenario s;
  s.samples = 64;
  s.seed = 1234;
  const auto pairs = engine.sample_pairs(s);
  ASSERT_EQ(pairs.size(), s.samples);

  // The exact stream core::measure_resilience has always drawn: one
  // mt19937_64, attacker then victim per attempt, both redrawn on collision.
  std::mt19937_64 rng(s.seed);
  std::uniform_int_distribution<AsId> dist(
      0, static_cast<AsId>(net.graph.num_nodes() - 1));
  std::vector<std::pair<AsId, AsId>> expected;
  while (expected.size() < s.samples) {
    const AsId a = dist(rng);
    const AsId v = dist(rng);
    if (a != v) expected.emplace_back(a, v);
  }
  EXPECT_EQ(pairs, expected);
}

// The satellite-audit regression: attacker==victim draws must be discarded
// deterministically (redraw both), never evaluated. On a tiny pool the
// collision branch is guaranteed to trigger many times.
TEST(ScenarioSampling, AttackerVictimCollisionsAreResampled) {
  topo::AsGraph g;
  const AsId p = g.add_as(1);
  for (std::uint32_t i = 2; i <= 4; ++i) g.add_customer_provider(p, g.add_as(i));
  g.finalize();
  const ScenarioEngine engine(g);
  Scenario s;
  s.samples = 500;
  s.seed = 99;
  const auto pairs = engine.sample_pairs(s);
  ASSERT_EQ(pairs.size(), 500u);
  for (const auto& [a, v] : pairs) EXPECT_NE(a, v);
  // Deterministic: the same spec draws the same pairs again.
  EXPECT_EQ(engine.sample_pairs(s), pairs);
}

TEST(ScenarioSampling, FixedListsEnumerateTheCrossProduct) {
  const auto t = [] {
    topo::AsGraph g;
    const AsId x = g.add_as(1);
    g.add_customer_provider(x, g.add_as(11));
    g.add_customer_provider(x, g.add_as(21));
    g.finalize();
    return g;
  }();
  const ScenarioEngine engine(t);
  Scenario s;
  s.placement = Placement::FixedList;
  s.attacker_asns = {11, 21};
  s.victim_asns = {21, 1};
  const auto pairs = engine.sample_pairs(s);
  // (11,21) (11,1) (21,1) — the (21,21) self-pair is dropped.
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(t.asn(pairs[0].first), 11u);
  EXPECT_EQ(t.asn(pairs[0].second), 21u);
  EXPECT_EQ(t.asn(pairs[2].first), 21u);
  EXPECT_EQ(t.asn(pairs[2].second), 1u);
}

TEST(ScenarioSampling, ImpossiblePoolsThrow) {
  const auto net = test::small_internet(100, 5);
  const ScenarioEngine engine(net.graph);
  Scenario s;
  s.placement = Placement::FixedList;
  s.attacker_asns = {4294967295u};  // not a real ASN in the graph
  EXPECT_THROW((void)engine.sample_pairs(s), std::invalid_argument);
  Scenario same;
  same.placement = Placement::FixedList;
  same.attacker_asns = {net.graph.asn(0)};
  same.victim_asns = {net.graph.asn(0)};
  EXPECT_THROW((void)engine.sample_pairs(same), std::invalid_argument);
}

TEST(ScenarioSampling, DegreeTierDrawsFromTheTopOfTheHierarchy) {
  const auto net = test::small_internet(200, 11);
  const ScenarioEngine engine(net.graph);
  Scenario s;
  s.placement = Placement::DegreeTier;
  s.tier_top = 5;
  s.samples = 40;
  // The 5 highest degrees in the graph (ties broken by id, as the engine).
  std::vector<AsId> ids(net.graph.num_nodes());
  for (AsId i = 0; i < net.graph.num_nodes(); ++i) ids[i] = i;
  std::sort(ids.begin(), ids.end(), [&](AsId a, AsId b) {
    if (net.graph.degree(a) != net.graph.degree(b)) {
      return net.graph.degree(a) > net.graph.degree(b);
    }
    return a < b;
  });
  const std::set<AsId> tier(ids.begin(), ids.begin() + 5);
  for (const auto& [a, v] : engine.sample_pairs(s)) {
    EXPECT_TRUE(tier.count(a)) << "attacker " << a << " outside the tier";
    (void)v;
  }
}

TEST(ScenarioSampling, StubOnlyDrawsStubs) {
  const auto net = test::small_internet(200, 11);
  const ScenarioEngine engine(net.graph);
  Scenario s;
  s.placement = Placement::StubOnly;
  s.samples = 40;
  for (const auto& [a, v] : engine.sample_pairs(s)) {
    EXPECT_TRUE(net.graph.is_stub(a));
    (void)v;
  }
}

// ---------------------------------------------------------------------------
// 3. Evaluation semantics

/// The proto-attack chain gadget: probe x on top, customer chains of length
/// vd / ad down to victim v / attacker m.
struct Chains {
  topo::AsGraph g;
  AsId x, v, m;
};

Chains make_chains(std::size_t vd, std::size_t ad) {
  Chains c;
  c.x = c.g.add_as(1);
  AsId tail = c.x;
  for (std::size_t i = 0; i < vd; ++i) {
    const AsId node = c.g.add_as(static_cast<std::uint32_t>(100 + i));
    c.g.add_customer_provider(tail, node);
    tail = node;
  }
  c.v = tail;
  tail = c.x;
  for (std::size_t i = 0; i < ad; ++i) {
    const AsId node = c.g.add_as(static_cast<std::uint32_t>(200 + i));
    c.g.add_customer_provider(tail, node);
    tail = node;
  }
  c.m = tail;
  c.g.finalize();
  return c;
}

TEST(InterceptionRib, PinnedImpostorLengthPropagates) {
  const auto c = make_chains(2, 2);
  rt::RibComputer rc(c.g);
  rt::DestRib rib;
  rc.compute(c.v, rib, c.m, /*impostor_len=*/2);
  EXPECT_EQ(rib.impostor_len, 2);
  EXPECT_EQ(rib.len[c.v], 0);
  EXPECT_EQ(rib.len[c.m], 2);  // pinned claimed length, not 0
  // m's provider hears the claimed 2-hop route: customer route of length 3;
  // its alternative through x is a provider route — customer wins.
  const AsId mid_m = c.g.find_asn(200);
  EXPECT_EQ(rib.cls[mid_m], rt::RouteClass::Customer);
  EXPECT_EQ(rib.len[mid_m], 3);
  // The probe now sees victim side 2 vs attacker side 3: no tie.
  EXPECT_EQ(rib.len[c.x], 2);
  ASSERT_EQ(rib.tiebreak(c.x).size(), 1u);
  EXPECT_EQ(rib.tiebreak(c.x)[0], c.g.find_asn(100));
}

TEST(InterceptionRib, ZeroLengthMatchesTheLegacyHijackRib) {
  const auto net = test::small_internet(150, 13);
  rt::RibComputer rc(net.graph);
  rt::DestRib legacy, generalized;
  rc.compute(7, legacy, 3);
  rc.compute(7, generalized, 3, 0);
  EXPECT_EQ(legacy.cls, generalized.cls);
  EXPECT_EQ(legacy.len, generalized.len);
  EXPECT_EQ(legacy.tb_begin, generalized.tb_begin);
  EXPECT_EQ(legacy.tb, generalized.tb);
}

/// Reference-router origins for one pair, with the downgrade length derived
/// exactly as the engine derives it.
std::vector<AsId> oracle_origins(const topo::AsGraph& g,
                                 const std::vector<std::uint8_t>& secure,
                                 const Scenario& s, const EngineConfig& ecfg,
                                 AsId attacker, AsId victim) {
  AttackConfig cfg;
  cfg.attack = s.attack;
  cfg.policy = s.policy;
  cfg.tiebreak = ecfg.tiebreak;
  cfg.stub_breaks_ties = ecfg.stub_breaks_ties;
  rt::RibComputer rc(g);
  rt::DestRib rib;
  if (s.attack == AttackKind::Interception) {
    cfg.impostor_len = s.hops;
  } else if (s.attack == AttackKind::Downgrade) {
    rc.compute(victim, rib);
    if (!rib.reachable(attacker)) {
      std::vector<AsId> origins(g.num_nodes(), kNoAs);
      for (const AsId i : rib.order) origins[i] = victim;
      return origins;
    }
    cfg.impostor_len = rib.len[attacker];
  }
  std::vector<RouteEntry> entries;
  (void)compute_attack_routes(g, secure, cfg, attacker, victim, entries);
  std::vector<AsId> origins(g.num_nodes(), kNoAs);
  for (AsId i = 0; i < g.num_nodes(); ++i) {
    if (entries[i].exists) origins[i] = entries[i].origin;
  }
  return origins;
}

// The core cross-check: under the security-third ranking the engine uses
// the closed-form routing tree (Observation C.1); the path-vector reference
// router knows nothing of that structure. Every AS must still pick the same
// origin, for every attack kind, on random internets with partial random
// deployments.
TEST(ScenarioOracle, FastPathMatchesReferenceRouterPerAs) {
  const auto net = test::small_internet(120, 17);
  const ScenarioEngine engine(net.graph);
  std::mt19937_64 rng(5);
  std::vector<std::uint8_t> secure(net.graph.num_nodes());
  for (auto& f : secure) f = rng() % 2;

  for (const AttackKind attack : {AttackKind::OriginHijack,
                                  AttackKind::Interception,
                                  AttackKind::Downgrade}) {
    Scenario s;
    s.attack = attack;
    s.hops = 2;
    s.policy = DefensePolicy::SecureTiebreak;
    s.samples = 6;
    s.seed = 31;
    for (const auto& [a, v] : engine.sample_pairs(s)) {
      const auto fast = engine.chosen_origins(s, secure, a, v);
      const auto ref =
          oracle_origins(net.graph, secure, s, engine.config(), a, v);
      EXPECT_EQ(fast, ref) << "attack " << to_string(attack) << " pair ("
                           << a << ", " << v << ")";
    }
  }
}

TEST(ScenarioSemantics, RovStopsHijackButNotInterception) {
  const auto c = make_chains(3, 3);
  const ScenarioEngine engine(c.g);
  const std::vector<std::uint8_t> everyone(c.g.num_nodes(), 1);

  Scenario hijack;
  hijack.attack = AttackKind::OriginHijack;
  hijack.policy = DefensePolicy::RovDropInvalid;
  // Every secure AS validates the true origin and drops the forged one.
  EXPECT_EQ(engine.probe(hijack, everyone, c.m, c.v).fooled_fraction, 0.0);

  Scenario intercept = hijack;
  intercept.attack = AttackKind::Interception;
  intercept.hops = 1;
  // The forged path claims the true origin, so origin validation passes;
  // m's provider still hears a 2-hop customer route vs a long provider
  // route and is fooled.
  const auto origins = engine.chosen_origins(intercept, everyone, c.m, c.v);
  EXPECT_EQ(origins[c.g.find_asn(200)], c.m);
  EXPECT_GT(engine.probe(intercept, everyone, c.m, c.v).fooled_fraction, 0.0);
}

TEST(ScenarioSemantics, SecureFirstStopsTheShorterLieSecurityThirdAllows) {
  // True route length 4, lie length 2: SP outranks SecP in the paper's
  // ranking, so the probe is fooled; ranking security first protects it.
  const auto c = make_chains(4, 2);
  const ScenarioEngine engine(c.g);
  const std::vector<std::uint8_t> everyone(c.g.num_nodes(), 1);

  Scenario s;
  s.attack = AttackKind::OriginHijack;
  s.policy = DefensePolicy::SecureTiebreak;
  EXPECT_EQ(engine.chosen_origins(s, everyone, c.m, c.v)[c.x], c.m);

  s.policy = DefensePolicy::SecureFirst;
  EXPECT_EQ(engine.chosen_origins(s, everyone, c.m, c.v)[c.x], c.v);

  s.policy = DefensePolicy::RovDropInvalid;
  EXPECT_EQ(engine.chosen_origins(s, everyone, c.m, c.v)[c.x], c.v);
}

TEST(ScenarioSemantics, DowngradeOnlyWinsWhatTheTiebreakWouldGiveIt) {
  // Equal-length chains, all secure: the attacker strips security from its
  // honest-length announcement. The probe ties 3 vs 3; the security
  // tie-break must keep the fully-secure true route.
  const auto c = make_chains(3, 3);
  const ScenarioEngine engine(c.g);
  const std::vector<std::uint8_t> everyone(c.g.num_nodes(), 1);
  Scenario s;
  s.attack = AttackKind::Downgrade;
  s.policy = DefensePolicy::SecureTiebreak;
  EXPECT_EQ(engine.chosen_origins(s, everyone, c.m, c.v)[c.x], c.v);
  // With nobody secure the same tie falls to the intradomain tie-break:
  // whoever wins, the route must exist.
  const std::vector<std::uint8_t> nobody(c.g.num_nodes(), 0);
  EXPECT_NE(engine.chosen_origins(s, nobody, c.m, c.v)[c.x], kNoAs);
}

TEST(ScenarioDeterminism, ResultsAreBitwiseIdenticalAcrossPoolSizes) {
  const auto net = test::small_internet(150, 23);
  const ScenarioEngine engine(net.graph);
  std::mt19937_64 rng(7);
  std::vector<std::uint8_t> secure(net.graph.num_nodes());
  for (auto& f : secure) f = rng() % 3 == 0;

  const auto spec = ScenarioSpec::from_json(exp::Json::parse(
      R"({"attacks": ["hijack", "interception", "downgrade"], "hops": [2],)"
      R"( "policies": ["secure-tiebreak", "rov", "secure-first"],)"
      R"( "samples": 8, "seed": 3, "baseline": true})"));
  for (const Scenario& s : spec.expand()) {
    par::ThreadPool p1(1);
    const ScenarioResult r1 = engine.run(s, secure, p1);
    for (const std::size_t threads : {4u, 8u}) {
      par::ThreadPool pn(threads);
      const ScenarioResult rn = engine.run(s, secure, pn);
      EXPECT_EQ(r1.key, rn.key);
      EXPECT_EQ(r1.pairs, rn.pairs);
      // Exact double equality is the point: the fold is index-ordered.
      EXPECT_EQ(r1.fooled_fraction.mean(), rn.fooled_fraction.mean()) << s.key();
      EXPECT_EQ(r1.fooled_weight.mean(), rn.fooled_weight.mean()) << s.key();
      EXPECT_EQ(r1.fooled_fraction.quantile(0.9),
                rn.fooled_fraction.quantile(0.9));
      EXPECT_EQ(r1.disconnected, rn.disconnected);
      EXPECT_EQ(r1.nonconverged_pairs, rn.nonconverged_pairs);
      ASSERT_TRUE(rn.has_baseline);
      EXPECT_EQ(r1.baseline_fooled.mean(), rn.baseline_fooled.mean());
    }
  }
}

TEST(ScenarioDeterminism, MeasureResilienceStillDelegatesBitForBit) {
  const auto net = test::small_internet(150, 29);
  core::SimConfig cfg;
  std::vector<std::uint8_t> secure(net.graph.num_nodes(), 0);
  for (AsId i = 0; i < net.graph.num_nodes(); i += 3) secure[i] = 1;
  par::ThreadPool pool(2);
  const auto legacy =
      core::measure_resilience(net.graph, secure, cfg, 32, 77, pool);

  const ScenarioEngine engine(net.graph,
                              {cfg.tiebreak, cfg.stub_breaks_ties});
  Scenario s;
  s.samples = 32;
  s.seed = 77;
  const auto modern = engine.run(s, secure, pool);
  EXPECT_EQ(legacy.pairs, modern.pairs);
  EXPECT_EQ(legacy.fooled_fraction.mean(), modern.fooled_fraction.mean());
  EXPECT_EQ(legacy.fooled_weight.mean(), modern.fooled_weight.mean());
  EXPECT_EQ(legacy.fooled_fraction.quantile(0.9),
            modern.fooled_fraction.quantile(0.9));
}

// ---------------------------------------------------------------------------
// 4. exp:: integration

exp::JobSpec scenario_job_spec() {
  exp::JobSpec spec;
  spec.name = "scenario-grid";
  exp::GraphSpec g;
  g.nodes = 150;
  g.seed = 7;
  g.x = 0.10;
  spec.graphs = {g};
  spec.adopters = {"top:3"};
  spec.thetas = {0.0, 0.1};
  ScenarioSpec scn;
  scn.attacks = {AttackKind::OriginHijack, AttackKind::Downgrade};
  scn.policies = {DefensePolicy::RovDropInvalid};
  scn.samples = 5;
  scn.seed = 5;
  spec.scenario = scn;
  return spec;
}

TEST(ScenarioJobs, ScenarioAxisMultipliesAndRekeysTheGrid) {
  exp::JobSpec spec = scenario_job_spec();
  exp::JobSpec plain = spec;
  plain.scenario.reset();
  EXPECT_EQ(plain.num_jobs(), 2u);
  EXPECT_EQ(spec.num_jobs(), 4u);
  EXPECT_NE(spec.hash(), plain.hash());

  const auto jobs = spec.expand();
  ASSERT_EQ(jobs.size(), 4u);
  // Scenario points are the innermost axis: theta repeats per point.
  EXPECT_EQ(jobs[0].theta, 0.0);
  EXPECT_EQ(jobs[1].theta, 0.0);
  EXPECT_EQ(jobs[2].theta, 0.1);
  ASSERT_TRUE(jobs[0].attack_scenario.has_value());
  EXPECT_EQ(jobs[0].attack_scenario->attack, AttackKind::OriginHijack);
  EXPECT_EQ(jobs[1].attack_scenario->attack, AttackKind::Downgrade);
  EXPECT_NE(jobs[0].key().find("attack=hijack"), std::string::npos);
  EXPECT_NE(jobs[0].key().find("policy=rov"), std::string::npos);
  EXPECT_NE(jobs[0].key(), jobs[1].key());
}

TEST(ScenarioJobs, SpecJsonRoundTripPreservesHash) {
  const exp::JobSpec spec = scenario_job_spec();
  const exp::JobSpec again = exp::JobSpec::from_json(spec.to_json());
  EXPECT_EQ(spec.hash(), again.hash());
  ASSERT_TRUE(again.scenario.has_value());
  EXPECT_EQ(again.scenario->samples, 5u);
}

TEST(ScenarioJobs, JobRecordRoundTripsScenarioFields) {
  exp::JobRecord r;
  r.spec_hash = 12345;
  r.job_id = 3;
  r.status = "ok";
  r.scenario_key = "attack=hijack;policy=rov;placement=uniform;samples=5;seed=5";
  r.scn_pairs = 5;
  r.scn_mean_fooled = 0.25;
  r.scn_mean_fooled_weight = 0.125;
  r.scn_p90_fooled = 0.5;
  r.scn_disconnected = 7;
  r.scn_nonconverged = 1;
  r.scn_has_baseline = true;
  r.scn_baseline_fooled = 0.75;
  const auto back = exp::JobRecord::from_json(r.to_json());
  EXPECT_EQ(back.scenario_key, r.scenario_key);
  EXPECT_EQ(back.scn_pairs, 5u);
  EXPECT_EQ(back.scn_mean_fooled, 0.25);
  EXPECT_EQ(back.scn_mean_fooled_weight, 0.125);
  EXPECT_EQ(back.scn_p90_fooled, 0.5);
  EXPECT_EQ(back.scn_disconnected, 7u);
  EXPECT_EQ(back.scn_nonconverged, 1u);
  EXPECT_TRUE(back.scn_has_baseline);
  EXPECT_EQ(back.scn_baseline_fooled, 0.75);
  EXPECT_EQ(back.canonical_row(), r.canonical_row());

  // A scenario-free record serialises no scn_* keys at all.
  exp::JobRecord plain;
  plain.spec_hash = 1;
  plain.job_id = 0;
  plain.status = "ok";
  EXPECT_EQ(plain.to_json().find("scenario_key"), nullptr);
  EXPECT_EQ(plain.to_json().find("scn_pairs"), nullptr);
}

TEST(ScenarioJobs, SweepRunsAndResumesTheScenarioGrid) {
  const exp::JobSpec spec = scenario_job_spec();
  const std::string path = ::testing::TempDir() + "scenario_store.jsonl";
  std::remove(path.c_str());

  exp::SweepOptions opts;
  opts.workers = 2;
  {
    exp::ResultStore store(path);
    exp::SweepScheduler scheduler(opts);
    const auto report = scheduler.run(spec, &store);
    EXPECT_EQ(report.total_jobs, 4u);
    EXPECT_EQ(report.executed, 4u);
    EXPECT_EQ(report.ok, 4u);
    for (const auto& r : report.records) {
      EXPECT_EQ(r.status, "ok");
      EXPECT_FALSE(r.scenario_key.empty());
      EXPECT_EQ(r.scn_pairs, 5u);
      EXPECT_GE(r.scn_p90_fooled, r.scn_mean_fooled - 1e-12);
    }
  }
  {
    // Same spec, same store: everything resumes, nothing re-runs.
    exp::ResultStore store(path);
    exp::SweepScheduler scheduler(opts);
    const auto report = scheduler.run(spec, &store);
    EXPECT_EQ(report.executed, 0u);
    EXPECT_EQ(report.skipped, 4u);
    ASSERT_EQ(report.records.size(), 4u);
    EXPECT_FALSE(report.records[0].scenario_key.empty());
  }
}

}  // namespace
}  // namespace sbgp::scenario
