// Figure 17 / Appendix F & K: deployment oscillations in the incoming
// utility model. The CHICKEN gadget (Figure 21) has exactly two stable
// states — (ON, OFF) and (OFF, ON) — and under synchronous myopic best
// response from any symmetric start the two ISPs flip together forever.
// Theorem 7.1 says deciding whether such dynamics stabilise is
// PSPACE-complete; the simulator instead detects the revisited state.
#include <iostream>

#include "core/simulator.h"
#include "gadgets/gadgets.h"
#include "stats/table.h"

int main() {
  using namespace sbgp;
  std::cout << "=== Figure 17 / Appendix F - deployment oscillations ===\n\n";

  const auto g = gadgets::make_chicken();
  core::SimConfig cfg;
  g.configure(cfg);
  cfg.max_rounds = 12;
  const auto p10 = g.node("10");
  const auto p20 = g.node("20");

  std::cout << "synchronous dynamics from (OFF, OFF):\n";
  stats::Table t({"round", "player 10", "player 20", "u(10)", "u(20)"});
  core::DeploymentSimulator sim(g.graph, cfg);
  const auto result =
      sim.run(g.initial, [&](const core::RoundObservation& obs) {
        t.begin_row();
        t.add(obs.round);
        t.add(std::string((*obs.secure)[p10] != 0 ? "ON" : "off"));
        t.add(std::string((*obs.secure)[p20] != 0 ? "ON" : "off"));
        t.add((*obs.utility)[p10], 0);
        t.add((*obs.utility)[p20], 0);
      });
  t.print(std::cout);
  std::cout << "outcome: " << core::to_string(result.outcome) << " after "
            << result.rounds_run() << " rounds\n\n";

  std::cout << "the two pure Nash equilibria are stable:\n";
  for (const bool ten_on : {true, false}) {
    auto s = g.initial;
    s.set_secure(p10, ten_on);
    s.set_secure(p20, !ten_on);
    core::DeploymentSimulator sim2(g.graph, cfg);
    const auto r2 = sim2.run(s);
    std::cout << "  start (" << (ten_on ? "ON , off" : "off, ON ")
              << "): " << core::to_string(r2.outcome) << " in " << r2.rounds_run()
              << " rounds\n";
  }
  std::cout << "\nk-SELECTOR gadgets (Appendix K.6, Lemma K.5):\n";
  for (const std::size_t k : {2u, 3u, 4u}) {
    const auto sel = gadgets::make_selector(k);
    core::SimConfig scfg;
    sel.configure(scfg);
    scfg.max_rounds = 30;
    std::size_t stable_one_hot = 0;
    for (std::size_t w = 0; w < k; ++w) {
      auto s = sel.initial;
      s.set_secure(sel.node("p" + std::to_string(w + 1)), true);
      core::DeploymentSimulator ssim(sel.graph, scfg);
      if (ssim.run(s).outcome == core::Outcome::Stable) ++stable_one_hot;
    }
    core::DeploymentSimulator all_off_sim(sel.graph, scfg);
    const auto all_off = all_off_sim.run(sel.initial);
    std::cout << "  k=" << k << ": " << stable_one_hot << "/" << k
              << " one-hot states stable; all-OFF start -> "
              << core::to_string(all_off.outcome) << "\n";
  }

  std::cout << "\nTRANSITION gadget (Appendix K.7, Figure 23): resetting a "
               "3-selector from state 1 to state 2:\n";
  {
    const auto tg = gadgets::make_selector_with_transition(3, 0, 1);
    core::SimConfig tcfg;
    tg.configure(tcfg);
    auto s = tg.initial;
    s.set_secure(tg.node("p1"), true);
    core::DeploymentSimulator tsim(tg.graph, tcfg);
    const auto tres = tsim.run(s, [&](const core::RoundObservation& obs) {
      std::cout << "  round " << obs.round << ": (p1 "
                << ((*obs.secure)[tg.node("p1")] != 0 ? "ON" : "off") << ", p2 "
                << ((*obs.secure)[tg.node("p2")] != 0 ? "ON" : "off") << ", p3 "
                << ((*obs.secure)[tg.node("p3")] != 0 ? "ON" : "off") << ", t "
                << ((*obs.secure)[tg.node("t")] != 0 ? "ON" : "off") << ")\n";
    });
    std::cout << "  -> " << core::to_string(tres.outcome) << " at one-hot(p2): "
              << (tres.final_state.is_secure(tg.node("p2")) &&
                          !tres.final_state.is_secure(tg.node("p1"))
                      ? "yes"
                      : "NO")
              << " (the Figure 23 five-phase progression)\n";
  }

  std::cout << "\npaper: ISPs can oscillate between turning S*BGP on and off "
               "and never reach a stable state (Appendix F); deciding "
               "termination is PSPACE-complete (Theorem 7.1) via SELECTOR / "
               "TRANSITION gadgets driving a space-bounded Turing machine "
               "(see src/gadgets/turing.*).\n";
  return 0;
}
