// A third, independent implementation of the Appendix A routing semantics:
// a naive fixed-point relaxation that iterates "who would export what to
// whom" until nothing changes, with none of the three-phase BFS structure
// of rt::RibComputer (and none of the message machinery of proto::BgpEngine).
// On random graphs all three implementations must agree on every AS's route
// class and length.
#include <gtest/gtest.h>

#include <array>

#include "routing/rib.h"
#include "test_util.h"

namespace sbgp::rt {
namespace {

struct RefRoute {
  RouteClass cls = RouteClass::None;
  std::uint32_t len = 0xFFFFFFFF;
};

/// Naive reference: repeat full rounds of "every node re-selects from what
/// its neighbours would export to it" until a fixed point.
std::vector<RefRoute> reference_routes(const topo::AsGraph& g, topo::AsId dest) {
  const std::size_t n = g.num_nodes();
  std::vector<RefRoute> route(n);
  route[dest] = {RouteClass::Self, 0};

  auto exported_to = [&](topo::AsId from, topo::Link link_from_receiver) {
    // What `from` offers a neighbour, given the receiver reaches `from`
    // over `link_from_receiver` (Customer => from is the receiver's
    // customer, Provider => from is the receiver's provider). GR2: own
    // prefix and customer routes go to everyone; peer/provider routes go
    // only to from's customers — i.e. only when from is the receiver's
    // provider.
    const RefRoute& r = route[from];
    if (r.cls == RouteClass::None) return RefRoute{};
    const bool to_everyone =
        r.cls == RouteClass::Self || r.cls == RouteClass::Customer;
    if (to_everyone || link_from_receiver == topo::Link::Provider) return r;
    return RefRoute{};
  };

  bool changed = true;
  std::size_t guard = 0;
  while (changed && ++guard < 4 * n) {
    changed = false;
    for (topo::AsId i = 0; i < n; ++i) {
      if (i == dest) continue;
      RefRoute best;  // LP then SP
      auto consider = [&](topo::AsId nb, topo::Link link, RouteClass as_class) {
        const RefRoute offer = exported_to(nb, link);
        if (offer.cls == RouteClass::None) return;
        const RefRoute cand{as_class, offer.len + 1};
        if (best.cls == RouteClass::None || cand.cls < best.cls ||
            (cand.cls == best.cls && cand.len < best.len)) {
          best = cand;
        }
      };
      for (const auto c : g.customers(i)) {
        consider(c, topo::Link::Customer, RouteClass::Customer);
      }
      for (const auto p : g.peers(i)) consider(p, topo::Link::Peer, RouteClass::Peer);
      for (const auto p : g.providers(i)) {
        consider(p, topo::Link::Provider, RouteClass::Provider);
      }
      if (best.cls != route[i].cls || best.len != route[i].len) {
        route[i] = best;
        changed = true;
      }
    }
  }
  EXPECT_LT(guard, 4 * n) << "reference router failed to converge";
  return route;
}

class ReferenceRouter : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReferenceRouter, AgreesWithThreePhaseRib) {
  const auto net = test::small_internet(180, GetParam());
  const auto& g = net.graph;
  RibComputer rc(g);
  DestRib rib;
  for (topo::AsId d = 0; d < 30; ++d) {
    rc.compute(d, rib);
    const auto ref = reference_routes(g, d);
    for (topo::AsId i = 0; i < g.num_nodes(); ++i) {
      ASSERT_EQ(rib.cls[i], ref[i].cls)
          << "class mismatch at AS " << g.asn(i) << " dest " << g.asn(d);
      if (rib.reachable(i) && i != d) {
        ASSERT_EQ(rib.len[i], ref[i].len)
            << "length mismatch at AS " << g.asn(i) << " dest " << g.asn(d);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReferenceRouter,
                         ::testing::Values(3, 7, 13, 29, 31));

TEST(ReferenceRouter, HandGraphWithPeersAndValleys) {
  // The graph from Rib.PeerRouteOnlyOverCustomerRoutes plus a decoy that
  // would be used if valleys were allowed.
  topo::AsGraph g;
  const auto p1 = g.add_as(1);
  const auto p2 = g.add_as(2);
  const auto d = g.add_as(3);
  const auto x = g.add_as(4);
  const auto y = g.add_as(5);
  g.add_peer(p1, p2);
  g.add_customer_provider(p2, d);
  g.add_customer_provider(p1, x);
  g.add_peer(x, y);  // y could only reach d through a forbidden valley
  g.finalize();
  const auto ref = reference_routes(g, d);
  EXPECT_EQ(ref[p1].cls, rt::RouteClass::Peer);
  EXPECT_EQ(ref[x].cls, rt::RouteClass::Provider);
  EXPECT_EQ(ref[y].cls, rt::RouteClass::None)
      << "x must not export its provider route to peer y";
  rt::RibComputer rc(g);
  const auto rib = rc.compute(d);
  EXPECT_EQ(rib.cls[y], rt::RouteClass::None);
}

}  // namespace
}  // namespace sbgp::rt
