// Shared helpers for the test suite: canonical hand-built graphs and random
// instance generators.
#pragma once

#include <random>
#include <vector>

#include "core/deployment_state.h"
#include "topology/as_graph.h"
#include "topology/topology_gen.h"

namespace sbgp::test {

using topo::AsGraph;
using topo::AsId;

/// A three-node provider chain  t -> m -> s  (t provides m, m provides s).
/// Hand-checkable utilities; see test_simulator.cpp.
struct Chain {
  AsGraph g;
  AsId t, m, s;
};

inline Chain make_chain() {
  Chain c;
  c.t = c.g.add_as(1);
  c.m = c.g.add_as(2);
  c.s = c.g.add_as(3);
  c.g.add_customer_provider(c.t, c.m);
  c.g.add_customer_provider(c.m, c.s);
  c.g.finalize();
  return c;
}

/// The canonical DIAMOND of Section 5.1 (Figure 2): early adopter e provides
/// competing ISPs a and b, which both provide stub s; x is e's own stub
/// (a traffic source secured simplex at round 0).
struct Diamond {
  AsGraph g;
  AsId e, a, b, s, x;
};

inline Diamond make_diamond() {
  Diamond d;
  d.e = d.g.add_as(10);
  d.a = d.g.add_as(20);
  d.b = d.g.add_as(30);
  d.s = d.g.add_as(40);
  d.x = d.g.add_as(50);
  d.g.add_customer_provider(d.e, d.a);
  d.g.add_customer_provider(d.e, d.b);
  d.g.add_customer_provider(d.a, d.s);
  d.g.add_customer_provider(d.b, d.s);
  d.g.add_customer_provider(d.e, d.x);
  d.g.finalize();
  return d;
}

/// A deterministic small synthetic Internet for integration tests.
inline topo::Internet small_internet(std::uint32_t ases = 300, std::uint64_t seed = 7) {
  topo::InternetConfig cfg;
  cfg.total_ases = ases;
  cfg.num_tier1 = 4;
  cfg.seed = seed;
  return topo::generate_internet(cfg);
}

/// A uniformly random deployment state: each ISP/CP secure with probability
/// p; secure ISPs simplex-secure their stubs (consistent with how states
/// arise in the deployment process).
inline core::DeploymentState random_state(const AsGraph& g, double p,
                                          std::uint64_t seed) {
  core::DeploymentState s(g.num_nodes());
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  for (AsId n = 0; n < g.num_nodes(); ++n) {
    if (!g.is_stub(n) && u(rng) < p) s.set_secure(n, true);
  }
  for (AsId n = 0; n < g.num_nodes(); ++n) {
    if (g.is_isp(n) && s.is_secure(n)) s.secure_isp_with_stubs(g, n);
  }
  return s;
}

}  // namespace sbgp::test
