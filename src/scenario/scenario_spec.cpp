#include "scenario/scenario_spec.h"

#include <fstream>
#include <sstream>

namespace sbgp::scenario {

using exp::Json;
using exp::JsonError;

const char* to_string(AttackKind a) {
  switch (a) {
    case AttackKind::OriginHijack: return "hijack";
    case AttackKind::Interception: return "interception";
    case AttackKind::Downgrade: return "downgrade";
  }
  return "?";
}

const char* to_string(DefensePolicy p) {
  switch (p) {
    case DefensePolicy::SecureTiebreak: return "secure-tiebreak";
    case DefensePolicy::RovDropInvalid: return "rov";
    case DefensePolicy::SecureFirst: return "secure-first";
  }
  return "?";
}

const char* to_string(Placement p) {
  switch (p) {
    case Placement::UniformRandom: return "uniform";
    case Placement::DegreeTier: return "degree-tier";
    case Placement::StubOnly: return "stub-only";
    case Placement::FixedList: return "fixed";
  }
  return "?";
}

namespace {

AttackKind attack_from_string(const std::string& s, const std::string& path) {
  if (s == "hijack" || s == "origin-hijack") return AttackKind::OriginHijack;
  if (s == "interception") return AttackKind::Interception;
  if (s == "downgrade") return AttackKind::Downgrade;
  throw JsonError(path + ": unknown attack '" + s +
                  "' (want hijack | interception | downgrade)");
}

DefensePolicy policy_from_string(const std::string& s, const std::string& path) {
  // "security-third" is the paper's name for the secure-tiebreak ranking.
  if (s == "secure-tiebreak" || s == "security-third") {
    return DefensePolicy::SecureTiebreak;
  }
  if (s == "rov" || s == "rov-drop-invalid" || s == "drop-invalid") {
    return DefensePolicy::RovDropInvalid;
  }
  if (s == "secure-first") return DefensePolicy::SecureFirst;
  throw JsonError(path + ": unknown policy '" + s +
                  "' (want secure-tiebreak | rov | secure-first)");
}

Placement placement_from_string(const std::string& s, const std::string& path) {
  if (s == "uniform") return Placement::UniformRandom;
  if (s == "degree-tier") return Placement::DegreeTier;
  if (s == "stub-only") return Placement::StubOnly;
  if (s == "fixed") return Placement::FixedList;
  throw JsonError(path + ": unknown placement '" + s +
                  "' (want uniform | degree-tier | stub-only | fixed)");
}

std::string at(const std::string& path, const char* key, std::size_t idx) {
  std::ostringstream os;
  os << path << '.' << key << '[' << idx << ']';
  return os.str();
}

std::vector<std::uint32_t> asn_list(const Json& v, const std::string& path,
                                    const char* key) {
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < v.items().size(); ++i) {
    const std::uint64_t asn = v.items()[i].as_u64();
    if (asn > 0xFFFFFFFFull) {
      throw JsonError(at(path, key, i) + ": ASN out of range");
    }
    out.push_back(static_cast<std::uint32_t>(asn));
  }
  return out;
}

}  // namespace

std::string Scenario::key() const {
  std::ostringstream os;
  os << "attack=" << to_string(attack);
  if (attack == AttackKind::Interception) os << ";hops=" << hops;
  os << ";policy=" << to_string(policy)
     << ";placement=" << to_string(placement);
  if (placement == Placement::DegreeTier) os << ";tiertop=" << tier_top;
  if (placement == Placement::FixedList) {
    os << ";attackers=";
    for (std::size_t i = 0; i < attacker_asns.size(); ++i) {
      os << (i == 0 ? "" : "+") << attacker_asns[i];
    }
  }
  if (!victim_asns.empty()) {
    os << ";victims=";
    for (std::size_t i = 0; i < victim_asns.size(); ++i) {
      os << (i == 0 ? "" : "+") << victim_asns[i];
    }
  }
  os << ";samples=" << samples << ";seed=" << seed;
  if (baseline) os << ";baseline";
  return os.str();
}

std::size_t ScenarioSpec::num_points() const {
  std::size_t per_attack = 0;
  for (const AttackKind a : attacks) {
    per_attack += a == AttackKind::Interception ? hops.size() : 1;
  }
  return per_attack * policies.size() * placements.size();
}

std::vector<Scenario> ScenarioSpec::expand() const {
  std::vector<Scenario> out;
  out.reserve(num_points());
  for (const AttackKind a : attacks) {
    for (const DefensePolicy p : policies) {
      for (const Placement pl : placements) {
        const std::size_t nh = a == AttackKind::Interception ? hops.size() : 1;
        for (std::size_t h = 0; h < nh; ++h) {
          Scenario s;
          s.attack = a;
          s.policy = p;
          s.placement = pl;
          s.hops = a == AttackKind::Interception ? hops[h] : std::uint16_t{1};
          s.tier_top = tier_top;
          s.attacker_asns = attacker_asns;
          s.victim_asns = victim_asns;
          s.samples = samples;
          s.seed = seed;
          s.baseline = baseline;
          out.push_back(std::move(s));
        }
      }
    }
  }
  return out;
}

Json ScenarioSpec::to_json() const {
  Json j = Json::object();
  Json as = Json::array();
  for (const AttackKind a : attacks) as.push(Json::string(to_string(a)));
  j.set("attacks", std::move(as));
  Json ps = Json::array();
  for (const DefensePolicy p : policies) ps.push(Json::string(to_string(p)));
  j.set("policies", std::move(ps));
  Json pls = Json::array();
  for (const Placement p : placements) pls.push(Json::string(to_string(p)));
  j.set("placements", std::move(pls));
  Json hs = Json::array();
  for (const std::uint16_t h : hops) hs.push(Json::number(std::uint64_t{h}));
  j.set("hops", std::move(hs));
  j.set("tier_top", Json::number(std::uint64_t{tier_top}));
  if (!attacker_asns.empty()) {
    Json a = Json::array();
    for (const std::uint32_t asn : attacker_asns) {
      a.push(Json::number(std::uint64_t{asn}));
    }
    j.set("attackers", std::move(a));
  }
  if (!victim_asns.empty()) {
    Json v = Json::array();
    for (const std::uint32_t asn : victim_asns) {
      v.push(Json::number(std::uint64_t{asn}));
    }
    j.set("victims", std::move(v));
  }
  j.set("samples", Json::number(static_cast<std::uint64_t>(samples)));
  j.set("seed", Json::number(seed));
  j.set("baseline", Json::boolean(baseline));
  return j;
}

ScenarioSpec ScenarioSpec::from_json(const Json& j, const std::string& path) {
  if (j.type() != Json::Type::Object) {
    throw JsonError(path + ": must be an object");
  }
  ScenarioSpec spec;
  for (const auto& [k, v] : j.members()) {
    (void)v;
    static constexpr const char* kKnown[] = {
        "attacks",  "policies", "placements", "hops",     "tier_top",
        "attackers", "victims",  "samples",    "seed",     "baseline"};
    bool ok = false;
    for (const char* a : kKnown) {
      if (k == a) {
        ok = true;
        break;
      }
    }
    if (!ok) throw JsonError(path + ": unknown key '" + k + "'");
  }
  if (const Json* v = j.find("attacks")) {
    spec.attacks.clear();
    for (std::size_t i = 0; i < v->items().size(); ++i) {
      spec.attacks.push_back(
          attack_from_string(v->items()[i].as_string(), at(path, "attacks", i)));
    }
    if (spec.attacks.empty()) throw JsonError(path + ".attacks: must be non-empty");
  }
  if (const Json* v = j.find("policies")) {
    spec.policies.clear();
    for (std::size_t i = 0; i < v->items().size(); ++i) {
      spec.policies.push_back(policy_from_string(v->items()[i].as_string(),
                                                 at(path, "policies", i)));
    }
    if (spec.policies.empty()) {
      throw JsonError(path + ".policies: must be non-empty");
    }
  }
  if (const Json* v = j.find("placements")) {
    spec.placements.clear();
    for (std::size_t i = 0; i < v->items().size(); ++i) {
      spec.placements.push_back(placement_from_string(
          v->items()[i].as_string(), at(path, "placements", i)));
    }
    if (spec.placements.empty()) {
      throw JsonError(path + ".placements: must be non-empty");
    }
  }
  if (const Json* v = j.find("hops")) {
    spec.hops.clear();
    for (std::size_t i = 0; i < v->items().size(); ++i) {
      const std::uint64_t h = v->items()[i].as_u64();
      if (h < 1 || h > 1000) {
        throw JsonError(at(path, "hops", i) + ": must be in [1,1000]");
      }
      spec.hops.push_back(static_cast<std::uint16_t>(h));
    }
    if (spec.hops.empty()) throw JsonError(path + ".hops: must be non-empty");
  }
  if (const Json* v = j.find("tier_top")) {
    const std::uint64_t t = v->as_u64();
    if (t < 1 || t > 0xFFFFFFFFull) {
      throw JsonError(path + ".tier_top: must be >= 1");
    }
    spec.tier_top = static_cast<std::uint32_t>(t);
  }
  if (const Json* v = j.find("attackers")) {
    spec.attacker_asns = asn_list(*v, path, "attackers");
  }
  if (const Json* v = j.find("victims")) {
    spec.victim_asns = asn_list(*v, path, "victims");
  }
  if (const Json* v = j.find("samples")) {
    spec.samples = static_cast<std::size_t>(v->as_u64());
    if (spec.samples == 0) throw JsonError(path + ".samples: must be > 0");
  }
  if (const Json* v = j.find("seed")) spec.seed = v->as_u64();
  if (const Json* v = j.find("baseline")) spec.baseline = v->as_bool();
  for (const Placement p : spec.placements) {
    if (p == Placement::FixedList && spec.attacker_asns.empty()) {
      throw JsonError(path +
                      ".placements: 'fixed' requires a non-empty 'attackers' list");
    }
  }
  return spec;
}

ScenarioSpec ScenarioSpec::from_file(const std::string& file) {
  std::ifstream in(file);
  if (!in) throw JsonError("cannot open scenario file '" + file + "'");
  std::stringstream buf;
  buf << in.rdbuf();
  return from_json(Json::parse(buf.str()));
}

}  // namespace sbgp::scenario
