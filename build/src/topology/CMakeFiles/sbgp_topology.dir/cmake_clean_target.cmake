file(REMOVE_RECURSE
  "libsbgp_topology.a"
)
