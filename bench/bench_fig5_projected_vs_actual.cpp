// Figure 5: for each round i, the median utility and median *projected*
// utility (normalized by starting utility) of the ISPs that become secure in
// round i+1. Early rounds show deployment-to-steal (projection above
// starting utility); later rounds show deployment-to-recover (current
// utility below starting, projection near it).
#include "bench_common.h"
#include "stats/histogram.h"
#include "stats/table.h"

int main(int argc, char** argv) {
  using namespace sbgp;
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header("Figure 5 - median utility vs projection of next-round flippers",
                      opt);

  auto net = bench::make_internet(opt);
  const auto& g = net.graph;
  core::DeploymentSimulator sim(g, bench::case_study_config(opt));

  struct RoundSample {
    stats::Summary current, projected;
  };
  std::vector<RoundSample> samples;
  std::vector<double> start;  // filled after run

  std::vector<std::vector<double>> cur_hist, proj_hist;
  std::vector<std::vector<topo::AsId>> flips;
  const auto result = sim.run(
      core::DeploymentState::initial(g, bench::case_study_adopters(net)),
      [&](const core::RoundObservation& obs) {
        cur_hist.push_back(*obs.utility);
        proj_hist.push_back(*obs.projected_on);
        flips.push_back(*obs.flipping_on);
      });
  start = result.starting_utility;

  samples.resize(cur_hist.size());
  for (std::size_t r = 0; r < flips.size(); ++r) {
    for (const auto n : flips[r]) {
      if (start[n] <= 0) continue;
      samples[r].current.add(cur_hist[r][n] / start[n]);
      samples[r].projected.add(proj_hist[r][n] / start[n]);
    }
  }

  stats::Table t({"round", "flippers", "median u/u0", "median projected u/u0"});
  for (std::size_t r = 0; r < samples.size(); ++r) {
    if (samples[r].current.count() == 0) continue;
    t.begin_row();
    t.add(r + 1);
    t.add(samples[r].current.count());
    t.add(samples[r].current.median(), 3);
    t.add(samples[r].projected.median(), 3);
  }
  t.print(std::cout);
  bench::print_paper_note(
      "rounds 1-9: projected utility >= 1.05x starting utility (stealing); "
      "rounds 10-20: current utility dips ~5% below starting while the "
      "projection approaches 1.0 (recovering lost traffic).");
  return 0;
}
