// Figure 6: cumulative fraction of ISPs that have deployed S*BGP by each
// round, bucketed by ISP degree. High-degree ISPs adopt earlier and more
// completely; a persistent set of low-degree ISPs (providers of single-homed
// stubs, facing no competition) never deploys.
#include "bench_common.h"
#include "stats/histogram.h"
#include "stats/table.h"

int main(int argc, char** argv) {
  using namespace sbgp;
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header("Figure 6 - cumulative ISP adoption by degree", opt);

  auto net = bench::make_internet(opt);
  const auto& g = net.graph;
  core::DeploymentSimulator sim(g, bench::case_study_config(opt));

  const std::vector<std::uint64_t> bounds{5, 10, 50,
                                          std::numeric_limits<std::uint64_t>::max()};
  stats::BucketedCounter counter(bounds);
  for (topo::AsId n = 0; n < g.num_nodes(); ++n) {
    if (g.is_isp(n)) counter.add_member(g.degree(n));
  }

  std::vector<std::vector<topo::AsId>> flips;
  const auto result =
      sim.run(core::DeploymentState::initial(g, bench::case_study_adopters(net)),
              [&](const core::RoundObservation& obs) {
                flips.push_back(*obs.flipping_on);
              });

  std::vector<std::string> headers{"round"};
  for (std::size_t b = 0; b < counter.buckets(); ++b) {
    headers.push_back("deg " + counter.label(b));
  }
  stats::Table t(headers);

  stats::BucketedCounter running(bounds);
  for (topo::AsId n = 0; n < g.num_nodes(); ++n) {
    if (g.is_isp(n)) running.add_member(g.degree(n));
  }
  // Early adopter ISPs count as round 0.
  for (const auto a : bench::case_study_adopters(net)) {
    if (g.is_isp(a)) running.add_hit(g.degree(a));
  }
  for (std::size_t r = 0; r < flips.size(); ++r) {
    for (const auto n : flips[r]) running.add_hit(g.degree(n));
    t.begin_row();
    t.add(r + 1);
    for (std::size_t b = 0; b < running.buckets(); ++b) {
      t.add_percent(running.fraction(b), 1);
    }
  }
  t.print(std::cout);

  // The never-adopters and their average degree (Section 5.3).
  stats::Summary never_degree;
  for (topo::AsId n = 0; n < g.num_nodes(); ++n) {
    if (g.is_isp(n) && !result.final_state.is_secure(n)) {
      never_degree.add(static_cast<double>(g.degree(n)));
    }
  }
  std::cout << "\nISPs never secure: " << never_degree.count()
            << " (mean degree " << never_degree.mean() << ")\n";
  bench::print_paper_note(
      "low-degree ISPs (<=10) adopt least; ~1000 ISPs of average degree 6 "
      "never deploy in any simulation because they face no competition.");
  return 0;
}
