#include "obs/build_info.h"

#ifndef SBGPSIM_GIT_DESCRIBE
#define SBGPSIM_GIT_DESCRIBE "unknown"
#endif
#ifndef SBGPSIM_BUILD_TYPE
#define SBGPSIM_BUILD_TYPE "unknown"
#endif

namespace sbgp::obs {

const char* git_describe() { return SBGPSIM_GIT_DESCRIBE; }

const char* build_type() { return SBGPSIM_BUILD_TYPE; }

bool obs_enabled() {
#ifdef SBGPSIM_OBS_DISABLED
  return false;
#else
  return true;
#endif
}

const char* build_info_line() {
#ifdef SBGPSIM_OBS_DISABLED
  return SBGPSIM_GIT_DESCRIBE " " SBGPSIM_BUILD_TYPE " obs=off";
#else
  return SBGPSIM_GIT_DESCRIBE " " SBGPSIM_BUILD_TYPE " obs=on";
#endif
}

}  // namespace sbgp::obs
