#include <gtest/gtest.h>

#include <cmath>

#include "core/simulator.h"
#include "parallel/thread_pool.h"
#include "test_util.h"

namespace sbgp::core {
namespace {

using test::make_chain;
using test::make_diamond;
using test::small_internet;

TEST(Utilities, HandComputedChain) {
  const auto c = make_chain();  // t -> m -> s, unit weights
  SimConfig cfg;
  cfg.threads = 1;
  par::ThreadPool pool(1);
  std::vector<std::uint8_t> nobody(c.g.num_nodes(), 0);
  const auto u = compute_utilities(c.g, nobody, cfg, pool);

  // Outgoing (Eq. 1): m forwards t's unit of traffic toward its customer s.
  EXPECT_DOUBLE_EQ(u.outgoing[c.m], 1.0);
  EXPECT_DOUBLE_EQ(u.outgoing[c.t], 0.0);  // t's subtree toward m/s is empty
  EXPECT_DOUBLE_EQ(u.outgoing[c.s], 0.0);
  // Incoming (Eq. 2): m receives s's traffic (toward m and toward t) on a
  // customer edge; t receives m's whole subtree toward t.
  EXPECT_DOUBLE_EQ(u.incoming[c.m], 2.0);
  EXPECT_DOUBLE_EQ(u.incoming[c.t], 2.0);
  EXPECT_DOUBLE_EQ(u.incoming[c.s], 0.0);
}

TEST(Utilities, WeightsScaleContributions) {
  auto c = make_chain();
  c.g.set_weight(c.t, 10.0);
  SimConfig cfg;
  cfg.threads = 1;
  par::ThreadPool pool(1);
  std::vector<std::uint8_t> nobody(c.g.num_nodes(), 0);
  const auto u = compute_utilities(c.g, nobody, cfg, pool);
  EXPECT_DOUBLE_EQ(u.outgoing[c.m], 10.0);  // t's weight now 10
}

TEST(Simulator, DiamondCompetitionDrivesDeployment) {
  // Section 5.1: the early adopter e secures its stub x; competing ISPs a
  // and b then deploy to steal / regain the traffic from e toward stub s.
  const auto d = make_diamond();
  SimConfig cfg;
  cfg.model = UtilityModel::Outgoing;
  cfg.theta = 0.01;
  cfg.threads = 1;
  DeploymentSimulator sim(d.g, cfg);

  const std::vector<topo::AsId> adopters{d.e};
  const auto result = sim.run(DeploymentState::initial(d.g, adopters));

  EXPECT_EQ(result.outcome, Outcome::Stable);
  EXPECT_TRUE(result.final_state.is_secure(d.e));
  EXPECT_TRUE(result.final_state.is_secure(d.x)) << "adopter's stub is simplex";
  EXPECT_TRUE(result.final_state.is_secure(d.a));
  EXPECT_TRUE(result.final_state.is_secure(d.b));
  EXPECT_TRUE(result.final_state.is_secure(d.s));
  // The two competitors deploy in *different* rounds: one steals, one
  // regains (Section 5.5).
  ASSERT_GE(result.rounds.size(), 2u);
  EXPECT_EQ(result.rounds[0].newly_secure_isps, 1u);
  EXPECT_EQ(result.rounds[1].newly_secure_isps, 1u);
}

TEST(Simulator, HighThetaBlocksDeploymentForIspsWithBaselineRevenue) {
  // Eq. 3's threshold is multiplicative: an ISP with *zero* utility deploys
  // for any gain, but one with baseline revenue needs the gain to exceed
  // theta times that revenue. Extend the diamond so both competitors carry
  // baseline traffic (a private stub each).
  topo::AsGraph g;
  const auto e = g.add_as(10);
  const auto a = g.add_as(20);
  const auto b = g.add_as(30);
  const auto s = g.add_as(40);
  const auto x = g.add_as(50);
  const auto ya = g.add_as(60);
  const auto yb = g.add_as(70);
  g.add_customer_provider(e, a);
  g.add_customer_provider(e, b);
  g.add_customer_provider(a, s);
  g.add_customer_provider(b, s);
  g.add_customer_provider(e, x);
  g.add_customer_provider(a, ya);
  g.add_customer_provider(b, yb);
  g.finalize();

  for (const double theta : {100.0, 0.01}) {
    SimConfig cfg;
    cfg.model = UtilityModel::Outgoing;
    cfg.theta = theta;
    cfg.threads = 1;
    DeploymentSimulator sim(g, cfg);
    const auto result =
        sim.run(DeploymentState::initial(g, std::vector<topo::AsId>{e}));
    EXPECT_EQ(result.outcome, Outcome::Stable);
    if (theta > 1.0) {
      EXPECT_FALSE(result.final_state.is_secure(a));
      EXPECT_FALSE(result.final_state.is_secure(b));
    } else {
      EXPECT_TRUE(result.final_state.is_secure(a));
      EXPECT_TRUE(result.final_state.is_secure(b));
    }
  }
}

TEST(Simulator, NoAdoptersNoDeploymentAtPositiveTheta) {
  const auto net = small_internet(300, 3);
  SimConfig cfg;
  cfg.theta = 0.05;
  cfg.threads = 1;
  DeploymentSimulator sim(net.graph, cfg);
  const auto result = sim.run(DeploymentState(net.graph.num_nodes()));
  EXPECT_EQ(result.outcome, Outcome::Stable);
  EXPECT_EQ(result.final_state.num_secure(), 0u);
  EXPECT_TRUE(result.rounds.empty());
}

TEST(Simulator, CascadeSecuresMajorityAtLowTheta) {
  auto net = small_internet(400, 7);
  topo::apply_traffic_model(net.graph, net.cps, 0.10);
  SimConfig cfg;
  cfg.theta = 0.05;
  cfg.threads = 1;
  DeploymentSimulator sim(net.graph, cfg);

  std::vector<topo::AsId> adopters = net.cps;
  for (const auto t : topo::top_degree_isps(net.graph, 5)) adopters.push_back(t);
  const auto result = sim.run(DeploymentState::initial(net.graph, adopters));

  EXPECT_EQ(result.outcome, Outcome::Stable);
  const double frac = static_cast<double>(result.final_state.num_secure()) /
                      static_cast<double>(net.graph.num_nodes());
  EXPECT_GT(frac, 0.5) << "the paper's case study reaches 85%";
  // But some ISPs always remain insecure (Section 6.3).
  EXPECT_LT(result.final_state.num_secure_of_class(net.graph, topo::AsClass::Isp),
            net.graph.num_isps());
}

TEST(Simulator, MonotoneGrowthInOutgoingModel) {
  // Theorem 6.2: nobody turns off in the outgoing model, so per-round
  // totals are non-decreasing.
  const auto net = small_internet(300, 13);
  SimConfig cfg;
  cfg.theta = 0.02;
  cfg.threads = 1;
  DeploymentSimulator sim(net.graph, cfg);
  std::vector<topo::AsId> adopters = topo::top_degree_isps(net.graph, 5);
  const auto result = sim.run(DeploymentState::initial(net.graph, adopters));
  std::size_t prev = 0;
  for (const auto& r : result.rounds) {
    EXPECT_EQ(r.turned_off, 0u);
    EXPECT_GE(r.total_secure_ases, prev);
    prev = r.total_secure_ases;
  }
}

// Theorem 6.2 (property form): in the outgoing model, turning S*BGP off
// never increases a secure node's utility — over random graphs and states.
class OutgoingMonotonicity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OutgoingMonotonicity, TurningOffNeverGains) {
  const auto net = small_internet(200, GetParam());
  const auto state = test::random_state(net.graph, 0.35, GetParam() * 31 + 1);
  SimConfig cfg;
  cfg.threads = 1;
  par::ThreadPool pool(1);
  const auto base = compute_utilities(net.graph, state.flags(), cfg, pool);

  std::size_t checked = 0;
  for (topo::AsId n = 0; n < net.graph.num_nodes() && checked < 12; ++n) {
    if (!net.graph.is_isp(n) || !state.is_secure(n)) continue;
    ++checked;
    auto flags = state.flags();
    flags[n] = 0;  // stubs stay simplex-secure (sticky)
    const auto off = compute_utilities(net.graph, flags, cfg, pool);
    EXPECT_LE(off.outgoing[n], base.outgoing[n] + 1e-9)
        << "AS " << net.graph.asn(n) << " gained by turning off";
  }
  EXPECT_GT(checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OutgoingMonotonicity,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Simulator, ProjectionsMatchRealisedUtilityForLoneFlipper) {
  // When exactly one ISP flips in a round, its projected utility must equal
  // its realised utility next round exactly (Section 8.1's gap exists only
  // under simultaneous flips).
  const auto d = make_diamond();
  SimConfig cfg;
  cfg.model = UtilityModel::Outgoing;
  cfg.theta = 0.01;
  cfg.threads = 1;
  DeploymentSimulator sim(d.g, cfg);

  struct Seen {
    double projected = -1.0;
    topo::AsId who = topo::kNoAs;
    double realised = -1.0;
    std::size_t flip_round = 0;
  } seen;
  const auto result = sim.run(
      DeploymentState::initial(d.g, std::vector<topo::AsId>{d.e}),
      [&](const RoundObservation& obs) {
        if (seen.who != topo::kNoAs && seen.realised < 0.0) {
          seen.realised = (*obs.utility)[seen.who];
        }
        if (obs.flipping_on->size() == 1 && seen.who == topo::kNoAs) {
          seen.who = obs.flipping_on->front();
          seen.projected = (*obs.projected_on)[seen.who];
          seen.flip_round = obs.round;
        }
      });
  ASSERT_EQ(result.outcome, Outcome::Stable);
  ASSERT_NE(seen.who, topo::kNoAs);
  ASSERT_GE(seen.realised, 0.0);
  EXPECT_NEAR(seen.projected, seen.realised, 1e-9);
}

TEST(Simulator, StubTiebreakFlagChangesOnlyStubChoices) {
  const auto net = small_internet(250, 19);
  for (const bool stub_ties : {true, false}) {
    SimConfig cfg;
    cfg.theta = 0.05;
    cfg.stub_breaks_ties = stub_ties;
    cfg.threads = 1;
    DeploymentSimulator sim(net.graph, cfg);
    std::vector<topo::AsId> adopters = topo::top_degree_isps(net.graph, 5);
    const auto result = sim.run(DeploymentState::initial(net.graph, adopters));
    EXPECT_EQ(result.outcome, Outcome::Stable);
    // Section 6.7: deployment still progresses when stubs ignore security.
    EXPECT_GT(result.final_state.num_secure(), adopters.size());
  }
}

TEST(Simulator, FrozenNodesNeverFlip) {
  const auto d = make_diamond();
  std::vector<std::uint8_t> frozen(d.g.num_nodes(), 0);
  frozen[d.a] = 1;
  SimConfig cfg;
  cfg.model = UtilityModel::Outgoing;
  cfg.theta = 0.01;
  cfg.threads = 1;
  cfg.frozen = &frozen;
  DeploymentSimulator sim(d.g, cfg);
  const auto result =
      sim.run(DeploymentState::initial(d.g, std::vector<topo::AsId>{d.e}));
  EXPECT_EQ(result.outcome, Outcome::Stable);
  EXPECT_FALSE(result.final_state.is_secure(d.a));
  EXPECT_TRUE(result.final_state.is_secure(d.b));
}

TEST(Simulator, StartingUtilityIsAllInsecureUtility) {
  const auto c = make_chain();
  SimConfig cfg;
  cfg.threads = 1;
  DeploymentSimulator sim(c.g, cfg);
  const auto result = sim.run(DeploymentState(c.g.num_nodes()));
  ASSERT_EQ(result.starting_utility.size(), c.g.num_nodes());
  EXPECT_DOUBLE_EQ(result.starting_utility[c.m], 1.0);  // cf. hand-check above
}

TEST(DeploymentState, InitialSecuresAdoptersAndTheirStubs) {
  const auto d = make_diamond();
  const auto s = DeploymentState::initial(d.g, std::vector<topo::AsId>{d.e});
  EXPECT_TRUE(s.is_secure(d.e));
  EXPECT_TRUE(s.is_secure(d.x));
  EXPECT_FALSE(s.is_secure(d.a));
  EXPECT_FALSE(s.is_secure(d.s)) << "s is not e's direct customer";
  EXPECT_EQ(s.num_secure(), 2u);
}

TEST(DeploymentState, HashDistinguishesStates) {
  DeploymentState a(10), b(10);
  EXPECT_EQ(a.hash(), b.hash());
  b.set_secure(3, true);
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_FALSE(a == b);
}

// The Appendix C.4 pruning rules must be *exact*: running the simulator
// with pruning disabled (projecting every (ISP, destination) pair by brute
// force) must produce identical per-round flips, projections and outcomes.
struct PruningParam {
  std::uint64_t seed;
  UtilityModel model;
  bool stub_ties;
};

class PruningEquivalence : public ::testing::TestWithParam<PruningParam> {};

TEST_P(PruningEquivalence, PrunedEqualsExhaustive) {
  const auto p = GetParam();
  const auto net = test::small_internet(150, p.seed);
  const auto& g = net.graph;
  std::vector<topo::AsId> adopters = topo::top_degree_isps(g, 3);

  struct Trace {
    std::vector<std::vector<topo::AsId>> flips_on, flips_off;
    std::vector<std::vector<double>> proj_on;
    Outcome outcome = Outcome::Stable;
    std::size_t secure = 0;
  };
  auto run_one = [&](bool pruning) {
    SimConfig cfg;
    cfg.model = p.model;
    cfg.theta = 0.05;
    cfg.stub_breaks_ties = p.stub_ties;
    cfg.threads = 1;
    cfg.max_rounds = 30;
    cfg.use_projection_pruning = pruning;
    DeploymentSimulator sim(g, cfg);
    Trace t;
    const auto result = sim.run(DeploymentState::initial(g, adopters),
                                [&](const RoundObservation& obs) {
                                  t.flips_on.push_back(*obs.flipping_on);
                                  t.flips_off.push_back(*obs.flipping_off);
                                  t.proj_on.push_back(*obs.projected_on);
                                });
    t.outcome = result.outcome;
    t.secure = result.final_state.num_secure();
    return t;
  };

  const Trace pruned = run_one(true);
  const Trace full = run_one(false);
  EXPECT_EQ(pruned.outcome, full.outcome);
  EXPECT_EQ(pruned.secure, full.secure);
  ASSERT_EQ(pruned.flips_on.size(), full.flips_on.size());
  for (std::size_t r = 0; r < pruned.flips_on.size(); ++r) {
    EXPECT_EQ(pruned.flips_on[r], full.flips_on[r]) << "round " << r + 1;
    EXPECT_EQ(pruned.flips_off[r], full.flips_off[r]) << "round " << r + 1;
    // Wherever the pruned run evaluated a projection, it must equal the
    // brute-force one; wherever it skipped, the delta must truly be zero
    // (brute-force projection == current utility there, so equality of
    // flips above already covers the decision; check values too).
    for (topo::AsId n = 0; n < g.num_nodes(); ++n) {
      const double a = pruned.proj_on[r][n];
      const double b = full.proj_on[r][n];
      if (!std::isnan(a) && !std::isnan(b)) {
        EXPECT_NEAR(a, b, 1e-9) << "AS " << g.asn(n) << " round " << r + 1;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PruningEquivalence,
    ::testing::Values(PruningParam{1, UtilityModel::Outgoing, true},
                      PruningParam{2, UtilityModel::Outgoing, true},
                      PruningParam{3, UtilityModel::Outgoing, false},
                      PruningParam{4, UtilityModel::Incoming, true},
                      PruningParam{5, UtilityModel::Incoming, false},
                      PruningParam{6, UtilityModel::Incoming, true}));

TEST(Pricing, RevenueCurvesAreMonotone) {
  for (const PricingModel p :
       {PricingModel::LinearVolume, PricingModel::ConcaveVolume,
        PricingModel::TieredCapacity}) {
    double prev = -1.0;
    for (double v = 0.0; v < 100.0; v += 3.7) {
      const double r = apply_pricing(p, 10.0, v);
      EXPECT_GE(r, prev) << to_string(p) << " at " << v;
      prev = r;
    }
  }
  EXPECT_DOUBLE_EQ(apply_pricing(PricingModel::LinearVolume, 10.0, 42.0), 42.0);
  EXPECT_DOUBLE_EQ(apply_pricing(PricingModel::ConcaveVolume, 10.0, 49.0), 7.0);
  EXPECT_DOUBLE_EQ(apply_pricing(PricingModel::TieredCapacity, 10.0, 41.0), 5.0);
}

TEST(Pricing, ConcavePricingDampensDeployment) {
  // sqrt revenue compresses relative gains: a projected utility 1.2x the
  // current is only a ~1.095x revenue gain, so thresholds bite earlier.
  const auto net = test::small_internet(300, 7);
  std::size_t secure_linear = 0, secure_concave = 0;
  for (const PricingModel p :
       {PricingModel::LinearVolume, PricingModel::ConcaveVolume}) {
    SimConfig cfg;
    cfg.theta = 0.05;
    cfg.threads = 1;
    cfg.pricing = p;
    DeploymentSimulator sim(net.graph, cfg);
    const auto result = sim.run(DeploymentState::initial(
        net.graph, topo::top_degree_isps(net.graph, 5)));
    (p == PricingModel::LinearVolume ? secure_linear : secure_concave) =
        result.final_state.num_secure();
  }
  EXPECT_LE(secure_concave, secure_linear);
}

TEST(RandomizedTheta, DrawsWithinSpreadAndOnlyForIsps) {
  const auto net = test::small_internet(200, 3);
  const auto thetas = randomized_thetas(net.graph, 0.10, 0.5, 42);
  ASSERT_EQ(thetas.size(), net.graph.num_nodes());
  bool varied = false;
  for (topo::AsId n = 0; n < net.graph.num_nodes(); ++n) {
    if (net.graph.is_isp(n)) {
      EXPECT_GE(thetas[n], 0.05 - 1e-12);
      EXPECT_LE(thetas[n], 0.15 + 1e-12);
      if (std::abs(thetas[n] - 0.10) > 1e-6) varied = true;
    } else {
      EXPECT_DOUBLE_EQ(thetas[n], 0.10);
    }
  }
  EXPECT_TRUE(varied);
  // Determinism.
  EXPECT_EQ(thetas, randomized_thetas(net.graph, 0.10, 0.5, 42));
}

TEST(RandomizedTheta, ZeroSpreadMatchesUniformTheta) {
  const auto net = test::small_internet(250, 11);
  const auto thetas = randomized_thetas(net.graph, 0.05, 0.0, 1);

  SimConfig uniform;
  uniform.theta = 0.05;
  uniform.threads = 1;
  SimConfig per_node = uniform;
  per_node.per_node_theta = &thetas;

  const auto adopters = topo::top_degree_isps(net.graph, 5);
  DeploymentSimulator s1(net.graph, uniform), s2(net.graph, per_node);
  const auto r1 = s1.run(DeploymentState::initial(net.graph, adopters));
  const auto r2 = s2.run(DeploymentState::initial(net.graph, adopters));
  EXPECT_TRUE(r1.final_state == r2.final_state);
  EXPECT_EQ(r1.rounds_run(), r2.rounds_run());
}

TEST(Simulator, CpAdoptersDoNotRecruitWithoutIsps) {
  // CPs have no stub customers to simplex-upgrade; with a high theta their
  // influence is limited (Section 6.8).
  auto net = small_internet(300, 23);
  topo::apply_traffic_model(net.graph, net.cps, 0.10);
  SimConfig cfg;
  cfg.theta = 2.0;
  cfg.threads = 1;
  DeploymentSimulator sim(net.graph, cfg);
  const auto result = sim.run(DeploymentState::initial(net.graph, net.cps));
  EXPECT_EQ(result.outcome, Outcome::Stable);
  EXPECT_LE(result.final_state.num_secure(), net.cps.size() + 5);
}

}  // namespace
}  // namespace sbgp::core
