#include "exp/runner.h"

#include <stdexcept>

#include "core/early_adopters.h"
#include "core/simulator.h"
#include "scenario/engine.h"
#include "topology/graph_io.h"

namespace sbgp::exp {

const topo::Internet& GraphCache::get(const GraphSpec& spec) {
  const std::string key = spec.key();
  std::scoped_lock lock(mutex_);
  auto it = cache_.find(key);
  if (it != cache_.end()) return *it->second;

  auto net = std::make_unique<topo::Internet>();
  if (!spec.file.empty()) {
    net->graph = topo::read_as_rel_file(spec.file);
    for (topo::AsId n = 0; n < net->graph.num_nodes(); ++n) {
      if (net->graph.is_content_provider(n)) net->cps.push_back(n);
    }
    net->tier1 = net->graph.tier_ones();
  } else {
    topo::InternetConfig cfg;
    cfg.total_ases = spec.nodes;
    cfg.seed = spec.seed;
    *net = topo::generate_internet(cfg);
    if (spec.augment) *net = topo::augment_cp_peering(*net, 0.8, spec.seed + 1);
  }
  topo::apply_traffic_model(net->graph, net->cps, spec.x);
  it = cache_.emplace(key, std::move(net)).first;
  return *it->second;
}

std::size_t GraphCache::size() const {
  std::scoped_lock lock(mutex_);
  return cache_.size();
}

std::vector<topo::AsId> resolve_adopter_spec(const topo::Internet& net,
                                             const std::string& spec,
                                             std::uint64_t seed) {
  auto count_after = [&](std::size_t pos) -> std::size_t {
    const std::string digits = spec.substr(pos);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      throw std::invalid_argument("bad adopter spec '" + spec + "'");
    }
    return static_cast<std::size_t>(std::stoul(digits));
  };
  if (spec == "none") return {};
  if (spec == "cps") return net.cps;
  if (spec.rfind("top:", 0) == 0) {
    return topo::top_degree_isps(net.graph, count_after(4));
  }
  if (spec.rfind("cps+top:", 0) == 0) {
    auto out = net.cps;
    for (const auto isp : topo::top_degree_isps(net.graph, count_after(8))) {
      out.push_back(isp);
    }
    return out;
  }
  if (spec.rfind("random:", 0) == 0) {
    return core::select_adopters(net, core::AdopterStrategy::RandomIsps,
                                 count_after(7), seed);
  }
  if (spec.rfind("asn:", 0) == 0) {
    std::vector<std::uint64_t> asns;
    try {
      asns = parse_u64_list(spec.substr(4), "asn");
    } catch (const JsonError& e) {
      throw std::invalid_argument(e.what());
    }
    std::vector<topo::AsId> out;
    for (const std::uint64_t asn : asns) {
      const topo::AsId id = net.graph.find_asn(static_cast<std::uint32_t>(asn));
      if (id == topo::kNoAs) {
        throw std::invalid_argument("unknown ASN " + std::to_string(asn) +
                                    " in adopter spec '" + spec + "'");
      }
      out.push_back(id);
    }
    return out;
  }
  throw std::invalid_argument("bad adopter spec '" + spec + "'");
}

JobRecord run_job(const Job& job, GraphCache& cache, std::size_t inner_threads,
                  const std::function<bool()>& stop) {
  const topo::Internet& net = cache.get(job.graph);
  const auto adopters = resolve_adopter_spec(net, job.adopters, job.seed);

  core::SimConfig cfg;
  cfg.model = job.model == "incoming" ? core::UtilityModel::Incoming
                                      : core::UtilityModel::Outgoing;
  if (job.pricing == "concave") cfg.pricing = core::PricingModel::ConcaveVolume;
  else if (job.pricing == "tiered") cfg.pricing = core::PricingModel::TieredCapacity;
  else cfg.pricing = core::PricingModel::LinearVolume;
  cfg.pricing_tier_size = job.pricing_tier_size;
  cfg.theta = job.theta;
  cfg.stub_breaks_ties = job.stub_ties;
  cfg.max_rounds = job.max_rounds;
  cfg.threads = inner_threads;
  cfg.incremental = job.incremental;
  // A divergence throws core::IncrementalDivergence out of run(); the
  // scheduler's catch-all records the job as failed with the message.
  cfg.check_incremental = job.check_incremental;
  cfg.stop_requested = stop;

  core::DeploymentSimulator sim(net.graph, cfg);
  const auto result =
      sim.run(core::DeploymentState::initial(net.graph, adopters));

  JobRecord r;
  r.job_id = job.id;
  r.job_key = job.key();
  r.status = result.outcome == core::Outcome::Aborted ? "timeout" : "ok";
  if (result.outcome == core::Outcome::Aborted) r.error = "deadline exceeded";
  r.outcome = core::to_string(result.outcome);
  r.rounds = result.rounds_run();
  r.secure_ases = result.final_state.num_secure();
  r.secure_isps =
      result.final_state.num_secure_of_class(net.graph, topo::AsClass::Isp);
  r.num_ases = net.graph.num_nodes();
  r.num_isps = net.graph.num_isps();
  r.frac_ases = static_cast<double>(r.secure_ases) /
                static_cast<double>(net.graph.num_nodes());
  r.frac_isps = net.graph.num_isps() > 0
                    ? static_cast<double>(r.secure_isps) /
                          static_cast<double>(net.graph.num_isps())
                    : 0.0;

  // Attack-scenario evaluation against the converged deployment state. An
  // aborted (timed-out) simulation has no meaningful final state, so the
  // scenario is skipped — the job's "timeout" status already forces a rerun.
  if (job.attack_scenario.has_value() &&
      result.outcome != core::Outcome::Aborted) {
    scenario::EngineConfig ecfg;
    ecfg.tiebreak = cfg.tiebreak;
    ecfg.stub_breaks_ties = cfg.stub_breaks_ties;
    const scenario::ScenarioEngine engine(net.graph, ecfg);
    par::ThreadPool pool(inner_threads == 0 ? 1 : inner_threads);
    const scenario::ScenarioResult sr =
        engine.run(*job.attack_scenario, result.final_state.flags(), pool);
    r.scenario_key = sr.key;
    r.scn_pairs = sr.pairs;
    r.scn_mean_fooled = sr.mean_fooled();
    r.scn_mean_fooled_weight = sr.fooled_weight.mean();
    r.scn_p90_fooled = sr.fooled_fraction.quantile(0.9);
    r.scn_disconnected = sr.disconnected;
    r.scn_nonconverged = sr.nonconverged_pairs;
    r.scn_has_baseline = sr.has_baseline;
    r.scn_baseline_fooled = sr.has_baseline ? sr.baseline_fooled.mean() : 0.0;
  }
  return r;
}

}  // namespace sbgp::exp
