#include <gtest/gtest.h>

#include <random>

#include "core/simulator.h"
#include "gadgets/gadgets.h"
#include "test_util.h"

namespace sbgp::core {
namespace {

rt::LinkSet mask_without(const topo::AsGraph& g, topo::AsId node,
                         topo::AsId neighbor) {
  auto mask = rt::full_link_mask(g);
  auto& v = mask[node];
  v.erase(std::remove(v.begin(), v.end(), neighbor), v.end());
  return rt::LinkSet(g, mask);
}

TEST(PerLink, HopSecureRequiresBothEndpoints) {
  const auto d = test::make_diamond();
  const auto full = rt::LinkSet::all(d.g);
  rt::SecurityView view;
  view.enabled_links = &full;
  EXPECT_TRUE(view.hop_secure(d.e, d.a));
  const auto one_sided = mask_without(d.g, d.e, d.a);
  view.enabled_links = &one_sided;
  EXPECT_FALSE(view.hop_secure(d.e, d.a));
  EXPECT_FALSE(view.hop_secure(d.a, d.e)) << "mutual requirement";
  EXPECT_TRUE(view.hop_secure(d.e, d.b));
  view.enabled_links = nullptr;
  EXPECT_TRUE(view.hop_secure(d.e, d.a)) << "null mask = everything enabled";
}

TEST(PerLink, FullMaskMatchesNodeLevelSemantics) {
  // Enabling every link must reproduce the plain node-level model exactly.
  const auto net = test::small_internet(200, 5);
  const auto state = test::random_state(net.graph, 0.4, 9);
  SimConfig cfg;
  cfg.threads = 1;
  par::ThreadPool pool(1);
  const auto plain = compute_utilities(net.graph, state.flags(), cfg, pool);
  const auto full = rt::LinkSet::all(net.graph);
  const auto masked = compute_utilities(net.graph, state.flags(), cfg, pool, &full);
  for (topo::AsId n = 0; n < net.graph.num_nodes(); ++n) {
    EXPECT_DOUBLE_EQ(plain.outgoing[n], masked.outgoing[n]);
    EXPECT_DOUBLE_EQ(plain.incoming[n], masked.incoming[n]);
  }
}

TEST(PerLink, DilemmaTradesOneFlowForTheOther) {
  // Theorem 8.2's tension: enabling the x-2 link gains c1 (+m over a
  // customer edge) but loses s (w_s moves to the provider edge).
  const double m = 1000.0, ws = 2000.0;
  const auto g = gadgets::make_per_link_dilemma(m, ws);
  ASSERT_TRUE(g.graph.validate().empty());
  SimConfig cfg;
  g.configure(cfg);
  par::ThreadPool pool(1);

  const auto x = g.node("x");
  const auto full = rt::LinkSet::all(g.graph);
  const auto disabled = mask_without(g.graph, x, g.node("2"));

  const auto u_on = compute_utilities(g.graph, g.initial.flags(), cfg, pool, &full);
  const auto u_off =
      compute_utilities(g.graph, g.initial.flags(), cfg, pool, &disabled);

  // Designated per-destination contributions are exact. Dest c2: s's flow
  // (w_s) arrives over the customer edge from r only while the link is off.
  rt::RibComputer rc(g.graph);
  rt::TreeComputer tc(g.graph);
  rt::TieBreakPolicy tb = cfg.tiebreak;
  rt::RoutingTree tree;
  rt::SecurityView view;
  view.graph = &g.graph;
  view.base = g.initial.flags().data();
  auto contribution = [&](topo::AsId dest, const rt::LinkSet& mask) {
    view.enabled_links = &mask;
    const auto rib = rc.compute(dest);
    tc.compute(rib, view, tb, tree);
    return rt::node_contribution(g.graph, rib, tree, x).incoming;
  };
  const auto c2 = g.node("c2");
  const auto d1 = g.node("d1");
  EXPECT_NEAR(contribution(c2, disabled) - contribution(c2, full), ws, 1e-9)
      << "enabling the link repels s's flow from the customer edge";
  EXPECT_NEAR(contribution(d1, full) - contribution(d1, disabled), m, 1e-9)
      << "enabling the link attracts c1's flow onto the customer edge";

  // Aggregate: with w_s > m (plus same-sign parasitic copies of the s-side
  // ties), enabling the link is a net incoming-utility loss...
  EXPECT_LT(u_on.incoming[x], u_off.incoming[x]);
  // ... while outgoing utility is unaffected up to unit-weight noise
  // (Theorem J.2's monotonicity holds with near-equality here).
  EXPECT_NEAR(u_on.outgoing[x], u_off.outgoing[x], 5.0);
}

TEST(PerLink, DilemmaDirectionFollowsTheWeights) {
  // Flip the weights: now enabling the link is profitable.
  const auto g = gadgets::make_per_link_dilemma(/*m=*/2000.0, /*w_s=*/500.0);
  SimConfig cfg;
  g.configure(cfg);
  par::ThreadPool pool(1);
  const auto x = g.node("x");
  const auto full = rt::LinkSet::all(g.graph);
  const auto disabled = mask_without(g.graph, x, g.node("2"));
  const auto u_on = compute_utilities(g.graph, g.initial.flags(), cfg, pool, &full);
  const auto u_off =
      compute_utilities(g.graph, g.initial.flags(), cfg, pool, &disabled);
  EXPECT_GT(u_on.incoming[x], u_off.incoming[x]);
}

// Theorem J.2 (property form): in the outgoing model, enabling every link
// maximises utility — no random submask ever beats the full mask.
class PerLinkOutgoingMonotone : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PerLinkOutgoingMonotone, FullMaskIsOptimal) {
  const auto net = test::small_internet(150, GetParam());
  const auto state = test::random_state(net.graph, 0.5, GetParam() + 7);
  SimConfig cfg;
  cfg.threads = 1;
  par::ThreadPool pool(1);
  const auto full_lists = rt::full_link_mask(net.graph);
  const rt::LinkSet full(net.graph, full_lists);
  const auto best = compute_utilities(net.graph, state.flags(), cfg, pool, &full);

  std::mt19937_64 rng(GetParam() * 13 + 1);
  // Pick a few secure ISPs and drop random subsets of their links.
  std::size_t checked = 0;
  for (topo::AsId n = 0; n < net.graph.num_nodes() && checked < 5; ++n) {
    if (!net.graph.is_isp(n) || !state.is_secure(n)) continue;
    ++checked;
    auto lists = full_lists;
    auto& v = lists[n];
    std::shuffle(v.begin(), v.end(), rng);
    v.resize(v.size() / 2);
    const rt::LinkSet mask(net.graph, lists);
    const auto sub = compute_utilities(net.graph, state.flags(), cfg, pool, &mask);
    EXPECT_LE(sub.outgoing[n], best.outgoing[n] + 1e-9)
        << "AS " << net.graph.asn(n) << " gained by disabling links";
  }
  EXPECT_GT(checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PerLinkOutgoingMonotone,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace sbgp::core
