
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/sbgpsim_cli.cpp" "tools/CMakeFiles/sbgpsim.dir/sbgpsim_cli.cpp.o" "gcc" "tools/CMakeFiles/sbgpsim.dir/sbgpsim_cli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sbgp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/sbgp_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/sbgp_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/sbgp_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sbgp_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
