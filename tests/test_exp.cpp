// Tests for the exp:: experiment-orchestration subsystem: JSON round-trips,
// deterministic spec expansion, serial == sharded equivalence, checkpoint/
// resume after an interrupted sweep, and failure/timeout isolation.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "exp/job_spec.h"
#include "exp/result_store.h"
#include "exp/runner.h"
#include "exp/scheduler.h"

namespace sbgp::exp {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

// A small but non-trivial grid: 2 adopter sets x 2 seeds x 3 thetas = 12
// jobs on a 200-AS synthetic graph.
JobSpec small_spec() {
  JobSpec spec;
  spec.name = "test-grid";
  GraphSpec g;
  g.nodes = 200;
  g.seed = 7;
  g.x = 0.10;
  spec.graphs = {g};
  spec.adopters = {"top:3", "cps"};
  spec.seeds = {1, 2};
  spec.thetas = {0.0, 0.05, 0.1};
  return spec;
}

std::vector<std::string> canonical_rows(const std::vector<JobRecord>& records) {
  std::vector<std::string> rows;
  rows.reserve(records.size());
  for (const auto& r : records) rows.push_back(r.canonical_row());
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(Json, RoundTripsValues) {
  const char* text =
      R"({"name":"x","n":3,"f":0.05,"neg":-2.5,"t":true,"nil":null,)"
      R"("arr":[1,2,3],"obj":{"k":"v \"quoted\"\n"}})";
  const Json j = Json::parse(text);
  EXPECT_EQ(j.find("name")->as_string(), "x");
  EXPECT_EQ(j.find("n")->as_u64(), 3u);
  EXPECT_DOUBLE_EQ(j.find("f")->as_double(), 0.05);
  EXPECT_DOUBLE_EQ(j.find("neg")->as_double(), -2.5);
  EXPECT_TRUE(j.find("t")->as_bool());
  EXPECT_TRUE(j.find("nil")->is_null());
  EXPECT_EQ(j.find("arr")->items().size(), 3u);
  EXPECT_EQ(j.find("obj")->find("k")->as_string(), "v \"quoted\"\n");
  // dump -> parse -> dump is a fixed point (canonical serialisation).
  const std::string once = j.dump();
  EXPECT_EQ(Json::parse(once).dump(), once);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), JsonError);
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\":}"), JsonError);
  EXPECT_THROW(Json::parse("[1,2,]"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\":1} trailing"), JsonError);
  EXPECT_THROW(Json::parse("nul"), JsonError);
  EXPECT_THROW(Json::parse("1.2.3"), JsonError);
}

TEST(JobSpec, ExpansionIsDeterministicAndComplete) {
  const JobSpec spec = small_spec();
  EXPECT_EQ(spec.num_jobs(), 12u);
  const auto a = spec.expand();
  const auto b = spec.expand();
  ASSERT_EQ(a.size(), 12u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, i);
    EXPECT_EQ(a[i].key(), b[i].key());
  }
  // All grid points distinct.
  std::vector<std::string> keys;
  for (const auto& j : a) keys.push_back(j.key());
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end());
  // Thetas are the innermost axis: first three jobs differ only in theta.
  EXPECT_EQ(a[0].theta, 0.0);
  EXPECT_EQ(a[1].theta, 0.05);
  EXPECT_EQ(a[2].theta, 0.1);
  EXPECT_EQ(a[0].adopters, a[2].adopters);
}

TEST(JobSpec, HashIsStableAndSensitive) {
  const JobSpec spec = small_spec();
  EXPECT_EQ(spec.hash(), small_spec().hash());
  JobSpec other = small_spec();
  other.thetas.push_back(0.2);
  EXPECT_NE(spec.hash(), other.hash());
  JobSpec renamed = small_spec();
  renamed.name = "something-else";
  EXPECT_NE(spec.hash(), renamed.hash());
}

TEST(JobSpec, JsonRoundTrip) {
  const JobSpec spec = small_spec();
  const JobSpec back = JobSpec::from_json(Json::parse(spec.to_json().dump()));
  EXPECT_EQ(spec.hash(), back.hash());
  EXPECT_EQ(back.num_jobs(), 12u);
  EXPECT_EQ(back.adopters, spec.adopters);
  EXPECT_EQ(back.thetas, spec.thetas);
}

TEST(JobSpec, ValidatesFields) {
  EXPECT_THROW(JobSpec::from_json(Json::parse(R"({"modles":["outgoing"]})")),
               JsonError);  // typo'd key
  EXPECT_THROW(JobSpec::from_json(Json::parse(R"({"models":["sideways"]})")),
               JsonError);
  EXPECT_THROW(JobSpec::from_json(Json::parse(R"({"pricing":["free"]})")),
               JsonError);
  EXPECT_THROW(JobSpec::from_json(Json::parse(R"({"thetas":[]})")), JsonError);
  EXPECT_THROW(JobSpec::from_json(Json::parse(R"({"thetas":[-0.1]})")),
               JsonError);
  EXPECT_THROW(
      JobSpec::from_json(Json::parse(R"({"graphs":[{"nodes":0}]})")),
      JsonError);
}

TEST(ListParsing, AcceptsWellFormedLists) {
  const auto thetas = parse_double_list("0,0.05,0.1", "--thetas");
  ASSERT_EQ(thetas.size(), 3u);
  EXPECT_DOUBLE_EQ(thetas[0], 0.0);
  EXPECT_DOUBLE_EQ(thetas[1], 0.05);
  EXPECT_DOUBLE_EQ(thetas[2], 0.1);
  EXPECT_EQ(parse_u64_list("1,2,3", "seeds"), (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(ListParsing, RejectsMalformedLists) {
  // The old CLI silently produced a partial grid for these.
  EXPECT_THROW(parse_double_list("", "--thetas"), JsonError);
  EXPECT_THROW(parse_double_list("0.1,,0.2", "--thetas"), JsonError);
  EXPECT_THROW(parse_double_list("0.1,", "--thetas"), JsonError);
  EXPECT_THROW(parse_double_list(",0.1", "--thetas"), JsonError);
  EXPECT_THROW(parse_double_list("0.1,abc", "--thetas"), JsonError);
  EXPECT_THROW(parse_double_list("0.1x,0.2", "--thetas"), JsonError);
  EXPECT_THROW(parse_u64_list("1,2,x", "seeds"), JsonError);
}

TEST(ResultStore, AppendLoadAndSupersede) {
  const std::string path = temp_path("store_basic.jsonl");
  std::remove(path.c_str());
  JobRecord r;
  r.spec_hash = 0xdeadbeefcafef00dULL;  // > 2^53: exercises string encoding
  r.job_id = 3;
  r.job_key = "k";
  r.status = "failed";
  r.error = "boom";
  {
    ResultStore store(path);
    store.append(r);
    r.status = "ok";
    r.error.clear();
    r.outcome = "stable";
    r.rounds = 4;
    store.append(r);
  }
  const auto records = ResultStore::load(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].spec_hash, r.spec_hash);
  const auto latest = ResultStore::latest_by_job(records, r.spec_hash);
  ASSERT_EQ(latest.size(), 1u);
  EXPECT_EQ(latest.at(3).status, "ok");  // later record supersedes
  EXPECT_EQ(ResultStore::completed_ok(records, r.spec_hash).count(3), 1u);
  EXPECT_TRUE(ResultStore::completed_ok(records, 123).empty());
}

TEST(ResultStore, SkipsTruncatedTrailingLine) {
  const std::string path = temp_path("store_truncated.jsonl");
  std::remove(path.c_str());
  {
    ResultStore store(path);
    JobRecord r;
    r.spec_hash = 1;
    r.job_id = 0;
    r.status = "ok";
    store.append(r);
  }
  {
    std::ofstream out(path, std::ios::app);
    out << "{\"spec_hash\":\"1\",\"job_id\":1,\"stat";  // killed mid-write
  }
  std::size_t skipped = 0;
  const auto records = ResultStore::load(path, &skipped);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(skipped, 1u);
}

TEST(Scheduler, SerialAndShardedSweepsProduceIdenticalResults) {
  const JobSpec spec = small_spec();

  SweepOptions serial;
  serial.workers = 1;
  const auto a = SweepScheduler(serial).run(spec, nullptr);
  EXPECT_EQ(a.executed, 12u);
  EXPECT_EQ(a.ok, 12u);
  EXPECT_EQ(a.failed, 0u);

  SweepOptions sharded;
  sharded.workers = 4;
  const auto b = SweepScheduler(sharded).run(spec, nullptr);
  EXPECT_EQ(b.executed, 12u);
  EXPECT_EQ(b.ok, 12u);

  EXPECT_EQ(canonical_rows(a.records), canonical_rows(b.records));
  // Records come back merged in job-id order either way.
  for (std::size_t i = 0; i < b.records.size(); ++i) {
    EXPECT_EQ(b.records[i].job_id, i);
  }
  // Sanity: the sweep actually swept — theta=0 secures more than theta=0.1.
  EXPECT_GE(a.records[0].secure_ases, a.records[2].secure_ases);
}

TEST(Scheduler, ResumeRunsOnlyIncompleteJobs) {
  const JobSpec spec = small_spec();

  // Uninterrupted reference run.
  const std::string full_path = temp_path("store_full.jsonl");
  std::remove(full_path.c_str());
  ResultStore full(full_path);
  SweepOptions opts;
  opts.workers = 2;
  const auto reference = SweepScheduler(opts).run(spec, &full);
  EXPECT_EQ(reference.executed, 12u);

  // Simulate a sweep killed mid-flight: keep the first 5 records plus a
  // half-written line.
  const std::string partial_path = temp_path("store_partial.jsonl");
  std::remove(partial_path.c_str());
  {
    std::ifstream in(full_path);
    std::ofstream out(partial_path);
    std::string line;
    for (int i = 0; i < 5 && std::getline(in, line); ++i) out << line << '\n';
    out << "{\"spec_hash\":\"" << spec.hash() << "\",\"job_id\":99,\"sta";
  }

  ResultStore partial(partial_path);
  const auto resumed = SweepScheduler(opts).run(spec, &partial);
  EXPECT_EQ(resumed.skipped, 5u);
  EXPECT_EQ(resumed.executed, 7u);
  EXPECT_EQ(resumed.ok, 7u);
  ASSERT_EQ(resumed.records.size(), 12u);
  EXPECT_EQ(canonical_rows(resumed.records), canonical_rows(reference.records));

  // Merging the store again from disk gives the same 12 rows.
  const auto latest =
      ResultStore::latest_by_job(ResultStore::load(partial_path), spec.hash());
  EXPECT_EQ(latest.size(), 12u);

  // A third run is a no-op: everything resumes.
  const auto noop = SweepScheduler(opts).run(spec, &partial);
  EXPECT_EQ(noop.skipped, 12u);
  EXPECT_EQ(noop.executed, 0u);
}

TEST(Scheduler, ResumeHealsLastLineTornAtEveryByteOffset) {
  // Property-style sweep of the kill-mid-write space: a store holding 5
  // complete records plus a 6th line truncated at EVERY byte offset must
  // always (a) heal — load() skips exactly the torn line, (b) resume — the
  // scheduler re-runs exactly the jobs without an intact "ok" record, and
  // (c) converge to the reference rows. A fake runner keeps the 200-ish
  // iterations fast; determinism makes the rows comparable.
  const JobSpec spec = small_spec();
  const JobRunner runner = [](const Job& job, const std::function<bool()>&) {
    JobRecord r;
    r.job_id = job.id;
    r.job_key = job.key();
    r.status = "ok";
    r.outcome = "converged";
    r.rounds = job.id + 1;
    r.secure_ases = 10 * job.id;
    r.num_ases = 200;
    r.frac_ases = static_cast<double>(r.secure_ases) / 200.0;
    return r;
  };
  SweepOptions opts;
  opts.workers = 1;

  const std::string full_path = temp_path("store_torn_full.jsonl");
  std::remove(full_path.c_str());
  ResultStore full(full_path);
  const auto reference = SweepScheduler(opts).run(spec, &full, runner);
  ASSERT_EQ(reference.ok, 12u);
  const auto ref_rows = canonical_rows(reference.records);

  std::vector<std::string> lines;
  {
    std::ifstream in(full_path);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 12u);
  const std::string& torn = lines[5];

  // Offset 0 = the 6th record never hit the disk at all; offset len = the
  // write completed but the newline (and everything after) was lost.
  for (std::size_t cut = 0; cut <= torn.size(); ++cut) {
    const std::string path = temp_path("store_torn_cut.jsonl");
    std::remove(path.c_str());
    {
      std::ofstream out(path, std::ios::binary);
      for (int i = 0; i < 5; ++i) out << lines[i] << '\n';
      out.write(torn.data(), static_cast<std::streamsize>(cut));
    }

    // A complete prefix parses; any strict, non-empty prefix of a JSON
    // object cannot. The loader must count exactly the torn lines.
    std::size_t skipped_lines = 0;
    const auto loaded = ResultStore::load(path, &skipped_lines);
    const bool torn_is_whole = cut == torn.size();
    const std::size_t expect_healthy = torn_is_whole ? 6u : 5u;
    ASSERT_EQ(loaded.size(), expect_healthy) << "cut=" << cut;
    ASSERT_EQ(skipped_lines, cut == 0 || torn_is_whole ? 0u : 1u)
        << "cut=" << cut;

    ResultStore store(path);
    const auto resumed = SweepScheduler(opts).run(spec, &store, runner);
    ASSERT_EQ(resumed.skipped, expect_healthy) << "cut=" << cut;
    ASSERT_EQ(resumed.executed, 12u - expect_healthy) << "cut=" << cut;
    ASSERT_EQ(resumed.ok, resumed.executed) << "cut=" << cut;
    ASSERT_EQ(resumed.records.size(), 12u) << "cut=" << cut;
    ASSERT_EQ(canonical_rows(resumed.records), ref_rows) << "cut=" << cut;
  }
}

TEST(Scheduler, JobSubsetRestrictsTheGridWithoutRenumbering) {
  // The fleet's leased-shard hook: a subset sweep runs only the listed ids,
  // but the ids keep their whole-grid meaning, so two disjoint subsets into
  // the same store compose to exactly the full grid.
  const JobSpec spec = small_spec();
  const JobRunner runner = [](const Job& job, const std::function<bool()>&) {
    JobRecord r;
    r.job_id = job.id;
    r.job_key = job.key();
    r.status = "ok";
    r.outcome = "converged";
    return r;
  };
  const std::string path = temp_path("store_subset.jsonl");
  std::remove(path.c_str());

  SweepOptions front;
  front.workers = 1;
  front.job_subset = std::vector<std::size_t>{0, 1, 2, 3, 4};
  ResultStore store(path);
  const auto a = SweepScheduler(front).run(spec, &store, runner);
  EXPECT_EQ(a.total_jobs, 5u);
  EXPECT_EQ(a.executed, 5u);
  for (const auto& r : a.records) EXPECT_LT(r.job_id, 5u);

  SweepOptions back;
  back.workers = 1;
  // Unknown ids (99) are ignored; overlap (4) resumes from the store.
  back.job_subset = std::vector<std::size_t>{4, 5, 6, 7, 8, 9, 10, 11, 99};
  const auto b = SweepScheduler(back).run(spec, &store, runner);
  EXPECT_EQ(b.total_jobs, 8u);
  EXPECT_EQ(b.skipped, 1u);  // id 4 already ok
  EXPECT_EQ(b.executed, 7u);

  const auto latest =
      ResultStore::latest_by_job(ResultStore::load(path), spec.hash());
  EXPECT_EQ(latest.size(), 12u);
}

TEST(Scheduler, FailingJobsAreIsolatedAndRecorded) {
  const JobSpec spec = small_spec();
  const JobRunner runner = [](const Job& job, const std::function<bool()>&) {
    if (job.id % 3 == 0) throw std::runtime_error("injected failure");
    JobRecord r;
    r.job_id = job.id;
    r.job_key = job.key();
    r.status = "ok";
    r.outcome = "stable";
    return r;
  };
  SweepOptions opts;
  opts.workers = 4;
  const auto report = SweepScheduler(opts).run(spec, nullptr, runner);
  EXPECT_EQ(report.executed, 12u);
  EXPECT_EQ(report.failed, 4u);  // ids 0,3,6,9
  EXPECT_EQ(report.ok, 8u);
  for (const auto& r : report.records) {
    if (r.job_id % 3 == 0) {
      EXPECT_EQ(r.status, "failed");
      EXPECT_EQ(r.error, "injected failure");
    } else {
      EXPECT_EQ(r.status, "ok");
    }
  }
}

TEST(Scheduler, RetriesTransientFailures) {
  const JobSpec spec = small_spec();
  std::atomic<int> calls{0};
  const JobRunner runner = [&](const Job& job, const std::function<bool()>&) {
    if (calls.fetch_add(1) % 2 == 0) throw std::runtime_error("flaky");
    JobRecord r;
    r.job_id = job.id;
    r.status = "ok";
    return r;
  };
  SweepOptions opts;
  opts.workers = 1;
  opts.retries = 2;
  const auto report = SweepScheduler(opts).run(spec, nullptr, runner);
  EXPECT_EQ(report.ok, 12u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.retried, 12u);  // every job failed exactly once first
}

TEST(Scheduler, TimeoutsAreRecordedAndDoNotSinkTheSweep) {
  JobSpec spec = small_spec();
  spec.thetas = {0.05};  // 4 jobs
  const JobRunner runner = [](const Job& job,
                              const std::function<bool()>& stop) {
    if (job.id == 1) {  // diverging job: spins until the deadline fires
      while (!stop()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
      JobRecord r;
      r.job_id = job.id;
      r.status = "timeout";
      r.error = "deadline exceeded";
      return r;
    }
    JobRecord r;
    r.job_id = job.id;
    r.status = "ok";
    return r;
  };
  SweepOptions opts;
  opts.workers = 2;
  opts.timeout_s = 0.05;
  opts.retries = 3;  // timeouts must NOT be retried
  const auto report = SweepScheduler(opts).run(spec, nullptr, runner);
  EXPECT_EQ(report.executed, 4u);
  EXPECT_EQ(report.ok, 3u);
  EXPECT_EQ(report.timed_out, 1u);
  EXPECT_EQ(report.retried, 0u);
  EXPECT_EQ(report.records[1].status, "timeout");
}

TEST(Scheduler, RealRunnerHonoursDeadline) {
  // An immediate deadline aborts the simulation cooperatively: the record
  // comes back as a timeout with outcome "aborted".
  JobSpec spec = small_spec();
  spec.thetas = {0.05};
  spec.adopters = {"top:3"};
  spec.seeds = {1};
  GraphCache cache;
  const auto jobs = spec.expand();
  ASSERT_EQ(jobs.size(), 1u);
  const auto record = run_job(jobs[0], cache, 1, [] { return true; });
  EXPECT_EQ(record.status, "timeout");
  EXPECT_EQ(record.outcome, "aborted");
}

TEST(GraphCacheTest, ReusesGraphsAcrossJobs) {
  GraphCache cache;
  GraphSpec g;
  g.nodes = 120;
  g.seed = 3;
  const auto& first = cache.get(g);
  const auto& second = cache.get(g);
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(cache.size(), 1u);
  g.seed = 4;
  const auto& third = cache.get(g);
  EXPECT_NE(&first, &third);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(AdopterSpec, ResolvesAndRejects) {
  GraphCache cache;
  GraphSpec g;
  g.nodes = 120;
  g.seed = 3;
  const auto& net = cache.get(g);
  EXPECT_TRUE(resolve_adopter_spec(net, "none", 1).empty());
  EXPECT_EQ(resolve_adopter_spec(net, "top:3", 1).size(), 3u);
  EXPECT_EQ(resolve_adopter_spec(net, "cps", 1).size(), net.cps.size());
  EXPECT_FALSE(resolve_adopter_spec(net, "cps+top:2", 1).empty());
  EXPECT_THROW(resolve_adopter_spec(net, "bogus", 1), std::invalid_argument);
  EXPECT_THROW(resolve_adopter_spec(net, "top:", 1), std::invalid_argument);
  EXPECT_THROW(resolve_adopter_spec(net, "top:abc", 1), std::invalid_argument);
  EXPECT_THROW(resolve_adopter_spec(net, "asn:1,x", 1), std::invalid_argument);
}

}  // namespace
}  // namespace sbgp::exp
