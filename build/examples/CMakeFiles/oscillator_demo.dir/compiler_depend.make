# Empty compiler generated dependencies file for oscillator_demo.
# This may be replaced when dependencies are built.
