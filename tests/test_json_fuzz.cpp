// Round-trip fuzz tests for exp::json, backing the result store's
// byte-stability contract: for any value the dumper can emit,
// dump(parse(dump(v))) must equal dump(v) byte for byte. Checkpoint/resume
// keys on this — a drifting serialisation would orphan stored results.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>
#include <limits>
#include <random>
#include <string>

#include "exp/json.h"

namespace sbgp::exp {
namespace {

void expect_stable(const Json& j, const std::string& context) {
  const std::string once = j.dump();
  Json reparsed;
  ASSERT_NO_THROW(reparsed = Json::parse(once)) << context << ": " << once;
  EXPECT_EQ(reparsed.dump(), once) << context;
}

TEST(JsonFuzz, RandomBitPatternDoublesRoundTrip) {
  // Doubles drawn uniformly from the *bit pattern* space hit subnormals,
  // huge/tiny exponents, and every mantissa shape — far beyond what a
  // uniform_real_distribution explores. NaN/inf are excluded: the dumper
  // has no representation for them (JSON numbers cannot carry them).
  std::mt19937_64 rng(20260806);
  std::size_t tested = 0;
  while (tested < 5000) {
    const std::uint64_t bits = rng();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    if (!std::isfinite(v)) continue;
    ++tested;
    const std::string once = format_double(v);
    Json reparsed;
    ASSERT_NO_THROW(reparsed = Json::parse(once)) << once;
    EXPECT_EQ(format_double(reparsed.as_double()), once) << once;
  }
}

TEST(JsonFuzz, EdgeCaseDoublesRoundTrip) {
  const double cases[] = {
      0.0,
      -0.0,
      1.0,
      -1.0,
      0.1,
      -0.05,
      1.0 / 3.0,
      5e-324,                                  // smallest subnormal
      2.2250738585072009e-308,                 // largest subnormal
      2.2250738585072014e-308,                 // smallest normal
      1.7976931348623157e308,                  // largest finite
      9.0e15,                                  // just past the integer-print cutoff
      8999999999999998.0,                      // just inside it
      4503599627370496.0,                      // 2^52
      -9.007199254740992e15,
      1e300,
      -1e-300,
      123456789.123456789,
  };
  for (const double v : cases) {
    Json arr = Json::array();
    arr.push(Json::number(v));
    expect_stable(arr, "double " + format_double(v));
  }
}

TEST(JsonFuzz, HugeIntegerValuedDoublesDoNotOverflowTheCast) {
  // Regression: format_double used to evaluate the long-long cast *before*
  // the range check — undefined behaviour for |v| >= 2^63 (UBSan:
  // float-cast-overflow) even though the branch was not taken.
  constexpr double kMax = std::numeric_limits<double>::max();
  const double huge[] = {1e19, -1e19, 9.3e18, kMax, -kMax, 2e63};
  for (const double v : huge) {
    const std::string s = format_double(v);
    Json reparsed;
    ASSERT_NO_THROW(reparsed = Json::parse(s)) << s;
    EXPECT_EQ(format_double(reparsed.as_double()), s);
  }
}

TEST(JsonFuzz, RandomStringsRoundTrip) {
  // Arbitrary byte strings: quotes, backslashes, every control character,
  // DEL, and high bytes (the store never re-encodes; bytes in == bytes out).
  std::mt19937_64 rng(424242);
  std::uniform_int_distribution<int> len(0, 64);
  std::uniform_int_distribution<int> byte(0, 255);
  // Weight the interesting characters so escapes actually occur.
  const char hot[] = {'"', '\\', '\n', '\r', '\t', '\b', '\f', '\x01', '\x1f', '/'};
  std::uniform_int_distribution<int> hot_idx(0, sizeof(hot) - 1);
  std::bernoulli_distribution pick_hot(0.3);

  for (int iter = 0; iter < 500; ++iter) {
    std::string s;
    const int L = len(rng);
    for (int k = 0; k < L; ++k) {
      s += pick_hot(rng) ? hot[hot_idx(rng)] : static_cast<char>(byte(rng));
    }
    Json j = Json::object();
    j.set("k", Json::string(s));
    const std::string once = j.dump();
    Json reparsed;
    ASSERT_NO_THROW(reparsed = Json::parse(once)) << once;
    ASSERT_EQ(reparsed.find("k")->as_string(), s);
    EXPECT_EQ(reparsed.dump(), once);
  }
}

TEST(JsonFuzz, DeepNestingSurvives) {
  // ~400 levels of alternating arrays/objects: the recursive-descent
  // parser must neither reject nor corrupt deeply nested documents.
  Json leaf = Json::number(1.0);
  Json current = std::move(leaf);
  for (int depth = 0; depth < 400; ++depth) {
    if (depth % 2 == 0) {
      Json arr = Json::array();
      arr.push(std::move(current));
      current = std::move(arr);
    } else {
      Json obj = Json::object();
      obj.set("d", std::move(current));
      current = std::move(obj);
    }
  }
  expect_stable(current, "400-deep nesting");
}

TEST(JsonFuzz, RandomCompositeDocumentsRoundTrip) {
  // Random trees mixing every node type, built breadth-limited so the
  // document stays small while shapes vary.
  std::mt19937_64 rng(77);
  std::uniform_int_distribution<int> type(0, 5);
  std::uniform_int_distribution<int> fanout(0, 3);
  std::uniform_real_distribution<double> num(-1e6, 1e6);

  std::function<Json(int)> gen = [&](int depth) -> Json {
    const int t = depth > 4 ? type(rng) % 4 : type(rng);
    switch (t) {
      case 0: return Json();  // null
      case 1: return Json::boolean(rng() & 1);
      case 2: return Json::number(num(rng));
      case 3: return Json::string("s" + std::to_string(rng() % 1000));
      case 4: {
        Json arr = Json::array();
        const int k = fanout(rng);
        for (int i = 0; i < k; ++i) arr.push(gen(depth + 1));
        return arr;
      }
      default: {
        Json obj = Json::object();
        const int k = fanout(rng);
        for (int i = 0; i < k; ++i) {
          obj.set("k" + std::to_string(i), gen(depth + 1));
        }
        return obj;
      }
    }
  };
  for (int iter = 0; iter < 200; ++iter) {
    expect_stable(gen(0), "composite doc " + std::to_string(iter));
  }
}

}  // namespace
}  // namespace sbgp::exp
