// The Resource Public Key Infrastructure (RPKI [18]): the cryptographic
// root of trust that authoritatively maps ASes to their IP prefixes and
// public keys — the prerequisite the paper's introduction says is finally
// "on the horizon". Provides key registration, Route Origin Authorizations
// (ROAs), origin validation, and a signing/verification service that keeps
// private keys inside the trust anchor (simulation boundary; see
// crypto_sim.h).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "proto/crypto_sim.h"

namespace sbgp::proto {

/// An IPv4 prefix (address/len). Simulation networks typically assign one
/// synthetic /24 per AS.
struct Prefix {
  std::uint32_t addr = 0;
  std::uint8_t len = 0;

  [[nodiscard]] std::uint32_t mask() const {
    return len == 0 ? 0 : ~std::uint32_t{0} << (32 - len);
  }
  /// Does this prefix cover `other` (equal or less specific)?
  [[nodiscard]] bool covers(const Prefix& other) const {
    return len <= other.len && ((addr ^ other.addr) & mask()) == 0;
  }
  [[nodiscard]] bool operator==(const Prefix& other) const {
    return addr == other.addr && len == other.len;
  }
  [[nodiscard]] std::uint64_t key() const {
    return (static_cast<std::uint64_t>(addr) << 8) | len;
  }
  [[nodiscard]] std::string to_string() const;

  /// The synthetic /24 conventionally assigned to `asn` in simulations.
  [[nodiscard]] static Prefix for_asn(std::uint32_t asn) {
    return Prefix{(10u << 24) | (asn << 8), 24};
  }
};

/// RFC 6811 origin-validation outcomes.
enum class RoaValidity : std::uint8_t { Valid, Invalid, NotFound };

[[nodiscard]] const char* to_string(RoaValidity v);

/// The simulated trust anchor. One instance per internetwork.
class Rpki {
 public:
  explicit Rpki(std::uint64_t master_seed = 0x5eedULL);

  /// Registers `asn`, deriving its key pair. Idempotent.
  void register_as(std::uint32_t asn);
  [[nodiscard]] bool is_registered(std::uint32_t asn) const;
  [[nodiscard]] std::optional<std::uint64_t> public_key(std::uint32_t asn) const;

  /// Issues a ROA authorising `asn` to originate `prefix`.
  void add_roa(std::uint32_t asn, Prefix prefix);

  /// RFC 6811 origin validation of an (origin, prefix) announcement.
  [[nodiscard]] RoaValidity validate_origin(std::uint32_t origin, Prefix prefix) const;

  /// Signing service: produces `asn`'s signature over `digest`. In a real
  /// deployment the AS signs with its own private key; the simulation keeps
  /// all private keys inside this object, and honest/attack code alike must
  /// name the AS it is acting as — the engine only ever calls this for the
  /// AS actually emitting the message, which is the unforgeability boundary.
  [[nodiscard]] std::optional<Signature> sign_as(std::uint32_t asn, Digest digest) const;

  /// Verifies `sig` as `asn`'s signature over `digest`. Unregistered ASes
  /// verify nothing.
  [[nodiscard]] bool verify(std::uint32_t asn, Digest digest, Signature sig) const;

  [[nodiscard]] std::size_t num_registered() const { return keys_.size(); }
  [[nodiscard]] std::size_t num_roas() const;

 private:
  std::uint64_t master_seed_;
  std::unordered_map<std::uint32_t, KeyPair> keys_;
  // prefix key -> authorised origins (multi-origin is legal).
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> roas_;
};

}  // namespace sbgp::proto
