#include "exp/scheduler.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <ostream>
#include <thread>
#include <unordered_set>

#include "exp/runner.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"

namespace sbgp::exp {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

}  // namespace

SweepScheduler::SweepScheduler(SweepOptions options) : options_(options) {
  if (options_.workers == 0) {
    options_.workers =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
}

SweepReport SweepScheduler::run(const JobSpec& spec, ResultStore* store,
                                const JobRunner& runner) {
  const auto sweep_start = Clock::now();
  const std::uint64_t spec_hash = spec.hash();
  std::vector<Job> jobs = spec.expand();
  if (options_.job_subset.has_value()) {
    const std::unordered_set<std::size_t> keep(options_.job_subset->begin(),
                                               options_.job_subset->end());
    std::erase_if(jobs, [&keep](const Job& j) { return !keep.contains(j.id); });
  }

  SweepReport report;
  report.spec_hash = spec_hash;
  report.total_jobs = jobs.size();

  // Resume: collect previously-completed jobs from the store.
  std::unordered_map<std::size_t, JobRecord> prior;
  if (store != nullptr && options_.resume) {
    prior = ResultStore::latest_by_job(ResultStore::load(store->path()), spec_hash);
  }
  std::vector<const Job*> pending;
  pending.reserve(jobs.size());
  for (const Job& job : jobs) {
    const auto it = prior.find(job.id);
    if (it != prior.end() && it->second.status == "ok") {
      ++report.skipped;
    } else {
      pending.push_back(&job);
    }
  }

  // Inner-thread budget for spec.threads == 0 ("auto"): divide the machine
  // between the outer workers.
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t auto_inner = std::max<std::size_t>(1, hw / options_.workers);

  GraphCache cache;
  JobRunner exec = runner;
  if (!exec) {
    exec = [&cache, auto_inner](const Job& job,
                                const std::function<bool()>& stop) {
      const std::size_t inner = job.threads != 0 ? job.threads : auto_inner;
      return run_job(job, cache, inner, stop);
    };
  }

  std::mutex state_mutex;  // guards report counters + completed records
  std::vector<JobRecord> completed;
  completed.reserve(pending.size());
  std::atomic<std::size_t> done{0};
  std::atomic<std::size_t> failures{0};

  // Progress reporter: a side thread woken every interval and at shutdown.
  std::mutex progress_mutex;
  std::condition_variable progress_cv;
  bool finished = false;
  std::thread reporter;
  if (options_.progress != nullptr && options_.progress_interval_s > 0) {
    reporter = std::thread([&] {
      std::unique_lock lock(progress_mutex);
      const auto interval = std::chrono::duration<double>(
          options_.progress_interval_s);
      while (!progress_cv.wait_for(lock, interval, [&] { return finished; })) {
        const double elapsed =
            std::chrono::duration<double>(Clock::now() - sweep_start).count();
        const std::size_t d = done.load();
        *options_.progress << "[exp] " << d << "/" << pending.size()
                           << " jobs done (" << failures.load() << " failed, "
                           << report.skipped << " skipped) | "
                           << (elapsed > 0 ? static_cast<double>(d) / elapsed
                                           : 0.0)
                           << " jobs/s | " << elapsed << "s elapsed\n";
        options_.progress->flush();
      }
    });
  }

  static obs::Counter& jobs_ctr =
      obs::Registry::global().counter("exp.jobs_executed");
  static obs::Counter& retries_ctr =
      obs::Registry::global().counter("exp.job_retries");
  static obs::LatencyHistogram& job_wall_hist =
      obs::Registry::global().histogram("exp.job_wall_ns");

  const auto run_one = [&](std::size_t idx) {
    OBS_SPAN("exp.job");
    const Job& job = *pending[idx];
    const auto job_start = Clock::now();
    JobRecord record;
    int attempt = 0;
    for (;;) {
      ++attempt;
      std::function<bool()> stop;
      if (options_.timeout_s > 0) {
        const auto deadline =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(options_.timeout_s));
        stop = [deadline] { return Clock::now() >= deadline; };
      } else {
        stop = [] { return false; };
      }
      try {
        record = exec(job, stop);
      } catch (const std::exception& e) {
        record = JobRecord{};
        record.job_id = job.id;
        record.job_key = job.key();
        record.status = "failed";
        record.error = e.what();
      } catch (...) {
        record = JobRecord{};
        record.job_id = job.id;
        record.job_key = job.key();
        record.status = "failed";
        record.error = "unknown exception";
      }
      // Timeouts are deterministic under a fixed budget — retrying would
      // burn the same wall time again; only genuine failures are retried.
      if (record.status == "failed" && attempt <= options_.retries) {
        retries_ctr.add(1);
        std::scoped_lock lock(state_mutex);
        ++report.retried;
        continue;
      }
      break;
    }
    record.spec_hash = spec_hash;
    record.attempts = attempt;
    record.wall_ms = ms_since(job_start);
    jobs_ctr.add(1);
    job_wall_hist.record_ns(static_cast<std::uint64_t>(record.wall_ms * 1e6));
    if (record.status != "ok") failures.fetch_add(1);
    if (store != nullptr) store->append(record);
    if (options_.telemetry != nullptr) {
      options_.telemetry->append(job_record(record));
    }
    {
      std::scoped_lock lock(state_mutex);
      ++report.executed;
      if (record.status == "ok") ++report.ok;
      else if (record.status == "timeout") ++report.timed_out;
      else ++report.failed;
      report.job_wall_ms.add(record.wall_ms);
      completed.push_back(std::move(record));
    }
    done.fetch_add(1);
  };

  if (options_.workers == 1 || pending.size() <= 1) {
    for (std::size_t i = 0; i < pending.size(); ++i) run_one(i);
  } else {
    par::ThreadPool pool(std::min(options_.workers, pending.size()));
    par::parallel_for_dynamic(pool, 0, pending.size(), run_one);
  }

  if (reporter.joinable()) {
    {
      std::scoped_lock lock(progress_mutex);
      finished = true;
    }
    progress_cv.notify_all();
    reporter.join();
  }

  report.wall_s =
      std::chrono::duration<double>(Clock::now() - sweep_start).count();
  report.jobs_per_s = report.wall_s > 0
                          ? static_cast<double>(report.executed) / report.wall_s
                          : 0.0;

  // Merge: latest record per job id — prior (resumed) records overlaid with
  // what this invocation produced — in ascending job-id order.
  for (JobRecord& r : completed) prior[r.job_id] = std::move(r);
  report.records.reserve(prior.size());
  for (const Job& job : jobs) {
    const auto it = prior.find(job.id);
    if (it != prior.end()) report.records.push_back(it->second);
  }

  if (options_.progress != nullptr) print_summary(report, *options_.progress);
  return report;
}

void SweepScheduler::print_summary(const SweepReport& report, std::ostream& os) {
  os << "[exp] sweep finished: " << report.total_jobs << " jobs ("
     << report.executed << " executed, " << report.skipped << " resumed, "
     << report.ok << " ok, " << report.failed << " failed, "
     << report.timed_out << " timeout, " << report.retried << " retries) in "
     << report.wall_s << "s (" << report.jobs_per_s << " jobs/s";
  if (report.job_wall_ms.count() > 0) {
    os << "; per-job ms mean " << report.job_wall_ms.mean() << " p90 "
       << report.job_wall_ms.quantile(0.9);
  }
  os << ")\n";
}

}  // namespace sbgp::exp
