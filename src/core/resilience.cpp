#include "core/resilience.h"

#include <mutex>
#include <random>

#include "routing/rib.h"
#include "routing/routing_tree.h"

namespace sbgp::core {

namespace {

struct PairImpact {
  double fooled_count = 0.0;  // fraction of routed third-party ASes
  double fooled_weight = 0.0; // fraction of routed third-party weight
};

PairImpact impact_of(const topo::AsGraph& graph, const std::vector<std::uint8_t>& secure,
                     const SimConfig& cfg, rt::RibComputer& rc, rt::TreeComputer& tc,
                     rt::DestRib& rib, rt::RoutingTree& tree, topo::AsId attacker,
                     topo::AsId victim) {
  rc.compute(victim, rib, attacker);
  rt::SecurityView view;
  view.graph = &graph;
  view.base = secure.data();
  view.stub_breaks_ties = cfg.stub_breaks_ties;
  tc.compute(rib, view, cfg.tiebreak, tree);

  std::size_t routed = 0, fooled = 0;
  double routed_w = 0.0, fooled_w = 0.0;
  for (const topo::AsId i : rib.order) {
    if (i == victim || i == attacker) continue;
    ++routed;
    routed_w += graph.weight(i);
    if (tree.origin[i] == attacker) {
      ++fooled;
      fooled_w += graph.weight(i);
    }
  }
  PairImpact out;
  if (routed > 0) {
    out.fooled_count = static_cast<double>(fooled) / static_cast<double>(routed);
    out.fooled_weight = fooled_w / routed_w;
  }
  return out;
}

}  // namespace

ResilienceResult measure_resilience(const topo::AsGraph& graph,
                                    const std::vector<std::uint8_t>& secure,
                                    const SimConfig& cfg, std::size_t samples,
                                    std::uint64_t seed, par::ThreadPool& pool) {
  std::vector<std::pair<topo::AsId, topo::AsId>> pairs;
  pairs.reserve(samples);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<topo::AsId> pick(
      0, static_cast<topo::AsId>(graph.num_nodes() - 1));
  while (pairs.size() < samples) {
    const topo::AsId a = pick(rng);
    const topo::AsId v = pick(rng);
    if (a != v) pairs.emplace_back(a, v);
  }

  ResilienceResult result;
  result.pairs = pairs.size();
  std::mutex merge_mutex;
  par::parallel_for_chunked(pool, 0, pairs.size(), [&](std::size_t lo, std::size_t hi) {
    rt::RibComputer rc(graph);
    rt::TreeComputer tc(graph);
    rt::DestRib rib;
    rt::RoutingTree tree;
    std::vector<PairImpact> local;
    local.reserve(hi - lo);
    for (std::size_t k = lo; k < hi; ++k) {
      local.push_back(impact_of(graph, secure, cfg, rc, tc, rib, tree,
                                pairs[k].first, pairs[k].second));
    }
    std::scoped_lock lock(merge_mutex);
    for (const auto& p : local) {
      result.fooled_fraction.add(p.fooled_count);
      result.fooled_weight.add(p.fooled_weight);
    }
  });
  return result;
}

double hijack_impact(const topo::AsGraph& graph,
                     const std::vector<std::uint8_t>& secure, const SimConfig& cfg,
                     topo::AsId attacker, topo::AsId victim) {
  rt::RibComputer rc(graph);
  rt::TreeComputer tc(graph);
  rt::DestRib rib;
  rt::RoutingTree tree;
  return impact_of(graph, secure, cfg, rc, tc, rib, tree, attacker, victim)
      .fooled_count;
}

}  // namespace sbgp::core
