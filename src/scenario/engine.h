// The scenario engine: runs one expanded Scenario point against a
// (graph, deployment-state) pair, sampling (attacker, victim) pairs
// deterministically and measuring how much of the network each attack
// attracts under the scenario's defense policy.
//
// Two evaluation paths share the static two-origin RIB of rt::RibComputer
// (generalised with the forged-announcement length `impostor_len`):
//  - SecureTiebreak — the paper's security-third ranking preserves
//    Observation C.1, so the fast routing-tree algorithm resolves each pair
//    in O(t·|V|) exactly as core::resilience always has;
//  - RovDropInvalid / SecureFirst — these break the static-RIB assumption
//    (ROV withdraws routes, secure-first reorders LP/SP), so each pair runs
//    the path-vector reference router instead.
// Results are folded single-threaded in sample-index order, so a run is
// bitwise identical for any ThreadPool size.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "parallel/thread_pool.h"
#include "routing/rib.h"
#include "routing/routing_tree.h"
#include "scenario/scenario_spec.h"
#include "stats/histogram.h"
#include "topology/as_graph.h"

namespace sbgp::scenario {

/// Engine knobs shared by every scenario (lifted from core::SimConfig
/// without depending on it — scenario:: sits below core::).
struct EngineConfig {
  rt::TieBreakPolicy tiebreak{};
  bool stub_breaks_ties = true;
};

/// Outcome of one (attacker, victim) pair.
struct PairOutcome {
  double fooled_fraction = 0.0;  ///< routed third parties led to the attacker
  double fooled_weight = 0.0;    ///< same, traffic-weighted
  std::uint32_t disconnected = 0;  ///< third parties left routeless (ROV withdrawals)
  bool converged = true;           ///< reference-router fixed point reached
};

/// Aggregate result of one scenario run.
struct ScenarioResult {
  std::string key;                  ///< Scenario::key() of the point
  std::size_t pairs = 0;
  stats::Summary fooled_fraction;   ///< one sample per pair
  stats::Summary fooled_weight;
  std::uint64_t disconnected = 0;   ///< summed over pairs
  std::size_t nonconverged_pairs = 0;
  /// Scenario::baseline: the same pairs under the empty deployment.
  bool has_baseline = false;
  stats::Summary baseline_fooled;

  [[nodiscard]] double mean_fooled() const { return fooled_fraction.mean(); }
  /// mean_fooled − baseline mean; negative = the deployment protects.
  [[nodiscard]] double delta_vs_baseline() const {
    return has_baseline ? mean_fooled() - baseline_fooled.mean() : 0.0;
  }
};

class ScenarioEngine {
 public:
  explicit ScenarioEngine(const topo::AsGraph& graph, EngineConfig cfg = {});

  /// Deterministic (attacker, victim) pair sampling for `s`. Uniform
  /// placement with uniform victims reproduces the historical
  /// core::measure_resilience stream exactly (same mt19937_64 draws, both
  /// redrawn on attacker == victim). Fixed attackers × fixed victims
  /// enumerate the cross product instead of sampling. Throws
  /// std::invalid_argument on empty pools or a pool that can never yield a
  /// valid pair.
  [[nodiscard]] std::vector<std::pair<topo::AsId, topo::AsId>> sample_pairs(
      const Scenario& s) const;

  /// Runs the full scenario on `pool`; bitwise deterministic in its size.
  [[nodiscard]] ScenarioResult run(const Scenario& s,
                                   const std::vector<std::uint8_t>& secure,
                                   par::ThreadPool& pool) const;

  /// Single-pair probe (allocates its own scratch).
  [[nodiscard]] PairOutcome probe(const Scenario& s,
                                  const std::vector<std::uint8_t>& secure,
                                  topo::AsId attacker, topo::AsId victim) const;

  /// Per-AS chosen origin for one pair under the scenario's attack and
  /// policy: the victim, the attacker, or kNoAs (no route). For tests and
  /// gadget-level probes.
  [[nodiscard]] std::vector<topo::AsId> chosen_origins(
      const Scenario& s, const std::vector<std::uint8_t>& secure,
      topo::AsId attacker, topo::AsId victim) const;

  [[nodiscard]] const EngineConfig& config() const { return cfg_; }

 private:
  const topo::AsGraph& graph_;
  EngineConfig cfg_;
};

}  // namespace sbgp::scenario
