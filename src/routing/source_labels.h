// Source-side transpose of the per-destination RIB (rib.h): for a fixed
// *source* x, the Gao–Rexford class and length of x's chosen route toward
// every destination d, in one O(|V|+|E|) pass. This is the query shape the
// topology-delta invalidation layer needs — "which destinations' routing
// state can an edge at x perturb?" — where the destination-side RibComputer
// would cost O(|V|·(|V|+|E|)).
//
// Correctness rests on the valley-free route shapes the GR policies admit
// (Appendix A / GR2):
//   Customer class:  x descends customer edges to d        (d in cone(x))
//   Peer class:      one peer edge, then customer descent
//   Provider class:  >=1 provider ascents, optionally one peer edge, then
//                    customer descent
// and on LP ordering Customer > Peer > Provider, ties by shortest length —
// exactly the recurrences RibComputer resolves destination-side. A property
// test (tests/test_topo_delta.cpp) pins the transpose to RibComputer
// column-for-column.
#pragma once

#include <cstdint>
#include <vector>

#include "routing/rib.h"
#include "topology/as_graph.h"

namespace sbgp::rt {

/// Reusable computer; keeps O(|V|) scratch so repeated calls allocate
/// nothing once warm. One instance per thread.
class SourceLabelComputer {
 public:
  explicit SourceLabelComputer(const AsGraph& graph);

  /// Fills cls[d] / len[d] with source `src`'s chosen route class and length
  /// toward every destination d (Self/0 at d == src, None/0xffff where
  /// unreachable). Output vectors are resized to the graph's current node
  /// count.
  void compute(AsId src, std::vector<RouteClass>& cls,
               std::vector<std::uint16_t>& len);

 private:
  const AsGraph& graph_;
  std::vector<std::uint16_t> up_;  // min provider-ascent distance from src
  std::vector<AsId> queue_;
  std::vector<std::vector<AsId>> buckets_;
};

/// First-order candidate test backing topology-delta invalidation: given
/// endpoint a's label toward destination d, neighbour b's label toward d,
/// and b's relationship as seen from a, decides whether the a--b edge
/// carries a route offer that beats-or-ties a's current best (`added` =
/// true, the edge is being added) or exactly ties it (`added` = false, the
/// edge is being removed — only a best-or-tied offer can have influenced
/// a's RIB entry or tiebreak set). Export rules: a customer or peer b only
/// offers Self/Customer-class routes (GR2); a provider b offers anything it
/// has. Labels must come from the graph *without* the edge applied (the
/// pre-add / pre-remove graph).
///
/// Exactness: the static RIB is the unique fixed point of the GR Bellman
/// recurrences. If the offer over the edge neither beats nor ties the
/// endpoint's label, the old labels remain a fixed point of the perturbed
/// system at both endpoints and hence everywhere — no destination RIB
/// changes. A tie (without a win) can still flip tiebreak-set membership,
/// which is why removal tests equality, not strict dominance.
[[nodiscard]] bool edge_candidate_hits(RouteClass cls_a, std::uint16_t len_a,
                                       RouteClass cls_b, std::uint16_t len_b,
                                       topo::Link b_role_toward_a, bool added);

}  // namespace sbgp::rt
