#include "exp/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace sbgp::exp {

std::string format_double(double v) {
  // Range check BEFORE the integer cast: casting a double outside the
  // long long range is undefined behaviour (UBSan: float-cast-overflow).
  // std::floor also screens NaN/inf, whose cast is equally undefined.
  if (std::abs(v) < 9.0e15 && v == std::floor(v)) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) return "0";
  return std::string(buf, ptr);
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

Json Json::boolean(bool v) {
  Json j;
  j.type_ = Type::Bool;
  j.bool_ = v;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.type_ = Type::Number;
  j.num_ = v;
  return j;
}

Json Json::number(std::uint64_t v) { return number(static_cast<double>(v)); }

Json Json::string(std::string v) {
  Json j;
  j.type_ = Type::String;
  j.str_ = std::move(v);
  return j;
}

Json Json::array() {
  Json j;
  j.type_ = Type::Array;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::Object;
  return j;
}

bool Json::as_bool() const {
  if (type_ != Type::Bool) throw JsonError("expected bool");
  return bool_;
}

double Json::as_double() const {
  if (type_ != Type::Number) throw JsonError("expected number");
  return num_;
}

std::uint64_t Json::as_u64() const {
  const double d = as_double();
  if (d < 0 || d != std::floor(d)) throw JsonError("expected unsigned integer");
  return static_cast<std::uint64_t>(d);
}

const std::string& Json::as_string() const {
  if (type_ != Type::String) throw JsonError("expected string");
  return str_;
}

void Json::push(Json v) {
  if (type_ != Type::Array) throw JsonError("push on non-array");
  arr_.push_back(std::move(v));
}

const std::vector<Json>& Json::items() const {
  if (type_ != Type::Array) throw JsonError("expected array");
  return arr_;
}

void Json::set(std::string key, Json v) {
  if (type_ != Type::Object) throw JsonError("set on non-object");
  obj_.emplace_back(std::move(key), std::move(v));
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::Object) throw JsonError("expected object");
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (type_ != Type::Object) throw JsonError("expected object");
  return obj_;
}

namespace {

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw JsonError(std::string("json parse error at offset ") +
                    std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Json::string(parse_string());
    if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      return Json::boolean(true);
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      return Json::boolean(false);
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return Json{};
    }
    return parse_number();
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned cp = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode (BMP only; specs and result rows are ASCII anyway).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool digits = false;
    auto eat_digits = [&] {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (!digits) fail("bad number");
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
      const std::size_t exp_start = pos_;
      eat_digits();
      if (pos_ == exp_start) fail("bad exponent");
    }
    double v = 0;
    const auto res = std::from_chars(text_.data() + start, text_.data() + pos_, v);
    if (res.ec != std::errc{}) fail("bad number");
    return Json::number(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void dump_value(const Json& j, std::string& out) {
  switch (j.type()) {
    case Json::Type::Null: out += "null"; break;
    case Json::Type::Bool: out += j.as_bool() ? "true" : "false"; break;
    case Json::Type::Number: out += format_double(j.as_double()); break;
    case Json::Type::String: dump_string(j.as_string(), out); break;
    case Json::Type::Array: {
      out += '[';
      bool first = true;
      for (const auto& v : j.items()) {
        if (!first) out += ',';
        first = false;
        dump_value(v, out);
      }
      out += ']';
      break;
    }
    case Json::Type::Object: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : j.members()) {
        if (!first) out += ',';
        first = false;
        dump_string(k, out);
        out += ':';
        dump_value(v, out);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string Json::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace sbgp::exp
