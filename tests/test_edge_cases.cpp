// Boundary behaviour: degenerate graphs, caps, and formatting corners.
#include <gtest/gtest.h>

#include <sstream>

#include "core/analysis.h"
#include "core/resilience.h"
#include "core/simulator.h"
#include "proto/rpki.h"
#include "routing/rib.h"
#include "routing/routing_tree.h"
#include "gadgets/gadgets.h"
#include "stats/table.h"
#include "test_util.h"
#include "topology/graph_io.h"

namespace sbgp {
namespace {

TEST(EdgeCases, SingleEdgeGraphRoutes) {
  topo::AsGraph g;
  const auto p = g.add_as(1);
  const auto c = g.add_as(2);
  g.add_customer_provider(p, c);
  g.finalize();
  rt::RibComputer rc(g);
  const auto rib = rc.compute(c);
  EXPECT_EQ(rib.cls[p], rt::RouteClass::Customer);
  EXPECT_EQ(rib.len[p], 1);
  const auto rib2 = rc.compute(p);
  EXPECT_EQ(rib2.cls[c], rt::RouteClass::Provider);
}

TEST(EdgeCases, DisconnectedComponentIsUnreachable) {
  topo::AsGraph g;
  const auto a = g.add_as(1);
  const auto b = g.add_as(2);
  const auto c = g.add_as(3);
  const auto d = g.add_as(4);
  g.add_customer_provider(a, b);
  g.add_customer_provider(c, d);
  g.finalize();
  rt::RibComputer rc(g);
  const auto rib = rc.compute(b);
  EXPECT_TRUE(rib.reachable(a));
  EXPECT_FALSE(rib.reachable(c));
  EXPECT_FALSE(rib.reachable(d));
  EXPECT_EQ(rib.order.size(), 2u);
}

TEST(EdgeCases, SimulatorOnGraphWithoutIsps) {
  // Two stubs under one provider... actually: a graph of only peers — no
  // ISP ever decides, the process is trivially stable immediately.
  topo::AsGraph g;
  const auto a = g.add_as(1);
  const auto b = g.add_as(2);
  g.add_peer(a, b);
  g.finalize();
  core::SimConfig cfg;
  cfg.threads = 1;
  core::DeploymentSimulator sim(g, cfg);
  const auto result = sim.run(core::DeploymentState(g.num_nodes()));
  EXPECT_EQ(result.outcome, core::Outcome::Stable);
  EXPECT_TRUE(result.rounds.empty());
}

TEST(EdgeCases, RoundCapReported) {
  // A chicken gadget with max_rounds = 1 cannot finish flipping.
  const auto g = gadgets::make_chicken();
  core::SimConfig cfg;
  g.configure(cfg);
  cfg.max_rounds = 1;
  core::DeploymentSimulator sim(g.graph, cfg);
  const auto result = sim.run(g.initial);
  EXPECT_EQ(result.outcome, core::Outcome::RoundCapReached);
  EXPECT_EQ(result.rounds_run(), 1u);
}

TEST(EdgeCases, EmptyAdopterSpanIsFine) {
  const auto net = test::small_internet(120, 2);
  const auto s =
      core::DeploymentState::initial(net.graph, std::vector<topo::AsId>{});
  EXPECT_EQ(s.num_secure(), 0u);
}

TEST(EdgeCases, SelfLoopAndDuplicateRoasAreIdempotent) {
  proto::Rpki rpki;
  rpki.register_as(5);
  rpki.register_as(5);
  EXPECT_EQ(rpki.num_registered(), 1u);
  const auto p = proto::Prefix::for_asn(5);
  rpki.add_roa(5, p);
  rpki.add_roa(5, p);
  EXPECT_EQ(rpki.num_roas(), 1u);
}

TEST(EdgeCases, TableWithNoRows) {
  stats::Table t({"a", "b"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("a  b"), std::string::npos);
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_EQ(csv.str(), "a,b\n");
}

TEST(EdgeCases, TableAlignmentOverride) {
  stats::Table t({"x", "y"});
  t.set_align(1, stats::Align::Left);
  t.begin_row();
  t.add(std::string("aa"));
  t.add(std::string("b"));
  t.begin_row();
  t.add(std::string("c"));
  t.add(std::string("dddd"));
  std::ostringstream os;
  t.print(os);
  // Left-aligned short cell: "b" followed by padding, not preceded by it.
  EXPECT_NE(os.str().find("aa  b"), std::string::npos);
}

TEST(EdgeCases, GraphIoEmptyInput) {
  std::istringstream is("# just a comment\n\n");
  const auto g = topo::read_as_rel(is);
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_TRUE(g.finalized());
}

TEST(EdgeCases, GraphIoUnknownCpThrows) {
  std::istringstream is("# cp: 99\n1|2|-1\n");
  EXPECT_THROW(topo::read_as_rel(is), std::runtime_error);
}

TEST(EdgeCases, HijackWithAdjacentAttackerAndVictim) {
  // Attacker directly adjacent to the victim still splits the graph sanely.
  const auto c = test::make_chain();  // t -> m -> s
  core::SimConfig cfg;
  cfg.threads = 1;
  std::vector<std::uint8_t> nobody(c.g.num_nodes(), 0);
  const double impact = core::hijack_impact(c.g, nobody, cfg, c.m, c.s);
  // Third parties: only t. t's route to s: via m... but m now originates
  // the prefix itself: t reaches "s's prefix" via customer m at length 1
  // (m's own announcement) vs length 2 through m to s. Shorter wins: fooled.
  EXPECT_DOUBLE_EQ(impact, 1.0);
}

TEST(EdgeCases, ZeroWeightNodesContributeNothing) {
  auto c = test::make_chain();
  c.g.set_weight(c.t, 0.0);
  core::SimConfig cfg;
  par::ThreadPool pool(1);
  std::vector<std::uint8_t> nobody(c.g.num_nodes(), 0);
  const auto u = core::compute_utilities(c.g, nobody, cfg, pool);
  EXPECT_DOUBLE_EQ(u.outgoing[c.m], 0.0) << "t's zero weight transits nothing";
}

TEST(EdgeCases, ApplyTrafficModelWithZeroFractionResetsWeights) {
  auto net = test::small_internet(100, 1);
  topo::apply_traffic_model(net.graph, net.cps, 0.5);
  EXPECT_GT(net.graph.weight(net.cps.front()), 1.0);
  topo::apply_traffic_model(net.graph, net.cps, 0.0);
  EXPECT_DOUBLE_EQ(net.graph.weight(net.cps.front()), 1.0);
  EXPECT_DOUBLE_EQ(net.graph.total_weight(),
                   static_cast<double>(net.graph.num_nodes()));
}

}  // namespace
}  // namespace sbgp
