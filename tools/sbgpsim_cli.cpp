// sbgpsim — command-line driver for the library.
//
//   sbgpsim generate --nodes 5000 --seed 1 --out graph.txt [--augment]
//   sbgpsim simulate [--graph g.txt | --nodes N] [--adopters SPEC]
//                    [--theta F] [--model outgoing|incoming] [--x F]
//                    [--stub-ties 0|1] [--csv]
//   sbgpsim sweep    [--graph g.txt | --nodes N] [--adopters SPEC]
//                    [--thetas 0,0.05,0.1] [--csv]
//   sbgpsim analyze  [--graph g.txt | --nodes N]
//                    (tiebreaks | diamonds | resilience | pathlens)
//
// Adopter SPEC: none | top:K | cps | cps+top:K | random:K | asn:1,2,3
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/analysis.h"
#include "routing/rib.h"
#include "core/early_adopters.h"
#include "core/resilience.h"
#include "core/simulator.h"
#include "stats/table.h"
#include "topology/graph_io.h"
#include "topology/topology_gen.h"

namespace {

using namespace sbgp;

struct CliOptions {
  std::string command;
  std::string graph_file;
  std::string out_file;
  std::string adopters = "cps+top:5";
  std::string thetas = "0,0.05,0.1,0.2,0.35,0.5";
  std::string analysis = "tiebreaks";
  std::uint32_t nodes = 2000;
  std::uint64_t seed = 42;
  double theta = 0.05;
  double x = 0.10;
  bool augment = false;
  bool csv = false;
  bool stub_ties = true;
  core::UtilityModel model = core::UtilityModel::Outgoing;
};

[[noreturn]] void usage(int code) {
  std::cerr <<
      "usage: sbgpsim <generate|simulate|sweep|analyze> [options]\n"
      "  common: --nodes N --seed S --x F --graph FILE\n"
      "  generate: --out FILE [--augment]\n"
      "  simulate: --adopters SPEC --theta F --model outgoing|incoming\n"
      "            --stub-ties 0|1 [--csv]\n"
      "  sweep:    --adopters SPEC --thetas 0,0.05,... [--csv]\n"
      "  analyze:  tiebreaks | diamonds | resilience | pathlens\n"
      "  adopter SPEC: none | top:K | cps | cps+top:K | random:K | asn:1,2,3\n";
  std::exit(code);
}

CliOptions parse(int argc, char** argv) {
  CliOptions o;
  if (argc < 2) usage(2);
  o.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(2);
      return argv[++i];
    };
    if (a == "--nodes") o.nodes = static_cast<std::uint32_t>(std::stoul(next()));
    else if (a == "--seed") o.seed = std::stoull(next());
    else if (a == "--graph") o.graph_file = next();
    else if (a == "--out") o.out_file = next();
    else if (a == "--adopters") o.adopters = next();
    else if (a == "--theta") o.theta = std::stod(next());
    else if (a == "--thetas") o.thetas = next();
    else if (a == "--x") o.x = std::stod(next());
    else if (a == "--augment") o.augment = true;
    else if (a == "--csv") o.csv = true;
    else if (a == "--stub-ties") o.stub_ties = next() != "0";
    else if (a == "--model") {
      o.model = next() == "incoming" ? core::UtilityModel::Incoming
                                     : core::UtilityModel::Outgoing;
    } else if (a == "--help" || a == "-h") usage(0);
    else if (a[0] != '-') o.analysis = a;
    else usage(2);
  }
  return o;
}

topo::Internet load_internet(const CliOptions& o) {
  topo::Internet net;
  if (!o.graph_file.empty()) {
    net.graph = topo::read_as_rel_file(o.graph_file);
    for (topo::AsId n = 0; n < net.graph.num_nodes(); ++n) {
      if (net.graph.is_content_provider(n)) net.cps.push_back(n);
    }
    net.tier1 = net.graph.tier_ones();
  } else {
    topo::InternetConfig cfg;
    cfg.total_ases = o.nodes;
    cfg.seed = o.seed;
    net = topo::generate_internet(cfg);
  }
  topo::apply_traffic_model(net.graph, net.cps, o.x);
  return net;
}

std::vector<topo::AsId> resolve_adopters(const topo::Internet& net,
                                         const std::string& spec,
                                         std::uint64_t seed) {
  auto after_colon = [&](std::size_t pos) {
    return static_cast<std::size_t>(std::stoul(spec.substr(pos)));
  };
  if (spec == "none") return {};
  if (spec == "cps") return net.cps;
  if (spec.rfind("top:", 0) == 0) {
    return topo::top_degree_isps(net.graph, after_colon(4));
  }
  if (spec.rfind("cps+top:", 0) == 0) {
    auto out = net.cps;
    for (const auto isp : topo::top_degree_isps(net.graph, after_colon(8))) {
      out.push_back(isp);
    }
    return out;
  }
  if (spec.rfind("random:", 0) == 0) {
    return core::select_adopters(net, core::AdopterStrategy::RandomIsps,
                                 after_colon(7), seed);
  }
  if (spec.rfind("asn:", 0) == 0) {
    std::vector<topo::AsId> out;
    std::stringstream ss(spec.substr(4));
    std::string token;
    while (std::getline(ss, token, ',')) {
      const topo::AsId id =
          net.graph.find_asn(static_cast<std::uint32_t>(std::stoul(token)));
      if (id == topo::kNoAs) {
        std::cerr << "unknown ASN " << token << "\n";
        std::exit(1);
      }
      out.push_back(id);
    }
    return out;
  }
  std::cerr << "bad adopter spec '" << spec << "'\n";
  std::exit(2);
}

int cmd_generate(const CliOptions& o) {
  topo::InternetConfig cfg;
  cfg.total_ases = o.nodes;
  cfg.seed = o.seed;
  auto net = topo::generate_internet(cfg);
  if (o.augment) {
    std::size_t added = 0;
    net = topo::augment_cp_peering(net, 0.8, o.seed + 1, &added);
    std::cerr << "augmented: +" << added << " CP peering edges\n";
  }
  if (o.out_file.empty()) {
    topo::write_as_rel(net.graph, std::cout);
  } else {
    topo::write_as_rel_file(net.graph, o.out_file);
    std::cerr << "wrote " << o.out_file << ": " << net.graph.num_nodes()
              << " ASes, " << net.graph.num_customer_provider_edges() << " c2p, "
              << net.graph.num_peer_edges() << " p2p\n";
  }
  return 0;
}

core::SimConfig sim_config(const CliOptions& o) {
  core::SimConfig cfg;
  cfg.model = o.model;
  cfg.theta = o.theta;
  cfg.stub_breaks_ties = o.stub_ties;
  return cfg;
}

int cmd_simulate(const CliOptions& o) {
  const auto net = load_internet(o);
  const auto adopters = resolve_adopters(net, o.adopters, o.seed);
  core::DeploymentSimulator sim(net.graph, sim_config(o));
  const auto result =
      sim.run(core::DeploymentState::initial(net.graph, adopters));

  stats::Table t({"round", "new_isps", "new_stubs", "turned_off", "secure_ases",
                  "secure_isps"});
  for (const auto& r : result.rounds) {
    t.begin_row();
    t.add(r.round);
    t.add(r.newly_secure_isps);
    t.add(r.newly_secure_stubs);
    t.add(r.turned_off);
    t.add(r.total_secure_ases);
    t.add(r.total_secure_isps);
  }
  if (o.csv) t.print_csv(std::cout);
  else t.print(std::cout);
  std::cerr << "outcome: " << core::to_string(result.outcome) << "; secure "
            << result.final_state.num_secure() << "/" << net.graph.num_nodes()
            << " ASes\n";
  return 0;
}

int cmd_sweep(const CliOptions& o) {
  const auto net = load_internet(o);
  const auto adopters = resolve_adopters(net, o.adopters, o.seed);
  stats::Table t({"theta", "outcome", "rounds", "secure_ases", "secure_isps",
                  "frac_ases", "frac_isps"});
  std::stringstream ss(o.thetas);
  std::string token;
  while (std::getline(ss, token, ',')) {
    CliOptions run = o;
    run.theta = std::stod(token);
    core::DeploymentSimulator sim(net.graph, sim_config(run));
    const auto result =
        sim.run(core::DeploymentState::initial(net.graph, adopters));
    t.begin_row();
    t.add(run.theta, 3);
    t.add(std::string(core::to_string(result.outcome)));
    t.add(result.rounds_run());
    t.add(result.final_state.num_secure());
    t.add(result.final_state.num_secure_of_class(net.graph, topo::AsClass::Isp));
    t.add(static_cast<double>(result.final_state.num_secure()) /
              static_cast<double>(net.graph.num_nodes()),
          4);
    t.add(static_cast<double>(result.final_state.num_secure_of_class(
              net.graph, topo::AsClass::Isp)) /
              static_cast<double>(net.graph.num_isps()),
          4);
  }
  if (o.csv) t.print_csv(std::cout);
  else t.print(std::cout);
  return 0;
}

int cmd_analyze(const CliOptions& o) {
  const auto net = load_internet(o);
  par::ThreadPool pool(0);
  const auto cfg = sim_config(o);
  if (o.analysis == "tiebreaks") {
    const auto dist = core::tiebreak_distribution(net.graph, pool);
    std::cout << "mean tiebreak size: all " << dist.all.mean() << " isp "
              << dist.isp.mean() << " stub " << dist.stub.mean()
              << "; frac >1: " << dist.all.fraction_greater(1) << "\n";
  } else if (o.analysis == "diamonds") {
    const auto adopters = resolve_adopters(net, o.adopters, o.seed);
    for (const auto& d : core::count_diamonds(net.graph, adopters, pool)) {
      std::cout << "AS" << net.graph.asn(d.adopter) << ": " << d.diamonds
                << " contested stubs, " << d.strict_diamonds << " strict\n";
    }
  } else if (o.analysis == "resilience") {
    std::vector<std::uint8_t> nobody(net.graph.num_nodes(), 0);
    const auto r = core::measure_resilience(net.graph, nobody, cfg, 100, o.seed, pool);
    std::cout << "status quo hijack impact: mean " << r.mean_fooled() << ", p90 "
              << r.fooled_fraction.quantile(0.9) << " (over " << r.pairs
              << " pairs)\n";
  } else if (o.analysis == "pathlens") {
    for (const auto cp : net.cps) {
      std::cout << "AS" << net.graph.asn(cp) << ": avg path length "
                << rt::average_path_length_from(net.graph, cp) << "\n";
    }
  } else {
    usage(2);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions o = parse(argc, argv);
  if (o.command == "generate") return cmd_generate(o);
  if (o.command == "simulate") return cmd_simulate(o);
  if (o.command == "sweep") return cmd_sweep(o);
  if (o.command == "analyze") return cmd_analyze(o);
  usage(2);
}
