// Declarative parameter grids ("job specs") and their deterministic expansion
// into concrete simulation jobs — the repo's stand-in for the parameter
// sweeps the paper ran on its 200-node DryadLINQ cluster (θ × utility model ×
// early-adopter set × seed × graph). A spec is a small JSON document:
//
//   {
//     "name": "theta-grid",
//     "graphs": [{"nodes": 1500, "seed": 42}, {"file": "cyclops.txt"}],
//     "thetas": [0, 0.05, 0.1, 0.2],
//     "models": ["outgoing"],
//     "pricing": ["linear"],
//     "adopters": ["cps+top:5", "top:10", "random:18"],
//     "seeds": [1, 2, 3],
//     "stub_ties": [true]
//   }
//
// `expand()` materialises the cross product in a fixed nested-loop order, so
// the same spec always yields the same job list with the same job ids; the
// spec hash (over the canonical JSON serialisation) plus the job id is what
// the result store keys checkpoint/resume on.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "exp/json.h"
#include "scenario/scenario_spec.h"

namespace sbgp::exp {

/// Where a job's AS graph comes from: an as-rel file, or the synthetic
/// generator (`nodes`/`seed`, optionally Appendix-D CP-peering augmented).
/// `x` is the CP traffic fraction of the paper's traffic model.
struct GraphSpec {
  std::string file;            ///< non-empty => load as-rel file, ignore nodes/seed
  std::uint32_t nodes = 1500;
  std::uint64_t seed = 42;
  bool augment = false;
  double x = 0.10;

  /// Canonical cache/display key, e.g. "synth:n1500:s42:x0.1".
  [[nodiscard]] std::string key() const;
};

/// One fully-instantiated simulation: a single point of the grid.
struct Job {
  std::size_t id = 0;  ///< index in the expansion order; stable per spec
  GraphSpec graph;
  std::string adopters = "cps+top:5";  ///< CLI adopter SPEC syntax
  std::string model = "outgoing";      ///< UtilityModel
  std::string pricing = "linear";      ///< PricingModel
  bool stub_ties = true;
  std::uint64_t seed = 42;  ///< adopter-selection / tie-break seed
  double theta = 0.05;
  double pricing_tier_size = 10.0;
  std::size_t max_rounds = 200;
  std::size_t threads = 1;  ///< inner threads; 0 = scheduler auto-budget
  /// Use the incremental dirty-destination round engine (results are
  /// bitwise identical either way; excluded from key()).
  bool incremental = true;
  /// Run the incremental/full differential check in lockstep; a divergence
  /// fails the job. Validation runs only — roughly doubles round cost.
  bool check_incremental = false;
  /// When set, the attack scenario evaluated against the final deployment
  /// state after the simulation converges (one matrix point per job).
  std::optional<scenario::Scenario> attack_scenario;

  /// Canonical human-readable key identifying the grid point (excludes id).
  [[nodiscard]] std::string key() const;
};

/// The declarative grid. Every axis must be non-empty; single-element axes
/// are how you pin a dimension.
struct JobSpec {
  std::string name = "sweep";
  std::vector<GraphSpec> graphs = {GraphSpec{}};
  std::vector<std::string> adopters = {"cps+top:5"};
  std::vector<std::string> models = {"outgoing"};
  std::vector<std::string> pricing = {"linear"};
  std::vector<int> stub_ties = {1};  ///< 0/1 (int, not bool, for iteration)
  std::vector<std::uint64_t> seeds = {42};
  std::vector<double> thetas = {0.05};
  double pricing_tier_size = 10.0;
  std::size_t max_rounds = 200;
  /// Inner simulator threads per job. 1 (default) keeps results bit-exact
  /// regardless of outer parallelism; 0 lets the scheduler budget
  /// hardware/workers threads per job. (The round engine itself is
  /// thread-count invariant; compute_utilities now is too.)
  std::size_t threads = 1;
  /// Scalars applied to every job (not grid axes): engine selection.
  bool incremental = true;
  bool check_incremental = false;
  /// Observability scalars (not grid axes). When set, `sbgpsim jobs run`
  /// streams per-job telemetry JSONL to `metrics_out`, writes a Chrome
  /// trace to `trace_out`, and/or prints the span summary. Accepted in spec
  /// files but EXCLUDED from to_json() and therefore from hash(): telemetry
  /// sinks are run configuration, not experiment identity, so toggling them
  /// must not invalidate checkpoint/resume against an existing store. CLI
  /// flags override these.
  std::string metrics_out;
  std::string trace_out;
  bool obs_summary = false;
  /// Optional attack-scenario matrix (a `"scenario"` block in the JSON):
  /// every grid point above is crossed with every expanded scenario point,
  /// and each job evaluates its scenario against the converged deployment.
  /// Unlike the telemetry sinks this is experiment identity: the block IS
  /// serialised by to_json() and therefore participates in hash(). Specs
  /// without a scenario block keep their historical hash.
  std::optional<scenario::ScenarioSpec> scenario;

  /// Number of grid points (product of axis sizes, × scenario points).
  [[nodiscard]] std::size_t num_jobs() const;

  /// Deterministic expansion: graphs » adopters » models » pricing »
  /// stub_ties » seeds » thetas » scenario points (innermost). Same spec,
  /// same list.
  [[nodiscard]] std::vector<Job> expand() const;

  /// FNV-1a hash of the canonical JSON serialisation. Two specs share a
  /// hash iff they expand to the same job list under the same name.
  [[nodiscard]] std::uint64_t hash() const;

  [[nodiscard]] Json to_json() const;

  /// Parses and validates a spec; throws JsonError on unknown keys, empty
  /// axes, or out-of-domain values (bad model/pricing names, θ < 0, …).
  static JobSpec from_json(const Json& j);
  static JobSpec from_file(const std::string& path);
};

/// Strict comma-separated list parsers (the `--thetas 0,0.05,0.1` fix):
/// reject empty lists, empty entries, trailing separators and non-numeric
/// tokens with a JsonError naming `what`.
[[nodiscard]] std::vector<double> parse_double_list(const std::string& csv,
                                                    const char* what);
[[nodiscard]] std::vector<std::uint64_t> parse_u64_list(const std::string& csv,
                                                        const char* what);

}  // namespace sbgp::exp
