# Empty dependencies file for bench_ablation_per_link.
# This may be replaced when dependencies are built.
