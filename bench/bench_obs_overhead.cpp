// Observability overhead gate: the obs:: subsystem must cost <= 2% of
// wall-clock on the default 1500-AS deployment cascade with metrics AND
// tracing armed, and the simulation results must be bitwise identical with
// observability on and off (the instrumentation only reads clocks and bumps
// counters — it must never perturb the computation).
//
// Three configurations are timed best-of-reps over the same run:
//   off      — metrics disabled, tracing disabled (the default state)
//   metrics  — metrics registry armed
//   full     — metrics + trace ring armed (the gated configuration)
//
// Exit 0 when the full-overhead ratio is <= the gate AND all three runs
// produce identical results; exit 1 otherwise.
//
//   bench_obs_overhead [--nodes N] [--seed S] [--threads T] [--reps K]
//                      [--gate PCT]
#include <chrono>
#include <iomanip>

#include "bench_common.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/table.h"

namespace {

using Clock = std::chrono::steady_clock;

double run_seconds(const sbgp::topo::Internet& net,
                   const sbgp::core::SimConfig& cfg,
                   const sbgp::core::DeploymentState& init, int reps,
                   sbgp::core::SimResult& out) {
  double best = 1e100;  // best-of-reps: robust against scheduler noise
  for (int r = 0; r < reps; ++r) {
    sbgp::core::DeploymentSimulator sim(net.graph, cfg);
    const auto t0 = Clock::now();
    out = sim.run(init);
    const auto t1 = Clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

bool identical(const sbgp::core::SimResult& a, const sbgp::core::SimResult& b) {
  return a.outcome == b.outcome && a.rounds_run() == b.rounds_run() &&
         a.final_state.flags() == b.final_state.flags() &&
         a.final_utility == b.final_utility &&
         a.starting_utility == b.starting_utility;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sbgp;
  int reps = 5;
  double gate_pct = 2.0;
  std::vector<char*> args{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--reps" && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::string(argv[i]) == "--gate" && i + 1 < argc) {
      gate_pct = std::atof(argv[++i]);
    } else {
      args.push_back(argv[i]);
    }
  }
  const auto opt =
      bench::parse_options(static_cast<int>(args.size()), args.data());
  bench::print_header("perf - obs:: observability overhead", opt);

  auto net = bench::make_internet(opt);
  const auto adopters = bench::case_study_adopters(net);
  const auto init = core::DeploymentState::initial(net.graph, adopters);
  const core::SimConfig cfg = bench::case_study_config(opt);

  // Baseline: everything off (the shipped default).
  obs::set_metrics_enabled(false);
  obs::TraceBuffer::global().set_enabled(false);
  core::SimResult base, with_metrics, with_full;
  const double off_s = run_seconds(net, cfg, init, reps, base);

  obs::set_metrics_enabled(true);
  const double metrics_s = run_seconds(net, cfg, init, reps, with_metrics);

  obs::TraceBuffer::global().set_enabled(true);
  const double full_s = run_seconds(net, cfg, init, reps, with_full);
  obs::TraceBuffer::global().set_enabled(false);
  obs::set_metrics_enabled(false);

  const bool same =
      identical(base, with_metrics) && identical(base, with_full);

  auto pct = [&](double s) {
    return off_s > 0 ? (s / off_s - 1.0) * 100.0 : 0.0;
  };
  stats::Table t({"configuration", "best s", "overhead %"});
  t.begin_row();
  t.add(std::string("obs off"));
  t.add(off_s, 4);
  t.add(0.0, 2);
  t.begin_row();
  t.add(std::string("metrics"));
  t.add(metrics_s, 4);
  t.add(pct(metrics_s), 2);
  t.begin_row();
  t.add(std::string("metrics+tracing"));
  t.add(full_s, 4);
  t.add(pct(full_s), 2);
  t.print(std::cout);

  const std::uint64_t spans = obs::TraceBuffer::global().recorded();
  std::cout << std::fixed << std::setprecision(2) << "\nspans recorded: "
            << spans << " (dropped " << obs::TraceBuffer::global().dropped()
            << ")\nresults identical (off vs metrics vs full): "
            << (same ? "yes" : "NO") << "\ngate: overhead <= " << gate_pct
            << "% -> " << (pct(full_s) <= gate_pct ? "PASS" : "FAIL") << "\n";
  bench::print_paper_note(
      "Instrumentation rides the round loop's existing phase boundaries: a "
      "handful of clock reads and sharded relaxed counter bumps per round, "
      "amortised over thousands of per-destination tree computations.");

  if (!same) return 1;
  if (spans == 0) return 1;  // tracing must actually have observed the run
  return pct(full_s) <= gate_pct ? 0 : 1;
}
