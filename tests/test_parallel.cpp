#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "parallel/thread_pool.h"

namespace sbgp::par {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, hits.size(),
               [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyAndSingletonRanges) {
  ThreadPool pool(2);
  int count = 0;
  parallel_for(pool, 5, 5, [&count](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  parallel_for(pool, 5, 6, [&count](std::size_t) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(ParallelForChunked, ChunksPartitionTheRange) {
  ThreadPool pool(4);
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  parallel_for_chunked(pool, 10, 250, [&](std::size_t lo, std::size_t hi) {
    std::scoped_lock lock(m);
    chunks.emplace_back(lo, hi);
  });
  std::sort(chunks.begin(), chunks.end());
  ASSERT_FALSE(chunks.empty());
  EXPECT_EQ(chunks.front().first, 10u);
  EXPECT_EQ(chunks.back().second, 250u);
  for (std::size_t i = 0; i + 1 < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].second, chunks[i + 1].first) << "gap or overlap";
  }
}

TEST(ParallelForDynamic, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for_dynamic(pool, 0, hits.size(),
                       [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForDynamic, EmptyRangeAndUnevenWork) {
  ThreadPool pool(3);
  int count = 0;
  parallel_for_dynamic(pool, 4, 4, [&count](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  // Highly skewed per-index cost: one "job" dwarfs the rest; every index
  // must still run exactly once.
  std::atomic<long> total{0};
  parallel_for_dynamic(pool, 0, 64, [&total](std::size_t i) {
    long local = 0;
    const long reps = i == 0 ? 200000 : 100;
    for (long k = 0; k < reps; ++k) local += k % 7;
    total.fetch_add(local == -1 ? 0 : 1);
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ParallelFor, SingleThreadPoolStillCorrect) {
  ThreadPool pool(1);
  std::vector<int> v(100, 0);
  parallel_for(pool, 0, v.size(), [&v](std::size_t i) { v[i] = static_cast<int>(i); });
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(v[i], static_cast<int>(i));
}

}  // namespace
}  // namespace sbgp::par
