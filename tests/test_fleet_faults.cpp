// Kill/crash fault injection for the multi-process sweep fleet. These tests
// run a *real* fleet — coordinator in the test process, workers as separate
// processes re-exec'd from this very binary — and murder workers at chosen
// points: mid-shard after N jobs, mid-JSONL-line (a torn record is written
// and the process dies before completing it), and immediately after claiming
// a shard (before the first heartbeat). The invariant under all of it: the
// fleet converges, and its merged store is job-for-job identical (canonical
// deterministic rows, keyed by spec hash + job id) to a single-process
// SweepScheduler run of the same spec.
//
// Worker trap: when SBGP_FLEET_TRAP=1 is in the environment, a static
// initializer in this translation unit runs the fleet worker loop and
// _Exit()s before gtest's main ever starts. The coordinator spawns
// /proc/self/exe with that variable set — so the whole harness lives in the
// sbgp_tests binary and runs identically under ASan/UBSan (no dependency on
// the CLI binary).
#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "exp/fleet.h"
#include "exp/lease.h"
#include "exp/result_store.h"
#include "exp/scheduler.h"
#include "obs/metrics.h"

namespace sbgp::exp {
namespace {

namespace fs = std::filesystem;

// Deterministic fake job runner: the record is a pure function of the job,
// so single-process and fleet runs are bitwise comparable without paying for
// real simulations. The small stall gives the coordinator supervision ticks
// and the kill points something to land in the middle of.
JobRecord fake_run(const Job& job) {
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  JobRecord r;
  r.job_id = job.id;
  r.job_key = job.key();
  r.status = "ok";
  r.outcome = "converged";
  r.rounds = 1 + job.id % 7;
  r.secure_ases = 100 + job.id;
  r.secure_isps = 50 + job.id % 13;
  r.num_ases = 200;
  r.num_isps = 120;
  r.frac_ases = static_cast<double>(r.secure_ases) / r.num_ases;
  r.frac_isps = static_cast<double>(r.secure_isps) / r.num_isps;
  return r;
}

// The grid under test: 6 thetas x 4 seeds = 24 jobs. Built identically in
// the parent and (via spec.json) in trapped workers.
JobSpec fault_spec() {
  JobSpec spec;
  spec.name = "fleet-fault-grid";
  spec.thetas = {0.0, 0.05, 0.1, 0.2, 0.35, 0.5};
  spec.seeds = {1, 2, 3, 4};
  return spec;
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : fallback;
}

// ---------------------------------------------------------------------------
// The worker trap. Runs before main() when the binary is re-exec'd with
// SBGP_FLEET_TRAP=1; never returns.

[[noreturn]] void run_trapped_worker() {
  const char* run_dir = std::getenv("SBGP_FLEET_RUN_DIR");
  const char* worker_id = std::getenv("SBGP_FLEET_WORKER_ID");
  if (run_dir == nullptr || worker_id == nullptr) std::_Exit(86);
  const long kill_after =
      std::strtol(std::getenv("SBGP_FLEET_KILL_AFTER") != nullptr
                      ? std::getenv("SBGP_FLEET_KILL_AFTER")
                      : "-1",
                  nullptr, 10);
  const char* kill_mode_env = std::getenv("SBGP_FLEET_KILL_MODE");
  const std::string kill_mode = kill_mode_env != nullptr ? kill_mode_env : "die";

  WorkerOptions wo;
  wo.run_dir = run_dir;
  wo.worker_id = worker_id;
  wo.ttl_s = env_double("SBGP_FLEET_TTL", 0.5);
  wo.poll_s = 0.01;
  wo.max_idle_s = 20.0;  // orphan guard: never outlive a wedged test by much
  wo.runner = [](const Job& job, const std::function<bool()>&) {
    return fake_run(job);
  };
  const std::string store_path =
      FleetPaths::at(wo.run_dir).worker_store(wo.worker_id);
  wo.on_job = [kill_after, kill_mode, store_path](const JobRecord& r,
                                                  std::size_t jobs_done) {
    if (kill_after < 0 || jobs_done <= static_cast<std::size_t>(kill_after)) {
      return;
    }
    if (kill_mode == "tear") {
      // Die mid-JSONL-line: append an unterminated prefix of a plausible
      // record, exactly what SIGKILL between write() and the trailing
      // newline leaves behind. The healed loader must skip it.
      const std::string line = r.to_json().dump();
      if (std::FILE* f = std::fopen(store_path.c_str(), "ab")) {
        std::fwrite(line.data(), 1, line.size() / 2, f);
        std::fflush(f);
        // No fclose: _Exit below abandons the handle like a kill would.
      }
    }
    // _Exit: no destructors, no lease release, no done marker — as close to
    // SIGKILL as a process can do to itself, but deterministic in *where*.
    std::_Exit(9);
  };
  try {
    (void)run_fleet_worker(wo);
  } catch (...) {
    std::_Exit(87);
  }
  std::_Exit(0);
}

[[maybe_unused]] const bool g_worker_trap = [] {
  const char* trap = std::getenv("SBGP_FLEET_TRAP");
  if (trap != nullptr && trap[0] == '1') run_trapped_worker();
  return false;
}();

// ---------------------------------------------------------------------------
// Harness helpers.

std::string temp_dir(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  fs::remove_all(path);
  fs::create_directories(path);
  return path;
}

// Canonical deterministic rows keyed by job id — the equivalence currency.
std::unordered_map<std::size_t, std::string> rows_by_job(
    const std::vector<JobRecord>& records) {
  std::unordered_map<std::size_t, std::string> out;
  for (const auto& r : records) out[r.job_id] = r.canonical_row();
  return out;
}

// Single-process reference run of `spec` with the same fake runner.
std::unordered_map<std::size_t, std::string> reference_rows(const JobSpec& spec) {
  SweepOptions so;
  so.workers = 1;
  SweepScheduler sched(so);
  const auto report = sched.run(
      spec, nullptr,
      [](const Job& job, const std::function<bool()>&) { return fake_run(job); });
  return rows_by_job(report.records);
}

// Spawner for trapped workers. `kill_after[i]` configures worker index i's
// self-destruct (< 0 = reliable worker); restarted workers (index reused,
// fresh id) come back reliable, as a respawned process would.
struct TrapSpawner {
  std::string run_dir;
  double ttl_s = 0.5;
  std::vector<std::pair<long, std::string>> faults;  // per index: count, mode
  std::vector<std::string> spawned_ids;

  pid_t operator()(std::size_t index, const std::string& worker_id) {
    long kill_after = -1;
    std::string mode = "die";
    const bool first_spawn =
        worker_id.find('r') == std::string::npos;  // "w0", not "w0r1"
    if (first_spawn && index < faults.size()) {
      kill_after = faults[index].first;
      mode = faults[index].second;
    }
    spawned_ids.push_back(worker_id);
    return spawn_process(
        {"/proc/self/exe"},
        {{"SBGP_FLEET_TRAP", "1"},
         {"SBGP_FLEET_RUN_DIR", run_dir},
         {"SBGP_FLEET_WORKER_ID", worker_id},
         {"SBGP_FLEET_TTL", std::to_string(ttl_s)},
         {"SBGP_FLEET_KILL_AFTER", std::to_string(kill_after)},
         {"SBGP_FLEET_KILL_MODE", mode}});
  }
};

FleetOptions fast_fleet(const std::string& run_dir, std::size_t workers) {
  FleetOptions fo;
  fo.run_dir = run_dir;
  fo.workers = workers;
  fo.ttl_s = 0.5;
  fo.poll_s = 0.02;
  fo.max_wall_s = 120.0;  // hard stop well under any test timeout
  return fo;
}

void expect_matches_reference(
    const FleetReport& report,
    const std::unordered_map<std::size_t, std::string>& ref) {
  EXPECT_FALSE(report.aborted);
  EXPECT_EQ(report.missing, 0u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.timed_out, 0u);
  EXPECT_EQ(report.reconcile_mismatches, 0u);
  const auto fleet_rows = rows_by_job(report.records);
  ASSERT_EQ(fleet_rows.size(), ref.size());
  for (const auto& [id, row] : ref) {
    const auto it = fleet_rows.find(id);
    ASSERT_NE(it, fleet_rows.end()) << "job " << id << " missing from merge";
    EXPECT_EQ(it->second, row) << "job " << id << " diverged";
  }
}

// ---------------------------------------------------------------------------
// The fault matrix.

TEST(FleetFaults, WorkerDiesMidShardFleetStillMatchesReference) {
  const auto ref = reference_rows(fault_spec());
  const std::string run_dir = temp_dir("fleet_die_midshard");
  TrapSpawner spawner;
  spawner.run_dir = run_dir;
  // w0 dies after completing 2 jobs (mid-shard, lease still fresh); w1 is
  // reliable. One restart allowed.
  spawner.faults = {{2, "die"}, {-1, "die"}};
  FleetOptions fo = fast_fleet(run_dir, 2);
  fo.max_restarts = 2;
  fo.spawn = std::ref(spawner);
  FleetReport report = FleetCoordinator(fo, fault_spec()).run();
  expect_matches_reference(report, ref);
  EXPECT_GE(report.worker_restarts, 1u);
  EXPECT_GE(report.leases_expired, 1u);  // the dead worker's shard was reaped
}

TEST(FleetFaults, WorkerDiesMidJsonlLineTornRecordIsHealed) {
  const auto ref = reference_rows(fault_spec());
  const std::string run_dir = temp_dir("fleet_tear_midline");
  TrapSpawner spawner;
  spawner.run_dir = run_dir;
  // w0 tears its own store mid-line after 3 jobs, then dies; w1 also dies
  // (pre-heartbeat: after its 1st job, likely before the first ttl/4 beat).
  spawner.faults = {{3, "tear"}, {0, "die"}};
  FleetOptions fo = fast_fleet(run_dir, 2);
  fo.max_restarts = 4;
  fo.spawn = std::ref(spawner);
  FleetReport report = FleetCoordinator(fo, fault_spec()).run();
  expect_matches_reference(report, ref);
  EXPECT_GE(report.worker_restarts, 2u);

  // The torn line is still sitting in w0's store file — prove the merge
  // healed (skipped) it rather than parsing garbage.
  const std::uint64_t hash = fault_spec().hash();
  const StoreMerge merge =
      merge_stores(list_worker_stores(FleetPaths::at(run_dir)), &hash);
  EXPECT_GE(merge.skipped_lines, 1u);
}

TEST(FleetFaults, RandomizedSigkillFromTheCoordinatorLoop) {
  // The "kill at randomized points" sweep: a seeded RNG picks supervision
  // ticks at which a live worker gets a real SIGKILL — wherever it happens
  // to be (claiming, heartbeating, mid-write). Three rounds with different
  // seeds; every round must still converge to the reference.
  const auto ref = reference_rows(fault_spec());
  for (const std::uint32_t seed : {11u, 23u, 47u}) {
    const std::string run_dir =
        temp_dir("fleet_sigkill_" + std::to_string(seed));
    TrapSpawner spawner;
    spawner.run_dir = run_dir;
    spawner.faults = {{-1, "die"}, {-1, "die"}};
    FleetOptions fo = fast_fleet(run_dir, 2);
    fo.max_restarts = 3;
    fo.spawn = std::ref(spawner);
    std::mt19937 rng(seed);
    std::uniform_int_distribution<int> gap(3, 12);
    int kills_left = 2;
    int next_kill_tick = gap(rng);
    fo.on_poll = [&](const FleetStatus& status) {
      if (kills_left > 0 && status.tick >= static_cast<std::size_t>(next_kill_tick) &&
          !status.live_pids.empty()) {
        const std::size_t victim = rng() % status.live_pids.size();
        ::kill(status.live_pids[victim], SIGKILL);
        --kills_left;
        next_kill_tick = static_cast<int>(status.tick) + gap(rng);
      }
    };
    FleetReport report = FleetCoordinator(fo, fault_spec()).run();
    expect_matches_reference(report, ref);
  }
}

TEST(FleetFaults, StealFromAStillAliveStragglerReconcilesBitwise) {
  // One giant shard held by a deliberately slow worker; a second, fast
  // worker has nothing to claim until the coordinator splits the
  // straggler's tail. The straggler is never killed, so the stolen jobs run
  // twice — the merge must fold the duplicates and verify them bitwise.
  const JobSpec spec = fault_spec();
  const auto ref = reference_rows(spec);
  const std::string run_dir = temp_dir("fleet_steal_alive");

  // Metric mutations are off by default; turn them on so the fleet.* counter
  // assertion below observes the steal.
  obs::set_metrics_enabled(true);
  obs::Registry::global().counter("fleet.shards_stolen").reset();

  // In-process workers (threads, not processes — the protocol is identical
  // because all coordination is through the run directory).
  WorkerOptions slow;
  slow.run_dir = run_dir;
  slow.worker_id = "slow";
  slow.ttl_s = 0.5;
  slow.poll_s = 0.01;
  slow.max_idle_s = 15.0;
  slow.runner = [](const Job& job, const std::function<bool()>&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    JobRecord r = fake_run(job);
    return r;
  };
  WorkerOptions fast = slow;
  fast.worker_id = "fast";
  fast.runner = [](const Job& job, const std::function<bool()>&) {
    return fake_run(job);
  };

  FleetOptions fo;
  fo.run_dir = run_dir;
  fo.workers = 0;  // externally attached workers
  fo.shard_size = spec.num_jobs();  // one shard => stealing is the only way
  fo.ttl_s = 0.5;
  fo.poll_s = 0.02;
  fo.max_steals_per_shard = 4;
  fo.max_wall_s = 120.0;
  FleetCoordinator coordinator(fo, spec);

  std::thread slow_thread;
  std::thread fast_thread;
  // Workers find spec.json via their bounded start-up wait, so they can
  // start before the coordinator publishes anything.
  slow_thread = std::thread([&] { (void)run_fleet_worker(slow); });
  fast_thread = std::thread([&] { (void)run_fleet_worker(fast); });
  FleetReport report = coordinator.run();
  slow_thread.join();
  fast_thread.join();

  expect_matches_reference(report, ref);
  EXPECT_GE(report.shards_stolen, 1u);
  EXPECT_EQ(report.reconcile_mismatches, 0u);
  EXPECT_EQ(report.leases_expired, 0u);  // nobody died; pure steal path

  // The straggler finishes its whole original shard even after the steal
  // (its work list was fixed at claim time), so by join time the stolen
  // tail exists in BOTH stores. The coordinator's merge may have run before
  // those late duplicates landed; a fresh merge over the final stores must
  // see them, reconcile them bitwise, and still agree with the reference.
  const std::uint64_t hash = spec.hash();
  const StoreMerge final_merge =
      merge_stores(list_worker_stores(FleetPaths::at(run_dir)), &hash);
  EXPECT_GE(final_merge.reexecuted_ok, 1u);
  EXPECT_EQ(final_merge.reconcile_mismatches, 0u);
  const auto final_rows = rows_by_job(final_merge.records);
  for (const auto& [id, row] : ref) {
    ASSERT_TRUE(final_rows.contains(id));
    EXPECT_EQ(final_rows.at(id), row);
  }
  // The obs counters saw the steal too.
  EXPECT_GE(obs::Registry::global().counter("fleet.shards_stolen").value(), 1u);
}

TEST(FleetFaults, FleetWithoutFaultsMatchesReferenceAndStoresAreClean) {
  // Control: no faults at all — and the merged store must already be
  // byte-healthy (zero torn lines, zero duplicates beyond steal noise).
  const auto ref = reference_rows(fault_spec());
  const std::string run_dir = temp_dir("fleet_clean");
  TrapSpawner spawner;
  spawner.run_dir = run_dir;
  spawner.faults = {{-1, "die"}, {-1, "die"}};
  FleetOptions fo = fast_fleet(run_dir, 2);
  fo.spawn = std::ref(spawner);
  FleetReport report = FleetCoordinator(fo, fault_spec()).run();
  expect_matches_reference(report, ref);
  EXPECT_EQ(report.worker_restarts, 0u);
  EXPECT_EQ(report.leases_expired, 0u);

  // merged.jsonl on disk round-trips to the same rows.
  std::size_t skipped = 0;
  const auto on_disk =
      ResultStore::load(FleetPaths::at(run_dir).merged, &skipped);
  EXPECT_EQ(skipped, 0u);
  const auto disk_rows = rows_by_job(on_disk);
  EXPECT_EQ(disk_rows.size(), ref.size());
}

}  // namespace
}  // namespace sbgp::exp
