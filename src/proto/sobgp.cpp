#include "proto/sobgp.h"

namespace sbgp::proto {

bool SoBgpDatabase::certify_link(std::uint32_t a, std::uint32_t b) {
  // Mutual authentication: both endpoints must sign the link certificate.
  const Digest digest = digest_words({0x11A7ULL, link_key(a, b)});
  const auto sig_a = rpki_->sign_as(a, digest);
  const auto sig_b = rpki_->sign_as(b, digest);
  if (!sig_a.has_value() || !sig_b.has_value()) return false;
  if (!rpki_->verify(a, digest, *sig_a) || !rpki_->verify(b, digest, *sig_b)) {
    return false;
  }
  links_.insert(link_key(a, b));
  return true;
}

bool SoBgpDatabase::link_certified(std::uint32_t a, std::uint32_t b) const {
  return links_.count(link_key(a, b)) != 0;
}

bool SoBgpDatabase::path_plausible(const std::vector<std::uint32_t>& path) const {
  if (path.empty()) return false;
  if (path.size() == 1) return rpki_->is_registered(path.front());
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (!link_certified(path[i], path[i + 1])) return false;
  }
  return true;
}

}  // namespace sbgp::proto
