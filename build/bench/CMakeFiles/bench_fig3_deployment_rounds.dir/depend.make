# Empty dependencies file for bench_fig3_deployment_rounds.
# This may be replaced when dependencies are built.
