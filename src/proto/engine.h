// Event-driven message-level BGP / S*BGP propagation engine. Where the
// routing library (src/routing) *derives* the converged routing tree in
// closed form, this engine actually exchanges announcements hop by hop:
// origination, GR2 export filtering, per-receiver validation (S-BGP route
// attestations or soBGP topology checks), the LP > SP > SecP > TB selection
// of Appendix A, and convergence detection (guaranteed by Lemma G.1).
//
// It exists for three reasons:
//  1. protocol-level fidelity: simplex vs full S*BGP differ in *which
//     cryptographic operations run where* — the engine counts them,
//     substantiating the paper's claim that simplex S*BGP removes nearly all
//     load from stubs (Section 2.2.1);
//  2. attack experiments (Appendix B) need an attacker that injects bogus
//     messages, which has no closed-form counterpart;
//  3. it cross-checks the closed-form routing library: on attack-free runs
//     both must select identical next hops (an integration test).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "proto/rpki.h"
#include "proto/sbgp.h"
#include "proto/sobgp.h"
#include "routing/rib.h"
#include "routing/routing_tree.h"
#include "topology/as_graph.h"

namespace sbgp::proto {

using topo::AsGraph;
using topo::AsId;
using topo::kNoAs;

/// Which protocol the secure ASes speak.
enum class SecurityMode : std::uint8_t { BgpOnly, SBgp, SoBgp };

[[nodiscard]] const char* to_string(SecurityMode m);

/// How route selection treats partially-attested paths. The paper mandates
/// IgnorePartial (Section 2.2.2); PreferPartial reproduces the Appendix B
/// attack that motivates the mandate.
enum class PartialPathPolicy : std::uint8_t { IgnorePartial, PreferPartial };

/// Per-AS security posture.
enum class NodeSecurity : std::uint8_t {
  Insecure,  ///< plain BGP: no signing, no validation
  Simplex,   ///< signs own-prefix announcements only; never validates
  Full,      ///< signs everything it sends and validates everything received
};

struct EngineConfig {
  SecurityMode mode = SecurityMode::SBgp;
  PartialPathPolicy partial = PartialPathPolicy::IgnorePartial;
  /// Do simplex stubs break ties on security (Section 6.7)? They cannot
  /// validate themselves; the model has them trust their providers'
  /// validation, which the engine implements with the same validation
  /// machinery (its verdict equals ground truth).
  bool stub_breaks_ties = true;
  rt::TieBreakPolicy tiebreak{};
  /// Safety cap on processed export events.
  std::size_t max_events = 0;  ///< 0 = 64 * |V|
};

/// A route installed at a node after convergence.
struct NodeRoute {
  AsId next_hop = kNoAs;
  std::vector<std::uint32_t> path;  ///< ASNs, path.front()=next hop, back()=origin
  rt::RouteClass cls = rt::RouteClass::None;
  std::uint8_t security_score = 0;  ///< 2 fully secure, 1 partial, 0 none
  [[nodiscard]] bool fully_secure() const { return security_score == 2; }
};

/// Cryptographic workload counters — the evidence for "simplex S*BGP
/// significantly decreases the computational load on the stub".
struct CryptoStats {
  std::vector<std::uint64_t> signatures;     ///< produced, per AS
  std::vector<std::uint64_t> verifications;  ///< performed, per AS
  std::uint64_t messages = 0;                ///< announcements delivered
};

class BgpEngine {
 public:
  /// `security[n]` gives each AS's posture. The engine registers every
  /// Simplex/Full AS in its Rpki, issues ROAs for their own prefixes, and
  /// (in SoBgp mode) certifies every link whose two endpoints are secure.
  BgpEngine(const AsGraph& graph, std::vector<NodeSecurity> security,
            EngineConfig cfg);

  /// Runs origination of `dest`'s prefix and processes messages to
  /// convergence. Returns false if max_events was hit (should not happen:
  /// Lemma G.1 guarantees convergence under these policies).
  bool run(AsId dest);

  /// Injects a bogus announcement from `attacker` claiming `claimed_path`
  /// (ASNs; front() must be the attacker) for `dest`'s prefix, sent to all
  /// of the attacker's neighbours, then re-runs to convergence. Call after
  /// run(dest). The attacker can attach only its own attestation — it holds
  /// no other AS's keys.
  bool inject(AsId attacker, const std::vector<std::uint32_t>& claimed_path,
              AsId dest);

  /// Converged route of `n` toward the current destination (empty path =
  /// no route).
  [[nodiscard]] const NodeRoute& route(AsId n) const { return selected_[n]; }

  [[nodiscard]] const CryptoStats& crypto_stats() const { return stats_; }
  [[nodiscard]] const Rpki& rpki() const { return rpki_; }
  [[nodiscard]] AsId current_dest() const { return dest_; }

 private:
  struct Candidate {
    std::vector<std::uint32_t> path;  ///< ASNs, front()=sender
    std::vector<Attestation> attestations;
    std::uint8_t security_score = 0;  ///< receiver's verdict
    bool present = false;
  };

  void reset(AsId dest);
  void originate(AsId dest);
  bool process_queue();
  void deliver(AsId receiver, std::size_t sender_slot, Candidate cand);
  /// Recomputes `receiver`'s selection; returns true when it changed.
  bool reselect(AsId receiver);
  void enqueue_export(AsId node);
  void do_export(AsId node);
  void send(AsId from, AsId to, const NodeRoute& route,
            const std::vector<Attestation>& attestations);
  [[nodiscard]] std::uint8_t score_path(AsId receiver,
                                        const std::vector<std::uint32_t>& path,
                                        const std::vector<Attestation>& atts);
  [[nodiscard]] bool applies_secp(AsId n) const;
  [[nodiscard]] std::size_t neighbor_slot(AsId node, AsId neighbor) const;
  [[nodiscard]] topo::Link link_to(AsId node, std::size_t slot) const;
  [[nodiscard]] AsId neighbor_at(AsId node, std::size_t slot) const;
  [[nodiscard]] std::size_t num_neighbors(AsId node) const;

  const AsGraph& graph_;
  std::vector<NodeSecurity> security_;
  EngineConfig cfg_;
  Rpki rpki_;
  SoBgpDatabase sobgp_;
  AsId dest_ = kNoAs;
  Prefix dest_prefix_{};

  // Per node: adjacency layout is customers | peers | providers, and
  // rib_in_[n][slot] is the latest candidate from that neighbour.
  std::vector<std::vector<Candidate>> rib_in_;
  std::vector<NodeRoute> selected_;
  std::vector<std::vector<Attestation>> selected_atts_;
  std::deque<AsId> export_queue_;
  std::vector<std::uint8_t> in_queue_;
  std::vector<std::uint8_t> frozen_;  ///< injected attackers stop honest exports
  CryptoStats stats_;
};

}  // namespace sbgp::proto
