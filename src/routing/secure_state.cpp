#include "routing/secure_state.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "routing/routing_tree.h"

namespace sbgp::rt {

LinkSet::LinkSet(const AsGraph& graph,
                 const std::vector<std::vector<AsId>>& lists) {
  const std::size_t n = graph.num_nodes();
  assert(lists.size() == n);
  begin_.assign(n + 1, 0);
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) total += lists[i].size();
  ids_.resize(total);
  std::uint32_t at = 0;
  for (std::size_t i = 0; i < n; ++i) {
    begin_[i] = at;
    std::copy(lists[i].begin(), lists[i].end(), ids_.begin() + at);
    const auto lo = ids_.begin() + at;
    at += static_cast<std::uint32_t>(lists[i].size());
    std::sort(lo, ids_.begin() + at);
  }
  begin_[n] = at;
}

LinkSet LinkSet::all(const AsGraph& graph) {
  // neighbors() is the concatenation of three sorted segments, not globally
  // sorted — re-sort per node so contains() can binary-search.
  const std::size_t n = graph.num_nodes();
  LinkSet out;
  out.begin_.assign(n + 1, 0);
  std::size_t total = 0;
  for (AsId i = 0; i < n; ++i) total += graph.neighbors(i).size();
  out.ids_.resize(total);
  std::uint32_t at = 0;
  for (AsId i = 0; i < n; ++i) {
    out.begin_[i] = at;
    const auto nb = graph.neighbors(i);
    std::copy(nb.begin(), nb.end(), out.ids_.begin() + at);
    const auto lo = out.ids_.begin() + at;
    at += static_cast<std::uint32_t>(nb.size());
    std::sort(lo, out.ids_.begin() + at);
  }
  out.begin_[n] = at;
  return out;
}

void SecureMask::ensure(const AsGraph& g, const LinkSet* ls, Arena& arena) {
  const std::size_t need = (g.num_nodes() + 63) / 64;
  if (graph != &g || words != need || secure == nullptr) {
    secure = arena.alloc<std::uint64_t>(need);
    secp = arena.alloc<std::uint64_t>(need);
    words = need;
    graph = &g;
  }
  links = ls;
}

void SecureMask::build(const SecurityView& view, Arena& arena) {
  assert(view.graph != nullptr && view.base != nullptr);
  const AsGraph& g = *view.graph;
  ensure(g, view.enabled_links, arena);
  const std::size_t n = g.num_nodes();
  std::memset(secure, 0, words * sizeof(std::uint64_t));
  std::memset(secp, 0, words * sizeof(std::uint64_t));
  if (view.flip_on == kNoAs && view.flip_off == kNoAs &&
      view.suppressed == nullptr) {
    // Pure base state (the per-round case): is_secure collapses to the base
    // flag and applies_secp to a class test.
    for (AsId x = 0; x < n; ++x) {
      if (view.base[x] == 0) continue;
      set_bit(secure, x);
      if (view.stub_breaks_ties || !g.is_stub(x)) set_bit(secp, x);
    }
    return;
  }
  for (AsId x = 0; x < n; ++x) {
    if (!view.is_secure(x)) continue;
    set_bit(secure, x);
    if (view.stub_breaks_ties || !g.is_stub(x)) set_bit(secp, x);
  }
}

void SecureMask::assign_flipped(const SecureMask& base,
                                const SecurityView& base_view, AsId cand,
                                bool on, Arena& arena) {
  assert(base_view.flip_on == kNoAs && base_view.flip_off == kNoAs &&
         base_view.suppressed == nullptr);
  assert(base.graph == base_view.graph && base.words > 0);
  const AsGraph& g = *base.graph;
  ensure(g, base.links, arena);
  std::memcpy(secure, base.secure, words * sizeof(std::uint64_t));
  std::memcpy(secp, base.secp, words * sizeof(std::uint64_t));
  if (!on) {
    // flip_off: only the candidate's own bits change (its simplex stubs
    // stay secure — signing/certification is sticky, see SecurityView).
    clear_bit(secure, cand);
    clear_bit(secp, cand);
    return;
  }
  set_bit(secure, cand);
  if (base_view.stub_breaks_ties || !g.is_stub(cand)) set_bit(secp, cand);
  // Simplex upgrade: the candidate's insecure, unfrozen stub customers
  // become secure with it (already-secure stubs keep their bits; setting
  // them again is harmless).
  const std::uint8_t* frozen = base_view.frozen;
  for (const AsId cust : g.customers(cand)) {
    if (!g.is_stub(cust)) continue;
    if (frozen != nullptr && frozen[cust] != 0) continue;
    set_bit(secure, cust);
    if (base_view.stub_breaks_ties) set_bit(secp, cust);
  }
}

}  // namespace sbgp::rt
