// Theorem 8.2 / Appendix J ablation: per-link S*BGP deployment. On the
// DILEMMA gadget we enumerate every subset of the deciding ISP's links and
// show the incoming-utility landscape is non-monotone (hence the greedy
// intuition fails and, per Thm 8.2, optimising it is NP-hard in general);
// in the outgoing model the full set is always optimal (Theorem J.2).
#include <iostream>

#include "core/simulator.h"
#include "gadgets/gadgets.h"
#include "parallel/thread_pool.h"
#include "stats/table.h"

int main() {
  using namespace sbgp;
  std::cout << "=== Per-link deployment (Thm 8.2 / Appendix J) ===\n\n";

  const auto g = gadgets::make_per_link_dilemma(/*m=*/1000.0, /*w_s=*/2000.0);
  core::SimConfig cfg;
  g.configure(cfg);
  par::ThreadPool pool(1);
  const auto x = g.node("x");

  // x's neighbours: enumerate all subsets of its links.
  std::vector<topo::AsId> nbrs;
  for (const auto c : g.graph.customers(x)) nbrs.push_back(c);
  for (const auto p : g.graph.peers(x)) nbrs.push_back(p);
  for (const auto p : g.graph.providers(x)) nbrs.push_back(p);

  stats::Table t({"links enabled at x", "incoming u(x)", "outgoing u(x)"});
  const auto base_mask = rt::full_link_mask(g.graph);
  double best_in = -1.0, full_in = -1.0;
  std::string best_set;
  for (std::size_t bits = 0; bits < (1u << nbrs.size()); ++bits) {
    auto mask = base_mask;
    mask[x].clear();
    std::string label;
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      if (bits & (1u << k)) {
        mask[x].push_back(nbrs[k]);
        if (!label.empty()) label += ",";
        label += std::to_string(g.graph.asn(nbrs[k]));
      }
    }
    std::sort(mask[x].begin(), mask[x].end());
    if (label.empty()) label = "(none)";
    const rt::LinkSet links(g.graph, mask);
    const auto u = core::compute_utilities(g.graph, g.initial.flags(), cfg, pool, &links);
    t.begin_row();
    t.add(label);
    t.add(u.incoming[x], 0);
    t.add(u.outgoing[x], 0);
    if (u.incoming[x] > best_in) {
      best_in = u.incoming[x];
      best_set = label;
    }
    if (bits + 1 == (1u << nbrs.size())) full_in = u.incoming[x];
  }
  t.print(std::cout);
  std::cout << "\nbest incoming-utility link set: {" << best_set << "} ("
            << best_in << "), full deployment gives " << full_in << " => "
            << (best_in > full_in + 1e-9
                    ? "PARTIAL deployment strictly beats full deployment"
                    : "full deployment is optimal here")
            << "\n";
  std::cout << "paper: choosing the per-link deployment that maximises "
               "incoming utility is NP-hard, even to approximate (Thm 8.2); "
               "in the outgoing model enabling every link is optimal "
               "(Thm J.2) — note the outgoing column is flat.\n";
  return 0;
}
