// Figure 13 / Section 7: buyer's remorse in the incoming-utility model.
// Part 1 reproduces the paper's concrete instance (Akamai / NTT / the Indian
// telecom AS4755): the secure telecom ISP increases its incoming utility by
// turning S*BGP off, because Akamai's traffic then enters over a customer
// edge instead of a provider edge.
// Part 2 reproduces the Section 7.3 scan: in a post-deployment state of a
// full synthetic Internet, what fraction of secure ISPs could profit from
// turning S*BGP off for at least one destination?
#include "bench_common.h"
#include "core/analysis.h"
#include "gadgets/gadgets.h"
#include "stats/table.h"

int main(int argc, char** argv) {
  using namespace sbgp;
  const auto opt = bench::parse_options(argc, argv, /*default_nodes=*/1000);
  bench::print_header("Figure 13 - incentives to turn S*BGP off", opt);

  // ---- Part 1: the Figure 13 instance -----------------------------------
  const auto g = gadgets::make_buyers_remorse(/*num_stubs=*/24, /*w_cp=*/821.0);
  core::SimConfig gcfg;
  g.configure(gcfg);
  par::ThreadPool gpool(1);
  const auto u_on =
      core::compute_utilities(g.graph, g.initial.flags(), gcfg, gpool);
  auto off = g.initial;
  off.set_secure(g.node("telecom"), false);
  const auto u_off = core::compute_utilities(g.graph, off.flags(), gcfg, gpool);
  const auto telecom = g.node("telecom");

  std::cout << "Figure 13 instance (w_CP = 821, 24 stub customers):\n";
  stats::Table t1({"state", "telecom incoming utility"});
  t1.begin_row();
  t1.add(std::string("S*BGP on"));
  t1.add(u_on.incoming[telecom], 1);
  t1.begin_row();
  t1.add(std::string("S*BGP off"));
  t1.add(u_off.incoming[telecom], 1);
  t1.print(std::cout);
  std::cout << "turning off multiplies utility by "
            << u_off.incoming[telecom] / u_on.incoming[telecom] << "x\n";
  core::DeploymentSimulator gsim(g.graph, gcfg);
  const auto gres = gsim.run(g.initial);
  std::cout << "myopic best response: telecom "
            << (gres.final_state.is_secure(telecom) ? "stays on" : "turns off")
            << " (outcome " << core::to_string(gres.outcome) << ")\n";
  bench::print_paper_note(
      "AS 4755's incoming utility rises 205% per stub destination, +0.5% "
      "overall, when it turns S*BGP off; outgoing model has no such "
      "incentive (Thm 6.2).");

  // ---- Part 2: Section 7.3 scan over a deployed Internet ----------------
  std::cout << "\nSection 7.3 scan - per-destination turn-off incentives:\n";
  auto net = bench::make_internet(opt);
  core::SimConfig cfg = bench::case_study_config(opt);
  core::DeploymentSimulator sim(net.graph, cfg);
  const auto result = sim.run(
      core::DeploymentState::initial(net.graph, bench::case_study_adopters(net)));

  par::ThreadPool pool(opt.threads);
  core::SimConfig scan_cfg = cfg;
  scan_cfg.model = core::UtilityModel::Incoming;
  const auto scan = core::scan_turn_off_incentives(
      net.graph, result.final_state.flags(), scan_cfg, pool);
  stats::Table t2({"metric", "value"});
  t2.begin_row();
  t2.add(std::string("secure ISPs examined"));
  t2.add(scan.secure_isps);
  t2.begin_row();
  t2.add(std::string("ISPs with >=1 profitable turn-off destination"));
  t2.add(scan.isps_with_incentive);
  t2.begin_row();
  t2.add(std::string("profitable (ISP, destination) pairs"));
  t2.add(scan.isp_dest_pairs);
  t2.print(std::cout);
  if (scan.secure_isps > 0) {
    std::cout << "fraction of secure ISPs with an incentive: "
              << 100.0 * static_cast<double>(scan.isps_with_incentive) /
                     static_cast<double>(scan.secure_isps)
              << "%\n";
  }
  bench::print_paper_note(
      "at least 10% of the 5,992 ISPs could find themselves in a state with "
      "an incentive to turn off S*BGP for at least one destination.");

  // ---- Part 3: §7.1 per-destination turn-off dynamics to a fixed point --
  std::cout << "\nSection 7.1 dynamics - per-destination suppression fixed point:\n";
  const auto pd = core::run_per_destination_turn_off(
      net.graph, result.final_state.flags(), scan_cfg, pool);
  std::cout << "  converged: " << (pd.converged ? "yes" : "no") << " after "
            << pd.rounds << " rounds; " << pd.isps_suppressing
            << " ISPs suppress S*BGP for " << pd.suppressed_pairs
            << " (ISP, destination) pairs\n";
  std::cout << "  on the Figure 13 instance itself, the telecom ISP "
               "suppresses exactly its stub destinations (see tests).\n";
  bench::print_paper_note(
      "'turning off a destination is likely': unlike whole-network "
      "turn-off, per-destination suppression has no offsetting losses at "
      "other destinations.");
  return 0;
}
