#include <gtest/gtest.h>

#include "proto/attack.h"
#include "proto/crypto_sim.h"
#include "proto/engine.h"
#include "proto/rpki.h"
#include "proto/sbgp.h"
#include "proto/sobgp.h"

namespace sbgp::proto {
namespace {

TEST(CryptoSim, SignaturesVerifyAndBindToDigest) {
  const KeyPair kp = derive_keypair(65000, 0x1234);
  const Digest d1 = digest_words({1, 2, 3});
  const Digest d2 = digest_words({1, 2, 4});
  EXPECT_NE(d1, d2);
  const Signature sig = sign(kp.private_key, d1);
  EXPECT_TRUE(verify_with_private(kp.private_key, d1, sig));
  EXPECT_FALSE(verify_with_private(kp.private_key, d2, sig));
  const KeyPair other = derive_keypair(65001, 0x1234);
  EXPECT_FALSE(verify_with_private(other.private_key, d1, sig));
}

TEST(CryptoSim, KeyDerivationIsDeterministicPerSeed) {
  EXPECT_EQ(derive_keypair(7, 1).public_key, derive_keypair(7, 1).public_key);
  EXPECT_NE(derive_keypair(7, 1).public_key, derive_keypair(7, 2).public_key);
  EXPECT_NE(derive_keypair(7, 1).public_key, derive_keypair(8, 1).public_key);
}

TEST(Prefix, CoversAndFormat) {
  const Prefix p24 = Prefix::for_asn(42);
  EXPECT_EQ(p24.len, 24);
  const Prefix p16{p24.addr & 0xFFFF0000u, 16};
  EXPECT_TRUE(p16.covers(p24));
  EXPECT_FALSE(p24.covers(p16));
  EXPECT_TRUE(p24.covers(p24));
  EXPECT_NE(Prefix::for_asn(1).key(), Prefix::for_asn(2).key());
  EXPECT_EQ(Prefix({0x0A000100u, 24}).to_string(), "10.0.1.0/24");
}

TEST(Rpki, OriginValidationStates) {
  Rpki rpki;
  rpki.register_as(100);
  const Prefix p = Prefix::for_asn(100);
  EXPECT_EQ(rpki.validate_origin(100, p), RoaValidity::NotFound);
  rpki.add_roa(100, p);
  EXPECT_EQ(rpki.validate_origin(100, p), RoaValidity::Valid);
  EXPECT_EQ(rpki.validate_origin(200, p), RoaValidity::Invalid);
  EXPECT_EQ(rpki.validate_origin(100, Prefix::for_asn(5)), RoaValidity::NotFound);
}

TEST(Rpki, SigningServiceRefusesUnregistered) {
  Rpki rpki;
  rpki.register_as(1);
  EXPECT_TRUE(rpki.sign_as(1, 42).has_value());
  EXPECT_FALSE(rpki.sign_as(2, 42).has_value());
  EXPECT_FALSE(rpki.verify(2, 42, 0));
  const Signature sig = *rpki.sign_as(1, 42);
  EXPECT_TRUE(rpki.verify(1, 42, sig));
  EXPECT_FALSE(rpki.verify(1, 43, sig));
}

TEST(SBgp, FullySignedPathValidates) {
  Rpki rpki;
  for (const std::uint32_t asn : {1u, 2u, 3u}) rpki.register_as(asn);
  const Prefix prefix = Prefix::for_asn(3);
  rpki.add_roa(3, prefix);

  // Origin 3 announces to 2; 2 forwards to 1; 1 forwards to receiver 99.
  std::vector<Attestation> atts;
  Attestation a;
  ASSERT_TRUE(attest(rpki, prefix, {3}, 2, a));
  atts.push_back(a);
  ASSERT_TRUE(attest(rpki, prefix, {2, 3}, 1, a));
  atts.push_back(a);
  ASSERT_TRUE(attest(rpki, prefix, {1, 2, 3}, 99, a));
  atts.push_back(a);

  const auto v = validate_path(rpki, prefix, {1, 2, 3}, 99, atts);
  EXPECT_TRUE(v.fully_valid);
  EXPECT_EQ(v.valid_hops, 3u);
  EXPECT_EQ(v.origin, RoaValidity::Valid);
}

TEST(SBgp, MissingHopMakesPathPartial) {
  Rpki rpki;
  rpki.register_as(1);
  rpki.register_as(3);
  const Prefix prefix = Prefix::for_asn(3);
  rpki.add_roa(3, prefix);

  std::vector<Attestation> atts;
  Attestation a;
  ASSERT_TRUE(attest(rpki, prefix, {3}, 2, a));
  atts.push_back(a);
  // AS 2 is insecure: no attestation for hop 2.
  ASSERT_TRUE(attest(rpki, prefix, {1, 2, 3}, 99, a));
  atts.push_back(a);

  const auto v = validate_path(rpki, prefix, {1, 2, 3}, 99, atts);
  EXPECT_FALSE(v.fully_valid);
  EXPECT_EQ(v.valid_hops, 2u);
}

TEST(SBgp, PathShorteningIsDetected) {
  // A forwarder cannot splice ASes out: attestations bind the full suffix.
  Rpki rpki;
  for (const std::uint32_t asn : {1u, 2u, 3u}) rpki.register_as(asn);
  const Prefix prefix = Prefix::for_asn(3);
  rpki.add_roa(3, prefix);
  std::vector<Attestation> atts;
  Attestation a;
  ASSERT_TRUE(attest(rpki, prefix, {3}, 2, a));
  atts.push_back(a);
  ASSERT_TRUE(attest(rpki, prefix, {2, 3}, 1, a));
  atts.push_back(a);
  ASSERT_TRUE(attest(rpki, prefix, {1, 2, 3}, 99, a));
  atts.push_back(a);
  // The receiver is fed a shortened path (1, 3) with the same attestations.
  const auto v = validate_path(rpki, prefix, {1, 3}, 99, atts);
  EXPECT_FALSE(v.fully_valid);
}

TEST(SoBgp, LinkCertificationRequiresBothEndpoints) {
  Rpki rpki;
  rpki.register_as(1);
  rpki.register_as(2);
  SoBgpDatabase db(rpki);
  EXPECT_TRUE(db.certify_link(1, 2));
  EXPECT_FALSE(db.certify_link(1, 3)) << "AS 3 holds no keys";
  EXPECT_TRUE(db.link_certified(1, 2));
  EXPECT_TRUE(db.link_certified(2, 1)) << "links are undirected";
  EXPECT_FALSE(db.link_certified(1, 3));
}

TEST(SoBgp, PathPlausibility) {
  Rpki rpki;
  for (const std::uint32_t asn : {1u, 2u, 3u}) rpki.register_as(asn);
  SoBgpDatabase db(rpki);
  db.certify_link(1, 2);
  db.certify_link(2, 3);
  EXPECT_TRUE(db.path_plausible({1, 2, 3}));
  EXPECT_FALSE(db.path_plausible({1, 3}));  // no such certified link
  EXPECT_TRUE(db.path_plausible({3}));
  EXPECT_FALSE(db.path_plausible({9}));
  EXPECT_FALSE(db.path_plausible({}));
}

TEST(Attack, PartialPreferenceEnablesFigure15Attack) {
  const auto result = run_partial_preference_attack();
  EXPECT_FALSE(result.attack_succeeds_with_ignore)
      << "under the paper's rule p keeps the true route";
  EXPECT_TRUE(result.attack_succeeds_with_partial)
      << "preferring partially-secure paths lets m hijack p";
  // Under the paper's rule p routes via r (the true path).
  ASSERT_FALSE(result.path_ignore_partial.empty());
  EXPECT_EQ(result.path_ignore_partial.front(), 3u);  // r's ASN
}

TEST(Attack, OriginHijackTieIsStoppedBySbgpOnly) {
  const auto tie = run_origin_hijack(3, 3);
  EXPECT_TRUE(tie.probe_fooled_bgp);
  EXPECT_FALSE(tie.probe_fooled_sbgp);
}

TEST(Attack, ShorterLieBeatsSecPByDesign) {
  // LP and SP rank above SecP (Section 2.2.2): a strictly shorter bogus
  // route wins even with S*BGP everywhere — an honest limitation.
  const auto shorter = run_origin_hijack(4, 2);
  EXPECT_TRUE(shorter.probe_fooled_bgp);
  EXPECT_TRUE(shorter.probe_fooled_sbgp);
}

}  // namespace
}  // namespace sbgp::proto
