#include "scenario/engine.h"

#include <algorithm>
#include <random>
#include <stdexcept>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "scenario/reference_router.h"

namespace sbgp::scenario {

using topo::AsId;
using topo::kNoAs;

namespace {

/// Per-thread evaluation scratch; one instance per worker chunk.
struct Scratch {
  rt::RibComputer rc;
  rt::TreeComputer tc;
  rt::DestRib rib;
  rt::RoutingTree tree;
  std::vector<RouteEntry> entries;

  explicit Scratch(const topo::AsGraph& g) : rc(g), tc(g) {}
};

PairOutcome eval_pair(const topo::AsGraph& graph, const EngineConfig& cfg,
                      const Scenario& s, const std::vector<std::uint8_t>& secure,
                      AsId attacker, AsId victim, Scratch& sc,
                      std::vector<AsId>* origins_out) {
  PairOutcome out;
  if (origins_out != nullptr) origins_out->assign(graph.num_nodes(), kNoAs);

  std::uint16_t impostor_len = 0;
  if (s.attack == AttackKind::Interception) {
    impostor_len = s.hops;
  } else if (s.attack == AttackKind::Downgrade) {
    // The attacker re-announces its genuine route with security stripped:
    // honest length, insecure attributes. Its genuine length is the chosen
    // route length in the unattacked RIB; with no route to the victim the
    // attack is inert.
    sc.rc.compute(victim, sc.rib);
    if (!sc.rib.reachable(attacker)) {
      if (origins_out != nullptr) {
        for (const AsId i : sc.rib.order) (*origins_out)[i] = victim;
      }
      return out;
    }
    impostor_len = sc.rib.len[attacker];
  }

  sc.rc.compute(victim, sc.rib, attacker, impostor_len);

  if (s.policy == DefensePolicy::SecureTiebreak) {
    // Security-third keeps route class/length state-independent (Obs. C.1):
    // the fast routing tree resolves SecP + TB over the static RIB.
    rt::SecurityView view;
    view.graph = &graph;
    view.base = secure.data();
    view.stub_breaks_ties = cfg.stub_breaks_ties;
    sc.tc.compute(sc.rib, view, cfg.tiebreak, sc.tree);
    std::size_t routed = 0, fooled = 0;
    double routed_w = 0.0, fooled_w = 0.0;
    for (const AsId i : sc.rib.order) {
      if (origins_out != nullptr) (*origins_out)[i] = sc.tree.origin[i];
      if (i == victim || i == attacker) continue;
      ++routed;
      routed_w += graph.weight(i);
      if (sc.tree.origin[i] == attacker) {
        ++fooled;
        fooled_w += graph.weight(i);
      }
    }
    if (routed > 0) {
      out.fooled_fraction =
          static_cast<double>(fooled) / static_cast<double>(routed);
      out.fooled_weight = fooled_w / routed_w;
    }
    return out;
  }

  // ROV withdraws routes and secure-first reorders the ranking — both break
  // the static-RIB assumption, so run the path-vector reference router. The
  // static two-origin RIB still supplies the denominator: the set of third
  // parties that can reach either origin at all.
  AttackConfig acfg;
  acfg.attack = s.attack;
  acfg.policy = s.policy;
  acfg.impostor_len = impostor_len;
  acfg.tiebreak = cfg.tiebreak;
  acfg.stub_breaks_ties = cfg.stub_breaks_ties;
  out.converged =
      compute_attack_routes(graph, secure, acfg, attacker, victim, sc.entries);
  std::size_t routed = 0, fooled = 0;
  double routed_w = 0.0, fooled_w = 0.0;
  for (const AsId i : sc.rib.order) {
    const RouteEntry& e = sc.entries[i];
    if (origins_out != nullptr && e.exists) (*origins_out)[i] = e.origin;
    if (i == victim || i == attacker) continue;
    ++routed;
    routed_w += graph.weight(i);
    if (!e.exists) {
      ++out.disconnected;  // ROV withdrew the only candidates
    } else if (e.origin == attacker) {
      ++fooled;
      fooled_w += graph.weight(i);
    }
  }
  if (routed > 0) {
    out.fooled_fraction =
        static_cast<double>(fooled) / static_cast<double>(routed);
    out.fooled_weight = fooled_w / routed_w;
  }
  return out;
}

}  // namespace

ScenarioEngine::ScenarioEngine(const topo::AsGraph& graph, EngineConfig cfg)
    : graph_(graph), cfg_(cfg) {}

std::vector<std::pair<AsId, AsId>> ScenarioEngine::sample_pairs(
    const Scenario& s) const {
  const std::size_t n = graph_.num_nodes();
  if (n < 2) throw std::invalid_argument("scenario: graph has fewer than 2 ASes");

  const auto resolve = [&](const std::vector<std::uint32_t>& asns,
                           const char* what) {
    std::vector<AsId> ids;
    ids.reserve(asns.size());
    for (const std::uint32_t asn : asns) {
      const AsId id = graph_.find_asn(asn);
      if (id == kNoAs) {
        throw std::invalid_argument("scenario: " + std::string(what) +
                                    " ASN " + std::to_string(asn) +
                                    " not in graph");
      }
      ids.push_back(id);
    }
    return ids;
  };

  // Attacker pool. Empty vector = "all ASes" (sampled without materialising).
  std::vector<AsId> apool;
  switch (s.placement) {
    case Placement::UniformRandom: break;
    case Placement::DegreeTier: {
      apool.resize(n);
      for (AsId i = 0; i < n; ++i) apool[i] = i;
      std::sort(apool.begin(), apool.end(), [&](AsId a, AsId b) {
        const std::size_t da = graph_.degree(a), db = graph_.degree(b);
        if (da != db) return da > db;
        return a < b;
      });
      apool.resize(std::min<std::size_t>(s.tier_top, n));
      break;
    }
    case Placement::StubOnly: {
      for (AsId i = 0; i < n; ++i) {
        if (graph_.is_stub(i)) apool.push_back(i);
      }
      if (apool.empty()) {
        throw std::invalid_argument("scenario: graph has no stub ASes");
      }
      break;
    }
    case Placement::FixedList: apool = resolve(s.attacker_asns, "attacker"); break;
  }
  const std::vector<AsId> vpool = resolve(s.victim_asns, "victim");

  std::vector<std::pair<AsId, AsId>> pairs;
  if (s.placement == Placement::FixedList && !vpool.empty()) {
    // Fully pinned matrix: enumerate the cross product in list order.
    for (const AsId a : apool) {
      for (const AsId v : vpool) {
        if (a != v) pairs.emplace_back(a, v);
      }
    }
    if (pairs.empty()) {
      throw std::invalid_argument(
          "scenario: fixed attacker/victim lists yield no valid pair");
    }
    return pairs;
  }
  if (apool.size() == 1 && vpool.size() == 1 && apool[0] == vpool[0]) {
    throw std::invalid_argument(
        "scenario: attacker and victim pools are the same single AS");
  }

  // Rejection sampling: redraw BOTH on attacker == victim (the attacker
  // would be the origin itself — no third party exists to fool). With
  // uniform pools this is draw-for-draw the historical measure_resilience
  // stream, so legacy results are reproduced bit-for-bit.
  pairs.reserve(s.samples);
  std::mt19937_64 rng(s.seed);
  std::uniform_int_distribution<AsId> pick_all(0, static_cast<AsId>(n - 1));
  std::uniform_int_distribution<AsId> pick_a(
      0, apool.empty() ? 0 : static_cast<AsId>(apool.size() - 1));
  std::uniform_int_distribution<AsId> pick_v(
      0, vpool.empty() ? 0 : static_cast<AsId>(vpool.size() - 1));
  std::size_t attempts = 0;
  const std::size_t max_attempts = 1000 * s.samples + 1000;
  while (pairs.size() < s.samples) {
    if (++attempts > max_attempts) {
      throw std::invalid_argument(
          "scenario: sampling stalled (pools too small for distinct pairs?)");
    }
    const AsId a = apool.empty() ? pick_all(rng) : apool[pick_a(rng)];
    const AsId v = vpool.empty() ? pick_all(rng) : vpool[pick_v(rng)];
    if (a != v) pairs.emplace_back(a, v);
  }
  return pairs;
}

ScenarioResult ScenarioEngine::run(const Scenario& s,
                                   const std::vector<std::uint8_t>& secure,
                                   par::ThreadPool& pool) const {
  OBS_SPAN("scenario.run");
  static obs::Counter& runs_ctr =
      obs::Registry::global().counter("scenario.runs");
  static obs::Counter& pairs_ctr =
      obs::Registry::global().counter("scenario.pairs_evaluated");
  static obs::Counter& nonconv_ctr =
      obs::Registry::global().counter("scenario.nonconverged_pairs");

  const auto pairs = sample_pairs(s);
  std::vector<PairOutcome> outcomes(pairs.size());
  std::vector<PairOutcome> base_outcomes;
  std::vector<std::uint8_t> nobody;
  Scenario base_s = s;
  if (s.baseline) {
    base_outcomes.resize(pairs.size());
    nobody.assign(graph_.num_nodes(), 0);
    // With nobody secure every policy collapses to plain LP > SP > TB; the
    // security-third fast path evaluates that cheapest.
    base_s.policy = DefensePolicy::SecureTiebreak;
  }

  par::parallel_for_chunked(
      pool, 0, pairs.size(), [&](std::size_t lo, std::size_t hi) {
        Scratch sc(graph_);
        for (std::size_t k = lo; k < hi; ++k) {
          outcomes[k] = eval_pair(graph_, cfg_, s, secure, pairs[k].first,
                                  pairs[k].second, sc, nullptr);
          if (s.baseline) {
            base_outcomes[k] = eval_pair(graph_, cfg_, base_s, nobody,
                                         pairs[k].first, pairs[k].second, sc,
                                         nullptr);
          }
        }
      });

  // Fold single-threaded in sample-index order: the mean of a
  // stats::Summary sums in insertion order, so this is what makes the
  // result bitwise identical across pool sizes.
  ScenarioResult result;
  result.key = s.key();
  result.pairs = pairs.size();
  for (const PairOutcome& o : outcomes) {
    result.fooled_fraction.add(o.fooled_fraction);
    result.fooled_weight.add(o.fooled_weight);
    result.disconnected += o.disconnected;
    if (!o.converged) ++result.nonconverged_pairs;
  }
  if (s.baseline) {
    result.has_baseline = true;
    for (const PairOutcome& o : base_outcomes) {
      result.baseline_fooled.add(o.fooled_fraction);
    }
  }
  runs_ctr.add(1);
  pairs_ctr.add(pairs.size());
  nonconv_ctr.add(result.nonconverged_pairs);
  return result;
}

PairOutcome ScenarioEngine::probe(const Scenario& s,
                                  const std::vector<std::uint8_t>& secure,
                                  AsId attacker, AsId victim) const {
  Scratch sc(graph_);
  return eval_pair(graph_, cfg_, s, secure, attacker, victim, sc, nullptr);
}

std::vector<AsId> ScenarioEngine::chosen_origins(
    const Scenario& s, const std::vector<std::uint8_t>& secure, AsId attacker,
    AsId victim) const {
  Scratch sc(graph_);
  std::vector<AsId> origins;
  (void)eval_pair(graph_, cfg_, s, secure, attacker, victim, sc, &origins);
  return origins;
}

}  // namespace sbgp::scenario
