#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

#include "exp/json.h"
#include "exp/result_store.h"
#include "exp/scheduler.h"
#include "exp/telemetry.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"

namespace sbgp::obs {
namespace {

// Every test must leave the global obs state as it found it (disabled,
// empty ring): the rest of the suite runs in the same process.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_metrics_enabled(true);
    TraceBuffer::global().clear();
  }
  void TearDown() override {
    set_metrics_enabled(false);
    TraceBuffer::global().set_enabled(false);
    TraceBuffer::global().clear();
  }
};

TEST_F(ObsTest, CounterAddsAndResets) {
  if (!metrics_enabled()) GTEST_SKIP() << "obs compiled out (SBGPSIM_OBS=OFF)";
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsTest, CounterIsNoOpWhenDisabled) {
  set_metrics_enabled(false);
  Counter c;
  c.add(7);
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsTest, CounterSumsAcrossConcurrentWorkers) {
  if (!metrics_enabled()) GTEST_SKIP() << "obs compiled out (SBGPSIM_OBS=OFF)";
  Counter c;
  par::ThreadPool pool(4);
  constexpr int kPerTask = 1000;
  for (int t = 0; t < 32; ++t) {
    pool.submit([&c] {
      for (int i = 0; i < kPerTask; ++i) c.add();
    });
  }
  pool.wait_idle();
  c.add(5);  // non-worker thread lands in shard 0
  EXPECT_EQ(c.value(), 32u * kPerTask + 5u);
}

TEST_F(ObsTest, GaugeStoresLastValue) {
  if (!metrics_enabled()) GTEST_SKIP() << "obs compiled out (SBGPSIM_OBS=OFF)";
  Gauge g;
  g.set(2.5);
  g.set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
  set_metrics_enabled(false);
  g.set(99.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

TEST_F(ObsTest, HistogramBucketsByPowerOfTwo) {
  EXPECT_EQ(LatencyHistogram::bucket_of(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_of(1), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_of(2), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_of(3), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_of(1024), 10u);
  EXPECT_EQ(LatencyHistogram::bucket_of(~std::uint64_t{0}),
            LatencyHistogram::kBuckets - 1);
}

TEST_F(ObsTest, HistogramCountSumQuantiles) {
  if (!metrics_enabled()) GTEST_SKIP() << "obs compiled out (SBGPSIM_OBS=OFF)";
  LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.record_ns(100);    // bucket 6: [64,128)
  h.record_ns(1u << 20);                            // one megasample
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum_ns(), 99u * 100 + (1u << 20));
  EXPECT_DOUBLE_EQ(h.mean_ns(), static_cast<double>(h.sum_ns()) / 100.0);
  // p50 falls in the [64,128) bucket; upper bound is 127.
  EXPECT_EQ(h.quantile_ns(0.50), 127u);
  // p999 must reach the outlier's bucket [2^20, 2^21).
  EXPECT_EQ(h.quantile_ns(0.999), (std::uint64_t{1} << 21) - 1);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
}

TEST_F(ObsTest, RegistryReturnsStableReferences) {
  auto& a = Registry::global().counter("test.stable");
  auto& b = Registry::global().counter("test.stable");
  EXPECT_EQ(&a, &b);
  auto& h1 = Registry::global().histogram("test.stable");  // distinct kind,
  auto& h2 = Registry::global().histogram("test.stable");  // same name: ok
  EXPECT_EQ(&h1, &h2);
}

TEST_F(ObsTest, RegistryJsonRoundTripsThroughExpJson) {
  if (!metrics_enabled()) GTEST_SKIP() << "obs compiled out (SBGPSIM_OBS=OFF)";
  Registry::global().counter("test.rt_counter").add(3);
  Registry::global().gauge("test.rt_gauge").set(0.5);
  Registry::global().histogram("test.rt_hist").record_ns(1000);
  const std::string text = Registry::global().to_json_string();
  const exp::Json j = exp::Json::parse(text);  // throws on malformed output

  const exp::Json* counters = j.find("counters");
  ASSERT_NE(counters, nullptr);
  const exp::Json* c = counters->find("test.rt_counter");
  ASSERT_NE(c, nullptr);
  EXPECT_GE(c->as_u64(), 3u);

  const exp::Json* gauges = j.find("gauges");
  ASSERT_NE(gauges, nullptr);
  ASSERT_NE(gauges->find("test.rt_gauge"), nullptr);
  EXPECT_DOUBLE_EQ(gauges->find("test.rt_gauge")->as_double(), 0.5);

  const exp::Json* hists = j.find("histograms");
  ASSERT_NE(hists, nullptr);
  const exp::Json* h = hists->find("test.rt_hist");
  ASSERT_NE(h, nullptr);
  EXPECT_GE(h->find("count")->as_u64(), 1u);
  EXPECT_GE(h->find("p50_ns")->as_u64(), 1000u);
  // Canonical dump must re-parse to identical bytes.
  EXPECT_EQ(exp::Json::parse(j.dump()).dump(), j.dump());
}

TEST_F(ObsTest, MetricNamesAreJsonEscaped) {
  Registry::global().counter("test.weird \"name\"\n").add(1);
  const std::string text = Registry::global().to_json_string();
  EXPECT_NO_THROW((void)exp::Json::parse(text));
}

TEST_F(ObsTest, SpanRecordsWhenEnabledOnly) {
  if (!metrics_enabled()) GTEST_SKIP() << "obs compiled out (SBGPSIM_OBS=OFF)";
  auto& tb = TraceBuffer::global();
  { OBS_SPAN("test.disabled_span"); }
  EXPECT_EQ(tb.recorded(), 0u);
  tb.set_enabled(true);
  {
    OBS_SPAN("test.outer");
    OBS_SPAN("test.inner");  // distinct __LINE__, nests fine
  }
  tb.set_enabled(false);
  EXPECT_EQ(tb.recorded(), 2u);
  const auto events = tb.snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Inner span ends (and records) first.
  EXPECT_STREQ(events[0].name, "test.inner");
  EXPECT_STREQ(events[1].name, "test.outer");
  EXPECT_GE(events[1].dur_ns, events[0].dur_ns);
}

TEST_F(ObsTest, RingWrapKeepsNewestAndCountsDropped) {
  TraceBuffer tb(8);
  tb.set_enabled(true);
  for (int i = 0; i < 20; ++i) tb.record("test.wrap", i, 1);
  EXPECT_EQ(tb.recorded(), 20u);
  EXPECT_EQ(tb.dropped(), 12u);
  const auto events = tb.snapshot();
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(events.front().start_ns, 12u);  // oldest retained
  EXPECT_EQ(events.back().start_ns, 19u);   // newest
}

TEST_F(ObsTest, ConcurrentSpansAllLand) {
  if (!metrics_enabled()) GTEST_SKIP() << "obs compiled out (SBGPSIM_OBS=OFF)";
  auto& tb = TraceBuffer::global();
  tb.set_capacity(1 << 12);
  tb.set_enabled(true);
  par::ThreadPool pool(4);
  par::parallel_for(pool, 0, 512, [](std::size_t) {
    OBS_SPAN("test.concurrent");
  });
  tb.set_enabled(false);
  EXPECT_EQ(tb.recorded(), 512u);
  tb.set_capacity(TraceBuffer::kDefaultCapacity);
}

TEST_F(ObsTest, ChromeTraceParsesAndCarriesEvents) {
  if (!metrics_enabled()) GTEST_SKIP() << "obs compiled out (SBGPSIM_OBS=OFF)";
  auto& tb = TraceBuffer::global();
  tb.set_enabled(true);
  { OBS_SPAN("test.chrome"); }
  tb.set_enabled(false);
  std::ostringstream os;
  tb.write_chrome_json(os);
  const exp::Json j = exp::Json::parse(os.str());
  ASSERT_EQ(j.type(), exp::Json::Type::Array);
  ASSERT_FALSE(j.items().empty());
  bool found = false;
  for (const exp::Json& e : j.items()) {
    ASSERT_NE(e.find("name"), nullptr);
    EXPECT_EQ(e.find("ph")->as_string(), "X");
    EXPECT_GE(e.find("dur")->as_double(), 0.0);
    EXPECT_GE(e.find("tid")->as_u64(), 1u);
    if (e.find("name")->as_string() == "test.chrome") found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(ObsTest, SummaryListsSpansByTotalTime) {
  auto& tb = TraceBuffer::global();
  tb.set_enabled(true);
  tb.record("test.big", 0, 5'000'000);
  tb.record("test.small", 0, 1'000);
  tb.set_enabled(false);
  std::ostringstream os;
  tb.write_summary(os);
  const std::string text = os.str();
  const auto big = text.find("test.big");
  const auto small = text.find("test.small");
  ASSERT_NE(big, std::string::npos);
  ASSERT_NE(small, std::string::npos);
  EXPECT_LT(big, small);  // sorted by total time, descending
}

}  // namespace
}  // namespace sbgp::obs

namespace sbgp::exp {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

TEST(Telemetry, RoundRecordRoundTrips) {
  core::RoundStats r;
  r.round = 3;
  r.newly_secure_isps = 5;
  r.newly_secure_stubs = 12;
  r.turned_off = 1;
  r.total_secure_ases = 170;
  r.total_secure_isps = 40;
  r.recomputed_destinations = 99;
  r.dirty_seeds = 17;
  r.partial_updates = 7;
  r.scan_ms = 0.25;
  r.eval_ms = 12.5;
  r.fold_ms = 1.75;
  const Json j = round_record(r, 1000);
  const Json back = Json::parse(j.dump());
  EXPECT_EQ(back.find("type")->as_string(), "round");
  EXPECT_EQ(back.find("round")->as_u64(), 3u);
  EXPECT_EQ(back.find("flips_on")->as_u64(), 5u);
  EXPECT_EQ(back.find("flips_off")->as_u64(), 1u);
  EXPECT_EQ(back.find("secure_ases")->as_u64(), 170u);
  EXPECT_DOUBLE_EQ(back.find("frac_ases")->as_double(), 0.17);
  EXPECT_DOUBLE_EQ(back.find("secure_path_frac_est")->as_double(),
                   0.17 * 0.17);
  EXPECT_EQ(back.find("dirty_seeds")->as_u64(), 17u);
  EXPECT_EQ(back.find("partial_updates")->as_u64(), 7u);
  EXPECT_DOUBLE_EQ(back.find("eval_ms")->as_double(), 12.5);
}

TEST(Telemetry, JobRecordCarriesAllStoreFields) {
  JobRecord r;
  r.spec_hash = 0xdeadbeefcafe1234ull;  // > 2^53: the string-hash case
  r.job_id = 7;
  r.job_key = "g=synth;theta=0.05";
  r.status = "ok";
  r.outcome = "stable";
  r.rounds = 9;
  r.secure_ases = 800;
  r.num_ases = 1500;
  const Json back = Json::parse(job_record(r).dump());
  EXPECT_EQ(back.find("type")->as_string(), "job");
  EXPECT_EQ(back.find("spec_hash")->as_string(),
            std::to_string(r.spec_hash));
  EXPECT_EQ(back.find("job_id")->as_u64(), 7u);
  EXPECT_EQ(back.find("outcome")->as_string(), "stable");
  // The non-type fields must round-trip through the store's own parser.
  const JobRecord parsed = JobRecord::from_json(back);
  EXPECT_EQ(parsed.spec_hash, r.spec_hash);
  EXPECT_EQ(parsed.rounds, 9u);
}

TEST(Telemetry, MetricsRecordEmbedsRegistrySnapshot) {
  obs::set_metrics_enabled(true);  // no-op (constant false) when compiled out
  if (!obs::metrics_enabled()) {
    GTEST_SKIP() << "obs compiled out (SBGPSIM_OBS=OFF)";
  }
  obs::Registry::global().counter("test.telemetry_probe").add(2);
  obs::set_metrics_enabled(false);
  const Json back = Json::parse(metrics_record().dump());
  EXPECT_EQ(back.find("type")->as_string(), "metrics");
  const Json* reg = back.find("registry");
  ASSERT_NE(reg, nullptr);
  const Json* counters = reg->find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->find("test.telemetry_probe"), nullptr);
  EXPECT_GE(counters->find("test.telemetry_probe")->as_u64(), 2u);
}

TEST(Telemetry, LogAppendsParseableJsonl) {
  const std::string path = temp_path("telemetry_basic.jsonl");
  std::remove(path.c_str());
  {
    TelemetryLog log(path);
    core::RoundStats r;
    r.round = 1;
    r.total_secure_ases = 10;
    log.append(round_record(r, 100));
    log.append(metrics_record());
  }
  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  std::string first_type;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    EXPECT_NO_THROW((void)Json::parse(line)) << "line " << lines;
    if (lines == 0) first_type = Json::parse(line).find("type")->as_string();
    ++lines;
  }
  // Attribution header + the two appended records.
  EXPECT_EQ(lines, 3u);
  EXPECT_EQ(first_type, "header");
  std::remove(path.c_str());
}

TEST(Telemetry, LogHealsMissingTrailingNewline) {
  const std::string path = temp_path("telemetry_heal.jsonl");
  {
    std::ofstream out(path, std::ios::binary);
    out << "{\"type\":\"round\",\"trunca";  // killed mid-write
  }
  {
    TelemetryLog log(path);
    core::RoundStats r;
    log.append(round_record(r, 10));
  }
  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  // Truncated record, then the attribution header (on its own fresh line),
  // then the appended round record.
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_THROW((void)Json::parse(lines[0]), JsonError);
  EXPECT_EQ(Json::parse(lines[1]).find("type")->as_string(), "header");
  EXPECT_NO_THROW((void)Json::parse(lines[2]));
  std::remove(path.c_str());
}

TEST(Telemetry, SchedulerStreamsJobRecords) {
  const std::string path = temp_path("telemetry_jobs.jsonl");
  std::remove(path.c_str());
  JobSpec spec;
  spec.name = "telemetry-test";
  GraphSpec g;
  g.nodes = 120;
  g.seed = 7;
  spec.graphs = {g};
  spec.adopters = {"top:3"};
  spec.thetas = {0.0, 0.05, 0.1};
  {
    TelemetryLog log(path);
    SweepOptions opts;
    opts.workers = 2;
    opts.progress = nullptr;
    opts.telemetry = &log;
    SweepScheduler scheduler(opts);
    const SweepReport report = scheduler.run(spec, nullptr);
    EXPECT_EQ(report.executed, 3u);
    EXPECT_EQ(report.failed, 0u);
  }
  std::ifstream in(path);
  std::string line;
  std::set<std::uint64_t> job_ids;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const Json j = Json::parse(line);
    if (j.find("type")->as_string() == "header") continue;  // attribution
    EXPECT_EQ(j.find("type")->as_string(), "job");
    EXPECT_EQ(j.find("status")->as_string(), "ok");
    job_ids.insert(j.find("job_id")->as_u64());
  }
  EXPECT_EQ(job_ids, (std::set<std::uint64_t>{0, 1, 2}));
  std::remove(path.c_str());
}

TEST(Telemetry, SpecAcceptsObsScalarsWithoutChangingHash) {
  JobSpec plain;
  plain.name = "hash-stability";
  const std::uint64_t base_hash = plain.hash();
  const Json j = Json::parse(
      "{\"name\":\"hash-stability\",\"metrics_out\":\"m.jsonl\","
      "\"trace_out\":\"t.json\",\"obs_summary\":true}");
  const JobSpec with_obs = JobSpec::from_json(j);
  EXPECT_EQ(with_obs.metrics_out, "m.jsonl");
  EXPECT_EQ(with_obs.trace_out, "t.json");
  EXPECT_TRUE(with_obs.obs_summary);
  // Telemetry sinks are run configuration, not experiment identity: the
  // spec hash (and with it checkpoint/resume) must not move.
  EXPECT_EQ(with_obs.hash(), base_hash);
}

}  // namespace
}  // namespace sbgp::exp
