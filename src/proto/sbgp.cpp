#include "proto/sbgp.h"

namespace sbgp::proto {

Digest attestation_digest(const Prefix& prefix,
                          const std::vector<std::uint32_t>& path_suffix,
                          std::uint32_t recipient) {
  DigestBuilder b;
  b.add(prefix.key());
  for (const std::uint32_t asn : path_suffix) b.add(asn);
  b.add(0xFEEDULL << 32 | recipient);
  return b.finish();
}

bool attest(const Rpki& rpki, const Prefix& prefix,
            const std::vector<std::uint32_t>& path_suffix, std::uint32_t recipient,
            Attestation& out) {
  if (path_suffix.empty()) return false;
  const std::uint32_t signer = path_suffix.front();
  const auto sig = rpki.sign_as(signer, attestation_digest(prefix, path_suffix, recipient));
  if (!sig.has_value()) return false;
  out.signer = signer;
  out.recipient = recipient;
  out.sig = *sig;
  return true;
}

PathValidation validate_path(const Rpki& rpki, const Prefix& prefix,
                             const std::vector<std::uint32_t>& path,
                             std::uint32_t receiver,
                             const std::vector<Attestation>& attestations) {
  PathValidation result;
  result.total_hops = path.size();
  if (path.empty()) return result;
  result.origin = rpki.validate_origin(path.back(), prefix);

  // Hop j (path[j]) must have attested forwarding path[j..] to path[j-1]
  // (or to `receiver` for j == 0).
  std::size_t valid = 0;
  for (std::size_t j = 0; j < path.size(); ++j) {
    const std::uint32_t expected_signer = path[j];
    const std::uint32_t expected_recipient = j == 0 ? receiver : path[j - 1];
    const std::vector<std::uint32_t> suffix(path.begin() + static_cast<std::ptrdiff_t>(j),
                                            path.end());
    const Digest digest = attestation_digest(prefix, suffix, expected_recipient);
    bool hop_valid = false;
    for (const Attestation& att : attestations) {
      if (att.signer == expected_signer && att.recipient == expected_recipient &&
          rpki.verify(expected_signer, digest, att.sig)) {
        hop_valid = true;
        break;
      }
    }
    if (hop_valid) ++valid;
  }
  result.valid_hops = valid;
  result.fully_valid =
      valid == path.size() && result.origin == RoaValidity::Valid;
  return result;
}

}  // namespace sbgp::proto
