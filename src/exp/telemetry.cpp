#include "exp/telemetry.h"

#include "obs/build_info.h"
#include "obs/metrics.h"

namespace sbgp::exp {

TelemetryLog::TelemetryLog(std::string path) : path_(std::move(path)) {
  bool needs_newline = false;
  {
    std::ifstream in(path_, std::ios::binary | std::ios::ate);
    if (in && in.tellg() > 0) {
      in.seekg(-1, std::ios::end);
      char last = '\n';
      in.get(last);
      needs_newline = last != '\n';
    }
  }
  out_.open(path_, std::ios::app);
  if (!out_) throw JsonError("cannot open telemetry log '" + path_ + "'");
  if (needs_newline) out_ << '\n';
  // Attribution header: which binary appended the records that follow. One
  // per open, so a healed/appended-to log carries a header per writing
  // process — readers filter by "type" like for every other record.
  append(header_record());
}

Json header_record() {
  Json j = Json::object();
  j.set("type", Json::string("header"));
  j.set("version", Json::string(obs::git_describe()));
  j.set("build_type", Json::string(obs::build_type()));
  j.set("obs", Json::boolean(obs::obs_enabled()));
  return j;
}

void TelemetryLog::append(const Json& record) {
  const std::string line = record.dump();
  std::scoped_lock lock(mutex_);
  out_ << line << '\n';
  out_.flush();
}

Json round_record(const core::RoundStats& r, std::size_t num_ases) {
  const double frac =
      num_ases == 0 ? 0.0
                    : static_cast<double>(r.total_secure_ases) /
                          static_cast<double>(num_ases);
  Json j = Json::object();
  j.set("type", Json::string("round"));
  j.set("round", Json::number(static_cast<std::uint64_t>(r.round)));
  j.set("flips_on", Json::number(static_cast<std::uint64_t>(r.newly_secure_isps)));
  j.set("flips_off", Json::number(static_cast<std::uint64_t>(r.turned_off)));
  j.set("new_stubs",
        Json::number(static_cast<std::uint64_t>(r.newly_secure_stubs)));
  j.set("secure_ases",
        Json::number(static_cast<std::uint64_t>(r.total_secure_ases)));
  j.set("secure_isps",
        Json::number(static_cast<std::uint64_t>(r.total_secure_isps)));
  j.set("frac_ases", Json::number(frac));
  j.set("secure_path_frac_est", Json::number(frac * frac));
  j.set("recomputed_destinations",
        Json::number(static_cast<std::uint64_t>(r.recomputed_destinations)));
  j.set("dirty_seeds", Json::number(static_cast<std::uint64_t>(r.dirty_seeds)));
  j.set("partial_updates",
        Json::number(static_cast<std::uint64_t>(r.partial_updates)));
  j.set("proj_delta_applied",
        Json::number(static_cast<std::uint64_t>(r.proj_delta_applied)));
  j.set("proj_full_fallback",
        Json::number(static_cast<std::uint64_t>(r.proj_full_fallback)));
  j.set("proj_nodes_touched",
        Json::number(static_cast<std::uint64_t>(r.proj_nodes_touched)));
  j.set("scan_ms", Json::number(r.scan_ms));
  j.set("eval_ms", Json::number(r.eval_ms));
  j.set("fold_ms", Json::number(r.fold_ms));
  return j;
}

void append_round_records(TelemetryLog& log, const core::SimResult& result,
                          std::size_t num_ases) {
  for (const core::RoundStats& r : result.rounds) {
    log.append(round_record(r, num_ases));
  }
}

Json job_record(const JobRecord& r) {
  Json j = Json::object();
  j.set("type", Json::string("job"));
  // Reuse the store serialisation verbatim so the two files never disagree
  // about a job. (Materialised: members() on the temporary would dangle.)
  const Json store_json = r.to_json();
  for (const auto& [key, value] : store_json.members()) {
    j.set(key, value);
  }
  return j;
}

Json scenario_record(const scenario::ScenarioResult& r) {
  Json j = Json::object();
  j.set("type", Json::string("scenario"));
  j.set("key", Json::string(r.key));
  j.set("pairs", Json::number(static_cast<std::uint64_t>(r.pairs)));
  j.set("mean_fooled", Json::number(r.mean_fooled()));
  j.set("mean_fooled_weight", Json::number(r.fooled_weight.mean()));
  j.set("p90_fooled", Json::number(r.fooled_fraction.quantile(0.9)));
  j.set("max_fooled", Json::number(r.fooled_fraction.max()));
  j.set("disconnected", Json::number(r.disconnected));
  j.set("nonconverged",
        Json::number(static_cast<std::uint64_t>(r.nonconverged_pairs)));
  if (r.has_baseline) {
    j.set("baseline_fooled", Json::number(r.baseline_fooled.mean()));
    j.set("delta_vs_baseline", Json::number(r.delta_vs_baseline()));
  }
  return j;
}

Json metrics_record() {
  Json j = Json::object();
  j.set("type", Json::string("metrics"));
  j.set("registry", Json::parse(obs::Registry::global().to_json_string()));
  return j;
}

}  // namespace sbgp::exp
