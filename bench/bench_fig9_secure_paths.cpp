// Figure 9: fraction of all N*(N-1) source-destination paths that are fully
// secure at termination, vs theta, compared against the f^2 reference curve
// (f = fraction of secure ASes; both endpoints must be secure, so f^2 bounds
// the secure-path fraction from above).
#include "bench_common.h"
#include "core/analysis.h"
#include "stats/table.h"

int main(int argc, char** argv) {
  using namespace sbgp;
  const auto opt = bench::parse_options(argc, argv, /*default_nodes=*/1200);
  bench::print_header("Figure 9 - fraction of secure paths vs theta", opt);

  auto net = bench::make_internet(opt);
  const auto& g = net.graph;
  par::ThreadPool pool(opt.threads);

  stats::Table t({"theta", "f (secure ASes)", "secure paths", "f^2",
                  "paths / f^2"});
  for (const double theta : {0.0, 0.05, 0.10, 0.20, 0.35, 0.50}) {
    core::SimConfig cfg = bench::case_study_config(opt);
    cfg.theta = theta;
    core::DeploymentSimulator sim(g, cfg);
    const auto result = sim.run(
        core::DeploymentState::initial(g, bench::case_study_adopters(net)));
    const auto stats =
        core::count_secure_paths(g, result.final_state.flags(), cfg, pool);
    t.begin_row();
    t.add(theta, 2);
    t.add_percent(stats.f, 1);
    t.add_percent(stats.fraction, 1);
    t.add_percent(stats.f_squared, 1);
    t.add(stats.f_squared > 0 ? stats.fraction / stats.f_squared : 0.0, 3);
  }
  t.print(std::cout);
  bench::print_paper_note(
      "case study secures 65% of all paths; the secure-path fraction sits "
      "only ~4% below f^2 (most secure paths are short).");
  return 0;
}
