# Empty compiler generated dependencies file for bench_fig17_oscillator.
# This may be replaced when dependencies are built.
