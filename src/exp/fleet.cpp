#include "exp/fleet.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#include "exp/runner.h"
#include "obs/metrics.h"

namespace sbgp::exp {

namespace fs = std::filesystem;

namespace {

using SteadyClock = std::chrono::steady_clock;

double s_since(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

void sleep_s(double s) {
  std::this_thread::sleep_for(std::chrono::duration<double>(s));
}

bool exists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

}  // namespace

// ---------------------------------------------------------------------------
// Run-directory layout.

FleetPaths FleetPaths::at(const std::string& run_dir) {
  FleetPaths p;
  p.root = run_dir;
  p.spec = run_dir + "/spec.json";
  p.shards = run_dir + "/shards";
  p.leases = run_dir + "/leases";
  p.done = run_dir + "/done";
  p.workers = run_dir + "/workers";
  p.stop = run_dir + "/STOP";
  p.merged = run_dir + "/merged.jsonl";
  return p;
}

std::string FleetPaths::shard_file(const std::string& shard_id) const {
  return shards + "/" + shard_id + ".json";
}

std::string FleetPaths::done_file(const std::string& shard_id) const {
  return done + "/" + shard_id + ".json";
}

std::string FleetPaths::worker_store(const std::string& worker_id) const {
  return workers + "/" + worker_id + ".jsonl";
}

// ---------------------------------------------------------------------------
// Shards.

Json Shard::to_json() const {
  Json j = Json::object();
  j.set("shard", Json::string(id));
  Json arr = Json::array();
  for (const std::size_t id_ : job_ids) {
    arr.push(Json::number(static_cast<std::uint64_t>(id_)));
  }
  j.set("jobs", std::move(arr));
  return j;
}

Shard Shard::from_json(const Json& j) {
  Shard s;
  const Json* id = j.find("shard");
  const Json* jobs = j.find("jobs");
  if (id == nullptr || jobs == nullptr) throw JsonError("shard missing fields");
  s.id = id->as_string();
  for (const Json& v : jobs->items()) {
    s.job_ids.push_back(static_cast<std::size_t>(v.as_u64()));
  }
  return s;
}

std::vector<Shard> make_shards(std::size_t num_jobs, std::size_t shard_size) {
  if (shard_size == 0) shard_size = 1;
  std::vector<Shard> out;
  for (std::size_t start = 0, n = 0; start < num_jobs;
       start += shard_size, ++n) {
    Shard s;
    char name[32];
    std::snprintf(name, sizeof name, "shard-%03zu", n);
    s.id = name;
    const std::size_t end = std::min(num_jobs, start + shard_size);
    for (std::size_t id = start; id < end; ++id) s.job_ids.push_back(id);
    out.push_back(std::move(s));
  }
  return out;
}

void publish_shard(const FleetPaths& paths, const Shard& shard) {
  const std::string path = paths.shard_file(shard.id);
  if (exists(path)) return;  // shard files are immutable once published
  write_file_durable(path, shard.to_json().dump() + "\n");
}

std::vector<Shard> list_shards(const FleetPaths& paths) {
  std::vector<Shard> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(paths.shards, ec)) {
    if (entry.path().extension() != ".json") continue;
    const auto text = read_file(entry.path().string());
    if (!text.has_value()) continue;
    try {
      out.push_back(Shard::from_json(Json::parse(*text)));
    } catch (const JsonError&) {
      // A torn shard file cannot happen via publish_shard (durable rename);
      // tolerate external damage by skipping.
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Shard& a, const Shard& b) { return a.id < b.id; });
  return out;
}

std::vector<std::size_t> shard_remaining(
    const Shard& shard, const std::unordered_set<std::size_t>& recorded) {
  std::vector<std::size_t> out;
  for (const std::size_t id : shard.job_ids) {
    if (!recorded.contains(id)) out.push_back(id);
  }
  return out;
}

Shard split_shard(const Shard& victim,
                  const std::vector<std::size_t>& remaining, int generation) {
  if (remaining.size() < 2) {
    throw std::invalid_argument("split_shard needs >= 2 remaining jobs");
  }
  Shard s;
  s.id = victim.id + "-s" + std::to_string(generation);
  // The thief takes the tail floor(n/2); the victim keeps the head it is
  // presumably already chewing through.
  s.job_ids.assign(remaining.begin() + (remaining.size() - remaining.size() / 2),
                   remaining.end());
  return s;
}

std::vector<std::string> list_worker_stores(const FleetPaths& paths) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(paths.workers, ec)) {
    if (entry.path().extension() != ".jsonl") continue;
    out.push_back(entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Worker.

WorkerReport run_fleet_worker(const WorkerOptions& options) {
  static obs::Counter& claimed_ctr =
      obs::Registry::global().counter("fleet.leases_claimed");
  static obs::Counter& done_ctr =
      obs::Registry::global().counter("fleet.shards_done");
  static obs::Counter& lost_ctr =
      obs::Registry::global().counter("fleet.leases_lost");

  WorkerOptions opts = options;
  if (opts.worker_id.empty()) opts.worker_id = "w" + std::to_string(::getpid());
  if (!opts.now) opts.now = &system_now_s;
  const FleetPaths paths = FleetPaths::at(opts.run_dir);

  // Wait for the coordinator to publish the spec (workers may attach before
  // the run directory is fully laid out, or from another host).
  const double spec_wait_s = opts.max_idle_s > 0 ? opts.max_idle_s : 30.0;
  const auto spec_wait_start = SteadyClock::now();
  JobSpec spec;
  for (;;) {
    if (exists(paths.spec)) {
      spec = JobSpec::from_file(paths.spec);
      break;
    }
    if (exists(paths.stop)) return WorkerReport{.saw_stop = true};
    if (s_since(spec_wait_start) > spec_wait_s) {
      throw std::runtime_error("fleet worker '" + opts.worker_id +
                               "': no spec.json in '" + opts.run_dir + "'");
    }
    sleep_s(opts.poll_s);
  }
  const std::uint64_t spec_hash = spec.hash();

  LeaseDir leases(paths.leases, opts.now);
  ResultStore store(paths.worker_store(opts.worker_id));

  // One graph cache for the worker's lifetime — consecutive shards of the
  // same grid overwhelmingly share topologies.
  GraphCache cache;
  std::atomic<std::size_t> jobs_done{0};
  JobRunner base = opts.runner;
  if (!base) {
    base = [&cache, &opts](const Job& job, const std::function<bool()>& stop) {
      const std::size_t inner =
          job.threads != 0 ? job.threads : std::max<std::size_t>(1, opts.inner_threads);
      return run_job(job, cache, inner, stop);
    };
  }
  JobRunner runner = base;
  if (opts.on_job) {
    runner = [&base, &jobs_done, &opts](const Job& job,
                                        const std::function<bool()>& stop) {
      JobRecord r = base(job, stop);
      opts.on_job(r, jobs_done.fetch_add(1) + 1);
      return r;
    };
  }

  WorkerReport report;
  auto idle_since = SteadyClock::now();
  for (;;) {
    // Scan the shard pool, starting at a worker-specific rotation so a
    // freshly attached fleet doesn't stampede the same shard file.
    const std::vector<Shard> shards = list_shards(paths);
    const Shard* claimed = nullptr;
    Shard claimed_copy;
    if (!shards.empty()) {
      const std::size_t start =
          static_cast<std::size_t>(fnv1a64(opts.worker_id)) % shards.size();
      for (std::size_t k = 0; k < shards.size(); ++k) {
        const Shard& s = shards[(start + k) % shards.size()];
        if (exists(paths.done_file(s.id))) continue;
        if (leases.held(s.id)) continue;  // cheap pre-check; claim arbitrates
        if (leases.try_claim(s.id, opts.worker_id)) {
          claimed_copy = s;
          claimed = &claimed_copy;
          break;
        }
      }
    }

    if (claimed == nullptr) {
      if (exists(paths.stop)) {
        report.saw_stop = true;
        break;
      }
      if (opts.max_idle_s > 0 && s_since(idle_since) > opts.max_idle_s) break;
      sleep_s(opts.poll_s);
      continue;
    }
    idle_since = SteadyClock::now();

    // Between listing and claiming someone may have completed the shard.
    if (exists(paths.done_file(claimed->id))) {
      leases.release(claimed->id, opts.worker_id);
      continue;
    }
    claimed_ctr.add(1);
    if (opts.log != nullptr) {
      *opts.log << "[fleet:" << opts.worker_id << "] claimed " << claimed->id
                << " (" << claimed->job_ids.size() << " jobs)\n";
    }

    // Heartbeat thread for the duration of the shard. Timestamps come from
    // the injected clock; the beat cadence is real time (ttl/4).
    std::mutex hb_mutex;
    std::condition_variable hb_cv;
    bool hb_stop = false;
    std::atomic<bool> lease_lost{false};
    std::thread hb([&] {
      std::unique_lock lock(hb_mutex);
      const auto interval =
          std::chrono::duration<double>(std::max(0.005, opts.ttl_s / 4.0));
      while (!hb_cv.wait_for(lock, interval, [&] { return hb_stop; })) {
        if (!leases.heartbeat(claimed_copy.id, opts.worker_id)) {
          // Reaped from under us (we stalled past the TTL). Keep executing —
          // our records stay valid and the merge reconciles duplicates —
          // but remember not to release someone else's claim.
          lease_lost.store(true, std::memory_order_relaxed);
        }
      }
    });

    // Cross-worker resume: skip every job some store already has "ok".
    std::unordered_set<std::size_t> completed;
    {
      const StoreMerge m = merge_stores(list_worker_stores(paths), &spec_hash);
      for (const JobRecord& r : m.records) {
        if (r.status == "ok") completed.insert(r.job_id);
      }
    }
    std::vector<std::size_t> todo;
    for (const std::size_t id : claimed->job_ids) {
      if (!completed.contains(id)) todo.push_back(id);
    }
    report.jobs_resumed += claimed->job_ids.size() - todo.size();

    SweepOptions so;
    so.workers = 1;
    so.timeout_s = opts.timeout_s;
    so.retries = opts.retries;
    so.resume = true;
    so.job_subset = todo;
    so.progress = nullptr;
    const SweepReport sr = SweepScheduler(so).run(spec, &store, runner);
    report.jobs_executed += sr.executed;
    report.jobs_failed += sr.failed + sr.timed_out;

    {
      std::scoped_lock lock(hb_mutex);
      hb_stop = true;
    }
    hb_cv.notify_all();
    hb.join();

    // Publish completion durably, then drop the claim. Order matters: a
    // crash after the marker but before the release is cleaned up by the
    // coordinator; the reverse order would re-issue a finished shard.
    Json marker = Json::object();
    marker.set("shard", Json::string(claimed->id));
    marker.set("worker", Json::string(opts.worker_id));
    marker.set("jobs",
               Json::number(static_cast<std::uint64_t>(claimed->job_ids.size())));
    marker.set("executed", Json::number(static_cast<std::uint64_t>(sr.executed)));
    write_file_durable(paths.done_file(claimed->id), marker.dump() + "\n");
    done_ctr.add(1);
    if (!lease_lost.load(std::memory_order_relaxed)) {
      leases.release(claimed->id, opts.worker_id);
    } else {
      lost_ctr.add(1);
    }
    ++report.shards_done;
  }
  if (opts.log != nullptr) {
    *opts.log << "[fleet:" << opts.worker_id << "] exit: " << report.shards_done
              << " shard(s), " << report.jobs_executed << " job(s) executed, "
              << report.jobs_resumed << " resumed\n";
  }
  return report;
}

// ---------------------------------------------------------------------------
// Process spawning.

pid_t spawn_process(
    const std::vector<std::string>& argv,
    const std::vector<std::pair<std::string, std::string>>& env) {
  if (argv.empty()) return -1;
  const pid_t pid = ::fork();
  if (pid != 0) return pid;  // parent (or fork failure = -1)

  // Child: adjust environment, exec. Only async-signal-unsafe work below is
  // setenv/exec, which is fine — the child is single-threaded post-fork and
  // execs immediately.
  for (const auto& [k, v] : env) ::setenv(k.c_str(), v.c_str(), 1);
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);
  ::execv(cargv[0], cargv.data());
  ::_exit(127);
}

// ---------------------------------------------------------------------------
// Coordinator.

FleetCoordinator::FleetCoordinator(FleetOptions options, JobSpec spec)
    : options_(std::move(options)), spec_(std::move(spec)) {
  if (!options_.now) options_.now = &system_now_s;
  if (options_.workers > 0 && !options_.spawn) {
    throw std::invalid_argument(
        "FleetOptions.spawn is required when workers > 0");
  }
}

FleetReport FleetCoordinator::run() {
  static obs::Counter& expired_ctr =
      obs::Registry::global().counter("fleet.leases_expired");
  static obs::Counter& stolen_ctr =
      obs::Registry::global().counter("fleet.shards_stolen");
  static obs::Counter& restart_ctr =
      obs::Registry::global().counter("fleet.worker_restarts");

  const auto t0 = SteadyClock::now();
  const FleetPaths paths = FleetPaths::at(options_.run_dir);
  for (const std::string& d :
       {paths.root, paths.shards, paths.leases, paths.done, paths.workers}) {
    fs::create_directories(d);
  }

  FleetReport report;
  report.spec_hash = spec_.hash();
  report.total_jobs = spec_.num_jobs();

  // Publish the spec — or verify an existing run directory is resuming the
  // *same* grid (fleet runs are resumable exactly like single-process ones).
  if (const auto existing = read_file(paths.spec)) {
    std::uint64_t existing_hash = 0;
    try {
      existing_hash = JobSpec::from_json(Json::parse(*existing)).hash();
    } catch (const JsonError& e) {
      throw std::runtime_error("unreadable spec.json in '" + paths.root +
                               "': " + e.what());
    }
    if (existing_hash != report.spec_hash) {
      throw std::runtime_error("run directory '" + paths.root +
                               "' holds a different spec (hash mismatch)");
    }
  } else {
    write_file_durable(paths.spec, spec_.to_json().dump() + "\n");
  }
  // A leftover STOP from a finished prior run would make workers exit
  // before doing anything; clear it (jobs already recorded still resume).
  ::unlink(paths.stop.c_str());

  std::size_t shard_size = options_.shard_size;
  if (shard_size == 0) {
    const std::size_t parallelism = std::max<std::size_t>(1, options_.workers);
    shard_size =
        std::max<std::size_t>(1, report.total_jobs / (parallelism * 4));
  }
  const std::vector<Shard> initial = make_shards(report.total_jobs, shard_size);
  for (const Shard& s : initial) publish_shard(paths, s);
  report.shards = initial.size();

  // Spawn the local workers. Ids are w0..wN-1; restarts get an "rK" suffix
  // so every process appends to its own store file.
  struct Child {
    pid_t pid;
    std::size_t index;
    int restarts = 0;
  };
  std::vector<Child> live;
  auto spawn_one = [&](std::size_t index, int restart_gen) -> bool {
    std::string id = "w" + std::to_string(index);
    if (restart_gen > 0) id += "r" + std::to_string(restart_gen);
    const pid_t pid = options_.spawn(index, id);
    if (pid <= 0) return false;
    live.push_back({pid, index, restart_gen});
    ++report.workers_spawned;
    if (options_.log != nullptr) {
      *options_.log << "[fleet] spawned worker " << id << " (pid " << pid
                    << ")\n";
    }
    return true;
  };
  for (std::size_t i = 0; i < options_.workers; ++i) spawn_one(i, 0);

  LeaseDir leases(paths.leases, options_.now);
  int restarts_left = options_.max_restarts;
  bool stopping = false;
  auto stop_published = SteadyClock::now();
  const double stop_grace_s = std::max(5.0, 2.0 * options_.ttl_s);
  std::size_t tick = 0;

  const auto kill_all = [&] {
    for (const Child& c : live) ::kill(c.pid, SIGKILL);
    for (const Child& c : live) ::waitpid(c.pid, nullptr, 0);
    live.clear();
  };

  for (;; ++tick) {
    // Reap exited children; restart them while the budget lasts.
    for (std::size_t i = 0; i < live.size();) {
      int wstatus = 0;
      const pid_t r = ::waitpid(live[i].pid, &wstatus, WNOHANG);
      if (r == live[i].pid || (r < 0 && errno == ECHILD)) {
        const Child dead = live[i];
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
        if (options_.log != nullptr) {
          *options_.log << "[fleet] worker w" << dead.index << " (pid "
                        << dead.pid << ") exited\n";
        }
        if (!stopping && restarts_left > 0) {
          --restarts_left;
          if (spawn_one(dead.index, dead.restarts + 1)) {
            ++report.worker_restarts;
            restart_ctr.add(1);
          }
        }
      } else {
        ++i;
      }
    }

    // One scan of the ground truth: stores, shards, leases, done markers.
    const StoreMerge scan = merge_stores(list_worker_stores(paths), &report.spec_hash);
    std::unordered_set<std::size_t> recorded;
    for (const JobRecord& r : scan.records) recorded.insert(r.job_id);

    const std::vector<Shard> shards = list_shards(paths);
    std::size_t claimable = 0;
    std::size_t active_leases = 0;
    const double now_s = options_.now();
    std::unordered_map<std::string, const Shard*> by_id;
    for (const Shard& s : shards) by_id.emplace(s.id, &s);
    for (const Shard& s : shards) {
      const bool done = exists(paths.done_file(s.id));
      const auto lease = leases.read(s.id);
      if (done) {
        // Holder died between marker and release (or released already).
        if (lease.has_value()) leases.force_release(s.id);
        continue;
      }
      if (!lease.has_value()) {
        ++claimable;
      } else if (lease->expired(now_s, options_.ttl_s)) {
        if (leases.reap_if_expired(s.id, options_.ttl_s)) {
          ++report.leases_expired;
          expired_ctr.add(1);
          ++claimable;
          if (options_.log != nullptr) {
            *options_.log << "[fleet] reaped expired lease on " << s.id
                          << " (worker " << lease->worker << ")\n";
          }
        }
      } else {
        ++active_leases;
      }
    }

    if (!stopping && recorded.size() >= report.total_jobs) {
      write_file_durable(paths.stop, "done\n");
      stopping = true;
      stop_published = SteadyClock::now();
      if (options_.log != nullptr) {
        *options_.log << "[fleet] all " << report.total_jobs
                      << " jobs recorded; STOP published\n";
      }
    }

    if (options_.on_poll) {
      FleetStatus status;
      status.tick = tick;
      for (const Child& c : live) status.live_pids.push_back(c.pid);
      status.recorded_jobs = recorded.size();
      status.total_jobs = report.total_jobs;
      status.active_leases = active_leases;
      status.claimable_shards = claimable;
      options_.on_poll(status);
    }

    if (stopping) {
      if (live.empty()) break;
      if (s_since(stop_published) > stop_grace_s) {
        if (options_.log != nullptr) {
          *options_.log << "[fleet] grace period elapsed; killing "
                        << live.size() << " straggler worker(s)\n";
        }
        kill_all();
        break;
      }
    } else {
      // Work stealing: every shard is claimed, someone is idle, and a live
      // shard still has >= 2 unfinished jobs — split its tail into a fresh
      // shard. Duplicated executions are reconciled at merge.
      const bool idle_capacity =
          options_.workers == 0 || live.size() > active_leases;
      if (claimable == 0 && idle_capacity) {
        const Shard* victim = nullptr;
        std::vector<std::size_t> victim_remaining;
        int victim_gen = 0;
        for (const Shard& s : shards) {
          if (exists(paths.done_file(s.id))) continue;
          if (!leases.held(s.id)) continue;
          // Split budget + drain guard: count this shard's prior splits and
          // skip it while any of them still has unrecorded jobs.
          int splits = 0;
          bool prior_split_active = false;
          const std::string prefix = s.id + "-s";
          for (const Shard& t : shards) {
            if (t.id.rfind(prefix, 0) != 0) continue;
            ++splits;
            if (!shard_remaining(t, recorded).empty()) {
              prior_split_active = true;
            }
          }
          if (splits >= options_.max_steals_per_shard || prior_split_active) {
            continue;
          }
          auto remaining = shard_remaining(s, recorded);
          if (remaining.size() < 2) continue;
          if (victim == nullptr ||
              remaining.size() > victim_remaining.size()) {
            victim = by_id.at(s.id);
            victim_remaining = std::move(remaining);
            victim_gen = splits + 1;
          }
        }
        if (victim != nullptr) {
          const Shard stolen =
              split_shard(*victim, victim_remaining, victim_gen);
          publish_shard(paths, stolen);
          ++report.shards_stolen;
          stolen_ctr.add(1);
          if (options_.log != nullptr) {
            *options_.log << "[fleet] stole " << stolen.job_ids.size()
                          << " job(s) from " << victim->id << " into "
                          << stolen.id << "\n";
          }
        }
      }

      // Every local worker is gone and the budget is spent: nothing will
      // ever finish the grid (external-worker runs keep waiting instead).
      if (options_.workers > 0 && live.empty() && restarts_left == 0) {
        report.aborted = true;
        if (options_.log != nullptr) {
          *options_.log << "[fleet] all workers dead, no restart budget — "
                           "aborting\n";
        }
        break;
      }
    }

    if (options_.max_wall_s > 0 && s_since(t0) > options_.max_wall_s) {
      report.aborted = true;
      if (options_.log != nullptr) {
        *options_.log << "[fleet] max_wall_s exceeded — aborting\n";
      }
      kill_all();
      break;
    }
    sleep_s(options_.poll_s);
  }
  kill_all();  // no-op on clean exits; safety on breaks with live children

  // Final merge: fold every per-worker store into merged.jsonl.
  const StoreMerge merged =
      merge_stores(list_worker_stores(paths), &report.spec_hash);
  report.records = merged.records;
  report.duplicate_records = merged.duplicates;
  report.reexecuted_ok = merged.reexecuted_ok;
  report.reconcile_mismatches = merged.reconcile_mismatches;
  for (const JobRecord& r : report.records) {
    if (r.status == "ok") ++report.ok;
    else if (r.status == "timeout") ++report.timed_out;
    else ++report.failed;
  }
  report.missing = report.total_jobs - report.records.size();
  std::string lines;
  for (const JobRecord& r : report.records) {
    lines += r.to_json().dump();
    lines += '\n';
  }
  write_file_durable(paths.merged, lines);
  report.wall_s = s_since(t0);
  if (options_.log != nullptr) print_summary(report, *options_.log);
  return report;
}

void FleetCoordinator::print_summary(const FleetReport& report,
                                     std::ostream& os) {
  os << "[fleet] " << (report.aborted ? "ABORTED" : "finished") << ": "
     << report.total_jobs << " jobs (" << report.ok << " ok, " << report.failed
     << " failed, " << report.timed_out << " timeout, " << report.missing
     << " missing) across " << report.shards << " shard(s) + "
     << report.shards_stolen << " stolen | " << report.workers_spawned
     << " worker(s), " << report.worker_restarts << " restart(s), "
     << report.leases_expired << " lease(s) expired | " << report.reexecuted_ok
     << " job(s) re-executed, " << report.reconcile_mismatches
     << " reconcile mismatch(es) | " << report.wall_s << "s\n";
}

}  // namespace sbgp::exp
