// bench_svc_latency — request latency of the svc:: what-if service, measured
// through the real transport: an in-process svc::Server on a Unix socket
// with a blocking client in the bench thread, exactly the path a deployed
// daemon serves.
//
// Two request series per graph size (10K and the paper-scale 36,964-AS
// synthetic Internet):
//   * whatif — whatif_adopt on random insecure ISPs. After the serve-time
//     warm-up these are O(1) lookups into the cached StateEvaluation; the
//     acceptance gate requires p99 <= 10 ms at 36,964 ASes (exit 1 if not).
//   * mutate — mutate_topology alternately adding/removing one stub–stub
//     peer edge. Each request pays the CSR patch, the endpoint label
//     computation, and the eager re-evaluation of the force-dirtied
//     destinations, so this series prices the invalidation machinery.
//
// Rows (per size): BM_SvcWhatif_p50/<N>, BM_SvcWhatif_p99/<N>,
// BM_SvcMutate_p50/<N>, BM_SvcMutate_p99/<N>, all in microseconds.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/deployment_state.h"
#include "svc/server.h"
#include "svc/session.h"

namespace {

using namespace sbgp;

int connect_or_die(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  for (int attempt = 0; attempt < 100; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd >= 0 &&
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) {
      return fd;
    }
    if (fd >= 0) ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  std::cerr << "bench_svc_latency: cannot connect to " << path << "\n";
  std::exit(1);
}

/// One blocking request/reply round trip; returns the reply line.
std::string roundtrip(int fd, const std::string& request) {
  std::string out = request;
  out.push_back('\n');
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = ::send(fd, out.data() + off, out.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      std::cerr << "bench_svc_latency: send failed\n";
      std::exit(1);
    }
    off += static_cast<std::size_t>(n);
  }
  std::string reply;
  char ch;
  while (true) {
    const ssize_t n = ::recv(fd, &ch, 1, 0);
    if (n <= 0) {
      std::cerr << "bench_svc_latency: server closed the connection\n";
      std::exit(1);
    }
    if (ch == '\n') break;
    reply.push_back(ch);
  }
  return reply;
}

double quantile_us(std::vector<double>& v, double q) {
  std::sort(v.begin(), v.end());
  if (v.empty()) return 0.0;
  const std::size_t idx = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

struct SeriesResult {
  double whatif_p50 = 0.0, whatif_p99 = 0.0;
  double mutate_p50 = 0.0, mutate_p99 = 0.0;
};

SeriesResult run_size(std::uint32_t nodes, const bench::Options& opt,
                      std::size_t whatif_reqs, std::size_t mutate_reqs) {
  bench::Options sized = opt;
  sized.nodes = nodes;
  topo::Internet net = bench::make_internet(sized);
  const auto adopters = bench::case_study_adopters(net);
  auto state = core::DeploymentState::initial(net.graph, adopters);

  svc::SessionConfig scfg;
  scfg.sim = bench::case_study_config(sized);
  auto graph = std::make_unique<topo::AsGraph>(std::move(net.graph));
  svc::Session session(std::move(graph), std::move(state), scfg);

  // Request pools, drawn before serving: random insecure ISPs for the
  // whatif series, one stub–stub pair (non-adjacent, different providers so
  // the peer edge is legal and cheap) for the mutate series.
  std::mt19937_64 rng(opt.seed);
  std::vector<std::uint32_t> isp_asns;
  const topo::AsGraph& g = session.graph();
  for (topo::AsId i = 0; i < g.num_nodes(); ++i) {
    if (g.is_isp(i) && !session.state().is_secure(i)) {
      isp_asns.push_back(g.asn(i));
    }
  }
  std::shuffle(isp_asns.begin(), isp_asns.end(), rng);
  std::uint32_t stub_a = 0, stub_b = 0;
  {
    std::vector<topo::AsId> stubs;
    for (topo::AsId i = 0; i < g.num_nodes(); ++i) {
      if (g.is_stub(i)) stubs.push_back(i);
    }
    std::shuffle(stubs.begin(), stubs.end(), rng);
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      topo::Link l;
      if (!g.link_between(stubs[i], stubs[i + 1], l)) {
        stub_a = g.asn(stubs[i]);
        stub_b = g.asn(stubs[i + 1]);
        break;
      }
    }
  }

  session.warm();
  const std::string socket_path =
      "/tmp/sbgp_bench_svc_" + std::to_string(::getpid()) + ".sock";
  svc::Server server(session, {.socket_path = socket_path});
  std::thread serve_thread([&server] { (void)server.run(); });
  const int fd = connect_or_die(socket_path);

  using clock = std::chrono::steady_clock;
  std::vector<double> whatif_us, mutate_us;
  whatif_us.reserve(whatif_reqs);
  mutate_us.reserve(mutate_reqs);
  for (std::size_t i = 0; i < whatif_reqs; ++i) {
    const std::uint32_t asn = isp_asns[i % isp_asns.size()];
    const std::string req =
        "{\"op\":\"whatif_adopt\",\"asn\":" + std::to_string(asn) + "}";
    const auto t0 = clock::now();
    const std::string reply = roundtrip(fd, req);
    whatif_us.push_back(
        std::chrono::duration<double, std::micro>(clock::now() - t0).count());
    if (reply.find("\"ok\":true") == std::string::npos) {
      std::cerr << "whatif failed: " << reply << "\n";
      std::exit(1);
    }
  }
  for (std::size_t i = 0; i < mutate_reqs; ++i) {
    const std::string action =
        i % 2 == 0
            ? "{\"action\":\"add_edge\",\"type\":\"peer\",\"a\":" +
                  std::to_string(stub_a) + ",\"b\":" + std::to_string(stub_b) + "}"
            : "{\"action\":\"remove_edge\",\"a\":" + std::to_string(stub_a) +
                  ",\"b\":" + std::to_string(stub_b) + "}";
    const std::string req = "{\"op\":\"mutate_topology\",\"ops\":[" + action + "]}";
    const auto t0 = clock::now();
    const std::string reply = roundtrip(fd, req);
    mutate_us.push_back(
        std::chrono::duration<double, std::micro>(clock::now() - t0).count());
    if (reply.find("\"ok\":true") == std::string::npos) {
      std::cerr << "mutate failed: " << reply << "\n";
      std::exit(1);
    }
  }
  // Leave the edge as it started (even request count) before shutdown.
  ::close(fd);
  server.request_stop();
  serve_thread.join();

  SeriesResult r;
  r.whatif_p50 = quantile_us(whatif_us, 0.50);
  r.whatif_p99 = quantile_us(whatif_us, 0.99);
  r.mutate_p50 = quantile_us(mutate_us, 0.50);
  r.mutate_p99 = quantile_us(mutate_us, 0.99);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  auto opt = bench::parse_options(argc, argv, /*default_nodes=*/0);
  bench::JsonOut json(opt);
  if (!opt.quiet) bench::print_header("svc request latency", opt);

  // 0 = the committed two-size series; an explicit --nodes benches that one
  // size only (exploration, not for BENCH_svc_latency.json).
  std::vector<std::uint32_t> sizes =
      opt.nodes == 0 ? std::vector<std::uint32_t>{10000, 36964}
                     : std::vector<std::uint32_t>{opt.nodes};
  bool gate_ok = true;
  for (const std::uint32_t n : sizes) {
    const std::size_t whatif_reqs = 500;
    const std::size_t mutate_reqs = n > 20000 ? 20 : 50;
    const SeriesResult r = run_size(n, opt, whatif_reqs, mutate_reqs);
    if (!opt.quiet) {
      std::cout << n << " ASes: whatif p50 " << r.whatif_p50 << " us, p99 "
                << r.whatif_p99 << " us; mutate p50 " << r.mutate_p50
                << " us, p99 " << r.mutate_p99 << " us\n";
    }
    const std::string suffix = "/" + std::to_string(n);
    json.add("BM_SvcWhatif_p50" + suffix, r.whatif_p50, "us");
    json.add("BM_SvcWhatif_p99" + suffix, r.whatif_p99, "us");
    json.add("BM_SvcMutate_p50" + suffix, r.mutate_p50, "us");
    json.add("BM_SvcMutate_p99" + suffix, r.mutate_p99, "us");
    if (n == 36964 && r.whatif_p99 > 10000.0) gate_ok = false;
  }
  if (!gate_ok) {
    std::cerr << "GATE FAILED: whatif_adopt p99 > 10 ms at 36,964 ASes\n";
    return 1;
  }
  return 0;
}
