#include "exp/job_spec.h"

#include <charconv>
#include <fstream>
#include <sstream>

namespace sbgp::exp {

namespace {

void check_one_of(const std::string& v, std::initializer_list<const char*> allowed,
                  const char* what) {
  for (const char* a : allowed) {
    if (v == a) return;
  }
  throw JsonError(std::string("bad ") + what + " '" + v + "'");
}

void check_known_keys(const Json& obj, std::initializer_list<const char*> known,
                      const char* what) {
  for (const auto& [k, v] : obj.members()) {
    (void)v;
    bool ok = false;
    for (const char* a : known) {
      if (k == a) {
        ok = true;
        break;
      }
    }
    if (!ok) throw JsonError(std::string("unknown ") + what + " key '" + k + "'");
  }
}

GraphSpec graph_from_json(const Json& j) {
  GraphSpec g;
  check_known_keys(j, {"file", "nodes", "seed", "augment", "x"}, "graph");
  if (const Json* v = j.find("file")) g.file = v->as_string();
  if (const Json* v = j.find("nodes")) {
    g.nodes = static_cast<std::uint32_t>(v->as_u64());
    if (g.nodes == 0) throw JsonError("graph nodes must be > 0");
  }
  if (const Json* v = j.find("seed")) g.seed = v->as_u64();
  if (const Json* v = j.find("augment")) g.augment = v->as_bool();
  if (const Json* v = j.find("x")) {
    g.x = v->as_double();
    if (g.x < 0.0 || g.x > 1.0) throw JsonError("graph x must be in [0,1]");
  }
  return g;
}

Json graph_to_json(const GraphSpec& g) {
  Json j = Json::object();
  if (!g.file.empty()) j.set("file", Json::string(g.file));
  j.set("nodes", Json::number(static_cast<std::uint64_t>(g.nodes)));
  j.set("seed", Json::number(g.seed));
  j.set("augment", Json::boolean(g.augment));
  j.set("x", Json::number(g.x));
  return j;
}

}  // namespace

std::string GraphSpec::key() const {
  std::ostringstream os;
  if (!file.empty()) {
    os << "file:" << file << ":x" << format_double(x);
  } else {
    os << "synth:n" << nodes << ":s" << seed << (augment ? ":aug" : "")
       << ":x" << format_double(x);
  }
  return os.str();
}

std::string Job::key() const {
  std::ostringstream os;
  os << "g=" << graph.key() << ";adopters=" << adopters << ";model=" << model
     << ";pricing=" << pricing << ";stubties=" << (stub_ties ? 1 : 0)
     << ";seed=" << seed << ";theta=" << format_double(theta);
  if (attack_scenario.has_value()) os << ";" << attack_scenario->key();
  return os.str();
}

std::size_t JobSpec::num_jobs() const {
  return graphs.size() * adopters.size() * models.size() * pricing.size() *
         stub_ties.size() * seeds.size() * thetas.size() *
         (scenario.has_value() ? scenario->num_points() : 1);
}

std::vector<Job> JobSpec::expand() const {
  std::vector<scenario::Scenario> points;
  if (scenario.has_value()) points = scenario->expand();
  std::vector<Job> jobs;
  jobs.reserve(num_jobs());
  for (const GraphSpec& g : graphs) {
    for (const std::string& a : adopters) {
      for (const std::string& m : models) {
        for (const std::string& p : pricing) {
          for (const int st : stub_ties) {
            for (const std::uint64_t s : seeds) {
              for (const double t : thetas) {
                const std::size_t npts = points.empty() ? 1 : points.size();
                for (std::size_t sc = 0; sc < npts; ++sc) {
                  Job job;
                  job.id = jobs.size();
                  job.graph = g;
                  job.adopters = a;
                  job.model = m;
                  job.pricing = p;
                  job.stub_ties = st != 0;
                  job.seed = s;
                  job.theta = t;
                  job.pricing_tier_size = pricing_tier_size;
                  job.max_rounds = max_rounds;
                  job.threads = threads;
                  job.incremental = incremental;
                  job.check_incremental = check_incremental;
                  if (!points.empty()) job.attack_scenario = points[sc];
                  jobs.push_back(std::move(job));
                }
              }
            }
          }
        }
      }
    }
  }
  return jobs;
}

std::uint64_t JobSpec::hash() const { return fnv1a64(to_json().dump()); }

Json JobSpec::to_json() const {
  Json j = Json::object();
  j.set("name", Json::string(name));
  Json gs = Json::array();
  for (const GraphSpec& g : graphs) gs.push(graph_to_json(g));
  j.set("graphs", std::move(gs));
  auto strings = [](const std::vector<std::string>& v) {
    Json a = Json::array();
    for (const std::string& s : v) a.push(Json::string(s));
    return a;
  };
  j.set("adopters", strings(adopters));
  j.set("models", strings(models));
  j.set("pricing", strings(pricing));
  Json st = Json::array();
  for (const int b : stub_ties) st.push(Json::boolean(b != 0));
  j.set("stub_ties", std::move(st));
  Json sd = Json::array();
  for (const std::uint64_t s : seeds) sd.push(Json::number(s));
  j.set("seeds", std::move(sd));
  Json th = Json::array();
  for (const double t : thetas) th.push(Json::number(t));
  j.set("thetas", std::move(th));
  j.set("pricing_tier_size", Json::number(pricing_tier_size));
  j.set("max_rounds", Json::number(static_cast<std::uint64_t>(max_rounds)));
  j.set("threads", Json::number(static_cast<std::uint64_t>(threads)));
  j.set("incremental", Json::boolean(incremental));
  j.set("check_incremental", Json::boolean(check_incremental));
  // The scenario block is experiment identity and participates in hash();
  // it is appended last so scenario-free specs keep their historical
  // serialisation (and hence their resume keys).
  if (scenario.has_value()) j.set("scenario", scenario->to_json());
  // metrics_out / trace_out / obs_summary are deliberately NOT serialised:
  // hash() is derived from this JSON and telemetry sinks must not change a
  // spec's identity (see JobSpec declaration).
  return j;
}

JobSpec JobSpec::from_json(const Json& j) {
  JobSpec spec;
  check_known_keys(j,
                   {"name", "graphs", "adopters", "models", "pricing",
                    "stub_ties", "seeds", "thetas", "pricing_tier_size",
                    "max_rounds", "threads", "incremental",
                    "check_incremental", "metrics_out", "trace_out",
                    "obs_summary", "scenario"},
                   "spec");
  if (const Json* v = j.find("name")) spec.name = v->as_string();
  if (const Json* v = j.find("graphs")) {
    spec.graphs.clear();
    for (const Json& g : v->items()) spec.graphs.push_back(graph_from_json(g));
  }
  if (const Json* v = j.find("adopters")) {
    spec.adopters.clear();
    for (const Json& a : v->items()) spec.adopters.push_back(a.as_string());
  }
  if (const Json* v = j.find("models")) {
    spec.models.clear();
    for (const Json& m : v->items()) {
      spec.models.push_back(m.as_string());
      check_one_of(spec.models.back(), {"outgoing", "incoming"}, "model");
    }
  }
  if (const Json* v = j.find("pricing")) {
    spec.pricing.clear();
    for (const Json& p : v->items()) {
      spec.pricing.push_back(p.as_string());
      check_one_of(spec.pricing.back(), {"linear", "concave", "tiered"},
                   "pricing model");
    }
  }
  if (const Json* v = j.find("stub_ties")) {
    spec.stub_ties.clear();
    for (const Json& b : v->items()) spec.stub_ties.push_back(b.as_bool() ? 1 : 0);
  }
  if (const Json* v = j.find("seeds")) {
    spec.seeds.clear();
    for (const Json& s : v->items()) spec.seeds.push_back(s.as_u64());
  }
  if (const Json* v = j.find("thetas")) {
    spec.thetas.clear();
    for (const Json& t : v->items()) {
      const double theta = t.as_double();
      if (theta < 0.0) throw JsonError("theta must be >= 0");
      spec.thetas.push_back(theta);
    }
  }
  if (const Json* v = j.find("pricing_tier_size")) {
    spec.pricing_tier_size = v->as_double();
    if (spec.pricing_tier_size <= 0) throw JsonError("pricing_tier_size must be > 0");
  }
  if (const Json* v = j.find("max_rounds")) {
    spec.max_rounds = static_cast<std::size_t>(v->as_u64());
    if (spec.max_rounds == 0) throw JsonError("max_rounds must be > 0");
  }
  if (const Json* v = j.find("threads")) {
    spec.threads = static_cast<std::size_t>(v->as_u64());
  }
  if (const Json* v = j.find("incremental")) {
    spec.incremental = v->as_bool();
  }
  if (const Json* v = j.find("check_incremental")) {
    spec.check_incremental = v->as_bool();
  }
  if (const Json* v = j.find("scenario")) {
    spec.scenario = scenario::ScenarioSpec::from_json(*v, "scenario");
  }
  if (const Json* v = j.find("metrics_out")) spec.metrics_out = v->as_string();
  if (const Json* v = j.find("trace_out")) spec.trace_out = v->as_string();
  if (const Json* v = j.find("obs_summary")) spec.obs_summary = v->as_bool();
  if (spec.graphs.empty() || spec.adopters.empty() || spec.models.empty() ||
      spec.pricing.empty() || spec.stub_ties.empty() || spec.seeds.empty() ||
      spec.thetas.empty()) {
    throw JsonError("every spec axis must be non-empty");
  }
  return spec;
}

JobSpec JobSpec::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw JsonError("cannot open spec file '" + path + "'");
  std::stringstream buf;
  buf << in.rdbuf();
  return from_json(Json::parse(buf.str()));
}

namespace {

template <typename T, typename ParseFn>
std::vector<T> parse_list(const std::string& csv, const char* what,
                          ParseFn parse_one) {
  std::vector<T> out;
  std::size_t start = 0;
  if (csv.empty()) throw JsonError(std::string("empty ") + what + " list");
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    const std::string token = csv.substr(start, end - start);
    if (token.empty()) {
      throw JsonError(std::string("empty entry in ") + what + " list '" + csv +
                      "'");
    }
    out.push_back(parse_one(token));
    if (comma == std::string::npos) break;
    start = comma + 1;
    if (start == csv.size()) {
      throw JsonError(std::string("trailing comma in ") + what + " list '" +
                      csv + "'");
    }
  }
  return out;
}

}  // namespace

std::vector<double> parse_double_list(const std::string& csv, const char* what) {
  return parse_list<double>(csv, what, [&](const std::string& token) {
    double v = 0;
    const char* first = token.data();
    const char* last = token.data() + token.size();
    const auto res = std::from_chars(first, last, v);
    if (res.ec != std::errc{} || res.ptr != last) {
      throw JsonError(std::string("bad ") + what + " entry '" + token + "'");
    }
    return v;
  });
}

std::vector<std::uint64_t> parse_u64_list(const std::string& csv,
                                          const char* what) {
  return parse_list<std::uint64_t>(csv, what, [&](const std::string& token) {
    std::uint64_t v = 0;
    const char* first = token.data();
    const char* last = token.data() + token.size();
    const auto res = std::from_chars(first, last, v);
    if (res.ec != std::errc{} || res.ptr != last) {
      throw JsonError(std::string("bad ") + what + " entry '" + token + "'");
    }
    return v;
  });
}

}  // namespace sbgp::exp
