# Empty dependencies file for bench_perf_routing_kernel.
# This may be replaced when dependencies are built.
