// Fleet scaling bench: the same fixed 240-job grid (2 adopter sets x 20
// seeds x 6 thetas) executed by the multi-process fleet at 1, 2, 4 and 8
// worker processes, reporting wall-clock per worker count and the speedup
// at 4 workers (acceptance bar: >= 3x over 1 worker).
//
// Jobs are LATENCY-bound, not CPU-bound: each runs a real (small) simulation
// plus a fixed 50 ms stall, modeling the per-job I/O + queueing latency of
// the paper's 200-node DryadLINQ cluster (Appendix C.3), where a sweep
// point's cost is dominated by data movement rather than compute. That is
// deliberate — this bench measures the *fleet substrate* (lease claiming,
// shard scheduling, store merging), so per-job cost must be something
// overlapping workers can actually hide. On a single-core container a
// CPU-bound grid cannot scale past 1x no matter how good the fleet is; the
// stall keeps the >= 3x gate honest about what it gates: coordination
// overhead staying well under 25% of the latency budget at 4-way overlap.
//
// Worker processes are this binary re-exec'd with SBGP_FLEET_BENCH_WORKER=1
// (same trap pattern as tests/test_fleet_faults.cpp), so the bench is fully
// self-contained.
//
//   bench_fleet_scaling [--nodes N] [--seed S] [--json-out FILE]
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <iomanip>
#include <thread>

#include "bench_common.h"
#include "exp/fleet.h"
#include "exp/runner.h"
#include "stats/table.h"

namespace {

using namespace sbgp;

constexpr int kStallMs = 50;

// The fixed grid: 2 x 20 x 6 = 240 jobs on a small synthetic Internet.
exp::JobSpec bench_spec(std::uint32_t nodes, std::uint64_t seed) {
  exp::JobSpec spec;
  spec.name = "fleet-scaling-grid";
  exp::GraphSpec g;
  g.nodes = nodes;
  g.seed = seed;
  spec.graphs = {g};
  spec.adopters = {"top:3", "cps"};
  spec.seeds.clear();
  for (std::uint64_t s = 1; s <= 20; ++s) spec.seeds.push_back(s);
  spec.thetas = {0.0, 0.05, 0.1, 0.2, 0.35, 0.5};
  return spec;
}

// Real simulation + fixed stall — shared by the worker trap below.
exp::JobRunner stalled_runner(exp::GraphCache& cache) {
  return [&cache](const exp::Job& job, const std::function<bool()>& stop) {
    exp::JobRecord r = exp::run_job(job, cache, 1, stop);
    std::this_thread::sleep_for(std::chrono::milliseconds(kStallMs));
    return r;
  };
}

[[noreturn]] void run_bench_worker() {
  const char* run_dir = std::getenv("SBGP_FLEET_RUN_DIR");
  const char* worker_id = std::getenv("SBGP_FLEET_WORKER_ID");
  if (run_dir == nullptr || worker_id == nullptr) std::_Exit(86);
  exp::WorkerOptions wo;
  wo.run_dir = run_dir;
  wo.worker_id = worker_id;
  wo.ttl_s = 5.0;
  wo.poll_s = 0.01;
  wo.max_idle_s = 60.0;
  exp::GraphCache cache;
  wo.runner = stalled_runner(cache);
  try {
    (void)exp::run_fleet_worker(wo);
  } catch (...) {
    std::_Exit(87);
  }
  std::_Exit(0);
}

double run_fleet(const exp::JobSpec& spec, const std::string& run_dir,
                 std::size_t workers, bool quiet) {
  std::filesystem::remove_all(run_dir);
  exp::FleetOptions fo;
  fo.run_dir = run_dir;
  fo.workers = workers;
  fo.ttl_s = 5.0;
  fo.poll_s = 0.02;
  fo.max_wall_s = 600.0;
  fo.spawn = [&run_dir](std::size_t, const std::string& worker_id) {
    return exp::spawn_process({"/proc/self/exe"},
                              {{"SBGP_FLEET_BENCH_WORKER", "1"},
                               {"SBGP_FLEET_RUN_DIR", run_dir},
                               {"SBGP_FLEET_WORKER_ID", worker_id}});
  };
  const auto report = exp::FleetCoordinator(fo, spec).run();
  if (report.aborted || report.ok != report.total_jobs ||
      report.reconcile_mismatches != 0) {
    std::cerr << "fleet run at " << workers << " worker(s) went wrong: "
              << report.ok << "/" << report.total_jobs << " ok, aborted="
              << report.aborted << ", mismatches="
              << report.reconcile_mismatches << "\n";
    std::exit(1);
  }
  if (!quiet) {
    std::cout << "  " << workers << " worker(s): " << std::fixed
              << std::setprecision(2) << report.wall_s << " s  ("
              << report.shards << " shards, " << report.shards_stolen
              << " stolen, " << report.reexecuted_ok << " re-executed)\n";
  }
  return report.wall_s;
}

}  // namespace

int main(int argc, char** argv) {
  if (const char* trap = std::getenv("SBGP_FLEET_BENCH_WORKER");
      trap != nullptr && trap[0] == '1') {
    run_bench_worker();
  }

  bench::Options opt = bench::parse_options(argc, argv, /*default_nodes=*/120);
  bench::JsonOut json(opt);
  const exp::JobSpec spec = bench_spec(opt.nodes, opt.seed);
  const std::string base =
      std::filesystem::temp_directory_path() / "sbgp_fleet_scaling";

  if (!opt.quiet) {
    std::cout << "=== fleet scaling: " << spec.num_jobs() << " latency-bound "
              << "jobs (" << kStallMs << " ms stall each), 1/2/4/8 worker "
              << "processes ===\n";
  }

  const std::vector<std::size_t> worker_counts = {1, 2, 4, 8};
  std::vector<double> wall;
  for (const std::size_t w : worker_counts) {
    wall.push_back(
        run_fleet(spec, base + "-w" + std::to_string(w), w, opt.quiet));
    json.add("fleet_wall_s_w" + std::to_string(w), wall.back(), "s");
  }

  const double speedup2 = wall[0] / wall[1];
  const double speedup4 = wall[0] / wall[2];
  const double speedup8 = wall[0] / wall[3];
  json.add("fleet_speedup_w2", speedup2, "x");
  json.add("fleet_speedup_w4", speedup4, "x");
  json.add("fleet_speedup_w8", speedup8, "x");
  json.add("fleet_jobs", static_cast<double>(spec.num_jobs()), "jobs");
  json.add("fleet_stall_ms", kStallMs, "ms");

  std::cout << std::fixed << std::setprecision(2)
            << "speedup: 2w " << speedup2 << "x | 4w " << speedup4
            << "x | 8w " << speedup8 << "x\n"
            << "paper: Appendix C.3 sweeps fanned out over a 200-node "
               "DryadLINQ cluster; per-point cost there was dominated by "
               "data movement, which is what the stall models.\n";

  if (speedup4 < 3.0) {
    std::cerr << "FAIL: fleet speedup at 4 workers " << speedup4
              << "x < 3x — coordination overhead is eating the latency "
                 "budget\n";
    return 1;
  }
  std::cout << "PASS: >= 3x at 4 workers\n";
  return 0;
}
