# Empty compiler generated dependencies file for adopter_search.
# This may be replaced when dependencies are built.
