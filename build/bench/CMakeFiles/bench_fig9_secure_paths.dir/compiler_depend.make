# Empty compiler generated dependencies file for bench_fig9_secure_paths.
# This may be replaced when dependencies are built.
