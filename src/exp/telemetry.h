// Per-round and per-job telemetry: Json record builders plus a durable
// JSONL sink. Record types are tagged ("round", "job", "metrics") so one
// stream can interleave all three and downstream tooling can filter by
// type. The sink follows the ResultStore durability contract — append-only,
// flushed per line, safe to heal after a killed run — so telemetry files
// sit next to (and behave like) the result store itself.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>

#include "core/simulator.h"
#include "exp/json.h"
#include "exp/result_store.h"
#include "scenario/engine.h"

namespace sbgp::exp {

/// Thread-safe append-only JSONL writer. Opens in append mode and starts on
/// a fresh line if the file ends mid-record (same healing as ResultStore).
/// Throws JsonError when the path cannot be opened.
class TelemetryLog {
 public:
  explicit TelemetryLog(std::string path);

  [[nodiscard]] const std::string& path() const { return path_; }

  void append(const Json& record);

 private:
  std::string path_;
  std::ofstream out_;
  std::mutex mutex_;
};

/// Build-attribution record, appended automatically as the first record of
/// every TelemetryLog open:
/// {"type":"header","version":<git describe>,"build_type":...,"obs":bool}.
[[nodiscard]] Json header_record();

/// One simulation round, as emitted by core::DeploymentSimulator:
/// {"type":"round","round":...,"flips_on":...,"flips_off":...,
///  "new_stubs":...,"secure_ases":...,"secure_isps":...,"frac_ases":...,
///  "secure_path_frac_est":...,"recomputed_destinations":...,
///  "dirty_seeds":...,"partial_updates":...,
///  "scan_ms":...,"eval_ms":...,"fold_ms":...}
/// `secure_path_frac_est` is the Figure 9 square-of-adoption estimator
/// (frac_ases^2): both endpoints must be secure for a path to count, and
/// computing the true fraction costs an extra O(N) tree pass per round.
[[nodiscard]] Json round_record(const core::RoundStats& r,
                                std::size_t num_ases);

/// Every round of `result` appended to `log` in order.
void append_round_records(TelemetryLog& log, const core::SimResult& result,
                          std::size_t num_ases);

/// One sweep job, as emitted by exp::SweepScheduler:
/// {"type":"job", ...all JobRecord fields...}.
[[nodiscard]] Json job_record(const JobRecord& r);

/// One attack-scenario evaluation, as emitted by `sbgpsim scenario run`:
/// {"type":"scenario","key":...,"pairs":...,"mean_fooled":...,
///  "mean_fooled_weight":...,"p90_fooled":...,"max_fooled":...,
///  "disconnected":...,"nonconverged":...[,"baseline_fooled":...,
///  "delta_vs_baseline":...]}.
[[nodiscard]] Json scenario_record(const scenario::ScenarioResult& r);

/// Snapshot of the global obs:: metrics registry:
/// {"type":"metrics","registry":{"counters":{...},"gauges":{...},
///  "histograms":{...}}}. The registry's hand-written JSON is re-parsed
/// here, which also validates it on every emission.
[[nodiscard]] Json metrics_record();

}  // namespace sbgp::exp
