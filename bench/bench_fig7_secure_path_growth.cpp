// Figure 7 / Section 5.4: "longer secure paths sustain deployment". As more
// ASes deploy, longer fully-secure paths appear, creating incentives at
// ISPs ever farther from the early adopters (the AS8359 -> AS6371 -> AS41209
// chain reaction of the paper). This bench tracks, per round of the case
// study, the number of fully-secure (source, destination) paths by length.
#include "bench_common.h"
#include "core/analysis.h"
#include "routing/rib.h"
#include "routing/routing_tree.h"
#include "stats/histogram.h"
#include "stats/table.h"

namespace {

sbgp::stats::IntHistogram secure_path_lengths(
    const sbgp::topo::AsGraph& g, const std::vector<std::uint8_t>& secure,
    const sbgp::core::SimConfig& cfg, sbgp::par::ThreadPool& pool) {
  using namespace sbgp;
  stats::IntHistogram hist;
  std::mutex m;
  par::parallel_for_chunked(pool, 0, g.num_nodes(), [&](std::size_t lo, std::size_t hi) {
    rt::RibComputer rc(g);
    rt::TreeComputer tc(g);
    rt::DestRib rib;
    rt::RoutingTree tree;
    rt::SecurityView view;
    view.graph = &g;
    view.base = secure.data();
    view.stub_breaks_ties = cfg.stub_breaks_ties;
    stats::IntHistogram local;
    for (std::size_t d = lo; d < hi; ++d) {
      if (secure[d] == 0) continue;
      rc.compute(static_cast<topo::AsId>(d), rib);
      tc.compute(rib, view, cfg.tiebreak, tree);
      for (const topo::AsId i : rib.order) {
        if (i != rib.dest && tree.path_secure[i] != 0) local.add(rib.len[i]);
      }
    }
    std::scoped_lock lock(m);
    for (const auto& [len, count] : local.bins()) hist.add(len, count);
  });
  return hist;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sbgp;
  const auto opt = bench::parse_options(argc, argv, /*default_nodes=*/1000);
  bench::print_header("Figure 7 - longer secure paths sustain deployment", opt);

  auto net = bench::make_internet(opt);
  const auto& g = net.graph;
  par::ThreadPool pool(opt.threads);
  core::SimConfig cfg = bench::case_study_config(opt);
  core::DeploymentSimulator sim(g, cfg);

  std::vector<std::vector<std::uint8_t>> snapshots;
  const auto result = sim.run(
      core::DeploymentState::initial(g, bench::case_study_adopters(net)),
      [&](const core::RoundObservation& obs) { snapshots.push_back(*obs.secure); });
  snapshots.push_back(result.final_state.flags());

  stats::Table t({"entering round", "secure paths", "len 1", "len 2", "len 3",
                  "len 4", "len >=5", "mean len"});
  for (std::size_t r = 0; r < snapshots.size(); ++r) {
    const auto hist = secure_path_lengths(g, snapshots[r], cfg, pool);
    t.begin_row();
    t.add(r + 1 <= result.rounds_run() + 1 ? std::to_string(r + 1)
                                           : std::string("final"));
    t.add(static_cast<unsigned long long>(hist.total()));
    for (std::uint64_t len = 1; len <= 4; ++len) {
      t.add(static_cast<unsigned long long>(hist.count(len)));
    }
    std::uint64_t tail = 0;
    for (std::uint64_t len = 5; len <= hist.max_value(); ++len) tail += hist.count(len);
    t.add(static_cast<unsigned long long>(tail));
    t.add(hist.mean(), 2);
  }
  t.print(std::cout);
  bench::print_paper_note(
      "each deployment (e.g. AS8359 in round 4) creates new, longer secure "
      "paths (AS6371's 69 newly-secure paths, a 4-hop path for Sprint by "
      "round 7), pulling in ISPs farther from the early adopters.");
  return 0;
}
