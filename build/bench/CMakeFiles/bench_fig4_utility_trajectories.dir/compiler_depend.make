# Empty compiler generated dependencies file for bench_fig4_utility_trajectories.
# This may be replaced when dependencies are built.
