// Build attribution: which exact binary produced this output? The git
// describe string, build type and OBS switch are baked in at configure time
// and surfaced through `sbgpsim --version`, every telemetry JSONL header
// record, and the bench JSON context — so service logs and committed
// BENCH_*.json files are attributable to a commit and build flavour.
//
// The values are injected as compile definitions on build_info.cpp only (see
// src/obs/CMakeLists.txt), so touching the git state dirties exactly one
// translation unit. They are captured when CMake configures, not per build —
// an incremental rebuild on new commits without re-configuring can lag; the
// "-dirty" suffix and CI's from-scratch configures keep this honest where it
// matters.
#pragma once

namespace sbgp::obs {

/// `git describe --always --dirty --tags` at configure time ("unknown" when
/// built outside a git checkout).
[[nodiscard]] const char* git_describe();

/// CMAKE_BUILD_TYPE at configure time (e.g. "RelWithDebInfo", "Release").
[[nodiscard]] const char* build_type();

/// Was the obs:: layer compiled in (SBGPSIM_OBS)?
[[nodiscard]] bool obs_enabled();

/// One-line attribution, e.g. "be773b1 RelWithDebInfo obs=on" — the exact
/// string `sbgpsim --version` prints after the binary name.
[[nodiscard]] const char* build_info_line();

}  // namespace sbgp::obs
