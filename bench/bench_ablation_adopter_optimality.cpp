// Theorem 6.1 ablation: selecting early adopters is NP-hard (reduction from
// SET-COVER), so the paper falls back to heuristics. On the reduction graph
// itself — where the optimum is known — we compare brute-force optimal,
// greedy, top-degree and random selection; on a synthetic Internet we
// compare the same heuristics where brute force is still feasible.
#include <random>

#include "bench_common.h"
#include "gadgets/gadgets.h"
#include "stats/table.h"

int main(int argc, char** argv) {
  using namespace sbgp;
  const auto opt = bench::parse_options(argc, argv, /*default_nodes=*/250);
  bench::print_header("Ablation - early-adopter selection vs the NP-hard optimum",
                      opt);

  // ---- Part 1: the Theorem 6.1 / Figure 16 reduction graph. -------------
  gadgets::SetCoverInstance inst;
  inst.universe_size = 8;
  inst.sets = {{0, 1, 2}, {2, 3}, {3, 4, 5}, {5, 6}, {6, 7}, {0, 7}};
  const auto g = gadgets::make_set_cover(inst);
  core::SimConfig cfg;
  g.configure(cfg);
  cfg.model = core::UtilityModel::Outgoing;
  const auto candidates = set_cover_candidates(g, inst);

  std::cout << "set-cover reduction graph (8 elements, 6 sets, k = 3):\n";
  stats::Table t1({"selection strategy", "ASes secure at termination"});
  const auto optimal =
      core::optimal_adopters_bruteforce(g.graph, candidates, 3, cfg);
  const auto greedy = core::greedy_adopters(g.graph, candidates, 3, cfg);
  t1.begin_row();
  t1.add(std::string("brute-force optimal (exponential)"));
  t1.add(core::deployment_reach(g.graph, optimal, cfg));
  t1.begin_row();
  t1.add(std::string("greedy"));
  t1.add(core::deployment_reach(g.graph, greedy, cfg));
  t1.begin_row();
  t1.add(std::string("first three sets"));
  t1.add(core::deployment_reach(
      g.graph, std::vector<topo::AsId>(candidates.begin(), candidates.begin() + 3),
      cfg));
  t1.print(std::cout);
  bench::print_paper_note(
      "maximizing deployment = MAX-k-COVER on this family: NP-hard, and "
      "NP-hard to approximate within any constant factor (Thm 6.1).");

  // ---- Part 2: heuristics on a synthetic Internet. -----------------------
  std::cout << "\nsynthetic Internet (" << opt.nodes
            << " ASes, k = 2, theta = 5%):\n";
  auto net = bench::make_internet(opt);
  core::SimConfig icfg = bench::case_study_config(opt);
  const auto cand = topo::top_degree_isps(net.graph, 7);

  stats::Table t2({"selection strategy", "ASes secure at termination"});
  t2.begin_row();
  t2.add(std::string("brute-force optimal over top-7 candidates"));
  t2.add(core::deployment_reach(
      net.graph, core::optimal_adopters_bruteforce(net.graph, cand, 2, icfg), icfg));
  t2.begin_row();
  t2.add(std::string("greedy over top-7 candidates"));
  t2.add(core::deployment_reach(
      net.graph, core::greedy_adopters(net.graph, cand, 2, icfg), icfg));
  t2.begin_row();
  t2.add(std::string("top-2 by degree"));
  t2.add(core::deployment_reach(
      net.graph, std::vector<topo::AsId>(cand.begin(), cand.begin() + 2), icfg));
  t2.begin_row();
  t2.add(std::string("2 random ISPs"));
  t2.add(core::deployment_reach(
      net.graph,
      core::select_adopters(net, core::AdopterStrategy::RandomIsps, 2, 99), icfg));
  t2.print(std::cout);
  bench::print_paper_note(
      "degree is a good proxy at low theta (Fig. 8); random small sets are "
      "much weaker than top-degree sets.");
  return 0;
}
