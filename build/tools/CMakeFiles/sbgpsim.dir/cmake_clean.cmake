file(REMOVE_RECURSE
  "CMakeFiles/sbgpsim.dir/sbgpsim_cli.cpp.o"
  "CMakeFiles/sbgpsim.dir/sbgpsim_cli.cpp.o.d"
  "sbgpsim"
  "sbgpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbgpsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
