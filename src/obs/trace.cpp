#include "obs/trace.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <map>
#include <ostream>
#include <string>

namespace sbgp::obs {

namespace {

std::uint32_t thread_trace_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

TraceBuffer& TraceBuffer::global() {
  static TraceBuffer instance;
  return instance;
}

TraceBuffer::TraceBuffer(std::size_t capacity) { set_capacity(capacity); }

void TraceBuffer::set_capacity(std::size_t events) {
  const std::size_t cap = std::bit_ceil(std::max<std::size_t>(events, 2));
  buf_.assign(cap, TraceEvent{});
  mask_ = cap - 1;
  head_.store(0, std::memory_order_relaxed);
}

void TraceBuffer::clear() {
  std::fill(buf_.begin(), buf_.end(), TraceEvent{});
  head_.store(0, std::memory_order_relaxed);
}

void TraceBuffer::record(const char* name, std::uint64_t start_ns,
                         std::uint64_t dur_ns) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  const std::uint64_t i = head_.fetch_add(1, std::memory_order_relaxed);
  TraceEvent& e = buf_[i & mask_];
  e.tid = thread_trace_id();
  e.start_ns = start_ns;
  e.dur_ns = dur_ns;
  e.name = name;  // written last: a null name marks a not-yet-complete slot
}

std::uint64_t TraceBuffer::recorded() const {
  return head_.load(std::memory_order_relaxed);
}

std::uint64_t TraceBuffer::dropped() const {
  const std::uint64_t h = head_.load(std::memory_order_relaxed);
  return h > buf_.size() ? h - buf_.size() : 0;
}

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  const std::uint64_t h = head_.load(std::memory_order_relaxed);
  const std::uint64_t n = std::min<std::uint64_t>(h, buf_.size());
  std::vector<TraceEvent> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = h - n; i < h; ++i) {
    const TraceEvent& e = buf_[i & mask_];
    if (e.name != nullptr) out.push_back(e);
  }
  return out;
}

void TraceBuffer::write_chrome_json(std::ostream& os) const {
  const std::vector<TraceEvent> events = snapshot();
  os << "[";
  bool first = true;
  char buf[64];
  for (const TraceEvent& e : events) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"" << detail::json_escape(e.name)
       << "\",\"cat\":\"sbgp\",\"ph\":\"X\",\"ts\":";
    // Chrome expects microseconds; keep ns resolution in the fraction.
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(e.start_ns) / 1000.0);
    os << buf << ",\"dur\":";
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(e.dur_ns) / 1000.0);
    os << buf << ",\"pid\":1,\"tid\":" << e.tid << "}";
  }
  os << "\n]\n";
}

void TraceBuffer::write_summary(std::ostream& os, std::size_t top_n) const {
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
  };
  std::map<std::string, Agg> by_name;
  for (const TraceEvent& e : snapshot()) {
    Agg& a = by_name[e.name];
    ++a.count;
    a.total_ns += e.dur_ns;
    a.max_ns = std::max(a.max_ns, e.dur_ns);
  }

  std::vector<std::pair<std::string, Agg>> rows(by_name.begin(),
                                                by_name.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.total_ns != b.second.total_ns) {
      return a.second.total_ns > b.second.total_ns;
    }
    return a.first < b.first;
  });
  if (rows.size() > top_n) rows.resize(top_n);

  std::size_t name_w = 4;
  for (const auto& [name, agg] : rows) name_w = std::max(name_w, name.size());

  char line[256];
  std::snprintf(line, sizeof(line), "%-*s %10s %12s %12s %12s\n",
                static_cast<int>(name_w), "span", "count", "total_ms",
                "mean_ms", "max_ms");
  os << line;
  for (const auto& [name, agg] : rows) {
    const double total_ms = static_cast<double>(agg.total_ns) / 1e6;
    const double mean_ms =
        agg.count == 0 ? 0.0 : total_ms / static_cast<double>(agg.count);
    std::snprintf(line, sizeof(line), "%-*s %10llu %12.3f %12.3f %12.3f\n",
                  static_cast<int>(name_w), name.c_str(),
                  static_cast<unsigned long long>(agg.count), total_ms,
                  mean_ms, static_cast<double>(agg.max_ns) / 1e6);
    os << line;
  }
  if (dropped() > 0) {
    os << "(ring wrapped: " << dropped()
       << " oldest events overwritten; raise capacity for full traces)\n";
  }
}

}  // namespace sbgp::obs
