file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_cp_path_lengths.dir/bench_table3_cp_path_lengths.cpp.o"
  "CMakeFiles/bench_table3_cp_path_lengths.dir/bench_table3_cp_path_lengths.cpp.o.d"
  "bench_table3_cp_path_lengths"
  "bench_table3_cp_path_lengths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_cp_path_lengths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
