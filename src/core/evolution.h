// AS-graph evolution (the Section 8.4 extension): the deployment process
// runs over years, during which the AS graph grows. New stubs join the
// Internet each epoch and pick providers by preferential attachment, with a
// configurable attractiveness bonus for *secure* providers ("possibly
// incorporate the addition of new edges if secure ASes manage to sign up
// new customers"). Each epoch interleaves one deployment run to stability
// with one growth step; stub security is carried across epochs (sticky) and
// new customers of secure ISPs are simplex-secured on arrival.
#pragma once

#include <cstdint>
#include <vector>

#include "core/deployment_state.h"
#include "core/simulator.h"
#include "topology/topology_gen.h"

namespace sbgp::core {

struct EvolutionConfig {
  std::size_t epochs = 4;
  std::uint32_t new_stubs_per_epoch = 50;
  /// Attachment-weight multiplier applied to secure ISPs when new stubs
  /// pick providers. 1.0 = security-blind growth; >1 models customers
  /// preferring secure providers.
  double secure_provider_bias = 2.0;
  double two_provider_prob = 0.35;
  double three_provider_prob = 0.10;
  std::uint64_t seed = 7;
  SimConfig sim{};
};

struct EpochStats {
  std::size_t epoch = 0;  ///< 1-based
  std::size_t graph_size = 0;
  Outcome outcome = Outcome::Stable;
  std::size_t rounds = 0;
  std::size_t secure_ases = 0;
  std::size_t secure_isps = 0;
  /// Of this epoch's newly attached customer edges, how many landed on
  /// secure vs insecure providers (the revenue story for deploying early).
  std::size_t new_edges_to_secure = 0;
  std::size_t new_edges_to_insecure = 0;
};

struct EvolutionResult {
  std::vector<EpochStats> epochs;
  topo::AsGraph final_graph;
  DeploymentState final_state{0};
};

/// Runs `cfg.epochs` interleaved (deploy-to-stability, grow) steps starting
/// from `start` seeded with `adopters`. Node ids are stable across epochs
/// (new stubs are appended), so states carry over directly.
[[nodiscard]] EvolutionResult run_evolution(const topo::Internet& start,
                                            std::span<const topo::AsId> adopters,
                                            const EvolutionConfig& cfg);

}  // namespace sbgp::core
