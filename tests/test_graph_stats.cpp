#include <gtest/gtest.h>

#include "routing/rib.h"
#include "test_util.h"
#include "topology/graph_stats.h"

namespace sbgp::topo {
namespace {

TEST(DegreeStats, HandGraph) {
  const auto d = test::make_diamond();  // e:{a,b,x}=3, a:{e,s}=2, b=2, s=2, x=1
  const auto s = degree_stats(d.g, /*d_min=*/1);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_EQ(s.max, 3u);
  EXPECT_EQ(s.median, 2u);
  EXPECT_EQ(s.histogram.total(), 5u);
  // "top 1%" of 5 nodes = the single highest-degree node (e).
  EXPECT_DOUBLE_EQ(s.top1pct_endpoint_share, 3.0 / 10.0);
}

// The deployment strategy is "specifically designed to leverage the extreme
// skew in AS connectivity" (Section 4) — assert the generator delivers it.
class GeneratorSkew : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorSkew, DegreeDistributionIsHeavyTailed) {
  const auto net = test::small_internet(800, GetParam());
  const auto s = degree_stats(net.graph);
  EXPECT_GT(s.max, 20 * s.median) << "Tier-1 degree must dwarf the median";
  EXPECT_GT(s.top1pct_endpoint_share, 0.15)
      << "top 1% of ASes should hold a large share of adjacencies";
  EXPECT_GT(s.powerlaw_alpha, 1.3);
  EXPECT_LT(s.powerlaw_alpha, 4.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSkew, ::testing::Values(1, 2, 3));

TEST(CustomerCones, HandGraph) {
  const auto d = test::make_diamond();
  const auto cones = customer_cone_sizes(d.g);
  EXPECT_EQ(cones[d.e], 5u);  // everything
  EXPECT_EQ(cones[d.a], 2u);  // a + s
  EXPECT_EQ(cones[d.s], 1u);  // itself
  EXPECT_EQ(cones[d.x], 1u);
}

TEST(CustomerCones, TierOnesCoverMostOfTheGraph) {
  const auto net = test::small_internet(500, 7);
  const auto cones = customer_cone_sizes(net.graph);
  std::size_t best = 0;
  for (const auto c : cones) best = std::max(best, c);
  EXPECT_GT(best, net.graph.num_nodes() / 3);
  // Consistency with the single-node implementation in AsGraph.
  EXPECT_EQ(cones[net.tier1.front()],
            net.graph.customer_cone_size(net.tier1.front()));
  // Stubs have cone exactly 1.
  for (AsId n = 0; n < net.graph.num_nodes(); ++n) {
    if (net.graph.is_stub(n)) { EXPECT_EQ(cones[n], 1u); }
  }
}

TEST(PathLengths, InternetLikeProfile) {
  const auto net = test::small_internet(600, 11);
  const auto s = rt::sample_path_lengths(net.graph, 50, 3);
  EXPECT_GT(s.mean, 1.5);
  EXPECT_LT(s.mean, 5.5) << "AS paths should be short (valley-free hierarchy)";
  EXPECT_LE(s.p90, 8u);
  EXPECT_EQ(s.unreachable_pairs, 0u) << "the generator guarantees reachability";
}

TEST(PathLengths, DeterministicGivenSeed) {
  const auto net = test::small_internet(300, 3);
  const auto a = rt::sample_path_lengths(net.graph, 20, 9);
  const auto b = rt::sample_path_lengths(net.graph, 20, 9);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_EQ(a.histogram.total(), b.histogram.total());
}

}  // namespace
}  // namespace sbgp::topo
