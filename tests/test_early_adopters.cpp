#include <gtest/gtest.h>

#include <algorithm>

#include "core/early_adopters.h"
#include "test_util.h"

namespace sbgp::core {
namespace {

TEST(Adopters, StrategiesProduceExpectedSets) {
  const auto net = test::small_internet(300, 5);

  EXPECT_TRUE(select_adopters(net, AdopterStrategy::None, 5, 1).empty());

  const auto top = select_adopters(net, AdopterStrategy::TopDegreeIsps, 5, 1);
  ASSERT_EQ(top.size(), 5u);
  for (const auto a : top) EXPECT_TRUE(net.graph.is_isp(a));

  const auto cps = select_adopters(net, AdopterStrategy::ContentProviders, 0, 1);
  EXPECT_EQ(cps, net.cps);

  const auto combo = select_adopters(net, AdopterStrategy::CpsPlusTopIsps, 5, 1);
  EXPECT_EQ(combo.size(), net.cps.size() + 5);

  const auto r1 = select_adopters(net, AdopterStrategy::RandomIsps, 10, 1);
  const auto r2 = select_adopters(net, AdopterStrategy::RandomIsps, 10, 2);
  ASSERT_EQ(r1.size(), 10u);
  EXPECT_NE(r1, r2) << "different seeds should give different random sets";
  const auto r1_again = select_adopters(net, AdopterStrategy::RandomIsps, 10, 1);
  EXPECT_EQ(r1, r1_again) << "same seed must reproduce the set";
}

TEST(Adopters, DeploymentReachIsMonotoneInAdopterSetHere) {
  const auto net = test::small_internet(250, 8);
  SimConfig cfg;
  cfg.theta = 0.05;
  cfg.threads = 1;
  const auto top5 = select_adopters(net, AdopterStrategy::TopDegreeIsps, 5, 1);
  const auto top1 = std::vector<topo::AsId>(top5.begin(), top5.begin() + 1);
  const auto reach1 = deployment_reach(net.graph, top1, cfg);
  const auto reach5 = deployment_reach(net.graph, top5, cfg);
  EXPECT_GE(reach5, reach1);
  EXPECT_GE(reach1, 1u);
}

TEST(Adopters, GreedyNeverWorseThanSingleBest) {
  const auto net = test::small_internet(150, 21);
  SimConfig cfg;
  cfg.theta = 0.05;
  cfg.threads = 1;
  const auto candidates = topo::top_degree_isps(net.graph, 6);
  const auto greedy = greedy_adopters(net.graph, candidates, 2, cfg);
  ASSERT_EQ(greedy.size(), 2u);
  std::size_t best_single = 0;
  for (const auto c : candidates) {
    best_single = std::max(
        best_single, deployment_reach(net.graph, std::vector<topo::AsId>{c}, cfg));
  }
  EXPECT_GE(deployment_reach(net.graph, greedy, cfg), best_single);
}

TEST(Adopters, BruteForceEnumeratesAllCombinations) {
  const auto net = test::small_internet(120, 33);
  SimConfig cfg;
  cfg.theta = 0.05;
  cfg.threads = 1;
  const auto candidates = topo::top_degree_isps(net.graph, 5);
  const auto best = optimal_adopters_bruteforce(net.graph, candidates, 2, cfg);
  ASSERT_EQ(best.size(), 2u);
  const auto best_reach = deployment_reach(net.graph, best, cfg);
  // No pair can beat the brute-force optimum.
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    for (std::size_t j = i + 1; j < candidates.size(); ++j) {
      EXPECT_GE(best_reach,
                deployment_reach(
                    net.graph, std::vector<topo::AsId>{candidates[i], candidates[j]},
                    cfg));
    }
  }
  EXPECT_TRUE(optimal_adopters_bruteforce(net.graph, candidates, 0, cfg).empty());
}

}  // namespace
}  // namespace sbgp::core
