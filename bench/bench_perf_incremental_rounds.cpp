// Performance bench for the incremental dirty-destination round engine:
// runs a deployment cascade on the default synthetic Internet under the
// full per-round recompute and under SimConfig::incremental, asserts the
// results are identical, and reports the end-to-end wall-clock speedup
// (the acceptance bar is >= 2x). A final run in --check-incremental mode
// re-verifies every cached bundle against a lockstep full recompute and
// reports zero divergences.
//
// The default scenario is the Section 6.7 / Figure 11 regime in which
// simplex stubs do NOT break ties, seeded by the 2 top-degree ISPs at
// theta = 5% — a long (~9 round) cascade whose churn stays confined to the
// deployers' customer cones, which is the workload the dirty-destination
// engine targets. Under the paper's default stub tie-breaking
// (--stub-ties), every newly simplex-secured stub genuinely perturbs
// almost every secure destination's tree, the dirty set saturates, and
// both engines honestly converge to similar cost — measure it, but don't
// gate on it (see EXPERIMENTS.md).
//
//   bench_perf_incremental_rounds [--nodes N] [--seed S] [--threads T]
//                                 [--reps K] [--theta X] [--top K]
//                                 [--stub-ties] [--incoming] [--turnoff]
#include <chrono>
#include <iomanip>

#include "bench_common.h"
#include "stats/table.h"

namespace {

using Clock = std::chrono::steady_clock;

double run_seconds(const sbgp::topo::Internet& net,
                   const sbgp::core::SimConfig& cfg,
                   const sbgp::core::DeploymentState& init, int reps,
                   sbgp::core::SimResult& out) {
  double best = 1e100;  // best-of-reps: robust against scheduler noise
  for (int r = 0; r < reps; ++r) {
    sbgp::core::DeploymentSimulator sim(net.graph, cfg);
    const auto t0 = Clock::now();
    out = sim.run(init);
    const auto t1 = Clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sbgp;
  // --reps / --theta / --top etc. are bench-local; strip before the common
  // parser. Defaults = the Figure 11 stub-tiebreak-off cascade (see header).
  int reps = 3;
  double theta = 0.05;
  std::size_t top = 2;  // 0 = case-study adopters (5 CPs + 5 top ISPs)
  bool incoming = false;
  bool turnoff = false;
  bool stub_ties = false;
  std::vector<char*> args{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--reps" && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::string(argv[i]) == "--theta" && i + 1 < argc) {
      theta = std::atof(argv[++i]);
    } else if (std::string(argv[i]) == "--top" && i + 1 < argc) {
      top = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::string(argv[i]) == "--incoming") {
      incoming = true;
    } else if (std::string(argv[i]) == "--turnoff") {
      turnoff = true;
    } else if (std::string(argv[i]) == "--stub-ties") {
      stub_ties = true;
    } else if (std::string(argv[i]) == "--no-stub-ties") {
      stub_ties = false;
    } else {
      args.push_back(argv[i]);
    }
  }
  const auto opt =
      bench::parse_options(static_cast<int>(args.size()), args.data());
  bench::print_header("perf - incremental vs full round engine", opt);

  auto net = bench::make_internet(opt);
  const auto adopters =
      top > 0 ? core::select_adopters(net, core::AdopterStrategy::TopDegreeIsps,
                                      top, /*seed=*/1)
              : bench::case_study_adopters(net);
  const auto init = core::DeploymentState::initial(net.graph, adopters);
  core::SimConfig cfg = bench::case_study_config(opt);
  cfg.theta = theta;
  if (incoming) cfg.model = core::UtilityModel::Incoming;
  if (turnoff) cfg.allow_turn_off = true;
  cfg.stub_breaks_ties = stub_ties;

  core::SimResult full, fast;
  cfg.incremental = false;
  const double full_s = run_seconds(net, cfg, init, reps, full);
  cfg.incremental = true;
  const double fast_s = run_seconds(net, cfg, init, reps, fast);

  // Equal results, not just equal timings: the engines must agree exactly.
  bool same = full.outcome == fast.outcome &&
              full.rounds_run() == fast.rounds_run() &&
              full.final_state.flags() == fast.final_state.flags() &&
              full.final_utility == fast.final_utility;

  stats::Table t({"round", "recomputed (incremental)", "recomputed (full)",
                  "new ISPs"});
  for (std::size_t r = 0; r < fast.rounds.size(); ++r) {
    t.begin_row();
    t.add(fast.rounds[r].round);
    t.add(fast.rounds[r].recomputed_destinations);
    t.add(full.rounds[r].recomputed_destinations);
    t.add(fast.rounds[r].newly_secure_isps);
  }
  t.print(std::cout);

  // Differential pass: lockstep full recompute over every round; any cached
  // bundle that differs from a fresh one throws IncrementalDivergence.
  std::size_t divergences = 0;
  cfg.check_incremental = true;
  try {
    core::DeploymentSimulator checked(net.graph, cfg);
    (void)checked.run(init);
  } catch (const core::IncrementalDivergence& e) {
    ++divergences;
    std::cout << "DIVERGENCE: " << e.what() << "\n";
  }

  const double speedup = fast_s > 0 ? full_s / fast_s : 0.0;
  std::cout << std::fixed << std::setprecision(3) << "\nfull engine:        "
            << full_s << " s\nincremental engine: " << fast_s
            << " s\nspeedup:            " << std::setprecision(2) << speedup
            << "x (best of " << reps << " reps, " << fast.rounds_run()
            << " rounds)\nresults identical:  " << (same ? "yes" : "NO")
            << "\ndivergences (check-incremental): " << divergences << "\n";
  bench::print_paper_note(
      "Appendix C: full recompute is O(N) trees per round regardless of "
      "churn; the incremental engine's per-round cost tracks the dirty set, "
      "so the end-to-end run should be >= 2x faster at identical results.");

  {
    bench::JsonOut json(opt);
    json.add("incremental_rounds/full_engine", full_s, "s");
    json.add("incremental_rounds/incremental_engine", fast_s, "s");
    json.add("incremental_rounds/speedup", speedup, "x");
  }

  if (!same || divergences != 0) return 1;
  return speedup >= 2.0 ? 0 : 1;
}
