// Figure 10 / Section 6.6: the distribution of tiebreak-set sizes across all
// (source, destination) pairs — the amount of competition available to the
// SecP criterion. State-independent (Observation C.1).
#include "bench_common.h"
#include "core/analysis.h"
#include "stats/table.h"

int main(int argc, char** argv) {
  using namespace sbgp;
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header("Figure 10 - tiebreak-set size distribution", opt);

  auto net = bench::make_internet(opt);
  par::ThreadPool pool(opt.threads);
  const auto dist = core::tiebreak_distribution(net.graph, pool);

  stats::Table t({"tiebreak size", "all pairs", "ISP sources", "stub sources"});
  for (const auto& [size, count] : dist.all.bins()) {
    if (size > 12) break;  // long tail, log-log in the paper
    t.begin_row();
    t.add(static_cast<long long>(size));
    t.add(static_cast<unsigned long long>(count));
    t.add(static_cast<unsigned long long>(dist.isp.count(size)));
    t.add(static_cast<unsigned long long>(dist.stub.count(size)));
  }
  t.print(std::cout);

  std::cout << "\nmean tiebreak-set size: all " << dist.all.mean() << ", ISPs "
            << dist.isp.mean() << ", stubs " << dist.stub.mean() << "\n";
  std::cout << "fraction of sets with >1 path: all "
            << 100.0 * dist.all.fraction_greater(1) << "%, ISPs "
            << 100.0 * dist.isp.fraction_greater(1) << "%, stubs "
            << 100.0 * dist.stub.fraction_greater(1) << "%\n";
  std::cout << "=> security need only affect ~"
            << 100.0 * 0.15 * dist.isp.fraction_greater(1)
            << "% of routing decisions (15% ISPs x contested ISP tiebreaks, "
               "Section 6.7)\n";
  bench::print_paper_note(
      "tiebreak sets are tiny: mean 1.30 for ISPs, 1.16 for stubs, ~1.18 "
      "overall; only 20% of sets have more than one path; security need "
      "only affect ~3.5% of routing decisions.");
  return 0;
}
