file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_projected_vs_actual.dir/bench_fig5_projected_vs_actual.cpp.o"
  "CMakeFiles/bench_fig5_projected_vs_actual.dir/bench_fig5_projected_vs_actual.cpp.o.d"
  "bench_fig5_projected_vs_actual"
  "bench_fig5_projected_vs_actual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_projected_vs_actual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
