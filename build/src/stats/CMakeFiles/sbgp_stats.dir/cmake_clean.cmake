file(REMOVE_RECURSE
  "CMakeFiles/sbgp_stats.dir/histogram.cpp.o"
  "CMakeFiles/sbgp_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/sbgp_stats.dir/table.cpp.o"
  "CMakeFiles/sbgp_stats.dir/table.cpp.o.d"
  "libsbgp_stats.a"
  "libsbgp_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbgp_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
