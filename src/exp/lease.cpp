#include "exp/lease.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <system_error>

namespace sbgp::exp {

namespace fs = std::filesystem;

double system_now_s() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

Json LeaseInfo::to_json() const {
  Json j = Json::object();
  j.set("shard", Json::string(shard));
  j.set("worker", Json::string(worker));
  j.set("claimed_s", Json::number(claimed_s));
  j.set("beat_s", Json::number(beat_s));
  j.set("beats", Json::number(beats));
  return j;
}

LeaseInfo LeaseInfo::from_json(const Json& j) {
  LeaseInfo info;
  if (const Json* v = j.find("shard")) info.shard = v->as_string();
  if (const Json* v = j.find("worker")) info.worker = v->as_string();
  if (const Json* v = j.find("claimed_s")) info.claimed_s = v->as_double();
  if (const Json* v = j.find("beat_s")) info.beat_s = v->as_double();
  if (const Json* v = j.find("beats")) info.beats = v->as_u64();
  if (info.shard.empty() || info.worker.empty()) {
    throw JsonError("lease missing shard/worker");
  }
  return info;
}

namespace {

/// Writes `content` to a brand-new `path` and fsyncs it. Returns false when
/// the file cannot be created.
bool write_new_file_synced(const std::string& path, const std::string& content) {
  const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd < 0) return false;
  const char* p = content.data();
  std::size_t left = content.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(path.c_str());
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  ::fsync(fd);
  ::close(fd);
  return true;
}

/// Best-effort directory fsync so renames/links/unlinks are durable.
void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

/// Unique-per-caller temp name in the same directory as `path` (rename and
/// link need same-filesystem sources). PID + address of a local makes the
/// name collision-free across processes and threads without a clock.
std::string temp_sibling(const std::string& path) {
  static thread_local std::uint64_t seq = 0;
  const fs::path p(path);
  return (p.parent_path() /
          (".tmp." + std::to_string(::getpid()) + "." +
           std::to_string(reinterpret_cast<std::uintptr_t>(&seq)) + "." +
           std::to_string(++seq) + "." + p.filename().string()))
      .string();
}

}  // namespace

void write_file_durable(const std::string& path, const std::string& content) {
  const std::string tmp = temp_sibling(path);
  if (!write_new_file_synced(tmp, content)) {
    throw std::runtime_error("cannot write '" + tmp + "': " +
                             std::strerror(errno));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    throw std::runtime_error("cannot rename '" + tmp + "' to '" + path +
                             "': " + std::strerror(err));
  }
  fsync_dir(fs::path(path).parent_path().string());
}

std::optional<std::string> read_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return std::nullopt;
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return std::nullopt;
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

LeaseDir::LeaseDir(std::string dir, NowFn now)
    : dir_(std::move(dir)), now_(now ? std::move(now) : NowFn(&system_now_s)) {}

std::string LeaseDir::lease_path(const std::string& shard_id) const {
  return dir_ + "/" + shard_id + ".lease";
}

bool LeaseDir::try_claim(const std::string& shard_id,
                         const std::string& worker_id) {
  LeaseInfo info;
  info.shard = shard_id;
  info.worker = worker_id;
  info.claimed_s = info.beat_s = now_();
  info.beats = 0;

  // Publish fully-written-and-fsync'd content under an exclusive name:
  // link(2) is atomic and fails with EEXIST when someone else already holds
  // the lease, so contenders never observe a partially written winner.
  const std::string target = lease_path(shard_id);
  const std::string tmp = temp_sibling(target);
  if (!write_new_file_synced(tmp, info.to_json().dump() + "\n")) {
    throw std::runtime_error("cannot write lease temp '" + tmp + "': " +
                             std::strerror(errno));
  }
  const bool won = ::link(tmp.c_str(), target.c_str()) == 0;
  ::unlink(tmp.c_str());
  if (won) fsync_dir(dir_);
  return won;
}

bool LeaseDir::heartbeat(const std::string& shard_id,
                         const std::string& worker_id) {
  const auto current = read(shard_id);
  if (!current.has_value() || current->worker != worker_id) {
    return false;  // reaped (or stolen outright) from under the holder
  }
  LeaseInfo next = *current;
  next.beat_s = now_();
  next.beats += 1;
  // Atomic replace: a reader sees the old heartbeat or the new one, never a
  // torn file.
  write_file_durable(lease_path(shard_id), next.to_json().dump() + "\n");
  return true;
}

void LeaseDir::release(const std::string& shard_id,
                       const std::string& worker_id) {
  const auto info = read(shard_id);
  if (!info.has_value() || info->worker != worker_id) return;
  ::unlink(lease_path(shard_id).c_str());
  fsync_dir(dir_);
}

void LeaseDir::force_release(const std::string& shard_id) {
  ::unlink(lease_path(shard_id).c_str());
  fsync_dir(dir_);
}

std::optional<LeaseInfo> LeaseDir::read(const std::string& shard_id) const {
  const auto text = read_file(lease_path(shard_id));
  if (!text.has_value()) return std::nullopt;
  try {
    return LeaseInfo::from_json(Json::parse(*text));
  } catch (const JsonError&) {
    return std::nullopt;
  }
}

bool LeaseDir::held(const std::string& shard_id) const {
  std::error_code ec;
  return fs::exists(lease_path(shard_id), ec);
}

bool LeaseDir::reap_if_expired(const std::string& shard_id, double ttl_s) {
  const auto info = read(shard_id);
  if (!info.has_value()) return false;
  if (!info->expired(now_(), ttl_s)) return false;
  // Unconditional unlink: between read and unlink the holder may have
  // beaten once more, but a holder that close to the TTL edge also treats a
  // failed next heartbeat as "abandon the shard", so the race only ever
  // causes duplicate work (reconciled at merge), never lost work.
  ::unlink(lease_path(shard_id).c_str());
  fsync_dir(dir_);
  return true;
}

std::vector<LeaseInfo> LeaseDir::list() const {
  std::vector<LeaseInfo> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() < 6 || name.substr(name.size() - 6) != ".lease") continue;
    const auto info = read(name.substr(0, name.size() - 6));
    if (info.has_value()) out.push_back(*info);
  }
  std::sort(out.begin(), out.end(),
            [](const LeaseInfo& a, const LeaseInfo& b) { return a.shard < b.shard; });
  return out;
}

}  // namespace sbgp::exp
