// The fast routing tree algorithm of Appendix C.2: given a destination's
// static RIB and a deployment state S, resolve the SecP + TB steps of route
// selection for every AS, producing the routing tree rooted at the
// destination, per-node "fully secure path" flags, and subtree traffic
// weights — the inputs to both utility models (Section 3.3).
#pragma once

#include <cstdint>
#include <vector>

#include "routing/arena.h"
#include "routing/rib.h"
#include "routing/secure_state.h"
#include "topology/as_graph.h"

namespace sbgp::rt {

/// A view of the security state used during route selection. Supports the
/// two hypothetical flips the simulator projects (Eq. 3) without copying
/// the state vector:
///  - `flip_on`:  an insecure ISP turning S*BGP on, which simultaneously
///    simplex-secures all its insecure stub customers (Section 2.3);
///  - `flip_off`: a secure AS turning S*BGP off (its stubs stay simplex-
///    secure: signing/certification is an offline, sticky act).
struct SecurityView {
  const AsGraph* graph = nullptr;
  const std::uint8_t* base = nullptr;  ///< base secure flags, size num_nodes
  AsId flip_on = kNoAs;
  AsId flip_off = kNoAs;
  /// Do simplex stubs apply the SecP tie-break (Section 6.7)?
  bool stub_breaks_ties = true;
  /// Optional freeze flags (see SimConfig::frozen): frozen stubs are not
  /// simplex-secured by a hypothetical flip_on.
  const std::uint8_t* frozen = nullptr;
  /// Optional per-destination suppression (Section 7.1, "turning off a
  /// destination"): nodes flagged here behave as insecure *for the current
  /// destination only* (they propagate plain BGP announcements for it).
  const std::uint8_t* suppressed = nullptr;
  /// Evaluates the view as if this one node were NOT suppressed (the
  /// projection counterpart of flip_off for per-destination dynamics).
  AsId unsuppress = kNoAs;
  /// Optional per-link deployment (Section 8.3 / Theorem 8.2): node n
  /// signs/validates only on links in the set. A hop contributes to a fully
  /// secure path only if BOTH endpoints enabled it ("deployment entails
  /// both signing and verification", Appendix J). Null = all links enabled.
  const LinkSet* enabled_links = nullptr;
  /// Optional precomputed "x is a stub customer of flip_on" mask (size
  /// num_nodes). Replaces the per-query binary search over each stub's
  /// provider list — worth setting up once per hypothetical flip when a
  /// whole tree is evaluated under it. Frozen stubs are filtered by the
  /// frozen check regardless.
  const std::uint8_t* flip_on_stubs = nullptr;

  /// Is the hop between adjacent ASes `a` and `b` cryptographically active?
  [[nodiscard]] bool hop_secure(AsId a, AsId b) const {
    return enabled_links == nullptr || enabled_links->hop_enabled(a, b);
  }

  /// Is `x` secure under this view?
  [[nodiscard]] bool is_secure(AsId x) const {
    if (x == flip_off) return false;
    if (suppressed != nullptr && x != unsuppress && suppressed[x] != 0) {
      return false;
    }
    if (base[x] != 0) return true;
    if (flip_on == kNoAs) return false;
    if (x == flip_on) return true;
    if (frozen != nullptr && frozen[x] != 0) return false;
    if (flip_on_stubs != nullptr) return flip_on_stubs[x] != 0;
    // providers() is sorted after finalize(); one shared branchless probe
    // answers "is x a stub customer of the flipping ISP".
    return graph->is_stub(x) &&
           topo::sorted_contains(graph->providers(x), flip_on);
  }

  /// Does `x` apply the SecP criterion when selecting among its tiebreak set?
  [[nodiscard]] bool applies_secp(AsId x) const {
    if (!is_secure(x)) return false;
    return stub_breaks_ties || !graph->is_stub(x);
  }
};

/// Intradomain tie-break policy (the TB step of Appendix A). The paper uses
/// a pairwise hash H(a,b); the hardness-gadget constructions (Appendices
/// E–K) instead assume "lowest AS number wins", optionally with per-node
/// rank overrides ("never break ties in favour of routes through x").
struct TieBreakPolicy {
  enum class Mode : std::uint8_t { PairwiseHash, Rank };
  Mode mode = Mode::PairwiseHash;
  /// Rank mode: candidate with the smallest rank wins; defaults to the AS
  /// number when `rank` is null.
  const std::vector<std::uint64_t>* rank = nullptr;

  /// Key of candidate next-hop `j` as evaluated by node `i`; lowest wins.
  [[nodiscard]] std::uint64_t key(AsId i, AsId j, const AsGraph& graph) const;
};

/// Output of one routing-tree computation. Reused across calls.
struct RoutingTree {
  AsId dest = kNoAs;
  std::vector<AsId> next_hop;           ///< parent pointer; kNoAs for dest/unreachable
  std::vector<std::uint8_t> path_secure;  ///< chosen route is fully secure
  std::vector<double> subtree_weight;   ///< weight of the subtree rooted at n, incl. w_n
  /// Marks nodes that have at least one tiebreak candidate with a fully
  /// secure path — the set "P" used by the Appendix C.4 pruning (an ISP's
  /// flip can only matter for destinations where it, or one of its stubs,
  /// is in this set).
  std::vector<std::uint8_t> has_secure_candidate;
  /// Hijack mode only (rib.impostor != kNoAs): the origin each node's
  /// chosen route actually leads to — rib.dest (legitimate) or
  /// rib.impostor (hijacked). Empty in normal mode.
  std::vector<AsId> origin;
};

/// Reusable tree computer. One instance per thread.
class TreeComputer {
 public:
  explicit TreeComputer(const AsGraph& graph);

  /// Runs the fast routing tree algorithm (O(t*|V|)) for `rib` under a
  /// word-packed secure-state mask — the hot-path entry point. The mask may
  /// be shared read-only across threads (the per-round base mask) or a
  /// per-worker patched flip mask.
  void compute(const RibView& rib, const SecureMask& mask,
               const TieBreakPolicy& tb, RoutingTree& out) const;

  /// Convenience overload: materializes `view` into an internal arena-backed
  /// mask first (O(N), allocation-free in the steady state), then runs the
  /// mask path. Supports the full SecurityView generality (flips, freezes,
  /// per-destination suppression).
  void compute(const RibView& rib, const SecurityView& view,
               const TieBreakPolicy& tb, RoutingTree& out);

  /// Extracts the chosen AS path (src, ..., dest) from a computed tree;
  /// empty when unreachable.
  [[nodiscard]] static std::vector<AsId> extract_path(const RoutingTree& tree, AsId src);

 private:
  const AsGraph& graph_;
  Arena arena_;            ///< backs scratch_mask_; reset-free (same shape every build)
  SecureMask scratch_mask_;
};

/// Builds the trivial per-link mask in which every AS enables S*BGP on all
/// of its links (the SecurityView::enabled_links identity element).
[[nodiscard]] std::vector<std::vector<AsId>> full_link_mask(const AsGraph& graph);

/// Orders every tiebreak set of `rib` ascending by its owner's tie-break
/// key and sets `rib.tb_sorted`. The keys — a pairwise hash or a static
/// rank — are state-independent, so a RIB cached across rounds need only be
/// sorted once; TreeComputer::compute then selects each winner by position
/// (first candidate passing the SecP filter) with no per-candidate hashing.
/// Equal keys (possible in Rank mode) keep their original relative order
/// (stable sort), which is exactly the argmin the hashing path computes —
/// the resulting trees are bitwise identical either way.
void sort_tiebreaks(const AsGraph& graph, const TieBreakPolicy& tb,
                    DestRib& rib);

/// Per-destination utility contributions (Eqs. 1 and 2 of Section 3.3),
/// derived from a routing tree in one pass:
///  - outgoing: if n's chosen route goes via a customer edge (cls ==
///    Customer), n transits subtree_weight[n] - w_n of traffic toward d;
///  - incoming: sum of subtree weights of n's tree children that reach n via
///    one of their provider edges (i.e. they are n's customers).
struct UtilityAccumulator {
  std::vector<double> outgoing;
  std::vector<double> incoming;

  explicit UtilityAccumulator(std::size_t n) : outgoing(n, 0.0), incoming(n, 0.0) {}
  void reset();
  /// Adds the contributions of tree `t` (for destination t.dest) for all
  /// nodes at once.
  void add_tree(const AsGraph& graph, const RibView& rib, const RoutingTree& t);
  /// Merges another accumulator (parallel reduction).
  void merge(const UtilityAccumulator& other);
};

/// Contribution of a single node `n` for one destination tree — used when
/// projecting a flip, where only the flipping ISP's utility is needed.
struct NodeContribution {
  double outgoing = 0.0;
  double incoming = 0.0;
};
[[nodiscard]] NodeContribution node_contribution(const AsGraph& graph,
                                                 const RibView& rib,
                                                 const RoutingTree& tree, AsId n);

// ---------------------------------------------------------------------------
// Per-destination footprint queries for the incremental round engine.
//
// The routing tree for destination d is a function of the deployment state S
// restricted to a small "footprint" of nodes: flipping the secure bit of any
// node OUTSIDE the footprint provably leaves tree(d, S) — and the simulator's
// per-destination evaluation bundle derived from it — unchanged. The core
// lemma (the C.4 pruning argument, applied to the tree instead of a single
// projection): a node y whose bit flips can only perturb the tree if
//  - y has a tiebreak candidate offering a fully secure route (its choice or
//    its own path_secure bit can change; note path_secure[y] = 1 already
//    implies a secure candidate), or
//  - y is the destination itself (path_secure[d] = is_secure(d) needs no
//    candidate).
// The simulator's affected-candidate rules additionally consult the flags of
// ISP providers of secure-candidate stubs (rule 1) and, for a stub
// destination, the flags of its providers (rule 2) — those nodes therefore
// also belong to the footprint even though the tree itself ignores them.

/// Appends every node of `rib.order` whose `has_secure_candidate` bit is set
/// (the set "P" of Appendix C.4) to `out`. Used both for the base tree and
/// for each projected flipped tree.
void append_secure_candidates(const RibView& rib, const RoutingTree& tree,
                              std::vector<AsId>& out);

/// Appends the state-sensitivity footprint of `tree` (for `rib.dest`) to
/// `out`: the secure-candidate set P, the ISP providers of every stub in P
/// (when `stub_breaks_ties` — they gate the stub tie-break rule), the
/// destination itself, and — when the destination is a stub — its providers
/// (they gate the destination-security rule). The caller is responsible for
/// unioning in the secure-candidate sets of any flipped trees it evaluates,
/// then sorting/deduplicating.
void append_dirty_footprint(const AsGraph& graph, const RibView& rib,
                            const RoutingTree& tree, bool stub_breaks_ties,
                            std::vector<AsId>& out);

/// Order-independent fingerprint of a routing tree (FNV-1a over the
/// per-node rows in `rib.order` order: next hop, path-secure bit,
/// subtree-weight bits, secure-candidate bit). Two trees over the same RIB
/// compare equal iff every consumer-visible field matches bit-for-bit; the
/// differential checking layer uses this to detect cached-tree divergence
/// without storing full trees.
[[nodiscard]] std::uint64_t tree_fingerprint(const RibView& rib,
                                             const RoutingTree& tree);

}  // namespace sbgp::rt
