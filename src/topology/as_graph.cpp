#include "topology/as_graph.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace sbgp::topo {

const char* to_string(AsClass c) {
  switch (c) {
    case AsClass::Stub: return "stub";
    case AsClass::Isp: return "isp";
    case AsClass::ContentProvider: return "cp";
  }
  return "?";
}

const char* to_string(Link l) {
  switch (l) {
    case Link::Customer: return "customer";
    case Link::Peer: return "peer";
    case Link::Provider: return "provider";
  }
  return "?";
}

AsId AsGraph::add_as(std::uint32_t asn) {
  if (finalized_) throw std::logic_error("AsGraph: add_as after finalize");
  const AsId id = static_cast<AsId>(asn_.size());
  asn_.push_back(asn);
  build_customers_.emplace_back();
  build_peers_.emplace_back();
  build_providers_.emplace_back();
  weight_.push_back(1.0);
  cp_mark_.push_back(0);
  return id;
}

AsId AsGraph::add_many(std::uint32_t count) {
  // Synthetic AS numbers continue from the current max label.
  std::uint32_t next = 1;
  for (std::uint32_t a : asn_) next = std::max(next, a + 1);
  AsId first = kNoAs;
  for (std::uint32_t i = 0; i < count; ++i) {
    const AsId id = add_as(next++);
    if (first == kNoAs) first = id;
  }
  return first;
}

bool AsGraph::add_edge_checked(AsId a, AsId b) {
  if (finalized_) throw std::logic_error("AsGraph: edge insertion after finalize");
  if (a == b || a >= asn_.size() || b >= asn_.size()) return false;
  Link unused;
  if (link_between(a, b, unused)) return false;  // duplicate edge
  return true;
}

bool AsGraph::add_customer_provider(AsId provider, AsId customer) {
  if (!add_edge_checked(provider, customer)) return false;
  build_customers_[provider].push_back(customer);
  build_providers_[customer].push_back(provider);
  ++cp_edges_;
  return true;
}

bool AsGraph::add_peer(AsId a, AsId b) {
  if (!add_edge_checked(a, b)) return false;
  build_peers_[a].push_back(b);
  build_peers_[b].push_back(a);
  ++peer_edges_;
  return true;
}

void AsGraph::mark_content_provider(AsId as_id) {
  assert(as_id < asn_.size());
  cp_mark_[as_id] = 1;
}

void AsGraph::finalize() {
  if (finalized_) throw std::logic_error("AsGraph: finalize called twice");
  const std::size_t n = asn_.size();
  class_.resize(n);
  n_stubs_ = n_isps_ = n_cps_ = 0;
  for (AsId i = 0; i < n; ++i) {
    if (cp_mark_[i] != 0) {
      class_[i] = AsClass::ContentProvider;
      ++n_cps_;
    } else if (build_customers_[i].empty()) {
      class_[i] = AsClass::Stub;
      ++n_stubs_;
    } else {
      class_[i] = AsClass::Isp;
      ++n_isps_;
    }
  }
  asn_index_.reserve(n);
  for (AsId i = 0; i < n; ++i) asn_index_.emplace_back(asn_[i], i);
  std::sort(asn_index_.begin(), asn_index_.end());

  // Compact the build-phase vectors into the finalized CSR form: one
  // neighbour array with per-node [customers | peers | providers] segments,
  // each sorted ascending. Sorted segments serve two masters — runs become
  // reproducible regardless of generator insertion order, and every
  // membership probe (link_between, the simplex-stub check, LinkSet) is a
  // branchless binary search via sorted_contains.
  adj_begin_.assign(n + 1, 0);
  peer_start_.assign(n, 0);
  prov_start_.assign(n, 0);
  std::size_t total = 0;
  for (AsId i = 0; i < n; ++i) {
    total += build_customers_[i].size() + build_peers_[i].size() +
             build_providers_[i].size();
  }
  adj_.resize(total);
  std::uint32_t at = 0;
  for (AsId i = 0; i < n; ++i) {
    adj_begin_[i] = at;
    auto emit = [&](std::vector<AsId>& v) {
      std::sort(v.begin(), v.end());
      std::copy(v.begin(), v.end(), adj_.begin() + at);
      at += static_cast<std::uint32_t>(v.size());
    };
    emit(build_customers_[i]);
    peer_start_[i] = at;
    emit(build_peers_[i]);
    prov_start_[i] = at;
    emit(build_providers_[i]);
  }
  adj_begin_[n] = at;
  assert(at == total);

  // The nested build vectors are dead weight from here on (the accessors
  // serve spans into adj_); release ~2|E| ids plus 3N vector headers.
  build_customers_.clear();
  build_customers_.shrink_to_fit();
  build_peers_.clear();
  build_peers_.shrink_to_fit();
  build_providers_.clear();
  build_providers_.shrink_to_fit();

  finalized_ = true;
}

AsId AsGraph::find_asn(std::uint32_t asn) const {
  auto it = std::lower_bound(asn_index_.begin(), asn_index_.end(),
                             std::make_pair(asn, AsId{0}));
  if (it != asn_index_.end() && it->first == asn) return it->second;
  return kNoAs;
}

bool AsGraph::link_between(AsId a, AsId b, Link& out) const {
  if (finalized_) {
    if (sorted_contains(customers(a), b)) { out = Link::Customer; return true; }
    if (sorted_contains(peers(a), b)) { out = Link::Peer; return true; }
    if (sorted_contains(providers(a), b)) { out = Link::Provider; return true; }
    return false;
  }
  auto contains = [](const std::vector<AsId>& v, AsId x) {
    return std::find(v.begin(), v.end(), x) != v.end();
  };
  if (contains(build_customers_[a], b)) { out = Link::Customer; return true; }
  if (contains(build_peers_[a], b)) { out = Link::Peer; return true; }
  if (contains(build_providers_[a], b)) { out = Link::Provider; return true; }
  return false;
}

double AsGraph::total_weight() const {
  double sum = 0.0;
  for (double w : weight_) sum += w;
  return sum;
}

std::vector<std::string> AsGraph::validate(bool allow_isolated) const {
  std::vector<std::string> problems;
  if (!finalized_) {
    problems.emplace_back("graph not finalized");
    return problems;
  }
  // GR1: the customer->provider relation must be acyclic. Kahn's algorithm
  // over provider->customer edges.
  std::vector<std::uint32_t> in_deg(num_nodes(), 0);  // number of providers
  for (AsId n = 0; n < num_nodes(); ++n) {
    in_deg[n] = static_cast<std::uint32_t>(providers(n).size());
  }
  std::vector<AsId> queue;
  for (AsId n = 0; n < num_nodes(); ++n) {
    if (in_deg[n] == 0) queue.push_back(n);
  }
  std::size_t visited = 0;
  while (!queue.empty()) {
    const AsId n = queue.back();
    queue.pop_back();
    ++visited;
    for (AsId c : customers(n)) {
      if (--in_deg[c] == 0) queue.push_back(c);
    }
  }
  if (visited != num_nodes()) {
    problems.emplace_back("GR1 violated: customer-provider hierarchy has a cycle");
  }
  // Symmetry of adjacency.
  for (AsId n = 0; n < num_nodes(); ++n) {
    for (AsId c : customers(n)) {
      if (!sorted_contains(providers(c), n)) {
        problems.emplace_back("asymmetric customer-provider edge at AS " +
                              std::to_string(asn_[n]));
      }
    }
    for (AsId p : peers(n)) {
      if (!sorted_contains(peers(p), n)) {
        problems.emplace_back("asymmetric peer edge at AS " + std::to_string(asn_[n]));
      }
    }
    if (!allow_isolated && degree(n) == 0) {
      problems.emplace_back("isolated AS " + std::to_string(asn_[n]));
    }
  }
  return problems;
}

std::vector<AsId> AsGraph::tier_ones() const {
  std::vector<AsId> out;
  for (AsId n = 0; n < num_nodes(); ++n) {
    if (providers(n).empty() && !customers(n).empty()) out.push_back(n);
  }
  return out;
}

std::size_t AsGraph::customer_cone_size(AsId n) const {
  std::vector<std::uint8_t> seen(num_nodes(), 0);
  std::vector<AsId> stack{n};
  seen[n] = 1;
  std::size_t count = 0;
  while (!stack.empty()) {
    const AsId x = stack.back();
    stack.pop_back();
    ++count;
    for (AsId c : customers(x)) {
      if (seen[c] == 0) {
        seen[c] = 1;
        stack.push_back(c);
      }
    }
  }
  return count;
}

double apply_traffic_model(AsGraph& graph, std::span<const AsId> cps, double x) {
  if (x < 0.0 || x >= 1.0) throw std::invalid_argument("traffic fraction x must be in [0,1)");
  const auto n = static_cast<double>(graph.num_nodes());
  const auto k = static_cast<double>(cps.size());
  for (AsId i = 0; i < graph.num_nodes(); ++i) graph.set_weight(i, 1.0);
  if (cps.empty() || x == 0.0) return 1.0;
  const double w_cp = x * (n - k) / (k * (1.0 - x));
  for (AsId cp : cps) graph.set_weight(cp, w_cp);
  return w_cp;
}

}  // namespace sbgp::topo
