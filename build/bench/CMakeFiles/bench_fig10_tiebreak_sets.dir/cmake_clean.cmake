file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_tiebreak_sets.dir/bench_fig10_tiebreak_sets.cpp.o"
  "CMakeFiles/bench_fig10_tiebreak_sets.dir/bench_fig10_tiebreak_sets.cpp.o.d"
  "bench_fig10_tiebreak_sets"
  "bench_fig10_tiebreak_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_tiebreak_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
