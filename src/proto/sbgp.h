// Secure BGP (S-BGP [24]) route attestations: path validation. An AS a_1
// receiving announcement a_1 a_2 ... a_k validates that every AS a_j on the
// path actually sent it. Each secure hop signs (prefix, the path suffix it
// forwarded, the neighbour it forwarded to); a path is *fully* valid only if
// every hop carries a valid attestation — which is why the paper defines a
// path as secure iff every AS on it is secure (Section 2.2.2).
//
// Simplex S-BGP (Section 2.2.1): a stub only signs outgoing announcements
// for its own prefixes and never validates — modelled by the engine calling
// attest() at the stub's origination but never validate_path() at the stub.
#pragma once

#include <cstdint>
#include <vector>

#include "proto/rpki.h"

namespace sbgp::proto {

/// One hop's route attestation: `signer` attests that it forwarded the path
/// suffix starting at itself, for `prefix`, to `recipient`.
struct Attestation {
  std::uint32_t signer = 0;
  std::uint32_t recipient = 0;
  Signature sig = 0;
};

/// The digest `signer` signs when forwarding `path_suffix` (path_suffix[0]
/// == signer, path_suffix.back() == origin) for `prefix` to `recipient`.
[[nodiscard]] Digest attestation_digest(const Prefix& prefix,
                                        const std::vector<std::uint32_t>& path_suffix,
                                        std::uint32_t recipient);

/// Produces `signer`'s attestation for forwarding `path_suffix` to
/// `recipient`. Returns false when the signer holds no RPKI key (an
/// insecure AS cannot attest).
[[nodiscard]] bool attest(const Rpki& rpki, const Prefix& prefix,
                          const std::vector<std::uint32_t>& path_suffix,
                          std::uint32_t recipient, Attestation& out);

/// Validation result for a received path.
struct PathValidation {
  bool fully_valid = false;      ///< every hop attested and verified
  std::size_t valid_hops = 0;    ///< hops with a verifying attestation
  std::size_t total_hops = 0;    ///< hops that were required to attest
  RoaValidity origin = RoaValidity::NotFound;
};

/// Validates an announcement for `prefix` carrying `path` (path[0] = the
/// neighbour that sent it to the validator, path.back() = origin) with the
/// attestations collected along the way. `receiver` is the validating AS.
[[nodiscard]] PathValidation validate_path(const Rpki& rpki, const Prefix& prefix,
                                           const std::vector<std::uint32_t>& path,
                                           std::uint32_t receiver,
                                           const std::vector<Attestation>& attestations);

}  // namespace sbgp::proto
