#include "svc/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <stdexcept>

#include "obs/metrics.h"

namespace sbgp::svc {

namespace {

// Self-pipe glue: the handler may only touch async-signal-safe state, so it
// writes one byte to the active server's pipe. One server per process is the
// supported shape (the CLI runs exactly one); the atomic makes a second
// concurrent run() merely share the shutdown signal instead of racing.
std::atomic<int> g_signal_wfd{-1};

void on_shutdown_signal(int /*signo*/) {
  const int fd = g_signal_wfd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t rc = ::write(fd, &byte, 1);
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw std::runtime_error("svc::Server: fcntl(O_NONBLOCK) failed");
  }
}

/// Installs `handler` for SIGTERM+SIGINT on construction, restores the
/// previous dispositions on destruction (the test binary keeps running
/// after a server stops, so the handlers must not leak).
class SignalGuard {
 public:
  explicit SignalGuard(int pipe_wfd) {
    g_signal_wfd.store(pipe_wfd, std::memory_order_relaxed);
    struct sigaction sa {};
    sa.sa_handler = on_shutdown_signal;
    ::sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;  // no SA_RESTART: poll() must wake with EINTR
    ::sigaction(SIGTERM, &sa, &old_term_);
    ::sigaction(SIGINT, &sa, &old_int_);
  }
  ~SignalGuard() {
    ::sigaction(SIGTERM, &old_term_, nullptr);
    ::sigaction(SIGINT, &old_int_, nullptr);
    g_signal_wfd.store(-1, std::memory_order_relaxed);
  }

 private:
  struct sigaction old_term_ {};
  struct sigaction old_int_ {};
};

}  // namespace

Server::Server(Session& session, ServerConfig cfg)
    : session_(session), cfg_(std::move(cfg)) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (cfg_.socket_path.empty() ||
      cfg_.socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("svc::Server: socket path empty or too long: '" +
                             cfg_.socket_path + "'");
  }
  std::memcpy(addr.sun_path, cfg_.socket_path.c_str(),
              cfg_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("svc::Server: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  ::unlink(cfg_.socket_path.c_str());  // caller owns the path; drop stale file
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("svc::Server: bind('" + cfg_.socket_path +
                             "') failed: " + why);
  }
  if (::listen(listen_fd_, cfg_.backlog) < 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(cfg_.socket_path.c_str());
    throw std::runtime_error("svc::Server: listen() failed: " + why);
  }
  set_nonblocking(listen_fd_);

  int pipefd[2];
  if (::pipe(pipefd) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(cfg_.socket_path.c_str());
    throw std::runtime_error("svc::Server: pipe() failed");
  }
  pipe_r_ = pipefd[0];
  pipe_w_ = pipefd[1];
  set_nonblocking(pipe_r_);
  set_nonblocking(pipe_w_);
}

Server::~Server() {
  for (Client& c : clients_) {
    if (c.fd >= 0) ::close(c.fd);
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(cfg_.socket_path.c_str());
  }
  if (pipe_r_ >= 0) ::close(pipe_r_);
  if (pipe_w_ >= 0) ::close(pipe_w_);
}

void Server::request_stop() { on_shutdown_signal(0); }

bool Server::send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    // MSG_NOSIGNAL: a client closing mid-reply must surface as EPIPE, not
    // kill the daemon with SIGPIPE.
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd p{fd, POLLOUT, 0};
      (void)::poll(&p, 1, 1000);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // peer went away; caller drops the client
  }
  return true;
}

void Server::answer_buffered(Client& c) {
  std::size_t start = 0;
  while (true) {
    const std::size_t nl = c.buf.find('\n', start);
    if (nl == std::string::npos) break;
    const std::string line = c.buf.substr(start, nl - start);
    start = nl + 1;
    if (line.empty() ||
        line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;  // blank keep-alive line
    }
    const std::string reply = session_.handle_line(line) + "\n";
    if (!send_all(c.fd, reply)) {
      start = c.buf.size();
      break;
    }
    if (session_.shutdown_requested()) stopping_ = true;
  }
  c.buf.erase(0, start);
}

bool Server::service_client(Client& c) {
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(c.fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      c.buf.append(chunk, static_cast<std::size_t>(n));
      if (c.buf.size() > cfg_.max_line_bytes) {
        (void)send_all(
            c.fd, "{\"ok\":false,\"error\":\"request line too long\"}\n");
        return false;
      }
      continue;
    }
    if (n == 0) {  // EOF: answer what's buffered, then drop
      answer_buffered(c);
      return false;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }
  answer_buffered(c);
  return true;
}

void Server::close_client(Client& c) {
  if (c.fd >= 0) {
    ::close(c.fd);
    c.fd = -1;
  }
}

int Server::run() {
  static obs::Counter& conn_ctr =
      obs::Registry::global().counter("svc.connections");
  SignalGuard signals(pipe_w_);

  std::vector<pollfd> pfds;
  while (!stopping_) {
    pfds.clear();
    pfds.push_back({pipe_r_, POLLIN, 0});
    pfds.push_back({listen_fd_, POLLIN, 0});
    for (const Client& c : clients_) pfds.push_back({c.fd, POLLIN, 0});

    const int rc = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;  // signal; the pipe byte drives shutdown
      throw std::runtime_error("svc::Server: poll() failed: " +
                               std::string(std::strerror(errno)));
    }

    if ((pfds[0].revents & POLLIN) != 0) {
      char sink[64];
      while (::read(pipe_r_, sink, sizeof(sink)) > 0) {
      }
      stopping_ = true;
    }

    if (!stopping_ && (pfds[1].revents & POLLIN) != 0) {
      while (true) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;  // EAGAIN (or transient error): back to poll
        set_nonblocking(fd);
        clients_.push_back({fd, {}});
        conn_ctr.add(1);
      }
    }

    // Service readable clients; compact the closed ones afterwards. pfds
    // entry i+2 corresponds to clients_[i] (clients_ only grows above, and
    // appends don't invalidate the correspondence for existing entries).
    const std::size_t served = pfds.size() - 2;
    for (std::size_t i = 0; i < served && i < clients_.size(); ++i) {
      const short ev = pfds[i + 2].revents;
      if (ev == 0) continue;
      Client& c = clients_[i];
      if ((ev & (POLLERR | POLLNVAL)) != 0 || !service_client(c)) {
        close_client(c);
      }
      if (stopping_) break;
    }
    std::erase_if(clients_, [](const Client& c) { return c.fd < 0; });
  }

  // Graceful drain: no new connections, but every complete request line a
  // client already sent gets its answer before the socket disappears.
  ::close(listen_fd_);
  ::unlink(cfg_.socket_path.c_str());
  listen_fd_ = -1;
  for (Client& c : clients_) {
    char chunk[4096];
    while (true) {
      const ssize_t n = ::recv(c.fd, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      c.buf.append(chunk, static_cast<std::size_t>(n));
    }
    answer_buffered(c);
    close_client(c);
  }
  clients_.clear();
  return 0;
}

}  // namespace sbgp::svc
