file(REMOVE_RECURSE
  "CMakeFiles/sbgp_topology.dir/as_graph.cpp.o"
  "CMakeFiles/sbgp_topology.dir/as_graph.cpp.o.d"
  "CMakeFiles/sbgp_topology.dir/graph_io.cpp.o"
  "CMakeFiles/sbgp_topology.dir/graph_io.cpp.o.d"
  "CMakeFiles/sbgp_topology.dir/graph_stats.cpp.o"
  "CMakeFiles/sbgp_topology.dir/graph_stats.cpp.o.d"
  "CMakeFiles/sbgp_topology.dir/topology_gen.cpp.o"
  "CMakeFiles/sbgp_topology.dir/topology_gen.cpp.o.d"
  "libsbgp_topology.a"
  "libsbgp_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbgp_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
