file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_per_link.dir/bench_ablation_per_link.cpp.o"
  "CMakeFiles/bench_ablation_per_link.dir/bench_ablation_per_link.cpp.o.d"
  "bench_ablation_per_link"
  "bench_ablation_per_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_per_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
