// Secure Origin BGP (soBGP [43]): topology validation. Neighbouring ASes
// mutually authenticate a certificate for the existence of the link between
// them; a receiver validates that an announced path physically exists by
// checking every consecutive link against the certificate database. Simplex
// soBGP (Section 2.2.1) is entirely offline: a stub certifies its links
// once and never validates.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "proto/rpki.h"

namespace sbgp::proto {

/// The shared soBGP certificate database. Link certificates require
/// signatures from *both* endpoints (mutual authentication), so only links
/// between two RPKI-registered ("secure") ASes can be certified.
class SoBgpDatabase {
 public:
  explicit SoBgpDatabase(const Rpki& rpki) : rpki_(&rpki) {}

  /// Attempts to install a mutually-signed certificate for link (a, b).
  /// Returns false when either endpoint lacks RPKI keys.
  bool certify_link(std::uint32_t a, std::uint32_t b);

  [[nodiscard]] bool link_certified(std::uint32_t a, std::uint32_t b) const;

  /// Topology validation: every consecutive link of `path` is certified.
  /// A single-AS path (the origin itself) is trivially plausible if the
  /// origin is registered.
  [[nodiscard]] bool path_plausible(const std::vector<std::uint32_t>& path) const;

  [[nodiscard]] std::size_t num_certificates() const { return links_.size(); }

 private:
  static std::uint64_t link_key(std::uint32_t a, std::uint32_t b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  const Rpki* rpki_;
  std::unordered_set<std::uint64_t> links_;
};

}  // namespace sbgp::proto
