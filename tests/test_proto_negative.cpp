// Negative-path cryptographic tests: tampered, replayed, mis-bound and
// stripped attestations must all fail validation — the guarantees S-BGP's
// path validation actually rests on.
#include <gtest/gtest.h>

#include "proto/sbgp.h"
#include "proto/sobgp.h"

namespace sbgp::proto {
namespace {

struct Fixture {
  Rpki rpki;
  Prefix prefix = Prefix::for_asn(3);
  std::vector<Attestation> atts;  // valid chain 1 <- 2 <- 3 for receiver 99

  Fixture() {
    for (const std::uint32_t asn : {1u, 2u, 3u}) rpki.register_as(asn);
    rpki.add_roa(3, prefix);
    Attestation a;
    EXPECT_TRUE(attest(rpki, prefix, {3}, 2, a));
    atts.push_back(a);
    EXPECT_TRUE(attest(rpki, prefix, {2, 3}, 1, a));
    atts.push_back(a);
    EXPECT_TRUE(attest(rpki, prefix, {1, 2, 3}, 99, a));
    atts.push_back(a);
  }
};

TEST(SBgpNegative, BaselineChainIsValid) {
  Fixture f;
  EXPECT_TRUE(validate_path(f.rpki, f.prefix, {1, 2, 3}, 99, f.atts).fully_valid);
}

TEST(SBgpNegative, BitFlippedSignatureFails) {
  Fixture f;
  f.atts[1].sig ^= 1;
  const auto v = validate_path(f.rpki, f.prefix, {1, 2, 3}, 99, f.atts);
  EXPECT_FALSE(v.fully_valid);
  EXPECT_EQ(v.valid_hops, 2u);
}

TEST(SBgpNegative, AttestationBoundToRecipient) {
  // Replaying AS1's attestation (made out to 99) toward receiver 77 fails:
  // the recipient is part of the signed digest, which is what stops an AS
  // from forwarding an announcement it received to neighbours the sender
  // never addressed.
  Fixture f;
  const auto v = validate_path(f.rpki, f.prefix, {1, 2, 3}, 77, f.atts);
  EXPECT_FALSE(v.fully_valid);
  EXPECT_EQ(v.valid_hops, 2u) << "only the final hop binding breaks";
}

TEST(SBgpNegative, AttestationBoundToPrefix) {
  Fixture f;
  const Prefix other = Prefix::for_asn(4);
  f.rpki.add_roa(3, other);
  const auto v = validate_path(f.rpki, other, {1, 2, 3}, 99, f.atts);
  EXPECT_FALSE(v.fully_valid);
  EXPECT_EQ(v.valid_hops, 0u) << "every digest covers the prefix";
}

TEST(SBgpNegative, InsertedHopFails) {
  // Splicing an extra AS into the path invalidates every suffix binding.
  Fixture f;
  const auto v = validate_path(f.rpki, f.prefix, {1, 5, 2, 3}, 99, f.atts);
  EXPECT_FALSE(v.fully_valid);
  EXPECT_EQ(v.valid_hops, 1u) << "only the origin's (3) binding survives";
}

TEST(SBgpNegative, StrippedAttestationIsJustMissing) {
  Fixture f;
  f.atts.erase(f.atts.begin());  // drop the origin's attestation
  const auto v = validate_path(f.rpki, f.prefix, {1, 2, 3}, 99, f.atts);
  EXPECT_FALSE(v.fully_valid);
  EXPECT_EQ(v.valid_hops, 2u);
}

TEST(SBgpNegative, WrongOriginIsCaughtByRoa) {
  // A fully signed chain whose origin is not ROA-authorised still fails
  // (RPKI origin validation is part of fully_valid).
  Rpki rpki;
  for (const std::uint32_t asn : {7u, 8u}) rpki.register_as(asn);
  const Prefix victim = Prefix::for_asn(42);
  rpki.add_roa(42, victim);  // 42 holds the ROA but is not on the path
  rpki.register_as(42);
  std::vector<Attestation> atts;
  Attestation a;
  ASSERT_TRUE(attest(rpki, victim, {8}, 7, a));  // 8 originates 42's prefix!
  atts.push_back(a);
  ASSERT_TRUE(attest(rpki, victim, {7, 8}, 99, a));
  atts.push_back(a);
  const auto v = validate_path(rpki, victim, {7, 8}, 99, atts);
  EXPECT_EQ(v.valid_hops, 2u) << "signatures themselves verify";
  EXPECT_EQ(v.origin, RoaValidity::Invalid);
  EXPECT_FALSE(v.fully_valid) << "... but origin validation rejects the hijack";
}

TEST(SoBgpNegative, UncertifiedMiddleLinkBreaksPlausibility) {
  Rpki rpki;
  for (const std::uint32_t asn : {1u, 2u, 3u, 4u}) rpki.register_as(asn);
  SoBgpDatabase db(rpki);
  ASSERT_TRUE(db.certify_link(1, 2));
  ASSERT_TRUE(db.certify_link(3, 4));
  EXPECT_FALSE(db.path_plausible({1, 2, 3, 4})) << "2-3 never certified";
  ASSERT_TRUE(db.certify_link(2, 3));
  EXPECT_TRUE(db.path_plausible({1, 2, 3, 4}));
  EXPECT_EQ(db.num_certificates(), 3u);
}

TEST(SoBgpNegative, CertificationIsIdempotent) {
  Rpki rpki;
  rpki.register_as(1);
  rpki.register_as(2);
  SoBgpDatabase db(rpki);
  EXPECT_TRUE(db.certify_link(1, 2));
  EXPECT_TRUE(db.certify_link(2, 1));  // same undirected link
  EXPECT_EQ(db.num_certificates(), 1u);
}

}  // namespace
}  // namespace sbgp::proto
