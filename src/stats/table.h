// Fixed-width console table printer used by every bench harness to emit the
// rows/series the paper reports.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace sbgp::stats {

/// Alignment of a single table column.
enum class Align { Left, Right };

/// A simple fixed-width text table. Columns are declared up front; cells are
/// added row by row and may be strings or numbers. `print` right-pads every
/// column to the widest cell and emits a header rule, producing output that
/// is stable under diffing (used by EXPERIMENTS.md snippets).
class Table {
 public:
  /// Creates a table with the given column headers, all right-aligned except
  /// the first column which is left-aligned (the common layout for the
  /// paper's tables: a label column followed by numeric columns).
  explicit Table(std::vector<std::string> headers);

  /// Overrides the alignment of column `col`.
  void set_align(std::size_t col, Align align);

  /// Starts a new row. Cells are appended with `add`.
  void begin_row();

  /// Appends a preformatted cell to the current row.
  void add(std::string cell);
  /// Appends an integral cell.
  void add(long long value);
  void add(unsigned long long value);
  void add(int value);
  void add(std::size_t value);
  /// Appends a floating-point cell with `precision` digits after the point.
  void add(double value, int precision = 3);
  /// Appends a percentage cell rendered as e.g. "12.3%".
  void add_percent(double fraction, int precision = 1);

  /// Number of complete rows added so far.
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Sorts completed rows lexicographically (first column, then second, …).
  /// Used to emit canonical order-independent output when rows were produced
  /// by concurrent workers in completion order (e.g. when comparing the
  /// result sets of sharded vs serial sweeps).
  void sort_rows();

  /// Renders the table to `os`.
  void print(std::ostream& os) const;

  /// Renders the table as CSV (no padding) to `os`.
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> current_;
  bool in_row_ = false;
};

}  // namespace sbgp::stats
