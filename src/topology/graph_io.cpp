#include "topology/graph_io.h"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace sbgp::topo {

namespace {

[[noreturn]] void parse_error(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("as-rel parse error at line " + std::to_string(line_no) +
                           ": " + what);
}

std::uint32_t parse_u32(std::string_view token, std::size_t line_no) {
  std::uint32_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    parse_error(line_no, "bad AS number '" + std::string(token) + "'");
  }
  return value;
}

}  // namespace

AsGraph read_as_rel(std::istream& in) {
  AsGraph graph;
  std::unordered_map<std::uint32_t, AsId> ids;
  auto intern = [&](std::uint32_t asn) {
    auto [it, inserted] = ids.try_emplace(asn, AsId{0});
    if (inserted) it->second = graph.add_as(asn);
    return it->second;
  };

  std::vector<std::uint32_t> cps;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Tolerate CRLF line endings (as-rel files exported on Windows or
    // fetched over HTTP): std::getline strips only the '\n'.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '#') {
      constexpr std::string_view kCpPrefix = "# cp: ";
      if (line.rfind(kCpPrefix, 0) == 0) {
        cps.push_back(parse_u32(std::string_view(line).substr(kCpPrefix.size()), line_no));
      }
      continue;
    }
    std::string_view sv(line);
    const auto p1 = sv.find('|');
    const auto p2 = p1 == std::string_view::npos ? p1 : sv.find('|', p1 + 1);
    if (p2 == std::string_view::npos) parse_error(line_no, "expected a|b|rel");
    const std::uint32_t a = parse_u32(sv.substr(0, p1), line_no);
    const std::uint32_t b = parse_u32(sv.substr(p1 + 1, p2 - p1 - 1), line_no);
    const std::string_view rel = sv.substr(p2 + 1);
    if (a == b) {
      parse_error(line_no, "self-loop " + std::to_string(a) + "|" +
                               std::to_string(b));
    }
    const AsId ia = intern(a);
    const AsId ib = intern(b);
    bool ok = false;
    if (rel == "-1") {
      ok = graph.add_customer_provider(ia, ib);
    } else if (rel == "0") {
      ok = graph.add_peer(ia, ib);
    } else {
      parse_error(line_no, "unknown relationship '" + std::string(rel) + "'");
    }
    if (!ok) {
      parse_error(line_no, "duplicate edge " + std::to_string(a) + "|" +
                               std::to_string(b));
    }
  }
  for (std::uint32_t asn : cps) {
    auto it = ids.find(asn);
    if (it == ids.end()) {
      throw std::runtime_error("cp designation for unknown AS " + std::to_string(asn));
    }
    graph.mark_content_provider(it->second);
  }
  graph.finalize();
  return graph;
}

AsGraph read_as_rel_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_as_rel(in);
}

void write_as_rel(const AsGraph& graph, std::ostream& out) {
  out << "# sbgpsim as-rel export: " << graph.num_nodes() << " ASes, "
      << graph.num_customer_provider_edges() << " customer-provider edges, "
      << graph.num_peer_edges() << " peer edges\n";
  for (AsId n = 0; n < graph.num_nodes(); ++n) {
    if (graph.is_content_provider(n)) out << "# cp: " << graph.asn(n) << '\n';
  }
  for (AsId n = 0; n < graph.num_nodes(); ++n) {
    for (AsId c : graph.customers(n)) {
      out << graph.asn(n) << '|' << graph.asn(c) << "|-1\n";
    }
    for (AsId p : graph.peers(n)) {
      if (n < p) out << graph.asn(n) << '|' << graph.asn(p) << "|0\n";
    }
  }
}

void write_as_rel_file(const AsGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  write_as_rel(graph, out);
}

}  // namespace sbgp::topo
