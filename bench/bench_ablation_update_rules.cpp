// Ablation over the modelling choices DESIGN.md calls out:
//  (1) outgoing vs incoming utility model (Eq. 1 vs Eq. 2) — including
//      whether turn-offs actually occur on Internet-like graphs;
//  (2) turn-off allowed vs forbidden in the incoming model;
//  (3) stub tie-breaking on vs off (cf. Figure 11, repeated here as part of
//      the ablation grid).
#include "bench_common.h"
#include "stats/table.h"

int main(int argc, char** argv) {
  using namespace sbgp;
  const auto opt = bench::parse_options(argc, argv, /*default_nodes=*/1000);
  bench::print_header("Ablation - utility model / turn-off / stub tie-break grid",
                      opt);

  auto net = bench::make_internet(opt);
  const auto& g = net.graph;
  const auto adopters = bench::case_study_adopters(net);
  const double n_ases = static_cast<double>(g.num_nodes());

  stats::Table t({"utility model", "turn-off", "stubs break ties", "outcome",
                  "rounds", "ASes secure", "total turn-offs"});
  struct Case {
    core::UtilityModel model;
    bool allow_off;
    bool stub_ties;
  };
  const std::vector<Case> cases{
      {core::UtilityModel::Outgoing, false, true},
      {core::UtilityModel::Outgoing, false, false},
      {core::UtilityModel::Incoming, true, true},
      {core::UtilityModel::Incoming, true, false},
      {core::UtilityModel::Incoming, false, true},
  };
  for (const auto& c : cases) {
    core::SimConfig cfg = bench::case_study_config(opt);
    cfg.model = c.model;
    cfg.allow_turn_off = c.allow_off;
    cfg.stub_breaks_ties = c.stub_ties;
    cfg.max_rounds = 60;
    core::DeploymentSimulator sim(g, cfg);
    const auto result = sim.run(core::DeploymentState::initial(g, adopters));
    std::size_t turn_offs = 0;
    for (const auto& r : result.rounds) turn_offs += r.turned_off;
    t.begin_row();
    t.add(std::string(core::to_string(c.model)));
    t.add(std::string(c.allow_off ? "allowed" : "forbidden"));
    t.add(std::string(c.stub_ties ? "yes" : "no"));
    t.add(std::string(core::to_string(result.outcome)));
    t.add(result.rounds_run());
    t.add_percent(static_cast<double>(result.final_state.num_secure()) / n_ases, 1);
    t.add(turn_offs);
  }
  t.print(std::cout);
  bench::print_paper_note(
      "the outgoing model is monotone (Thm 6.2: no turn-offs, guaranteed "
      "termination); the incoming model admits turn-offs and even "
      "oscillation in adversarial graphs (Thm 7.1), but the paper "
      "speculates whole-network turn-offs are rare on Internet-like "
      "topologies; stub tie-breaking barely moves the outcome (Fig. 11).");
  return 0;
}
