#!/usr/bin/env bash
# Perf-trajectory tracking: builds the benchmark targets in Release mode and
# refreshes the committed BENCH_*.json records at the repo root. Run before
# cutting a perf-sensitive PR and commit the refreshed JSON so kernel
# timings stay reviewable across PRs.
#
# Every refreshed file goes through two gates before it may replace the
# committed baseline:
#
#   1. Honesty guard — the JSON context must report a Release
#      library_build_type and cpu_scaling_enabled=false. Numbers from debug
#      builds or frequency-scaled hosts are not comparable across PRs and
#      are refused outright.
#   2. Regression guard — tools/check_bench_regress.py compares the fresh
#      numbers per benchmark name against the committed baseline (warn at
#      >10%, fail at >25% regression). On failure the fresh file is kept
#      as <name>.rejected.json for inspection and the baseline stays.
#
# Set SBGP_BENCH_ACCEPT=1 to skip the regression guard (NOT the honesty
# guard) when a baseline legitimately resets — e.g. a harness change that
# renames benchmarks, or a known hardware change. Say why in the commit.
#
#   tools/run_bench.sh [extra bench_perf_routing_kernel flags...]
#
# e.g. `tools/run_bench.sh --filter BM_FastRoutingTree` for a quick
# kernel-only refresh.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j --target bench_perf_routing_kernel \
    bench_perf_incremental_rounds bench_fleet_scaling bench_projection_delta \
    bench_svc_latency

# Refuse bench JSON whose context admits it is not a trustworthy perf
# record: a debug-built library or an active CPU frequency governor.
check_context() {
    local file="$1"
    python3 - "$file" <<'EOF'
import json, sys
path = sys.argv[1]
ctx = json.load(open(path)).get("context", {})
build = str(ctx.get("library_build_type", "")).lower()
if "debug" in build:
    sys.exit(f"{path}: library_build_type={build!r} — refusing to commit "
             "debug-built benchmark numbers; rebuild Release")
if ctx.get("cpu_scaling_enabled") is True:
    sys.exit(f"{path}: cpu_scaling_enabled=true — pin the CPU governor to "
             "'performance' before recording benchmarks")
EOF
}

# Guard + regress-check a fresh bench JSON, then move it over the committed
# baseline. The fresh file is produced under a .fresh suffix so a failed
# guard never clobbers the baseline.
accept() {
    local target="$1"
    local fresh="$1.fresh"
    check_context "$fresh"
    if [[ -f "$target" && "${SBGP_BENCH_ACCEPT:-0}" != "1" ]]; then
        if ! python3 tools/check_bench_regress.py "$target" "$fresh"; then
            mv "$fresh" "${target%.json}.rejected.json"
            echo "REFUSED: $target regressed; fresh numbers kept at" \
                 "${target%.json}.rejected.json (SBGP_BENCH_ACCEPT=1 to force)"
            return 1
        fi
    fi
    mv "$fresh" "$target"
    echo "wrote $target"
}

./build-release/bench/bench_perf_routing_kernel \
    --json-out BENCH_routing_kernel.json.fresh --quiet "$@"
accept BENCH_routing_kernel.json

# The incremental-engine bench gates on its own >=2x speedup; record the
# numbers either way (the JSON is the trend record, the exit code is CI's).
./build-release/bench/bench_perf_incremental_rounds \
    --json-out BENCH_incremental_rounds.json.fresh > /dev/null \
    || echo "note: bench_perf_incremental_rounds exited non-zero (speedup gate)"
accept BENCH_incremental_rounds.json

# Frontier-delta projection kernel: full-rebuild vs delta engine on
# projection-dominated rounds; gates on >= 3x at |V| = 10K.
./build-release/bench/bench_projection_delta \
    --json-out BENCH_projection_delta.json.fresh > /dev/null \
    || echo "note: bench_projection_delta exited non-zero (speedup gate)"
accept BENCH_projection_delta.json

# Fleet substrate scaling: 240 latency-bound jobs at 1/2/4/8 worker
# processes; gates on >= 3x wall-clock at 4 workers (jobs are stall-
# dominated precisely so the gate measures coordination overhead, not CPU
# contention — see the bench header).
./build-release/bench/bench_fleet_scaling \
    --json-out BENCH_fleet_scaling.json.fresh --quiet \
    || echo "note: bench_fleet_scaling exited non-zero (speedup gate)"
accept BENCH_fleet_scaling.json

# What-if service latency through the Unix-socket transport; gates on
# whatif_adopt p99 <= 10 ms at 36,964 ASes (warm incremental path).
./build-release/bench/bench_svc_latency \
    --json-out BENCH_svc_latency.json.fresh --quiet \
    || echo "note: bench_svc_latency exited non-zero (latency gate)"
accept BENCH_svc_latency.json
