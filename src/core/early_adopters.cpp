#include "core/early_adopters.h"

#include <algorithm>
#include <random>

namespace sbgp::core {

const char* to_string(AdopterStrategy s) {
  switch (s) {
    case AdopterStrategy::None: return "none";
    case AdopterStrategy::TopDegreeIsps: return "top-degree";
    case AdopterStrategy::ContentProviders: return "5 CPs";
    case AdopterStrategy::CpsPlusTopIsps: return "CPs+top";
    case AdopterStrategy::RandomIsps: return "random";
  }
  return "?";
}

std::vector<AsId> select_adopters(const topo::Internet& net, AdopterStrategy strategy,
                                  std::size_t k, std::uint64_t seed) {
  switch (strategy) {
    case AdopterStrategy::None:
      return {};
    case AdopterStrategy::TopDegreeIsps:
      return topo::top_degree_isps(net.graph, k);
    case AdopterStrategy::ContentProviders:
      return net.cps;
    case AdopterStrategy::CpsPlusTopIsps: {
      std::vector<AsId> out = net.cps;
      for (const AsId isp : topo::top_degree_isps(net.graph, k)) out.push_back(isp);
      return out;
    }
    case AdopterStrategy::RandomIsps: {
      std::vector<AsId> isps;
      for (AsId n = 0; n < net.graph.num_nodes(); ++n) {
        if (net.graph.is_isp(n)) isps.push_back(n);
      }
      std::mt19937_64 rng(seed);
      std::shuffle(isps.begin(), isps.end(), rng);
      if (isps.size() > k) isps.resize(k);
      return isps;
    }
  }
  return {};
}

std::size_t deployment_reach(const AsGraph& graph, std::span<const AsId> adopters,
                             const SimConfig& cfg) {
  DeploymentSimulator sim(graph, cfg);
  const auto result = sim.run(DeploymentState::initial(graph, adopters));
  return result.final_state.num_secure();
}

std::vector<AsId> greedy_adopters(const AsGraph& graph,
                                  std::span<const AsId> candidates, std::size_t k,
                                  const SimConfig& cfg) {
  std::vector<AsId> chosen;
  std::vector<AsId> remaining(candidates.begin(), candidates.end());
  while (chosen.size() < k && !remaining.empty()) {
    std::size_t best_reach = 0;
    std::size_t best_idx = 0;
    for (std::size_t i = 0; i < remaining.size(); ++i) {
      std::vector<AsId> trial = chosen;
      trial.push_back(remaining[i]);
      const std::size_t reach = deployment_reach(graph, trial, cfg);
      if (reach > best_reach) {
        best_reach = reach;
        best_idx = i;
      }
    }
    chosen.push_back(remaining[best_idx]);
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(best_idx));
  }
  return chosen;
}

std::vector<AsId> optimal_adopters_bruteforce(const AsGraph& graph,
                                              std::span<const AsId> candidates,
                                              std::size_t k, const SimConfig& cfg) {
  std::vector<AsId> best;
  std::size_t best_reach = 0;
  std::vector<std::size_t> idx(k, 0);
  // Iterate all k-combinations of candidate indices.
  std::vector<AsId> trial(k);
  const std::size_t m = candidates.size();
  if (k == 0) return {};
  if (k > m) return {candidates.begin(), candidates.end()};
  for (std::size_t i = 0; i < k; ++i) idx[i] = i;
  for (;;) {
    for (std::size_t i = 0; i < k; ++i) trial[i] = candidates[idx[i]];
    const std::size_t reach = deployment_reach(graph, trial, cfg);
    if (reach > best_reach) {
      best_reach = reach;
      best = trial;
    }
    // Next combination.
    std::size_t i = k;
    while (i-- > 0) {
      if (idx[i] != i + m - k) {
        ++idx[i];
        for (std::size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
        break;
      }
      if (i == 0) return best;
    }
  }
}

}  // namespace sbgp::core
