#include "core/simulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <mutex>
#include <random>
#include <unordered_map>

#include "routing/rib.h"

namespace sbgp::core {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}  // namespace

const char* to_string(PricingModel p) {
  switch (p) {
    case PricingModel::LinearVolume: return "linear";
    case PricingModel::ConcaveVolume: return "concave";
    case PricingModel::TieredCapacity: return "tiered";
  }
  return "?";
}

double apply_pricing(PricingModel pricing, double tier_size, double volume) {
  switch (pricing) {
    case PricingModel::LinearVolume:
      return volume;
    case PricingModel::ConcaveVolume:
      return std::sqrt(std::max(0.0, volume));
    case PricingModel::TieredCapacity:
      return tier_size > 0 ? std::ceil(volume / tier_size) : volume;
  }
  return volume;
}

std::vector<double> randomized_thetas(const AsGraph& graph, double theta,
                                      double spread, std::uint64_t seed) {
  std::vector<double> out(graph.num_nodes(), theta);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(theta * (1.0 - spread),
                                           theta * (1.0 + spread));
  for (AsId n = 0; n < graph.num_nodes(); ++n) {
    if (graph.is_isp(n)) out[n] = u(rng);
  }
  return out;
}

const char* to_string(UtilityModel m) {
  switch (m) {
    case UtilityModel::Outgoing: return "outgoing";
    case UtilityModel::Incoming: return "incoming";
  }
  return "?";
}

const char* to_string(Outcome o) {
  switch (o) {
    case Outcome::Stable: return "stable";
    case Outcome::Oscillating: return "oscillating";
    case Outcome::RoundCapReached: return "round-cap";
    case Outcome::Aborted: return "aborted";
  }
  return "?";
}

rt::UtilityAccumulator compute_utilities(
    const AsGraph& graph, const std::vector<std::uint8_t>& secure,
    const SimConfig& cfg, par::ThreadPool& pool,
    const std::vector<std::vector<AsId>>* enabled_links) {
  const std::size_t n = graph.num_nodes();
  rt::UtilityAccumulator total(n);
  std::mutex merge_mutex;
  par::parallel_for_chunked(pool, 0, n, [&](std::size_t lo, std::size_t hi) {
    rt::RibComputer rc(graph);
    rt::TreeComputer tc(graph);
    rt::DestRib rib;
    rt::RoutingTree tree;
    rt::UtilityAccumulator local(n);
    rt::SecurityView view;
    view.graph = &graph;
    view.base = secure.data();
    view.stub_breaks_ties = cfg.stub_breaks_ties;
    view.enabled_links = enabled_links;
    for (std::size_t d = lo; d < hi; ++d) {
      rc.compute(static_cast<AsId>(d), rib);
      tc.compute(rib, view, cfg.tiebreak, tree);
      local.add_tree(graph, rib, tree);
    }
    std::scoped_lock lock(merge_mutex);
    total.merge(local);
  });
  return total;
}

struct DeploymentSimulator::RoundOutput {
  std::vector<double> util_out, util_in;
  std::vector<double> delta_on_out, delta_on_in;
  std::vector<double> delta_off_out, delta_off_in;
  std::vector<std::uint8_t> eval_on, eval_off;

  explicit RoundOutput(std::size_t n)
      : util_out(n, 0.0), util_in(n, 0.0),
        delta_on_out(n, 0.0), delta_on_in(n, 0.0),
        delta_off_out(n, 0.0), delta_off_in(n, 0.0),
        eval_on(n, 0), eval_off(n, 0) {}

  void reset() {
    auto zero = [](std::vector<double>& v) { std::fill(v.begin(), v.end(), 0.0); };
    zero(util_out); zero(util_in);
    zero(delta_on_out); zero(delta_on_in);
    zero(delta_off_out); zero(delta_off_in);
    std::fill(eval_on.begin(), eval_on.end(), 0);
    std::fill(eval_off.begin(), eval_off.end(), 0);
  }

  void merge(const RoundOutput& o) {
    auto addv = [](std::vector<double>& a, const std::vector<double>& b) {
      for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
    };
    addv(util_out, o.util_out);
    addv(util_in, o.util_in);
    addv(delta_on_out, o.delta_on_out);
    addv(delta_on_in, o.delta_on_in);
    addv(delta_off_out, o.delta_off_out);
    addv(delta_off_in, o.delta_off_in);
    for (std::size_t i = 0; i < eval_on.size(); ++i) {
      eval_on[i] |= o.eval_on[i];
      eval_off[i] |= o.eval_off[i];
    }
  }
};

DeploymentSimulator::DeploymentSimulator(const AsGraph& graph, SimConfig cfg)
    : graph_(graph), cfg_(cfg), pool_(cfg.threads) {
  assert(graph.finalized());
}

void DeploymentSimulator::evaluate_round(const DeploymentState& state,
                                         RoundOutput& out) {
  const std::size_t n = graph_.num_nodes();
  const bool incoming_off =
      cfg_.model == UtilityModel::Incoming && cfg_.allow_turn_off;
  std::mutex merge_mutex;
  out.reset();

  par::parallel_for_chunked(pool_, 0, n, [&](std::size_t lo, std::size_t hi) {
    rt::RibComputer rc(graph_);
    rt::TreeComputer tc(graph_);
    rt::DestRib rib;
    rt::RoutingTree tree, flipped;
    RoundOutput local(n);
    std::vector<AsId> affected_on, affected_off;
    std::vector<std::uint32_t> mark_on(n, 0), mark_off(n, 0);
    std::uint32_t epoch = 0;

    rt::SecurityView base_view;
    base_view.graph = &graph_;
    base_view.base = state.flags().data();
    base_view.stub_breaks_ties = cfg_.stub_breaks_ties;
    base_view.frozen = cfg_.frozen != nullptr ? cfg_.frozen->data() : nullptr;

    for (std::size_t di = lo; di < hi; ++di) {
      const AsId d = static_cast<AsId>(di);
      rc.compute(d, rib);
      tc.compute(rib, base_view, cfg_.tiebreak, tree);

      // Base utilities for every node, both models, in one pass.
      for (const AsId i : rib.order) {
        if (i == d) continue;
        if (rib.cls[i] == rt::RouteClass::Customer) {
          local.util_out[i] += tree.subtree_weight[i] - graph_.weight(i);
        } else if (rib.cls[i] == rt::RouteClass::Provider) {
          local.util_in[tree.next_hop[i]] += tree.subtree_weight[i];
        }
      }

      // ---- Appendix C.4 pruning: which ISPs' flips can matter for d? ----
      ++epoch;
      affected_on.clear();
      affected_off.clear();
      const bool outgoing = cfg_.model == UtilityModel::Outgoing;
      if (!cfg_.use_projection_pruning) {
        // Exhaustive mode: project every ISP against every destination.
        for (AsId x = 0; x < n; ++x) {
          if (!graph_.is_isp(x)) continue;
          if (state.is_secure(x)) {
            if (incoming_off) affected_off.push_back(x);
          } else {
            affected_on.push_back(x);
          }
        }
      }
      auto add_on = [&](AsId x) {
        // In the outgoing model an ISP only earns utility for destinations
        // it reaches over a customer edge (Eq. 1), and the route class is
        // state-independent (Obs. C.1) — every other (ISP, dest) pair has
        // identically-zero contribution in both states and can be skipped.
        if (outgoing && rib.cls[x] != rt::RouteClass::Customer) return;
        if (mark_on[x] != epoch) {
          mark_on[x] = epoch;
          affected_on.push_back(x);
        }
      };
      auto add_off = [&](AsId x) {
        if (mark_off[x] != epoch) {
          mark_off[x] = epoch;
          affected_off.push_back(x);
        }
      };

      // Rule 1: any node with a secure tiebreak candidate ("the set P").
      // - an insecure ISP there can start offering a secure path;
      // - a secure ISP there can stop doing so (incoming model);
      // - an insecure stub there changes its route choice when a provider
      //   simplex-secures it (if stubs break ties), moving traffic between
      //   its providers.
      if (cfg_.use_projection_pruning)
      for (const AsId i : rib.order) {
        if (tree.has_secure_candidate[i] == 0) continue;
        if (state.is_secure(i)) {
          if (incoming_off && graph_.is_isp(i)) add_off(i);
        } else if (graph_.is_isp(i)) {
          add_on(i);
        } else if (graph_.is_stub(i) && cfg_.stub_breaks_ties) {
          for (const AsId p : graph_.providers(i)) {
            if (graph_.is_isp(p) && !state.is_secure(p)) add_on(p);
          }
        }
      }
      // Rule 2: flips that change the *destination's* security. A
      // destination that is insecure in both states admits no secure path
      // at all (optimisation 1 of C.4), so only these flips matter for an
      // insecure d.
      if (cfg_.use_projection_pruning) {
      if (!state.is_secure(d)) {
        if (graph_.is_stub(d)) {
          for (const AsId p : graph_.providers(d)) {
            if (graph_.is_isp(p) && !state.is_secure(p)) add_on(p);
          }
        } else if (graph_.is_isp(d)) {
          add_on(d);
        }
      } else if (incoming_off && graph_.is_isp(d)) {
        add_off(d);
      }
      }  // use_projection_pruning

      // ---- Projections: recompute the tree under each candidate flip. ----
      for (const AsId cand : affected_on) {
        local.eval_on[cand] = 1;
        rt::SecurityView view = base_view;
        view.flip_on = cand;
        tc.compute(rib, view, cfg_.tiebreak, flipped);
        const auto before = rt::node_contribution(graph_, rib, tree, cand);
        const auto after = rt::node_contribution(graph_, rib, flipped, cand);
        local.delta_on_out[cand] += after.outgoing - before.outgoing;
        local.delta_on_in[cand] += after.incoming - before.incoming;
      }
      for (const AsId cand : affected_off) {
        local.eval_off[cand] = 1;
        rt::SecurityView view = base_view;
        view.flip_off = cand;
        tc.compute(rib, view, cfg_.tiebreak, flipped);
        const auto before = rt::node_contribution(graph_, rib, tree, cand);
        const auto after = rt::node_contribution(graph_, rib, flipped, cand);
        local.delta_off_out[cand] += after.outgoing - before.outgoing;
        local.delta_off_in[cand] += after.incoming - before.incoming;
      }
    }

    std::scoped_lock lock(merge_mutex);
    out.merge(local);
  });
}

SimResult DeploymentSimulator::run(const DeploymentState& initial,
                                   const RoundObserver& observer) {
  const std::size_t n = graph_.num_nodes();
  SimResult result;
  result.final_state = initial;

  {
    const std::vector<std::uint8_t> nobody(n, 0);
    const auto start = compute_utilities(graph_, nobody, cfg_, pool_);
    result.starting_utility =
        cfg_.model == UtilityModel::Outgoing ? start.outgoing : start.incoming;
  }

  DeploymentState state = initial;
  std::unordered_map<std::uint64_t, std::size_t> seen;  // state hash -> round
  seen.emplace(state.hash(), 0);

  RoundOutput round_out(n);
  std::vector<double> utility(n), proj_on(n), proj_off(n);
  std::vector<AsId> flip_on, flip_off;

  result.outcome = Outcome::RoundCapReached;
  for (std::size_t round = 1; round <= cfg_.max_rounds; ++round) {
    if (cfg_.stop_requested && cfg_.stop_requested()) {
      result.outcome = Outcome::Aborted;
      break;
    }
    evaluate_round(state, round_out);

    const auto& util_model =
        cfg_.model == UtilityModel::Outgoing ? round_out.util_out : round_out.util_in;
    const auto& delta_on =
        cfg_.model == UtilityModel::Outgoing ? round_out.delta_on_out
                                             : round_out.delta_on_in;
    const auto& delta_off =
        cfg_.model == UtilityModel::Outgoing ? round_out.delta_off_out
                                             : round_out.delta_off_in;

    flip_on.clear();
    flip_off.clear();
    for (AsId i = 0; i < n; ++i) {
      utility[i] = util_model[i];
      proj_on[i] = round_out.eval_on[i] != 0 ? util_model[i] + delta_on[i] : kNaN;
      proj_off[i] = round_out.eval_off[i] != 0 ? util_model[i] + delta_off[i] : kNaN;
      if (!graph_.is_isp(i)) continue;
      if (cfg_.frozen != nullptr && (*cfg_.frozen)[i] != 0) continue;
      // Myopic best response (Eq. 3): flip when projected *revenue* exceeds
      // (1+theta_i) times current revenue.
      const double theta_i =
          cfg_.per_node_theta != nullptr ? (*cfg_.per_node_theta)[i] : cfg_.theta;
      const auto revenue = [this](double volume) {
        return apply_pricing(cfg_.pricing, cfg_.pricing_tier_size, volume);
      };
      if (!state.is_secure(i)) {
        if (round_out.eval_on[i] != 0 &&
            revenue(proj_on[i]) > (1.0 + theta_i) * revenue(utility[i])) {
          flip_on.push_back(i);
        }
      } else if (round_out.eval_off[i] != 0 &&
                 revenue(proj_off[i]) > (1.0 + theta_i) * revenue(utility[i])) {
        flip_off.push_back(i);
      }
    }

    if (observer) {
      RoundObservation obs;
      obs.round = round;
      obs.secure = &state.flags();
      obs.utility = &utility;
      obs.projected_on = &proj_on;
      obs.projected_off = &proj_off;
      obs.flipping_on = &flip_on;
      obs.flipping_off = &flip_off;
      observer(obs);
    }

    if (flip_on.empty() && flip_off.empty()) {
      result.outcome = Outcome::Stable;
      break;
    }

    RoundStats stats;
    stats.round = round;
    const std::size_t stubs_before =
        state.num_secure_of_class(graph_, topo::AsClass::Stub);
    for (const AsId i : flip_on) {
      state.set_secure(i, true);
      for (const AsId c : graph_.customers(i)) {
        if (graph_.is_stub(c) &&
            (cfg_.frozen == nullptr || (*cfg_.frozen)[c] == 0)) {
          state.set_secure(c, true);
        }
      }
    }
    for (const AsId i : flip_off) state.set_secure(i, false);
    stats.newly_secure_isps = flip_on.size();
    stats.turned_off = flip_off.size();
    stats.newly_secure_stubs =
        state.num_secure_of_class(graph_, topo::AsClass::Stub) - stubs_before;
    stats.total_secure_ases = state.num_secure();
    stats.total_secure_isps = state.num_secure_of_class(graph_, topo::AsClass::Isp);
    result.rounds.push_back(stats);

    const auto [it, inserted] = seen.emplace(state.hash(), round);
    if (!inserted) {
      result.outcome = Outcome::Oscillating;
      break;
    }
  }

  result.final_state = state;
  {
    const auto fin = compute_utilities(graph_, state.flags(), cfg_, pool_);
    result.final_utility =
        cfg_.model == UtilityModel::Outgoing ? fin.outgoing : fin.incoming;
  }
  return result;
}

}  // namespace sbgp::core
