// Protocol-level attack demo using the message-passing S*BGP engine:
//  1. origin hijack against plain BGP vs S-BGP (RPKI origin validation +
//     route attestations),
//  2. the Appendix B partially-secure-path attack (Figure 15),
//  3. the crypto-workload argument for simplex S*BGP (Section 2.2.1).
#include <iostream>

#include "proto/attack.h"
#include "proto/engine.h"
#include "stats/table.h"
#include "topology/topology_gen.h"

int main() {
  using namespace sbgp;

  std::cout << "== 1. Origin hijack: plain BGP vs S-BGP ==\n";
  for (const auto& [vd, ad, label] :
       {std::tuple<std::size_t, std::size_t, const char*>{3, 3, "equal-length lie"},
        {4, 2, "shorter lie"}}) {
    const auto r = proto::run_origin_hijack(vd, ad);
    std::cout << "  " << label << " (true " << r.true_path_len << " hops, lie "
              << r.false_path_len << "): plain BGP "
              << (r.probe_fooled_bgp ? "HIJACKED" : "safe") << ", S-BGP "
              << (r.probe_fooled_sbgp ? "HIJACKED" : "safe") << "\n";
  }
  std::cout << "  (SecP is only a tie-break: LP and path length still rank "
               "first, so strictly shorter lies win by design.)\n\n";

  std::cout << "== 2. Appendix B: never prefer partially-secure paths ==\n";
  const auto r = proto::run_partial_preference_attack();
  auto print_path = [](const char* label, const std::vector<std::uint32_t>& p) {
    std::cout << "  " << label << ":";
    for (const auto asn : p) std::cout << " AS" << asn;
    std::cout << "\n";
  };
  print_path("paper's rule  - p routes", r.path_ignore_partial);
  print_path("flawed rule   - p routes", r.path_prefer_partial);
  std::cout << "  attack succeeds under the flawed rule: "
            << (r.attack_succeeds_with_partial ? "yes" : "no")
            << "; under the paper's rule: "
            << (r.attack_succeeds_with_ignore ? "yes" : "no") << "\n\n";

  std::cout << "== 3. Why simplex S*BGP is cheap for stubs ==\n";
  topo::InternetConfig cfg;
  cfg.total_ases = 300;
  cfg.seed = 7;
  const auto net = topo::generate_internet(cfg);
  std::vector<proto::NodeSecurity> posture(net.graph.num_nodes());
  for (topo::AsId n = 0; n < net.graph.num_nodes(); ++n) {
    posture[n] = net.graph.is_stub(n) ? proto::NodeSecurity::Simplex
                                      : proto::NodeSecurity::Full;
  }
  proto::EngineConfig ecfg;
  ecfg.mode = proto::SecurityMode::SBgp;
  proto::BgpEngine engine(net.graph, posture, ecfg);

  std::uint64_t stub_sig = 0, stub_ver = 0, isp_sig = 0, isp_ver = 0;
  for (topo::AsId d = 0; d < 40; ++d) {
    engine.run(d);
    const auto& s = engine.crypto_stats();
    for (topo::AsId n = 0; n < net.graph.num_nodes(); ++n) {
      (net.graph.is_stub(n) ? stub_sig : isp_sig) += s.signatures[n];
      (net.graph.is_stub(n) ? stub_ver : isp_ver) += s.verifications[n];
    }
  }
  stats::Table t({"population", "signatures", "verifications"});
  t.begin_row();
  t.add(std::string("stubs (simplex, ") + std::to_string(net.graph.num_stubs()) +
        " ASes)");
  t.add(static_cast<unsigned long long>(stub_sig));
  t.add(static_cast<unsigned long long>(stub_ver));
  t.begin_row();
  t.add(std::string("ISPs+CPs (full, ") +
        std::to_string(net.graph.num_nodes() - net.graph.num_stubs()) + " ASes)");
  t.add(static_cast<unsigned long long>(isp_sig));
  t.add(static_cast<unsigned long long>(isp_ver));
  t.print(std::cout);
  std::cout << "  85% of ASes are stubs, yet simplex mode leaves them ~zero "
               "crypto load: sign own prefix only, never validate.\n";
  return 0;
}
