#include "routing/tree_delta.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <functional>

#include "obs/metrics.h"

namespace sbgp::rt {

namespace {

/// The overlay must agree with a full rebuild bit for bit, so weight
/// comparisons distinguish +0.0 from -0.0 (operator== does not).
[[nodiscard]] bool same_bits(double a, double b) {
  std::uint64_t x = 0, y = 0;
  static_assert(sizeof(x) == sizeof(a));
  std::memcpy(&x, &a, sizeof(x));
  std::memcpy(&y, &b, sizeof(y));
  return x == y;
}

}  // namespace

TreeDelta::TreeDelta(const AsGraph& graph) : graph_(graph) {}

bool TreeDelta::bind(const RibView& rib, const RoutingTree& base,
                     const SecureMask& base_mask) {
  bound_ = false;
  valid_ = false;
  // Positional selection is the only rule the frontier can re-run locally;
  // the hashing path (unsorted tiebreaks) and the two-origin hijack special
  // cases stay on the full rebuild.
  if (!rib.tb_sorted || rib.impostor != kNoAs) return false;
  const std::size_t n = graph_.num_nodes();
  if (n == 0 || rib.order.empty()) return false;
  rib_ = rib;
  base_ = &base;
  base_mask_ = &base_mask;

  if (sel_mark_.size() != n) {
    sel_mark_.assign(n, 0);
    w_mark_.assign(n, 0);
    selq_mark_.assign(n, 0);
    wq_mark_.assign(n, 0);
    in_mark_.assign(n, 0);
    p_nh_.resize(n);
    p_ps_.resize(n);
    p_hsc_.resize(n);
    p_w_.resize(n);
    in_head_.resize(n);
    epoch_ = 0;
  }

  arena_.reset();
  rank_ = arena_.alloc<std::uint32_t>(n);
  rev_begin_ = arena_.alloc<std::uint32_t>(n + 1);
  kid_begin_ = arena_.alloc<std::uint32_t>(n + 1);
  std::uint32_t* cur = arena_.alloc<std::uint32_t>(n);

  const std::size_t m = rib_.order.size();
  std::size_t tb_total = 0;
  for (std::size_t k = 0; k < m; ++k) {
    const AsId i = rib_.order[k];
    rank_[i] = static_cast<std::uint32_t>(k);
    tb_total += rib_.tiebreak(i).size();
  }

  // Reverse-tiebreak CSR: rev(j) = every node whose tiebreak set contains j
  // (all of strictly greater rank — candidates precede their choosers in
  // rib.order). This is the phase-1 propagation fan-out.
  rev_ids_ = arena_.alloc<AsId>(tb_total);
  std::memset(rev_begin_, 0, (n + 1) * sizeof(std::uint32_t));
  for (const AsId i : rib_.order) {
    for (const AsId j : rib_.tiebreak(i)) ++rev_begin_[j + 1];
  }
  for (std::size_t x = 0; x < n; ++x) rev_begin_[x + 1] += rev_begin_[x];
  std::memcpy(cur, rev_begin_, n * sizeof(std::uint32_t));
  for (const AsId i : rib_.order) {
    for (const AsId j : rib_.tiebreak(i)) rev_ids_[cur[j]++] = i;
  }

  // Base-tree children CSR, per parent in DESCENDING rank order — the exact
  // order the full fold adds each child into its parent's accumulator, which
  // is what lets a refold reproduce the fold's floating-point sums bitwise.
  kid_ids_ = arena_.alloc<AsId>(m > 0 ? m - 1 : 0);
  std::memset(kid_begin_, 0, (n + 1) * sizeof(std::uint32_t));
  for (std::size_t k = 1; k < m; ++k) {
    ++kid_begin_[base.next_hop[rib_.order[k]] + 1];
  }
  for (std::size_t x = 0; x < n; ++x) kid_begin_[x + 1] += kid_begin_[x];
  std::memcpy(cur, kid_begin_, n * sizeof(std::uint32_t));
  for (std::size_t k = m; k-- > 1;) {
    const AsId i = rib_.order[k];
    kid_ids_[cur[base.next_hop[i]]++] = i;
  }

  const auto frac_cap = static_cast<std::size_t>(max_frac_ * static_cast<double>(m));
  max_touched_ = std::max<std::size_t>(64, frac_cap);
  bound_ = true;
  return true;
}

void TreeDelta::push_sel(AsId x) {
  if (selq_mark_[x] == epoch_) return;
  selq_mark_[x] = epoch_;
  sel_heap_.push_back((static_cast<std::uint64_t>(rank_[x]) << 32) | x);
  std::push_heap(sel_heap_.begin(), sel_heap_.end(), std::greater<>{});
}

void TreeDelta::push_weight(AsId x) {
  if (wq_mark_[x] == epoch_) return;
  wq_mark_[x] = epoch_;
  w_heap_.push_back((static_cast<std::uint64_t>(rank_[x]) << 32) | x);
  std::push_heap(w_heap_.begin(), w_heap_.end());
}

bool TreeDelta::apply(const SecureMask& flip) {
  assert(bound_);
  ++epoch_;
  valid_ = false;
  stats_ = {};
  sel_heap_.clear();
  w_heap_.clear();
  moved_.clear();
  hsc_gained_.clear();

  // ---- Phase 0: seed the selection frontier from the mask delta. A node's
  // selection reads only its own secure/secp bits, its candidates'
  // path_secure bits, and the (shared, unchanged) link set — so the XOR of
  // the word-packed masks is the complete set of primary disturbances.
  const std::size_t n = graph_.num_nodes();
  for (std::size_t w = 0; w < base_mask_->words; ++w) {
    std::uint64_t diff = (base_mask_->secure[w] ^ flip.secure[w]) |
                         (base_mask_->secp[w] ^ flip.secp[w]);
    while (diff != 0) {
      const auto bit = static_cast<std::uint32_t>(__builtin_ctzll(diff));
      diff &= diff - 1;
      const auto x = static_cast<AsId>(w * 64 + bit);
      if (x < n && rib_.reachable(x)) {
        ++stats_.seeds;
        push_sel(x);
      }
    }
  }

  // ---- Phase 1: selection frontier, ascending rank. Influence flows
  // strictly rank-upward (every candidate precedes its chooser), so popping
  // the minimum rank finalizes each node's selection in one visit: its
  // candidates' overlay path_secure bits can no longer change.
  while (!sel_heap_.empty()) {
    std::pop_heap(sel_heap_.begin(), sel_heap_.end(), std::greater<>{});
    const auto i = static_cast<AsId>(sel_heap_.back() & 0xFFFFFFFFu);
    sel_heap_.pop_back();
    ++stats_.resolved;
    if (stats_.touched() > max_touched_) return false;

    AsId nh;
    std::uint8_t ps, hsc;
    if (i == rib_.dest) {
      nh = kNoAs;
      ps = flip.is_secure(i) ? 1 : 0;
      hsc = 0;
    } else {
      const auto candidates = rib_.tiebreak(i);
      assert(!candidates.empty());
      const auto cand_ps = [&](AsId j) {
        return (sel_mark_[j] == epoch_ ? p_ps_[j] : base_->path_secure[j]) != 0;
      };
      AsId first_secure = kNoAs;
      for (const AsId j : candidates) {
        if (cand_ps(j) && flip.hop_secure(j, i)) {
          first_secure = j;
          break;
        }
      }
      hsc = first_secure != kNoAs ? 1 : 0;
      const AsId best = (first_secure != kNoAs && flip.applies_secp(i))
                            ? first_secure
                            : candidates[0];
      const bool best_secure =
          best == first_secure ||
          (cand_ps(best) && flip.hop_secure(best, i));
      ps = (best_secure && flip.is_secure(i)) ? 1 : 0;
      nh = best;
    }

    sel_mark_[i] = epoch_;
    p_nh_[i] = nh;
    p_ps_[i] = ps;
    p_hsc_[i] = hsc;
    if (hsc != 0 && base_->has_secure_candidate[i] == 0) {
      hsc_gained_.push_back(i);  // pops ascend in rank == rib.order order
    }
    if (nh != base_->next_hop[i]) {
      moved_.push_back({i, base_->next_hop[i], nh, kNone});
    }
    if (ps != base_->path_secure[i]) {
      for (std::uint32_t r = rev_begin_[i]; r < rev_begin_[i + 1]; ++r) {
        push_sel(rev_ids_[r]);
      }
    }
  }
  stats_.moved = moved_.size();

  // ---- Phase 2: subtree-weight repair, descending rank. Dirty parents are
  // the old and new parents of every moved node, plus (transitively) the
  // tree-parents of any node whose refolded value actually changed. Each
  // dirty parent is re-folded EXACTLY — base children (minus leavers) merged
  // with incomers in descending rank order — so the per-accumulator FP
  // addition sequence matches the full fold and the result is bitwise
  // identical, not merely numerically close.
  for (std::uint32_t mi = 0; mi < moved_.size(); ++mi) {
    Move& mv = moved_[mi];
    push_weight(mv.from);
    push_weight(mv.to);
    if (in_mark_[mv.to] != epoch_) {
      in_mark_[mv.to] = epoch_;
      mv.next = kNone;
    } else {
      mv.next = in_head_[mv.to];
    }
    in_head_[mv.to] = mi;
  }
  while (!w_heap_.empty()) {
    std::pop_heap(w_heap_.begin(), w_heap_.end());
    const auto x = static_cast<AsId>(w_heap_.back() & 0xFFFFFFFFu);
    w_heap_.pop_back();
    ++stats_.refolded;
    if (stats_.touched() > max_touched_) return false;

    incomers_.clear();
    if (in_mark_[x] == epoch_) {
      for (std::uint32_t mi = in_head_[x]; mi != kNone; mi = moved_[mi].next) {
        incomers_.push_back(moved_[mi].node);
      }
      std::sort(incomers_.begin(), incomers_.end(),
                [&](AsId a, AsId b) { return rank_[a] > rank_[b]; });
    }
    double acc = graph_.weight(x);
    const AsId* kb = kid_ids_ + kid_begin_[x];
    const AsId* const ke = kid_ids_ + kid_begin_[x + 1];
    std::size_t bi = 0;
    while (kb != ke || bi != incomers_.size()) {
      AsId child;
      if (kb != ke &&
          (bi == incomers_.size() || rank_[*kb] > rank_[incomers_[bi]])) {
        child = *kb++;
        // A base child whose recomputed next hop left x is no longer ours.
        if (sel_mark_[child] == epoch_ && p_nh_[child] != x) continue;
      } else {
        child = incomers_[bi++];
      }
      acc += w_mark_[child] == epoch_ ? p_w_[child] : base_->subtree_weight[child];
    }
    if (!same_bits(acc, base_->subtree_weight[x])) {
      w_mark_[x] = epoch_;
      p_w_[x] = acc;
      if (x != rib_.dest) {
        push_weight(sel_mark_[x] == epoch_ ? p_nh_[x] : base_->next_hop[x]);
      }
    }
  }

  valid_ = true;
  return true;
}

NodeContribution TreeDelta::contribution(AsId n) const {
  assert(valid_);
  NodeContribution out;
  if (rib_.cls[n] == RouteClass::Customer) {
    out.outgoing = subtree_weight(n) - graph_.weight(n);
  }
  for (const AsId c : graph_.customers(n)) {
    if (rib_.cls[c] != RouteClass::None && next_hop(c) == n) {
      out.incoming += subtree_weight(c);
    }
  }
  return out;
}

void TreeDelta::materialize(RoutingTree& out) const {
  assert(valid_);
  out.dest = rib_.dest;
  out.next_hop = base_->next_hop;
  out.path_secure = base_->path_secure;
  out.subtree_weight = base_->subtree_weight;
  out.has_secure_candidate = base_->has_secure_candidate;
  out.origin.clear();
  for (const AsId i : rib_.order) {
    out.next_hop[i] = next_hop(i);
    out.path_secure[i] = path_secure(i) ? 1 : 0;
    out.subtree_weight[i] = subtree_weight(i);
    out.has_secure_candidate[i] = has_secure_candidate(i) ? 1 : 0;
  }
}

}  // namespace sbgp::rt
