// Section 1.4 insight 5 / Section 6.4 extension: quantify attack resilience
// during partial deployment with the [15]-style origin-hijack metric. The
// paper defers this measurement to future work but quotes the insecure
// baseline ("an arbitrary misbehaving AS can impact about half of the ASes
// on average", Section 2.2.1) and warns that BGP and S*BGP will coexist —
// this bench measures how hijack impact falls as the market-driven
// deployment progresses, and how much residual attack surface remains even
// at convergence.
//
// The measurement itself is a declarative ScenarioSpec evaluated on the
// scenario engine — the exact code path behind `sbgpsim scenario run` and
// core::measure_resilience, so this bench doubles as a regression anchor
// for the engine's uniform-hijack sampling stream.
#include "bench_common.h"
#include "exp/json.h"
#include "scenario/engine.h"
#include "scenario/scenario_spec.h"
#include "stats/table.h"

int main(int argc, char** argv) {
  using namespace sbgp;
  const auto opt = bench::parse_options(argc, argv, /*default_nodes=*/1000);
  bench::print_header("Resilience - origin-hijack impact vs deployment", opt);

  auto net = bench::make_internet(opt);
  const auto& g = net.graph;
  par::ThreadPool pool(opt.threads);

  // The historical measure_resilience(samples=150, seed=1234) call, spelled
  // as the spec it always was: a uniform origin hijack under the paper's
  // security-third tie-break ranking.
  const auto sspec = scenario::ScenarioSpec::from_json(exp::Json::parse(
      R"({"attacks": ["hijack"], "policies": ["secure-tiebreak"],)"
      R"( "placements": ["uniform"], "samples": 150, "seed": 1234})"));
  const scenario::Scenario point = sspec.expand().front();
  const core::SimConfig sim_cfg = bench::case_study_config(opt);
  const scenario::ScenarioEngine engine(
      g, {sim_cfg.tiebreak, sim_cfg.stub_breaks_ties});

  stats::Table t({"deployment state", "secure ASes", "mean ASes hijacked",
                  "mean traffic hijacked", "p90 hijacked"});
  auto row = [&](const std::string& name, const std::vector<std::uint8_t>& secure) {
    const auto r = engine.run(point, secure, pool);
    std::size_t num_secure = 0;
    for (const auto s : secure) num_secure += s;
    t.begin_row();
    t.add(name);
    t.add_percent(static_cast<double>(num_secure) /
                      static_cast<double>(g.num_nodes()),
                  1);
    t.add_percent(r.fooled_fraction.mean(), 1);
    t.add_percent(r.fooled_weight.mean(), 1);
    t.add_percent(r.fooled_fraction.quantile(0.9), 1);
  };

  // Insecure status quo.
  row("status quo (no S*BGP)", std::vector<std::uint8_t>(g.num_nodes(), 0));

  // Partial deployment frontier: snapshot the case study every round.
  core::SimConfig cfg = bench::case_study_config(opt);
  core::DeploymentSimulator sim(g, cfg);
  std::vector<std::vector<std::uint8_t>> snapshots;
  const auto result = sim.run(
      core::DeploymentState::initial(g, bench::case_study_adopters(net)),
      [&](const core::RoundObservation& obs) { snapshots.push_back(*obs.secure); });
  for (std::size_t r = 0; r < snapshots.size(); r += 2) {
    row("case study, entering round " + std::to_string(r + 1), snapshots[r]);
  }
  row("case study, terminated", result.final_state.flags());

  // Hypothetical universal deployment.
  row("universal S*BGP", std::vector<std::uint8_t>(g.num_nodes(), 1));
  t.print(std::cout);

  bench::print_paper_note(
      "status quo: an arbitrary attacker impacts ~half the Internet on "
      "average [15]; S*BGP-as-tiebreak shrinks the hijack surface as "
      "deployment spreads, but never to zero (LP and SP outrank SecP), "
      "which is why the paper calls for careful engineering of the "
      "BGP/S*BGP coexistence.");
  return 0;
}
