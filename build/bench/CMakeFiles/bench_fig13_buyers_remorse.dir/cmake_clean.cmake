file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_buyers_remorse.dir/bench_fig13_buyers_remorse.cpp.o"
  "CMakeFiles/bench_fig13_buyers_remorse.dir/bench_fig13_buyers_remorse.cpp.o.d"
  "bench_fig13_buyers_remorse"
  "bench_fig13_buyers_remorse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_buyers_remorse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
