#include "stats/table.h"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <sstream>

namespace sbgp::stats {

namespace {

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

// RFC 4180: fields containing separators, quotes or line breaks are wrapped
// in double quotes, with embedded quotes doubled. Everything else passes
// through unchanged so ordinary numeric tables stay byte-identical.
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\r\n") == std::string::npos) return cell;
  std::string out;
  out.reserve(cell.size() + 2);
  out += '"';
  for (const char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::Right) {
  if (!aligns_.empty()) aligns_[0] = Align::Left;
}

void Table::set_align(std::size_t col, Align align) {
  assert(col < aligns_.size());
  aligns_[col] = align;
}

void Table::begin_row() {
  if (in_row_) {
    rows_.push_back(std::move(current_));
    current_.clear();
  }
  in_row_ = true;
}

void Table::add(std::string cell) { current_.push_back(std::move(cell)); }
void Table::add(long long value) { add(std::to_string(value)); }
void Table::add(unsigned long long value) { add(std::to_string(value)); }
void Table::add(int value) { add(std::to_string(value)); }
void Table::add(std::size_t value) { add(std::to_string(value)); }
void Table::add(double value, int precision) {
  add(format_double(value, precision));
}
void Table::add_percent(double fraction, int precision) {
  add(format_double(fraction * 100.0, precision) + "%");
}

void Table::sort_rows() {
  if (in_row_ && !current_.empty()) {
    rows_.push_back(std::move(current_));
    current_.clear();
    in_row_ = false;
  }
  std::sort(rows_.begin(), rows_.end());
}

void Table::print(std::ostream& os) const {
  std::vector<std::vector<std::string>> all;
  all.push_back(headers_);
  for (const auto& r : rows_) all.push_back(r);
  if (in_row_ && !current_.empty()) all.push_back(current_);

  std::vector<std::size_t> widths(headers_.size(), 0);
  for (const auto& row : all) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string cell = c < row.size() ? row[c] : std::string{};
      const std::size_t pad = widths[c] - cell.size();
      if (c != 0) os << "  ";
      if (aligns_[c] == Align::Right) os << std::string(pad, ' ') << cell;
      else os << cell << std::string(pad, ' ');
    }
    os << '\n';
  };

  emit(headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) rule += widths[c] + (c ? 2 : 0);
  os << std::string(rule, '-') << '\n';
  for (std::size_t i = 1; i < all.size(); ++i) emit(all[i]);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& r : rows_) emit(r);
  if (in_row_ && !current_.empty()) emit(current_);
}

}  // namespace sbgp::stats
