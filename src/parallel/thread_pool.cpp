#include "parallel/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "obs/metrics.h"

namespace sbgp::par {

namespace {
// Worker identity for per-worker scratch addressing. thread_local, so a
// worker of pool A nested inside a task of pool B would shadow B's index —
// the codebase never nests pools, and the index is only consulted by bodies
// running on the innermost pool anyway.
thread_local std::size_t t_worker_index = ThreadPool::kNotAWorker;

// Hand the worker index to obs so metric shards line up with pool workers
// (obs cannot link against this library; the provider hook breaks the
// cycle). kNotAWorker and obs's "not a worker" sentinel are both SIZE_MAX.
[[maybe_unused]] const bool obs_provider_registered = [] {
  obs::set_shard_index_provider(&ThreadPool::current_worker_index);
  return true;
}();
}  // namespace

std::size_t ThreadPool::current_worker_index() { return t_worker_index; }

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] {
      t_worker_index = i;
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  const std::uint64_t enqueue_ns = obs::metrics_enabled() ? obs::now_ns() : 0;
  {
    std::scoped_lock lock(mutex_);
    tasks_.push(Task{std::move(task), enqueue_ns});
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_;
    }
    if (task.enqueue_ns != 0) {
      // Reference resolved once per process; add/record are lock-free.
      static obs::LatencyHistogram& queue_wait =
          obs::Registry::global().histogram("par.queue_wait_ns");
      static obs::Counter& executed =
          obs::Registry::global().counter("par.tasks_executed");
      queue_wait.record_ns(obs::now_ns() - task.enqueue_ns);
      executed.add(1);
    }
    task.fn();
    {
      std::scoped_lock lock(mutex_);
      --active_;
      if (tasks_.empty() && active_ == 0) all_done_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  parallel_for_chunked(pool, begin, end,
                       [&body](std::size_t lo, std::size_t hi) {
                         for (std::size_t i = lo; i < hi; ++i) body(i);
                       });
}

void parallel_for_dynamic(ThreadPool& pool, std::size_t begin, std::size_t end,
                          const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  const auto next = std::make_shared<std::atomic<std::size_t>>(begin);
  const std::size_t feeders = std::min(end - begin, pool.size());
  for (std::size_t f = 0; f < feeders; ++f) {
    pool.submit([&body, next, end] {
      for (;;) {
        const std::size_t i = next->fetch_add(1, std::memory_order_relaxed);
        if (i >= end) return;
        body(i);
      }
    });
  }
  pool.wait_idle();
}

void parallel_for_chunked(
    ThreadPool& pool, std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  // Over-decompose ~4x relative to worker count so stragglers balance out
  // (per-destination work is highly variable, cf. Appendix C.5).
  const std::size_t chunks = std::min(n, pool.size() * 4);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  for (std::size_t lo = begin; lo < end; lo += chunk) {
    const std::size_t hi = std::min(end, lo + chunk);
    pool.submit([&body, lo, hi] { body(lo, hi); });
  }
  pool.wait_idle();
}

}  // namespace sbgp::par
