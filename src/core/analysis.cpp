#include "core/analysis.h"

#include <atomic>
#include <mutex>

#include "routing/rib.h"
#include "routing/routing_tree.h"

namespace sbgp::core {

SecurePathStats count_secure_paths(const AsGraph& graph,
                                   const std::vector<std::uint8_t>& secure,
                                   const SimConfig& cfg, par::ThreadPool& pool) {
  const std::size_t n = graph.num_nodes();
  std::atomic<std::uint64_t> secure_pairs{0};
  par::parallel_for_chunked(pool, 0, n, [&](std::size_t lo, std::size_t hi) {
    rt::RibComputer rc(graph);
    rt::TreeComputer tc(graph);
    rt::DestRib rib;
    rt::RoutingTree tree;
    rt::SecurityView view;
    view.graph = &graph;
    view.base = secure.data();
    view.stub_breaks_ties = cfg.stub_breaks_ties;
    std::uint64_t local = 0;
    for (std::size_t d = lo; d < hi; ++d) {
      if (secure[d] == 0) continue;  // no path to an insecure dest is secure
      rc.compute(static_cast<AsId>(d), rib);
      tc.compute(rib, view, cfg.tiebreak, tree);
      for (const AsId i : rib.order) {
        if (i != rib.dest && tree.path_secure[i] != 0) ++local;
      }
    }
    secure_pairs.fetch_add(local, std::memory_order_relaxed);
  });

  SecurePathStats out;
  out.total_pairs = static_cast<std::uint64_t>(n) * (n - 1);
  out.secure_pairs = secure_pairs.load();
  out.fraction = out.total_pairs == 0
                     ? 0.0
                     : static_cast<double>(out.secure_pairs) /
                           static_cast<double>(out.total_pairs);
  std::size_t num_secure = 0;
  for (const std::uint8_t s : secure) num_secure += s;
  out.f = n == 0 ? 0.0 : static_cast<double>(num_secure) / static_cast<double>(n);
  out.f_squared = out.f * out.f;
  return out;
}

TiebreakDistribution tiebreak_distribution(const AsGraph& graph,
                                           par::ThreadPool& pool) {
  const std::size_t n = graph.num_nodes();
  TiebreakDistribution total;
  std::mutex merge_mutex;
  par::parallel_for_chunked(pool, 0, n, [&](std::size_t lo, std::size_t hi) {
    rt::RibComputer rc(graph);
    rt::DestRib rib;
    TiebreakDistribution local;
    for (std::size_t d = lo; d < hi; ++d) {
      rc.compute(static_cast<AsId>(d), rib);
      for (const AsId i : rib.order) {
        if (i == rib.dest) continue;
        const auto size = static_cast<std::uint64_t>(rib.tiebreak(i).size());
        local.all.add(size);
        if (graph.is_isp(i)) local.isp.add(size);
        else if (graph.is_stub(i)) local.stub.add(size);
      }
    }
    std::scoped_lock lock(merge_mutex);
    auto merge_hist = [](stats::IntHistogram& into, const stats::IntHistogram& from) {
      for (const auto& [value, count] : from.bins()) into.add(value, count);
    };
    merge_hist(total.all, local.all);
    merge_hist(total.isp, local.isp);
    merge_hist(total.stub, local.stub);
  });
  return total;
}

std::vector<DiamondCount> count_diamonds(const AsGraph& graph,
                                         std::span<const AsId> adopters,
                                         par::ThreadPool& pool) {
  const std::size_t n = graph.num_nodes();
  std::vector<DiamondCount> out(adopters.size());
  for (std::size_t a = 0; a < adopters.size(); ++a) out[a].adopter = adopters[a];
  std::mutex merge_mutex;

  par::parallel_for_chunked(pool, 0, n, [&](std::size_t lo, std::size_t hi) {
    rt::RibComputer rc(graph);
    rt::DestRib rib;
    std::vector<DiamondCount> local(out.begin(), out.end());
    for (auto& l : local) {
      l.diamonds = 0;
      l.strict_diamonds = 0;
    }
    for (std::size_t d = lo; d < hi; ++d) {
      const AsId dest = static_cast<AsId>(d);
      if (!graph.is_stub(dest)) continue;
      rc.compute(dest, rib);
      for (std::size_t a = 0; a < adopters.size(); ++a) {
        const AsId e = adopters[a];
        if (e == dest || !rib.reachable(e)) continue;
        const auto tb = rib.tiebreak(e);
        if (tb.size() < 2) continue;
        ++local[a].diamonds;
        // Strict diamond: two competing next hops that are both direct
        // providers of the stub (the Figure 2 shape).
        std::size_t providers_of_stub = 0;
        const auto provs = graph.providers(dest);
        for (const AsId cand : tb) {
          if (std::binary_search(provs.begin(), provs.end(), cand)) {
            ++providers_of_stub;
          }
        }
        if (providers_of_stub >= 2) ++local[a].strict_diamonds;
      }
    }
    std::scoped_lock lock(merge_mutex);
    for (std::size_t a = 0; a < out.size(); ++a) {
      out[a].diamonds += local[a].diamonds;
      out[a].strict_diamonds += local[a].strict_diamonds;
    }
  });
  return out;
}

TurnOffScan scan_turn_off_incentives(const AsGraph& graph,
                                     const std::vector<std::uint8_t>& secure,
                                     const SimConfig& cfg, par::ThreadPool& pool) {
  const std::size_t n = graph.num_nodes();
  std::vector<std::uint8_t> incentive(n, 0);
  std::atomic<std::uint64_t> pair_count{0};
  std::mutex best_mutex;
  TurnOffScan out;

  par::parallel_for_chunked(pool, 0, n, [&](std::size_t lo, std::size_t hi) {
    rt::RibComputer rc(graph);
    rt::TreeComputer tc(graph);
    rt::DestRib rib;
    rt::RoutingTree tree, flipped;
    rt::SecurityView base_view;
    base_view.graph = &graph;
    base_view.base = secure.data();
    base_view.stub_breaks_ties = cfg.stub_breaks_ties;
    double local_best = 0.0;
    AsId local_best_isp = topo::kNoAs;
    std::uint64_t local_pairs = 0;
    std::vector<std::uint8_t> local_incentive(n, 0);

    for (std::size_t di = lo; di < hi; ++di) {
      const AsId d = static_cast<AsId>(di);
      if (secure[d] == 0) continue;  // no secure paths to an insecure dest
      rc.compute(d, rib);
      tc.compute(rib, base_view, cfg.tiebreak, tree);
      for (const AsId i : rib.order) {
        if (!graph.is_isp(i) || secure[i] == 0) continue;
        if (tree.has_secure_candidate[i] == 0 && i != d) continue;
        rt::SecurityView view = base_view;
        view.flip_off = i;
        tc.compute(rib, view, cfg.tiebreak, flipped);
        const double before = rt::node_contribution(graph, rib, tree, i).incoming;
        const double after = rt::node_contribution(graph, rib, flipped, i).incoming;
        if (after > before + 1e-9) {
          local_incentive[i] = 1;
          ++local_pairs;
          if (after - before > local_best) {
            local_best = after - before;
            local_best_isp = i;
          }
        }
      }
    }
    pair_count.fetch_add(local_pairs, std::memory_order_relaxed);
    std::scoped_lock lock(best_mutex);
    for (std::size_t i = 0; i < n; ++i) incentive[i] |= local_incentive[i];
    if (local_best > out.best_gain) {
      out.best_gain = local_best;
      out.best_isp = local_best_isp;
    }
  });

  for (AsId i = 0; i < n; ++i) {
    if (graph.is_isp(i) && secure[i] != 0) {
      ++out.secure_isps;
      if (incentive[i] != 0) ++out.isps_with_incentive;
    }
  }
  out.isp_dest_pairs = pair_count.load();
  return out;
}

PerDestTurnOffResult run_per_destination_turn_off(
    const AsGraph& graph, const std::vector<std::uint8_t>& secure,
    const SimConfig& cfg, par::ThreadPool& pool, std::size_t max_rounds) {
  const std::size_t n = graph.num_nodes();
  PerDestTurnOffResult result;
  result.suppressed.assign(n, std::vector<std::uint8_t>(n, 0));

  for (std::size_t round = 1; round <= max_rounds; ++round) {
    std::atomic<std::uint64_t> changes{0};
    // Each destination's dynamics are independent given the suppression
    // matrix of the previous round (suppression for d only affects trees
    // toward d), so one pass per round suffices and parallelises cleanly.
    par::parallel_for_chunked(pool, 0, n, [&](std::size_t lo, std::size_t hi) {
      rt::RibComputer rc(graph);
      rt::TreeComputer tc(graph);
      rt::DestRib rib;
      rt::RoutingTree tree, flipped;
      std::uint64_t local_changes = 0;
      for (std::size_t di = lo; di < hi; ++di) {
        const AsId d = static_cast<AsId>(di);
        if (secure[d] == 0) continue;  // no secure paths to flip against
        auto& supp = result.suppressed[d];
        rc.compute(d, rib);
        rt::SecurityView view;
        view.graph = &graph;
        view.base = secure.data();
        view.stub_breaks_ties = cfg.stub_breaks_ties;
        view.suppressed = supp.data();
        tc.compute(rib, view, cfg.tiebreak, tree);
        for (const AsId i : rib.order) {
          if (!graph.is_isp(i) || secure[i] == 0 || i == d) continue;
          if (tree.has_secure_candidate[i] == 0) continue;
          rt::SecurityView probe = view;
          double now, other;
          if (supp[i] == 0) {
            probe.flip_off = i;  // what if i suppressed d?
            tc.compute(rib, probe, cfg.tiebreak, flipped);
            now = rt::node_contribution(graph, rib, tree, i).incoming;
            other = rt::node_contribution(graph, rib, flipped, i).incoming;
            if (other > now + 1e-9) {
              supp[i] = 1;
              ++local_changes;
            }
          } else {
            probe.unsuppress = i;  // what if i re-enabled d?
            tc.compute(rib, probe, cfg.tiebreak, flipped);
            now = rt::node_contribution(graph, rib, tree, i).incoming;
            other = rt::node_contribution(graph, rib, flipped, i).incoming;
            if (other > now + 1e-9) {
              supp[i] = 0;
              ++local_changes;
            }
          }
        }
      }
      changes.fetch_add(local_changes, std::memory_order_relaxed);
    });
    result.rounds = round;
    if (changes.load() == 0) {
      result.converged = true;
      break;
    }
  }

  std::vector<std::uint8_t> any(n, 0);
  for (AsId d = 0; d < n; ++d) {
    for (AsId i = 0; i < n; ++i) {
      if (result.suppressed[d][i] != 0) {
        ++result.suppressed_pairs;
        any[i] = 1;
      }
    }
  }
  for (AsId i = 0; i < n; ++i) result.isps_suppressing += any[i];
  return result;
}

}  // namespace sbgp::core
