// The round-based S*BGP deployment simulator (Sections 3–4): in every round
// each ISP computes its utility u_n(S) and its projected utility
// u_n(~S_n, S_-n) under the myopic best-response rule (Eq. 3), all ISPs that
// clear the threshold flip simultaneously, and newly secure ISPs simplex-
// upgrade their stub customers. Implements the Appendix C optimisations:
// state-independent per-destination RIBs (C.1), the fast routing tree (C.2),
// parallelisation across destinations (C.3), and the projection-pruning
// rules (C.4).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/deployment_state.h"
#include "parallel/thread_pool.h"
#include "routing/routing_tree.h"
#include "routing/source_labels.h"
#include "topology/as_graph.h"

namespace sbgp::core {

/// Which of the two ISP utility models of Section 3.3 drives decisions.
enum class UtilityModel : std::uint8_t {
  Outgoing,  ///< Eq. 1 — traffic forwarded toward customers; monotone (Thm 6.2)
  Incoming,  ///< Eq. 2 — traffic received over customer edges; may oscillate
};

[[nodiscard]] const char* to_string(UtilityModel m);

/// Why the simulation stopped.
enum class Outcome : std::uint8_t {
  Stable,           ///< no ISP wants to change its action
  Oscillating,      ///< a previous state recurred (only possible in Incoming)
  RoundCapReached,  ///< max_rounds elapsed without stabilising
  Aborted,          ///< stop_requested fired (cooperative deadline/cancel)
};

[[nodiscard]] const char* to_string(Outcome o);

/// How traffic volume maps to revenue (Section 8.4: "ISPs may use a variety
/// of pricing policies"). The myopic rule (Eq. 3) compares *revenues*:
/// flip when revenue(projected) > (1+theta) * revenue(current).
enum class PricingModel : std::uint8_t {
  LinearVolume,    ///< revenue proportional to traffic (the paper's default)
  ConcaveVolume,   ///< sqrt(volume): volume discounts dampen large-ISP gains
  TieredCapacity,  ///< flat rate per discrete capacity unit (95th-percentile
                   ///< style billing): revenue = ceil(volume / tier_size)
};

[[nodiscard]] const char* to_string(PricingModel p);

struct SimConfig {
  UtilityModel model = UtilityModel::Outgoing;
  /// Deployment threshold θ of Eq. 3 (e.g. 0.05 = deploy when projected
  /// utility exceeds current utility by more than 5%).
  double theta = 0.05;
  /// Optional per-ISP thresholds (Section 8.2: "extensions might capture
  /// inaccurate estimates of projected utility by randomizing theta").
  /// When set (size num_nodes), overrides `theta` per node.
  const std::vector<double>* per_node_theta = nullptr;
  /// Revenue curve applied to utilities before the Eq. 3 comparison.
  PricingModel pricing = PricingModel::LinearVolume;
  /// Capacity-unit size for PricingModel::TieredCapacity.
  double pricing_tier_size = 10.0;
  /// Do simplex stubs break ties in favour of secure routes (Section 6.7)?
  bool stub_breaks_ties = true;
  /// May secure ISPs turn S*BGP off? Only meaningful in the Incoming model;
  /// in the Outgoing model turning off is never beneficial (Thm 6.2) and is
  /// skipped outright.
  bool allow_turn_off = true;
  /// Intradomain tie-break (TB step). The paper's simulations use the
  /// pairwise hash; the gadget constructions use Rank mode.
  rt::TieBreakPolicy tiebreak{};
  /// Safety cap on rounds (the paper's runs stabilised within 2–40).
  std::size_t max_rounds = 200;
  /// Worker threads for the per-destination fan-out; 0 = hardware.
  std::size_t threads = 0;
  /// Use the Appendix C.4 projection-pruning rules (and, in the outgoing
  /// model, the zero-contribution class rule). Disabling this evaluates a
  /// flipped routing tree for EVERY (ISP, destination) pair — O(|V|^2)
  /// trees per round, only feasible on small graphs. The results must be
  /// identical; tests assert this equivalence.
  bool use_projection_pruning = true;
  /// Optional per-node freeze flags: frozen nodes never change action (the
  /// "fixed nodes" of the gadget constructions, Appendix K.3 — the paper
  /// pins them with auxiliary sub-gadgets "omitted to reduce clutter"; we
  /// pin them directly). Frozen stubs are also exempt from simplex upgrades.
  const std::vector<std::uint8_t>* frozen = nullptr;
  /// Cooperative cancellation, polled once per round: when it returns true
  /// the run stops with Outcome::Aborted and the state reached so far. Used
  /// by the exp:: sweep scheduler to enforce per-job deadlines without
  /// tearing down threads mid-round. Must be cheap and thread-compatible.
  std::function<bool()> stop_requested;
  /// Incremental dirty-destination round engine: cache every destination's
  /// per-round evaluation bundle (routing tree fingerprint, utility
  /// contributions, Eq. 3 projection deltas) together with its state
  /// footprint — the set of nodes whose secure bit the bundle actually
  /// depends on — and recompute a destination only when a node that changed
  /// in the previous round (ISP flipped on/off, or stub newly simplex-
  /// secured) lies in its footprint. Results are bitwise identical to the
  /// full recompute by construction: clean destinations reuse their cached
  /// bundle and the per-destination contributions are aggregated in a fixed
  /// order either way. Within `incremental_cache_budget` the engine also
  /// keeps per-destination RIBs (state-independent, Obs. C.1) and base
  /// routing trees across rounds, and refreshes bundles whose base tree is
  /// provably unchanged by recomputing only their stale projection entries.
  /// Requires `use_projection_pruning`; ignored (full recompute every
  /// round) when pruning is disabled.
  bool incremental = true;
  /// Evaluate Eq. 3 projections with the frontier-delta kernel
  /// (rt::TreeDelta): instead of a full routing-tree rebuild per
  /// (destination, candidate flip), re-resolve only the winners the flip can
  /// actually perturb and repair the subtree weights along the dirty spine,
  /// reading the result through a copy-on-write overlay over the base tree.
  /// Bitwise identical to the full rebuild by construction (the differential
  /// tests and --check-incremental assert it); candidates the kernel cannot
  /// cover (unsorted tiebreaks, hijack RIBs, flips past the touched-nodes
  /// threshold) silently fall back to the full rebuild. Off = always rebuild
  /// (the pre-delta behaviour, kept for benchmarking and bisection).
  bool projection_delta = true;
  /// Differential-testing mode: run the full recompute in lockstep with the
  /// incremental engine and compare every clean destination's cached bundle
  /// against a fresh one, bit for bit (tree fingerprint, utilities,
  /// projection deltas). Destinations taking the partial-update path are
  /// checked too: the selectively refreshed bundle must equal a full
  /// recompute entry for entry. Any divergence throws
  /// IncrementalDivergence out of run(). Implies the cost of the full
  /// engine; use in tests and when validating changes to the routing core.
  bool check_incremental = false;
  /// Memory budget (bytes) for the incremental engine's cross-round caches.
  /// The engine keeps every destination's state-independent RIB (Obs. C.1 —
  /// the single most expensive part of a bundle recompute) and its base
  /// routing tree alive across rounds; the RIB cache also enables the
  /// partial-update path that refreshes only a bundle's stale projection
  /// entries. Total cost is O(N^2 + N*E) bytes; when the upper-bound
  /// estimate for the graph exceeds this budget the engine falls back to
  /// per-round RIB/tree recomputation (still incremental, just slower).
  /// Results are bitwise identical either way. 0 disables the caches.
  std::size_t incremental_cache_budget = std::size_t{1} << 30;
};

/// Thrown by DeploymentSimulator::run in `check_incremental` mode when a
/// cached (incremental) per-destination bundle differs from the full
/// recompute — i.e. the dirty-footprint invariant was violated. Always a
/// bug in the engine, never a property of the input.
struct IncrementalDivergence : std::runtime_error {
  IncrementalDivergence(std::size_t round_, AsId dest_, const std::string& detail)
      : std::runtime_error("incremental engine diverged from full recompute at round " +
                           std::to_string(round_) + ", destination " +
                           std::to_string(dest_) + ": " + detail),
        round(round_),
        dest(dest_) {}
  std::size_t round;
  AsId dest;
};

/// Per-round aggregate statistics (Figure 3).
struct RoundStats {
  std::size_t round = 0;               ///< 1-based
  std::size_t newly_secure_isps = 0;   ///< ISPs flipping on this round
  std::size_t newly_secure_stubs = 0;  ///< stubs simplex-secured this round
  std::size_t turned_off = 0;          ///< ISPs flipping off this round
  std::size_t total_secure_ases = 0;   ///< after the round
  std::size_t total_secure_isps = 0;   ///< after the round
  /// Destinations whose evaluation bundle was recomputed this round (equals
  /// num_nodes under the full engine; typically collapses to a small
  /// fraction after the first round under SimConfig::incremental).
  std::size_t recomputed_destinations = 0;

  // --- Observability payload (obs:: telemetry). Timings and engine
  // internals only — never part of the simulation *result*; differential
  // tests and the bench identity checks compare the fields above.
  /// Nodes whose secure bit changed entering this round (the dirty seed set
  /// driving footprint invalidation; 0 in round 1 and under the full engine).
  std::size_t dirty_seeds = 0;
  /// Recomputed destinations that took the cheaper partial-update path
  /// (cached base tree provably unchanged, only stale projections redone).
  std::size_t partial_updates = 0;
  /// Eq. 3 projections evaluated by the frontier-delta kernel this round
  /// (mirrored by the `sim.proj.delta_applied` obs counter).
  std::size_t proj_delta_applied = 0;
  /// Projections that paid a full flipped-tree rebuild: the first projection
  /// of each bound destination, kernel-ineligible RIBs, threshold bailouts,
  /// and everything when `projection_delta` is off (`sim.proj.full_fallback`).
  std::size_t proj_full_fallback = 0;
  /// Total nodes touched (selections re-resolved + weights refolded) across
  /// the round's delta-applied projections (`sim.proj.nodes_touched`).
  std::size_t proj_nodes_touched = 0;
  double scan_ms = 0.0;  ///< dirty-footprint scan / work-list build
  double eval_ms = 0.0;  ///< parallel per-destination bundle phase
  double fold_ms = 0.0;  ///< fixed-order aggregation over all bundles
};

/// Everything an observer can see about a round, *before* flips are applied.
/// Projections are NaN for nodes that were not evaluated (their flip provably
/// cannot change any routing tree; projected == current).
struct RoundObservation {
  std::size_t round = 0;  ///< 1-based
  const std::vector<std::uint8_t>* secure = nullptr;   ///< state entering the round
  const std::vector<double>* utility = nullptr;        ///< u_n(S), chosen model
  const std::vector<double>* projected_on = nullptr;   ///< u_n(~S_n,S_-n) turning on
  const std::vector<double>* projected_off = nullptr;  ///< turning off
  const std::vector<AsId>* flipping_on = nullptr;      ///< decisions of this round
  const std::vector<AsId>* flipping_off = nullptr;
};

using RoundObserver = std::function<void(const RoundObservation&)>;

struct SimResult {
  Outcome outcome = Outcome::Stable;
  std::vector<RoundStats> rounds;
  DeploymentState final_state{0};
  /// Utility of every node in the final state (chosen model).
  std::vector<double> final_utility;
  /// Utility of every node in the all-insecure starting state ("starting
  /// utility" in Figures 4, 5).
  std::vector<double> starting_utility;

  [[nodiscard]] std::size_t rounds_run() const { return rounds.size(); }
};

/// Applies a pricing model to a raw traffic volume (monotone in volume).
[[nodiscard]] double apply_pricing(PricingModel pricing, double tier_size,
                                   double volume);

/// Draws per-ISP thresholds around `theta` (uniform in
/// [theta*(1-spread), theta*(1+spread)]), the Section 8.2 randomization.
/// Non-ISPs get `theta` unchanged.
[[nodiscard]] std::vector<double> randomized_thetas(const AsGraph& graph,
                                                    double theta, double spread,
                                                    std::uint64_t seed);

/// Computes u_n for every node under `secure` — both models at once.
/// Standalone entry point shared by the simulator, the analysis helpers and
/// the benches. `enabled_links` optionally restricts S*BGP to a per-link
/// deployment (Theorem 8.2 / Appendix J) in CSR form (rt::LinkSet); null
/// means every link of every secure AS is active.
[[nodiscard]] rt::UtilityAccumulator compute_utilities(
    const AsGraph& graph, const std::vector<std::uint8_t>& secure,
    const SimConfig& cfg, par::ThreadPool& pool,
    const rt::LinkSet* enabled_links = nullptr);

/// One-shot evaluation of a deployment state (no dynamics): every node's
/// utility and Eq. 3 projections, plus the flip decision each unfrozen ISP
/// would take from here. Projections are NaN where the pruning rules proved
/// the flip cannot change any routing tree (projected == current there).
struct StateEvaluation {
  std::vector<double> utility;
  std::vector<double> projected_on;
  std::vector<double> projected_off;
  /// Eq. 3 verdicts under the configured theta/pricing: would this node flip
  /// on (insecure ISPs) / flip off (secure ISPs, Incoming model with
  /// allow_turn_off)? Zero elsewhere.
  std::vector<std::uint8_t> would_flip_on;
  std::vector<std::uint8_t> would_flip_off;
  RoundStats stats;  ///< engine internals for this evaluation (round = 0)
};

/// The deployment simulator. Construct once per (graph, config); `run` may
/// be called repeatedly with different initial states.
class DeploymentSimulator {
 public:
  DeploymentSimulator(const AsGraph& graph, SimConfig cfg);
  ~DeploymentSimulator();

  /// Runs the process from `initial` until stability, oscillation, or the
  /// round cap. `observer` (optional) is invoked once per round. In
  /// `check_incremental` mode, throws IncrementalDivergence on any
  /// incremental/full mismatch.
  [[nodiscard]] SimResult run(const DeploymentState& initial,
                              const RoundObserver& observer = nullptr);

  /// Evaluates `state` without advancing the dynamics. Drives the same
  /// incremental engine as run(): the first call (or the first after run()
  /// or a cache-dropping topology change) pays a full evaluation; later
  /// calls recompute only the destinations whose dirty footprint intersects
  /// the flag diff against the previously evaluated state, plus any
  /// destinations force-dirtied by apply_topology_delta. This is the
  /// warm-path backing of the svc:: what-if queries. The returned reference
  /// stays valid until the next evaluate_state()/run()/apply_topology_delta
  /// call. Under `check_incremental`, every warm call is cross-checked
  /// against a full recompute (throws IncrementalDivergence on mismatch).
  const StateEvaluation& evaluate_state(const DeploymentState& state);

  /// Result of apply_topology_delta: the CSR patch report plus how much
  /// cached routing state the invalidation layer had to drop.
  struct TopoApplyResult {
    topo::TopoPatchStats patch;
    /// Destinations whose stored state-independent RIB was staled by the
    /// endpoint candidate-label test (recomputed lazily on next evaluation).
    std::size_t ribs_invalidated = 0;
    /// Destinations force-marked dirty for the next evaluation (label hits
    /// plus footprint hits on touched/reclassified nodes).
    std::size_t bundles_invalidated = 0;
    /// A node was added (or the cache was cold): every per-node slab was
    /// rebuilt and the next evaluation is a full one.
    bool full_invalidation = false;
  };

  /// Applies `delta` to `graph` — which must be the same object this
  /// simulator was constructed over — patching the CSR slabs in place and
  /// invalidating exactly the cached destinations whose routing trees can
  /// change: per edge op, a destination is staled iff the edge offers a
  /// best-or-tied route at either endpoint (rt::edge_candidate_hits over
  /// source labels computed on the pre-op graph), and a bundle is re-marked
  /// dirty iff its secure-candidate footprint contains a touched or
  /// reclassified node. Node additions rebuild the per-node caches
  /// wholesale (every slab is dimensioned at |V|). Ops apply in order; on
  /// throw, ops before the offending one remain applied and the caches stay
  /// consistent with the patched graph.
  ///
  /// Rejected (std::invalid_argument): deltas under an external tiebreak
  /// rank table, per-node theta, or frozen flags when they would go
  /// out-of-bounds for a node add; invalid ops per AsGraph::apply_op.
  /// `row_budget` is forwarded to AsGraph::apply_op (0 = auto).
  TopoApplyResult apply_topology_delta(topo::AsGraph& graph,
                                       const topo::TopoDelta& delta,
                                       std::size_t row_budget = 0);

  [[nodiscard]] const SimConfig& config() const { return cfg_; }

 private:
  struct RoundOutput;
  struct Cache;  // per-destination bundle cache + per-worker scratch (pimpl)
  /// Evaluates one round into `out`; returns the number of destinations
  /// actually recomputed. `round` is 1-based, for divergence reporting.
  /// `stats` (optional) receives the observability payload: dirty-seed /
  /// partial-update counts and per-phase wall times.
  std::size_t evaluate_round(const DeploymentState& state, RoundOutput& out,
                             std::size_t round, RoundStats* stats = nullptr);
  void apply_topo_op(topo::AsGraph& graph, const topo::TopoOp& op,
                     std::size_t row_budget, TopoApplyResult& out);

  const AsGraph& graph_;
  SimConfig cfg_;
  par::ThreadPool pool_;
  std::unique_ptr<Cache> cache_;
  // evaluate_state() continuity: the flags evaluated last time (diff seed for
  // the next warm call) and the reusable output buffers. run() invalidates
  // the continuity (its final flip application leaves bundles describing a
  // pre-flip state).
  std::vector<std::uint8_t> last_flags_;
  bool has_last_flags_ = false;
  std::unique_ptr<RoundOutput> eval_out_;
  StateEvaluation eval_;
  // Topology-delta scratch (lazily constructed; rebuilt on node add).
  std::unique_ptr<rt::SourceLabelComputer> labeler_;
  std::vector<rt::RouteClass> lbl_cls_a_, lbl_cls_b_;
  std::vector<std::uint16_t> lbl_len_a_, lbl_len_b_;
};

}  // namespace sbgp::core
