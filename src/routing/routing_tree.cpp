#include "routing/routing_tree.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <limits>

#include "obs/metrics.h"

namespace sbgp::rt {

namespace {

/// splitmix64 finalizer — the pairwise intradomain tie-break hash H(a,b).
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t TieBreakPolicy::key(AsId i, AsId j, const AsGraph& graph) const {
  switch (mode) {
    case Mode::PairwiseHash:
      return mix64((static_cast<std::uint64_t>(i) << 32) | j);
    case Mode::Rank:
      return rank != nullptr ? (*rank)[j] : graph.asn(j);
  }
  return 0;
}

TreeComputer::TreeComputer(const AsGraph& graph) : graph_(graph) {}

void TreeComputer::compute(const RibView& rib, const SecurityView& view,
                           const TieBreakPolicy& tb, RoutingTree& out) {
  // Legacy/general entry point: snapshot the branchy per-node predicate into
  // word-packed bits once, then run the mask path. The arena is never reset —
  // the mask has the same shape every build, so after the first call this
  // allocates nothing.
  scratch_mask_.build(view, arena_);
  compute(rib, scratch_mask_, tb, out);
}

void TreeComputer::compute(const RibView& rib, const SecureMask& mask,
                           const TieBreakPolicy& tb, RoutingTree& out) const {
  // Counter add is a relaxed fetch_add on a per-worker shard — cheap enough
  // for this per-tree path (one increment amortised over O(N) node work).
  static obs::Counter& trees_built =
      obs::Registry::global().counter("rt.trees_built");
  trees_built.add(1);
  const std::size_t n = graph_.num_nodes();
  out.dest = rib.dest;
  // Hot path: arrays are only resized, never cleared. Every cell belonging
  // to a node in rib.order is freshly written below (parents before
  // children, so the subtree fold sees initialised parents). Cells of
  // unreachable nodes are stale; all consumers iterate rib.order or check
  // rib.reachable() first.
  if (out.next_hop.size() != n) {
    out.next_hop.assign(n, kNoAs);
    out.path_secure.assign(n, 0);
    out.subtree_weight.assign(n, 0.0);
    out.has_secure_candidate.assign(n, 0);
  }
  const bool hijack = rib.impostor != kNoAs;
  if (hijack) {
    if (out.origin.size() != n) out.origin.assign(n, kNoAs);
  } else if (!out.origin.empty()) {
    out.origin.clear();
  }

  for (const AsId i : rib.order) {
    if (i == rib.dest || i == rib.impostor) {
      out.next_hop[i] = kNoAs;
      // A bogus origin can never offer a fully secure route: the RPKI ROA
      // names the true destination, so path validation fails at the origin
      // (cf. proto::validate_path).
      out.path_secure[i] = (i == rib.dest && mask.is_secure(i)) ? 1 : 0;
      out.subtree_weight[i] = graph_.weight(i);
      out.has_secure_candidate[i] = 0;
      if (hijack) out.origin[i] = i;
      continue;
    }
    const auto candidates = rib.tiebreak(i);
    assert(!candidates.empty());
    // A candidate offers a fully secure route iff the neighbour's own route
    // is fully secure AND the hop to it is cryptographically active (always
    // true unless per-link deployment is in play).
    const auto cand_secure = [&](AsId j) {
      return out.path_secure[j] != 0 && mask.hop_secure(j, i);
    };
    AsId best = kNoAs;
    if (rib.tb_sorted) {
      // Candidates are pre-ordered by tie-break key (sort_tiebreaks): the
      // winner is the first secure candidate when SecP restricts the set,
      // else the first candidate outright — no hashing.
      AsId first_secure = kNoAs;
      for (const AsId j : candidates) {
        if (cand_secure(j)) {
          first_secure = j;
          break;
        }
      }
      out.has_secure_candidate[i] = first_secure != kNoAs ? 1 : 0;
      best = (first_secure != kNoAs && mask.applies_secp(i)) ? first_secure
                                                             : candidates[0];
    } else {
      bool any_secure = false;
      for (const AsId j : candidates) {
        if (cand_secure(j)) {
          any_secure = true;
          break;
        }
      }
      out.has_secure_candidate[i] = any_secure ? 1 : 0;
      const bool restrict_secure = any_secure && mask.applies_secp(i);

      std::uint64_t best_key = std::numeric_limits<std::uint64_t>::max();
      for (const AsId j : candidates) {
        if (restrict_secure && !cand_secure(j)) continue;
        const std::uint64_t k = tb.key(i, j, graph_);
        if (k < best_key) {
          best_key = k;
          best = j;
        }
      }
    }
    assert(best != kNoAs);
    out.next_hop[i] = best;
    out.path_secure[i] = (cand_secure(best) && mask.is_secure(i)) ? 1 : 0;
    out.subtree_weight[i] = graph_.weight(i);
    if (hijack) out.origin[i] = out.origin[best];
  }

  // Fold subtree weights toward the origins (descending length order).
  for (std::size_t k = rib.order.size(); k-- > 0;) {
    const AsId i = rib.order[k];
    if (i == rib.dest || i == rib.impostor) continue;
    out.subtree_weight[out.next_hop[i]] += out.subtree_weight[i];
  }
}

std::vector<AsId> TreeComputer::extract_path(const RoutingTree& tree, AsId src) {
  std::vector<AsId> path;
  if (src == tree.dest) return {src};
  if (src >= tree.next_hop.size() || tree.next_hop[src] == kNoAs) return {};
  AsId cur = src;
  while (cur != kNoAs) {
    path.push_back(cur);
    if (cur == tree.dest) return path;
    if (path.size() > tree.next_hop.size()) break;  // defensive: no cycles expected
    cur = tree.next_hop[cur];
  }
  return {};
}

void sort_tiebreaks(const AsGraph& graph, const TieBreakPolicy& tb,
                    DestRib& rib) {
  static obs::Counter& tiebreak_sorts =
      obs::Registry::global().counter("rt.tiebreak_sorts");
  tiebreak_sorts.add(1);
  std::vector<std::pair<std::uint64_t, AsId>> keyed;
  for (const AsId i : rib.order) {
    const auto begin = rib.tb_begin[i];
    const auto end = rib.tb_begin[i + 1];
    if (end - begin < 2) continue;  // single candidate: trivially sorted
    keyed.clear();
    for (std::uint32_t k = begin; k < end; ++k) {
      keyed.emplace_back(tb.key(i, rib.tb[k], graph), rib.tb[k]);
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    for (std::uint32_t k = begin; k < end; ++k) {
      rib.tb[k] = keyed[k - begin].second;
    }
  }
  rib.tb_sorted = true;
}

std::vector<std::vector<AsId>> full_link_mask(const AsGraph& graph) {
  std::vector<std::vector<AsId>> mask(graph.num_nodes());
  for (AsId n = 0; n < graph.num_nodes(); ++n) {
    auto& v = mask[n];
    v.insert(v.end(), graph.customers(n).begin(), graph.customers(n).end());
    v.insert(v.end(), graph.peers(n).begin(), graph.peers(n).end());
    v.insert(v.end(), graph.providers(n).begin(), graph.providers(n).end());
    std::sort(v.begin(), v.end());
  }
  return mask;
}

void UtilityAccumulator::reset() {
  std::fill(outgoing.begin(), outgoing.end(), 0.0);
  std::fill(incoming.begin(), incoming.end(), 0.0);
}

void UtilityAccumulator::add_tree(const AsGraph& graph, const RibView& rib,
                                  const RoutingTree& t) {
  for (const AsId i : rib.order) {
    if (i == rib.dest) continue;
    if (rib.cls[i] == RouteClass::Customer) {
      outgoing[i] += t.subtree_weight[i] - graph.weight(i);
    } else if (rib.cls[i] == RouteClass::Provider) {
      // i reaches its parent over i's provider edge, so from the parent's
      // perspective this branch arrives over a customer edge.
      incoming[t.next_hop[i]] += t.subtree_weight[i];
    }
  }
}

void UtilityAccumulator::merge(const UtilityAccumulator& other) {
  for (std::size_t i = 0; i < outgoing.size(); ++i) {
    outgoing[i] += other.outgoing[i];
    incoming[i] += other.incoming[i];
  }
}

void append_secure_candidates(const RibView& rib, const RoutingTree& tree,
                              std::vector<AsId>& out) {
  for (const AsId i : rib.order) {
    if (tree.has_secure_candidate[i] != 0) out.push_back(i);
  }
}

void append_dirty_footprint(const AsGraph& graph, const RibView& rib,
                            const RoutingTree& tree, bool stub_breaks_ties,
                            std::vector<AsId>& out) {
  for (const AsId i : rib.order) {
    if (tree.has_secure_candidate[i] == 0) continue;
    out.push_back(i);
    if (stub_breaks_ties && graph.is_stub(i)) {
      for (const AsId p : graph.providers(i)) {
        if (graph.is_isp(p)) out.push_back(p);
      }
    }
  }
  const AsId d = rib.dest;
  out.push_back(d);
  if (graph.is_stub(d)) {
    for (const AsId p : graph.providers(d)) {
      if (graph.is_isp(p)) out.push_back(p);
    }
  }
}

std::uint64_t tree_fingerprint(const RibView& rib, const RoutingTree& tree) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int k = 0; k < 8; ++k) {
      h ^= (v >> (8 * k)) & 0xFF;
      h *= 0x100000001b3ULL;
    }
  };
  for (const AsId i : rib.order) {
    double w = tree.subtree_weight[i];
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(w));
    std::memcpy(&bits, &w, sizeof(bits));
    mix((static_cast<std::uint64_t>(i) << 32) | tree.next_hop[i]);
    mix(bits);
    // path_secure is deliberately NOT hashed: it is not an input to any
    // cached quantity (utilities read next_hop/subtree_weight, the C.4
    // affected sets read has_secure_candidate), and a leaf's path_secure
    // bit can flip with its own security flag while everything the bundle
    // depends on stays put (e.g. a stub simplex-secured under
    // stub_breaks_ties=false). Any consequential path_secure change
    // surfaces in a hashed field downstream.
    mix(tree.has_secure_candidate[i]);
  }
  return h;
}

NodeContribution node_contribution(const AsGraph& graph, const RibView& rib,
                                   const RoutingTree& tree, AsId n) {
  NodeContribution out;
  if (rib.cls[n] == RouteClass::Customer) {
    out.outgoing = tree.subtree_weight[n] - graph.weight(n);
  }
  for (const AsId c : graph.customers(n)) {
    if (rib.cls[c] != RouteClass::None && tree.next_hop[c] == n) {
      out.incoming += tree.subtree_weight[c];
    }
  }
  return out;
}

}  // namespace sbgp::rt
