// Appendix C performance: microbenchmarks of the simulation kernels. The
// paper's optimized C# implementation computed one routing tree in ~2 ms at
// |V| = 36K on cluster hardware; these google-benchmark timings report the
// equivalent kernels here (per destination).
#include <benchmark/benchmark.h>

#include <random>

#include "core/simulator.h"
#include "parallel/thread_pool.h"
#include "routing/rib.h"
#include "routing/routing_tree.h"
#include "topology/topology_gen.h"

namespace {

using namespace sbgp;

topo::Internet& internet(std::uint32_t nodes) {
  static std::map<std::uint32_t, topo::Internet> cache;
  auto it = cache.find(nodes);
  if (it == cache.end()) {
    topo::InternetConfig cfg;
    cfg.total_ases = nodes;
    cfg.seed = 42;
    it = cache.emplace(nodes, topo::generate_internet(cfg)).first;
    topo::apply_traffic_model(it->second.graph, it->second.cps, 0.10);
  }
  return it->second;
}

void BM_RibCompute(benchmark::State& state) {
  const auto& net = internet(static_cast<std::uint32_t>(state.range(0)));
  rt::RibComputer rc(net.graph);
  rt::DestRib rib;
  std::mt19937_64 rng(1);
  std::uniform_int_distribution<topo::AsId> pick(
      0, static_cast<topo::AsId>(net.graph.num_nodes() - 1));
  for (auto _ : state) {
    rc.compute(pick(rng), rib);
    benchmark::DoNotOptimize(rib.order.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RibCompute)->Arg(1000)->Arg(3000)->Arg(8000);

/// The simulator's steady-state per-tree path: slab-stored RIB with
/// pre-sorted tiebreaks (positional winner selection) and a word-packed
/// secure mask built once and shared across trees. This is what every
/// (destination, round) and every Eq. 3 projection pays after warm-up.
void BM_FastRoutingTree(benchmark::State& state) {
  const auto& net = internet(static_cast<std::uint32_t>(state.range(0)));
  rt::RibComputer rc(net.graph);
  rt::TreeComputer tc(net.graph);
  rt::TieBreakPolicy tb;
  rt::DestRib rib;
  rt::RoutingTree tree;
  std::vector<std::uint8_t> secure(net.graph.num_nodes(), 0);
  for (topo::AsId n = 0; n < net.graph.num_nodes(); ++n) secure[n] = n % 3 == 0;
  rt::SecurityView view;
  view.graph = &net.graph;
  view.base = secure.data();
  rt::Arena arena;
  rt::SecureMask mask;
  mask.build(view, arena);
  rc.compute(0, rib);
  rt::sort_tiebreaks(net.graph, tb, rib);
  const rt::RibView rv(rib);
  for (auto _ : state) {
    tc.compute(rv, mask, tb, tree);
    benchmark::DoNotOptimize(tree.subtree_weight[0]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FastRoutingTree)
    ->Arg(1000)->Arg(3000)->Arg(8000)->Arg(10000)->Arg(20000)->Arg(36964);

/// The pre-slab shape of the same computation: unsorted tiebreaks (the
/// winner is re-hashed per candidate) and the branchy per-node security
/// predicate snapshotted on every call. Kept as the honest baseline for the
/// BM_FastRoutingTree speedup claims in EXPERIMENTS.md.
void BM_RoutingTreeColdStart(benchmark::State& state) {
  const auto& net = internet(static_cast<std::uint32_t>(state.range(0)));
  rt::RibComputer rc(net.graph);
  rt::TreeComputer tc(net.graph);
  rt::TieBreakPolicy tb;
  rt::DestRib rib;
  rt::RoutingTree tree;
  std::vector<std::uint8_t> secure(net.graph.num_nodes(), 0);
  for (topo::AsId n = 0; n < net.graph.num_nodes(); ++n) secure[n] = n % 3 == 0;
  rt::SecurityView view;
  view.graph = &net.graph;
  view.base = secure.data();
  rc.compute(0, rib);
  for (auto _ : state) {
    tc.compute(rib, view, tb, tree);
    benchmark::DoNotOptimize(tree.subtree_weight[0]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RoutingTreeColdStart)
    ->Arg(1000)->Arg(3000)->Arg(8000)->Arg(10000)->Arg(20000)->Arg(36964);

void BM_UtilityAllDestinations(benchmark::State& state) {
  const auto& net = internet(static_cast<std::uint32_t>(state.range(0)));
  core::SimConfig cfg;
  cfg.threads = 1;
  par::ThreadPool pool(1);
  std::vector<std::uint8_t> secure(net.graph.num_nodes(), 0);
  for (auto _ : state) {
    const auto u = core::compute_utilities(net.graph, secure, cfg, pool);
    benchmark::DoNotOptimize(u.outgoing[0]);
  }
}
BENCHMARK(BM_UtilityAllDestinations)->Arg(1000)->Arg(3000)->Unit(benchmark::kMillisecond);

void BM_FullDeploymentRound(benchmark::State& state) {
  auto& net = internet(static_cast<std::uint32_t>(state.range(0)));
  core::SimConfig cfg;
  cfg.theta = 0.05;
  cfg.threads = 1;
  cfg.max_rounds = 1;  // exactly one evaluated round per run()
  std::vector<topo::AsId> adopters = topo::top_degree_isps(net.graph, 5);
  for (const auto cp : net.cps) adopters.push_back(cp);
  core::DeploymentSimulator sim(net.graph, cfg);
  const auto initial = core::DeploymentState::initial(net.graph, adopters);
  for (auto _ : state) {
    const auto result = sim.run(initial);
    benchmark::DoNotOptimize(result.rounds.size());
  }
  state.SetLabel("one full best-response round incl. projections");
}
BENCHMARK(BM_FullDeploymentRound)->Arg(1000)->Arg(2000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
