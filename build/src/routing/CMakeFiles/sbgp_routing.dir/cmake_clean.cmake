file(REMOVE_RECURSE
  "CMakeFiles/sbgp_routing.dir/rib.cpp.o"
  "CMakeFiles/sbgp_routing.dir/rib.cpp.o.d"
  "CMakeFiles/sbgp_routing.dir/routing_tree.cpp.o"
  "CMakeFiles/sbgp_routing.dir/routing_tree.cpp.o.d"
  "libsbgp_routing.a"
  "libsbgp_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbgp_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
