// Brute-force path-vector reference router for attack scenarios. Runs a
// synchronous fixed-point iteration of BGP route selection under a chosen
// defense policy — no Observation C.1 shortcuts, full AS-path loop
// detection — and therefore supports rankings that break the static-RIB
// assumption (ROV withdraws routes; secure-first reorders LP/SP). It doubles
// as the single-threaded oracle the scenario tests compare the fast
// routing-tree path against.
#pragma once

#include <cstdint>
#include <vector>

#include "routing/rib.h"
#include "routing/routing_tree.h"
#include "scenario/scenario_spec.h"
#include "topology/as_graph.h"

namespace sbgp::scenario {

using topo::AsGraph;
using topo::AsId;
using topo::kNoAs;

/// One AS's chosen route in the reference computation.
struct RouteEntry {
  bool exists = false;
  std::uint8_t secure = 0;  ///< fully secure up to and including this AS
  rt::RouteClass cls = rt::RouteClass::None;
  std::uint16_t len = 0;    ///< claimed length (forged hops count)
  AsId next_hop = kNoAs;
  AsId origin = kNoAs;      ///< physical endpoint: victim or attacker
  /// Physical AS path [this, ..., victim-or-attacker]; forged hops are not
  /// materialised (they name no real AS), so `len` may exceed path length.
  std::vector<AsId> path;

  friend bool operator==(const RouteEntry&, const RouteEntry&) = default;
};

/// Attack instance parameters for one (attacker, victim) pair.
struct AttackConfig {
  AttackKind attack = AttackKind::OriginHijack;
  DefensePolicy policy = DefensePolicy::SecureTiebreak;
  std::uint16_t impostor_len = 0;  ///< claimed length of the forged announcement
  rt::TieBreakPolicy tiebreak{};
  bool stub_breaks_ties = true;
};

/// Computes every AS's chosen route when `victim` legitimately originates a
/// prefix and `attacker` announces the forged alternative described by `cfg`,
/// under deployment state `secure` (per-AS flags). Returns true when the
/// iteration reached a fixed point within the cap (2n + 16 rounds); on false
/// the entries hold the last synchronous snapshot.
bool compute_attack_routes(const AsGraph& g,
                           const std::vector<std::uint8_t>& secure,
                           const AttackConfig& cfg, AsId attacker, AsId victim,
                           std::vector<RouteEntry>& out);

}  // namespace sbgp::scenario
