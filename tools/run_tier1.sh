#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the test suite (plain and under
# ASan/UBSan), then smoke-test the experiment-orchestration path
# (`sbgpsim jobs run` on a tiny grid, a resumed rerun that must skip
# everything, and a canonical merge) and the multi-process fleet path
# (coordinator + workers sharing a run directory, one worker SIGKILLed
# mid-run). Every PR should pass this unchanged.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

# Second pass: the test suite under AddressSanitizer + UBSan (separate build
# tree; only the test target is built to keep the pass tier-1 sized). The
# arena/bitset routing scratch and the slab RIB store are exactly the kind
# of hand-managed memory this pass exists to police.
cmake -B build-asan -S . -DSBGPSIM_SANITIZE=address,undefined
cmake --build build-asan -j --target sbgp_tests sbgpsim
(cd build-asan && ctest --output-on-failure -j)

# Kernel perf smoke (Release): a build-only check cannot catch routing-kernel
# regressions, so run one short pass of the steady-state per-tree kernel at
# 10K nodes. Timing output is informational here; gating thresholds live in
# tools/run_bench.sh's committed BENCH_*.json flow.
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j --target bench_perf_routing_kernel
./build-release/bench/bench_perf_routing_kernel \
    --filter BM_FastRoutingTree/10000 --min-ms 100

# Orchestration smoke: 12-job grid, sharded run, full resume, merge.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cat > "$tmp/grid.json" <<'EOF'
{
  "name": "tier1-smoke",
  "graphs": [{"nodes": 200, "seed": 7}],
  "adopters": ["top:3", "cps"],
  "seeds": [1, 2],
  "thetas": [0, 0.05, 0.1]
}
EOF

sbgpsim=build/tools/sbgpsim
"$sbgpsim" jobs run --spec "$tmp/grid.json" --store "$tmp/r.jsonl" \
    --workers 4 --progress-s 0
"$sbgpsim" jobs run --spec "$tmp/grid.json" --store "$tmp/r.jsonl" \
    --workers 4 --progress-s 0 2> "$tmp/resume.log"
grep -q "12 resumed" "$tmp/resume.log" \
    || { echo "tier1 FAIL: resume did not skip completed jobs"; exit 1; }
rows="$("$sbgpsim" jobs merge --spec "$tmp/grid.json" --store "$tmp/r.jsonl" \
    --csv 2>/dev/null | tail -n +2 | wc -l)"
[ "$rows" -eq 12 ] \
    || { echo "tier1 FAIL: expected 12 merged rows, got $rows"; exit 1; }

# Observability smoke: run the CLI with tracing + metrics armed on a tiny
# graph and validate every emitted file parses (Chrome-trace JSON, telemetry
# JSONL) via the exp::json parser behind `sbgpsim validate`.
"$sbgpsim" simulate --nodes 200 --seed 7 --adopters top:3 \
    --trace-out "$tmp/sim.trace.json" --metrics-out "$tmp/sim.metrics.jsonl" \
    --obs-summary > /dev/null 2> "$tmp/sim.obs.log"
grep -q "span" "$tmp/sim.obs.log" \
    || { echo "tier1 FAIL: --obs-summary printed no span summary"; exit 1; }
"$sbgpsim" jobs run --spec "$tmp/grid.json" --store "$tmp/r2.jsonl" \
    --workers 2 --progress-s 0 --no-resume \
    --trace-out "$tmp/jobs.trace.json" --metrics-out "$tmp/jobs.metrics.jsonl"
"$sbgpsim" validate "$tmp/sim.trace.json" "$tmp/sim.metrics.jsonl" \
    "$tmp/jobs.trace.json" "$tmp/jobs.metrics.jsonl" "$tmp/r2.jsonl" \
    || { echo "tier1 FAIL: emitted observability output failed validation"; exit 1; }

# Projection-delta lockstep smoke: the frontier-delta projection kernel is
# default-on; --check-incremental cross-validates every round against the
# full-rebuild path and exits 3 on any divergence.
"$sbgpsim" simulate --nodes 400 --seed 11 --adopters top:5 \
    --check-incremental > /dev/null \
    || { echo "tier1 FAIL: projection-delta check-incremental lockstep"; exit 1; }

# Scenario smoke: a hijack+downgrade attack matrix riding a one-theta grid
# through `jobs run` (12 jobs), killed-mid-write resume healing, canonical
# merge, spec schema validation, and the exit-2 contract on malformed specs.
cat > "$tmp/scn.json" <<'EOF'
{
  "attacks": ["hijack", "downgrade"],
  "policies": ["rov", "secure-tiebreak"],
  "placements": ["uniform", "degree-tier", "stub-only"],
  "samples": 8,
  "seed": 5
}
EOF
cat > "$tmp/scngrid.json" <<'EOF'
{
  "name": "tier1-scenario-smoke",
  "graphs": [{"nodes": 200, "seed": 7}],
  "adopters": ["top:3"],
  "thetas": [0.05],
  "scenario": {
    "attacks": ["hijack", "downgrade"],
    "policies": ["rov", "secure-tiebreak"],
    "placements": ["uniform", "degree-tier", "stub-only"],
    "samples": 8,
    "seed": 5
  }
}
EOF
"$sbgpsim" validate --scenario "$tmp/scn.json" \
    || { echo "tier1 FAIL: good scenario spec failed validation"; exit 1; }
echo '{"attacks": ["not-an-attack"]}' > "$tmp/scn.bad.json"
if "$sbgpsim" validate --scenario "$tmp/scn.bad.json" 2> /dev/null; then
    echo "tier1 FAIL: malformed scenario spec validated"; exit 1
fi
rc=0; "$sbgpsim" validate --scenario "$tmp/scn.bad.json" 2> /dev/null || rc=$?
[ "$rc" -eq 2 ] \
    || { echo "tier1 FAIL: malformed scenario spec exited $rc, want 2"; exit 1; }

"$sbgpsim" scenario run --scenario "$tmp/scn.json" --nodes 200 --seed 7 \
    --adopters top:3 --workers 2 --metrics-out "$tmp/scnrun.metrics.jsonl" \
    > /dev/null \
    || { echo "tier1 FAIL: scenario run failed"; exit 1; }
grep -q '"type":"scenario"' "$tmp/scnrun.metrics.jsonl" \
    || { echo "tier1 FAIL: scenario run emitted no scenario records"; exit 1; }
grep -q 'scenario.pairs_evaluated' "$tmp/scnrun.metrics.jsonl" \
    || { echo "tier1 FAIL: scenario obs counters missing from metrics"; exit 1; }

"$sbgpsim" jobs run --spec "$tmp/scngrid.json" --store "$tmp/scn.jsonl" \
    --workers 4 --progress-s 0 --metrics-out "$tmp/scn.metrics.jsonl"
# Simulate a run killed mid-write: append a truncated record, then rerun.
# The store must heal (skip the partial line) and resume all 12 jobs.
printf '{"spec_hash":"tru' >> "$tmp/scn.jsonl"
"$sbgpsim" jobs run --spec "$tmp/scngrid.json" --store "$tmp/scn.jsonl" \
    --workers 4 --progress-s 0 2> "$tmp/scn.resume.log"
grep -q "12 resumed" "$tmp/scn.resume.log" \
    || { echo "tier1 FAIL: scenario grid resume did not skip completed jobs"; exit 1; }
scn_rows="$("$sbgpsim" jobs merge --spec "$tmp/scngrid.json" --store "$tmp/scn.jsonl" \
    --csv 2>/dev/null | tail -n +2 | grep -c "attack=")"
[ "$scn_rows" -eq 12 ] \
    || { echo "tier1 FAIL: expected 12 merged scenario rows, got $scn_rows"; exit 1; }
grep -q 'scenario_key' "$tmp/scn.metrics.jsonl" \
    || { echo "tier1 FAIL: job telemetry carries no scenario fields"; exit 1; }
"$sbgpsim" validate "$tmp/scn.metrics.jsonl" "$tmp/scnrun.metrics.jsonl" \
    || { echo "tier1 FAIL: scenario telemetry failed validation"; exit 1; }

# What-if service smoke: start the daemon on a temp socket (with the
# topology-delta lockstep checker armed), drive whatif + mutate + metrics
# round trips through `sbgpsim client`, then SIGTERM it and require a clean
# drain (exit 0). Runs twice — the plain build and the ASan/UBSan build:
# the poll loop, per-client line buffers and the CSR patch path are exactly
# the hand-managed state the sanitizer pass exists to police.
svc_smoke() {
    local bin="$1" tag="$2"
    local sock="$tmp/svc.$tag.sock" log="$tmp/svc.$tag.log" out="$tmp/svc.$tag.out"
    "$bin" serve --socket "$sock" --nodes 200 --seed 7 --adopters top:3 \
        --check-topo-delta 2> "$log" &
    local pid=$!
    for _ in $(seq 400); do [ -S "$sock" ] && break; sleep 0.05; done
    [ -S "$sock" ] \
        || { echo "tier1 FAIL($tag): service socket never appeared"; cat "$log"; exit 1; }
    "$bin" client --socket "$sock" \
        '{"op":"query_state"}' \
        '{"op":"topk_next_adopters","k":3}' \
        '{"op":"metrics"}' > "$out" \
        || { echo "tier1 FAIL($tag): service client round trip"; cat "$log"; exit 1; }
    # Pull a live candidate ASN out of the topk reply, then what-if it, graft
    # a stub under it (exercising the delta-invalidation path under the
    # lockstep checker), and what-if it again against the mutated topology.
    local asn
    asn="$(python3 -c '
import json, sys
for line in open(sys.argv[1]):
    r = json.loads(line)
    if r.get("op") == "topk_next_adopters":
        print(r["adopters"][0]["asn"]); break' "$out")"
    [ -n "$asn" ] \
        || { echo "tier1 FAIL($tag): no topk candidate to what-if"; exit 1; }
    "$bin" client --socket "$sock" \
        "{\"op\":\"whatif_adopt\",\"asn\":$asn}" \
        "{\"op\":\"mutate_topology\",\"ops\":[{\"action\":\"add_stub\",\"asn\":900900,\"providers\":[$asn]}]}" \
        "{\"op\":\"whatif_adopt\",\"asn\":$asn}" >> "$out" \
        || { echo "tier1 FAIL($tag): whatif/mutate round trip"; cat "$log"; exit 1; }
    local oks
    oks="$(grep -c '"ok":true' "$out")"
    [ "$oks" -eq 6 ] \
        || { echo "tier1 FAIL($tag): expected 6 ok replies, got $oks"; cat "$out"; exit 1; }
    kill -TERM "$pid"
    wait "$pid" \
        || { echo "tier1 FAIL($tag): service did not drain cleanly on SIGTERM"; \
             cat "$log"; exit 1; }
}
svc_smoke build/tools/sbgpsim plain
svc_smoke build-asan/tools/sbgpsim asan

# Fleet smoke: the same 12-job grid executed by the multi-process fleet —
# a coordinator plus 2 spawned `sbgpsim worker` processes sharing a run
# directory — with one worker SIGKILLed mid-run. The lease/steal/resume
# machinery must still finish the grid, and the merged store must be
# row-identical to the single-process reference from the orchestration
# smoke above. (The full fault-injection matrix lives in
# tests/test_fleet_faults.cpp and already ran twice, plain and ASan.)
"$sbgpsim" jobs run --spec "$tmp/grid.json" --run-dir "$tmp/fleet" \
    --workers 2 --ttl-s 1 --progress-s 0 2> "$tmp/fleet.log" &
fleet_pid=$!
kill_pid=""
for _ in $(seq 100); do
    kill_pid="$(pgrep -f "worker --run-dir $tmp/fleet" | head -n1 || true)"
    [ -n "$kill_pid" ] && break
    sleep 0.05
done
[ -n "$kill_pid" ] && kill -KILL "$kill_pid" 2> /dev/null || true
wait "$fleet_pid" \
    || { echo "tier1 FAIL: fleet run with a killed worker did not recover"; \
         cat "$tmp/fleet.log"; exit 1; }
"$sbgpsim" jobs merge --run-dir "$tmp/fleet" --csv 2> /dev/null \
    > "$tmp/fleet.csv"
"$sbgpsim" jobs merge --spec "$tmp/grid.json" --store "$tmp/r.jsonl" --csv \
    2> /dev/null > "$tmp/ref.csv"
cmp -s "$tmp/fleet.csv" "$tmp/ref.csv" \
    || { echo "tier1 FAIL: fleet merge differs from single-process reference"; \
         diff "$tmp/ref.csv" "$tmp/fleet.csv" | head; exit 1; }
# Worker-mode failure contract: a run directory that never gets a spec is a
# worker error (exit 5), distinct from usage (2) and runtime (4) failures.
rc=0
"$sbgpsim" worker --run-dir "$tmp/no-such-fleet" --max-idle-s 0.2 \
    2> /dev/null || rc=$?
[ "$rc" -eq 5 ] \
    || { echo "tier1 FAIL: worker on unusable run dir exited $rc, want 5"; exit 1; }

echo "tier1 OK (tests + orchestration + observability + scenario + service + fleet smoke)"
