#include <gtest/gtest.h>

#include "gadgets/turing.h"

namespace sbgp::gadgets {
namespace {

TEST(TuringMachine, ValidityChecks) {
  auto tm = make_right_sweeper(4);
  EXPECT_TRUE(tm.valid());
  tm.delta[0][0].next_state = 7;
  EXPECT_FALSE(tm.valid());
  TuringMachine empty;
  EXPECT_FALSE(empty.valid());
}

TEST(TuringMachine, StepAndClamping) {
  const auto tm = make_right_sweeper(3);
  TmConfig c = initial_config(tm, {1, 1, 1});
  EXPECT_EQ(c.head, 0u);
  EXPECT_EQ(c.state, 0u);
  c = step(tm, c);
  EXPECT_EQ(c.head, 1u);
  EXPECT_EQ(c.tape[0], 0u) << "sweeper zeroes as it walks";
  c = step(tm, c);
  c = step(tm, c);  // at the right end, the move clamps
  EXPECT_EQ(c.head, 2u);
}

TEST(TuringMachine, SweeperReachesStaticMode) {
  const auto tm = make_right_sweeper(6);
  const auto run = run_static_mode(tm, initial_config(tm, {1, 0, 1, 0, 1}));
  EXPECT_EQ(run.outcome, TmOutcome::ReachedStatic);
  EXPECT_TRUE(is_static(tm, run.final_config));
  EXPECT_EQ(run.final_config.head, 5u) << "parks on the last cell";
  for (const auto s : run.final_config.tape) EXPECT_EQ(s, 0u);
}

TEST(TuringMachine, BouncerCyclesForever) {
  const auto tm = make_bouncer(5);
  TmConfig init = initial_config(tm, {1, 0, 0, 0, 1});
  init.head = 1;
  const auto run = run_static_mode(tm, init);
  EXPECT_EQ(run.outcome, TmOutcome::Cycled);
  // The cycle closes within 2 * interior-width steps.
  EXPECT_LE(run.steps, 12u);
}

TEST(TuringMachine, BinaryCounterVisitsExponentiallyManyConfigs) {
  for (const std::size_t bits : {3u, 6u, 9u}) {
    const auto tm = make_binary_counter(bits);
    TmConfig init = initial_config(tm, {2});  // marker at cell 0
    init.head = 1;
    const auto run = run_static_mode(tm, init);
    EXPECT_EQ(run.outcome, TmOutcome::Cycled);
    // Each increment costs >= 2 steps; 2^bits increments before wrapping.
    EXPECT_GT(run.steps, (1u << bits)) << bits << " bits";
  }
}

TEST(CleanState, EncodeDecodeRoundTrip) {
  const auto tm = make_binary_counter(4);
  TmConfig c = initial_config(tm, {2, 1, 0, 1});
  c.head = 2;
  c.state = 1;
  const auto bits = encode_clean_state(tm, c);
  EXPECT_EQ(bits.size(), clean_state_width(tm));
  const auto back = decode_clean_state(tm, bits);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, c);
}

TEST(CleanState, ExactlyOneNodeOnPerSelector) {
  const auto tm = make_bouncer(4);
  const auto bits = encode_clean_state(tm, initial_config(tm, {1, 0, 0, 1}));
  // Width = r (head) + q (state) + r*gamma (cells).
  ASSERT_EQ(bits.size(), 4u + 2u + 4u * 2u);
  std::size_t on = 0;
  for (const auto b : bits) on += b;
  EXPECT_EQ(on, 1u /*head*/ + 1u /*state*/ + 4u /*cells*/);
}

TEST(CleanState, RejectsDirtyStates) {
  const auto tm = make_bouncer(4);
  auto bits = encode_clean_state(tm, initial_config(tm, {1, 0, 0, 1}));
  bits[0] = bits[1] = 1;  // two head nodes ON
  EXPECT_FALSE(decode_clean_state(tm, bits).has_value());
  std::fill(bits.begin(), bits.end(), 0);  // nothing ON
  EXPECT_FALSE(decode_clean_state(tm, bits).has_value());
  bits.push_back(0);  // wrong width
  EXPECT_FALSE(decode_clean_state(tm, bits).has_value());
}

TEST(CleanState, SimulationCommutesWithEncoding) {
  // encode(step(c)) == the clean state the reduction's transition gadgets
  // would drive the selectors to (Observation K.15's invariant).
  const auto tm = make_binary_counter(3);
  TmConfig c = initial_config(tm, {2, 1, 1});
  c.head = 1;
  for (int i = 0; i < 20; ++i) {
    const auto bits = encode_clean_state(tm, c);
    const auto decoded = decode_clean_state(tm, bits);
    ASSERT_TRUE(decoded.has_value());
    c = step(tm, *decoded);
  }
  SUCCEED();
}

TEST(Reduction, SizeAccounting) {
  const auto tm = make_binary_counter(4);  // r=5, q=2, gamma=3
  EXPECT_EQ(clean_state_width(tm), 5u + 2u + 5u * 3u);
  EXPECT_EQ(reduction_transition_count(tm), 5u * 2u * 3u);
}

}  // namespace
}  // namespace sbgp::gadgets
