file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_stub_tiebreak.dir/bench_fig11_stub_tiebreak.cpp.o"
  "CMakeFiles/bench_fig11_stub_tiebreak.dir/bench_fig11_stub_tiebreak.cpp.o.d"
  "bench_fig11_stub_tiebreak"
  "bench_fig11_stub_tiebreak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_stub_tiebreak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
