#!/usr/bin/env bash
# Perf-trajectory tracking: builds the benchmark targets in Release mode and
# refreshes the committed BENCH_*.json records at the repo root —
# google-benchmark JSON for the routing kernel plus the table-harness
# --json-out flow for the incremental round engine. Run before cutting a
# perf-sensitive PR and commit the refreshed JSON so kernel timings stay
# reviewable across PRs.
#
#   tools/run_bench.sh [extra google-benchmark flags...]
#
# e.g. `tools/run_bench.sh --benchmark_filter=BM_FastRoutingTree` for a
# quick kernel-only refresh.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j --target bench_perf_routing_kernel \
    bench_perf_incremental_rounds bench_fleet_scaling

./build-release/bench/bench_perf_routing_kernel \
    --benchmark_out=BENCH_routing_kernel.json \
    --benchmark_out_format=json "$@"
echo "wrote BENCH_routing_kernel.json"

# The incremental-engine bench gates on its own >=2x speedup; record the
# numbers either way (the JSON is the trend record, the exit code is CI's).
./build-release/bench/bench_perf_incremental_rounds \
    --json-out BENCH_incremental_rounds.json > /dev/null \
    || echo "note: bench_perf_incremental_rounds exited non-zero (speedup gate)"
echo "wrote BENCH_incremental_rounds.json"

# Fleet substrate scaling: 240 latency-bound jobs at 1/2/4/8 worker
# processes; gates on >= 3x wall-clock at 4 workers (jobs are stall-
# dominated precisely so the gate measures coordination overhead, not CPU
# contention — see the bench header).
./build-release/bench/bench_fleet_scaling \
    --json-out BENCH_fleet_scaling.json --quiet \
    || echo "note: bench_fleet_scaling exited non-zero (speedup gate)"
echo "wrote BENCH_fleet_scaling.json"
