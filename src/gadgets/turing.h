// STATIC-MODE and the space-bounded Turing machine of Appendix K.1 — the
// PSPACE-complete problem the paper reduces to S*BGP ADOPTION (Theorem 7.1 /
// K.1). This module implements the machine model, the STATIC-MODE decision
// procedure (by exhaustive configuration search, legitimate because the
// configuration space of a space-bounded TM is finite), and the
// clean-state encoding of Appendix K.2 that maps TM configurations onto
// one-hot SELECTOR-gadget assignments (head selector, machine-state
// selector, one symbol selector per tape cell).
//
// Scope note (cf. DESIGN.md): the reduction's *components* — CHICKEN and
// k-SELECTOR gadgets, and this machinery — are implemented and tested; the
// end-to-end network (one TRIPLE-TRANSITION gadget per (head, state,
// symbol) triple) is exponential scaffolding the paper itself only sketches.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace sbgp::gadgets {

/// A deterministic, space-bounded Turing machine (tape cells 0..r-1; the
/// head never leaves the tape — transitions that would are clamped).
struct TuringMachine {
  std::size_t num_states = 0;   ///< |Q|
  std::size_t num_symbols = 0;  ///< |Gamma|
  std::size_t tape_cells = 0;   ///< r

  struct Action {
    std::size_t next_state = 0;
    std::size_t write_symbol = 0;
    int move = 0;  ///< -1, 0, +1
  };

  /// delta[state][symbol]; every entry must be populated.
  std::vector<std::vector<Action>> delta;

  [[nodiscard]] bool valid() const;
};

/// A machine configuration: head position, machine state, tape contents.
struct TmConfig {
  std::size_t head = 0;
  std::size_t state = 0;
  std::vector<std::size_t> tape;

  [[nodiscard]] bool operator==(const TmConfig& other) const {
    return head == other.head && state == other.state && tape == other.tape;
  }
  [[nodiscard]] std::uint64_t hash() const;
  [[nodiscard]] std::string to_string() const;
};

/// Applies delta once. Head movement is clamped to the tape.
[[nodiscard]] TmConfig step(const TuringMachine& tm, const TmConfig& config);

/// Is `config` static, i.e. delta(config) == config (Appendix K.1's
/// "static mode")?
[[nodiscard]] bool is_static(const TuringMachine& tm, const TmConfig& config);

/// Outcome of running a machine from an initial configuration.
enum class TmOutcome : std::uint8_t {
  ReachedStatic,  ///< entered a fixed configuration
  Cycled,         ///< revisited a non-static configuration: runs forever
};

struct TmRun {
  TmOutcome outcome = TmOutcome::Cycled;
  std::size_t steps = 0;       ///< steps until static config / cycle closure
  TmConfig final_config{};     ///< the static config, or the first repeated one
};

/// Decides STATIC-MODE by simulation with cycle detection. Terminates on
/// every input: a space-bounded deterministic machine either reaches a
/// static configuration or revisits one (finite configuration space).
[[nodiscard]] TmRun run_static_mode(const TuringMachine& tm, const TmConfig& initial);

/// Builds the initial configuration for input string `input` (symbol
/// indices; padded with symbol 0 ("blank") to the tape length), head at
/// cell 0, machine state 0.
[[nodiscard]] TmConfig initial_config(const TuringMachine& tm,
                                      const std::vector<std::size_t>& input);

// ---- Appendix K.2: clean states <-> configurations -------------------------

/// The one-hot selector encoding of a configuration: which node is ON in
/// the head selector (r nodes), the machine-state selector (q nodes), and
/// each cell's symbol selector (gamma nodes per cell). Flattened:
/// [head one-hot | state one-hot | cell0 one-hot | cell1 one-hot | ...].
[[nodiscard]] std::vector<std::uint8_t> encode_clean_state(const TuringMachine& tm,
                                                           const TmConfig& config);

/// Inverse of encode_clean_state. Returns nullopt if the vector is not a
/// clean state (some selector not exactly one-hot).
[[nodiscard]] std::optional<TmConfig> decode_clean_state(
    const TuringMachine& tm, const std::vector<std::uint8_t>& bits);

/// Total number of selector nodes in the encoding: r + q + r*gamma.
[[nodiscard]] std::size_t clean_state_width(const TuringMachine& tm);

/// Number of TRIPLE-TRANSITION gadgets the full Appendix K.10 reduction
/// would instantiate: one per (head, state, symbol) triple.
[[nodiscard]] std::size_t reduction_transition_count(const TuringMachine& tm);

// ---- Example machines for tests and demos ---------------------------------

/// A machine that walks right, replacing symbol 1 by 0, and parks (static)
/// on the last cell: always reaches static mode.
[[nodiscard]] TuringMachine make_right_sweeper(std::size_t tape_cells);

/// A two-state machine that bounces between the two ends of the tape
/// forever: never reaches static mode (Cycled).
[[nodiscard]] TuringMachine make_bouncer(std::size_t tape_cells);

/// An n-bit binary counter over the tape that increments until overflow
/// and then parks: reaches static mode after ~2^n steps.
[[nodiscard]] TuringMachine make_binary_counter(std::size_t bits);

}  // namespace sbgp::gadgets
