
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proto/attack.cpp" "src/proto/CMakeFiles/sbgp_proto.dir/attack.cpp.o" "gcc" "src/proto/CMakeFiles/sbgp_proto.dir/attack.cpp.o.d"
  "/root/repo/src/proto/crypto_sim.cpp" "src/proto/CMakeFiles/sbgp_proto.dir/crypto_sim.cpp.o" "gcc" "src/proto/CMakeFiles/sbgp_proto.dir/crypto_sim.cpp.o.d"
  "/root/repo/src/proto/engine.cpp" "src/proto/CMakeFiles/sbgp_proto.dir/engine.cpp.o" "gcc" "src/proto/CMakeFiles/sbgp_proto.dir/engine.cpp.o.d"
  "/root/repo/src/proto/rpki.cpp" "src/proto/CMakeFiles/sbgp_proto.dir/rpki.cpp.o" "gcc" "src/proto/CMakeFiles/sbgp_proto.dir/rpki.cpp.o.d"
  "/root/repo/src/proto/sbgp.cpp" "src/proto/CMakeFiles/sbgp_proto.dir/sbgp.cpp.o" "gcc" "src/proto/CMakeFiles/sbgp_proto.dir/sbgp.cpp.o.d"
  "/root/repo/src/proto/sobgp.cpp" "src/proto/CMakeFiles/sbgp_proto.dir/sobgp.cpp.o" "gcc" "src/proto/CMakeFiles/sbgp_proto.dir/sobgp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/routing/CMakeFiles/sbgp_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/sbgp_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sbgp_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
