#include <gtest/gtest.h>

#include "core/analysis.h"
#include "core/simulator.h"
#include "gadgets/gadgets.h"
#include "test_util.h"

namespace sbgp::core {
namespace {

using test::make_diamond;
using test::small_internet;

TEST(SecurePaths, NobodySecureMeansNoSecurePaths) {
  const auto net = small_internet(200, 3);
  SimConfig cfg;
  par::ThreadPool pool(1);
  std::vector<std::uint8_t> nobody(net.graph.num_nodes(), 0);
  const auto stats = count_secure_paths(net.graph, nobody, cfg, pool);
  EXPECT_EQ(stats.secure_pairs, 0u);
  EXPECT_DOUBLE_EQ(stats.f, 0.0);
}

TEST(SecurePaths, EveryoneSecureMeansAllReachablePathsSecure) {
  const auto net = small_internet(200, 3);
  SimConfig cfg;
  par::ThreadPool pool(1);
  std::vector<std::uint8_t> all(net.graph.num_nodes(), 1);
  const auto stats = count_secure_paths(net.graph, all, cfg, pool);
  EXPECT_DOUBLE_EQ(stats.f, 1.0);
  // The generator guarantees global reachability, so every ordered pair is
  // secure.
  EXPECT_EQ(stats.secure_pairs, stats.total_pairs);
}

TEST(SecurePaths, FractionTracksFSquaredFromBelow) {
  // Figure 9: the secure-path fraction is slightly below f^2.
  const auto net = small_internet(400, 7);
  const auto state = test::random_state(net.graph, 0.6, 11);
  SimConfig cfg;
  par::ThreadPool pool(1);
  const auto stats = count_secure_paths(net.graph, state.flags(), cfg, pool);
  EXPECT_GT(stats.f, 0.3);
  EXPECT_LE(stats.fraction, stats.f_squared + 1e-9);
  EXPECT_GT(stats.fraction, stats.f_squared * 0.5)
      << "measured " << stats.fraction << " vs f^2 " << stats.f_squared;
}

TEST(TiebreakDistribution, MatchesPaperShape) {
  // Figure 10: tiebreak sets are small; ISPs have slightly larger sets than
  // stubs; only a minority of sets have >1 path.
  const auto net = small_internet(500, 13);
  par::ThreadPool pool(1);
  const auto dist = tiebreak_distribution(net.graph, pool);
  ASSERT_GT(dist.all.total(), 0u);
  EXPECT_GE(dist.all.mean(), 1.0);
  EXPECT_LT(dist.all.mean(), 2.5);
  EXPECT_GT(dist.all.fraction_greater(1), 0.01);
  EXPECT_LT(dist.all.fraction_greater(1), 0.6);
  EXPECT_GT(dist.isp.mean(), dist.stub.mean() * 0.9)
      << "ISPs should not have markedly smaller tiebreak sets than stubs";
}

TEST(Diamonds, CountsContestedStubs) {
  const auto d = make_diamond();
  par::ThreadPool pool(1);
  const std::vector<topo::AsId> adopters{d.e};
  const auto counts = count_diamonds(d.g, adopters, pool);
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[0].adopter, d.e);
  EXPECT_EQ(counts[0].diamonds, 1u) << "stub s is contested at e";
  EXPECT_EQ(counts[0].strict_diamonds, 1u) << "both competitors provide s";
}

TEST(Diamonds, NoCompetitionNoDiamonds) {
  const auto c = test::make_chain();
  par::ThreadPool pool(1);
  const std::vector<topo::AsId> adopters{c.t};
  const auto counts = count_diamonds(c.g, adopters, pool);
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[0].diamonds, 0u);
}

TEST(TurnOffScan, FindsTheBuyersRemorseIncentive) {
  // Section 7.1 / Figure 13: the telecom ISP has a per-destination
  // incentive to turn off in the incoming model.
  const auto g = gadgets::make_buyers_remorse(8, 100.0);
  SimConfig cfg;
  g.configure(cfg);
  par::ThreadPool pool(1);
  const auto scan =
      scan_turn_off_incentives(g.graph, g.initial.flags(), cfg, pool);
  EXPECT_GE(scan.secure_isps, 1u);
  EXPECT_GE(scan.isps_with_incentive, 1u);
  EXPECT_EQ(scan.best_isp, g.node("telecom"));
  EXPECT_GT(scan.best_gain, 0.0);
  EXPECT_GE(scan.isp_dest_pairs, 8u) << "every stub destination is profitable";
}

TEST(PerDestTurnOff, TelecomSuppressesExactlyItsStubDestinations) {
  // Section 7.1: "AS 4755 could just as well turn off S*BGP on a per
  // destination basis, by refusing to propagate S*BGP announcements for the
  // twenty-four stubs". The per-destination dynamics converge with exactly
  // those 24 suppressions.
  const std::size_t stubs = 24;
  const auto g = gadgets::make_buyers_remorse(stubs, 821.0);
  SimConfig cfg;
  g.configure(cfg);
  par::ThreadPool pool(1);
  const auto r =
      run_per_destination_turn_off(g.graph, g.initial.flags(), cfg, pool);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.isps_suppressing, 1u);
  EXPECT_EQ(r.suppressed_pairs, stubs);
  const auto telecom = g.node("telecom");
  for (std::size_t k = 0; k < stubs; ++k) {
    EXPECT_EQ(r.suppressed[g.node("stub" + std::to_string(k))][telecom], 1);
  }
  EXPECT_EQ(r.suppressed[g.node("akamai")][telecom], 0);
}

TEST(PerDestTurnOff, NoIncentivesNoSuppression) {
  const auto c = test::make_chain();
  std::vector<std::uint8_t> all(c.g.num_nodes(), 1);
  SimConfig cfg;
  cfg.threads = 1;
  par::ThreadPool pool(1);
  const auto r = run_per_destination_turn_off(c.g, all, cfg, pool);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.rounds, 1u);
  EXPECT_EQ(r.suppressed_pairs, 0u);
}

TEST(TurnOffScan, OutgoingStyleStatesWithoutRemorseComeUpEmptyOnChains) {
  const auto c = test::make_chain();
  std::vector<std::uint8_t> all(c.g.num_nodes(), 1);
  SimConfig cfg;
  cfg.threads = 1;
  par::ThreadPool pool(1);
  const auto scan = scan_turn_off_incentives(c.g, all, cfg, pool);
  EXPECT_EQ(scan.isps_with_incentive, 0u);
}

}  // namespace
}  // namespace sbgp::core
