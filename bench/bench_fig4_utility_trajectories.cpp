// Figure 4: normalized utility trajectories of competing ISPs through the
// case study — one ISP that deploys to *steal* traffic, one that deploys to
// *regain* lost traffic, and one that never deploys (and loses). Utilities
// are normalized by starting utility (the all-insecure state). Also prints
// the Section 5.6 aggregate: ISPs still insecure at termination lose on
// average 13% of their starting utility in the paper.
#include <cmath>

#include "bench_common.h"
#include "stats/histogram.h"
#include "stats/table.h"

int main(int argc, char** argv) {
  using namespace sbgp;
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header("Figure 4 - normalized ISP utility trajectories", opt);

  auto net = bench::make_internet(opt);
  const auto& g = net.graph;
  const auto adopters = bench::case_study_adopters(net);
  core::DeploymentSimulator sim(g, bench::case_study_config(opt));

  std::vector<std::vector<double>> history;           // per round: utility per node
  std::vector<std::size_t> flip_round(g.num_nodes(), 0);  // 0 = never
  const auto result = sim.run(
      core::DeploymentState::initial(g, adopters),
      [&](const core::RoundObservation& obs) {
        history.push_back(*obs.utility);
        for (const auto n : *obs.flipping_on) flip_round[n] = obs.round;
      });

  const auto& start = result.starting_utility;
  auto normalized = [&](topo::AsId n, std::size_t round) {
    return start[n] > 0 ? history[round][n] / start[n] : 0.0;
  };

  // Exemplars. Stealer: earliest flipper whose utility later rises well
  // above start. Regainer: a later flipper whose utility had dropped below
  // start before flipping. Holdout: never-secure ISP with the largest
  // starting utility.
  topo::AsId stealer = topo::kNoAs, regainer = topo::kNoAs, holdout = topo::kNoAs;
  double best_peak = 1.0, best_drop = 1.0, best_start = 0.0;
  for (topo::AsId n = 0; n < g.num_nodes(); ++n) {
    if (!g.is_isp(n) || start[n] <= 0) continue;
    if (flip_round[n] > 0) {
      double peak = 0.0;
      for (std::size_t r = flip_round[n]; r < history.size(); ++r) {
        peak = std::max(peak, normalized(n, r));
      }
      if (flip_round[n] <= 3 && peak > best_peak) {
        best_peak = peak;
        stealer = n;
      }
      const double at_flip = normalized(n, flip_round[n] - 1);
      if (flip_round[n] >= 2 && at_flip < best_drop) {
        best_drop = at_flip;
        regainer = n;
      }
    } else if (!result.final_state.is_secure(n) && start[n] > best_start) {
      best_start = start[n];
      holdout = n;
    }
  }

  stats::Table t({"round", "stealer u/u0", "regainer u/u0", "holdout u/u0"});
  for (std::size_t r = 0; r < history.size(); ++r) {
    t.begin_row();
    t.add(r + 1);
    t.add(stealer != topo::kNoAs ? normalized(stealer, r) : 0.0, 3);
    t.add(regainer != topo::kNoAs ? normalized(regainer, r) : 0.0, 3);
    t.add(holdout != topo::kNoAs ? normalized(holdout, r) : 0.0, 3);
  }
  t.print(std::cout);
  auto describe = [&](const char* role, topo::AsId n) {
    if (n == topo::kNoAs) {
      std::cout << role << ": (no exemplar found at this scale)\n";
    } else {
      std::cout << role << ": AS" << g.asn(n) << " (";
      if (flip_round[n] > 0) std::cout << "flips round " << flip_round[n];
      else std::cout << "never deploys";
      std::cout << ", final u/u0 = "
                << (start[n] > 0 ? result.final_utility[n] / start[n] : 0.0) << ")\n";
    }
  };
  std::cout << '\n';
  describe("stealer  (AS8359 analogue)", stealer);
  describe("regainer (AS6731 analogue)", regainer);
  describe("holdout  (AS8342 analogue)", holdout);

  // Aggregate: average final/start utility of ISPs never secure.
  stats::Summary losses;
  for (topo::AsId n = 0; n < g.num_nodes(); ++n) {
    if (g.is_isp(n) && !result.final_state.is_secure(n) && start[n] > 0) {
      losses.add(result.final_utility[n] / start[n]);
    }
  }
  std::cout << "\nISPs never secure: " << losses.count()
            << ", mean final utility = " << 100.0 * losses.mean()
            << "% of starting utility\n";
  bench::print_paper_note(
      "AS8359 jumps to ~125% of starting utility after deploying, decaying "
      "back by round 15; AS8342 never deploys and ends 4% down; insecure "
      "ISPs lose 13% of starting utility on average.");
  return 0;
}
