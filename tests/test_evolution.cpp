#include <gtest/gtest.h>

#include "core/evolution.h"
#include "test_util.h"

namespace sbgp::core {
namespace {

EvolutionConfig base_config() {
  EvolutionConfig cfg;
  cfg.epochs = 3;
  cfg.new_stubs_per_epoch = 30;
  cfg.sim.theta = 0.05;
  cfg.sim.threads = 1;
  return cfg;
}

TEST(Evolution, GraphGrowsAndStaysValid) {
  const auto net = test::small_internet(250, 5);
  auto cfg = base_config();
  const auto adopters = topo::top_degree_isps(net.graph, 4);
  const auto result = run_evolution(net, adopters, cfg);

  ASSERT_EQ(result.epochs.size(), cfg.epochs);
  EXPECT_EQ(result.epochs.front().graph_size, net.graph.num_nodes());
  for (std::size_t e = 1; e < result.epochs.size(); ++e) {
    EXPECT_EQ(result.epochs[e].graph_size,
              result.epochs[e - 1].graph_size + cfg.new_stubs_per_epoch);
  }
  EXPECT_TRUE(result.final_graph.validate().empty());
  EXPECT_EQ(result.final_graph.num_nodes(),
            net.graph.num_nodes() + (cfg.epochs - 1) * cfg.new_stubs_per_epoch);
}

TEST(Evolution, SecurityIsStickyAcrossEpochs) {
  const auto net = test::small_internet(250, 9);
  auto cfg = base_config();
  const auto adopters = topo::top_degree_isps(net.graph, 4);
  const auto result = run_evolution(net, adopters, cfg);
  for (std::size_t e = 1; e < result.epochs.size(); ++e) {
    EXPECT_GE(result.epochs[e].secure_ases, result.epochs[e - 1].secure_ases);
  }
  for (const auto a : adopters) {
    EXPECT_TRUE(result.final_state.is_secure(a));
  }
}

TEST(Evolution, SecureBiasSteersNewCustomersToSecureProviders) {
  const auto net = test::small_internet(300, 13);
  const auto adopters = topo::top_degree_isps(net.graph, 5);

  auto biased = base_config();
  biased.secure_provider_bias = 5.0;
  auto blind = base_config();
  blind.secure_provider_bias = 1.0;

  const auto rb = run_evolution(net, adopters, biased);
  const auto rn = run_evolution(net, adopters, blind);

  auto secure_share = [](const EvolutionResult& r) {
    double sec = 0, insec = 0;
    for (const auto& e : r.epochs) {
      sec += static_cast<double>(e.new_edges_to_secure);
      insec += static_cast<double>(e.new_edges_to_insecure);
    }
    return sec / std::max(1.0, sec + insec);
  };
  EXPECT_GT(secure_share(rb), secure_share(rn));
}

TEST(Evolution, NewStubsOfSecureProvidersAreSimplexSecured) {
  const auto net = test::small_internet(250, 21);
  auto cfg = base_config();
  cfg.secure_provider_bias = 100.0;  // virtually all growth lands on secure ISPs
  const auto adopters = topo::top_degree_isps(net.graph, 5);
  const auto result = run_evolution(net, adopters, cfg);

  // Count new-id stubs that are secure at the end.
  std::size_t new_secure = 0, new_total = 0;
  for (topo::AsId n = static_cast<topo::AsId>(net.graph.num_nodes());
       n < result.final_graph.num_nodes(); ++n) {
    ++new_total;
    if (result.final_state.is_secure(n)) ++new_secure;
  }
  ASSERT_GT(new_total, 0u);
  EXPECT_GT(static_cast<double>(new_secure) / static_cast<double>(new_total), 0.5);
}

}  // namespace
}  // namespace sbgp::core
