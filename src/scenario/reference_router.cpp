#include "scenario/reference_router.h"

#include <algorithm>

namespace sbgp::scenario {

namespace {

struct Candidate {
  AsId via = kNoAs;
  rt::RouteClass cls = rt::RouteClass::None;
  std::uint16_t len = 0;
  std::uint8_t sec = 0;   ///< offered route fully secure up to the neighbour
  AsId origin = kNoAs;
};

/// (class, length) primary rank; smaller is better.
[[nodiscard]] bool primary_better(const Candidate& a, const Candidate& b) {
  if (a.cls != b.cls) return a.cls < b.cls;
  return a.len < b.len;
}

[[nodiscard]] bool applies_secp(const AsGraph& g,
                                const std::vector<std::uint8_t>& secure,
                                bool stub_breaks_ties, AsId i) {
  return secure[i] != 0 && (stub_breaks_ties || !g.is_stub(i));
}

}  // namespace

bool compute_attack_routes(const AsGraph& g,
                           const std::vector<std::uint8_t>& secure,
                           const AttackConfig& cfg, AsId attacker, AsId victim,
                           std::vector<RouteEntry>& out) {
  const std::size_t n = g.num_nodes();
  out.assign(n, RouteEntry{});
  out[victim] = RouteEntry{true, static_cast<std::uint8_t>(secure[victim] != 0),
                           rt::RouteClass::Self, 0, kNoAs, victim, {victim}};
  // The forged announcement is never attestable: a hijack has no valid
  // signature chain, an interception's forged hops cannot validate, and a
  // downgrade strips the attributes by definition.
  out[attacker] = RouteEntry{true, 0, rt::RouteClass::Self, cfg.impostor_len,
                             kNoAs, attacker, {attacker}};

  // Origin validation only detects forged ORIGINS; interception and
  // downgrade announcements claim the true origin and pass ROV.
  const bool rov_filters = cfg.policy == DefensePolicy::RovDropInvalid &&
                           cfg.attack == AttackKind::OriginHijack;

  std::vector<RouteEntry> prev;
  std::vector<Candidate> cands;
  const std::size_t max_iters = 2 * n + 16;
  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    prev = out;
    bool changed = false;
    for (AsId i = 0; i < n; ++i) {
      if (i == victim || i == attacker) continue;
      cands.clear();
      const auto consider = [&](AsId j, rt::RouteClass cls_via) {
        const RouteEntry& r = prev[j];
        if (!r.exists) return;
        // GR2 export rule at j: customer/self routes go to everyone, other
        // routes only to j's customers (i.e. when j is i's provider).
        if (cls_via != rt::RouteClass::Provider &&
            r.cls != rt::RouteClass::Customer && r.cls != rt::RouteClass::Self) {
          return;
        }
        // AS-path loop detection over the physical path.
        if (std::find(r.path.begin(), r.path.end(), i) != r.path.end()) return;
        if (rov_filters && secure[i] != 0 && r.origin == attacker) return;
        cands.push_back(Candidate{j, cls_via,
                                  static_cast<std::uint16_t>(r.len + 1),
                                  r.secure, r.origin});
      };
      for (AsId j : g.customers(i)) consider(j, rt::RouteClass::Customer);
      for (AsId j : g.peers(i)) consider(j, rt::RouteClass::Peer);
      for (AsId j : g.providers(i)) consider(j, rt::RouteClass::Provider);

      RouteEntry next{};
      if (!cands.empty()) {
        const bool secp = applies_secp(g, secure, cfg.stub_breaks_ties, i);
        const bool secure_first =
            cfg.policy == DefensePolicy::SecureFirst && secp;
        // Primary rank: secure-first puts the security bit above LP/SP at
        // security-applying ASes; everything else ranks (class, length).
        const Candidate* best = nullptr;
        for (const Candidate& c : cands) {
          if (best == nullptr) {
            best = &c;
            continue;
          }
          if (secure_first && c.sec != best->sec) {
            if (c.sec > best->sec) best = &c;
            continue;
          }
          if (primary_better(c, *best)) best = &c;
        }
        // SecP: the paper's ranking breaks (class, length) ties in favour of
        // secure routes at security-applying ASes. ROV applies no security
        // tie-break (origin validation is not path validation).
        bool want_secure = false;
        if (cfg.policy == DefensePolicy::SecureTiebreak && secp) {
          for (const Candidate& c : cands) {
            if (c.sec != 0 && !primary_better(*best, c)) {
              want_secure = true;
              break;
            }
          }
        }
        // TB: lowest intradomain key among the surviving equal-best
        // candidates; first candidate wins exact key ties (matches the
        // stable selection of rt::TreeComputer).
        const Candidate* pick = nullptr;
        std::uint64_t pick_key = 0;
        for (const Candidate& c : cands) {
          if (secure_first && c.sec != best->sec) continue;
          if (primary_better(*best, c)) continue;  // worse than best
          if (want_secure && c.sec == 0) continue;
          const std::uint64_t k = cfg.tiebreak.key(i, c.via, g);
          if (pick == nullptr || k < pick_key) {
            pick = &c;
            pick_key = k;
          }
        }
        const RouteEntry& via = prev[pick->via];
        next.exists = true;
        next.secure = static_cast<std::uint8_t>(pick->sec != 0 && secure[i] != 0);
        next.cls = pick->cls;
        next.len = pick->len;
        next.next_hop = pick->via;
        next.origin = pick->origin;
        next.path.reserve(via.path.size() + 1);
        next.path.push_back(i);
        next.path.insert(next.path.end(), via.path.begin(), via.path.end());
      }
      if (!(next == out[i])) {
        out[i] = std::move(next);
        changed = true;
      }
    }
    if (!changed) return true;
  }
  return false;
}

}  // namespace sbgp::scenario
