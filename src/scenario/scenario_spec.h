// Declarative attack & robustness scenarios. A ScenarioSpec is a small JSON
// document describing an attack matrix — attacker model × defense policy ×
// attacker placement — that `expand()` materialises into concrete Scenario
// points in a fixed nested order (mirroring exp::JobSpec). The vocabulary
// follows the partial-deployment attack literature the paper's Section 6.4
// defers to: origin hijacks, k-hop interception / path-shortening, and
// protocol-downgrade attacks, evaluated under ROV-style origin validation or
// path-security tie-breaking placed third or first in the ranking.
//
//   {
//     "attacks": ["hijack", "interception", "downgrade"],
//     "hops": [1, 2],
//     "policies": ["secure-tiebreak", "rov", "secure-first"],
//     "placements": ["uniform", "degree-tier", "stub-only"],
//     "tier_top": 20,
//     "samples": 100,
//     "seed": 42
//   }
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/json.h"

namespace sbgp::scenario {

/// Attacker model.
enum class AttackKind : std::uint8_t {
  /// The attacker originates the victim's prefix itself (forged origin; an
  /// RPKI/ROV origin check can detect it).
  OriginHijack = 0,
  /// The attacker announces a forged k-hop path to the *true* origin
  /// (path-shortening / interception; origin validation cannot detect it).
  Interception = 1,
  /// The attacker re-announces its genuine route to the victim with the
  /// security attributes stripped (the protocol-downgrade attack of "Is the
  /// Juice Worth the Squeeze?"): path and length are honest, so only the
  /// security criterion can disfavour it.
  Downgrade = 2,
};

/// Defense policy variant at security-enabled ASes.
enum class DefensePolicy : std::uint8_t {
  /// The paper's model: security breaks ties after LP and SP
  /// ("security-third" ranking).
  SecureTiebreak = 0,
  /// ROV-style drop-invalid: secure ASes discard routes whose origin fails
  /// validation (effective against forged-origin hijacks only) and apply no
  /// security tie-break.
  RovDropInvalid = 1,
  /// Security outranks LP and SP at secure ASes ("secure-first" ranking).
  SecureFirst = 2,
};

/// Where attackers are drawn from.
enum class Placement : std::uint8_t {
  UniformRandom = 0,  ///< any AS
  DegreeTier = 1,     ///< the `tier_top` highest-degree ASes
  StubOnly = 2,       ///< stub ASes only
  FixedList = 3,      ///< the `attackers` ASN list, verbatim
};

[[nodiscard]] const char* to_string(AttackKind a);
[[nodiscard]] const char* to_string(DefensePolicy p);
[[nodiscard]] const char* to_string(Placement p);

/// One fully-instantiated scenario: a single point of the matrix.
struct Scenario {
  AttackKind attack = AttackKind::OriginHijack;
  DefensePolicy policy = DefensePolicy::SecureTiebreak;
  Placement placement = Placement::UniformRandom;
  std::uint16_t hops = 1;        ///< Interception only: forged path length
  std::uint32_t tier_top = 20;   ///< DegreeTier pool size
  std::vector<std::uint32_t> attacker_asns;  ///< FixedList pool (external ASNs)
  std::vector<std::uint32_t> victim_asns;    ///< optional victim pool (empty = all)
  std::size_t samples = 100;     ///< (attacker, victim) pairs to draw
  std::uint64_t seed = 42;       ///< pair-sampling seed
  bool baseline = false;         ///< also evaluate the empty deployment

  /// Canonical human-readable key, e.g.
  /// "attack=interception;hops=2;policy=rov;placement=uniform;samples=100;seed=42".
  [[nodiscard]] std::string key() const;
};

/// The declarative matrix. `attacks`, `policies` and `placements` are grid
/// axes; `hops` multiplies only interception points (other attacks have no
/// forged-length degree of freedom). Everything else is a scalar applied to
/// every point.
struct ScenarioSpec {
  std::vector<AttackKind> attacks = {AttackKind::OriginHijack};
  std::vector<DefensePolicy> policies = {DefensePolicy::SecureTiebreak};
  std::vector<Placement> placements = {Placement::UniformRandom};
  std::vector<std::uint16_t> hops = {1};
  std::uint32_t tier_top = 20;
  std::vector<std::uint32_t> attacker_asns;
  std::vector<std::uint32_t> victim_asns;
  std::size_t samples = 100;
  std::uint64_t seed = 42;
  bool baseline = false;

  /// Number of matrix points (interception counts hops.size() times).
  [[nodiscard]] std::size_t num_points() const;

  /// Deterministic expansion: attacks » policies » placements, with hops
  /// innermost for interception points. Same spec, same list.
  [[nodiscard]] std::vector<Scenario> expand() const;

  [[nodiscard]] exp::Json to_json() const;

  /// Parses and validates a spec; throws exp::JsonError on unknown keys or
  /// out-of-range values, with diagnostics prefixed by the field path
  /// (`path` names the enclosing document position, e.g. "scenario").
  static ScenarioSpec from_json(const exp::Json& j,
                                const std::string& path = "scenario");
  static ScenarioSpec from_file(const std::string& file);
};

}  // namespace sbgp::scenario
