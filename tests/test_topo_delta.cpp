// Post-finalize topology deltas, end to end: (1) the CSR patcher produces a
// graph bitwise-identical to a from-scratch rebuild of the same edge set,
// for every TopoOp kind and also when a tiny row budget forces the
// full-rebuild bail-out; (2) the SourceLabelComputer transpose property the
// edge-candidate label test relies on (labels(src)[d] == rib(d)[src]); and
// (3) the invalidation matrix — edge add/drop at the secure frontier, a new
// stub mid-cascade, peer<->customer relabels, and randomized mutate-then-
// diff sequences — run with check_incremental on, so every warm evaluation
// is cross-checked bitwise against a full recompute from the CURRENT graph
// and any missed invalidation throws core::IncrementalDivergence.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/deployment_state.h"
#include "core/simulator.h"
#include "routing/rib.h"
#include "routing/source_labels.h"
#include "test_util.h"
#include "topology/as_graph.h"

namespace sbgp {
namespace {

using test::small_internet;
using topo::AsGraph;
using topo::AsId;
using topo::Link;
using topo::TopoDelta;
using topo::TopoOp;

/// TopoOp constructors (aggregate init would warn on the unused fields).
TopoOp edge_op(TopoOp::Kind kind, AsId a, AsId b, Link rel = Link::Peer) {
  TopoOp op;
  op.kind = kind;
  op.a = a;
  op.b = b;
  op.rel = rel;
  return op;
}

TopoOp stub_op(std::uint32_t asn, std::vector<AsId> providers) {
  TopoOp op;
  op.kind = TopoOp::Kind::AddStub;
  op.asn = asn;
  op.providers = std::move(providers);
  return op;
}

/// Rebuilds the graph from scratch out of the patched graph's current nodes
/// and edges (same insertion order, so dense ids are preserved). This is the
/// reference the CSR patcher must match bitwise.
AsGraph rebuild_reference(const AsGraph& g) {
  AsGraph out;
  for (AsId n = 0; n < g.num_nodes(); ++n) {
    const AsId id = out.add_as(g.asn(n));
    EXPECT_EQ(id, n);
    if (g.content_provider_marked(n)) out.mark_content_provider(id);
  }
  for (AsId n = 0; n < g.num_nodes(); ++n) {
    for (const AsId c : g.customers(n)) out.add_customer_provider(n, c);
    for (const AsId p : g.peers(n)) {
      if (n < p) out.add_peer(n, p);
    }
  }
  out.finalize();
  for (AsId n = 0; n < g.num_nodes(); ++n) out.set_weight(n, g.weight(n));
  return out;
}

void expect_graphs_equal(const AsGraph& got, const AsGraph& want) {
  ASSERT_EQ(got.num_nodes(), want.num_nodes());
  EXPECT_EQ(got.num_customer_provider_edges(), want.num_customer_provider_edges());
  EXPECT_EQ(got.num_peer_edges(), want.num_peer_edges());
  EXPECT_EQ(got.num_stubs(), want.num_stubs());
  EXPECT_EQ(got.num_isps(), want.num_isps());
  for (AsId n = 0; n < got.num_nodes(); ++n) {
    EXPECT_EQ(got.asn(n), want.asn(n)) << "node " << n;
    EXPECT_EQ(got.cls(n), want.cls(n)) << "node " << n;
    EXPECT_DOUBLE_EQ(got.weight(n), want.weight(n)) << "node " << n;
    const auto eq_span = [&](std::span<const AsId> a, std::span<const AsId> b,
                             const char* what) {
      ASSERT_EQ(a.size(), b.size()) << what << " of node " << n;
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i], b[i]) << what << "[" << i << "] of node " << n;
      }
    };
    eq_span(got.customers(n), want.customers(n), "customers");
    eq_span(got.peers(n), want.peers(n), "peers");
    eq_span(got.providers(n), want.providers(n), "providers");
  }
}

/// Two non-adjacent stubs with distinct providers (a legal peer edge).
std::pair<AsId, AsId> stub_pair(const AsGraph& g, std::uint64_t seed) {
  std::vector<AsId> stubs;
  for (AsId n = 0; n < g.num_nodes(); ++n) {
    if (g.is_stub(n)) stubs.push_back(n);
  }
  std::mt19937_64 rng(seed);
  std::shuffle(stubs.begin(), stubs.end(), rng);
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    topo::Link l;
    if (!g.link_between(stubs[i], stubs[i + 1], l)) return {stubs[i], stubs[i + 1]};
  }
  ADD_FAILURE() << "no non-adjacent stub pair found";
  return {0, 1};
}

TEST(TopoDeltaCsr, EdgeOpsMatchFromScratchRebuild) {
  topo::Internet net = small_internet(300, 7);
  AsGraph& g = net.graph;

  const auto [sa, sb] = stub_pair(g, 1);
  const auto check = [&] { expect_graphs_equal(g, rebuild_reference(g)); };

  const TopoOp add_peer = edge_op(TopoOp::Kind::AddPeer, sa, sb);
  (void)g.apply_op(add_peer);
  check();

  const TopoOp drop = edge_op(TopoOp::Kind::RemoveEdge, sa, sb);
  (void)g.apply_op(drop);
  check();

  // Re-home: make sb a customer of sa (sa becomes an ISP), then flip the
  // edge to peer and back to customer via SetRelationship relabels.
  const TopoOp add_cp = edge_op(TopoOp::Kind::AddCustomerProvider, sa, sb);
  auto stats = g.apply_op(add_cp);
  EXPECT_FALSE(stats.class_changed.empty());  // sa: Stub -> Isp
  check();

  const TopoOp to_peer =
      edge_op(TopoOp::Kind::SetRelationship, sa, sb, Link::Peer);
  (void)g.apply_op(to_peer);
  check();

  const TopoOp to_cust =
      edge_op(TopoOp::Kind::SetRelationship, sa, sb, Link::Customer);
  (void)g.apply_op(to_cust);
  check();

  (void)g.apply_op(drop);
  check();
}

TEST(TopoDeltaCsr, AddStubMatchesFromScratchRebuild) {
  topo::Internet net = small_internet(200, 11);
  AsGraph& g = net.graph;
  std::vector<AsId> providers;
  for (AsId n = 0; n < g.num_nodes() && providers.size() < 2; ++n) {
    if (g.is_isp(n)) providers.push_back(n);
  }
  ASSERT_EQ(providers.size(), 2u);

  const std::size_t before = g.num_nodes();
  const TopoOp op = stub_op(900001, providers);
  const auto stats = g.apply_op(op);
  ASSERT_EQ(stats.new_nodes.size(), 1u);
  EXPECT_EQ(g.num_nodes(), before + 1);
  EXPECT_EQ(g.asn(stats.new_nodes[0]), 900001u);
  EXPECT_TRUE(g.is_stub(stats.new_nodes[0]));
  expect_graphs_equal(g, rebuild_reference(g));
}

TEST(TopoDeltaCsr, TinyRowBudgetFullRebuildSameBytes) {
  // The same op applied under the default budget and under row_budget = 1
  // (which must trip the full-rebuild bail-out) yields identical graphs —
  // the "same bytes, full-rebuild cost" contract.
  topo::Internet a = small_internet(250, 13);
  topo::Internet b = small_internet(250, 13);
  const auto [sa, sb] = stub_pair(a.graph, 3);

  const TopoOp op = edge_op(TopoOp::Kind::AddPeer, sa, sb);
  const auto s_default = a.graph.apply_op(op);
  const auto s_tiny = b.graph.apply_op(op, /*row_budget=*/1);
  EXPECT_FALSE(s_default.full_rebuild);
  EXPECT_TRUE(s_tiny.full_rebuild);
  expect_graphs_equal(b.graph, a.graph);
}

TEST(TopoDeltaCsr, InvalidOpThrowsAndLeavesGraphUntouched) {
  topo::Internet net = small_internet(150, 17);
  AsGraph& g = net.graph;
  const AsGraph reference = rebuild_reference(g);

  const auto [sa, sb] = stub_pair(g, 5);
  // Removing a non-existent edge and relabelling a non-existent edge must
  // both throw with the graph unchanged.
  const TopoOp bad_remove = edge_op(TopoOp::Kind::RemoveEdge, sa, sb);
  EXPECT_THROW((void)g.apply_op(bad_remove), std::invalid_argument);
  const TopoOp bad_rel =
      edge_op(TopoOp::Kind::SetRelationship, sa, sb, Link::Peer);
  EXPECT_THROW((void)g.apply_op(bad_rel), std::invalid_argument);
  // A duplicate AS number for AddStub is rejected too.
  const TopoOp bad_stub = stub_op(g.asn(0), {sa});
  EXPECT_THROW((void)g.apply_op(bad_stub), std::invalid_argument);
  expect_graphs_equal(g, reference);
}

TEST(TopoDeltaLabels, SourceLabelsAreRibColumns) {
  // labels(src)[d] must equal rib(d)[src] for every destination d: the
  // invalidation layer's edge-candidate test reads pre-op labels as a cheap
  // transpose of the per-destination RIBs, so this equality is load-bearing.
  topo::Internet net = small_internet(200, 19);
  const AsGraph& g = net.graph;
  rt::RibComputer ribs(g);
  rt::SourceLabelComputer labels(g);

  std::vector<rt::DestRib> all(g.num_nodes());
  for (AsId d = 0; d < g.num_nodes(); ++d) ribs.compute(d, all[d]);

  std::mt19937_64 rng(23);
  std::vector<AsId> srcs;
  for (AsId n = 0; n < g.num_nodes(); ++n) srcs.push_back(n);
  std::shuffle(srcs.begin(), srcs.end(), rng);
  srcs.resize(24);

  std::vector<rt::RouteClass> cls;
  std::vector<std::uint16_t> len;
  for (const AsId src : srcs) {
    labels.compute(src, cls, len);
    for (AsId d = 0; d < g.num_nodes(); ++d) {
      ASSERT_EQ(cls[d], all[d].cls[src]) << "src " << src << " dest " << d;
      if (cls[d] != rt::RouteClass::None) {
        ASSERT_EQ(len[d], all[d].len[src]) << "src " << src << " dest " << d;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Invalidation matrix. Every scenario runs the simulator with
// check_incremental on: each warm evaluate_state() after a topology delta is
// cross-checked bitwise against a full recompute from the current graph, so
// an under-invalidation (stale bundle survives) or a stale stored RIB throws
// IncrementalDivergence and fails the test. Warm results are additionally
// compared against a cold simulator constructed fresh on the patched graph.
// ---------------------------------------------------------------------------

core::SimConfig checked_config() {
  core::SimConfig cfg;
  cfg.model = core::UtilityModel::Outgoing;
  cfg.theta = 0.05;
  cfg.threads = 1;
  cfg.check_incremental = true;
  return cfg;
}

void expect_eval_equal(const core::StateEvaluation& warm,
                       const core::StateEvaluation& cold) {
  ASSERT_EQ(warm.utility.size(), cold.utility.size());
  for (std::size_t n = 0; n < warm.utility.size(); ++n) {
    EXPECT_EQ(warm.utility[n], cold.utility[n]) << "utility of node " << n;
    EXPECT_EQ(warm.would_flip_on[n], cold.would_flip_on[n]) << "node " << n;
    // projected_on is NaN for nodes the pruning rules skip; compare bitwise
    // through the NaN (NaN != NaN, so compare representations).
    const bool wn = std::isnan(warm.projected_on[n]);
    const bool cn = std::isnan(cold.projected_on[n]);
    EXPECT_EQ(wn, cn) << "projected_on NaN-ness of node " << n;
    if (!wn && !cn) {
      EXPECT_EQ(warm.projected_on[n], cold.projected_on[n]) << "node " << n;
    }
  }
}

void expect_warm_matches_cold(const AsGraph& g, core::DeploymentSimulator& sim,
                              const core::DeploymentState& state) {
  const core::StateEvaluation& warm = sim.evaluate_state(state);
  core::SimConfig cold_cfg = checked_config();
  cold_cfg.check_incremental = false;
  core::DeploymentSimulator cold(g, cold_cfg);
  const core::StateEvaluation& c = cold.evaluate_state(state);
  expect_eval_equal(warm, c);
}

TEST(TopoDeltaInvalidation, SecureFrontierEdgeAddAndDrop) {
  topo::Internet net = small_internet(300, 7);
  AsGraph& g = net.graph;
  auto state = test::random_state(g, 0.3, 101);
  core::DeploymentSimulator sim(g, checked_config());
  (void)sim.evaluate_state(state);  // warm the caches

  // An edge between a secure ISP and an insecure ISP sits exactly on the
  // secure frontier: adding it can create new secure paths, dropping it can
  // destroy them.
  AsId secure_isp = topo::kNoAs, insecure_isp = topo::kNoAs;
  topo::Link l;
  for (AsId n = 0; n < g.num_nodes() && insecure_isp == topo::kNoAs; ++n) {
    if (!g.is_isp(n) || !state.is_secure(n)) continue;
    for (AsId m = 0; m < g.num_nodes(); ++m) {
      if (!g.is_isp(m) || state.is_secure(m)) continue;
      if (!g.link_between(n, m, l)) {
        secure_isp = n;
        insecure_isp = m;
        break;
      }
    }
  }
  ASSERT_NE(secure_isp, topo::kNoAs);
  ASSERT_NE(insecure_isp, topo::kNoAs);

  TopoDelta add;
  add.ops.push_back(edge_op(TopoOp::Kind::AddPeer, secure_isp, insecure_isp));
  (void)sim.apply_topology_delta(g, add);
  expect_warm_matches_cold(g, sim, state);

  TopoDelta drop;
  drop.ops.push_back(
      edge_op(TopoOp::Kind::RemoveEdge, secure_isp, insecure_isp));
  (void)sim.apply_topology_delta(g, drop);
  expect_warm_matches_cold(g, sim, state);
}

TEST(TopoDeltaInvalidation, NewStubMidCascade) {
  topo::Internet net = small_internet(300, 7);
  AsGraph& g = net.graph;
  auto state = test::random_state(g, 0.2, 103);
  core::DeploymentSimulator sim(g, checked_config());

  // Advance one myopic best-response step by hand (a "mid-cascade" state):
  // flip every ISP whose Eq. 3 verdict says so, simplex stubs included.
  const core::StateEvaluation& ev = sim.evaluate_state(state);
  std::vector<AsId> flipped;
  for (AsId n = 0; n < g.num_nodes(); ++n) {
    if (ev.would_flip_on[n] != 0) flipped.push_back(n);
  }
  for (const AsId n : flipped) {
    if (g.is_isp(n)) state.secure_isp_with_stubs(g, n);
    else state.set_secure(n, true);
  }
  (void)sim.evaluate_state(state);

  // Home the new stub on one secure and one insecure provider, so its
  // appearance perturbs routing trees on both sides of the frontier.
  AsId secure_isp = topo::kNoAs, insecure_isp = topo::kNoAs;
  for (AsId n = 0; n < g.num_nodes(); ++n) {
    if (!g.is_isp(n)) continue;
    if (state.is_secure(n) && secure_isp == topo::kNoAs) secure_isp = n;
    if (!state.is_secure(n) && insecure_isp == topo::kNoAs) insecure_isp = n;
  }
  ASSERT_NE(secure_isp, topo::kNoAs);
  ASSERT_NE(insecure_isp, topo::kNoAs);

  TopoDelta delta;
  delta.ops.push_back(stub_op(900100, {secure_isp, insecure_isp}));
  const auto res = sim.apply_topology_delta(g, delta);
  EXPECT_TRUE(res.full_invalidation);  // AddStub resizes every per-dest array
  state.flags().resize(g.num_nodes(), 0);
  expect_warm_matches_cold(g, sim, state);
}

TEST(TopoDeltaInvalidation, PeerCustomerFlip) {
  topo::Internet net = small_internet(300, 7);
  AsGraph& g = net.graph;
  auto state = test::random_state(g, 0.3, 107);
  core::DeploymentSimulator sim(g, checked_config());
  (void)sim.evaluate_state(state);

  // Find an existing ISP-ISP peer edge and relabel it customer, then back.
  // SetRelationship validates GR1 (no provider cycles); scan until a legal
  // candidate applies.
  bool flipped = false;
  for (AsId n = 0; n < g.num_nodes() && !flipped; ++n) {
    if (!g.is_isp(n)) continue;
    for (const AsId p : g.peers(n)) {
      TopoDelta to_cust;
      to_cust.ops.push_back(
          edge_op(TopoOp::Kind::SetRelationship, n, p, Link::Customer));
      try {
        (void)sim.apply_topology_delta(g, to_cust);
      } catch (const std::invalid_argument&) {
        continue;  // would break GR1; try the next peer edge
      }
      expect_warm_matches_cold(g, sim, state);

      TopoDelta back;
      back.ops.push_back(
          edge_op(TopoOp::Kind::SetRelationship, n, p, Link::Peer));
      (void)sim.apply_topology_delta(g, back);
      expect_warm_matches_cold(g, sim, state);
      flipped = true;
      break;
    }
  }
  ASSERT_TRUE(flipped) << "no relabel-able peer edge found";
}

TEST(TopoDeltaInvalidation, RandomizedMutateThenDiff) {
  // Interleave random topology mutations with random deployment flips, warm-
  // evaluating after each under check_incremental, and periodically compare
  // the patched graph against a from-scratch rebuild. Zero divergences
  // across the whole sequence is the acceptance criterion for the lockstep
  // mode.
  topo::Internet net = small_internet(260, 29);
  AsGraph& g = net.graph;
  auto state = test::random_state(g, 0.25, 109);
  core::DeploymentSimulator sim(g, checked_config());
  (void)sim.evaluate_state(state);

  std::mt19937_64 rng(31);
  std::uint32_t next_asn = 910000;
  int applied = 0;
  for (int iter = 0; iter < 24; ++iter) {
    const int kind = static_cast<int>(rng() % 5);
    TopoDelta delta;
    const AsId a = static_cast<AsId>(rng() % g.num_nodes());
    const AsId b = static_cast<AsId>(rng() % g.num_nodes());
    switch (kind) {
      case 0:
        delta.ops.push_back(edge_op(TopoOp::Kind::AddPeer, a, b));
        break;
      case 1:
        delta.ops.push_back(edge_op(TopoOp::Kind::AddCustomerProvider, a, b));
        break;
      case 2:
        delta.ops.push_back(edge_op(TopoOp::Kind::RemoveEdge, a, b));
        break;
      case 3:
        delta.ops.push_back(edge_op(TopoOp::Kind::SetRelationship, a, b,
                                    rng() % 2 == 0 ? Link::Peer : Link::Customer));
        break;
      default:
        delta.ops.push_back(stub_op(next_asn++, {a}));
        break;
    }
    try {
      (void)sim.apply_topology_delta(g, delta);
      ++applied;
    } catch (const std::invalid_argument&) {
      continue;  // randomly drawn op was illegal; graph is untouched
    } catch (const std::logic_error&) {
      continue;
    }
    state.flags().resize(g.num_nodes(), 0);

    // Sometimes also flip a random ISP, so the dirty set mixes topology-
    // forced and state-diffed destinations.
    if (rng() % 2 == 0) {
      const AsId n = static_cast<AsId>(rng() % g.num_nodes());
      if (g.is_isp(n) && !state.is_secure(n)) state.secure_isp_with_stubs(g, n);
    }
    (void)sim.evaluate_state(state);  // lockstep-checked
    if (iter % 6 == 0) expect_graphs_equal(g, rebuild_reference(g));
  }
  EXPECT_GE(applied, 6) << "random op mix applied too few mutations to be "
                           "a meaningful lockstep test";
  expect_warm_matches_cold(g, sim, state);
}

TEST(TopoDeltaInvalidation, WarmEqualsColdAfterStateOnlyFlips) {
  // No topology change at all: the warm diff path against last_flags_ must
  // agree with a cold evaluation exactly.
  topo::Internet net = small_internet(300, 7);
  AsGraph& g = net.graph;
  auto state = test::random_state(g, 0.2, 113);
  core::DeploymentSimulator sim(g, checked_config());
  (void)sim.evaluate_state(state);

  int flips = 0;
  for (AsId n = 0; n < g.num_nodes() && flips < 5; ++n) {
    if (g.is_isp(n) && !state.is_secure(n)) {
      state.secure_isp_with_stubs(g, n);
      ++flips;
    }
  }
  ASSERT_EQ(flips, 5);
  expect_warm_matches_cold(g, sim, state);
}

}  // namespace
}  // namespace sbgp
