file(REMOVE_RECURSE
  "libsbgp_stats.a"
)
