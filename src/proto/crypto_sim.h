// Simulation-grade cryptography for the S*BGP protocol engine.
//
// SUBSTITUTION NOTE (see DESIGN.md §2): the paper's protocols rest on RSA
// signatures over RPKI-certified keys. The deployment economics are
// indifferent to cryptographic strength — what matters is *who can produce
// and who can validate which attestations*. We therefore model signatures
// as 64-bit keyed digests. Unforgeability holds by construction within the
// simulation: producing a signature requires the private key, private keys
// never leave the Rpki/KeyPair objects, and attack harnesses are written
// against the same public API as honest nodes.
#pragma once

#include <cstdint>
#include <initializer_list>

namespace sbgp::proto {

/// A 64-bit message digest.
using Digest = std::uint64_t;
/// A 64-bit simulated signature.
using Signature = std::uint64_t;

/// splitmix64-based mixing of a sequence of words into a digest.
[[nodiscard]] Digest digest_words(std::initializer_list<std::uint64_t> words);

/// Incremental digest builder for variable-length data (AS paths).
class DigestBuilder {
 public:
  DigestBuilder& add(std::uint64_t word);
  [[nodiscard]] Digest finish() const { return state_; }

 private:
  std::uint64_t state_ = 0x6a09e667f3bcc908ULL;
};

/// A simulated asymmetric key pair.
struct KeyPair {
  std::uint64_t public_key = 0;
  std::uint64_t private_key = 0;
};

/// Deterministically derives the key pair of `asn` from the trust anchor's
/// master seed (so independently constructed RPKI instances agree).
[[nodiscard]] KeyPair derive_keypair(std::uint32_t asn, std::uint64_t master_seed);

/// Signs `digest` with a private key.
[[nodiscard]] Signature sign(std::uint64_t private_key, Digest digest);

/// Verifies a signature given the *private* key (the Rpki verification
/// service holds the key material; see rpki.h). Constant-time concerns do
/// not apply to a simulation.
[[nodiscard]] bool verify_with_private(std::uint64_t private_key, Digest digest,
                                       Signature sig);

}  // namespace sbgp::proto
