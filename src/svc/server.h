// svc::Server — the newline-delimited-JSON transport in front of a
// svc::Session: one Unix-domain stream socket, a single-threaded poll()
// loop (requests serialise through the one warm engine anyway, so extra
// threads would only add locking), per-client line buffers, and a
// self-pipe for async-signal-safe SIGTERM/SIGINT shutdown. On shutdown —
// signal or an in-band {"op":"shutdown"} — the server stops accepting,
// drains every complete buffered request line (answering each), closes the
// clients, unlinks the socket and returns 0.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "svc/session.h"

namespace sbgp::svc {

struct ServerConfig {
  std::string socket_path;
  int backlog = 16;
  /// Per-client receive buffer cap; a client exceeding it without sending a
  /// newline gets an error reply and is disconnected.
  std::size_t max_line_bytes = std::size_t{16} << 20;
};

class Server {
 public:
  /// Binds and listens immediately (any stale socket file at the path is
  /// removed first — the caller owns the path). Throws std::runtime_error
  /// on any transport setup failure; the CLI maps that to exit 6.
  Server(Session& session, ServerConfig cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Serves until SIGTERM/SIGINT, an in-band shutdown request, or
  /// request_stop(). Returns 0 on a clean drain. Transport errors throw
  /// std::runtime_error; a check_topo_delta lockstep mismatch propagates as
  /// core::IncrementalDivergence.
  int run();

  /// Thread-safe shutdown nudge, equivalent to receiving SIGTERM (benches
  /// and tests stop an in-process server with this).
  void request_stop();

  [[nodiscard]] const std::string& socket_path() const {
    return cfg_.socket_path;
  }

 private:
  struct Client {
    int fd = -1;
    std::string buf;
  };

  /// Reads whatever is pending, answers every complete line; returns false
  /// when the client should be closed (EOF, error, buffer overflow).
  bool service_client(Client& c);
  /// Answers the complete lines already buffered (the shutdown drain path).
  void answer_buffered(Client& c);
  bool send_all(int fd, const std::string& data);
  void close_client(Client& c);

  Session& session_;
  ServerConfig cfg_;
  int listen_fd_ = -1;
  int pipe_r_ = -1;
  int pipe_w_ = -1;
  std::vector<Client> clients_;
  bool stopping_ = false;
};

}  // namespace sbgp::svc
