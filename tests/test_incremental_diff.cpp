// Differential tests for the incremental dirty-destination round engine:
// the incremental engine (SimConfig::incremental) must be *bitwise*
// indistinguishable from the full per-round recompute — same per-round flip
// sets, utilities, projections, outcome, and final state — across the whole
// configuration matrix (utility model × pricing model × tie-break policy ×
// stub-tie handling), including oscillation detection and mid-run aborts.
// This is the fourth-implementation cross-check in the spirit of
// test_reference_router.cpp, aimed at the engine instead of the router.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/simulator.h"
#include "gadgets/gadgets.h"
#include "test_util.h"

namespace sbgp::core {
namespace {

using topo::AsId;

struct RoundTrace {
  std::vector<std::uint8_t> secure;
  std::vector<double> utility, proj_on, proj_off;
  std::vector<AsId> flip_on, flip_off;
};

struct Trace {
  SimResult result;
  std::vector<RoundTrace> rounds;
};

Trace run_traced(const topo::AsGraph& g, const SimConfig& cfg,
                 const DeploymentState& init) {
  DeploymentSimulator sim(g, cfg);
  Trace t;
  t.result = sim.run(init, [&](const RoundObservation& o) {
    RoundTrace r;
    r.secure = *o.secure;
    r.utility = *o.utility;
    r.proj_on = *o.projected_on;
    r.proj_off = *o.projected_off;
    r.flip_on = *o.flipping_on;
    r.flip_off = *o.flipping_off;
    t.rounds.push_back(std::move(r));
  });
  return t;
}

/// Exact, bit-level comparison (distinguishes ±0, treats the NaN markers of
/// unevaluated projections as equal — plain == would do neither).
void expect_same_bits(const std::vector<double>& a, const std::vector<double>& b,
                      const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t x = 0, y = 0;
    std::memcpy(&x, &a[i], sizeof(x));
    std::memcpy(&y, &b[i], sizeof(y));
    ASSERT_EQ(x, y) << what << " differs at node " << i << ": " << a[i]
                    << " vs " << b[i];
  }
}

void expect_equal_traces(const Trace& incremental, const Trace& full) {
  ASSERT_EQ(incremental.result.outcome, full.result.outcome);
  ASSERT_EQ(incremental.result.rounds_run(), full.result.rounds_run());
  ASSERT_EQ(incremental.result.final_state.flags(),
            full.result.final_state.flags());
  expect_same_bits(incremental.result.starting_utility,
                   full.result.starting_utility, "starting_utility");
  expect_same_bits(incremental.result.final_utility, full.result.final_utility,
                   "final_utility");
  ASSERT_EQ(incremental.rounds.size(), full.rounds.size());
  for (std::size_t r = 0; r < full.rounds.size(); ++r) {
    SCOPED_TRACE("round " + std::to_string(r + 1));
    const RoundTrace& a = incremental.rounds[r];
    const RoundTrace& b = full.rounds[r];
    EXPECT_EQ(a.secure, b.secure);
    EXPECT_EQ(a.flip_on, b.flip_on);
    EXPECT_EQ(a.flip_off, b.flip_off);
    expect_same_bits(a.utility, b.utility, "utility");
    expect_same_bits(a.proj_on, b.proj_on, "proj_on");
    expect_same_bits(a.proj_off, b.proj_off, "proj_off");
  }
}

/// Runs incremental vs full vs lockstep-checked on one instance and asserts
/// all three agree (the checked run throws IncrementalDivergence itself on
/// any cached-bundle mismatch, which ASSERT_NO_THROW surfaces).
void cross_check(const topo::AsGraph& g, SimConfig cfg,
                 const DeploymentState& init) {
  cfg.incremental = true;
  cfg.check_incremental = false;
  const Trace fast = run_traced(g, cfg, init);

  cfg.incremental = false;
  const Trace full = run_traced(g, cfg, init);
  expect_equal_traces(fast, full);

  cfg.incremental = true;
  cfg.check_incremental = true;
  Trace checked;
  ASSERT_NO_THROW(checked = run_traced(g, cfg, init));
  expect_equal_traces(checked, full);
}

TEST(IncrementalDiff, MatchesFullEngineAcrossMatrix) {
  const UtilityModel models[] = {UtilityModel::Outgoing, UtilityModel::Incoming};
  const PricingModel pricings[] = {PricingModel::LinearVolume,
                                   PricingModel::ConcaveVolume,
                                   PricingModel::TieredCapacity};
  const rt::TieBreakPolicy::Mode tiebreaks[] = {
      rt::TieBreakPolicy::Mode::PairwiseHash, rt::TieBreakPolicy::Mode::Rank};

  // 2 models x 3 pricings x 2 tie-breaks x 4 seeds = 48 randomized graphs.
  std::uint64_t seed = 0;
  for (const UtilityModel model : models) {
    for (const PricingModel pricing : pricings) {
      for (const auto tb : tiebreaks) {
        for (int rep = 0; rep < 4; ++rep) {
          ++seed;
          SCOPED_TRACE(std::string(to_string(model)) + "/" + to_string(pricing) +
                       (tb == rt::TieBreakPolicy::Mode::Rank ? "/rank" : "/hash") +
                       "/seed" + std::to_string(seed));
          const auto net =
              test::small_internet(110 + 20 * (seed % 3), 1000 + seed);
          const auto init = test::random_state(net.graph, 0.25, seed);

          SimConfig cfg;
          cfg.model = model;
          cfg.pricing = pricing;
          cfg.pricing_tier_size = 25.0;
          cfg.tiebreak.mode = tb;
          cfg.theta = 0.02;
          cfg.stub_breaks_ties = (seed % 2) == 0;
          cfg.allow_turn_off = true;
          cfg.max_rounds = 60;
          cfg.threads = 2;  // exercises per-worker scratch slots
          cross_check(net.graph, cfg, init);
        }
      }
    }
  }
}

TEST(IncrementalDiff, RecomputesOnlyDirtyDestinationsAfterFirstRound) {
  const auto net = test::small_internet(400, 11);
  const auto init = test::random_state(net.graph, 0.05, 11);
  const std::size_t n = net.graph.num_nodes();

  SimConfig cfg;
  cfg.model = UtilityModel::Outgoing;
  cfg.theta = 0.01;
  cfg.threads = 1;
  DeploymentSimulator sim(net.graph, cfg);
  const auto result = sim.run(init);

  ASSERT_GE(result.rounds_run(), 2u) << "instance too quiet to test pruning";
  EXPECT_EQ(result.rounds[0].recomputed_destinations, n)
      << "first round must be a full recompute";
  std::size_t later_total = 0, later_rounds = 0;
  for (std::size_t r = 1; r < result.rounds.size(); ++r) {
    later_total += result.rounds[r].recomputed_destinations;
    ++later_rounds;
  }
  // The whole point of the engine: per-round cost proportional to churn.
  EXPECT_LT(later_total, later_rounds * n);

  // The full engine reports every destination recomputed every round.
  cfg.incremental = false;
  DeploymentSimulator full(net.graph, cfg);
  const auto full_result = full.run(init);
  for (const auto& r : full_result.rounds) {
    EXPECT_EQ(r.recomputed_destinations, n);
  }
}

TEST(IncrementalDiff, ChickenOscillationParity) {
  // Section 7.2: the CHICKEN gadget oscillates under synchronous myopic
  // best response (both players ON together, OFF together, forever). Both
  // engines must detect the recurrence at the same round.
  const auto g = gadgets::make_chicken();
  SimConfig cfg;
  g.configure(cfg);
  cfg.max_rounds = 40;

  cfg.incremental = true;
  const Trace fast = run_traced(g.graph, cfg, g.initial);
  cfg.incremental = false;
  const Trace full = run_traced(g.graph, cfg, g.initial);

  EXPECT_EQ(fast.result.outcome, Outcome::Oscillating);
  expect_equal_traces(fast, full);

  cfg.incremental = true;
  cfg.check_incremental = true;
  Trace checked;
  ASSERT_NO_THROW(checked = run_traced(g.graph, cfg, g.initial));
  expect_equal_traces(checked, full);
}

TEST(IncrementalDiff, RandomIncomingTurnOffParity) {
  // Randomized Incoming-model runs with turn-off enabled: whatever the
  // outcome (stable, oscillating, round cap), both engines must agree on
  // the full trace — including the round at which a state recurs.
  bool saw_turn_off = false;
  for (std::uint64_t seed = 100; seed < 112; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto net = test::small_internet(150, seed);
    const auto init = test::random_state(net.graph, 0.35, seed);

    SimConfig cfg;
    cfg.model = UtilityModel::Incoming;
    cfg.theta = 0.0;
    cfg.allow_turn_off = true;
    cfg.max_rounds = 50;
    cfg.threads = 2;
    cross_check(net.graph, cfg, init);

    cfg.incremental = true;
    const Trace t = run_traced(net.graph, cfg, init);
    for (const auto& r : t.rounds) saw_turn_off |= !r.flip_off.empty();
  }

  // The random matrix checks parity under arbitrary churn, but nothing
  // guarantees a profitable turn-off exists in those instances. The Figure
  // 13 buyer's-remorse gadget has one by construction: telecom must flip
  // off, and both engines must agree on the round it happens.
  const auto g = gadgets::make_buyers_remorse();
  SimConfig gcfg;
  g.configure(gcfg);
  cross_check(g.graph, gcfg, g.initial);
  gcfg.incremental = true;
  const Trace gt = run_traced(g.graph, gcfg, g.initial);
  EXPECT_FALSE(gt.result.final_state.is_secure(g.node("telecom")));
  for (const auto& r : gt.rounds) saw_turn_off |= !r.flip_off.empty();
  EXPECT_TRUE(saw_turn_off) << "matrix never exercised the turn-off path";
}

TEST(IncrementalDiff, AbortedMidRunParity) {
  // stop_requested is polled exactly once per round by both engines, so a
  // deadline that fires at the k-th poll must abort both at the same round
  // with the same partial state.
  const auto net = test::small_internet(200, 5);
  const auto init = test::random_state(net.graph, 0.25, 5);

  SimConfig cfg;
  cfg.model = UtilityModel::Incoming;
  cfg.theta = 0.0;
  cfg.allow_turn_off = true;
  cfg.max_rounds = 50;

  const auto run_with_deadline = [&](bool incremental) {
    SimConfig c = cfg;
    c.incremental = incremental;
    std::size_t polls = 0;
    c.stop_requested = [&polls] { return ++polls > 2; };
    return run_traced(net.graph, c, init);
  };
  const Trace fast = run_with_deadline(true);
  const Trace full = run_with_deadline(false);
  EXPECT_EQ(fast.result.outcome, Outcome::Aborted);
  expect_equal_traces(fast, full);
}

TEST(IncrementalDiff, ExhaustiveProjectionModeStaysFull) {
  // use_projection_pruning=false (the O(V^2)-trees testing mode) has no
  // footprints to reason with; the engine must fall back to full recompute
  // and still agree with itself.
  const auto net = test::small_internet(60, 3);
  const auto init = test::random_state(net.graph, 0.3, 3);

  SimConfig cfg;
  cfg.model = UtilityModel::Incoming;
  cfg.theta = 0.0;
  cfg.use_projection_pruning = false;
  cfg.max_rounds = 30;
  cross_check(net.graph, cfg, init);

  cfg.use_projection_pruning = true;
  cfg.incremental = true;
  const Trace pruned = run_traced(net.graph, cfg, init);
  cfg.use_projection_pruning = false;
  const Trace exhaustive = run_traced(net.graph, cfg, init);
  // Pruning (and caching on top of it) never changes decisions.
  EXPECT_EQ(pruned.result.outcome, exhaustive.result.outcome);
  EXPECT_EQ(pruned.result.final_state.flags(),
            exhaustive.result.final_state.flags());
  for (const auto& r : exhaustive.result.rounds) {
    EXPECT_EQ(r.recomputed_destinations, net.graph.num_nodes());
  }
}

TEST(IncrementalDiff, BackToBackRunsDoNotLeakCache) {
  // run() may be called repeatedly on one simulator with different initial
  // states; cached bundles from the previous run must not bleed through.
  const auto net = test::small_internet(150, 9);
  SimConfig cfg;
  cfg.model = UtilityModel::Outgoing;
  cfg.theta = 0.02;
  DeploymentSimulator sim(net.graph, cfg);

  const auto init_a = test::random_state(net.graph, 0.3, 1);
  const auto init_b = test::random_state(net.graph, 0.1, 2);
  const auto first = sim.run(init_a);
  const auto second = sim.run(init_b);

  DeploymentSimulator fresh(net.graph, cfg);
  const auto expected = fresh.run(init_b);
  EXPECT_EQ(second.outcome, expected.outcome);
  EXPECT_EQ(second.rounds_run(), expected.rounds_run());
  EXPECT_EQ(second.final_state.flags(), expected.final_state.flags());
  expect_same_bits(second.final_utility, expected.final_utility,
                   "final_utility");
  (void)first;
}

}  // namespace
}  // namespace sbgp::core
