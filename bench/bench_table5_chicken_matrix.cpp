// Table 5 (Appendix K.5): the CHICKEN gadget bi-matrix. Incoming utilities
// of players 10 and 20 in the four ON/OFF states, verifying the chicken-game
// structure that powers the PSPACE-completeness construction.
#include <iostream>

#include "gadgets/gadgets.h"
#include "stats/table.h"

int main() {
  using namespace sbgp;
  std::cout << "=== Table 5 - CHICKEN gadget bi-matrix (m = 10000, eps = 100) ===\n\n";

  const auto g = gadgets::make_chicken(10000.0, 100.0);
  const auto mat = gadgets::evaluate_chicken_matrix(g);

  stats::Table t({"", "20 ON", "20 OFF"});
  auto cell = [&](int i, int j) {
    const auto& [u10, u20] = mat.u[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
    return "(" + std::to_string(static_cast<long long>(u10)) + ", " +
           std::to_string(static_cast<long long>(u20)) + ")";
  };
  t.begin_row();
  t.add(std::string("10 ON"));
  t.add(cell(1, 1));
  t.add(cell(1, 0));
  t.begin_row();
  t.add(std::string("10 OFF"));
  t.add(cell(0, 1));
  t.add(cell(0, 0));
  t.print(std::cout);

  const bool chicken =
      mat.u[0][1].first > mat.u[1][1].first &&    // 10 prefers OFF vs 20 ON
      mat.u[1][0].second > mat.u[1][1].second &&  // 20 prefers OFF vs 10 ON
      mat.u[1][0].first > mat.u[0][0].first &&    // 10 prefers ON vs 20 OFF
      mat.u[0][1].second > mat.u[0][0].second;    // 20 prefers ON vs 10 OFF
  std::cout << "\nchicken-game structure (two asymmetric pure Nash, "
               "best-response cycle through the symmetric states): "
            << (chicken ? "CONFIRMED" : "VIOLATED") << "\n";
  std::cout << "paper: Table 5 is (m+eps, eps | 2m+eps, m // 2m, m+eps | 2m, m); "
               "our all-pairs traffic adds parasitic copies of the same ties, "
               "amplifying but never reversing the margins.\n";
  return 0;
}
