// Deployment state (Section 3.2): the set of ASes that have deployed S*BGP.
// Stubs run simplex S*BGP and are secured by their providers; a stub's
// deployment is sticky (signing keys / soBGP certificates are issued once,
// offline), while ISPs may later turn S*BGP off in the incoming-utility
// model (Section 7).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "topology/as_graph.h"

namespace sbgp::core {

using topo::AsGraph;
using topo::AsId;

class DeploymentState {
 public:
  explicit DeploymentState(std::size_t num_nodes) : secure_(num_nodes, 0) {}

  /// Builds the paper's initial state: the early adopters are secure, and
  /// every stub customer of an early-adopter ISP runs simplex S*BGP.
  [[nodiscard]] static DeploymentState initial(const AsGraph& graph,
                                               std::span<const AsId> early_adopters);

  [[nodiscard]] bool is_secure(AsId n) const { return secure_[n] != 0; }
  void set_secure(AsId n, bool value) { secure_[n] = value ? 1 : 0; }

  /// Secures `isp` and simplex-secures all its stub customers (Section 2.3).
  void secure_isp_with_stubs(const AsGraph& graph, AsId isp);

  /// Raw flag vector (one byte per AS) — the representation consumed by
  /// rt::SecurityView.
  [[nodiscard]] const std::vector<std::uint8_t>& flags() const { return secure_; }
  [[nodiscard]] std::vector<std::uint8_t>& flags() { return secure_; }

  [[nodiscard]] std::size_t num_secure() const;
  [[nodiscard]] std::size_t num_secure_of_class(const AsGraph& graph,
                                                topo::AsClass cls) const;

  /// FNV-1a hash of the state, used for oscillation detection (Theorem 7.1
  /// says deciding termination is PSPACE-complete; we detect revisited
  /// states instead).
  [[nodiscard]] std::uint64_t hash() const;

  [[nodiscard]] bool operator==(const DeploymentState& other) const {
    return secure_ == other.secure_;
  }

 private:
  std::vector<std::uint8_t> secure_;
};

}  // namespace sbgp::core
