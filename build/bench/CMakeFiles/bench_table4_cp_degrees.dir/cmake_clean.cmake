file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_cp_degrees.dir/bench_table4_cp_degrees.cpp.o"
  "CMakeFiles/bench_table4_cp_degrees.dir/bench_table4_cp_degrees.cpp.o.d"
  "bench_table4_cp_degrees"
  "bench_table4_cp_degrees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_cp_degrees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
