file(REMOVE_RECURSE
  "CMakeFiles/adopter_search.dir/adopter_search.cpp.o"
  "CMakeFiles/adopter_search.dir/adopter_search.cpp.o.d"
  "adopter_search"
  "adopter_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adopter_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
