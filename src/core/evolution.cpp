#include "core/evolution.h"

#include <random>

namespace sbgp::core {

namespace {

/// Mutable mirror of an AsGraph that can be re-materialised each epoch
/// (AsGraph freezes its adjacency at finalize()).
struct GraphDraft {
  std::vector<std::uint32_t> asn;
  std::vector<double> weight;
  std::vector<bool> cp;
  std::vector<std::pair<topo::AsId, topo::AsId>> cust_edges;  // provider, customer
  std::vector<std::pair<topo::AsId, topo::AsId>> peer_edges;

  static GraphDraft from(const topo::AsGraph& g) {
    GraphDraft d;
    for (topo::AsId n = 0; n < g.num_nodes(); ++n) {
      d.asn.push_back(g.asn(n));
      d.weight.push_back(g.weight(n));
      d.cp.push_back(g.is_content_provider(n));
      for (const topo::AsId c : g.customers(n)) d.cust_edges.emplace_back(n, c);
      for (const topo::AsId p : g.peers(n)) {
        if (n < p) d.peer_edges.emplace_back(n, p);
      }
    }
    return d;
  }

  [[nodiscard]] topo::AsGraph materialise() const {
    topo::AsGraph g;
    for (std::size_t n = 0; n < asn.size(); ++n) {
      const topo::AsId id = g.add_as(asn[n]);
      g.set_weight(id, weight[n]);
      if (cp[n]) g.mark_content_provider(id);
    }
    for (const auto& [p, c] : cust_edges) g.add_customer_provider(p, c);
    for (const auto& [a, b] : peer_edges) g.add_peer(a, b);
    g.finalize();
    return g;
  }
};

}  // namespace

EvolutionResult run_evolution(const topo::Internet& start,
                              std::span<const topo::AsId> adopters,
                              const EvolutionConfig& cfg) {
  GraphDraft draft = GraphDraft::from(start.graph);
  std::mt19937_64 rng(cfg.seed);
  std::uniform_real_distribution<double> u01(0.0, 1.0);

  EvolutionResult result;
  DeploymentState state(0);
  bool first_epoch = true;
  std::size_t pending_secure_edges = 0, pending_insecure_edges = 0;

  for (std::size_t epoch = 1; epoch <= cfg.epochs; ++epoch) {
    topo::AsGraph graph = draft.materialise();

    if (first_epoch) {
      state = DeploymentState::initial(graph, adopters);
      first_epoch = false;
    } else {
      // Carry flags; new nodes (appended ids) default to insecure, except
      // stubs attached to secure providers, handled during growth below.
      auto flags = state.flags();
      flags.resize(graph.num_nodes(), 0);
      DeploymentState grown(graph.num_nodes());
      for (topo::AsId n = 0; n < graph.num_nodes(); ++n) {
        grown.set_secure(n, flags[n] != 0);
      }
      // Secure ISPs simplex-secure their (possibly new) stub customers.
      for (topo::AsId n = 0; n < graph.num_nodes(); ++n) {
        if (graph.is_isp(n) && grown.is_secure(n)) {
          grown.secure_isp_with_stubs(graph, n);
        }
      }
      state = grown;
    }

    DeploymentSimulator sim(graph, cfg.sim);
    const auto run = sim.run(state);
    state = run.final_state;

    EpochStats es;
    es.epoch = epoch;
    es.graph_size = graph.num_nodes();
    es.outcome = run.outcome;
    es.rounds = run.rounds_run();
    es.secure_ases = state.num_secure();
    es.secure_isps = state.num_secure_of_class(graph, topo::AsClass::Isp);
    es.new_edges_to_secure = pending_secure_edges;
    es.new_edges_to_insecure = pending_insecure_edges;
    result.epochs.push_back(es);
    pending_secure_edges = pending_insecure_edges = 0;

    if (epoch == cfg.epochs) {
      result.final_graph = std::move(graph);
      result.final_state = state;
      break;
    }

    // ---- Growth: new stubs pick providers preferentially, biased toward
    // secure ISPs. ----
    std::vector<topo::AsId> isps;
    std::vector<double> attach_weight;
    for (topo::AsId n = 0; n < graph.num_nodes(); ++n) {
      if (!graph.is_isp(n)) continue;
      isps.push_back(n);
      double w = 1.0 + static_cast<double>(graph.customers(n).size());
      if (state.is_secure(n)) w *= cfg.secure_provider_bias;
      attach_weight.push_back(w);
    }
    std::discrete_distribution<std::size_t> pick(attach_weight.begin(),
                                                 attach_weight.end());
    std::uint32_t next_asn = 0;
    for (const std::uint32_t a : draft.asn) next_asn = std::max(next_asn, a + 1);

    for (std::uint32_t s = 0; s < cfg.new_stubs_per_epoch; ++s) {
      const auto stub = static_cast<topo::AsId>(draft.asn.size());
      draft.asn.push_back(next_asn++);
      draft.weight.push_back(1.0);
      draft.cp.push_back(false);
      const double r = u01(rng);
      const std::size_t want =
          r < cfg.three_provider_prob ? 3
          : r < cfg.three_provider_prob + cfg.two_provider_prob ? 2 : 1;
      std::size_t got = 0;
      std::vector<topo::AsId> chosen;
      for (std::size_t tries = 0; tries < want * 8 && got < want; ++tries) {
        const topo::AsId prov = isps[pick(rng)];
        if (std::find(chosen.begin(), chosen.end(), prov) != chosen.end()) continue;
        chosen.push_back(prov);
        draft.cust_edges.emplace_back(prov, stub);
        if (state.is_secure(prov)) ++pending_secure_edges;
        else ++pending_insecure_edges;
        ++got;
      }
    }
    // Extend the carried state for the new ids.
    auto& flags = state.flags();
    flags.resize(draft.asn.size(), 0);
  }
  return result;
}

}  // namespace sbgp::core
