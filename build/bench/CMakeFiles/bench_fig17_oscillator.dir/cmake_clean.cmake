file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_oscillator.dir/bench_fig17_oscillator.cpp.o"
  "CMakeFiles/bench_fig17_oscillator.dir/bench_fig17_oscillator.cpp.o.d"
  "bench_fig17_oscillator"
  "bench_fig17_oscillator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_oscillator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
