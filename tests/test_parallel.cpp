#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>

#include "parallel/thread_pool.h"

namespace sbgp::par {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, hits.size(),
               [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyAndSingletonRanges) {
  ThreadPool pool(2);
  int count = 0;
  parallel_for(pool, 5, 5, [&count](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  parallel_for(pool, 5, 6, [&count](std::size_t) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(ParallelForChunked, ChunksPartitionTheRange) {
  ThreadPool pool(4);
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  parallel_for_chunked(pool, 10, 250, [&](std::size_t lo, std::size_t hi) {
    std::scoped_lock lock(m);
    chunks.emplace_back(lo, hi);
  });
  std::sort(chunks.begin(), chunks.end());
  ASSERT_FALSE(chunks.empty());
  EXPECT_EQ(chunks.front().first, 10u);
  EXPECT_EQ(chunks.back().second, 250u);
  for (std::size_t i = 0; i + 1 < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].second, chunks[i + 1].first) << "gap or overlap";
  }
}

TEST(ParallelForDynamic, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for_dynamic(pool, 0, hits.size(),
                       [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForDynamic, EmptyRangeAndUnevenWork) {
  ThreadPool pool(3);
  int count = 0;
  parallel_for_dynamic(pool, 4, 4, [&count](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  // Highly skewed per-index cost: one "job" dwarfs the rest; every index
  // must still run exactly once.
  std::atomic<long> total{0};
  parallel_for_dynamic(pool, 0, 64, [&total](std::size_t i) {
    long local = 0;
    const long reps = i == 0 ? 200000 : 100;
    for (long k = 0; k < reps; ++k) local += k % 7;
    total.fetch_add(local == -1 ? 0 : 1);
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ParallelFor, SingleThreadPoolStillCorrect) {
  ThreadPool pool(1);
  std::vector<int> v(100, 0);
  parallel_for(pool, 0, v.size(), [&v](std::size_t i) { v[i] = static_cast<int>(i); });
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(v[i], static_cast<int>(i));
}

TEST(WorkerIndex, NonWorkerThreadGetsSentinel) {
  EXPECT_EQ(ThreadPool::current_worker_index(), ThreadPool::kNotAWorker);
  std::size_t from_plain_thread = 0;
  std::thread t([&] { from_plain_thread = ThreadPool::current_worker_index(); });
  t.join();
  EXPECT_EQ(from_plain_thread, ThreadPool::kNotAWorker);
}

TEST(WorkerIndex, WorkersGetDistinctIndicesInRange) {
  constexpr std::size_t kWorkers = 4;
  ThreadPool pool(kWorkers);
  std::mutex mu;
  std::map<std::thread::id, std::set<std::size_t>> seen;
  // Enough tasks that every worker almost surely executes several.
  for (int i = 0; i < 512; ++i) {
    pool.submit([&] {
      const std::size_t idx = ThreadPool::current_worker_index();
      std::scoped_lock lock(mu);
      seen[std::this_thread::get_id()].insert(idx);
    });
  }
  pool.wait_idle();
  std::set<std::size_t> indices;
  for (const auto& [tid, idxs] : seen) {
    // Stability: a given worker thread reports one index, always.
    ASSERT_EQ(idxs.size(), 1u);
    const std::size_t idx = *idxs.begin();
    EXPECT_LT(idx, kWorkers);
    indices.insert(idx);
  }
  // Uniqueness: no two workers share an index.
  EXPECT_EQ(indices.size(), seen.size());
}

TEST(WorkerIndex, StableAcrossManyCallsWithinOneTask) {
  ThreadPool pool(3);
  std::atomic<int> mismatches{0};
  parallel_for_dynamic(pool, 0, 256, [&](std::size_t) {
    const std::size_t first = ThreadPool::current_worker_index();
    for (int k = 0; k < 100; ++k) {
      if (ThreadPool::current_worker_index() != first) mismatches.fetch_add(1);
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(WorkerIndex, ConcurrentPoolsKeepIndicesWithinTheirOwnSize) {
  // Two live pools: each worker's index must be valid for the pool that owns
  // it, and sentinel leakage between pools would show up as out-of-range.
  ThreadPool small(2);
  ThreadPool large(6);
  std::atomic<int> bad_small{0};
  std::atomic<int> bad_large{0};
  for (int i = 0; i < 128; ++i) {
    small.submit([&] {
      if (ThreadPool::current_worker_index() >= 2) bad_small.fetch_add(1);
    });
    large.submit([&] {
      if (ThreadPool::current_worker_index() >= 6) bad_large.fetch_add(1);
    });
  }
  small.wait_idle();
  large.wait_idle();
  EXPECT_EQ(bad_small.load(), 0);
  EXPECT_EQ(bad_large.load(), 0);
}

TEST(WorkerIndex, SequentialPoolsReuseValidIndices) {
  // Pools created and destroyed in sequence: index assignment must reset per
  // pool, not grow without bound across pool lifetimes.
  for (int iter = 0; iter < 4; ++iter) {
    ThreadPool pool(2);
    std::atomic<int> bad{0};
    parallel_for(pool, 0, 64, [&](std::size_t) {
      if (ThreadPool::current_worker_index() >= 2) bad.fetch_add(1);
    });
    EXPECT_EQ(bad.load(), 0) << "iteration " << iter;
  }
}

}  // namespace
}  // namespace sbgp::par
