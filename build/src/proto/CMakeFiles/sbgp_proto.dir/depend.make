# Empty dependencies file for sbgp_proto.
# This may be replaced when dependencies are built.
