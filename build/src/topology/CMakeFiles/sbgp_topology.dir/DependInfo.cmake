
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/as_graph.cpp" "src/topology/CMakeFiles/sbgp_topology.dir/as_graph.cpp.o" "gcc" "src/topology/CMakeFiles/sbgp_topology.dir/as_graph.cpp.o.d"
  "/root/repo/src/topology/graph_io.cpp" "src/topology/CMakeFiles/sbgp_topology.dir/graph_io.cpp.o" "gcc" "src/topology/CMakeFiles/sbgp_topology.dir/graph_io.cpp.o.d"
  "/root/repo/src/topology/graph_stats.cpp" "src/topology/CMakeFiles/sbgp_topology.dir/graph_stats.cpp.o" "gcc" "src/topology/CMakeFiles/sbgp_topology.dir/graph_stats.cpp.o.d"
  "/root/repo/src/topology/topology_gen.cpp" "src/topology/CMakeFiles/sbgp_topology.dir/topology_gen.cpp.o" "gcc" "src/topology/CMakeFiles/sbgp_topology.dir/topology_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/sbgp_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
