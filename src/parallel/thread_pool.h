// Thread pool + parallel_for: the stand-in for the paper's 200-node
// DryadLINQ cluster (Appendix C.3). The decomposition is identical — map
// per-destination routing-tree computations across workers, reduce utilities.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace sbgp::par {

/// A fixed-size pool of worker threads executing queued tasks. Tasks must
/// not throw; exceptions escaping a task terminate the program (simulation
/// kernels are noexcept by construction).
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means `hardware_concurrency()` (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues `task` for asynchronous execution.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has completed.
  void wait_idle();

  /// Index of the calling pool worker in [0, size()), or `kNotAWorker` when
  /// called from a thread that is not a pool worker (e.g. the submitting
  /// thread). Lets parallel bodies address per-worker scratch slots without
  /// locking: distinct workers always see distinct indices.
  static constexpr std::size_t kNotAWorker = std::numeric_limits<std::size_t>::max();
  [[nodiscard]] static std::size_t current_worker_index();

 private:
  // Enqueue timestamp rides along so workers can report queue-wait latency
  // to the obs:: metrics registry; 0 when metrics are disabled (skips the
  // clock read on the submit path).
  struct Task {
    std::function<void()> fn;
    std::uint64_t enqueue_ns = 0;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<Task> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

/// Runs `body(i)` for every i in [begin, end) across the pool, blocking until
/// all iterations finish. Iterations are distributed in contiguous chunks to
/// preserve cache locality of per-destination arrays. `body` must be safe to
/// invoke concurrently for distinct indices.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

/// Chunked variant: `body(chunk_begin, chunk_end)` is invoked per chunk.
/// Useful when the body keeps per-chunk scratch state.
void parallel_for_chunked(
    ThreadPool& pool, std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body);

/// Dynamic variant: workers pull one index at a time from a shared atomic
/// counter instead of being handed precomputed chunks. Higher per-index
/// overhead, but no straggler effect when per-index cost varies by orders of
/// magnitude — used by the exp:: sweep scheduler, where one index is an
/// entire simulation job.
void parallel_for_dynamic(ThreadPool& pool, std::size_t begin, std::size_t end,
                          const std::function<void(std::size_t)>& body);

}  // namespace sbgp::par
