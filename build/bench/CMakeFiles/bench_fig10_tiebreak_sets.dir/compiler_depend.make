# Empty compiler generated dependencies file for bench_fig10_tiebreak_sets.
# This may be replaced when dependencies are built.
