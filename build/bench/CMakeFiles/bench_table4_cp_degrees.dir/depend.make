# Empty dependencies file for bench_table4_cp_degrees.
# This may be replaced when dependencies are built.
