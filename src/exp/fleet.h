// exp::fleet — the multi-process (multi-host-ready) sweep executor: the
// repo's real version of the paper's 200-node map/reduce fan-out
// (Appendix C.3). A *coordinator* expands a JobSpec grid into shard files
// in a shared run directory; *worker processes* — spawned by the
// coordinator via fork/exec, or pointed at the directory from another
// host — atomically claim shard leases (see lease.h), execute the shard's
// jobs through the ordinary SweepScheduler into a per-worker JSONL result
// store, and heartbeat while they work. The coordinator supervises:
//
//   * reaps leases whose heartbeat fell behind the TTL (worker died), which
//     returns the shard to the claimable pool;
//   * restarts dead worker processes, up to a budget;
//   * work-steals stragglers: when every shard is claimed but a live shard
//     still has several unfinished jobs and there is idle capacity, the
//     coordinator splits the remaining tail into a fresh shard file that an
//     idle worker can claim (duplicate executions are deterministic and
//     bitwise-reconciled at merge);
//   * finishes with an automatic merge of all per-worker stores into
//     `merged.jsonl`, deduping by (spec hash, job id) and verifying that
//     re-executed jobs produced byte-identical canonical rows.
//
// Kill-tolerance contract: SIGKILL any worker at any instant — mid-shard,
// mid-JSONL-line, before its first heartbeat — and the fleet still
// converges to a merged store that is job-for-job identical to a
// single-process run of the same spec. Partial JSONL lines are healed by
// the result-store loader; partially executed shards are resumed from
// whatever records any worker already persisted.
//
// Run-directory layout (everything under one directory, shareable over a
// network filesystem):
//
//   run/
//     spec.json            coordinator-published JobSpec (workers load it)
//     shards/shard-XXX.json   {"shard":id,"jobs":[ids]} — append-only pool
//     leases/shard-XXX.lease  claim + heartbeat (lease.h)
//     done/shard-XXX.json     durable completion marker per shard
//     workers/<id>.jsonl      per-worker append-only result store
//     STOP                 coordinator → workers: grid complete, drain
//     merged.jsonl         final deduped store (coordinator-written)
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <unordered_set>
#include <vector>

#include "exp/job_spec.h"
#include "exp/lease.h"
#include "exp/result_store.h"
#include "exp/scheduler.h"

namespace sbgp::exp {

/// Derived paths of a fleet run directory.
struct FleetPaths {
  std::string root;
  std::string spec;     ///< root/spec.json
  std::string shards;   ///< root/shards
  std::string leases;   ///< root/leases
  std::string done;     ///< root/done
  std::string workers;  ///< root/workers
  std::string stop;     ///< root/STOP
  std::string merged;   ///< root/merged.jsonl

  static FleetPaths at(const std::string& run_dir);

  [[nodiscard]] std::string shard_file(const std::string& shard_id) const;
  [[nodiscard]] std::string done_file(const std::string& shard_id) const;
  [[nodiscard]] std::string worker_store(const std::string& worker_id) const;
};

/// One unit of leased work: a named subset of the spec's job ids.
struct Shard {
  std::string id;
  std::vector<std::size_t> job_ids;

  [[nodiscard]] Json to_json() const;
  static Shard from_json(const Json& j);
};

/// Deterministic initial sharding: contiguous runs of `shard_size` job ids,
/// named shard-000, shard-001, … in expansion order.
[[nodiscard]] std::vector<Shard> make_shards(std::size_t num_jobs,
                                             std::size_t shard_size);

/// Durably writes a shard file (no-op if it already exists: shard files are
/// immutable once published).
void publish_shard(const FleetPaths& paths, const Shard& shard);

/// Every decodable shard file, sorted by id.
[[nodiscard]] std::vector<Shard> list_shards(const FleetPaths& paths);

/// Job ids of `shard` that have no record yet in `recorded` — what a thief
/// would need to run. Pure (unit-testable without a filesystem).
[[nodiscard]] std::vector<std::size_t> shard_remaining(
    const Shard& shard, const std::unordered_set<std::size_t>& recorded);

/// Splits the tail half (floor(n/2) jobs, so the victim keeps the ceil) of
/// `remaining` into a new shard named `<victim>-s<generation>`. Requires
/// remaining.size() >= 2. Pure.
[[nodiscard]] Shard split_shard(const Shard& victim,
                                const std::vector<std::size_t>& remaining,
                                int generation);

/// All per-worker store paths under `paths.workers`, sorted (deterministic
/// merge input order).
[[nodiscard]] std::vector<std::string> list_worker_stores(
    const FleetPaths& paths);

// ---------------------------------------------------------------------------
// Worker.

struct WorkerOptions {
  std::string run_dir;
  std::string worker_id;  ///< default: "w<pid>"
  double ttl_s = 10.0;    ///< heartbeat TTL (beats are written at ttl/4)
  double poll_s = 0.05;   ///< shard-scan interval while idle
  /// Give up after this long with no claimable work and no STOP marker
  /// (orphaned-worker guard); 0 = wait for STOP forever.
  double max_idle_s = 0.0;
  /// Per-job scheduler knobs, mirroring SweepOptions.
  double timeout_s = 0.0;
  int retries = 0;
  std::size_t inner_threads = 1;
  /// Injectable clock for lease timestamps (tests); default system clock.
  NowFn now;
  /// Pluggable job executor (tests / benches); default = real simulator.
  JobRunner runner;
  /// Called after each job completes *before* its record is appended to the
  /// store — the fault-injection hook (a test can tear its own store and
  /// _Exit to simulate SIGKILL mid-write).
  std::function<void(const JobRecord&, std::size_t jobs_done)> on_job;
  std::ostream* log = nullptr;  ///< progress lines; nullptr = silent
};

struct WorkerReport {
  std::size_t shards_done = 0;
  std::size_t jobs_executed = 0;
  std::size_t jobs_failed = 0;   ///< failed or timed out
  std::size_t jobs_resumed = 0;  ///< skipped because another store had them
  bool saw_stop = false;         ///< exited via STOP (vs. idle guard)
};

/// Runs the worker loop against `run_dir` until the STOP marker appears and
/// no claimable shard remains (or the idle guard fires). Blocks. Throws
/// std::runtime_error when the run directory never becomes usable.
WorkerReport run_fleet_worker(const WorkerOptions& options);

// ---------------------------------------------------------------------------
// Coordinator.

/// Spawns argv[0] with arguments `argv` and extra environment variables
/// `env` via fork/exec. Returns the child pid, or -1 on failure. Shared by
/// the CLI (spawning `sbgpsim worker …`) and the test/bench harnesses
/// (re-exec'ing themselves in worker mode).
pid_t spawn_process(const std::vector<std::string>& argv,
                    const std::vector<std::pair<std::string, std::string>>& env);

/// Supervision-loop snapshot handed to FleetOptions::on_poll (test hook:
/// SIGKILL a live worker at a chosen tick, observe progress, …).
struct FleetStatus {
  std::size_t tick = 0;
  std::vector<pid_t> live_pids;
  std::size_t recorded_jobs = 0;
  std::size_t total_jobs = 0;
  std::size_t active_leases = 0;
  std::size_t claimable_shards = 0;
};

struct FleetOptions {
  std::string run_dir;
  /// Worker processes to spawn; 0 = coordinate only (workers attach
  /// externally via `sbgpsim worker --run-dir`).
  std::size_t workers = 2;
  /// Jobs per initial shard; 0 = auto (≈4 shards per worker).
  std::size_t shard_size = 0;
  double ttl_s = 10.0;
  double poll_s = 0.05;
  /// Respawn budget for dead worker processes across the whole run.
  int max_restarts = 0;
  /// Split budget per victim shard (bounds duplicate work).
  int max_steals_per_shard = 2;
  /// Abort the run after this much wall time; 0 = none. Safety net so a
  /// wedged fleet cannot hang a harness forever.
  double max_wall_s = 0.0;
  /// Per-job scheduler knobs forwarded to spawned workers via FleetWorkerEnv
  /// only when using the CLI; embedded workers read WorkerOptions instead.
  double timeout_s = 0.0;
  int retries = 0;
  NowFn now;  ///< injectable clock (lease expiry decisions)
  /// Spawns worker `index` with the given id; returns pid or -1. Required
  /// when workers > 0 (the library cannot know which binary to exec).
  std::function<pid_t(std::size_t index, const std::string& worker_id)> spawn;
  std::function<void(const FleetStatus&)> on_poll;
  std::ostream* log = nullptr;
};

struct FleetReport {
  std::uint64_t spec_hash = 0;
  std::size_t total_jobs = 0;
  std::size_t shards = 0;  ///< initial shards (splits not included)
  std::size_t ok = 0;
  std::size_t failed = 0;
  std::size_t timed_out = 0;
  std::size_t missing = 0;  ///< jobs with no record at all (aborted runs)
  std::size_t leases_expired = 0;
  std::size_t shards_stolen = 0;
  std::size_t workers_spawned = 0;
  std::size_t worker_restarts = 0;
  /// Merge reconciliation: extra records folded away, re-executed "ok"
  /// pairs compared, and canonical-row mismatches among them (a mismatch
  /// means the sweep is not deterministic — always a bug).
  std::size_t duplicate_records = 0;
  std::size_t reexecuted_ok = 0;
  std::size_t reconcile_mismatches = 0;
  bool aborted = false;  ///< max_wall_s fired or all workers died
  double wall_s = 0.0;
  std::vector<JobRecord> records;  ///< merged, ascending job id
};

class FleetCoordinator {
 public:
  FleetCoordinator(FleetOptions options, JobSpec spec);

  /// Prepare + spawn + supervise + merge. Blocks until the grid is fully
  /// recorded (or the run aborts), then writes `merged.jsonl` and returns.
  FleetReport run();

  static void print_summary(const FleetReport& report, std::ostream& os);

 private:
  FleetOptions options_;
  JobSpec spec_;
};

}  // namespace sbgp::exp
