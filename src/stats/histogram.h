// Integer histogram / CDF helpers used for the paper's distribution figures
// (tiebreak-set sizes, Fig. 10; adoption by degree bucket, Fig. 6).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sbgp::stats {

/// Histogram over non-negative integer values with unit-width bins.
/// Values larger than any previously seen grow the bin vector.
class IntHistogram {
 public:
  /// Records one observation of `value`.
  void add(std::uint64_t value);
  /// Records `count` observations of `value`.
  void add(std::uint64_t value, std::uint64_t count);

  /// Total number of observations.
  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// Count in bin `value` (0 if never observed).
  [[nodiscard]] std::uint64_t count(std::uint64_t value) const;
  /// Largest observed value (0 if empty).
  [[nodiscard]] std::uint64_t max_value() const;
  /// Arithmetic mean of the observations (0 if empty).
  [[nodiscard]] double mean() const;
  /// Fraction of observations strictly greater than `value`.
  [[nodiscard]] double fraction_greater(std::uint64_t value) const;
  /// Empirical CCDF at `value`: P[X >= value].
  [[nodiscard]] double ccdf(std::uint64_t value) const;
  /// p-quantile (p in [0,1]) of the observations, 0 if empty.
  [[nodiscard]] std::uint64_t quantile(double p) const;

  /// All (value, count) pairs with non-zero count, ascending by value.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint64_t>> bins() const;

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t weighted_sum_ = 0;
};

/// Cumulative bucketing of samples by a key (e.g. ISP degree) used for
/// per-bucket adoption curves. Buckets are defined by inclusive upper bounds,
/// e.g. {10, 100, SIZE_MAX} buckets keys into [0,10], [11,100], [101,inf).
class BucketedCounter {
 public:
  explicit BucketedCounter(std::vector<std::uint64_t> upper_bounds);

  /// Returns the bucket index for `key`.
  [[nodiscard]] std::size_t bucket_of(std::uint64_t key) const;
  /// Number of buckets.
  [[nodiscard]] std::size_t buckets() const { return bounds_.size(); }
  /// Human-readable label for bucket `b`, e.g. "11-100".
  [[nodiscard]] std::string label(std::size_t b) const;

  /// Increments the denominator of `key`'s bucket.
  void add_member(std::uint64_t key);
  /// Increments the numerator of `key`'s bucket.
  void add_hit(std::uint64_t key);

  /// hits/members for bucket `b` (0 when empty).
  [[nodiscard]] double fraction(std::size_t b) const;
  [[nodiscard]] std::uint64_t members(std::size_t b) const { return members_[b]; }
  [[nodiscard]] std::uint64_t hits(std::size_t b) const { return hits_[b]; }

 private:
  std::vector<std::uint64_t> bounds_;
  std::vector<std::uint64_t> members_;
  std::vector<std::uint64_t> hits_;
};

/// Streaming summary of double-valued samples: count/mean/min/max and exact
/// median & quantiles (samples are retained; fine at simulation scales).
/// Every accessor is a pure function of the sample multiset — mean() sums
/// in sorted order, so results do not depend on insertion or call order.
class Summary {
 public:
  void add(double v);
  [[nodiscard]] std::size_t count() const { return values_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double median() const;
  /// p in [0,1]; nearest-rank quantile.
  [[nodiscard]] double quantile(double p) const;

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
  void ensure_sorted() const;
};

}  // namespace sbgp::stats
