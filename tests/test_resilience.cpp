#include <gtest/gtest.h>

#include "core/resilience.h"
#include "routing/rib.h"
#include "routing/routing_tree.h"
#include "test_util.h"

namespace sbgp::core {
namespace {

// A symmetric tug-of-war: probe x at the top, two equal-length customer
// chains down to victim v and attacker m (same graph as the proto attack
// harness, but exercised through the closed-form hijack RIB).
struct Tug {
  topo::AsGraph g;
  topo::AsId x, v, m, mid_v, mid_m;
};

Tug make_tug() {
  Tug t;
  t.x = t.g.add_as(1);
  t.mid_v = t.g.add_as(10);
  t.v = t.g.add_as(11);
  t.mid_m = t.g.add_as(20);
  t.m = t.g.add_as(21);
  t.g.add_customer_provider(t.x, t.mid_v);
  t.g.add_customer_provider(t.mid_v, t.v);
  t.g.add_customer_provider(t.x, t.mid_m);
  t.g.add_customer_provider(t.mid_m, t.m);
  t.g.finalize();
  return t;
}

TEST(HijackRib, TwoOriginRoutingSplitsTheGraph) {
  const auto t = make_tug();
  rt::RibComputer rc(t.g);
  const auto rib = rc.compute(t.v, t.m);
  EXPECT_EQ(rib.cls[t.v], rt::RouteClass::Self);
  EXPECT_EQ(rib.cls[t.m], rt::RouteClass::Self);
  // Each mid node has a length-1 customer route to its own origin.
  EXPECT_EQ(rib.len[t.mid_v], 1);
  EXPECT_EQ(rib.len[t.mid_m], 1);
  // The probe ties between the two branches.
  EXPECT_EQ(rib.tiebreak(t.x).size(), 2u);
}

TEST(HijackImpact, InsecureWorldFollowsTieBreak) {
  const auto t = make_tug();
  SimConfig cfg;
  cfg.threads = 1;
  std::vector<std::uint8_t> nobody(t.g.num_nodes(), 0);
  const double impact = hijack_impact(t.g, nobody, cfg, t.m, t.v);
  // mid_m is always fooled (1 hop to m vs 3 to v); mid_v never; the probe
  // goes by hash. So impact is 1/3 or 2/3.
  EXPECT_TRUE(std::abs(impact - 1.0 / 3.0) < 1e-9 ||
              std::abs(impact - 2.0 / 3.0) < 1e-9)
      << impact;
}

TEST(HijackImpact, FullDeploymentProtectsEqualLengthTies) {
  const auto t = make_tug();
  SimConfig cfg;
  cfg.threads = 1;
  std::vector<std::uint8_t> all(t.g.num_nodes(), 1);
  const double impact = hijack_impact(t.g, all, cfg, t.m, t.v);
  // The probe now prefers the fully secure true branch; only mid_m (with a
  // strictly shorter bogus route) is still fooled.
  EXPECT_NEAR(impact, 1.0 / 3.0, 1e-9);
}

TEST(HijackImpact, ShorterLiesBeatSecurityByDesign) {
  // Attacker adjacent to the probe: even full deployment cannot save the
  // probe (LP/SP rank above SecP, Section 2.2.2).
  topo::AsGraph g;
  const auto x = g.add_as(1);
  const auto mid = g.add_as(2);
  const auto v = g.add_as(3);
  const auto m = g.add_as(4);
  g.add_customer_provider(x, mid);
  g.add_customer_provider(mid, v);
  g.add_customer_provider(x, m);
  g.finalize();
  SimConfig cfg;
  cfg.threads = 1;
  std::vector<std::uint8_t> all(g.num_nodes(), 1);
  const double impact = hijack_impact(g, all, cfg, m, v);
  // x: bogus route length 1 vs true route length 2 -> fooled. mid: true
  // route length 1 -> safe. So exactly half the third parties are fooled.
  EXPECT_NEAR(impact, 0.5, 1e-9);
}

TEST(Resilience, DeploymentReducesMeanImpact) {
  const auto net = test::small_internet(300, 17);
  SimConfig cfg;
  cfg.threads = 1;
  par::ThreadPool pool(1);
  std::vector<std::uint8_t> nobody(net.graph.num_nodes(), 0);
  std::vector<std::uint8_t> everyone(net.graph.num_nodes(), 1);
  const auto before =
      measure_resilience(net.graph, nobody, cfg, 60, 99, pool);
  const auto after =
      measure_resilience(net.graph, everyone, cfg, 60, 99, pool);
  ASSERT_EQ(before.pairs, 60u);
  // The paper's baseline: an arbitrary attacker impacts a large fraction of
  // ASes on average in the insecure status quo.
  EXPECT_GT(before.mean_fooled(), 0.15);
  // Full deployment helps substantially...
  EXPECT_LT(after.mean_fooled(), before.mean_fooled() * 0.8);
  // ... but does NOT eliminate hijacks: shorter lies still win, which is
  // exactly the paper's "S*BGP and BGP will coexist / careful engineering
  // required" warning (Section 1.4, insight 5).
  EXPECT_GT(after.mean_fooled(), 0.0);
}

TEST(Resilience, SameSeedIsDeterministic) {
  const auto net = test::small_internet(200, 5);
  SimConfig cfg;
  cfg.threads = 1;
  par::ThreadPool pool(2);
  std::vector<std::uint8_t> nobody(net.graph.num_nodes(), 0);
  const auto a = measure_resilience(net.graph, nobody, cfg, 25, 7, pool);
  const auto b = measure_resilience(net.graph, nobody, cfg, 25, 7, pool);
  EXPECT_DOUBLE_EQ(a.mean_fooled(), b.mean_fooled());
}

TEST(HijackRib, NormalModeHasNoOriginArray) {
  const auto t = make_tug();
  rt::RibComputer rc(t.g);
  rt::TreeComputer tc(t.g);
  rt::TieBreakPolicy tb;
  rt::RoutingTree tree;
  std::vector<std::uint8_t> nobody(t.g.num_nodes(), 0);
  rt::SecurityView view;
  view.graph = &t.g;
  view.base = nobody.data();
  // Hijack mode fills origin[]; normal mode clears it again.
  const auto rib_h = rc.compute(t.v, t.m);
  tc.compute(rib_h, view, tb, tree);
  EXPECT_FALSE(tree.origin.empty());
  const auto rib_n = rc.compute(t.v);
  tc.compute(rib_n, view, tb, tree);
  EXPECT_TRUE(tree.origin.empty());
}

}  // namespace
}  // namespace sbgp::core
