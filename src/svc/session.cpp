#include "svc/session.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/build_info.h"
#include "obs/metrics.h"

namespace sbgp::svc {

using core::StateEvaluation;
using exp::Json;
using topo::AsId;

namespace {

Json error_reply(const std::string& op, std::string message) {
  Json j = Json::object();
  j.set("ok", Json::boolean(false));
  if (!op.empty()) j.set("op", Json::string(op));
  j.set("error", Json::string(std::move(message)));
  return j;
}

Json ok_reply(const std::string& op) {
  Json j = Json::object();
  j.set("ok", Json::boolean(true));
  j.set("op", Json::string(op));
  return j;
}

/// Required integral field, strict: absent or mistyped throws (caught into
/// an error reply by handle()).
std::uint64_t require_u64(const Json& req, const char* key) {
  const Json* v = req.find(key);
  if (v == nullptr) {
    throw std::invalid_argument(std::string("missing field \"") + key + "\"");
  }
  return v->as_u64();
}

}  // namespace

Session::Session(std::unique_ptr<topo::AsGraph> graph,
                 core::DeploymentState state, SessionConfig cfg)
    : graph_(std::move(graph)), state_(std::move(state)), cfg_(std::move(cfg)) {
  if (graph_ == nullptr || !graph_->finalized()) {
    throw std::invalid_argument("svc::Session: graph must be finalized");
  }
  if (state_.flags().size() != graph_->num_nodes()) {
    throw std::invalid_argument(
        "svc::Session: deployment state size != graph size");
  }
  if (cfg_.check_topo_delta) cfg_.sim.check_incremental = true;
  sim_ = std::make_unique<core::DeploymentSimulator>(*graph_, cfg_.sim);
}

const StateEvaluation& Session::ensure_eval() {
  if (eval_stale_ || eval_cache_ == nullptr) {
    eval_cache_ = &sim_->evaluate_state(state_);
    eval_stale_ = false;
  }
  return *eval_cache_;
}

AsId Session::resolve_asn(std::uint64_t asn) const {
  if (asn > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument("AS number out of range");
  }
  const AsId id = graph_->find_asn(static_cast<std::uint32_t>(asn));
  if (id == topo::kNoAs) {
    throw std::invalid_argument("unknown AS " + std::to_string(asn));
  }
  return id;
}

Json Session::handle(const Json& request) {
  ++requests_;
  std::string op;
  try {
    const Json* op_field = request.find("op");
    if (op_field == nullptr) return error_reply("", "missing field \"op\"");
    op = op_field->as_string();
    if (op == "whatif_adopt") return handle_whatif(request, /*adopt=*/true);
    if (op == "whatif_abandon") return handle_whatif(request, /*adopt=*/false);
    if (op == "topk_next_adopters") return handle_topk(request);
    if (op == "adopt") return handle_set_secure(request, /*secure=*/true);
    if (op == "abandon") return handle_set_secure(request, /*secure=*/false);
    if (op == "mutate_topology") return handle_mutate(request);
    if (op == "query_state") return handle_query_state();
    if (op == "metrics") return handle_metrics();
    if (op == "shutdown") {
      shutdown_ = true;
      return ok_reply(op);
    }
    return error_reply(op, "unknown op \"" + op + "\"");
  } catch (const core::IncrementalDivergence&) {
    throw;  // engine bug: stop the service (exit 3), never an error reply
  } catch (const std::exception& e) {
    return error_reply(op, e.what());
  }
}

Json Session::handle_whatif(const Json& req, bool adopt) {
  const AsId id = resolve_asn(require_u64(req, "asn"));
  const bool secure = state_.is_secure(id);
  if (adopt && secure) {
    throw std::invalid_argument("AS " + std::to_string(graph_->asn(id)) +
                                " is already secure");
  }
  if (!adopt && !secure) {
    throw std::invalid_argument("AS " + std::to_string(graph_->asn(id)) +
                                " is not secure");
  }
  if (graph_->is_stub(id)) {
    throw std::invalid_argument(
        "AS " + std::to_string(graph_->asn(id)) +
        " is a stub: stubs deploy simplex S*BGP via their providers");
  }
  const StateEvaluation& eval = ensure_eval();
  const double utility = eval.utility[id];
  const double projected_raw =
      adopt ? eval.projected_on[id] : eval.projected_off[id];
  // NaN marks "flip provably cannot change any routing tree" (projection
  // pruning) — the projected utility equals the current one exactly. In the
  // outgoing model every abandon lands here (Thm 6.2: turning off never
  // helps, the engine skips the evaluation outright).
  const bool evaluated = !std::isnan(projected_raw);
  const double projected = evaluated ? projected_raw : utility;

  Json j = ok_reply(adopt ? "whatif_adopt" : "whatif_abandon");
  j.set("asn", Json::number(static_cast<std::uint64_t>(graph_->asn(id))));
  j.set("id", Json::number(static_cast<std::uint64_t>(id)));
  j.set("class", Json::string(topo::to_string(graph_->cls(id))));
  j.set("secure", Json::boolean(secure));
  j.set("utility", Json::number(utility));
  j.set("projected", Json::number(projected));
  j.set("delta", Json::number(projected - utility));
  j.set("evaluated", Json::boolean(evaluated));
  j.set("would_flip", Json::boolean(
                          (adopt ? eval.would_flip_on[id]
                                 : eval.would_flip_off[id]) != 0));
  j.set("theta", Json::number(cfg_.sim.per_node_theta != nullptr
                                  ? (*cfg_.sim.per_node_theta)[id]
                                  : cfg_.sim.theta));
  return j;
}

Json Session::handle_topk(const Json& req) {
  std::uint64_t k = 10;
  if (const Json* kv = req.find("k"); kv != nullptr) k = kv->as_u64();
  const StateEvaluation& eval = ensure_eval();

  struct Candidate {
    AsId id;
    double delta;
  };
  std::vector<Candidate> cands;
  const std::size_t n = graph_->num_nodes();
  for (AsId i = 0; i < n; ++i) {
    if (state_.is_secure(i) || !graph_->is_isp(i)) continue;
    if (cfg_.sim.frozen != nullptr && (*cfg_.sim.frozen)[i] != 0) continue;
    const double p = eval.projected_on[i];
    cands.push_back({i, std::isnan(p) ? 0.0 : p - eval.utility[i]});
  }
  std::sort(cands.begin(), cands.end(), [](const Candidate& x, const Candidate& y) {
    if (x.delta != y.delta) return x.delta > y.delta;
    return x.id < y.id;
  });
  if (cands.size() > k) cands.resize(k);

  Json arr = Json::array();
  for (const Candidate& c : cands) {
    Json e = Json::object();
    e.set("asn", Json::number(static_cast<std::uint64_t>(graph_->asn(c.id))));
    e.set("id", Json::number(static_cast<std::uint64_t>(c.id)));
    e.set("utility", Json::number(eval.utility[c.id]));
    e.set("delta", Json::number(c.delta));
    e.set("would_flip", Json::boolean(eval.would_flip_on[c.id] != 0));
    arr.push(std::move(e));
  }
  Json j = ok_reply("topk_next_adopters");
  j.set("k", Json::number(k));
  j.set("candidates", Json::number(static_cast<std::uint64_t>(cands.size())));
  j.set("adopters", std::move(arr));
  return j;
}

Json Session::handle_set_secure(const Json& req, bool secure) {
  const AsId id = resolve_asn(require_u64(req, "asn"));
  if (state_.is_secure(id) == secure) {
    throw std::invalid_argument("AS " + std::to_string(graph_->asn(id)) +
                                (secure ? " is already secure"
                                        : " is not secure"));
  }
  std::size_t stubs_secured = 0;
  if (secure && graph_->is_isp(id)) {
    // Section 2.3: a newly secure ISP simplex-upgrades its stub customers.
    const std::size_t before = state_.num_secure();
    state_.secure_isp_with_stubs(*graph_, id);
    stubs_secured = state_.num_secure() - before - 1;
  } else {
    state_.set_secure(id, secure);
  }
  eval_stale_ = true;
  const StateEvaluation& eval = ensure_eval();  // keep what-ifs O(1)

  Json j = ok_reply(secure ? "adopt" : "abandon");
  j.set("asn", Json::number(static_cast<std::uint64_t>(graph_->asn(id))));
  j.set("id", Json::number(static_cast<std::uint64_t>(id)));
  j.set("stubs_secured", Json::number(static_cast<std::uint64_t>(stubs_secured)));
  j.set("secure_ases",
        Json::number(static_cast<std::uint64_t>(state_.num_secure())));
  j.set("eval_recomputed", Json::number(static_cast<std::uint64_t>(
                               eval.stats.recomputed_destinations)));
  return j;
}

Json Session::handle_mutate(const Json& req) {
  const Json* ops = req.find("ops");
  if (ops == nullptr) throw std::invalid_argument("missing field \"ops\"");

  // Ops are resolved AND applied one at a time: a later op may refer to an
  // AS an earlier add_stub introduced, so ASN resolution must see each
  // predecessor's effect. On a mid-batch error the ops already applied stay
  // applied (same contract as AsGraph::apply_delta); the error reply carries
  // "ops_applied" so the client knows where the batch stopped.
  core::DeploymentSimulator::TopoApplyResult total;
  std::size_t applied = 0;
  std::string batch_error;
  for (const Json& item : ops->items()) {
    topo::TopoOp op;
    try {
      const Json* action_field = item.find("action");
      if (action_field == nullptr) {
        throw std::invalid_argument("mutate op: missing field \"action\"");
      }
      const std::string& action = action_field->as_string();
      if (action == "add_edge") {
        const Json* type = item.find("type");
        const std::string& t =
            type != nullptr ? type->as_string() : std::string("cp");
        if (t == "cp") {
          op.kind = topo::TopoOp::Kind::AddCustomerProvider;
          op.a = resolve_asn(require_u64(item, "provider"));
          op.b = resolve_asn(require_u64(item, "customer"));
        } else if (t == "peer") {
          op.kind = topo::TopoOp::Kind::AddPeer;
          op.a = resolve_asn(require_u64(item, "a"));
          op.b = resolve_asn(require_u64(item, "b"));
        } else {
          throw std::invalid_argument("add_edge: unknown type \"" + t + "\"");
        }
      } else if (action == "remove_edge") {
        op.kind = topo::TopoOp::Kind::RemoveEdge;
        op.a = resolve_asn(require_u64(item, "a"));
        op.b = resolve_asn(require_u64(item, "b"));
      } else if (action == "set_relationship") {
        op.kind = topo::TopoOp::Kind::SetRelationship;
        op.a = resolve_asn(require_u64(item, "a"));
        op.b = resolve_asn(require_u64(item, "b"));
        const Json* rel = item.find("rel");
        if (rel == nullptr) {
          throw std::invalid_argument("set_relationship: missing \"rel\"");
        }
        const std::string& r = rel->as_string();
        if (r == "customer") {
          op.rel = topo::Link::Customer;
        } else if (r == "peer") {
          op.rel = topo::Link::Peer;
        } else if (r == "provider") {
          op.rel = topo::Link::Provider;
        } else {
          throw std::invalid_argument(
              "set_relationship: rel must be customer|peer|provider");
        }
      } else if (action == "add_stub") {
        op.kind = topo::TopoOp::Kind::AddStub;
        const std::uint64_t asn = require_u64(item, "asn");
        if (asn > std::numeric_limits<std::uint32_t>::max()) {
          throw std::invalid_argument("add_stub: AS number out of range");
        }
        op.asn = static_cast<std::uint32_t>(asn);
        const Json* provs = item.find("providers");
        if (provs == nullptr) {
          throw std::invalid_argument("add_stub: missing \"providers\"");
        }
        for (const Json& p : provs->items()) {
          op.providers.push_back(resolve_asn(p.as_u64()));
        }
      } else {
        throw std::invalid_argument("mutate op: unknown action \"" + action +
                                    "\"");
      }

      topo::TopoDelta delta;
      delta.ops.push_back(std::move(op));
      core::DeploymentSimulator::TopoApplyResult r =
          sim_->apply_topology_delta(*graph_, delta, cfg_.topo_row_budget);
      total.patch.merge(r.patch);
      total.ribs_invalidated += r.ribs_invalidated;
      total.bundles_invalidated += r.bundles_invalidated;
      total.full_invalidation = total.full_invalidation || r.full_invalidation;
      // New stubs enter insecure; `adopt` them (or their providers)
      // explicitly if wanted.
      state_.flags().resize(graph_->num_nodes(), 0);
      ++applied;
    } catch (const core::IncrementalDivergence&) {
      throw;
    } catch (const std::exception& e) {
      batch_error = e.what();
      break;
    }
  }

  eval_stale_ = eval_stale_ || applied > 0;
  std::size_t recomputed = 0;
  if (applied > 0) {
    recomputed = ensure_eval().stats.recomputed_destinations;
  }

  Json j = batch_error.empty() ? ok_reply("mutate_topology")
                               : error_reply("mutate_topology", batch_error);
  j.set("ops_applied", Json::number(static_cast<std::uint64_t>(applied)));
  j.set("rows_touched",
        Json::number(static_cast<std::uint64_t>(total.patch.rows_touched)));
  j.set("full_rebuild", Json::boolean(total.patch.full_rebuild));
  j.set("nodes_touched",
        Json::number(static_cast<std::uint64_t>(total.patch.touched.size())));
  Json class_changed = Json::array();
  for (const AsId c : total.patch.class_changed) {
    class_changed.push(
        Json::number(static_cast<std::uint64_t>(graph_->asn(c))));
  }
  j.set("class_changed", std::move(class_changed));
  Json new_nodes = Json::array();
  for (const AsId nn : total.patch.new_nodes) {
    Json e = Json::object();
    e.set("asn", Json::number(static_cast<std::uint64_t>(graph_->asn(nn))));
    e.set("id", Json::number(static_cast<std::uint64_t>(nn)));
    new_nodes.push(std::move(e));
  }
  j.set("new_nodes", std::move(new_nodes));
  j.set("ribs_invalidated",
        Json::number(static_cast<std::uint64_t>(total.ribs_invalidated)));
  j.set("bundles_invalidated",
        Json::number(static_cast<std::uint64_t>(total.bundles_invalidated)));
  j.set("full_invalidation", Json::boolean(total.full_invalidation));
  j.set("eval_recomputed",
        Json::number(static_cast<std::uint64_t>(recomputed)));
  return j;
}

Json Session::handle_query_state() {
  Json j = ok_reply("query_state");
  j.set("nodes", Json::number(static_cast<std::uint64_t>(graph_->num_nodes())));
  j.set("cp_edges", Json::number(static_cast<std::uint64_t>(
                        graph_->num_customer_provider_edges())));
  j.set("peer_edges",
        Json::number(static_cast<std::uint64_t>(graph_->num_peer_edges())));
  j.set("stubs", Json::number(static_cast<std::uint64_t>(graph_->num_stubs())));
  j.set("isps", Json::number(static_cast<std::uint64_t>(graph_->num_isps())));
  j.set("content_providers", Json::number(static_cast<std::uint64_t>(
                                 graph_->num_content_providers())));
  j.set("secure_ases",
        Json::number(static_cast<std::uint64_t>(state_.num_secure())));
  j.set("secure_isps", Json::number(static_cast<std::uint64_t>(
                           state_.num_secure_of_class(*graph_, topo::AsClass::Isp))));
  j.set("model", Json::string(core::to_string(cfg_.sim.model)));
  j.set("theta", Json::number(cfg_.sim.theta));
  j.set("check_topo_delta", Json::boolean(cfg_.check_topo_delta));
  j.set("version", Json::string(obs::build_info_line()));
  j.set("requests", Json::number(requests_));
  return j;
}

Json Session::handle_metrics() {
  Json j = ok_reply("metrics");
  j.set("version", Json::string(obs::git_describe()));
  j.set("registry", Json::parse(obs::Registry::global().to_json_string()));
  return j;
}

std::string Session::handle_line(const std::string& line) {
  static obs::Counter& requests_ctr =
      obs::Registry::global().counter("svc.requests");
  static obs::Counter& errors_ctr =
      obs::Registry::global().counter("svc.errors");

  const std::uint64_t t0 = obs::now_ns();
  Json reply;
  std::string op = "?";
  try {
    const Json request = Json::parse(line);
    if (const Json* op_field = request.find("op");
        op_field != nullptr && op_field->type() == Json::Type::String) {
      op = op_field->as_string();
    }
    reply = handle(request);
  } catch (const core::IncrementalDivergence&) {
    throw;
  } catch (const exp::JsonError& e) {
    ++requests_;
    reply = error_reply("", std::string("parse error: ") + e.what());
  }
  const std::uint64_t dt = obs::now_ns() - t0;

  requests_ctr.add(1);
  const Json* ok = reply.find("ok");
  const bool is_ok = ok != nullptr && ok->type() == Json::Type::Bool && ok->as_bool();
  if (!is_ok) errors_ctr.add(1);
  // Known op names only: bounded histogram cardinality even under fuzzing.
  static const char* const kOps[] = {
      "whatif_adopt", "whatif_abandon", "topk_next_adopters", "adopt",
      "abandon",      "mutate_topology", "query_state",        "metrics",
      "shutdown"};
  const char* bucket = "other";
  for (const char* known : kOps) {
    if (op == known) {
      bucket = known;
      break;
    }
  }
  obs::Registry::global()
      .histogram(std::string("svc.latency.") + bucket)
      .record_ns(dt);

  if (cfg_.telemetry != nullptr) {
    Json rec = Json::object();
    rec.set("type", Json::string("svc_request"));
    rec.set("op", Json::string(bucket == std::string("other") ? op : bucket));
    rec.set("ok", Json::boolean(is_ok));
    rec.set("micros", Json::number(static_cast<double>(dt) / 1000.0));
    cfg_.telemetry->append(rec);
  }
  return reply.dump();
}

}  // namespace sbgp::svc
