# Empty dependencies file for sbgp_tests.
# This may be replaced when dependencies are built.
