// The sweep scheduler: coarse-grained outer parallelism over whole
// simulation jobs (the repo-local analogue of the paper's 200-node
// DryadLINQ fan-out). Jobs are pulled dynamically off a shared counter so
// one long job never stalls a worker's queue; each job gets a cooperative
// deadline, bounded retries, and full failure isolation — an exception or
// timeout is recorded as a failed/timeout JobRecord and the sweep carries
// on. Completed jobs are appended to a ResultStore as they finish, and a
// rerun of the same spec skips everything already recorded "ok"
// (checkpoint/resume).
//
// Two-level thread budgeting: with W outer workers and a spec that asks for
// `threads = 0` (auto), each job's simulator gets max(1, hardware/W) inner
// threads, so outer x inner never oversubscribes the machine. A spec with
// `threads = 1` (the default) keeps every job single-threaded inside, which
// additionally makes results bit-exact no matter how the sweep is sharded.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <vector>

#include "exp/job_spec.h"
#include "exp/result_store.h"
#include "exp/telemetry.h"
#include "stats/histogram.h"

namespace sbgp::exp {

struct SweepOptions {
  /// Outer workers (concurrent jobs); 0 = hardware_concurrency.
  std::size_t workers = 1;
  /// Per-job deadline in seconds; 0 = none. Enforced cooperatively at round
  /// granularity via SimConfig::stop_requested.
  double timeout_s = 0.0;
  /// Extra attempts after a failed job (timeouts are not retried — they are
  /// deterministic). 0 = fail on first error.
  int retries = 0;
  /// Skip jobs whose latest store record is "ok" (checkpoint/resume).
  bool resume = true;
  /// When set, only the listed job ids of the expanded spec are considered
  /// (a leased fleet shard); ids keep their grid meaning, so spec-hash +
  /// job-id keyed records from different shards merge seamlessly. Unknown
  /// ids are ignored. nullopt = the whole grid.
  std::optional<std::vector<std::size_t>> job_subset;
  /// Emit a progress line to `progress` every this-many seconds; 0 = only
  /// the final summary. Lines go to the stream below (nullptr = silent).
  double progress_interval_s = 5.0;
  std::ostream* progress = nullptr;
  /// Optional telemetry sink: every executed job is appended as a
  /// {"type":"job"} JSONL record the moment it completes (same cadence as
  /// the result store). Not owned; must outlive run().
  TelemetryLog* telemetry = nullptr;
};

/// What the sweep did, plus the merged per-job records (latest record for
/// every job of the spec, ordered by job id — previously-completed jobs
/// included, so callers can render full grids after a resumed run).
struct SweepReport {
  std::uint64_t spec_hash = 0;
  std::size_t total_jobs = 0;
  std::size_t executed = 0;  ///< run in this invocation (any status)
  std::size_t skipped = 0;   ///< resumed from the store
  std::size_t ok = 0;        ///< executed with status "ok"
  std::size_t failed = 0;
  std::size_t timed_out = 0;
  std::size_t retried = 0;  ///< extra attempts consumed
  double wall_s = 0.0;
  double jobs_per_s = 0.0;          ///< executed / wall
  stats::Summary job_wall_ms;       ///< per-executed-job wall time
  std::vector<JobRecord> records;   ///< merged, ascending job id
};

/// Pluggable job executor, mainly for tests (failure/timeout injection).
/// Receives the job and a stop predicate (never null); returns the record
/// (timing fields are overwritten by the scheduler). May throw — that is
/// recorded as a failure.
using JobRunner =
    std::function<JobRecord(const Job&, const std::function<bool()>& stop)>;

class SweepScheduler {
 public:
  explicit SweepScheduler(SweepOptions options);

  /// Runs `spec`, appending records to `store` (nullptr = in-memory only,
  /// no checkpointing). `runner` defaults to the real simulator runner with
  /// a process-wide graph cache per call.
  SweepReport run(const JobSpec& spec, ResultStore* store,
                  const JobRunner& runner = nullptr);

  /// Writes a human-readable summary of `report` to `os`.
  static void print_summary(const SweepReport& report, std::ostream& os);

 private:
  SweepOptions options_;
};

}  // namespace sbgp::exp
