# Empty compiler generated dependencies file for sbgp_gadgets.
# This may be replaced when dependencies are built.
