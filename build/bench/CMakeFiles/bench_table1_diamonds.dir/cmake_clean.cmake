file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_diamonds.dir/bench_table1_diamonds.cpp.o"
  "CMakeFiles/bench_table1_diamonds.dir/bench_table1_diamonds.cpp.o.d"
  "bench_table1_diamonds"
  "bench_table1_diamonds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_diamonds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
