#!/usr/bin/env python3
"""Compare a fresh bench JSON against the committed baseline.

Part of the tools/run_bench.sh commit flow: a refreshed BENCH_*.json is only
moved over the committed baseline after (a) its context passes the honesty
guard (Release build, no CPU frequency scaling) and (b) no benchmark has
regressed beyond tolerance against the baseline's numbers.

Stdlib only. Handles both benchmark-entry shapes that live in this repo:

  google-benchmark:  {"name": ..., "real_time": T, "time_unit": "ns", ...}
  bench::JsonOut:    {"name": ..., "value": V, "unit": "ns" | "ms" | "s" |
                      "x" | "%" | ...}

Direction is unit-aware: time-like units (ns/us/ms/s) regress when they go
UP; rate-like units ("x" speedups, "%" hit rates, items_per_second) regress
when they go DOWN. Unknown units are compared as time-like (the conservative
reading for a perf log).

Exit codes: 0 clean (including warn-only), 1 hard regression (> --fail-pct),
2 usage/context error (missing files, debug build, scaling enabled).
"""

import argparse
import json
import sys

TIME_UNITS = {"ns", "us", "ms", "s"}
HIGHER_IS_BETTER_UNITS = {"x", "%", "items_per_second", "ops"}


def fail_usage(msg):
    print(f"check_bench_regress: {msg}", file=sys.stderr)
    sys.exit(2)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except FileNotFoundError:
        fail_usage(f"{path}: no such file")
    except json.JSONDecodeError as e:
        fail_usage(f"{path}: not valid JSON ({e})")


def check_context_honesty(doc, path):
    """Refuse debug-built or frequency-scaled numbers (satellite contract)."""
    ctx = doc.get("context", {})
    build = str(ctx.get("library_build_type", "")).lower()
    if "debug" in build:
        fail_usage(
            f"{path}: context reports library_build_type={build!r}; "
            "debug-built numbers are not comparable — rebuild Release"
        )
    if ctx.get("cpu_scaling_enabled") is True:
        fail_usage(
            f"{path}: context reports cpu_scaling_enabled=true; pin the "
            "governor to 'performance' before recording benchmarks"
        )


def entries(doc):
    """-> {name: (value, unit)} for either benchmark-entry shape."""
    out = {}
    for b in doc.get("benchmarks", []):
        name = b.get("name")
        if name is None:
            continue
        if b.get("run_type") == "aggregate":
            continue  # gbench mean/median/stddev rows: not point estimates
        if "value" in b:
            out[name] = (float(b["value"]), str(b.get("unit", "")))
        elif "real_time" in b:
            out[name] = (float(b["real_time"]), str(b.get("time_unit", "ns")))
    return out


def higher_is_better(unit):
    if unit in HIGHER_IS_BETTER_UNITS:
        return True
    if unit in TIME_UNITS:
        return False
    return False  # unknown: treat as time-like (conservative)


def main():
    ap = argparse.ArgumentParser(
        description="fail on bench regressions vs a committed baseline"
    )
    ap.add_argument("baseline", help="committed BENCH_*.json")
    ap.add_argument("fresh", help="freshly generated bench JSON")
    ap.add_argument(
        "--warn-pct",
        type=float,
        default=10.0,
        help="warn when a benchmark regresses more than this (default 10)",
    )
    ap.add_argument(
        "--fail-pct",
        type=float,
        default=25.0,
        help="fail when a benchmark regresses more than this (default 25)",
    )
    ap.add_argument(
        "--skip-context-check",
        action="store_true",
        help="do not refuse debug/scaled contexts (for ad-hoc comparisons)",
    )
    args = ap.parse_args()
    if args.fail_pct < args.warn_pct:
        fail_usage("--fail-pct must be >= --warn-pct")

    base_doc = load(args.baseline)
    fresh_doc = load(args.fresh)
    if not args.skip_context_check:
        check_context_honesty(fresh_doc, args.fresh)

    base = entries(base_doc)
    fresh = entries(fresh_doc)
    if not fresh:
        fail_usage(f"{args.fresh}: no benchmark entries")

    worst = 0.0
    failures, warnings, compared = [], [], 0
    for name, (fv, unit) in sorted(fresh.items()):
        if name not in base:
            print(f"  new       {name}: {fv:g} {unit} (no baseline)")
            continue
        bv, bunit = base[name]
        if bunit and unit and bunit != unit:
            print(
                f"  skipped   {name}: unit changed {bunit!r} -> {unit!r} "
                "(harness transition; not comparable)"
            )
            continue
        compared += 1
        if bv == 0:
            continue
        if higher_is_better(unit):
            regress_pct = (bv - fv) / bv * 100.0
        else:
            regress_pct = (fv - bv) / bv * 100.0
        worst = max(worst, regress_pct)
        tag = "ok"
        if regress_pct > args.fail_pct:
            tag = "FAIL"
            failures.append(name)
        elif regress_pct > args.warn_pct:
            tag = "WARN"
            warnings.append(name)
        if tag != "ok" or regress_pct < -args.warn_pct:
            direction = "regressed" if regress_pct > 0 else "improved"
            print(
                f"  {tag:<9} {name}: {bv:g} -> {fv:g} {unit} "
                f"({abs(regress_pct):.1f}% {direction})"
            )

    print(
        f"check_bench_regress: {compared} compared, {len(warnings)} "
        f"warning(s), {len(failures)} failure(s) "
        f"(worst regression {worst:.1f}%)"
    )
    if failures:
        print(
            "check_bench_regress: hard regression(s): " + ", ".join(failures),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
