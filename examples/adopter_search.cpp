// Early-adopter planning tool: given a topology (generated, or loaded from a
// CAIDA-format as-rel file with --graph), compare adopter-selection
// strategies at a given budget k and theta — the practical question a
// government or industry group would ask (Section 6).
//
//   ./adopter_search [--nodes N] [--seed S] [--k K] [--theta F] [--graph file]
#include <cstring>
#include <iostream>
#include <string>

#include "core/early_adopters.h"
#include "core/simulator.h"
#include "stats/table.h"
#include "topology/graph_io.h"
#include "topology/topology_gen.h"

int main(int argc, char** argv) {
  using namespace sbgp;
  std::uint32_t nodes = 1200;
  std::uint64_t seed = 42;
  std::size_t k = 5;
  double theta = 0.05;
  std::string graph_file;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (!std::strcmp(argv[i], "--nodes")) nodes = static_cast<std::uint32_t>(std::atoi(argv[i + 1]));
    else if (!std::strcmp(argv[i], "--seed")) seed = static_cast<std::uint64_t>(std::atoll(argv[i + 1]));
    else if (!std::strcmp(argv[i], "--k")) k = static_cast<std::size_t>(std::atoi(argv[i + 1]));
    else if (!std::strcmp(argv[i], "--theta")) theta = std::atof(argv[i + 1]);
    else if (!std::strcmp(argv[i], "--graph")) graph_file = argv[i + 1];
  }

  topo::Internet net;
  if (!graph_file.empty()) {
    net.graph = topo::read_as_rel_file(graph_file);
    for (topo::AsId n = 0; n < net.graph.num_nodes(); ++n) {
      if (net.graph.is_content_provider(n)) net.cps.push_back(n);
    }
    net.tier1 = net.graph.tier_ones();
    std::cout << "loaded " << graph_file << ": " << net.graph.num_nodes()
              << " ASes\n";
  } else {
    topo::InternetConfig cfg;
    cfg.total_ases = nodes;
    cfg.seed = seed;
    net = topo::generate_internet(cfg);
  }
  topo::apply_traffic_model(net.graph, net.cps, 0.10);

  core::SimConfig cfg;
  cfg.model = core::UtilityModel::Outgoing;
  cfg.theta = theta;

  std::cout << "adopter budget k = " << k << ", theta = " << theta * 100
            << "%\n\n";
  stats::Table t({"strategy", "adopters", "ASes secure at termination",
                  "% of ASes"});
  auto row = [&](const std::string& name, const std::vector<topo::AsId>& adopters) {
    const auto reach = core::deployment_reach(net.graph, adopters, cfg);
    t.begin_row();
    t.add(name);
    t.add(adopters.size());
    t.add(reach);
    t.add_percent(static_cast<double>(reach) /
                      static_cast<double>(net.graph.num_nodes()),
                  1);
  };
  row("none", {});
  row("top-k degree ISPs",
      core::select_adopters(net, core::AdopterStrategy::TopDegreeIsps, k, seed));
  if (!net.cps.empty()) {
    row("content providers",
        core::select_adopters(net, core::AdopterStrategy::ContentProviders, k, seed));
    row("CPs + top-k ISPs",
        core::select_adopters(net, core::AdopterStrategy::CpsPlusTopIsps, k, seed));
  }
  row("random k ISPs",
      core::select_adopters(net, core::AdopterStrategy::RandomIsps, k, seed));
  // Greedy over a candidate pool of the top 2k ISPs (full greedy over every
  // ISP is the NP-hard problem of Theorem 6.1; the pool keeps it tractable).
  row("greedy over top-2k pool",
      core::greedy_adopters(net.graph, topo::top_degree_isps(net.graph, 2 * k), k,
                            cfg));
  t.print(std::cout);
  std::cout << "\nfinding the optimal set is NP-hard, even to approximate "
               "(Theorem 6.1); at low theta a handful of well-connected "
               "adopters suffices (Section 6.9).\n";
  return 0;
}
