// Scheduler-overhead bench for the exp:: orchestration subsystem: drives a
// multi-hundred-job grid of tiny simulations through the sweep scheduler at
// increasing outer parallelism and reports wall time, throughput, speedup
// over the serial run, and the orchestration overhead (wall time minus the
// ideal sum-of-job-times / workers). Also cross-checks that every sharding
// produces the identical merged result set — the scheduler's core
// determinism guarantee.
//
//   bench_exp_scheduler_overhead [--nodes N] [--seed S] [--x F] [--quiet]
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "exp/job_spec.h"
#include "exp/scheduler.h"
#include "stats/table.h"

namespace {

using namespace sbgp;

std::vector<std::string> canonical_rows(const exp::SweepReport& report) {
  std::vector<std::string> rows;
  rows.reserve(report.records.size());
  for (const auto& r : report.records) rows.push_back(r.canonical_row());
  std::sort(rows.begin(), rows.end());
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv, /*default_nodes=*/150);

  // 2 graphs x 4 adopter sets x 6 seeds x 5 thetas = 240 jobs.
  exp::JobSpec spec;
  spec.name = "scheduler-overhead";
  spec.graphs.clear();
  for (std::uint64_t gseed : {opt.seed, opt.seed + 1}) {
    exp::GraphSpec g;
    g.nodes = opt.nodes;
    g.seed = gseed;
    g.x = opt.x;
    spec.graphs.push_back(g);
  }
  spec.adopters = {"top:3", "cps", "cps+top:2", "random:4"};
  spec.seeds = {1, 2, 3, 4, 5, 6};
  spec.thetas = {0.0, 0.02, 0.05, 0.1, 0.2};

  std::cout << "grid: " << spec.num_jobs() << " jobs on " << opt.nodes
            << "-AS graphs (spec hash " << spec.hash() << ")\n";

  stats::Table t({"workers", "wall_s", "jobs_per_s", "speedup", "sum_job_s",
                  "overhead_pct", "ok", "failed"});
  double serial_wall = 0.0;
  std::vector<std::string> reference_rows;
  bool deterministic = true;

  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    exp::SweepOptions opts;
    opts.workers = workers;
    opts.progress = nullptr;
    const auto report = exp::SweepScheduler(opts).run(spec, nullptr);

    if (workers == 1) {
      serial_wall = report.wall_s;
      reference_rows = canonical_rows(report);
    } else if (canonical_rows(report) != reference_rows) {
      deterministic = false;
    }

    double sum_job_s = 0.0;
    for (const auto& r : report.records) sum_job_s += r.wall_ms / 1000.0;
    const double ideal = sum_job_s / static_cast<double>(workers);
    const double overhead =
        report.wall_s > 0 ? (report.wall_s - ideal) / report.wall_s * 100.0 : 0;

    t.begin_row();
    t.add(workers);
    t.add(report.wall_s, 3);
    t.add(report.jobs_per_s, 1);
    t.add(serial_wall > 0 ? serial_wall / report.wall_s : 1.0, 2);
    t.add(sum_job_s, 3);
    t.add(overhead, 1);
    t.add(report.ok);
    t.add(report.failed);
  }
  t.print(std::cout);

  std::cout << "determinism across shardings: "
            << (deterministic ? "OK (identical merged results)" : "FAIL")
            << "\n"
            << "paper: the original sweeps ran as DryadLINQ jobs on a "
               "200-node cluster; this measures what our in-process sharding "
               "costs on top of the raw simulations.\n";
  return deterministic ? 0 : 1;
}
