#include "topology/as_graph.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstddef>
#include <stdexcept>

namespace sbgp::topo {

const char* to_string(AsClass c) {
  switch (c) {
    case AsClass::Stub: return "stub";
    case AsClass::Isp: return "isp";
    case AsClass::ContentProvider: return "cp";
  }
  return "?";
}

const char* to_string(Link l) {
  switch (l) {
    case Link::Customer: return "customer";
    case Link::Peer: return "peer";
    case Link::Provider: return "provider";
  }
  return "?";
}

AsId AsGraph::add_as(std::uint32_t asn) {
  if (finalized_) throw std::logic_error("AsGraph: add_as after finalize");
  const AsId id = static_cast<AsId>(asn_.size());
  asn_.push_back(asn);
  build_customers_.emplace_back();
  build_peers_.emplace_back();
  build_providers_.emplace_back();
  weight_.push_back(1.0);
  cp_mark_.push_back(0);
  return id;
}

AsId AsGraph::add_many(std::uint32_t count) {
  // Synthetic AS numbers continue from the current max label.
  std::uint32_t next = 1;
  for (std::uint32_t a : asn_) next = std::max(next, a + 1);
  AsId first = kNoAs;
  for (std::uint32_t i = 0; i < count; ++i) {
    const AsId id = add_as(next++);
    if (first == kNoAs) first = id;
  }
  return first;
}

bool AsGraph::add_edge_checked(AsId a, AsId b) {
  if (finalized_) throw std::logic_error("AsGraph: edge insertion after finalize");
  if (a == b || a >= asn_.size() || b >= asn_.size()) return false;
  Link unused;
  if (link_between(a, b, unused)) return false;  // duplicate edge
  return true;
}

bool AsGraph::add_customer_provider(AsId provider, AsId customer) {
  if (!add_edge_checked(provider, customer)) return false;
  build_customers_[provider].push_back(customer);
  build_providers_[customer].push_back(provider);
  ++cp_edges_;
  return true;
}

bool AsGraph::add_peer(AsId a, AsId b) {
  if (!add_edge_checked(a, b)) return false;
  build_peers_[a].push_back(b);
  build_peers_[b].push_back(a);
  ++peer_edges_;
  return true;
}

void AsGraph::mark_content_provider(AsId as_id) {
  assert(as_id < asn_.size());
  cp_mark_[as_id] = 1;
}

void AsGraph::finalize() {
  if (finalized_) throw std::logic_error("AsGraph: finalize called twice");
  const std::size_t n = asn_.size();
  class_.resize(n);
  n_stubs_ = n_isps_ = n_cps_ = 0;
  for (AsId i = 0; i < n; ++i) {
    if (cp_mark_[i] != 0) {
      class_[i] = AsClass::ContentProvider;
      ++n_cps_;
    } else if (build_customers_[i].empty()) {
      class_[i] = AsClass::Stub;
      ++n_stubs_;
    } else {
      class_[i] = AsClass::Isp;
      ++n_isps_;
    }
  }
  asn_index_.reserve(n);
  for (AsId i = 0; i < n; ++i) asn_index_.emplace_back(asn_[i], i);
  std::sort(asn_index_.begin(), asn_index_.end());

  // Compact the build-phase vectors into the finalized CSR form: one
  // neighbour array with per-node [customers | peers | providers] segments,
  // each sorted ascending. Sorted segments serve two masters — runs become
  // reproducible regardless of generator insertion order, and every
  // membership probe (link_between, the simplex-stub check, LinkSet) is a
  // branchless binary search via sorted_contains.
  adj_begin_.assign(n + 1, 0);
  peer_start_.assign(n, 0);
  prov_start_.assign(n, 0);
  std::size_t total = 0;
  for (AsId i = 0; i < n; ++i) {
    total += build_customers_[i].size() + build_peers_[i].size() +
             build_providers_[i].size();
  }
  adj_.resize(total);
  std::uint32_t at = 0;
  for (AsId i = 0; i < n; ++i) {
    adj_begin_[i] = at;
    auto emit = [&](std::vector<AsId>& v) {
      std::sort(v.begin(), v.end());
      std::copy(v.begin(), v.end(), adj_.begin() + at);
      at += static_cast<std::uint32_t>(v.size());
    };
    emit(build_customers_[i]);
    peer_start_[i] = at;
    emit(build_peers_[i]);
    prov_start_[i] = at;
    emit(build_providers_[i]);
  }
  adj_begin_[n] = at;
  assert(at == total);

  // The nested build vectors are dead weight from here on (the accessors
  // serve spans into adj_); release ~2|E| ids plus 3N vector headers.
  build_customers_.clear();
  build_customers_.shrink_to_fit();
  build_peers_.clear();
  build_peers_.shrink_to_fit();
  build_providers_.clear();
  build_providers_.shrink_to_fit();

  finalized_ = true;
}

AsId AsGraph::find_asn(std::uint32_t asn) const {
  auto it = std::lower_bound(asn_index_.begin(), asn_index_.end(),
                             std::make_pair(asn, AsId{0}));
  if (it != asn_index_.end() && it->first == asn) return it->second;
  return kNoAs;
}

bool AsGraph::link_between(AsId a, AsId b, Link& out) const {
  if (finalized_) {
    if (sorted_contains(customers(a), b)) { out = Link::Customer; return true; }
    if (sorted_contains(peers(a), b)) { out = Link::Peer; return true; }
    if (sorted_contains(providers(a), b)) { out = Link::Provider; return true; }
    return false;
  }
  auto contains = [](const std::vector<AsId>& v, AsId x) {
    return std::find(v.begin(), v.end(), x) != v.end();
  };
  if (contains(build_customers_[a], b)) { out = Link::Customer; return true; }
  if (contains(build_peers_[a], b)) { out = Link::Peer; return true; }
  if (contains(build_providers_[a], b)) { out = Link::Provider; return true; }
  return false;
}

double AsGraph::total_weight() const {
  double sum = 0.0;
  for (double w : weight_) sum += w;
  return sum;
}

std::vector<std::string> AsGraph::validate(bool allow_isolated) const {
  std::vector<std::string> problems;
  if (!finalized_) {
    problems.emplace_back("graph not finalized");
    return problems;
  }
  // GR1: the customer->provider relation must be acyclic. Kahn's algorithm
  // over provider->customer edges.
  std::vector<std::uint32_t> in_deg(num_nodes(), 0);  // number of providers
  for (AsId n = 0; n < num_nodes(); ++n) {
    in_deg[n] = static_cast<std::uint32_t>(providers(n).size());
  }
  std::vector<AsId> queue;
  for (AsId n = 0; n < num_nodes(); ++n) {
    if (in_deg[n] == 0) queue.push_back(n);
  }
  std::size_t visited = 0;
  while (!queue.empty()) {
    const AsId n = queue.back();
    queue.pop_back();
    ++visited;
    for (AsId c : customers(n)) {
      if (--in_deg[c] == 0) queue.push_back(c);
    }
  }
  if (visited != num_nodes()) {
    problems.emplace_back("GR1 violated: customer-provider hierarchy has a cycle");
  }
  // Symmetry of adjacency.
  for (AsId n = 0; n < num_nodes(); ++n) {
    for (AsId c : customers(n)) {
      if (!sorted_contains(providers(c), n)) {
        problems.emplace_back("asymmetric customer-provider edge at AS " +
                              std::to_string(asn_[n]));
      }
    }
    for (AsId p : peers(n)) {
      if (!sorted_contains(peers(p), n)) {
        problems.emplace_back("asymmetric peer edge at AS " + std::to_string(asn_[n]));
      }
    }
    if (!allow_isolated && degree(n) == 0) {
      problems.emplace_back("isolated AS " + std::to_string(asn_[n]));
    }
  }
  return problems;
}

std::vector<AsId> AsGraph::tier_ones() const {
  std::vector<AsId> out;
  for (AsId n = 0; n < num_nodes(); ++n) {
    if (providers(n).empty() && !customers(n).empty()) out.push_back(n);
  }
  return out;
}

std::size_t AsGraph::customer_cone_size(AsId n) const {
  std::vector<std::uint8_t> seen(num_nodes(), 0);
  std::vector<AsId> stack{n};
  seen[n] = 1;
  std::size_t count = 0;
  while (!stack.empty()) {
    const AsId x = stack.back();
    stack.pop_back();
    ++count;
    for (AsId c : customers(x)) {
      if (seen[c] == 0) {
        seen[c] = 1;
        stack.push_back(c);
      }
    }
  }
  return count;
}

void TopoPatchStats::merge(const TopoPatchStats& o) {
  rows_touched += o.rows_touched;
  full_rebuild = full_rebuild || o.full_rebuild;
  touched.insert(touched.end(), o.touched.begin(), o.touched.end());
  class_changed.insert(class_changed.end(), o.class_changed.begin(),
                       o.class_changed.end());
  new_nodes.insert(new_nodes.end(), o.new_nodes.begin(), o.new_nodes.end());
}

bool AsGraph::in_customer_cone(AsId root, AsId target) const {
  if (root == target) return true;
  std::vector<std::uint8_t> seen(num_nodes(), 0);
  std::vector<AsId> stack{root};
  seen[root] = 1;
  while (!stack.empty()) {
    const AsId x = stack.back();
    stack.pop_back();
    for (AsId c : customers(x)) {
      if (c == target) return true;
      if (seen[c] == 0) {
        seen[c] = 1;
        stack.push_back(c);
      }
    }
  }
  return false;
}

void AsGraph::reclassify_after_patch(AsId n, TopoPatchStats& stats) {
  // Content-provider designation is explicit and sticky; only the derived
  // Stub/Isp split can move when a node gains or loses its last customer.
  if (cp_mark_[n] != 0) return;
  const AsClass want = customers(n).empty() ? AsClass::Stub : AsClass::Isp;
  if (class_[n] == want) return;
  if (class_[n] == AsClass::Stub) --n_stubs_; else --n_isps_;
  if (want == AsClass::Stub) ++n_stubs_; else ++n_isps_;
  class_[n] = want;
  stats.class_changed.push_back(n);
}

namespace {

// A pending replacement for one CSR adjacency row: the full new contents of
// its three segments, edited in place and re-sorted at emission.
struct RowEdit {
  AsId row = kNoAs;
  std::array<std::vector<AsId>, 3> seg;  // [customers, peers, providers]
};

void erase_one(std::vector<AsId>& v, AsId x) {
  auto it = std::find(v.begin(), v.end(), x);
  assert(it != v.end());
  v.erase(it);
}

}  // namespace

TopoPatchStats AsGraph::apply_op(const TopoOp& op, std::size_t row_budget) {
  if (!finalized_) throw std::logic_error("AsGraph::apply_op: graph not finalized");
  const std::size_t n_old = asn_.size();
  if (row_budget == 0) row_budget = std::max<std::size_t>(64, n_old / 4);
  TopoPatchStats stats;

  auto check_node = [&](AsId x) {
    if (x >= n_old) {
      throw std::invalid_argument("TopoOp: node id " + std::to_string(x) +
                                  " out of range");
    }
  };
  auto check_endpoints = [&] {
    check_node(op.a);
    check_node(op.b);
    if (op.a == op.b) throw std::invalid_argument("TopoOp: self-loop");
  };

  // SetRelationship is a remove + add of the same edge. Pre-check GR1 here
  // (the existing edge excluded from the cone walk) so the composed op keeps
  // the all-or-nothing contract: once the remove lands, the add cannot fail.
  if (op.kind == TopoOp::Kind::SetRelationship) {
    check_endpoints();
    Link cur;
    if (!link_between(op.a, op.b, cur)) {
      throw std::invalid_argument("TopoOp: SetRelationship on a missing edge");
    }
    if (cur == op.rel) return stats;  // already that relationship: no-op
    if (op.rel != Link::Peer) {
      // rel is b's role toward a: Customer => a provides for b.
      const AsId prov = (op.rel == Link::Customer) ? op.a : op.b;
      const AsId cust = (op.rel == Link::Customer) ? op.b : op.a;
      // The current a--b edge is being removed, so walk the cone without it;
      // only a current customer-provider edge can contribute to a cone.
      bool cycle;
      if (cur != Link::Peer) {
        // The edge being replaced is itself a customer-provider edge, so the
        // cone walk must not traverse it: check prov ∈ cone(cust) over the
        // graph minus the current edge.
        const AsId cur_prov = (cur == Link::Customer) ? op.a : op.b;
        const AsId cur_cust = (cur == Link::Customer) ? op.b : op.a;
        cycle = [&] {
          if (cust == prov) return true;
          std::vector<std::uint8_t> seen(num_nodes(), 0);
          std::vector<AsId> stack{cust};
          seen[cust] = 1;
          while (!stack.empty()) {
            const AsId x = stack.back();
            stack.pop_back();
            for (AsId c : customers(x)) {
              if ((x == cur_prov && c == cur_cust)) continue;  // edge removed
              if (c == prov) return true;
              if (seen[c] == 0) {
                seen[c] = 1;
                stack.push_back(c);
              }
            }
          }
          return false;
        }();
      } else {
        cycle = in_customer_cone(cust, prov);
      }
      if (cycle) {
        throw std::invalid_argument(
            "TopoOp: SetRelationship would close a customer-provider cycle "
            "(GR1)");
      }
    }
    TopoOp rm;
    rm.kind = TopoOp::Kind::RemoveEdge;
    rm.a = op.a;
    rm.b = op.b;
    stats = apply_op(rm, row_budget);
    TopoOp ad;
    if (op.rel == Link::Peer) {
      ad.kind = TopoOp::Kind::AddPeer;
      ad.a = op.a;
      ad.b = op.b;
    } else {
      ad.kind = TopoOp::Kind::AddCustomerProvider;
      ad.a = (op.rel == Link::Customer) ? op.a : op.b;  // provider
      ad.b = (op.rel == Link::Customer) ? op.b : op.a;  // customer
    }
    stats.merge(apply_op(ad, row_budget));
    return stats;
  }

  // Validate the op fully, then collect the edited rows. Nothing below the
  // validation block mutates members until the new slab is assembled.
  std::vector<RowEdit> edits;
  edits.reserve(op.providers.size() + 2);
  auto edit_of = [&](AsId row) -> RowEdit& {
    for (auto& e : edits) {
      if (e.row == row) return e;
    }
    RowEdit e;
    e.row = row;
    auto snap = [](std::span<const AsId> s) {
      return std::vector<AsId>(s.begin(), s.end());
    };
    e.seg = {snap(customers(row)), snap(peers(row)), snap(providers(row))};
    edits.push_back(std::move(e));
    return edits.back();
  };

  std::ptrdiff_t cp_delta = 0;
  std::ptrdiff_t peer_delta = 0;
  bool add_node = false;

  switch (op.kind) {
    case TopoOp::Kind::AddCustomerProvider: {  // a = provider, b = customer
      check_endpoints();
      Link unused;
      if (link_between(op.a, op.b, unused)) {
        throw std::invalid_argument("TopoOp: duplicate edge");
      }
      // GR1: a new provider edge a->b closes a cycle iff a is already in b's
      // customer cone.
      if (in_customer_cone(op.b, op.a)) {
        throw std::invalid_argument(
            "TopoOp: edge would close a customer-provider cycle (GR1)");
      }
      edit_of(op.a).seg[0].push_back(op.b);
      edit_of(op.b).seg[2].push_back(op.a);
      ++cp_delta;
      break;
    }
    case TopoOp::Kind::AddPeer: {
      check_endpoints();
      Link unused;
      if (link_between(op.a, op.b, unused)) {
        throw std::invalid_argument("TopoOp: duplicate edge");
      }
      edit_of(op.a).seg[1].push_back(op.b);
      edit_of(op.b).seg[1].push_back(op.a);
      ++peer_delta;
      break;
    }
    case TopoOp::Kind::RemoveEdge: {
      check_endpoints();
      Link rel;  // b's role toward a
      if (!link_between(op.a, op.b, rel)) {
        throw std::invalid_argument("TopoOp: RemoveEdge on a missing edge");
      }
      switch (rel) {
        case Link::Customer:
          erase_one(edit_of(op.a).seg[0], op.b);
          erase_one(edit_of(op.b).seg[2], op.a);
          --cp_delta;
          break;
        case Link::Provider:
          erase_one(edit_of(op.a).seg[2], op.b);
          erase_one(edit_of(op.b).seg[0], op.a);
          --cp_delta;
          break;
        case Link::Peer:
          erase_one(edit_of(op.a).seg[1], op.b);
          erase_one(edit_of(op.b).seg[1], op.a);
          --peer_delta;
          break;
      }
      break;
    }
    case TopoOp::Kind::AddStub: {
      if (find_asn(op.asn) != kNoAs) {
        throw std::invalid_argument("TopoOp: AddStub with an existing ASN " +
                                    std::to_string(op.asn));
      }
      if (op.providers.empty()) {
        throw std::invalid_argument("TopoOp: AddStub needs at least one provider");
      }
      std::vector<AsId> provs(op.providers.begin(), op.providers.end());
      std::sort(provs.begin(), provs.end());
      for (std::size_t i = 0; i < provs.size(); ++i) {
        check_node(provs[i]);
        if (i > 0 && provs[i] == provs[i - 1]) {
          throw std::invalid_argument("TopoOp: AddStub with duplicate provider");
        }
      }
      const AsId new_id = static_cast<AsId>(n_old);
      for (AsId p : provs) edit_of(p).seg[0].push_back(new_id);
      // The new node has no old row to snapshot; append its edit directly.
      RowEdit fresh;
      fresh.row = new_id;
      fresh.seg[2] = std::move(provs);
      edits.push_back(std::move(fresh));
      // Per-node metadata (safe to extend before the slab swap: accessors for
      // old ids keep reading the old slab until we install the new one).
      asn_.push_back(op.asn);
      class_.push_back(AsClass::Stub);
      ++n_stubs_;
      weight_.push_back(1.0);
      cp_mark_.push_back(0);
      asn_index_.insert(
          std::lower_bound(asn_index_.begin(), asn_index_.end(),
                           std::make_pair(op.asn, AsId{0})),
          std::make_pair(op.asn, new_id));
      cp_delta += static_cast<std::ptrdiff_t>(op.providers.size());
      add_node = true;
      stats.new_nodes.push_back(new_id);
      break;
    }
    case TopoOp::Kind::SetRelationship:
      break;  // handled above
  }

  stats.rows_touched = edits.size();
  stats.full_rebuild = edits.size() > row_budget;
  for (const auto& e : edits) stats.touched.push_back(e.row);

  // Assemble the replacement slab: touched rows from their edits (segments
  // re-sorted), untouched rows streamed verbatim — or, past the budget,
  // every row re-gathered and re-sorted (identical bytes, since the old
  // segments are already sorted; the budget only caps the bookkeeping the
  // incremental path is allowed to assume).
  const std::size_t n_new = asn_.size();
  std::vector<AsId> new_adj;
  new_adj.reserve(adj_.size() + 2 * (op.providers.size() + 1));
  std::vector<std::uint32_t> nb(n_new + 1, 0);
  std::vector<std::uint32_t> nps(n_new, 0);
  std::vector<std::uint32_t> npr(n_new, 0);
  auto find_edit = [&](AsId row) -> RowEdit* {
    for (auto& e : edits) {
      if (e.row == row) return &e;
    }
    return nullptr;
  };
  std::vector<AsId> tmp;
  for (AsId i = 0; i < n_new; ++i) {
    nb[i] = static_cast<std::uint32_t>(new_adj.size());
    if (RowEdit* e = find_edit(i)) {
      for (auto& seg : e->seg) std::sort(seg.begin(), seg.end());
      new_adj.insert(new_adj.end(), e->seg[0].begin(), e->seg[0].end());
      nps[i] = static_cast<std::uint32_t>(new_adj.size());
      new_adj.insert(new_adj.end(), e->seg[1].begin(), e->seg[1].end());
      npr[i] = static_cast<std::uint32_t>(new_adj.size());
      new_adj.insert(new_adj.end(), e->seg[2].begin(), e->seg[2].end());
    } else if (stats.full_rebuild) {
      auto emit_sorted = [&](std::span<const AsId> s) {
        tmp.assign(s.begin(), s.end());
        std::sort(tmp.begin(), tmp.end());
        new_adj.insert(new_adj.end(), tmp.begin(), tmp.end());
      };
      emit_sorted(customers(i));
      nps[i] = static_cast<std::uint32_t>(new_adj.size());
      emit_sorted(peers(i));
      npr[i] = static_cast<std::uint32_t>(new_adj.size());
      emit_sorted(providers(i));
    } else {
      auto old = customers(i);
      new_adj.insert(new_adj.end(), old.begin(), old.end());
      nps[i] = static_cast<std::uint32_t>(new_adj.size());
      old = peers(i);
      new_adj.insert(new_adj.end(), old.begin(), old.end());
      npr[i] = static_cast<std::uint32_t>(new_adj.size());
      old = providers(i);
      new_adj.insert(new_adj.end(), old.begin(), old.end());
    }
  }
  nb[n_new] = static_cast<std::uint32_t>(new_adj.size());

  adj_ = std::move(new_adj);
  adj_begin_ = std::move(nb);
  peer_start_ = std::move(nps);
  prov_start_ = std::move(npr);
  cp_edges_ = static_cast<std::size_t>(
      static_cast<std::ptrdiff_t>(cp_edges_) + cp_delta);
  peer_edges_ = static_cast<std::size_t>(
      static_cast<std::ptrdiff_t>(peer_edges_) + peer_delta);

  for (const auto& e : edits) {
    if (add_node && e.row == n_old) continue;  // new node classified above
    reclassify_after_patch(e.row, stats);
  }
  return stats;
}

TopoPatchStats AsGraph::apply_delta(const TopoDelta& delta, std::size_t row_budget) {
  TopoPatchStats stats;
  for (const TopoOp& op : delta.ops) stats.merge(apply_op(op, row_budget));
  return stats;
}

double apply_traffic_model(AsGraph& graph, std::span<const AsId> cps, double x) {
  if (x < 0.0 || x >= 1.0) throw std::invalid_argument("traffic fraction x must be in [0,1)");
  const auto n = static_cast<double>(graph.num_nodes());
  const auto k = static_cast<double>(cps.size());
  for (AsId i = 0; i < graph.num_nodes(); ++i) graph.set_weight(i, 1.0);
  if (cps.empty() || x == 0.0) return 1.0;
  const double w_cp = x * (n - k) / (k * (1.0 - x));
  for (AsId cp : cps) graph.set_weight(cp, w_cp);
  return w_cp;
}

}  // namespace sbgp::topo
