file(REMOVE_RECURSE
  "CMakeFiles/bench_resilience_attacks.dir/bench_resilience_attacks.cpp.o"
  "CMakeFiles/bench_resilience_attacks.dir/bench_resilience_attacks.cpp.o.d"
  "bench_resilience_attacks"
  "bench_resilience_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_resilience_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
