#include "proto/engine.h"

#include <algorithm>
#include <cassert>

namespace sbgp::proto {

const char* to_string(SecurityMode m) {
  switch (m) {
    case SecurityMode::BgpOnly: return "bgp";
    case SecurityMode::SBgp: return "s-bgp";
    case SecurityMode::SoBgp: return "so-bgp";
  }
  return "?";
}

BgpEngine::BgpEngine(const AsGraph& graph, std::vector<NodeSecurity> security,
                     EngineConfig cfg)
    : graph_(graph),
      security_(std::move(security)),
      cfg_(cfg),
      rpki_(),
      sobgp_(rpki_) {
  assert(security_.size() == graph.num_nodes());
  if (cfg_.max_events == 0) cfg_.max_events = 200 * graph.num_nodes();

  for (AsId n = 0; n < graph_.num_nodes(); ++n) {
    if (security_[n] != NodeSecurity::Insecure) {
      rpki_.register_as(graph_.asn(n));
      rpki_.add_roa(graph_.asn(n), Prefix::for_asn(graph_.asn(n)));
    }
  }
  if (cfg_.mode == SecurityMode::SoBgp) {
    // Mutual link certification: only links between two secure ASes can be
    // certified, which is exactly why a path is secure iff every AS on it
    // is secure (Section 2.2).
    for (AsId n = 0; n < graph_.num_nodes(); ++n) {
      if (security_[n] == NodeSecurity::Insecure) continue;
      auto try_certify = [&](AsId other) {
        if (n < other && security_[other] != NodeSecurity::Insecure) {
          sobgp_.certify_link(graph_.asn(n), graph_.asn(other));
        }
      };
      for (const AsId c : graph_.customers(n)) try_certify(c);
      for (const AsId p : graph_.peers(n)) try_certify(p);
      for (const AsId p : graph_.providers(n)) try_certify(p);
    }
  }

  rib_in_.resize(graph_.num_nodes());
  selected_.resize(graph_.num_nodes());
  selected_atts_.resize(graph_.num_nodes());
  in_queue_.assign(graph_.num_nodes(), 0);
  frozen_.assign(graph_.num_nodes(), 0);
  stats_.signatures.assign(graph_.num_nodes(), 0);
  stats_.verifications.assign(graph_.num_nodes(), 0);
}

std::size_t BgpEngine::num_neighbors(AsId node) const {
  return graph_.degree(node);
}

AsId BgpEngine::neighbor_at(AsId node, std::size_t slot) const {
  const auto cust = graph_.customers(node);
  if (slot < cust.size()) return cust[slot];
  slot -= cust.size();
  const auto peers = graph_.peers(node);
  if (slot < peers.size()) return peers[slot];
  slot -= peers.size();
  return graph_.providers(node)[slot];
}

topo::Link BgpEngine::link_to(AsId node, std::size_t slot) const {
  const auto cust = graph_.customers(node);
  if (slot < cust.size()) return topo::Link::Customer;
  if (slot < cust.size() + graph_.peers(node).size()) return topo::Link::Peer;
  return topo::Link::Provider;
}

std::size_t BgpEngine::neighbor_slot(AsId node, AsId neighbor) const {
  const auto cust = graph_.customers(node);
  const auto peers = graph_.peers(node);
  const auto provs = graph_.providers(node);
  auto find_in = [&](std::span<const AsId> v) -> std::ptrdiff_t {
    const auto it = std::lower_bound(v.begin(), v.end(), neighbor);
    return (it != v.end() && *it == neighbor) ? it - v.begin() : -1;
  };
  std::ptrdiff_t i = find_in(cust);
  if (i >= 0) return static_cast<std::size_t>(i);
  i = find_in(peers);
  if (i >= 0) return cust.size() + static_cast<std::size_t>(i);
  i = find_in(provs);
  assert(i >= 0);
  return cust.size() + peers.size() + static_cast<std::size_t>(i);
}

bool BgpEngine::applies_secp(AsId n) const {
  switch (security_[n]) {
    case NodeSecurity::Full: return true;
    case NodeSecurity::Simplex: return cfg_.stub_breaks_ties;
    case NodeSecurity::Insecure: return false;
  }
  return false;
}

std::uint8_t BgpEngine::score_path(AsId receiver,
                                   const std::vector<std::uint32_t>& path,
                                   const std::vector<Attestation>& atts) {
  if (cfg_.mode == SecurityMode::BgpOnly || path.empty()) return 0;
  // Only validating receivers score paths: a Full AS validates itself; a
  // simplex stub that breaks ties on security trusts its provider's
  // validation (Section 6.7) — same machinery, same verdict.
  if (!applies_secp(receiver)) return 0;

  std::uint8_t score = 0;
  if (cfg_.mode == SecurityMode::SBgp) {
    const PathValidation v =
        validate_path(rpki_, dest_prefix_, path, graph_.asn(receiver), atts);
    if (security_[receiver] == NodeSecurity::Full) {
      stats_.verifications[receiver] += path.size();
    }
    score = v.fully_valid ? 2 : (v.valid_hops > 0 ? 1 : 0);
  } else {  // SoBgp
    if (security_[receiver] == NodeSecurity::Full) {
      stats_.verifications[receiver] += path.size();
    }
    const bool plausible = sobgp_.path_plausible(path);
    const bool origin_ok =
        rpki_.validate_origin(path.back(), dest_prefix_) == RoaValidity::Valid;
    if (plausible && origin_ok) {
      score = 2;
    } else {
      // Partial credit: some prefix of the links is certified.
      bool any = path.size() >= 2 && sobgp_.link_certified(path[0], path[1]);
      score = any ? 1 : 0;
    }
  }
  if (cfg_.partial == PartialPathPolicy::IgnorePartial && score == 1) score = 0;
  return score;
}

void BgpEngine::reset(AsId dest) {
  dest_ = dest;
  dest_prefix_ = Prefix::for_asn(graph_.asn(dest));
  for (AsId n = 0; n < graph_.num_nodes(); ++n) {
    rib_in_[n].assign(num_neighbors(n), Candidate{});
    selected_[n] = NodeRoute{};
    selected_atts_[n].clear();
  }
  export_queue_.clear();
  std::fill(in_queue_.begin(), in_queue_.end(), 0);
  std::fill(frozen_.begin(), frozen_.end(), 0);
  stats_.messages = 0;
  std::fill(stats_.signatures.begin(), stats_.signatures.end(), 0);
  std::fill(stats_.verifications.begin(), stats_.verifications.end(), 0);
}

void BgpEngine::originate(AsId dest) {
  selected_[dest].next_hop = kNoAs;
  selected_[dest].path.clear();
  selected_[dest].cls = rt::RouteClass::Self;
  selected_[dest].security_score = 2;
  enqueue_export(dest);
}

bool BgpEngine::run(AsId dest) {
  reset(dest);
  originate(dest);
  return process_queue();
}

bool BgpEngine::inject(AsId attacker, const std::vector<std::uint32_t>& claimed_path,
                       AsId dest) {
  assert(dest == dest_ && "run(dest) must precede inject");
  (void)dest;
  assert(!claimed_path.empty() && claimed_path.front() == graph_.asn(attacker));
  frozen_[attacker] = 1;
  for (std::size_t slot = 0; slot < num_neighbors(attacker); ++slot) {
    const AsId victim = neighbor_at(attacker, slot);
    std::vector<Attestation> atts;
    // The attacker holds only its own keys: it can attest its own hop (if
    // it is secure at all), nothing else.
    Attestation own;
    if (security_[attacker] != NodeSecurity::Insecure &&
        attest(rpki_, dest_prefix_, claimed_path, graph_.asn(victim), own)) {
      ++stats_.signatures[attacker];
      atts.push_back(own);
    }
    Candidate cand;
    cand.path = claimed_path;
    cand.attestations = std::move(atts);
    cand.present = true;
    deliver(victim, neighbor_slot(victim, attacker), std::move(cand));
  }
  return process_queue();
}

bool BgpEngine::process_queue() {
  std::size_t events = 0;
  while (!export_queue_.empty()) {
    if (++events > cfg_.max_events) return false;
    const AsId node = export_queue_.front();
    export_queue_.pop_front();
    in_queue_[node] = 0;
    do_export(node);
  }
  return true;
}

void BgpEngine::enqueue_export(AsId node) {
  if (in_queue_[node] == 0) {
    in_queue_[node] = 1;
    export_queue_.push_back(node);
  }
}

void BgpEngine::do_export(AsId node) {
  if (frozen_[node] != 0) return;
  const NodeRoute& route = selected_[node];
  if (route.cls == rt::RouteClass::None) return;
  // GR2: own-prefix and customer-learned routes go to everyone; peer- and
  // provider-learned routes go to customers only.
  const bool to_all =
      route.cls == rt::RouteClass::Self || route.cls == rt::RouteClass::Customer;
  const std::size_t n_cust = graph_.customers(node).size();
  for (std::size_t slot = 0; slot < num_neighbors(node); ++slot) {
    if (!to_all && slot >= n_cust) break;  // slots are customers-first
    send(node, neighbor_at(node, slot), route, selected_atts_[node]);
  }
}

void BgpEngine::send(AsId from, AsId to, const NodeRoute& route,
                     const std::vector<Attestation>& attestations) {
  Candidate cand;
  cand.path.reserve(route.path.size() + 1);
  cand.path.push_back(graph_.asn(from));
  cand.path.insert(cand.path.end(), route.path.begin(), route.path.end());
  cand.attestations = attestations;

  const bool signs =
      security_[from] == NodeSecurity::Full ||
      (security_[from] == NodeSecurity::Simplex && route.cls == rt::RouteClass::Self);
  if (cfg_.mode == SecurityMode::SBgp && signs) {
    Attestation att;
    if (attest(rpki_, dest_prefix_, cand.path, graph_.asn(to), att)) {
      ++stats_.signatures[from];
      cand.attestations.push_back(att);
    }
  }
  cand.present = true;
  deliver(to, neighbor_slot(to, from), std::move(cand));
}

void BgpEngine::deliver(AsId receiver, std::size_t sender_slot, Candidate cand) {
  ++stats_.messages;
  if (receiver == dest_) return;  // the origin ignores routes to itself
  // Loop prevention: discard paths containing the receiver.
  const std::uint32_t self_asn = graph_.asn(receiver);
  if (std::find(cand.path.begin(), cand.path.end(), self_asn) != cand.path.end()) {
    return;
  }
  cand.security_score = score_path(receiver, cand.path, cand.attestations);
  rib_in_[receiver][sender_slot] = std::move(cand);
  if (reselect(receiver)) enqueue_export(receiver);
}

bool BgpEngine::reselect(AsId receiver) {
  const NodeRoute before = selected_[receiver];
  NodeRoute best;
  std::size_t best_slot = 0;
  std::uint64_t best_tb = 0;
  const bool secp = applies_secp(receiver);

  for (std::size_t slot = 0; slot < rib_in_[receiver].size(); ++slot) {
    const Candidate& cand = rib_in_[receiver][slot];
    if (!cand.present) continue;
    rt::RouteClass cls = rt::RouteClass::Provider;
    switch (link_to(receiver, slot)) {
      case topo::Link::Customer: cls = rt::RouteClass::Customer; break;
      case topo::Link::Peer: cls = rt::RouteClass::Peer; break;
      case topo::Link::Provider: cls = rt::RouteClass::Provider; break;
    }
    const AsId sender = neighbor_at(receiver, slot);
    const std::uint64_t tb = cfg_.tiebreak.key(receiver, sender, graph_);
    const std::uint8_t sec = secp ? cand.security_score : 0;

    bool better = false;
    if (best.cls == rt::RouteClass::None) {
      better = true;
    } else if (cls != best.cls) {
      better = cls < best.cls;
    } else if (cand.path.size() != best.path.size()) {
      better = cand.path.size() < best.path.size();
    } else if (sec != best.security_score) {
      better = sec > best.security_score;
    } else {
      better = tb < best_tb;
    }
    if (better) {
      best.cls = cls;
      best.path = cand.path;
      best.security_score = sec;
      best.next_hop = sender;
      best_slot = slot;
      best_tb = tb;
    }
  }

  if (best.cls == rt::RouteClass::None) return false;
  const bool changed = best.cls != before.cls || best.path != before.path ||
                       best.security_score != before.security_score;
  selected_[receiver] = best;
  selected_atts_[receiver] = rib_in_[receiver][best_slot].attestations;
  return changed;
}

}  // namespace sbgp::proto
