// Serialization of AS graphs in the CAIDA "as-rel" text format used by the
// empirical datasets the paper ran on (Cyclops [9] exports the same shape):
//   <provider-asn>|<customer-asn>|-1
//   <peer-asn>|<peer-asn>|0
// plus '#'-prefixed comments. Content-provider designations are persisted as
//   # cp: <asn>
// comment lines so a round-trip preserves classification.
#pragma once

#include <iosfwd>
#include <string>

#include "topology/as_graph.h"

namespace sbgp::topo {

/// Parses an as-rel stream into a finalized graph. Throws std::runtime_error
/// with a line number on malformed input.
[[nodiscard]] AsGraph read_as_rel(std::istream& in);

/// Convenience overload reading from a file path.
[[nodiscard]] AsGraph read_as_rel_file(const std::string& path);

/// Writes `graph` (finalized) in as-rel format.
void write_as_rel(const AsGraph& graph, std::ostream& out);

/// Convenience overload writing to a file path (overwrites).
void write_as_rel_file(const AsGraph& graph, const std::string& path);

}  // namespace sbgp::topo
