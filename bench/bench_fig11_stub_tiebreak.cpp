// Figure 11 / Section 6.7: sensitivity of deployment to whether simplex
// stubs break ties in favour of secure routes. The paper finds the outcome
// essentially insensitive for theta > 0 (stubs have tiny tiebreak sets and
// transit nothing).
#include "bench_common.h"
#include "stats/table.h"

int main(int argc, char** argv) {
  using namespace sbgp;
  const auto opt = bench::parse_options(argc, argv, /*default_nodes=*/1200);
  bench::print_header("Figure 11 - do stubs need to break ties on security?", opt);

  auto net = bench::make_internet(opt);
  const auto& g = net.graph;
  const double n_ases = static_cast<double>(g.num_nodes());

  struct Set {
    std::string name;
    std::vector<topo::AsId> adopters;
  };
  std::vector<Set> sets{
      {"top-5 ISPs",
       core::select_adopters(net, core::AdopterStrategy::TopDegreeIsps, 5, 1)},
      {"5 CPs",
       core::select_adopters(net, core::AdopterStrategy::ContentProviders, 0, 1)},
      {"CPs + top-5",
       core::select_adopters(net, core::AdopterStrategy::CpsPlusTopIsps, 5, 1)},
  };

  stats::Table t({"adopters", "theta", "ASes secure (stubs break ties)",
                  "ASes secure (stubs ignore security)", "gap"});
  for (const auto& s : sets) {
    for (const double theta : {0.05, 0.20}) {
      double frac[2] = {0.0, 0.0};
      for (const bool stub_ties : {true, false}) {
        core::SimConfig cfg = bench::case_study_config(opt);
        cfg.theta = theta;
        cfg.stub_breaks_ties = stub_ties;
        core::DeploymentSimulator sim(g, cfg);
        const auto result =
            sim.run(core::DeploymentState::initial(g, s.adopters));
        frac[stub_ties ? 0 : 1] =
            static_cast<double>(result.final_state.num_secure()) / n_ases;
      }
      t.begin_row();
      t.add(s.name);
      t.add(theta, 2);
      t.add_percent(frac[0], 1);
      t.add_percent(frac[1], 1);
      t.add_percent(frac[0] - frac[1], 1);
    }
  }
  t.print(std::cout);
  bench::print_paper_note(
      "results are insensitive to stub tie-breaking for theta > 0, for every "
      "choice of early adopters: stubs have small tiebreak sets and transit "
      "no traffic.");
  return 0;
}
