#include "stats/histogram.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace sbgp::stats {

void IntHistogram::add(std::uint64_t value) { add(value, 1); }

void IntHistogram::add(std::uint64_t value, std::uint64_t count) {
  if (count == 0) return;
  if (value >= counts_.size()) counts_.resize(value + 1, 0);
  counts_[value] += count;
  total_ += count;
  weighted_sum_ += value * count;
}

std::uint64_t IntHistogram::count(std::uint64_t value) const {
  return value < counts_.size() ? counts_[value] : 0;
}

std::uint64_t IntHistogram::max_value() const {
  for (std::size_t i = counts_.size(); i-- > 0;) {
    if (counts_[i] != 0) return i;
  }
  return 0;
}

double IntHistogram::mean() const {
  return total_ == 0 ? 0.0
                     : static_cast<double>(weighted_sum_) / static_cast<double>(total_);
}

double IntHistogram::fraction_greater(std::uint64_t value) const {
  if (total_ == 0) return 0.0;
  std::uint64_t above = 0;
  for (std::size_t i = value + 1; i < counts_.size(); ++i) above += counts_[i];
  return static_cast<double>(above) / static_cast<double>(total_);
}

double IntHistogram::ccdf(std::uint64_t value) const {
  if (total_ == 0) return 0.0;
  if (value == 0) return 1.0;
  return fraction_greater(value - 1);
}

std::uint64_t IntHistogram::quantile(double p) const {
  if (total_ == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(p * static_cast<double>(total_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen > target) return i;
  }
  return max_value();
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> IntHistogram::bins() const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] != 0) out.emplace_back(i, counts_[i]);
  }
  return out;
}

BucketedCounter::BucketedCounter(std::vector<std::uint64_t> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      members_(bounds_.size(), 0),
      hits_(bounds_.size(), 0) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  assert(!bounds_.empty());
}

std::size_t BucketedCounter::bucket_of(std::uint64_t key) const {
  for (std::size_t b = 0; b < bounds_.size(); ++b) {
    if (key <= bounds_[b]) return b;
  }
  return bounds_.size() - 1;
}

std::string BucketedCounter::label(std::size_t b) const {
  const std::uint64_t lo = b == 0 ? 0 : bounds_[b - 1] + 1;
  const std::uint64_t hi = bounds_[b];
  if (hi == std::numeric_limits<std::uint64_t>::max()) {
    return ">" + std::to_string(lo - 1);
  }
  return std::to_string(lo) + "-" + std::to_string(hi);
}

void BucketedCounter::add_member(std::uint64_t key) { ++members_[bucket_of(key)]; }
void BucketedCounter::add_hit(std::uint64_t key) { ++hits_[bucket_of(key)]; }

double BucketedCounter::fraction(std::size_t b) const {
  return members_[b] == 0
             ? 0.0
             : static_cast<double>(hits_[b]) / static_cast<double>(members_[b]);
}

void Summary::add(double v) {
  values_.push_back(v);
  sorted_ = false;
}

void Summary::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Summary::mean() const {
  if (values_.empty()) return 0.0;
  // Sum in sorted order so the result is a pure function of the sample
  // multiset: without this, an earlier quantile()/min()/max() call (which
  // sorts in place) would perturb the last ULP of a later mean(), breaking
  // "same samples => same mean" reproducibility guarantees.
  ensure_sorted();
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double Summary::min() const {
  ensure_sorted();
  return values_.empty() ? 0.0 : values_.front();
}

double Summary::max() const {
  ensure_sorted();
  return values_.empty() ? 0.0 : values_.back();
}

double Summary::median() const { return quantile(0.5); }

double Summary::quantile(double p) const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  p = std::clamp(p, 0.0, 1.0);
  const auto idx =
      static_cast<std::size_t>(p * static_cast<double>(values_.size() - 1));
  return values_[idx];
}

}  // namespace sbgp::stats
