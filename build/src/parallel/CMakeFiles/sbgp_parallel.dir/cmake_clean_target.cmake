file(REMOVE_RECURSE
  "libsbgp_parallel.a"
)
