// sbgpsim — command-line driver for the library.
//
//   sbgpsim generate --nodes 5000 --seed 1 --out graph.txt [--augment]
//   sbgpsim simulate [--graph g.txt | --nodes N] [--adopters SPEC]
//                    [--theta F] [--model outgoing|incoming] [--x F]
//                    [--stub-ties 0|1] [--csv]
//   sbgpsim sweep    [--graph g.txt | --nodes N] [--adopters SPEC]
//                    [--thetas 0,0.05,0.1] [--workers N] [--csv]
//   sbgpsim analyze  [--graph g.txt | --nodes N]
//                    (tiebreaks | diamonds | resilience | pathlens)
//   sbgpsim jobs     (run | status | merge) --spec spec.json
//                    --store results.jsonl [--workers N] [--timeout-s F]
//                    [--retries K] [--no-resume] [--progress-s F] [--csv]
//
// Adopter SPEC: none | top:K | cps | cps+top:K | random:K | asn:1,2,3
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/analysis.h"
#include "core/resilience.h"
#include "core/simulator.h"
#include "exp/job_spec.h"
#include "exp/result_store.h"
#include "exp/runner.h"
#include "exp/scheduler.h"
#include "routing/rib.h"
#include "stats/table.h"
#include "topology/graph_io.h"
#include "topology/topology_gen.h"

namespace {

using namespace sbgp;

struct CliOptions {
  std::string command;
  std::string subcommand;  // jobs: run | status | merge; analyze: mode
  std::string graph_file;
  std::string out_file;
  std::string spec_file;
  std::string store_file;
  std::string adopters = "cps+top:5";
  std::string thetas = "0,0.05,0.1,0.2,0.35,0.5";
  std::uint32_t nodes = 2000;
  std::uint64_t seed = 42;
  std::size_t workers = 0;  // 0 = hardware
  double theta = 0.05;
  double x = 0.10;
  double timeout_s = 0.0;
  double progress_s = 5.0;
  int retries = 0;
  bool augment = false;
  bool csv = false;
  bool stub_ties = true;
  bool resume = true;
  bool incremental = true;
  bool check_incremental = false;
  core::UtilityModel model = core::UtilityModel::Outgoing;
};

[[noreturn]] void usage(int code) {
  std::cerr <<
      "usage: sbgpsim <generate|simulate|sweep|analyze|jobs> [options]\n"
      "  common: --nodes N --seed S --x F --graph FILE\n"
      "  generate: --out FILE [--augment]\n"
      "  simulate: --adopters SPEC --theta F --model outgoing|incoming\n"
      "            --stub-ties 0|1 [--csv]\n"
      "  sweep:    --adopters SPEC --thetas 0,0.05,... [--workers N] [--csv]\n"
      "  simulate/sweep: [--no-incremental] [--check-incremental]\n"
      "            (full per-round recompute / differential incremental check)\n"
      "  analyze:  tiebreaks | diamonds | resilience | pathlens\n"
      "  jobs:     run|status|merge --spec FILE --store FILE\n"
      "            run: [--workers N] [--timeout-s F] [--retries K]\n"
      "                 [--no-resume] [--progress-s F]\n"
      "            merge: [--csv]\n"
      "  adopter SPEC: none | top:K | cps | cps+top:K | random:K | asn:1,2,3\n";
  std::exit(code);
}

CliOptions parse(int argc, char** argv) {
  CliOptions o;
  if (argc < 2) usage(2);
  o.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(2);
      return argv[++i];
    };
    if (a == "--nodes") o.nodes = static_cast<std::uint32_t>(std::stoul(next()));
    else if (a == "--seed") o.seed = std::stoull(next());
    else if (a == "--graph") o.graph_file = next();
    else if (a == "--out") o.out_file = next();
    else if (a == "--spec") o.spec_file = next();
    else if (a == "--store") o.store_file = next();
    else if (a == "--adopters") o.adopters = next();
    else if (a == "--theta") o.theta = std::stod(next());
    else if (a == "--thetas") o.thetas = next();
    else if (a == "--x") o.x = std::stod(next());
    else if (a == "--workers") o.workers = std::stoull(next());
    else if (a == "--timeout-s") o.timeout_s = std::stod(next());
    else if (a == "--progress-s") o.progress_s = std::stod(next());
    else if (a == "--retries") o.retries = std::stoi(next());
    else if (a == "--no-resume") o.resume = false;
    else if (a == "--no-incremental") o.incremental = false;
    else if (a == "--check-incremental") o.check_incremental = true;
    else if (a == "--augment") o.augment = true;
    else if (a == "--csv") o.csv = true;
    else if (a == "--stub-ties") o.stub_ties = next() != "0";
    else if (a == "--model") {
      o.model = next() == "incoming" ? core::UtilityModel::Incoming
                                     : core::UtilityModel::Outgoing;
    } else if (a == "--help" || a == "-h") usage(0);
    else if (a[0] != '-') o.subcommand = a;
    else usage(2);
  }
  return o;
}

topo::Internet load_internet(const CliOptions& o) {
  topo::Internet net;
  if (!o.graph_file.empty()) {
    net.graph = topo::read_as_rel_file(o.graph_file);
    for (topo::AsId n = 0; n < net.graph.num_nodes(); ++n) {
      if (net.graph.is_content_provider(n)) net.cps.push_back(n);
    }
    net.tier1 = net.graph.tier_ones();
  } else {
    topo::InternetConfig cfg;
    cfg.total_ases = o.nodes;
    cfg.seed = o.seed;
    net = topo::generate_internet(cfg);
  }
  topo::apply_traffic_model(net.graph, net.cps, o.x);
  return net;
}

std::vector<topo::AsId> resolve_adopters(const topo::Internet& net,
                                         const std::string& spec,
                                         std::uint64_t seed) {
  try {
    return exp::resolve_adopter_spec(net, spec, seed);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    std::exit(2);
  }
}

int cmd_generate(const CliOptions& o) {
  topo::InternetConfig cfg;
  cfg.total_ases = o.nodes;
  cfg.seed = o.seed;
  auto net = topo::generate_internet(cfg);
  if (o.augment) {
    std::size_t added = 0;
    net = topo::augment_cp_peering(net, 0.8, o.seed + 1, &added);
    std::cerr << "augmented: +" << added << " CP peering edges\n";
  }
  if (o.out_file.empty()) {
    topo::write_as_rel(net.graph, std::cout);
  } else {
    topo::write_as_rel_file(net.graph, o.out_file);
    std::cerr << "wrote " << o.out_file << ": " << net.graph.num_nodes()
              << " ASes, " << net.graph.num_customer_provider_edges() << " c2p, "
              << net.graph.num_peer_edges() << " p2p\n";
  }
  return 0;
}

core::SimConfig sim_config(const CliOptions& o) {
  core::SimConfig cfg;
  cfg.model = o.model;
  cfg.theta = o.theta;
  cfg.stub_breaks_ties = o.stub_ties;
  cfg.incremental = o.incremental;
  cfg.check_incremental = o.check_incremental;
  return cfg;
}

int cmd_simulate(const CliOptions& o) {
  const auto net = load_internet(o);
  const auto adopters = resolve_adopters(net, o.adopters, o.seed);
  core::DeploymentSimulator sim(net.graph, sim_config(o));
  const auto result =
      sim.run(core::DeploymentState::initial(net.graph, adopters));

  stats::Table t({"round", "new_isps", "new_stubs", "turned_off", "secure_ases",
                  "secure_isps"});
  for (const auto& r : result.rounds) {
    t.begin_row();
    t.add(r.round);
    t.add(r.newly_secure_isps);
    t.add(r.newly_secure_stubs);
    t.add(r.turned_off);
    t.add(r.total_secure_ases);
    t.add(r.total_secure_isps);
  }
  if (o.csv) t.print_csv(std::cout);
  else t.print(std::cout);
  std::cerr << "outcome: " << core::to_string(result.outcome) << "; secure "
            << result.final_state.num_secure() << "/" << net.graph.num_nodes()
            << " ASes\n";
  return 0;
}

// The single-axis θ sweep, ported onto the exp:: scheduler: builds a
// one-graph JobSpec and runs it (serially by default; --workers N shards
// it). Results come back merged in job-id order, which here is θ order.
int cmd_sweep(const CliOptions& o) {
  exp::JobSpec spec;
  spec.name = "cli-sweep";
  exp::GraphSpec g;
  g.file = o.graph_file;
  g.nodes = o.nodes;
  g.seed = o.seed;
  g.augment = o.augment;
  g.x = o.x;
  spec.graphs = {g};
  spec.adopters = {o.adopters};
  spec.models = {core::to_string(o.model)};
  spec.stub_ties = {o.stub_ties ? 1 : 0};
  spec.seeds = {o.seed};
  spec.incremental = o.incremental;
  spec.check_incremental = o.check_incremental;
  try {
    spec.thetas = exp::parse_double_list(o.thetas, "--thetas");
  } catch (const exp::JsonError& e) {
    std::cerr << e.what() << "\n";
    usage(2);
  }
  for (const double theta : spec.thetas) {
    if (theta < 0.0) {
      std::cerr << "--thetas entries must be >= 0 (got "
                << exp::format_double(theta) << ")\n";
      usage(2);
    }
  }

  exp::SweepOptions opts;
  opts.workers = o.workers == 0 ? 1 : o.workers;
  opts.progress = nullptr;
  exp::SweepScheduler scheduler(opts);
  const auto report = scheduler.run(spec, nullptr);

  stats::Table t({"theta", "outcome", "rounds", "secure_ases", "secure_isps",
                  "frac_ases", "frac_isps"});
  for (std::size_t i = 0; i < report.records.size(); ++i) {
    const auto& r = report.records[i];
    t.begin_row();
    t.add(spec.thetas[i], 3);
    if (r.status == "ok") {
      t.add(r.outcome);
      t.add(r.rounds);
      t.add(r.secure_ases);
      t.add(r.secure_isps);
      t.add(r.frac_ases, 4);
      t.add(r.frac_isps, 4);
    } else {
      t.add(r.status + ": " + r.error);
    }
  }
  if (o.csv) t.print_csv(std::cout);
  else t.print(std::cout);
  return report.failed == 0 ? 0 : 1;
}

int cmd_analyze(const CliOptions& o) {
  const auto net = load_internet(o);
  par::ThreadPool pool(0);
  const auto cfg = sim_config(o);
  const std::string analysis =
      o.subcommand.empty() ? "tiebreaks" : o.subcommand;
  if (analysis == "tiebreaks") {
    const auto dist = core::tiebreak_distribution(net.graph, pool);
    std::cout << "mean tiebreak size: all " << dist.all.mean() << " isp "
              << dist.isp.mean() << " stub " << dist.stub.mean()
              << "; frac >1: " << dist.all.fraction_greater(1) << "\n";
  } else if (analysis == "diamonds") {
    const auto adopters = resolve_adopters(net, o.adopters, o.seed);
    for (const auto& d : core::count_diamonds(net.graph, adopters, pool)) {
      std::cout << "AS" << net.graph.asn(d.adopter) << ": " << d.diamonds
                << " contested stubs, " << d.strict_diamonds << " strict\n";
    }
  } else if (analysis == "resilience") {
    std::vector<std::uint8_t> nobody(net.graph.num_nodes(), 0);
    const auto r = core::measure_resilience(net.graph, nobody, cfg, 100, o.seed, pool);
    std::cout << "status quo hijack impact: mean " << r.mean_fooled() << ", p90 "
              << r.fooled_fraction.quantile(0.9) << " (over " << r.pairs
              << " pairs)\n";
  } else if (analysis == "pathlens") {
    for (const auto cp : net.cps) {
      std::cout << "AS" << net.graph.asn(cp) << ": avg path length "
                << rt::average_path_length_from(net.graph, cp) << "\n";
    }
  } else {
    usage(2);
  }
  return 0;
}

// ---------------------------------------------------------------------------
// jobs — the experiment-orchestration entry points.

exp::JobSpec load_spec_or_die(const CliOptions& o) {
  if (o.spec_file.empty()) {
    std::cerr << "jobs " << o.subcommand << " requires --spec FILE\n";
    usage(2);
  }
  try {
    return exp::JobSpec::from_file(o.spec_file);
  } catch (const exp::JsonError& e) {
    std::cerr << "bad spec " << o.spec_file << ": " << e.what() << "\n";
    std::exit(2);
  }
}

void print_merged(const std::vector<exp::JobRecord>& records, bool csv) {
  stats::Table t({"job_id", "key", "status", "outcome", "rounds",
                  "secure_ases", "secure_isps", "num_ases", "num_isps",
                  "frac_ases", "frac_isps"});
  for (const auto& r : records) {
    t.begin_row();
    t.add(r.job_id);
    t.add(r.job_key);
    t.add(r.status);
    t.add(r.outcome);
    t.add(r.rounds);
    t.add(r.secure_ases);
    t.add(r.secure_isps);
    t.add(r.num_ases);
    t.add(r.num_isps);
    t.add(exp::format_double(r.frac_ases));
    t.add(exp::format_double(r.frac_isps));
  }
  if (csv) t.print_csv(std::cout);
  else t.print(std::cout);
}

int cmd_jobs_run(const CliOptions& o) {
  const auto spec = load_spec_or_die(o);
  if (o.store_file.empty()) {
    std::cerr << "jobs run requires --store FILE\n";
    usage(2);
  }
  exp::ResultStore store(o.store_file);
  exp::SweepOptions opts;
  opts.workers = o.workers;
  opts.timeout_s = o.timeout_s;
  opts.retries = o.retries;
  opts.resume = o.resume;
  opts.progress_interval_s = o.progress_s;
  opts.progress = &std::cerr;
  exp::SweepScheduler scheduler(opts);
  const auto report = scheduler.run(spec, &store);
  return report.failed == 0 && report.timed_out == 0 ? 0 : 1;
}

int cmd_jobs_status(const CliOptions& o) {
  const auto spec = load_spec_or_die(o);
  if (o.store_file.empty()) {
    std::cerr << "jobs status requires --store FILE\n";
    usage(2);
  }
  std::size_t skipped_lines = 0;
  const auto records = exp::ResultStore::load(o.store_file, &skipped_lines);
  const auto latest = exp::ResultStore::latest_by_job(records, spec.hash());
  std::size_t ok = 0, failed = 0, timed_out = 0;
  for (const auto& [id, r] : latest) {
    if (r.status == "ok") ++ok;
    else if (r.status == "timeout") ++timed_out;
    else ++failed;
  }
  const std::size_t total = spec.num_jobs();
  std::cout << "spec " << o.spec_file << " (name '" << spec.name << "', hash "
            << spec.hash() << "): " << total << " jobs\n"
            << "  ok:        " << ok << "\n"
            << "  failed:    " << failed << "\n"
            << "  timeout:   " << timed_out << "\n"
            << "  remaining: " << (total - ok) << "\n";
  if (skipped_lines > 0) {
    std::cout << "  (skipped " << skipped_lines
              << " malformed store line(s) — truncated write?)\n";
  }
  return 0;
}

int cmd_jobs_merge(const CliOptions& o) {
  if (o.store_file.empty()) {
    std::cerr << "jobs merge requires --store FILE\n";
    usage(2);
  }
  const auto records = exp::ResultStore::load(o.store_file);
  std::vector<exp::JobRecord> merged;
  if (!o.spec_file.empty()) {
    const auto spec = load_spec_or_die(o);
    const auto latest = exp::ResultStore::latest_by_job(records, spec.hash());
    for (std::size_t id = 0; id < spec.num_jobs(); ++id) {
      const auto it = latest.find(id);
      if (it != latest.end()) merged.push_back(it->second);
    }
  } else {
    // No spec: merge every (spec_hash, job_id) group in the store.
    std::unordered_map<std::string, std::size_t> index;
    for (const auto& r : records) {
      const std::string key = std::to_string(r.spec_hash) + ":" +
                              std::to_string(r.job_id);
      const auto it = index.find(key);
      if (it == index.end()) {
        index.emplace(key, merged.size());
        merged.push_back(r);
      } else {
        merged[it->second] = r;
      }
    }
    std::sort(merged.begin(), merged.end(),
              [](const exp::JobRecord& a, const exp::JobRecord& b) {
                return a.spec_hash != b.spec_hash ? a.spec_hash < b.spec_hash
                                                  : a.job_id < b.job_id;
              });
  }
  print_merged(merged, o.csv);
  std::cerr << "merged " << merged.size() << " job record(s)\n";
  return 0;
}

int cmd_jobs(const CliOptions& o) {
  if (o.subcommand == "run") return cmd_jobs_run(o);
  if (o.subcommand == "status") return cmd_jobs_status(o);
  if (o.subcommand == "merge") return cmd_jobs_merge(o);
  std::cerr << "jobs needs a subcommand: run | status | merge\n";
  usage(2);
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions o = parse(argc, argv);
  try {
    if (o.command == "generate") return cmd_generate(o);
    if (o.command == "simulate") return cmd_simulate(o);
    if (o.command == "sweep") return cmd_sweep(o);
    if (o.command == "analyze") return cmd_analyze(o);
    if (o.command == "jobs") return cmd_jobs(o);
  } catch (const core::IncrementalDivergence& e) {
    // --check-incremental tripped: always an engine bug, never bad input.
    std::cerr << "FATAL: " << e.what() << "\n";
    return 3;
  }
  usage(2);
}
