// Figure 15 (Appendix B): why partially-secure paths must not be preferred.
// Runs the message-level protocol engine on the paper's 6-AS network,
// injects m's false announcement (m, v), and reports p's chosen route under
// the paper's rule vs the flawed rule. Also runs origin-hijack experiments
// showing what the SecP tie-break can and cannot stop — those now execute
// on the scenario engine (the same declarative attack layer behind
// `sbgpsim scenario run`), with the message-level engine kept as a parity
// oracle: any disagreement between the two is a bug and aborts the bench.
#include <cstdlib>
#include <iostream>

#include "exp/json.h"
#include "proto/attack.h"
#include "scenario/engine.h"
#include "scenario/scenario_spec.h"
#include "stats/table.h"

namespace {

using namespace sbgp;

/// The run_origin_hijack gadget, rebuilt for the scenario engine: probe x
/// (ASN 1) on top, a customer chain of length vd down to the victim (ASNs
/// 100+i) and one of length ad down to the attacker (ASNs 200+i), with the
/// rank tie-break rigged so ties at the probe favour the attacker's side.
struct HijackGadget {
  topo::AsGraph g;
  std::vector<std::uint64_t> rank;
  topo::AsId x = 0, v = 0, m = 0;

  HijackGadget(std::size_t vd, std::size_t ad) {
    x = g.add_as(1);
    std::vector<topo::AsId> chain_v{x}, chain_m{x};
    for (std::size_t i = 0; i < vd; ++i) {
      const topo::AsId node = g.add_as(static_cast<std::uint32_t>(100 + i));
      g.add_customer_provider(chain_v.back(), node);
      chain_v.push_back(node);
    }
    for (std::size_t i = 0; i < ad; ++i) {
      const topo::AsId node = g.add_as(static_cast<std::uint32_t>(200 + i));
      g.add_customer_provider(chain_m.back(), node);
      chain_m.push_back(node);
    }
    g.finalize();
    v = chain_v.back();
    m = chain_m.back();
    rank.resize(g.num_nodes());
    for (topo::AsId i = 0; i < g.num_nodes(); ++i) rank[i] = g.asn(i) + 1000;
    rank[chain_m[1]] = 1;
  }
};

/// Evaluates the hijack on the scenario engine: is the probe's chosen
/// origin the attacker? `secure_everywhere` toggles plain BGP vs full
/// S*BGP-as-tiebreak deployment.
bool probe_fooled(const HijackGadget& gg, bool secure_everywhere) {
  // The attack spelled as the declarative spec it is: a fixed-list origin
  // hijack of ASN 100+vd-1 by ASN 200+ad-1 under the security tie-break.
  const auto sspec = scenario::ScenarioSpec::from_json(exp::Json::parse(
      R"({"attacks": ["hijack"], "policies": ["secure-tiebreak"],)"
      R"( "placements": ["fixed"], "attackers": [)" +
      std::to_string(gg.g.asn(gg.m)) + R"(], "victims": [)" +
      std::to_string(gg.g.asn(gg.v)) + "]}"));
  const scenario::Scenario point = sspec.expand().front();

  scenario::EngineConfig cfg;
  cfg.tiebreak.mode = rt::TieBreakPolicy::Mode::Rank;
  cfg.tiebreak.rank = &gg.rank;
  const scenario::ScenarioEngine engine(gg.g, cfg);
  const std::vector<std::uint8_t> secure(gg.g.num_nodes(),
                                         secure_everywhere ? 1 : 0);
  const auto pair = engine.sample_pairs(point).front();
  const auto origins = engine.chosen_origins(point, secure, pair.first, pair.second);
  return origins[gg.x] == gg.m;
}

}  // namespace

int main() {
  using namespace sbgp;
  std::cout << "=== Figure 15 - partially-secure path preference attack ===\n\n";

  const auto r = proto::run_partial_preference_attack();
  auto fmt_path = [](const std::vector<std::uint32_t>& p) {
    std::string s = "p";
    const char* names = "pqrsvm";
    for (const auto asn : p) {
      s += ' ';
      s += (asn >= 1 && asn <= 6) ? std::string(1, names[asn - 1])
                                  : std::to_string(asn);
    }
    return s;
  };
  stats::Table t({"route-selection rule", "p's chosen path", "hijacked by m?"});
  t.begin_row();
  t.add(std::string("fully-secure only (the paper's rule)"));
  t.add(fmt_path(r.path_ignore_partial));
  t.add(std::string(r.attack_succeeds_with_ignore ? "YES" : "no"));
  t.begin_row();
  t.add(std::string("prefer partially-secure (flawed)"));
  t.add(fmt_path(r.path_prefer_partial));
  t.add(std::string(r.attack_succeeds_with_partial ? "YES" : "no"));
  t.print(std::cout);
  std::cout << "paper: preferring partially-secure paths lets m fool p into "
               "routing (p,q,m,v); the fully-secure-only rule keeps the true "
               "route (p,r,s,v).\n";

  std::cout << "\n=== origin hijack: what the SecP tie-break stops ===\n\n";
  stats::Table h({"scenario", "true len", "lie len", "plain BGP fooled",
                  "S-BGP fooled"});
  struct Case {
    const char* name;
    std::size_t vd, ad;
  };
  for (const Case c : {Case{"equal-length lie", 3, 3},
                       Case{"shorter lie (LP/SP beat SecP)", 4, 2},
                       Case{"longer lie", 2, 4}}) {
    const HijackGadget gg(c.vd, c.ad);
    const bool fooled_bgp = probe_fooled(gg, /*secure_everywhere=*/false);
    const bool fooled_sbgp = probe_fooled(gg, /*secure_everywhere=*/true);

    // Parity oracle: the message-level protocol engine must agree with the
    // closed-form scenario engine on every case.
    const auto res = proto::run_origin_hijack(c.vd, c.ad);
    if (fooled_bgp != res.probe_fooled_bgp ||
        fooled_sbgp != res.probe_fooled_sbgp) {
      std::cerr << "PARITY FAILURE (" << c.name << "): scenario engine bgp="
                << fooled_bgp << " sbgp=" << fooled_sbgp
                << " vs proto engine bgp=" << res.probe_fooled_bgp
                << " sbgp=" << res.probe_fooled_sbgp << "\n";
      return 1;
    }

    h.begin_row();
    h.add(std::string(c.name));
    h.add(c.vd);
    h.add(c.ad);
    h.add(std::string(fooled_bgp ? "YES" : "no"));
    h.add(std::string(fooled_sbgp ? "YES" : "no"));
  }
  h.print(std::cout);
  std::cout << "paper: security is only a tie-break (Section 2.2.2), so a "
               "strictly shorter bogus route still wins — deliberately, to "
               "keep deployment incentive-compatible.\n";
  return 0;
}
