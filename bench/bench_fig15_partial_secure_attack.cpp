// Figure 15 (Appendix B): why partially-secure paths must not be preferred.
// Runs the message-level protocol engine on the paper's 6-AS network,
// injects m's false announcement (m, v), and reports p's chosen route under
// the paper's rule vs the flawed rule. Also runs origin-hijack experiments
// showing what the SecP tie-break can and cannot stop.
#include <iostream>

#include "proto/attack.h"
#include "stats/table.h"

int main() {
  using namespace sbgp;
  std::cout << "=== Figure 15 - partially-secure path preference attack ===\n\n";

  const auto r = proto::run_partial_preference_attack();
  auto fmt_path = [](const std::vector<std::uint32_t>& p) {
    std::string s = "p";
    const char* names = "pqrsvm";
    for (const auto asn : p) {
      s += ' ';
      s += (asn >= 1 && asn <= 6) ? std::string(1, names[asn - 1])
                                  : std::to_string(asn);
    }
    return s;
  };
  stats::Table t({"route-selection rule", "p's chosen path", "hijacked by m?"});
  t.begin_row();
  t.add(std::string("fully-secure only (the paper's rule)"));
  t.add(fmt_path(r.path_ignore_partial));
  t.add(std::string(r.attack_succeeds_with_ignore ? "YES" : "no"));
  t.begin_row();
  t.add(std::string("prefer partially-secure (flawed)"));
  t.add(fmt_path(r.path_prefer_partial));
  t.add(std::string(r.attack_succeeds_with_partial ? "YES" : "no"));
  t.print(std::cout);
  std::cout << "paper: preferring partially-secure paths lets m fool p into "
               "routing (p,q,m,v); the fully-secure-only rule keeps the true "
               "route (p,r,s,v).\n";

  std::cout << "\n=== origin hijack: what the SecP tie-break stops ===\n\n";
  stats::Table h({"scenario", "true len", "lie len", "plain BGP fooled",
                  "S-BGP fooled"});
  struct Case {
    const char* name;
    std::size_t vd, ad;
  };
  for (const Case c : {Case{"equal-length lie", 3, 3},
                       Case{"shorter lie (LP/SP beat SecP)", 4, 2},
                       Case{"longer lie", 2, 4}}) {
    const auto res = proto::run_origin_hijack(c.vd, c.ad);
    h.begin_row();
    h.add(std::string(c.name));
    h.add(res.true_path_len);
    h.add(res.false_path_len);
    h.add(std::string(res.probe_fooled_bgp ? "YES" : "no"));
    h.add(std::string(res.probe_fooled_sbgp ? "YES" : "no"));
  }
  h.print(std::cout);
  std::cout << "paper: security is only a tie-break (Section 2.2.2), so a "
               "strictly shorter bogus route still wins — deliberately, to "
               "keep deployment incentive-compatible.\n";
  return 0;
}
