file(REMOVE_RECURSE
  "CMakeFiles/oscillator_demo.dir/oscillator_demo.cpp.o"
  "CMakeFiles/oscillator_demo.dir/oscillator_demo.cpp.o.d"
  "oscillator_demo"
  "oscillator_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oscillator_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
