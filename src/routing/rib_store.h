// Structure-of-arrays store for the per-destination static RIBs (Obs. C.1:
// class/length/tiebreak structure are deployment-state independent, so each
// destination's RIB is computed once per graph and reused for every round
// and every hypothetical flip). Instead of N DestRib objects — 5N heap
// vectors scattered across the allocator — the store owns one slab per
// column (`cls`/`len`/`tb_begin`/`order`) sized N×N up front, plus an
// arena-pooled slab for the variable-length tiebreak column. Readers get a
// RibView of spans into the slabs; nothing is ever reallocated after
// construction, and a destination slot is populated exactly once.
//
// Concurrency contract (matching the simulator's per-destination fan-out):
// distinct destinations may be put()/view()ed from different workers
// concurrently — the fixed columns are disjoint ranges, and the tiebreak
// arena is bump-reserved under a short mutex. A single destination must not
// be put() twice or put() concurrently with its own view().
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "routing/arena.h"
#include "routing/rib.h"

namespace sbgp::rt {

class RibStore {
 public:
  /// Reserves the fixed column slabs for `graph.num_nodes()` destinations —
  /// the one big allocation; everything after is bump-pooled.
  explicit RibStore(const AsGraph& graph);

  /// Has destination `d` been stored? Synchronized by the caller's task
  /// barrier, like every per-destination slot here.
  [[nodiscard]] bool ready(AsId d) const { return ready_[d] != 0; }

  /// Copies `rib` into the slabs for destination `d`. Requirements:
  /// rib.dest == d, no impostor (hijack RIBs are per-attack, not cacheable
  /// here), and tiebreaks already sorted (sort_tiebreaks) — the store's
  /// whole point is that every later tree build takes the positional
  /// selection path.
  void put(AsId d, const DestRib& rib);

  /// View of a stored destination's columns.
  [[nodiscard]] RibView view(AsId d) const;

  /// Marks destination `d` unpopulated again so a later put() may overwrite
  /// its columns — used when a topology delta stales the stored RIB. The old
  /// tiebreak slice is abandoned in the arena (it bump-allocates; reclaiming
  /// would need a compaction pass), so the pool grows by one slice per
  /// invalidated-then-recomputed destination — bounded by the number of
  /// topology mutations served, not by rounds.
  void invalidate(AsId d) { ready_[d] = 0; }

  /// Heap footprint of the fixed slabs + tiebreak pool, for budget checks
  /// and the memory-per-AS accounting in the docs.
  [[nodiscard]] std::size_t bytes_reserved() const;

 private:
  std::size_t n_ = 0;
  std::vector<RouteClass> cls_;          ///< n_ * n_
  std::vector<std::uint16_t> len_;       ///< n_ * n_
  std::vector<std::uint32_t> tb_begin_;  ///< n_ * (n_ + 1)
  std::vector<AsId> order_;              ///< n_ * n_ (first order_len_[d] valid)
  std::vector<std::uint32_t> order_len_;
  std::vector<const AsId*> tb_data_;     ///< per-destination tiebreak slab slice
  std::vector<std::uint32_t> tb_len_;
  std::vector<std::uint8_t> ready_;
  Arena tb_arena_;
  std::mutex tb_mutex_;  ///< guards tb_arena_ reservation only
};

}  // namespace sbgp::rt
