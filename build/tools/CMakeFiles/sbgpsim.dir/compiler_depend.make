# Empty compiler generated dependencies file for sbgpsim.
# This may be replaced when dependencies are built.
