// Attack-resilience quantification under partial deployment — the follow-up
// the paper flags in Section 6.4 ("quantifying this requires approaches
// similar to [15, 8], an important direction for future work") and the
// baseline quoted in Section 2.2.1 ("an arbitrary misbehaving AS can impact
// about half of the ASes in the Internet on average").
//
// Attack model ([15]): the attacker originates the victim's prefix as its
// own (one-hop origin hijack). Every AS then selects between routes to the
// true origin and routes to the impostor under the usual LP > SP > SecP > TB
// policies; the bogus origin can never anchor a *fully secure* path, so
// secure sources with an equally-good legitimate secure route stay safe —
// but LP and path length still rank above security (Section 2.2.2), so
// strictly better bogus routes win even under full deployment.
#pragma once

#include <cstdint>
#include <vector>

#include "core/simulator.h"
#include "parallel/thread_pool.h"
#include "stats/histogram.h"
#include "topology/as_graph.h"

namespace sbgp::core {

struct ResilienceResult {
  std::size_t pairs = 0;             ///< sampled (attacker, victim) pairs
  stats::Summary fooled_fraction;    ///< per pair: fraction of other ASes hijacked
  stats::Summary fooled_weight;      ///< per pair: hijacked traffic-weight fraction
  /// Mean fraction of ASes fooled across pairs.
  [[nodiscard]] double mean_fooled() const { return fooled_fraction.mean(); }
};

/// Samples `samples` uniform (attacker, victim) pairs and measures, for the
/// deployment state `secure`, the fraction of ASes whose chosen route for
/// the victim's prefix leads to the attacker. Uses the tie-break and stub
/// policies from `cfg`.
[[nodiscard]] ResilienceResult measure_resilience(
    const topo::AsGraph& graph, const std::vector<std::uint8_t>& secure,
    const SimConfig& cfg, std::size_t samples, std::uint64_t seed,
    par::ThreadPool& pool);

/// Detailed single-pair probe: fraction of ASes fooled when `attacker`
/// hijacks `victim`'s prefix.
[[nodiscard]] double hijack_impact(const topo::AsGraph& graph,
                                   const std::vector<std::uint8_t>& secure,
                                   const SimConfig& cfg, topo::AsId attacker,
                                   topo::AsId victim);

}  // namespace sbgp::core
