// Synthetic Internet-like AS topology generator: the drop-in substitute for
// the Cyclops Dec-2010 AS graph + IXP edges the paper simulates on
// (Section 4, Appendix D). It reproduces the structural properties the
// deployment dynamics depend on:
//   - a Tier-1 clique with no providers,
//   - a tiered ISP hierarchy with preferential (rich-get-richer) provider
//     attachment, yielding a heavily skewed degree distribution,
//   - ~85% stubs, a configurable fraction of which are multi-homed (the
//     source of the tiebreak-set competition of Section 6.6),
//   - five designated content providers,
//   - IXP peering augmentation (the +16K peering edges of [3]) and the
//     CP-peering "augmented graph" of Appendix D.
// Everything is deterministic given `seed`.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "topology/as_graph.h"

namespace sbgp::topo {

/// Generator parameters. Defaults produce a graph whose class mix matches
/// the paper's empirical numbers (85% stubs, ~15% ISPs, 5 CPs).
struct InternetConfig {
  /// Total number of ASes (including stubs, ISPs, Tier-1s and CPs).
  std::uint32_t total_ases = 5000;
  /// Number of Tier-1 ASes (fully peered clique, no providers).
  std::uint32_t num_tier1 = 10;
  /// Number of designated content providers.
  std::uint32_t num_content_providers = 5;
  /// Fraction of ASes that are transit ISPs (including Tier-1s).
  double isp_fraction = 0.15;
  /// Number of mid-tier ISP levels below the Tier-1 layer.
  std::uint32_t isp_levels = 3;
  /// Probability that a stub has 2 (respectively 3) providers. The paper's
  /// dynamics hinge on multi-homed stubs: they create the DIAMOND
  /// competition of Section 5.1.
  double stub_two_provider_prob = 0.35;
  double stub_three_provider_prob = 0.10;
  /// Probability that a mid-tier ISP has 2 (resp. 3) providers.
  double isp_two_provider_prob = 0.45;
  double isp_three_provider_prob = 0.20;
  /// Expected number of peering attempts per mid-tier ISP.
  double isp_peer_attempts = 1.5;
  /// Base-graph peering of each content provider, as a fraction of the ISP
  /// population (real CPs peer widely even before the Appendix D
  /// augmentation: Google/Akamai have degrees in the hundreds in Cyclops).
  double cp_peer_fraction = 0.08;
  /// Fraction of ISPs that are IXP members (candidates for peering
  /// augmentation per [3]).
  double ixp_member_fraction = 0.30;
  /// Extra random peer edges added among IXP members, as a fraction of
  /// total_ases (the paper added 16K edges to a 36K graph ~ 0.43).
  double ixp_extra_peer_fraction = 0.43;
  /// PRNG seed; same seed + same config => identical graph.
  std::uint64_t seed = 42;
};

/// A generated topology plus the designated special-node sets.
struct Internet {
  AsGraph graph;
  std::vector<AsId> tier1;        ///< Tier-1 clique, descending degree.
  std::vector<AsId> cps;          ///< content providers.
  std::vector<AsId> ixp_members;  ///< ASes present at IXPs.
};

/// Generates a finalized Internet-like topology. Throws on infeasible
/// configs (e.g. more Tier-1s than ISPs).
[[nodiscard]] Internet generate_internet(const InternetConfig& config);

/// Appendix D "augmented graph": connects every content provider by peer
/// edges to `fraction` of the IXP members (the paper used 80%, bringing CP
/// degree up to Tier-1 levels and average CP path length down to ~2).
/// Must be applied before `graph.finalize()` is NOT possible — instead this
/// rebuilds the graph with the extra edges and returns the augmented copy.
/// Returns the number of peer edges added via `added_out` when non-null.
[[nodiscard]] Internet augment_cp_peering(const Internet& base, double fraction,
                                          std::uint64_t seed,
                                          std::size_t* added_out = nullptr);

/// Returns the `k` highest-degree ISPs (used for "top-k degree" early
/// adopter sets, cf. Figure 8).
[[nodiscard]] std::vector<AsId> top_degree_isps(const AsGraph& graph, std::size_t k);

}  // namespace sbgp::topo
