// Per-destination static routing information (Observation C.1): under the
// Gao–Rexford policies of Appendix A (LP: customer > peer > provider; SP:
// shortest; then SecP/TB), the *class* and *length* of every AS's best route
// to a destination — and hence the tiebreak set of candidate next hops — are
// independent of the deployment state S. This module computes that static
// RIB with a three-phase BFS in O(|V|+|E|) per destination.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "stats/histogram.h"
#include "topology/as_graph.h"

namespace sbgp::rt {

using topo::AsGraph;
using topo::AsId;
using topo::kNoAs;

/// Local-preference class of a chosen route (Appendix A). Order matters:
/// smaller enum value = more preferred.
enum class RouteClass : std::uint8_t {
  Self = 0,      ///< the destination itself
  Customer = 1,  ///< next hop is a customer
  Peer = 2,      ///< next hop is a peer
  Provider = 3,  ///< next hop is a provider
  None = 4,      ///< no route (destination unreachable under GR2)
};

[[nodiscard]] const char* to_string(RouteClass c);

/// The static per-destination RIB: for every AS, the chosen route class,
/// length, and the tiebreak set (all equally-good next hops, i.e. the set
/// over which the SecP criterion of Section 2.2.2 operates).
///
/// Two-origin (hijack) mode: when `impostor != kNoAs` the RIB models an
/// attacker announcing the destination's prefix as its own — both `dest`
/// and `impostor` originate, and every AS's chosen route leads to whichever
/// origin its policies prefer (the [15] attack model used to quantify
/// resilience under partial deployment).
///
/// `impostor_len` generalizes the forged announcement: the attacker claims a
/// path of that length to the true origin instead of originating the prefix
/// itself. 0 is the plain origin hijack; k > 0 models a k-hop interception /
/// path-shortening attack (and a protocol downgrade when k is the attacker's
/// genuine route length with security attributes stripped). The impostor's
/// own label is pinned at `impostor_len` — its neighbours hear length
/// `impostor_len + 1`.
struct DestRib {
  AsId dest = kNoAs;
  AsId impostor = kNoAs;
  std::uint16_t impostor_len = 0;
  std::vector<RouteClass> cls;       ///< per node
  std::vector<std::uint16_t> len;    ///< chosen route length (0 for dest)
  std::vector<std::uint32_t> tb_begin;  ///< per node offset into `tb` (size N+1)
  std::vector<AsId> tb;              ///< flattened tiebreak sets

  /// Tiebreak set of node `n` (empty when unreachable or n == dest).
  [[nodiscard]] std::span<const AsId> tiebreak(AsId n) const {
    return std::span<const AsId>(tb).subspan(tb_begin[n], tb_begin[n + 1] - tb_begin[n]);
  }

  /// True once rt::sort_tiebreaks has ordered every tiebreak set ascending
  /// by its owner's intradomain tie-break key. Routing-tree computations
  /// then select winners by position instead of hashing every candidate —
  /// the tie-break keys, like everything else in this RIB, are
  /// state-independent (Obs. C.1), so sorting once pays off every time the
  /// RIB is reused across rounds. Reset by RibComputer::compute.
  bool tb_sorted = false;

  /// Nodes with a route, ascending by chosen length; order[0] == dest.
  /// This is the processing order of the fast routing tree algorithm.
  std::vector<AsId> order;

  [[nodiscard]] bool reachable(AsId n) const { return cls[n] != RouteClass::None; }

  /// Number of ASes with a route to the destination (including the
  /// destination itself) — the per-destination reachability count used by the
  /// incremental engine's coverage reporting.
  [[nodiscard]] std::size_t num_reachable() const { return order.size(); }
};

/// Non-owning view of one destination's static RIB columns. This is the
/// read-side currency of the routing layer: every consumer (tree builds,
/// utility folds, footprint queries) takes a RibView, so a RIB can live
/// either in a standalone DestRib or in the slab-pooled rt::RibStore without
/// the call sites caring. Implicitly constructible from a DestRib; cheap to
/// copy (a handful of spans).
struct RibView {
  AsId dest = kNoAs;
  AsId impostor = kNoAs;
  std::uint16_t impostor_len = 0;
  bool tb_sorted = false;
  std::span<const RouteClass> cls;
  std::span<const std::uint16_t> len;
  std::span<const std::uint32_t> tb_begin;  ///< size N+1
  std::span<const AsId> tb;
  std::span<const AsId> order;

  RibView() = default;
  RibView(const DestRib& r)  // NOLINT(google-explicit-constructor)
      : dest(r.dest),
        impostor(r.impostor),
        impostor_len(r.impostor_len),
        tb_sorted(r.tb_sorted),
        cls(r.cls),
        len(r.len),
        tb_begin(r.tb_begin),
        tb(r.tb),
        order(r.order) {}

  [[nodiscard]] std::span<const AsId> tiebreak(AsId n) const {
    return tb.subspan(tb_begin[n], tb_begin[n + 1] - tb_begin[n]);
  }
  [[nodiscard]] bool reachable(AsId n) const { return cls[n] != RouteClass::None; }
  [[nodiscard]] std::size_t num_reachable() const { return order.size(); }
};

/// Reusable RIB computer; keeps O(|V|) scratch buffers so repeated calls
/// allocate nothing. One instance per thread.
class RibComputer {
 public:
  explicit RibComputer(const AsGraph& graph);

  /// Computes the static RIB for destination `dest` into `out` (reused).
  /// When `impostor != kNoAs`, computes the two-origin hijack RIB; the
  /// impostor's announcement claims a path of `impostor_len` hops to the
  /// origin (0 = forged origination, see DestRib).
  void compute(AsId dest, DestRib& out, AsId impostor = kNoAs,
               std::uint16_t impostor_len = 0);

  /// Convenience allocation-per-call variant.
  [[nodiscard]] DestRib compute(AsId dest, AsId impostor = kNoAs,
                                std::uint16_t impostor_len = 0);

 private:
  const AsGraph& graph_;
  std::vector<std::uint16_t> cust_len_;
  std::vector<std::uint16_t> chosen_len_;
  std::vector<RouteClass> cls_;
  std::vector<AsId> queue_;
  std::vector<std::vector<AsId>> buckets_;
};

/// Average AS-path length from `src` to every reachable destination, using
/// each destination's chosen-route length (used for Table 3). O(N * (V+E)).
[[nodiscard]] double average_path_length_from(const AsGraph& graph, AsId src);

/// AS-path-length profile under the Appendix A policies: route lengths from
/// every source toward `sample_destinations` uniformly sampled destinations.
struct PathLengthStats {
  stats::IntHistogram histogram;
  double mean = 0.0;
  std::uint64_t p90 = 0;
  std::uint64_t unreachable_pairs = 0;
};

[[nodiscard]] PathLengthStats sample_path_lengths(const AsGraph& graph,
                                                  std::size_t sample_destinations,
                                                  std::uint64_t seed);

}  // namespace sbgp::rt
