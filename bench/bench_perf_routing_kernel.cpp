// Appendix C performance: microbenchmarks of the simulation kernels. The
// paper's optimized C# implementation computed one routing tree in ~2 ms at
// |V| = 36K on cluster hardware; these timings report the equivalent kernels
// here (per destination).
//
// Self-timed harness (no Google Benchmark): the distro's libbenchmark ships
// as a Debug build and stamps `"library_build_type": "debug"` into every
// context it emits, which tools/run_bench.sh rightly refuses to commit. The
// loop below reproduces the part of gbench these kernels actually need —
// adaptive batching to a minimum wall time, best-batch reporting — and emits
// the same benchmark names into the JsonOut document, with an honest
// build-type context (bench_common.h).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/simulator.h"
#include "parallel/thread_pool.h"
#include "routing/rib.h"
#include "routing/routing_tree.h"
#include "topology/topology_gen.h"

namespace {

using namespace sbgp;

template <class T>
inline void do_not_optimize(const T& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

topo::Internet& internet(std::uint32_t nodes) {
  static std::map<std::uint32_t, topo::Internet> cache;
  auto it = cache.find(nodes);
  if (it == cache.end()) {
    topo::InternetConfig cfg;
    cfg.total_ases = nodes;
    cfg.seed = 42;
    it = cache.emplace(nodes, topo::generate_internet(cfg)).first;
    topo::apply_traffic_model(it->second.graph, it->second.cps, 0.10);
  }
  return it->second;
}

/// Times `fn` (one iteration per call) in adaptively-sized batches until
/// `min_ms` of measured wall time has accumulated, and returns the best
/// (minimum) per-iteration nanoseconds across batches — the standard
/// microbench estimator for the operation's undisturbed cost.
double time_ns_per_iter(double min_ms, const std::function<void()>& fn) {
  using clock = std::chrono::steady_clock;
  fn();  // warm-up: page in code and reach steady arena shapes
  std::uint64_t batch = 1;
  double best = std::numeric_limits<double>::infinity();
  double total_ms = 0.0;
  while (total_ms < min_ms) {
    const auto t0 = clock::now();
    for (std::uint64_t i = 0; i < batch; ++i) fn();
    const double ns =
        std::chrono::duration<double, std::nano>(clock::now() - t0).count();
    total_ms += ns * 1e-6;
    best = std::min(best, ns / static_cast<double>(batch));
    // Grow batches until one spans ~10 ms so the clock reads stop mattering.
    if (ns < 10e6) batch *= 2;
  }
  return best;
}

struct Harness {
  bench::Options opt;
  bench::JsonOut json;

  explicit Harness(const bench::Options& o) : opt(o), json(o) {}

  /// Filter probe — callers check BEFORE setup so a filtered smoke run
  /// (tools/run_tier1.sh) never pays for topologies it will not time.
  [[nodiscard]] bool want(const std::string& name) const {
    return opt.filter.empty() || name.find(opt.filter) != std::string::npos;
  }

  void run(const std::string& name, const char* unit,
           const std::function<void()>& fn) {
    if (!want(name)) return;
    const double ns = time_ns_per_iter(opt.min_ms, fn);
    const double value = std::string(unit) == "ms" ? ns * 1e-6 : ns;
    if (!opt.quiet) {
      std::printf("%-34s %14.1f %s\n", name.c_str(), value, unit);
    }
    json.add(name, value, unit);
  }
};

void bench_rib_compute(Harness& h, std::uint32_t nodes) {
  const std::string name = "BM_RibCompute/" + std::to_string(nodes);
  if (!h.want(name)) return;
  const auto& net = internet(nodes);
  rt::RibComputer rc(net.graph);
  rt::DestRib rib;
  std::mt19937_64 rng(1);
  std::uniform_int_distribution<topo::AsId> pick(
      0, static_cast<topo::AsId>(net.graph.num_nodes() - 1));
  h.run(name, "ns", [&] {
    rc.compute(pick(rng), rib);
    do_not_optimize(rib.order.size());
  });
}

/// The simulator's steady-state per-tree path: slab-stored RIB with
/// pre-sorted tiebreaks (positional winner selection) and a word-packed
/// secure mask built once and shared across trees. This is what every
/// (destination, round) and every Eq. 3 projection pays after warm-up.
void bench_fast_tree(Harness& h, std::uint32_t nodes) {
  const std::string name = "BM_FastRoutingTree/" + std::to_string(nodes);
  if (!h.want(name)) return;
  const auto& net = internet(nodes);
  rt::RibComputer rc(net.graph);
  rt::TreeComputer tc(net.graph);
  rt::TieBreakPolicy tb;
  rt::DestRib rib;
  rt::RoutingTree tree;
  std::vector<std::uint8_t> secure(net.graph.num_nodes(), 0);
  for (topo::AsId n = 0; n < net.graph.num_nodes(); ++n) secure[n] = n % 3 == 0;
  rt::SecurityView view;
  view.graph = &net.graph;
  view.base = secure.data();
  rt::Arena arena;
  rt::SecureMask mask;
  mask.build(view, arena);
  rc.compute(0, rib);
  rt::sort_tiebreaks(net.graph, tb, rib);
  const rt::RibView rv(rib);
  h.run(name, "ns", [&] {
    tc.compute(rv, mask, tb, tree);
    do_not_optimize(tree.subtree_weight[0]);
  });
}

/// The pre-slab shape of the same computation: unsorted tiebreaks (the
/// winner is re-hashed per candidate) and the branchy per-node security
/// predicate snapshotted on every call. Kept as the honest baseline for the
/// BM_FastRoutingTree speedup claims in EXPERIMENTS.md.
void bench_cold_tree(Harness& h, std::uint32_t nodes) {
  const std::string name = "BM_RoutingTreeColdStart/" + std::to_string(nodes);
  if (!h.want(name)) return;
  const auto& net = internet(nodes);
  rt::RibComputer rc(net.graph);
  rt::TreeComputer tc(net.graph);
  rt::TieBreakPolicy tb;
  rt::DestRib rib;
  rt::RoutingTree tree;
  std::vector<std::uint8_t> secure(net.graph.num_nodes(), 0);
  for (topo::AsId n = 0; n < net.graph.num_nodes(); ++n) secure[n] = n % 3 == 0;
  rt::SecurityView view;
  view.graph = &net.graph;
  view.base = secure.data();
  rc.compute(0, rib);
  h.run(name, "ns", [&] {
    tc.compute(rib, view, tb, tree);
    do_not_optimize(tree.subtree_weight[0]);
  });
}

void bench_utilities(Harness& h, std::uint32_t nodes) {
  const std::string name = "BM_UtilityAllDestinations/" + std::to_string(nodes);
  if (!h.want(name)) return;
  const auto& net = internet(nodes);
  core::SimConfig cfg;
  cfg.threads = 1;
  par::ThreadPool pool(1);
  std::vector<std::uint8_t> secure(net.graph.num_nodes(), 0);
  h.run(name, "ms", [&] {
    const auto u = core::compute_utilities(net.graph, secure, cfg, pool);
    do_not_optimize(u.outgoing[0]);
  });
}

void bench_full_round(Harness& h, std::uint32_t nodes) {
  const std::string name = "BM_FullDeploymentRound/" + std::to_string(nodes);
  if (!h.want(name)) return;
  auto& net = internet(nodes);
  core::SimConfig cfg;
  cfg.theta = 0.05;
  cfg.threads = 1;
  cfg.max_rounds = 1;  // exactly one evaluated round per run()
  std::vector<topo::AsId> adopters = topo::top_degree_isps(net.graph, 5);
  for (const auto cp : net.cps) adopters.push_back(cp);
  core::DeploymentSimulator sim(net.graph, cfg);
  const auto initial = core::DeploymentState::initial(net.graph, adopters);
  h.run(name, "ms", [&] {
    const auto result = sim.run(initial);
    do_not_optimize(result.rounds.size());
  });
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  Harness h(opt);
  if (!opt.quiet) {
    std::printf("routing-kernel microbenchmarks (build: %s, min time %.0f ms "
                "per bench)\n",
                bench::library_build_type(), opt.min_ms);
  }
  for (const std::uint32_t n : {1000u, 3000u, 8000u}) bench_rib_compute(h, n);
  for (const std::uint32_t n : {1000u, 3000u, 8000u, 10000u, 20000u, 36964u}) {
    bench_fast_tree(h, n);
  }
  for (const std::uint32_t n : {1000u, 3000u, 8000u, 10000u, 20000u, 36964u}) {
    bench_cold_tree(h, n);
  }
  for (const std::uint32_t n : {1000u, 3000u}) bench_utilities(h, n);
  for (const std::uint32_t n : {1000u, 2000u}) bench_full_round(h, n);
  return 0;
}
