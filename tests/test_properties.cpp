// Cross-module property tests swept over seeds: the structural invariants
// the whole reproduction rests on, checked on freshly generated graphs and
// random deployment states rather than hand-picked instances.
#include <gtest/gtest.h>

#include <random>

#include "core/analysis.h"
#include "core/simulator.h"
#include "routing/rib.h"
#include "routing/routing_tree.h"
#include "test_util.h"

namespace sbgp {
namespace {

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

// Every reachable node has a consistent (class, length, tiebreak) triple:
// candidates really are one hop closer and of the class GR2 permits.
TEST_P(SeedSweep, RibInternalConsistency) {
  const auto net = test::small_internet(250, GetParam());
  const auto& g = net.graph;
  rt::RibComputer rc(g);
  rt::DestRib rib;
  for (topo::AsId d = 0; d < 25; ++d) {
    rc.compute(d, rib);
    for (const topo::AsId i : rib.order) {
      if (i == d) continue;
      const auto tb = rib.tiebreak(i);
      ASSERT_FALSE(tb.empty()) << "reachable node without candidates";
      for (const topo::AsId j : tb) {
        ASSERT_TRUE(rib.reachable(j));
        EXPECT_EQ(rib.len[j] + 1, rib.len[i])
            << "candidate not one hop closer (AS " << g.asn(i) << ")";
        topo::Link link;
        ASSERT_TRUE(g.link_between(i, j, link));
        // Candidate relationship must match the route class.
        switch (rib.cls[i]) {
          case rt::RouteClass::Customer:
            EXPECT_EQ(link, topo::Link::Customer);
            break;
          case rt::RouteClass::Peer:
            EXPECT_EQ(link, topo::Link::Peer);
            // GR2: a peer only exports customer routes.
            EXPECT_TRUE(rib.cls[j] == rt::RouteClass::Customer ||
                        rib.cls[j] == rt::RouteClass::Self);
            break;
          case rt::RouteClass::Provider:
            EXPECT_EQ(link, topo::Link::Provider);
            break;
          default:
            FAIL();
        }
      }
    }
  }
}

// Total conservation: for each destination, the subtree weights at the
// destination equal the total weight of all routed nodes.
TEST_P(SeedSweep, SubtreeWeightsConserveTraffic) {
  const auto net = test::small_internet(250, GetParam());
  const auto& g = net.graph;
  const auto state = test::random_state(g, 0.3, GetParam() + 5);
  rt::RibComputer rc(g);
  rt::TreeComputer tc(g);
  rt::TieBreakPolicy tb;
  rt::DestRib rib;
  rt::RoutingTree tree;
  rt::SecurityView view;
  view.graph = &g;
  view.base = state.flags().data();
  for (topo::AsId d = 0; d < 15; ++d) {
    rc.compute(d, rib);
    tc.compute(rib, view, tb, tree);
    double total = 0.0;
    for (const topo::AsId i : rib.order) total += g.weight(i);
    EXPECT_NEAR(tree.subtree_weight[d], total, 1e-6);
  }
}

// path_secure is exactly "every AS on the realised path is secure".
TEST_P(SeedSweep, PathSecureMatchesPathMembership) {
  const auto net = test::small_internet(220, GetParam());
  const auto& g = net.graph;
  const auto state = test::random_state(g, 0.5, GetParam() + 11);
  rt::RibComputer rc(g);
  rt::TreeComputer tc(g);
  rt::TieBreakPolicy tb;
  rt::DestRib rib;
  rt::RoutingTree tree;
  rt::SecurityView view;
  view.graph = &g;
  view.base = state.flags().data();
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<topo::AsId> pick(
      0, static_cast<topo::AsId>(g.num_nodes() - 1));
  for (int t = 0; t < 10; ++t) {
    const topo::AsId d = pick(rng);
    rc.compute(d, rib);
    tc.compute(rib, view, tb, tree);
    for (int st = 0; st < 40; ++st) {
      const topo::AsId src = pick(rng);
      if (src == d || !rib.reachable(src)) continue;
      const auto path = rt::TreeComputer::extract_path(tree, src);
      bool all_secure = true;
      for (const topo::AsId hop : path) {
        if (!state.is_secure(hop)) all_secure = false;
      }
      EXPECT_EQ(tree.path_secure[src] != 0, all_secure)
          << "src AS " << g.asn(src) << " dest AS " << g.asn(d);
    }
  }
}

// Securing more ASes never shrinks the secure-path count (monotonicity of
// the Fig. 9 metric in the state).
TEST_P(SeedSweep, SecurePathCountMonotoneInState) {
  const auto net = test::small_internet(200, GetParam());
  core::SimConfig cfg;
  cfg.threads = 1;
  par::ThreadPool pool(1);
  auto small = test::random_state(net.graph, 0.3, GetParam() + 3);
  auto big = small;
  for (topo::AsId n = 0; n < net.graph.num_nodes(); ++n) {
    if (net.graph.is_isp(n) && !big.is_secure(n) && n % 3 == 0) {
      big.secure_isp_with_stubs(net.graph, n);
    }
  }
  const auto a = core::count_secure_paths(net.graph, small.flags(), cfg, pool);
  const auto b = core::count_secure_paths(net.graph, big.flags(), cfg, pool);
  EXPECT_GE(b.secure_pairs, a.secure_pairs);
}

// The deployment process is deterministic: same graph, same adopters, same
// config => identical round-by-round trajectory.
TEST_P(SeedSweep, SimulationIsDeterministic) {
  const auto net = test::small_internet(220, GetParam());
  core::SimConfig cfg;
  cfg.theta = 0.05;
  cfg.threads = 1;
  const auto adopters = topo::top_degree_isps(net.graph, 4);
  core::DeploymentSimulator sim1(net.graph, cfg);
  core::DeploymentSimulator sim2(net.graph, cfg);
  const auto r1 = sim1.run(core::DeploymentState::initial(net.graph, adopters));
  const auto r2 = sim2.run(core::DeploymentState::initial(net.graph, adopters));
  EXPECT_TRUE(r1.final_state == r2.final_state);
  ASSERT_EQ(r1.rounds.size(), r2.rounds.size());
  for (std::size_t i = 0; i < r1.rounds.size(); ++i) {
    EXPECT_EQ(r1.rounds[i].newly_secure_isps, r2.rounds[i].newly_secure_isps);
    EXPECT_EQ(r1.rounds[i].total_secure_ases, r2.rounds[i].total_secure_ases);
  }
}

// Thread count must not change results (the parallel reduction is exact).
TEST_P(SeedSweep, ThreadCountInvariance) {
  const auto net = test::small_internet(200, GetParam());
  const auto state = test::random_state(net.graph, 0.4, GetParam() + 1);
  core::SimConfig cfg;
  par::ThreadPool one(1), four(4);
  const auto a = core::compute_utilities(net.graph, state.flags(), cfg, one);
  const auto b = core::compute_utilities(net.graph, state.flags(), cfg, four);
  for (topo::AsId n = 0; n < net.graph.num_nodes(); ++n) {
    EXPECT_DOUBLE_EQ(a.outgoing[n], b.outgoing[n]);
    EXPECT_DOUBLE_EQ(a.incoming[n], b.incoming[n]);
  }
}

// Stubs never transit: no routing tree ever has a stub as an interior node.
TEST_P(SeedSweep, StubsNeverTransit) {
  const auto net = test::small_internet(220, GetParam());
  const auto& g = net.graph;
  rt::RibComputer rc(g);
  rt::TreeComputer tc(g);
  rt::TieBreakPolicy tb;
  rt::DestRib rib;
  rt::RoutingTree tree;
  const auto state = test::random_state(g, 0.5, GetParam());
  rt::SecurityView view;
  view.graph = &g;
  view.base = state.flags().data();
  for (topo::AsId d = 0; d < 20; ++d) {
    rc.compute(d, rib);
    tc.compute(rib, view, tb, tree);
    for (const topo::AsId i : rib.order) {
      if (i == d) continue;
      const topo::AsId parent = tree.next_hop[i];
      if (parent != d) {
        EXPECT_FALSE(g.is_stub(parent))
            << "stub AS " << g.asn(parent) << " transits traffic";
      }
    }
  }
}

// Eq. 1 / Eq. 2 sanity: total outgoing utility across ISPs equals the
// total customer-edge traffic, which is bounded by total * diameter.
TEST_P(SeedSweep, UtilityTotalsAreFinite) {
  const auto net = test::small_internet(200, GetParam());
  core::SimConfig cfg;
  par::ThreadPool pool(1);
  std::vector<std::uint8_t> nobody(net.graph.num_nodes(), 0);
  const auto u = core::compute_utilities(net.graph, nobody, cfg, pool);
  double total_out = 0.0, total_in = 0.0;
  for (topo::AsId n = 0; n < net.graph.num_nodes(); ++n) {
    EXPECT_GE(u.outgoing[n], 0.0);
    EXPECT_GE(u.incoming[n], 0.0);
    total_out += u.outgoing[n];
    total_in += u.incoming[n];
    if (net.graph.is_stub(n)) {
      EXPECT_DOUBLE_EQ(u.outgoing[n], 0.0) << "stubs transit nothing";
    }
  }
  const double bound =
      net.graph.total_weight() * static_cast<double>(net.graph.num_nodes()) * 12.0;
  EXPECT_LT(total_out, bound);
  EXPECT_LT(total_in, bound);
  EXPECT_GT(total_in, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace sbgp
