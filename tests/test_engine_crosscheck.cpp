// Integration test: the message-level protocol engine and the closed-form
// routing library are independent implementations of the same routing
// semantics (Appendix A policies + SecP). On attack-free runs they must
// select identical next hops for every AS, for both S-BGP and soBGP, for
// full and simplex deployments — and the engine must converge (Lemma G.1).
#include <gtest/gtest.h>

#include <random>

#include "proto/engine.h"
#include "routing/rib.h"
#include "routing/routing_tree.h"
#include "test_util.h"

namespace sbgp::proto {
namespace {

struct CrossParam {
  std::uint64_t seed;
  double secure_fraction;
  SecurityMode mode;
  bool stub_ties;
};

class EngineCrossCheck : public ::testing::TestWithParam<CrossParam> {};

TEST_P(EngineCrossCheck, EngineMatchesClosedFormRouting) {
  const auto param = GetParam();
  const auto net = test::small_internet(220, param.seed);
  const auto& g = net.graph;
  const auto state = test::random_state(g, param.secure_fraction, param.seed + 77);

  // Engine-side security postures: secure stubs run simplex, other secure
  // ASes run full S*BGP.
  std::vector<NodeSecurity> posture(g.num_nodes(), NodeSecurity::Insecure);
  for (topo::AsId n = 0; n < g.num_nodes(); ++n) {
    if (!state.is_secure(n)) continue;
    posture[n] = g.is_stub(n) ? NodeSecurity::Simplex : NodeSecurity::Full;
  }

  EngineConfig ecfg;
  ecfg.mode = param.mode;
  ecfg.stub_breaks_ties = param.stub_ties;
  BgpEngine engine(g, posture, ecfg);

  rt::RibComputer rc(g);
  rt::TreeComputer tc(g);
  rt::TieBreakPolicy tb;
  rt::SecurityView view;
  view.graph = &g;
  // Plain BGP carries no attestations at all: its closed-form equivalent is
  // the all-insecure state regardless of who holds RPKI keys.
  const std::vector<std::uint8_t> nobody(g.num_nodes(), 0);
  view.base = param.mode == SecurityMode::BgpOnly ? nobody.data()
                                                  : state.flags().data();
  view.stub_breaks_ties = param.stub_ties;
  rt::DestRib rib;
  rt::RoutingTree tree;

  std::mt19937_64 rng(param.seed);
  std::uniform_int_distribution<topo::AsId> pick(
      0, static_cast<topo::AsId>(g.num_nodes() - 1));
  for (int trial = 0; trial < 12; ++trial) {
    const topo::AsId dest = pick(rng);
    ASSERT_TRUE(engine.run(dest)) << "engine failed to converge (Lemma G.1!)";
    rc.compute(dest, rib);
    tc.compute(rib, view, tb, tree);

    for (const topo::AsId n : rib.order) {
      if (n == dest) continue;
      const NodeRoute& er = engine.route(n);
      ASSERT_EQ(er.cls, rib.cls[n])
          << "class mismatch at AS " << g.asn(n) << " dest " << g.asn(dest);
      ASSERT_EQ(er.path.size(), rib.len[n]) << "length mismatch at AS " << g.asn(n);
      EXPECT_EQ(er.next_hop, tree.next_hop[n])
          << "next-hop mismatch at AS " << g.asn(n) << " dest " << g.asn(dest);
      // Security verdicts agree: the engine's fully-secure flag for n's
      // chosen route equals path_secure && n's own security (the closed
      // form includes the source; the engine scores the received path).
      const bool engine_secure =
          er.fully_secure() && state.is_secure(n);
      const bool closed_secure = tree.path_secure[n] != 0;
      if (view.applies_secp(n)) {
        EXPECT_EQ(engine_secure, closed_secure)
            << "security verdict mismatch at AS " << g.asn(n);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineCrossCheck,
    ::testing::Values(CrossParam{1, 0.0, SecurityMode::SBgp, true},
                      CrossParam{2, 0.3, SecurityMode::SBgp, true},
                      CrossParam{3, 0.7, SecurityMode::SBgp, true},
                      CrossParam{4, 1.0, SecurityMode::SBgp, true},
                      CrossParam{5, 0.5, SecurityMode::SBgp, false},
                      CrossParam{6, 0.3, SecurityMode::SoBgp, true},
                      CrossParam{7, 0.7, SecurityMode::SoBgp, true},
                      CrossParam{8, 0.5, SecurityMode::BgpOnly, true}));

TEST(EngineCryptoLoad, SimplexRemovesStubWorkload) {
  // Section 2.2.1: simplex S*BGP means a stub signs only its own-prefix
  // announcements and never validates.
  const auto net = test::small_internet(200, 42);
  const auto& g = net.graph;
  std::vector<NodeSecurity> posture(g.num_nodes(), NodeSecurity::Insecure);
  for (topo::AsId n = 0; n < g.num_nodes(); ++n) {
    posture[n] = g.is_stub(n) ? NodeSecurity::Simplex : NodeSecurity::Full;
  }
  EngineConfig cfg;
  cfg.mode = SecurityMode::SBgp;
  BgpEngine engine(g, posture, cfg);

  std::uint64_t stub_sig = 0, stub_ver = 0, isp_sig = 0, isp_ver = 0;
  std::size_t stub_dests = 0;
  for (topo::AsId dest = 0; dest < 25; ++dest) {
    ASSERT_TRUE(engine.run(dest));
    const auto& stats = engine.crypto_stats();
    if (g.is_stub(dest)) ++stub_dests;
    for (topo::AsId n = 0; n < g.num_nodes(); ++n) {
      if (g.is_stub(n)) {
        stub_sig += stats.signatures[n];
        stub_ver += stats.verifications[n];
      } else {
        isp_sig += stats.signatures[n];
        isp_ver += stats.verifications[n];
      }
    }
  }
  EXPECT_EQ(stub_ver, 0u) << "simplex stubs never validate";
  EXPECT_GT(isp_ver, 0u);
  EXPECT_GT(isp_sig, 0u);
  ASSERT_GT(stub_dests, 0u);
  EXPECT_GT(stub_sig, 0u) << "stubs do sign their own prefixes";
  EXPECT_LT(stub_sig, isp_sig / 10)
      << "stub signing load is a tiny fraction of ISP load";
}

TEST(Engine, OwnPrefixRouteIsSelf) {
  const auto net = test::small_internet(100, 9);
  std::vector<NodeSecurity> posture(net.graph.num_nodes(), NodeSecurity::Insecure);
  EngineConfig cfg;
  cfg.mode = SecurityMode::BgpOnly;
  BgpEngine engine(net.graph, posture, cfg);
  ASSERT_TRUE(engine.run(0));
  EXPECT_EQ(engine.route(0).cls, rt::RouteClass::Self);
  EXPECT_TRUE(engine.route(0).path.empty());
  EXPECT_GT(engine.crypto_stats().messages, net.graph.num_nodes());
}

}  // namespace
}  // namespace sbgp::proto
