// Figure 3: the number of ASes (and ISPs) that deploy S*BGP in each round of
// the Section 5 case study (early adopters = 5 CPs + 5 Tier-1s, theta = 5%,
// x = 10%, stubs break ties).
#include "bench_common.h"
#include "stats/table.h"

int main(int argc, char** argv) {
  using namespace sbgp;
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header("Figure 3 - deployment per round (case study)", opt);

  auto net = bench::make_internet(opt);
  const auto adopters = bench::case_study_adopters(net);
  core::DeploymentSimulator sim(net.graph, bench::case_study_config(opt));
  const auto result =
      sim.run(core::DeploymentState::initial(net.graph, adopters));

  stats::Table t({"round", "new ISPs", "new ASes (incl. simplex stubs)",
                  "cumulative secure ASes", "cumulative secure ISPs"});
  for (const auto& r : result.rounds) {
    t.begin_row();
    t.add(r.round);
    t.add(r.newly_secure_isps);
    t.add(r.newly_secure_isps + r.newly_secure_stubs);
    t.add(r.total_secure_ases);
    t.add(r.total_secure_isps);
  }
  t.print(std::cout);

  const double n = static_cast<double>(net.graph.num_nodes());
  std::cout << "\noutcome: " << core::to_string(result.outcome) << " after "
            << result.rounds_run() << " rounds; "
            << 100.0 * static_cast<double>(result.final_state.num_secure()) / n
            << "% of ASes secure, "
            << 100.0 *
                   static_cast<double>(result.final_state.num_secure_of_class(
                       net.graph, topo::AsClass::Isp)) /
                   static_cast<double>(net.graph.num_isps())
            << "% of ISPs secure\n";
  bench::print_paper_note(
      "548 ISPs / >5K ASes secure in round 1; waves shrink until ~round 17; "
      "85% of ASes and 80% of ISPs secure at termination (36K-AS graph).");
  return 0;
}
