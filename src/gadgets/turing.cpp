#include "gadgets/turing.h"

#include <cassert>

namespace sbgp::gadgets {

bool TuringMachine::valid() const {
  if (num_states == 0 || num_symbols == 0 || tape_cells == 0) return false;
  if (delta.size() != num_states) return false;
  for (const auto& row : delta) {
    if (row.size() != num_symbols) return false;
    for (const auto& a : row) {
      if (a.next_state >= num_states || a.write_symbol >= num_symbols ||
          a.move < -1 || a.move > 1) {
        return false;
      }
    }
  }
  return true;
}

std::uint64_t TmConfig::hash() const {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(head);
  mix(state);
  for (const std::size_t s : tape) mix(s);
  return h;
}

std::string TmConfig::to_string() const {
  std::string out = "q" + std::to_string(state) + "@" + std::to_string(head) + " [";
  for (std::size_t i = 0; i < tape.size(); ++i) {
    if (i == head) out += "(";
    out += std::to_string(tape[i]);
    if (i == head) out += ")";
  }
  out += "]";
  return out;
}

TmConfig step(const TuringMachine& tm, const TmConfig& config) {
  assert(config.head < tm.tape_cells && config.state < tm.num_states);
  const auto& action = tm.delta[config.state][config.tape[config.head]];
  TmConfig next = config;
  next.tape[config.head] = action.write_symbol;
  next.state = action.next_state;
  const auto moved = static_cast<std::ptrdiff_t>(config.head) + action.move;
  // The head never leaves the tape (space bound): moves off either end are
  // clamped.
  if (moved >= 0 && moved < static_cast<std::ptrdiff_t>(tm.tape_cells)) {
    next.head = static_cast<std::size_t>(moved);
  }
  return next;
}

bool is_static(const TuringMachine& tm, const TmConfig& config) {
  return step(tm, config) == config;
}

TmRun run_static_mode(const TuringMachine& tm, const TmConfig& initial) {
  assert(tm.valid());
  std::unordered_map<std::uint64_t, std::vector<TmConfig>> seen;
  TmConfig config = initial;
  TmRun run;
  for (;;) {
    if (is_static(tm, config)) {
      run.outcome = TmOutcome::ReachedStatic;
      run.final_config = config;
      return run;
    }
    auto& bucket = seen[config.hash()];
    for (const auto& prev : bucket) {
      if (prev == config) {
        run.outcome = TmOutcome::Cycled;
        run.final_config = config;
        return run;
      }
    }
    bucket.push_back(config);
    config = step(tm, config);
    ++run.steps;
  }
}

TmConfig initial_config(const TuringMachine& tm,
                        const std::vector<std::size_t>& input) {
  TmConfig config;
  config.tape.assign(tm.tape_cells, 0);
  for (std::size_t i = 0; i < input.size() && i < tm.tape_cells; ++i) {
    config.tape[i] = input[i];
  }
  return config;
}

std::vector<std::uint8_t> encode_clean_state(const TuringMachine& tm,
                                             const TmConfig& config) {
  std::vector<std::uint8_t> bits(clean_state_width(tm), 0);
  bits[config.head] = 1;
  bits[tm.tape_cells + config.state] = 1;
  const std::size_t cells_base = tm.tape_cells + tm.num_states;
  for (std::size_t c = 0; c < tm.tape_cells; ++c) {
    bits[cells_base + c * tm.num_symbols + config.tape[c]] = 1;
  }
  return bits;
}

std::optional<TmConfig> decode_clean_state(const TuringMachine& tm,
                                           const std::vector<std::uint8_t>& bits) {
  if (bits.size() != clean_state_width(tm)) return std::nullopt;
  const auto one_hot = [&bits](std::size_t begin, std::size_t count)
      -> std::optional<std::size_t> {
    std::optional<std::size_t> index;
    for (std::size_t i = 0; i < count; ++i) {
      if (bits[begin + i] != 0) {
        if (index.has_value()) return std::nullopt;  // two nodes ON
        index = i;
      }
    }
    return index;  // nullopt if none ON
  };

  TmConfig config;
  const auto head = one_hot(0, tm.tape_cells);
  const auto state = one_hot(tm.tape_cells, tm.num_states);
  if (!head || !state) return std::nullopt;
  config.head = *head;
  config.state = *state;
  config.tape.resize(tm.tape_cells);
  const std::size_t cells_base = tm.tape_cells + tm.num_states;
  for (std::size_t c = 0; c < tm.tape_cells; ++c) {
    const auto symbol = one_hot(cells_base + c * tm.num_symbols, tm.num_symbols);
    if (!symbol) return std::nullopt;
    config.tape[c] = *symbol;
  }
  return config;
}

std::size_t clean_state_width(const TuringMachine& tm) {
  return tm.tape_cells + tm.num_states + tm.tape_cells * tm.num_symbols;
}

std::size_t reduction_transition_count(const TuringMachine& tm) {
  return tm.tape_cells * tm.num_states * tm.num_symbols;
}

TuringMachine make_right_sweeper(std::size_t tape_cells) {
  TuringMachine tm;
  tm.num_states = 1;
  tm.num_symbols = 2;
  tm.tape_cells = tape_cells;
  tm.delta = {{/*sym 0*/ {0, 0, +1}, /*sym 1*/ {0, 0, +1}}};
  return tm;
}

TuringMachine make_bouncer(std::size_t tape_cells) {
  assert(tape_cells >= 3);
  // Symbol 1 marks both tape ends; states: 0 = heading right, 1 = left.
  TuringMachine tm;
  tm.num_states = 2;
  tm.num_symbols = 2;
  tm.tape_cells = tape_cells;
  tm.delta = {
      {/*q0,sym0*/ {0, 0, +1}, /*q0,sym1 (right wall)*/ {1, 1, -1}},
      {/*q1,sym0*/ {1, 0, -1}, /*q1,sym1 (left wall)*/ {0, 1, +1}},
  };
  return tm;
}

TuringMachine make_binary_counter(std::size_t bits) {
  // Cell 0 carries a left-end marker (symbol 2); cells 1..bits hold the
  // counter, LSB first. State 0 increments (carry walks right), state 1
  // rewinds to the marker. The counter wraps on overflow, so the machine
  // cycles after visiting ~2^bits configurations — a stress test for the
  // STATIC-MODE cycle detector.
  TuringMachine tm;
  tm.num_states = 2;
  tm.num_symbols = 3;
  tm.tape_cells = bits + 1;
  tm.delta = {
      {/*q0,0: finish increment*/ {1, 1, -1},
       /*q0,1: carry*/ {0, 0, +1},
       /*q0,2: skip marker*/ {0, 2, +1}},
      {/*q1,0: rewind*/ {1, 0, -1},
       /*q1,1: rewind*/ {1, 1, -1},
       /*q1,2: at marker, go increment*/ {0, 2, +1}},
  };
  return tm;
}

}  // namespace sbgp::gadgets
