# Empty compiler generated dependencies file for bench_table5_chicken_matrix.
# This may be replaced when dependencies are built.
