// Table 3: average AS-path length from each content provider to all other
// destinations, in the base graph vs the Appendix D augmented graph. The
// augmentation is what brings CP paths down toward the empirically reported
// ~2.2 hops (the Knodes index).
#include "bench_common.h"
#include "routing/rib.h"
#include "stats/table.h"

int main(int argc, char** argv) {
  using namespace sbgp;
  const auto opt = bench::parse_options(argc, argv, /*default_nodes=*/1000);
  bench::print_header("Table 3 - average CP path lengths", opt);

  topo::InternetConfig cfg;
  cfg.total_ases = opt.nodes;
  cfg.seed = opt.seed;
  const auto net = topo::generate_internet(cfg);
  const auto aug = topo::augment_cp_peering(net, 0.8, opt.seed + 1);

  stats::Table t({"content provider", "degree (base)", "avg len (base)",
                  "degree (augmented)", "avg len (augmented)"});
  for (std::size_t i = 0; i < net.cps.size(); ++i) {
    const auto cp = net.cps[i];
    t.begin_row();
    t.add("CP" + std::to_string(i + 1) + " (AS" + std::to_string(net.graph.asn(cp)) +
          ")");
    t.add(net.graph.degree(cp));
    t.add(rt::average_path_length_from(net.graph, cp), 2);
    t.add(aug.graph.degree(aug.cps[i]));
    t.add(rt::average_path_length_from(aug.graph, aug.cps[i]), 2);
  }
  // A Tier-1 for reference.
  t.begin_row();
  t.add(std::string("top Tier-1 (reference)"));
  t.add(net.graph.degree(net.tier1.front()));
  t.add(rt::average_path_length_from(net.graph, net.tier1.front()), 2);
  t.add(aug.graph.degree(aug.tier1.front()));
  t.add(rt::average_path_length_from(aug.graph, aug.tier1.front()), 2);
  t.print(std::cout);
  bench::print_paper_note(
      "Cyclops CP path lengths 2.7-6.9 hops drop to ~2.1-2.2 in the "
      "augmented graph, matching the Knodes index (2.2-2.4).");
  return 0;
}
