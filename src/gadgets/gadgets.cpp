#include "gadgets/gadgets.h"

#include <cassert>

#include "parallel/thread_pool.h"

namespace sbgp::gadgets {

void Gadget::configure(core::SimConfig& cfg) const {
  cfg.model = core::UtilityModel::Incoming;
  cfg.theta = 0.0;
  cfg.stub_breaks_ties = true;
  cfg.allow_turn_off = true;
  cfg.tiebreak.mode = rt::TieBreakPolicy::Mode::Rank;
  cfg.tiebreak.rank = nullptr;  // lowest AS number wins (Appendix K.3)
  cfg.threads = 1;
  cfg.max_rounds = 50;
  cfg.frozen = &frozen;
}

namespace {

/// Small helper collecting nodes as they are added and freezing everything
/// by default; players are thawed explicitly.
struct Builder {
  AsGraph g;
  std::unordered_map<std::string, AsId> handle;
  std::vector<std::string> order;

  AsId add(const std::string& name, std::uint32_t asn, double weight = 1.0) {
    const AsId id = g.add_as(asn);
    g.set_weight(id, weight);
    handle.emplace(name, id);
    order.push_back(name);
    return id;
  }

  Gadget finish(const std::vector<std::string>& players,
                const std::vector<std::string>& initially_on) {
    g.finalize();
    Gadget out;
    out.handle = handle;
    out.frozen.assign(g.num_nodes(), 1);
    out.initial = DeploymentState(g.num_nodes());
    for (const auto& name : players) out.frozen[handle.at(name)] = 0;
    for (const auto& name : initially_on) {
      out.initial.set_secure(handle.at(name), true);
    }
    out.graph = std::move(g);
    return out;
  }
};

}  // namespace

Gadget make_chicken(double m, double eps) {
  assert(eps < m);
  Builder b;
  // Fixed plumbing nodes (AS numbers are the tie-break ranks).
  const AsId n1 = b.add("1", 1);
  const AsId n2 = b.add("2", 2);
  const AsId n3 = b.add("3", 3);
  const AsId n4 = b.add("4", 4);
  const AsId n5 = b.add("5", 5);
  const AsId n6 = b.add("6", 6);
  const AsId p10 = b.add("10", 10);
  const AsId p20 = b.add("20", 20);
  const AsId n1000 = b.add("1000", 1000);
  const AsId n1001 = b.add("1001", 1001);
  const AsId d1 = b.add("d1", 2001);
  const AsId d2 = b.add("d2", 2002);
  const AsId local1 = b.add("local1", 2101, eps);
  const AsId local2 = b.add("local2", 2102, eps);
  const AsId cross1 = b.add("cross1", 2201, m);
  const AsId cross2 = b.add("cross2", 2202, 2.0 * m);

  AsGraph& g = b.g;
  // The asymmetric player edge: 20 provides 10.
  g.add_customer_provider(p20, p10);
  // Local 1: two equal provider routes to d1, via 1000 (always secure) and
  // via 10 (secure iff 10 is on; preferred on ties since 10 < 1000).
  g.add_customer_provider(n1000, local1);
  g.add_customer_provider(p10, local1);
  g.add_customer_provider(n1000, d1);
  g.add_customer_provider(p10, d1);
  // Local 2 symmetric for player 20 via 1001.
  g.add_customer_provider(n1001, local2);
  g.add_customer_provider(p20, local2);
  g.add_customer_provider(n1001, d2);
  g.add_customer_provider(p20, d2);
  // Cross 1 -> d2: (cross1,10,6,20,d2) vs (cross1,1,4,20,d2).
  g.add_peer(n6, p10);
  g.add_customer_provider(n6, p20);
  g.add_customer_provider(p10, cross1);
  g.add_customer_provider(n1, cross1);
  g.add_customer_provider(n4, n1);
  g.add_customer_provider(p20, n4);
  // Cross 2 -> d1: (cross2,3,20,10,d1) vs (cross2,2,5,10,d1).
  g.add_peer(n3, p20);
  g.add_customer_provider(n3, cross2);
  g.add_customer_provider(n2, cross2);
  g.add_customer_provider(n5, n2);
  g.add_customer_provider(p10, n5);

  return b.finish(
      /*players=*/{"10", "20"},
      /*initially_on=*/{"3", "6", "1000", "1001", "d1", "d2", "local1", "local2",
                        "cross1", "cross2"});
}

namespace {

/// (tree node, its designated destination) — the unit of the Appendix K
/// de-noising pass.
struct TreeSpec {
  AsId tree;
  AsId designated_dest;
};

/// The paper's de-noising trick (Appendix K.6 proof: "connect the offending
/// pair with a peer-to-peer edge"): every traffic tree gets a direct peer
/// edge to every node that does NOT have a customer route to the tree's
/// designated destination. Non-designated tree traffic then takes a
/// constant peer route (LP: peer > provider) instead of wandering through
/// the gadget, while the designated tie is untouched — a peer can only
/// offer a route to d_t if d_t is in its customer cone, which is exactly
/// the excluded set. In the incoming-utility model, flows arriving over the
/// new peer edges contribute no utility to anyone.
void apply_tree_denoising(Builder& b, const std::vector<TreeSpec>& trees) {
  AsGraph& g = b.g;
  const std::size_t n = g.num_nodes();
  std::vector<std::vector<bool>> cone(n, std::vector<bool>(n, false));
  for (AsId root = 0; root < n; ++root) {
    std::vector<AsId> stack{root};
    cone[root][root] = true;
    while (!stack.empty()) {
      const AsId x = stack.back();
      stack.pop_back();
      for (AsId c : g.customers(x)) {
        if (!cone[root][c]) {
          cone[root][c] = true;
          stack.push_back(c);
        }
      }
    }
  }
  for (const auto& [tree, d_t] : trees) {
    for (AsId z = 0; z < n; ++z) {
      if (z == tree || cone[z][d_t]) continue;
      g.add_peer(tree, z);  // duplicates/self rejected internally
    }
  }
}

/// Shared selector construction; fills players/dests/on and records the
/// traffic trees for the caller's de-noising pass.
void build_selector(Builder& b, std::size_t k, double m, double eps,
                    std::vector<AsId>& player, std::vector<AsId>& dest,
                    std::vector<std::string>& players,
                    std::vector<std::string>& on, std::vector<TreeSpec>& trees) {
  // Players p1..pk (ascending tie-break rank) and their per-player Local
  // plumbing: traffic Local_i -> d_i over (Local_i, B_i, d_i) [always
  // secure] vs (Local_i, p_i, d_i) [secure iff p_i on; wins ties].
  player.resize(k);
  dest.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    player[i] = b.add("p" + std::to_string(i + 1),
                      static_cast<std::uint32_t>(1000 + i));
    players.push_back("p" + std::to_string(i + 1));
  }
  for (std::size_t i = 0; i < k; ++i) {
    const AsId backup = b.add("B" + std::to_string(i + 1),
                              static_cast<std::uint32_t>(5000 + i));
    dest[i] = b.add("d" + std::to_string(i + 1),
                    static_cast<std::uint32_t>(8000 + i));
    const AsId local = b.add("local" + std::to_string(i + 1),
                             static_cast<std::uint32_t>(9000 + i), eps);
    b.g.add_customer_provider(backup, local);
    b.g.add_customer_provider(player[i], local);
    b.g.add_customer_provider(backup, dest[i]);
    b.g.add_customer_provider(player[i], dest[i]);
    on.insert(on.end(), {"B" + std::to_string(i + 1), "d" + std::to_string(i + 1),
                         "local" + std::to_string(i + 1)});
  }
  // Pairwise CHICKEN plumbing (Figure 22). Within pair (i, j), i < j, node
  // p_i plays the "10" role and p_j (its provider) the "20" role.
  std::uint32_t next_plumb = 10;  // plumbing ASNs stay below the players'
  std::size_t pair_idx = 0;
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j, ++pair_idx) {
      const std::string suffix =
          "_" + std::to_string(i + 1) + std::to_string(j + 1);
      const AsId n1 = b.add("1" + suffix, next_plumb++);
      const AsId n2 = b.add("2" + suffix, next_plumb++);
      const AsId n3 = b.add("3" + suffix, next_plumb++);
      const AsId n4 = b.add("4" + suffix, next_plumb++);
      const AsId n5 = b.add("5" + suffix, next_plumb++);
      const AsId n6 = b.add("6" + suffix, next_plumb++);
      const AsId cross1 = b.add("cross1" + suffix,
                                static_cast<std::uint32_t>(20000 + pair_idx), m);
      const AsId cross2 = b.add(
          "cross2" + suffix, static_cast<std::uint32_t>(30000 + pair_idx), 2.0 * m);
      AsGraph& g = b.g;
      g.add_customer_provider(player[j], player[i]);
      // Cross1 -> d_j: (cross1, p_i, 6, p_j, d_j) vs (cross1, 1, 4, p_j, d_j).
      g.add_peer(n6, player[i]);
      g.add_customer_provider(n6, player[j]);
      // De-noising for k > 2: every *lower* player gets a direct provider
      // edge from 6_ij, so its route toward 6_ij (and hence the m-weight
      // subtrees hanging off it) is a unique length-1 route instead of a
      // security-dependent tie between two higher players.
      for (std::size_t z = 0; z < j; ++z) {
        if (z != i) g.add_customer_provider(n6, player[z]);
      }
      g.add_customer_provider(player[i], cross1);
      g.add_customer_provider(n1, cross1);
      g.add_customer_provider(n4, n1);
      g.add_customer_provider(player[j], n4);
      // Cross2 -> d_i: (cross2, 3, p_j, p_i, d_i) vs (cross2, 2, 5, p_i, d_i).
      g.add_peer(n3, player[j]);
      g.add_customer_provider(n3, cross2);
      g.add_customer_provider(n2, cross2);
      g.add_customer_provider(n5, n2);
      g.add_customer_provider(player[i], n5);
      on.insert(on.end(), {"3" + suffix, "6" + suffix, "cross1" + suffix,
                           "cross2" + suffix});
    }
  }

  for (std::size_t i = 0; i < k; ++i) {
    trees.push_back({b.handle.at("local" + std::to_string(i + 1)), dest[i]});
  }
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      const std::string suffix =
          "_" + std::to_string(i + 1) + std::to_string(j + 1);
      trees.push_back({b.handle.at("cross1" + suffix), dest[j]});
      trees.push_back({b.handle.at("cross2" + suffix), dest[i]});
    }
  }
}

}  // namespace

Gadget make_selector(std::size_t k, double m, double eps) {
  assert(k >= 2 && eps < m);
  Builder b;
  std::vector<AsId> player, dest;
  std::vector<std::string> players, on;
  std::vector<TreeSpec> trees;
  build_selector(b, k, m, eps, player, dest, players, on, trees);
  apply_tree_denoising(b, trees);
  return b.finish(players, on);
}

Gadget make_selector_with_transition(std::size_t k, std::size_t from,
                                     std::size_t to, double m, double eps) {
  assert(k >= 2 && from < k && to < k && from != to);
  Builder b;
  std::vector<AsId> player, dest;
  std::vector<std::string> players, on;
  std::vector<TreeSpec> trees;
  build_selector(b, k, m, eps, player, dest, players, on, trees);

  // Transition plumbing (Figure 23). Volumes follow the proof: And = 30mk,
  // Hold = 20mk, Override = 10mk — Override must dominate anything the
  // selector can offer player `to`, And must beat Hold at `t`, and Hold
  // must beat Override alone.
  const double mk = m * static_cast<double>(k);
  const AsId t = b.add("t", 3000);        // t < c (And tie) and t > players (Override tie)
  const AsId c = b.add("c", 3001);
  const AsId e = b.add("e", 3002);
  const AsId a = b.add("a", 4000);        // a < bb (Hold tie)
  const AsId bb = b.add("bb", 4001);
  const AsId d_and = b.add("d_and", 8100);
  const AsId d_ov = b.add("d_ov", 8101);
  const AsId and_tree = b.add("and", 9100, 30.0 * mk);
  const AsId hold = b.add("hold", 9101, 20.0 * mk);
  const AsId override_tree = b.add("override", 9102, 10.0 * mk);

  AsGraph& g = b.g;
  // And(i,j) -> d_and: (and, c, e, d_and) [always secure] vs
  // (and, t, p_from, d_and) [secure iff t && p_from; wins the tie, t < c].
  g.add_customer_provider(c, and_tree);
  g.add_customer_provider(c, e);
  g.add_customer_provider(e, d_and);
  g.add_customer_provider(t, and_tree);
  g.add_customer_provider(t, player[from]);
  g.add_customer_provider(player[from], d_and);
  // Override(i,j) -> d_ov: (override, p_to, d_ov) vs (override, t, d_ov);
  // the route through t is used iff t is ON and p_to is OFF (p_to < t).
  g.add_customer_provider(player[to], override_tree);
  g.add_customer_provider(t, override_tree);
  g.add_customer_provider(player[to], d_ov);
  g.add_customer_provider(t, d_ov);
  // Hold -> t itself: (hold, a, t) [customer edge at t, pays 20mk while t
  // is OFF] vs (hold, bb, t) [peer edge at t, pays nothing; secure iff t is
  // ON]. Using t as the designated destination keeps every other Hold flow
  // de-noisable (nothing else has a customer route to t).
  g.add_customer_provider(a, hold);
  g.add_customer_provider(bb, hold);
  g.add_customer_provider(t, a);
  g.add_peer(bb, t);
  // De-noising helper edge: p_from's subtree reaches d_ov over a unique
  // direct route instead of a (t vs p_to) security-dependent tie.
  g.add_customer_provider(player[from], d_ov);

  trees.push_back({and_tree, d_and});
  trees.push_back({hold, t});
  trees.push_back({override_tree, d_ov});
  apply_tree_denoising(b, trees);

  players.push_back("t");
  on.insert(on.end(), {"c", "e", "bb", "d_and", "d_ov", "and", "hold", "override"});
  return b.finish(players, on);
}

ChickenMatrix evaluate_chicken_matrix(const Gadget& chicken, std::size_t threads) {
  core::SimConfig cfg;
  chicken.configure(cfg);
  cfg.threads = threads;
  par::ThreadPool pool(threads);
  const AsId p10 = chicken.node("10");
  const AsId p20 = chicken.node("20");

  ChickenMatrix out;
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      DeploymentState s = chicken.initial;
      s.set_secure(p10, i == 1);
      s.set_secure(p20, j == 1);
      const auto u = core::compute_utilities(chicken.graph, s.flags(), cfg, pool);
      out.u[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = {
          u.incoming[p10], u.incoming[p20]};
    }
  }
  return out;
}

Gadget make_and(std::array<bool, 3> inputs, double m) {
  Builder b;
  const AsId in1 = b.add("in1", 1);
  const AsId in2 = b.add("in2", 2);
  const AsId in3 = b.add("in3", 3);
  const AsId n5 = b.add("5", 5);
  const AsId n6 = b.add("6", 6);
  const AsId amp = b.add("amp", 50);
  const AsId n101 = b.add("101", 101);
  const AsId n102 = b.add("102", 102);
  const AsId d = b.add("d", 900);
  // Hold volume: turning '&' on loses the Hold traffic toward destinations d
  // AND '&' itself (both flows switch from customer 5 to peer 6), a 2*w_hold
  // loss against a 2m gain per active input. w_hold = 2.5m puts the flip
  // threshold strictly between two and three active inputs.
  const AsId hold = b.add("hold", 901, 2.5 * m);
  const AsId and1 = b.add("and1", 911, 2.0 * m);
  const AsId and2 = b.add("and2", 912, 2.0 * m);
  const AsId and3 = b.add("and3", 913, 2.0 * m);

  AsGraph& g = b.g;
  // Always-secure decoy path: And_i -> 101 -> 102 -> d.
  g.add_customer_provider(n101, n102);
  g.add_customer_provider(n102, d);
  const std::array<AsId, 3> ins{in1, in2, in3};
  const std::array<AsId, 3> ands{and1, and2, and3};
  for (int i = 0; i < 3; ++i) {
    g.add_customer_provider(n101, ands[static_cast<std::size_t>(i)]);
    g.add_customer_provider(ins[static_cast<std::size_t>(i)],
                            ands[static_cast<std::size_t>(i)]);
    g.add_customer_provider(amp, ins[static_cast<std::size_t>(i)]);
  }
  g.add_customer_provider(amp, d);
  // Hold traffic: (hold,5,amp,d) insecure-but-paying vs (hold,6,amp,d)
  // secure-but-free (6 peers with amp).
  g.add_customer_provider(n5, hold);
  g.add_customer_provider(n6, hold);
  g.add_customer_provider(amp, n5);
  g.add_peer(n6, amp);
  // De-noising (the paper's "get rid of non-designated traffic" trick,
  // Appendix K.3): direct peer edges give the Hold tree constant routes to
  // the input nodes so only its designated flows react to '&' flipping.
  for (const AsId in : ins) g.add_peer(hold, in);

  std::vector<std::string> on{"6", "101", "102", "d", "hold", "and1", "and2", "and3"};
  if (inputs[0]) on.emplace_back("in1");
  if (inputs[1]) on.emplace_back("in2");
  if (inputs[2]) on.emplace_back("in3");
  return b.finish(/*players=*/{"amp"}, on);
}

Gadget make_buyers_remorse(std::size_t num_stubs, double w_cp) {
  Builder b;
  const AsId reseller = b.add("reseller", 498);  // AS 9498; low rank wins ties
  const AsId ntt = b.add("ntt", 2914);
  const AsId telecom = b.add("telecom", 4755);
  const AsId akamai = b.add("akamai", 20940, w_cp);
  b.g.mark_content_provider(akamai);

  AsGraph& g = b.g;
  g.add_customer_provider(ntt, telecom);
  g.add_customer_provider(telecom, reseller);
  g.add_customer_provider(ntt, akamai);
  g.add_customer_provider(reseller, akamai);

  std::vector<std::string> on{"akamai", "ntt", "telecom"};
  for (std::size_t k = 0; k < num_stubs; ++k) {
    const std::string name = "stub" + std::to_string(k);
    b.add(name, static_cast<std::uint32_t>(45210 + k));
    g.add_customer_provider(telecom, b.handle.at(name));
    on.push_back(name);  // simplex-secured by their provider (initial state)
  }
  return b.finish(/*players=*/{"telecom"}, on);
}

Gadget make_set_cover(const SetCoverInstance& instance) {
  Builder b;
  const AsId d = b.add("d", 1);
  for (std::size_t i = 0; i < instance.sets.size(); ++i) {
    b.add("s" + std::to_string(i) + "_1", static_cast<std::uint32_t>(100 + i));
    b.add("s" + std::to_string(i) + "_2", static_cast<std::uint32_t>(200 + i));
  }
  for (std::size_t j = 0; j < instance.universe_size; ++j) {
    b.add("alt" + std::to_string(j), static_cast<std::uint32_t>(10 + j));
    b.add("altb" + std::to_string(j), static_cast<std::uint32_t>(500 + j));
    b.add("u" + std::to_string(j), static_cast<std::uint32_t>(1000 + j), 10.0);
  }

  AsGraph& g = b.g;
  std::vector<std::string> players{"d"};
  for (std::size_t i = 0; i < instance.sets.size(); ++i) {
    const AsId s1 = b.handle.at("s" + std::to_string(i) + "_1");
    const AsId s2 = b.handle.at("s" + std::to_string(i) + "_2");
    g.add_customer_provider(s1, d);   // d is a stub customer of every s_i1
    g.add_customer_provider(s2, s1);  // s_i1 is a customer of s_i2
    for (const std::size_t j : instance.sets[i]) {
      g.add_customer_provider(s2, b.handle.at("u" + std::to_string(j)));
    }
    players.push_back("s" + std::to_string(i) + "_1");
    players.push_back("s" + std::to_string(i) + "_2");
  }
  for (std::size_t j = 0; j < instance.universe_size; ++j) {
    const AsId alt = b.handle.at("alt" + std::to_string(j));
    const AsId altb = b.handle.at("altb" + std::to_string(j));
    const AsId u = b.handle.at("u" + std::to_string(j));
    // Element j's decoy route (u, alt_j, altb_j, d): same length as the
    // route through any s_i2 and preferred by the lowest-AS tie-break
    // unless the s-route is fully secure.
    g.add_customer_provider(alt, u);
    g.add_customer_provider(altb, alt);
    g.add_customer_provider(altb, d);
    players.push_back("u" + std::to_string(j));
  }
  // All structural nodes except the decoys participate; decoys stay frozen
  // (the paper's "additional routes" are inert scaffolding).
  return b.finish(players, /*initially_on=*/{});
}

Gadget make_per_link_dilemma(double m, double w_s) {
  Builder b;
  const AsId r = b.add("r", 1);    // insecure; low rank wins s's tie
  const AsId y = b.add("y", 2);    // insecure; low rank wins c1's tie
  const AsId x = b.add("x", 10);   // the deciding ISP
  const AsId n2 = b.add("2", 20);  // x's secure provider (the decision link)
  const AsId s = b.add("s", 100, w_s);
  const AsId c1 = b.add("c1", 101, m);
  const AsId c2 = b.add("c2", 102);
  const AsId d1 = b.add("d1", 103);

  AsGraph& g = b.g;
  g.add_customer_provider(n2, x);   // 2 provides x
  g.add_customer_provider(n2, y);   // ... and y
  g.add_customer_provider(n2, d1);  // d1 hangs off 2
  g.add_customer_provider(x, r);    // r is x's customer ...
  g.add_customer_provider(r, s);    // ... and s's provider
  g.add_customer_provider(n2, s);   // s is multi-homed to 2 and r
  g.add_customer_provider(x, c1);   // c1 is multi-homed to x and y
  g.add_customer_provider(y, c1);
  g.add_customer_provider(x, c2);   // c2 is x's (simplex) stub

  return b.finish(/*players=*/{},
                  /*initially_on=*/{"x", "2", "s", "c1", "c2", "d1"});
}

std::vector<AsId> set_cover_candidates(const Gadget& g,
                                       const SetCoverInstance& instance) {
  std::vector<AsId> out;
  out.reserve(instance.sets.size());
  for (std::size_t i = 0; i < instance.sets.size(); ++i) {
    out.push_back(g.node("s" + std::to_string(i) + "_1"));
  }
  return out;
}

}  // namespace sbgp::gadgets
