#include "proto/crypto_sim.h"

namespace sbgp::proto {

namespace {

[[nodiscard]] std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Digest digest_words(std::initializer_list<std::uint64_t> words) {
  DigestBuilder b;
  for (const std::uint64_t w : words) b.add(w);
  return b.finish();
}

DigestBuilder& DigestBuilder::add(std::uint64_t word) {
  state_ = mix64(state_ ^ mix64(word));
  return *this;
}

KeyPair derive_keypair(std::uint32_t asn, std::uint64_t master_seed) {
  KeyPair kp;
  kp.private_key = mix64(master_seed ^ (0xA5A5A5A5ULL << 32) ^ asn);
  kp.public_key = mix64(kp.private_key ^ 0x5bd1e995ULL);
  return kp;
}

Signature sign(std::uint64_t private_key, Digest digest) {
  return mix64(private_key ^ mix64(digest));
}

bool verify_with_private(std::uint64_t private_key, Digest digest, Signature sig) {
  return sign(private_key, digest) == sig;
}

}  // namespace sbgp::proto
