# Empty compiler generated dependencies file for bench_fig7_secure_path_growth.
# This may be replaced when dependencies are built.
