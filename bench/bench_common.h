// Shared infrastructure for the per-table / per-figure bench harnesses.
// Every bench accepts:  --nodes N  --seed S  --threads T  --x F  --quiet
// and prints the paper's corresponding rows/series plus a "paper:" line
// quoting what the original reports, so shape can be compared at a glance.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/early_adopters.h"
#include "core/simulator.h"
#include "obs/build_info.h"
#include "topology/topology_gen.h"

namespace sbgp::bench {

/// "release" iff assertions are compiled out — the same definition Google
/// Benchmark uses for its context field, so the run_bench.sh guard (which
/// refuses debug-built numbers) covers gbench-born and JsonOut-born files
/// alike.
inline const char* library_build_type() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

/// True when the kernel reports a CPU frequency governor other than
/// "performance" (results are then noise-prone and run_bench.sh refuses to
/// commit them). Hosts without cpufreq (containers, most CI) report false —
/// there is no scaling to enable.
inline bool cpu_scaling_enabled() {
  std::ifstream gov("/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor");
  if (!gov) return false;
  std::string s;
  gov >> s;
  return !s.empty() && s != "performance";
}

struct Options {
  std::uint32_t nodes = 1500;
  std::uint64_t seed = 42;
  std::size_t threads = 0;  // hardware
  double x = 0.10;          // CP traffic fraction
  bool quiet = false;
  /// When set, the harness appends its headline metrics as JSON records to
  /// this file (see JsonOut) so the perf/figure trajectory is tracked
  /// across PRs in the BENCH_*.json files.
  std::string json_out;
  /// Microbench harness (bench_perf_*): only run benchmarks whose name
  /// contains this substring. Empty = run everything.
  std::string filter;
  /// Microbench harness: keep timing batches until a benchmark has run at
  /// least this long (its reported value is the best batch).
  double min_ms = 200.0;
};

inline Options parse_options(int argc, char** argv, std::uint32_t default_nodes = 1500) {
  Options opt;
  opt.nodes = default_nodes;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--nodes") opt.nodes = static_cast<std::uint32_t>(std::atoi(next()));
    else if (arg == "--seed") opt.seed = static_cast<std::uint64_t>(std::atoll(next()));
    else if (arg == "--threads") opt.threads = static_cast<std::size_t>(std::atoi(next()));
    else if (arg == "--x") opt.x = std::atof(next());
    else if (arg == "--quiet") opt.quiet = true;
    else if (arg == "--json-out") opt.json_out = next();
    else if (arg == "--filter") opt.filter = next();
    else if (arg == "--min-ms") opt.min_ms = std::atof(next());
    else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0]
                << " [--nodes N] [--seed S] [--threads T] [--x F]"
                << " [--json-out FILE] [--filter SUBSTR] [--min-ms F]\n";
      std::exit(0);
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      std::exit(2);
    }
  }
  return opt;
}

/// Generates the synthetic Internet with the CP traffic model applied.
inline topo::Internet make_internet(const Options& opt) {
  topo::InternetConfig cfg;
  cfg.total_ases = opt.nodes;
  cfg.seed = opt.seed;
  topo::Internet net = topo::generate_internet(cfg);
  topo::apply_traffic_model(net.graph, net.cps, opt.x);
  return net;
}

/// The Section 5 case-study early adopters: five CPs + five top-degree ISPs
/// (the paper's Sprint/Verizon/AT&T/Level3/Cogent analogues).
inline std::vector<topo::AsId> case_study_adopters(const topo::Internet& net) {
  return core::select_adopters(net, core::AdopterStrategy::CpsPlusTopIsps, 5,
                               /*seed=*/1);
}

/// Standard case-study simulator config (outgoing utility, theta = 5%).
inline core::SimConfig case_study_config(const Options& opt) {
  core::SimConfig cfg;
  cfg.model = core::UtilityModel::Outgoing;
  cfg.theta = 0.05;
  cfg.threads = opt.threads;
  return cfg;
}

/// Minimal metrics sink behind `--json-out`: collects (name, value, unit)
/// rows and writes one google-benchmark-shaped document on destruction, so
/// the table harnesses and the microbenchmarks land in the same BENCH_*.json
/// tracking flow (tools/run_bench.sh).
class JsonOut {
 public:
  explicit JsonOut(const Options& opt) : path_(opt.json_out), opt_(opt) {}
  JsonOut(const JsonOut&) = delete;
  JsonOut& operator=(const JsonOut&) = delete;

  void add(const std::string& name, double value, const std::string& unit) {
    if (path_.empty()) return;
    rows_.push_back({name, value, unit});
  }

  ~JsonOut() {
    if (path_.empty() || rows_.empty()) return;
    std::ofstream out(path_);
    char date[32] = "unknown";
    const std::time_t now = std::time(nullptr);
    std::tm tm_utc{};
    if (gmtime_r(&now, &tm_utc) != nullptr) {
      std::strftime(date, sizeof(date), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
    }
    out << "{\n  \"context\": {\"date\": \"" << date << "\", \"version\": \""
        << obs::build_info_line() << "\", \"nodes\": "
        << opt_.nodes << ", \"seed\": " << opt_.seed << ", \"x\": " << opt_.x
        << ", \"library_build_type\": \"" << library_build_type()
        << "\", \"cpu_scaling_enabled\": "
        << (cpu_scaling_enabled() ? "true" : "false")
        << "},\n  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      out << "    {\"name\": \"" << rows_[i].name << "\", \"value\": "
          << rows_[i].value << ", \"unit\": \"" << rows_[i].unit << "\"}"
          << (i + 1 < rows_.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
  }

 private:
  struct Row {
    std::string name;
    double value;
    std::string unit;
  };
  std::string path_;
  Options opt_;
  std::vector<Row> rows_;
};

inline void print_header(const std::string& what, const Options& opt) {
  std::cout << "=== " << what << " ===\n"
            << "synthetic Internet: " << opt.nodes << " ASes, seed " << opt.seed
            << ", CPs originate " << opt.x * 100 << "% of traffic\n\n";
}

inline void print_paper_note(const std::string& note) {
  std::cout << "paper: " << note << "\n";
}

}  // namespace sbgp::bench
