file(REMOVE_RECURSE
  "libsbgp_core.a"
)
