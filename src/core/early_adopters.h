// Early-adopter selection (Section 6). Choosing the optimal set is NP-hard
// (Theorem 6.1), so the paper — and this library — evaluates heuristics:
// top-degree ISPs ("Tier-1s"), content providers, random sets, and
// combinations. For small graphs we also provide greedy and brute-force
// optimal selection so the heuristics can be benchmarked against the true
// optimum (the Thm 6.1 ablation).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/simulator.h"
#include "topology/as_graph.h"
#include "topology/topology_gen.h"

namespace sbgp::core {

/// The early-adopter sets compared in Figure 8.
enum class AdopterStrategy : std::uint8_t {
  None,            ///< no early adopters
  TopDegreeIsps,   ///< k highest-degree ISPs (k=5 approximates "the Tier-1s")
  ContentProviders,///< the five CPs
  CpsPlusTopIsps,  ///< five CPs + k top-degree ISPs
  RandomIsps,      ///< k ISPs uniformly at random
};

[[nodiscard]] const char* to_string(AdopterStrategy s);

/// Materialises an adopter set. `k` is ignored by None/ContentProviders;
/// `seed` only matters for RandomIsps.
[[nodiscard]] std::vector<AsId> select_adopters(const topo::Internet& net,
                                                AdopterStrategy strategy,
                                                std::size_t k, std::uint64_t seed);

/// Number of ASes secure at termination when `adopters` seed the process —
/// the objective of Theorem 6.1.
[[nodiscard]] std::size_t deployment_reach(const AsGraph& graph,
                                           std::span<const AsId> adopters,
                                           const SimConfig& cfg);

/// Greedy heuristic: repeatedly add the candidate that maximises
/// deployment_reach. O(k * |candidates|) full simulations — small graphs
/// only.
[[nodiscard]] std::vector<AsId> greedy_adopters(const AsGraph& graph,
                                                std::span<const AsId> candidates,
                                                std::size_t k, const SimConfig& cfg);

/// Exhaustive optimum over all size-k subsets of `candidates`. Exponential;
/// intended for the ablation bench on toy graphs (Thm 6.1 says nothing
/// polynomial can do this in general).
[[nodiscard]] std::vector<AsId> optimal_adopters_bruteforce(
    const AsGraph& graph, std::span<const AsId> candidates, std::size_t k,
    const SimConfig& cfg);

}  // namespace sbgp::core
