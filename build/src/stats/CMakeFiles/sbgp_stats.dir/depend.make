# Empty dependencies file for sbgp_stats.
# This may be replaced when dependencies are built.
