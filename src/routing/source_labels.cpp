#include "routing/source_labels.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace sbgp::rt {

namespace {
constexpr std::uint16_t kInf = std::numeric_limits<std::uint16_t>::max();
}  // namespace

SourceLabelComputer::SourceLabelComputer(const AsGraph& graph) : graph_(graph) {
  up_.reserve(graph.num_nodes());
  queue_.reserve(graph.num_nodes());
}

void SourceLabelComputer::compute(AsId src, std::vector<RouteClass>& cls,
                                  std::vector<std::uint16_t>& len) {
  const std::size_t n = graph_.num_nodes();
  assert(src < n);
  cls.assign(n, RouteClass::None);
  len.assign(n, kInf);
  cls[src] = RouteClass::Self;
  len[src] = 0;

  // Phase 1 — customer-class destinations: BFS descending customer edges
  // from src (src's customer cone). Mirrors RibComputer phase 1 with the
  // edge direction transposed.
  queue_.clear();
  queue_.push_back(src);
  for (std::size_t head = 0; head < queue_.size(); ++head) {
    const AsId x = queue_[head];
    const auto next_len = static_cast<std::uint16_t>(len[x] + 1);
    for (AsId c : graph_.customers(x)) {
      if (cls[c] == RouteClass::None) {
        cls[c] = RouteClass::Customer;
        len[c] = next_len;
        queue_.push_back(c);
      }
    }
  }

  // Phase 2 — peer-class destinations: one peer edge out of src, then
  // customer descent (GR2: a peer only exports Self/Customer routes).
  // Multi-source FIFO BFS, every peer seeded at depth 1. Pruning at
  // already-labelled nodes is safe: customer cones are downward-closed, so
  // every descendant of a labelled node is labelled at least as preferably.
  queue_.clear();
  for (AsId p : graph_.peers(src)) {
    if (cls[p] == RouteClass::None) {
      cls[p] = RouteClass::Peer;
      len[p] = 1;
      queue_.push_back(p);
    }
  }
  for (std::size_t head = 0; head < queue_.size(); ++head) {
    const AsId x = queue_[head];
    const auto next_len = static_cast<std::uint16_t>(len[x] + 1);
    for (AsId c : graph_.customers(x)) {
      if (cls[c] == RouteClass::None) {
        cls[c] = RouteClass::Peer;
        len[c] = next_len;
        queue_.push_back(c);
      }
    }
  }

  // Phase 3 — provider-class destinations. A provider route ascends >= 1
  // provider edges from src to an apex z, optionally crosses one peer edge,
  // then descends customers (the only valley-free shapes left). up_[z] is
  // the min ascent distance; seeds are every apex at up_[z] and every peer
  // of an apex at up_[z] + 1, relaxed by customer descent in a Dial-bucket
  // multi-source Dijkstra (unit weights), exactly RibComputer phase 3
  // transposed.
  up_.assign(n, kInf);
  up_[src] = 0;
  queue_.clear();
  queue_.push_back(src);
  for (std::size_t head = 0; head < queue_.size(); ++head) {
    const AsId x = queue_[head];
    const auto next_up = static_cast<std::uint16_t>(up_[x] + 1);
    for (AsId p : graph_.providers(x)) {
      if (up_[p] == kInf) {
        up_[p] = next_up;
        queue_.push_back(p);
      }
    }
  }
  std::size_t max_seed = 0;
  for (AsId z = 0; z < n; ++z) {
    if (up_[z] != kInf && up_[z] >= 1) max_seed = std::max<std::size_t>(max_seed, up_[z] + 1);
  }
  const std::size_t need = max_seed + n + 2;
  if (buckets_.size() < need) buckets_.resize(need);
  for (auto& b : buckets_) b.clear();
  auto offer = [&](AsId d, std::uint16_t dist) {
    // Only None/Provider-labelled nodes can improve (LP: Customer and Peer
    // labels dominate any provider route).
    if (cls[d] == RouteClass::Customer || cls[d] == RouteClass::Peer ||
        cls[d] == RouteClass::Self) {
      return;
    }
    if (dist < len[d]) {
      len[d] = dist;
      cls[d] = RouteClass::Provider;
      buckets_[dist].push_back(d);
    }
  };
  for (AsId z = 0; z < n; ++z) {
    if (up_[z] == kInf || up_[z] == 0) continue;
    offer(z, up_[z]);
    const auto peer_dist = static_cast<std::uint16_t>(up_[z] + 1);
    for (AsId y : graph_.peers(z)) offer(y, peer_dist);
  }
  for (std::size_t length = 0; length < buckets_.size(); ++length) {
    for (std::size_t idx = 0; idx < buckets_[length].size(); ++idx) {
      const AsId x = buckets_[length][idx];
      if (len[x] != length) continue;  // stale entry
      const auto next_len = static_cast<std::uint16_t>(length + 1);
      for (AsId c : graph_.customers(x)) offer(c, next_len);
    }
  }
}

bool edge_candidate_hits(RouteClass cls_a, std::uint16_t len_a,
                         RouteClass cls_b, std::uint16_t len_b,
                         topo::Link b_role_toward_a, bool added) {
  if (cls_b == RouteClass::None) return false;  // b offers nothing
  RouteClass offer_cls;
  switch (b_role_toward_a) {
    case topo::Link::Customer:
      // b only exports Self/Customer-class routes up to its provider a.
      if (cls_b != RouteClass::Self && cls_b != RouteClass::Customer) return false;
      offer_cls = RouteClass::Customer;
      break;
    case topo::Link::Peer:
      if (cls_b != RouteClass::Self && cls_b != RouteClass::Customer) return false;
      offer_cls = RouteClass::Peer;
      break;
    case topo::Link::Provider:
      offer_cls = RouteClass::Provider;  // a provider exports its best route
      break;
    default:
      return false;
  }
  // Lexicographic (class, length); None sorts after everything.
  const std::uint64_t offer_key =
      (static_cast<std::uint64_t>(offer_cls) << 32) |
      (static_cast<std::uint64_t>(len_b) + 1);
  const std::uint64_t best_key =
      cls_a == RouteClass::None
          ? std::numeric_limits<std::uint64_t>::max()
          : (static_cast<std::uint64_t>(cls_a) << 32) | len_a;
  return added ? offer_key <= best_key : offer_key == best_key;
}

}  // namespace sbgp::rt
