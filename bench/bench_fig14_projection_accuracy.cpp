// Figure 14 / Section 8.1: how accurate is the myopic projection? For each
// early-adopter set (theta = 0), collect, over every ISP that deploys, the
// ratio of its projected utility to the utility it actually realises in the
// next round — the gap exists only because multiple ISPs flip simultaneously.
#include "bench_common.h"
#include "stats/histogram.h"
#include "stats/table.h"

int main(int argc, char** argv) {
  using namespace sbgp;
  const auto opt = bench::parse_options(argc, argv, /*default_nodes=*/1200);
  bench::print_header("Figure 14 - projected vs realised utility (theta = 0)", opt);

  auto net = bench::make_internet(opt);
  const auto& g = net.graph;

  struct Set {
    std::string name;
    std::vector<topo::AsId> adopters;
  };
  std::vector<Set> sets{
      {"top-5 ISPs",
       core::select_adopters(net, core::AdopterStrategy::TopDegreeIsps, 5, 1)},
      {"5 CPs",
       core::select_adopters(net, core::AdopterStrategy::ContentProviders, 0, 1)},
      {"CPs + top-5",
       core::select_adopters(net, core::AdopterStrategy::CpsPlusTopIsps, 5, 1)},
  };

  stats::Table t({"adopters", "flips observed", "median proj/actual",
                  "p80", "p90", "overestimate by >2%"});
  for (const auto& s : sets) {
    core::SimConfig cfg = bench::case_study_config(opt);
    cfg.theta = 0.0;
    core::DeploymentSimulator sim(g, cfg);

    // Track projections of this round's flippers; realised utility is read
    // from the next round's observation.
    std::vector<std::pair<topo::AsId, double>> pending;
    stats::Summary ratios;
    std::size_t overestimates = 0, total = 0;
    (void)sim.run(core::DeploymentState::initial(g, s.adopters),
            [&](const core::RoundObservation& obs) {
              for (const auto& [n, projected] : pending) {
                const double actual = (*obs.utility)[n];
                if (actual > 0) {
                  ratios.add(projected / actual);
                  ++total;
                  if (projected > actual * 1.02) ++overestimates;
                }
              }
              pending.clear();
              for (const auto n : *obs.flipping_on) {
                pending.emplace_back(n, (*obs.projected_on)[n]);
              }
            });

    t.begin_row();
    t.add(s.name);
    t.add(ratios.count());
    t.add(ratios.median(), 4);
    t.add(ratios.quantile(0.8), 4);
    t.add(ratios.quantile(0.9), 4);
    t.add_percent(total > 0 ? static_cast<double>(overestimates) /
                                  static_cast<double>(total)
                            : 0.0,
                  1);
  }
  t.print(std::cout);
  bench::print_paper_note(
      "projections are excellent: 80% of ISPs overestimate by <2%, 90% by "
      "<6.7%; most projected utilities are within a few percent of what the "
      "ISP actually receives next round.");
  return 0;
}
