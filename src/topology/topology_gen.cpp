#include "topology/topology_gen.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace sbgp::topo {

namespace {

/// Preferential-attachment pool: every eligible provider appears once per
/// "attachment credit" (1 + number of customers gained so far), so sampling
/// uniformly from the pool is rich-get-richer sampling.
class AttachmentPool {
 public:
  void add(AsId id) { entries_.push_back(id); }

  /// Samples an entry accepted by `eligible`; falls back to a linear scan if
  /// rejection sampling fails repeatedly. Returns kNoAs if nothing eligible.
  template <typename Rng, typename Pred>
  AsId sample(Rng& rng, Pred eligible) const {
    if (entries_.empty()) return kNoAs;
    std::uniform_int_distribution<std::size_t> dist(0, entries_.size() - 1);
    for (int tries = 0; tries < 200; ++tries) {
      const AsId cand = entries_[dist(rng)];
      if (eligible(cand)) return cand;
    }
    for (AsId cand : entries_) {
      if (eligible(cand)) return cand;
    }
    return kNoAs;
  }

 private:
  std::vector<AsId> entries_;
};

/// Draws the number of providers from the (1,2,3) distribution given by the
/// two- and three-provider probabilities.
template <typename Rng>
std::uint32_t draw_provider_count(Rng& rng, double p2, double p3) {
  std::uniform_real_distribution<double> u(0.0, 1.0);
  const double r = u(rng);
  if (r < p3) return 3;
  if (r < p3 + p2) return 2;
  return 1;
}

}  // namespace

Internet generate_internet(const InternetConfig& cfg) {
  const auto total_isps =
      static_cast<std::uint32_t>(static_cast<double>(cfg.total_ases) * cfg.isp_fraction);
  if (cfg.num_tier1 == 0 || total_isps <= cfg.num_tier1) {
    throw std::invalid_argument("InternetConfig: need more ISPs than Tier-1s");
  }
  if (cfg.total_ases < total_isps + cfg.num_content_providers + 1) {
    throw std::invalid_argument("InternetConfig: total_ases too small");
  }
  const std::uint32_t num_mid_isps = total_isps - cfg.num_tier1;
  const std::uint32_t num_stubs =
      cfg.total_ases - total_isps - cfg.num_content_providers;

  std::mt19937_64 rng(cfg.seed);
  Internet net;
  AsGraph& g = net.graph;

  // --- Tier-1 clique (level 0) -------------------------------------------
  std::vector<std::uint32_t> level;  // per ISP id; tier1 = 0
  for (std::uint32_t i = 0; i < cfg.num_tier1; ++i) {
    const AsId id = g.add_as(i + 1);
    net.tier1.push_back(id);
    level.push_back(0);
  }
  for (std::size_t i = 0; i < net.tier1.size(); ++i) {
    for (std::size_t j = i + 1; j < net.tier1.size(); ++j) {
      g.add_peer(net.tier1[i], net.tier1[j]);
    }
  }

  AttachmentPool pool;
  // Seed Tier-1s with extra attachment credits so the hierarchy hangs off
  // them strongly (they are by far the best-connected ASes empirically).
  for (AsId t : net.tier1) {
    for (int credit = 0; credit < 4; ++credit) pool.add(t);
  }

  // --- Mid-tier ISPs (levels 1..isp_levels) ------------------------------
  std::vector<std::vector<AsId>> by_level(cfg.isp_levels + 1);
  by_level[0] = net.tier1;
  std::vector<AsId> all_isps = net.tier1;
  std::uniform_int_distribution<std::uint32_t> level_dist(1, cfg.isp_levels);
  for (std::uint32_t i = 0; i < num_mid_isps; ++i) {
    const AsId id = g.add_as(static_cast<std::uint32_t>(g.num_nodes()) + 1);
    // Deeper levels are more populous (the hierarchy broadens downward).
    std::uint32_t lvl = level_dist(rng);
    lvl = std::max(level_dist(rng), lvl);
    level.push_back(lvl);
    const std::uint32_t want = draw_provider_count(rng, cfg.isp_two_provider_prob,
                                                   cfg.isp_three_provider_prob);
    std::uint32_t got = 0;
    for (std::uint32_t k = 0; k < want * 6 && got < want; ++k) {
      const AsId prov = pool.sample(rng, [&](AsId cand) {
        if (cand == id || level[cand] >= lvl) return false;
        Link unused;
        return !g.link_between(id, cand, unused);
      });
      if (prov == kNoAs) break;
      if (g.add_customer_provider(prov, id)) {
        pool.add(prov);  // provider gains an attachment credit
        ++got;
      }
    }
    by_level[lvl].push_back(id);
    all_isps.push_back(id);
    pool.add(id);  // the new ISP itself becomes attachable
  }

  // --- ISP-to-ISP peering --------------------------------------------------
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  for (std::uint32_t lvl = 1; lvl <= cfg.isp_levels; ++lvl) {
    for (AsId isp : by_level[lvl]) {
      double budget = cfg.isp_peer_attempts;
      while (budget > 0.0) {
        if (budget < 1.0 && u01(rng) > budget) break;
        budget -= 1.0;
        const auto& candidates = by_level[lvl];
        if (candidates.size() < 2) break;
        std::uniform_int_distribution<std::size_t> pick(0, candidates.size() - 1);
        const AsId other = candidates[pick(rng)];
        if (other == isp) continue;
        g.add_peer(isp, other);  // duplicate edges are rejected internally
      }
    }
  }

  // --- Content providers ---------------------------------------------------
  for (std::uint32_t i = 0; i < cfg.num_content_providers; ++i) {
    const AsId cp = g.add_as(static_cast<std::uint32_t>(g.num_nodes()) + 1);
    g.mark_content_provider(cp);
    net.cps.push_back(cp);
    // CPs buy transit from a couple of Tier-1s...
    std::uniform_int_distribution<std::size_t> pick_t1(0, net.tier1.size() - 1);
    std::size_t got = 0;
    while (got < 2) {
      const AsId t1 = net.tier1[pick_t1(rng)];
      if (g.add_customer_provider(t1, cp)) ++got;
    }
    // ... and peer with a sizable set of ISPs even in the base graph.
    const int cp_peers = std::max(
        6, static_cast<int>(cfg.cp_peer_fraction * static_cast<double>(all_isps.size())));
    for (int k = 0; k < cp_peers; ++k) {
      const AsId isp = pool.sample(rng, [&](AsId cand) {
        if (cand == cp) return false;
        Link unused;
        return !g.link_between(cp, cand, unused);
      });
      if (isp != kNoAs) g.add_peer(cp, isp);
    }
  }

  // --- Stubs ----------------------------------------------------------------
  for (std::uint32_t i = 0; i < num_stubs; ++i) {
    const AsId stub = g.add_as(static_cast<std::uint32_t>(g.num_nodes()) + 1);
    const std::uint32_t want = draw_provider_count(rng, cfg.stub_two_provider_prob,
                                                   cfg.stub_three_provider_prob);
    std::uint32_t got = 0;
    for (std::uint32_t k = 0; k < want * 6 && got < want; ++k) {
      const AsId prov = pool.sample(rng, [&](AsId cand) {
        Link unused;
        return !g.link_between(stub, cand, unused);
      });
      if (prov == kNoAs) break;
      if (g.add_customer_provider(prov, stub)) {
        pool.add(prov);
        ++got;
      }
    }
    assert(got >= 1);
  }

  // --- IXP membership & peering augmentation --------------------------------
  for (AsId isp : all_isps) {
    if (u01(rng) < cfg.ixp_member_fraction) net.ixp_members.push_back(isp);
  }
  std::vector<bool> transit_or_cp(g.num_nodes(), false);
  for (AsId isp : all_isps) transit_or_cp[isp] = true;
  for (AsId cp : net.cps) transit_or_cp[cp] = true;
  for (AsId n = 0; n < g.num_nodes(); ++n) {
    // A thin tail of stubs shows up at IXPs too.
    if (!transit_or_cp[n] && u01(rng) < cfg.ixp_member_fraction * 0.15) {
      net.ixp_members.push_back(n);
    }
  }
  const auto extra =
      static_cast<std::size_t>(cfg.ixp_extra_peer_fraction * cfg.total_ases);
  if (net.ixp_members.size() >= 2) {
    std::uniform_int_distribution<std::size_t> pick(0, net.ixp_members.size() - 1);
    std::size_t added = 0;
    for (std::size_t attempts = 0; attempts < extra * 10 && added < extra; ++attempts) {
      const AsId a = net.ixp_members[pick(rng)];
      const AsId b = net.ixp_members[pick(rng)];
      if (a == b) continue;
      if (g.add_peer(a, b)) ++added;
    }
  }

  g.finalize();
  std::sort(net.tier1.begin(), net.tier1.end(), [&](AsId a, AsId b) {
    return g.degree(a) != g.degree(b) ? g.degree(a) > g.degree(b) : a < b;
  });
  return net;
}

Internet augment_cp_peering(const Internet& base, double fraction, std::uint64_t seed,
                            std::size_t* added_out) {
  const AsGraph& src = base.graph;
  AsGraph g;
  for (AsId n = 0; n < src.num_nodes(); ++n) {
    const AsId id = g.add_as(src.asn(n));
    assert(id == n);
    (void)id;
    g.set_weight(n, src.weight(n));
  }
  for (AsId n = 0; n < src.num_nodes(); ++n) {
    if (src.is_content_provider(n)) g.mark_content_provider(n);
    for (AsId c : src.customers(n)) g.add_customer_provider(n, c);
    for (AsId p : src.peers(n)) {
      if (n < p) g.add_peer(n, p);
    }
  }

  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  std::size_t added = 0;
  for (AsId cp : base.cps) {
    for (AsId member : base.ixp_members) {
      if (member == cp) continue;
      if (u01(rng) < fraction && g.add_peer(cp, member)) ++added;
    }
  }
  if (added_out != nullptr) *added_out = added;

  g.finalize();
  Internet out;
  out.graph = std::move(g);
  out.tier1 = base.tier1;
  out.cps = base.cps;
  out.ixp_members = base.ixp_members;
  return out;
}

std::vector<AsId> top_degree_isps(const AsGraph& graph, std::size_t k) {
  std::vector<AsId> isps;
  for (AsId n = 0; n < graph.num_nodes(); ++n) {
    if (graph.is_isp(n)) isps.push_back(n);
  }
  std::sort(isps.begin(), isps.end(), [&](AsId a, AsId b) {
    return graph.degree(a) != graph.degree(b) ? graph.degree(a) > graph.degree(b)
                                              : a < b;
  });
  if (isps.size() > k) isps.resize(k);
  return isps;
}

}  // namespace sbgp::topo
