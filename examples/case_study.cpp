// The Section 5 case study as a narrative walkthrough: generate an
// Internet, seed the 5 CPs + 5 Tier-1s as early adopters, run the
// deployment process with a round observer, and narrate the competition
// dynamics — which ISPs steal traffic, which regain it, who never deploys —
// then audit the final state (secure paths, Section 7.3 turn-off scan).
//
//   ./case_study [--nodes N] [--seed S] [--theta F]
#include <cstring>
#include <iostream>

#include "core/analysis.h"
#include "core/early_adopters.h"
#include "core/simulator.h"
#include "stats/table.h"
#include "topology/topology_gen.h"

int main(int argc, char** argv) {
  using namespace sbgp;
  std::uint32_t nodes = 2000;
  std::uint64_t seed = 42;
  double theta = 0.05;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (!std::strcmp(argv[i], "--nodes")) nodes = static_cast<std::uint32_t>(std::atoi(argv[i + 1]));
    if (!std::strcmp(argv[i], "--seed")) seed = static_cast<std::uint64_t>(std::atoll(argv[i + 1]));
    if (!std::strcmp(argv[i], "--theta")) theta = std::atof(argv[i + 1]);
  }

  topo::InternetConfig net_cfg;
  net_cfg.total_ases = nodes;
  net_cfg.seed = seed;
  auto net = topo::generate_internet(net_cfg);
  const auto& g = net.graph;
  const double w_cp = topo::apply_traffic_model(net.graph, net.cps, 0.10);

  std::cout << "== The market-driven S*BGP transition: a case study ==\n\n"
            << "Internet: " << g.num_nodes() << " ASes (" << g.num_stubs()
            << " stubs, " << g.num_isps() << " ISPs, "
            << g.num_content_providers() << " CPs with w_CP=" << w_cp << ")\n";

  const auto adopters =
      core::select_adopters(net, core::AdopterStrategy::CpsPlusTopIsps, 5, 1);
  std::cout << "early adopters (5 CPs + 5 Tier-1s):";
  for (const auto a : adopters) {
    std::cout << " AS" << g.asn(a) << "(" << topo::to_string(g.cls(a)) << ")";
  }
  std::cout << "\nthreshold theta = " << theta * 100 << "%\n\n";

  core::SimConfig cfg;
  cfg.model = core::UtilityModel::Outgoing;
  cfg.theta = theta;
  core::DeploymentSimulator sim(g, cfg);

  const auto result = sim.run(
      core::DeploymentState::initial(g, adopters),
      [&](const core::RoundObservation& obs) {
        // Narrate: who flips this round and why (steal vs regain).
        std::size_t stealing = 0, regaining = 0;
        for (const auto n : *obs.flipping_on) {
          const double u = (*obs.utility)[n];
          const double p = (*obs.projected_on)[n];
          if (p > u * 1.10) ++stealing;
          else ++regaining;
        }
        std::cout << "round " << obs.round << ": " << obs.flipping_on->size()
                  << " ISPs deploy (" << stealing << " see >10% gains, "
                  << regaining << " defend/recover traffic)\n";
      });

  std::cout << "\n=> " << core::to_string(result.outcome) << " after "
            << result.rounds_run() << " rounds\n";
  const double n_d = static_cast<double>(g.num_nodes());
  std::cout << "secure: "
            << 100.0 * static_cast<double>(result.final_state.num_secure()) / n_d
            << "% of ASes, "
            << 100.0 *
                   static_cast<double>(result.final_state.num_secure_of_class(
                       g, topo::AsClass::Isp)) /
                   static_cast<double>(g.num_isps())
            << "% of ISPs (paper: 85% / 80%)\n";

  par::ThreadPool pool(0);
  const auto paths =
      core::count_secure_paths(g, result.final_state.flags(), cfg, pool);
  std::cout << "secure paths: " << 100.0 * paths.fraction << "% of all pairs (f^2 = "
            << 100.0 * paths.f_squared << "%; paper: 65%, slightly under f^2)\n";

  core::SimConfig incfg = cfg;
  incfg.model = core::UtilityModel::Incoming;
  const auto scan = core::scan_turn_off_incentives(
      g, result.final_state.flags(), incfg, pool);
  std::cout << "buyer's remorse audit: " << scan.isps_with_incentive << " of "
            << scan.secure_isps
            << " secure ISPs could profit (in the incoming model) from "
               "disabling S*BGP for some destination (paper: >=10%)\n";
  return 0;
}
