file(REMOVE_RECURSE
  "libsbgp_proto.a"
)
