# Empty compiler generated dependencies file for sbgp_core.
# This may be replaced when dependencies are built.
