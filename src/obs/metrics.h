// Lock-free-on-hot-path metrics: counters, gauges and fixed-bucket latency
// histograms, sharded per worker thread and aggregated only on read.
//
// Design constraints (this library sits BELOW everything else):
//   * No dependency on any other sbgp_* library. The parallel layer wants to
//     record queue-wait latencies and the routing/core layers count tree
//     builds, so obs must not link against them. The only coupling point is
//     `set_shard_index_provider`, through which sbgp_parallel injects
//     `ThreadPool::current_worker_index` at static-init time; until (or
//     unless) a provider is installed, threads fall back to a sequential
//     thread-local id.
//   * Zero work when disabled. Every mutating call checks a relaxed atomic
//     flag first; with the compile-time kill switch (-DSBGPSIM_OBS_DISABLED,
//     CMake option SBGPSIM_OBS=OFF) the flag is a constexpr false and the
//     entire body folds away.
//   * Hot-path writes are a single relaxed fetch_add on a cache-line-aligned
//     shard chosen by worker index — no locks, no false sharing between
//     workers. Reads (snapshots) sum the shards; they are racy-but-monotone,
//     which is fine for telemetry.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sbgp::obs {

// ---------------------------------------------------------------------------
// Global switches and thread identity.
// ---------------------------------------------------------------------------

namespace detail {
#ifndef SBGPSIM_OBS_DISABLED
extern std::atomic<bool> g_metrics_enabled;
#endif
/// Sequential id for threads when no shard provider is installed (and for
/// trace events). Stable for the lifetime of the thread.
std::size_t fallback_thread_slot();
std::string json_escape(std::string_view s);
}  // namespace detail

/// Runtime switch for all metric mutations. Reading metrics always works.
#ifdef SBGPSIM_OBS_DISABLED
constexpr bool metrics_enabled() { return false; }
inline void set_metrics_enabled(bool) {}
#else
inline bool metrics_enabled() {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}
void set_metrics_enabled(bool on);
#endif

/// Returns the calling thread's shard hint: a small worker index, or
/// `SIZE_MAX` for threads that are not pool workers. Installed once by the
/// parallel layer; obs itself never depends on it being present.
using ShardIndexFn = std::size_t (*)();
void set_shard_index_provider(ShardIndexFn fn);

namespace detail {
extern std::atomic<ShardIndexFn> g_shard_provider;

/// Maps the provider's answer into [0, shards): slot 0 is reserved for
/// non-worker threads, workers cycle through the remaining slots.
inline std::size_t shard_slot(std::size_t shards) {
  const ShardIndexFn fn = g_shard_provider.load(std::memory_order_acquire);
  const std::size_t raw = fn != nullptr ? fn() : fallback_thread_slot();
  if (raw == std::numeric_limits<std::size_t>::max()) return 0;
  return 1 + raw % (shards - 1);
}
}  // namespace detail

// ---------------------------------------------------------------------------
// Instruments.
// ---------------------------------------------------------------------------

/// Monotone event counter. `add` is a relaxed fetch_add on the caller's
/// shard; `value` sums shards (racy-but-monotone snapshot).
class Counter {
 public:
  static constexpr std::size_t kShards = 33;  // slot 0 + up to 32 workers

  void add(std::uint64_t n = 1) {
    if (!metrics_enabled()) return;
    shards_[detail::shard_slot(kShards)].v.fetch_add(n,
                                                     std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  void reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kShards> shards_{};
};

/// Last-write-wins scalar, e.g. "current dirty fraction". Single atomic —
/// gauges are set from one site at a time, not racing across workers.
class Gauge {
 public:
  void set(double v) {
    if (!metrics_enabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }

  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed power-of-two-bucket latency histogram over nanoseconds. Bucket i
/// holds samples in [2^i, 2^(i+1)) ns; quantiles are therefore resolved to a
/// factor of 2, which is plenty for "where does the time go" telemetry while
/// keeping `record_ns` at one shift + one relaxed fetch_add.
class LatencyHistogram {
 public:
  static constexpr std::size_t kShards = 17;  // histograms are rarer; smaller
  static constexpr std::size_t kBuckets = 48;  // 2^47 ns ~ 39 hours

  void record_ns(std::uint64_t ns) {
    if (!metrics_enabled()) return;
    Shard& s = shards_[detail::shard_slot(kShards)];
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(ns, std::memory_order_relaxed);
    s.buckets[bucket_of(ns)].fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] static std::size_t bucket_of(std::uint64_t ns);
  /// Inclusive upper bound of bucket i in ns (lower bound is 2^i, bucket 0
  /// also absorbs 0).
  [[nodiscard]] static std::uint64_t bucket_upper_ns(std::size_t i);

  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] std::uint64_t sum_ns() const;
  [[nodiscard]] double mean_ns() const;
  /// Upper bound of the bucket containing quantile `q` in [0, 1]; 0 when
  /// empty. Conservative (never under-reports).
  [[nodiscard]] std::uint64_t quantile_ns(double q) const;
  /// Summed per-bucket counts, index = log2 bucket.
  [[nodiscard]] std::array<std::uint64_t, kBuckets> bucket_counts() const;

  void reset();

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
  };
  std::array<Shard, kShards> shards_{};
};

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

/// Named instrument registry. Lookup takes a mutex (do it once, outside the
/// hot loop — typically into a function-local static reference); returned
/// references are stable for the registry's lifetime. Names sort
/// lexicographically in snapshots so output is deterministic.
class Registry {
 public:
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  LatencyHistogram& histogram(const std::string& name);

  /// Zeroes every registered instrument (instruments stay registered, so
  /// cached references remain valid).
  void reset();

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  /// Hand-written serialisation — obs cannot depend on exp::json (exp sits
  /// above it); tests round-trip the output through exp::Json::parse.
  void write_json(std::ostream& os) const;
  [[nodiscard]] std::string to_json_string() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

/// Monotonic nanoseconds since the first call in this process. Cheap enough
/// for per-task timestamps; shared by metrics and tracing.
[[nodiscard]] std::uint64_t now_ns();

}  // namespace sbgp::obs
