// Concrete AS-graph constructions from the paper's proofs, buildable and
// runnable against the deployment simulator:
//
//  - CHICKEN gadget (Appendix K.5, Figure 21 / Table 5): two ISPs playing
//    chicken over Cross traffic. Its best-response structure has exactly two
//    stable states, (ON,OFF) and (OFF,ON); under the simulator's synchronous
//    myopic dynamics it oscillates forever from any symmetric start — the
//    concrete witness for "oscillations exist" (Section 7.2 / Appendix F).
//  - AND gadget (Appendix K.4, Figure 20): output ISP '&' turns on iff all
//    three inputs are on.
//  - Buyer's-remorse network (Section 7.1, Figure 13): the India-Telecom /
//    Akamai / NTT instance in which a secure ISP raises its incoming
//    utility by turning S*BGP off.
//  - Set-cover network (Theorem 6.1 / Appendix E, Figure 16): the reduction
//    graph in which picking early adopters is exactly MAX-k-COVER.
//
// The paper pins its "fixed nodes" with auxiliary sub-gadgets it omits "to
// reduce clutter"; we pin them with SimConfig::frozen instead. Customer
// trees / destination pyramids of aggregate size m are modelled as single
// stubs of weight m (only the traffic volume matters).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/deployment_state.h"
#include "core/simulator.h"
#include "topology/as_graph.h"

namespace sbgp::gadgets {

using core::DeploymentState;
using topo::AsGraph;
using topo::AsId;

/// A built gadget: the graph, its initial deployment state, the freeze
/// flags, and named handles to the interesting nodes.
struct Gadget {
  AsGraph graph;
  DeploymentState initial{0};
  std::vector<std::uint8_t> frozen;
  std::unordered_map<std::string, AsId> handle;

  [[nodiscard]] AsId node(const std::string& name) const { return handle.at(name); }

  /// Wires a SimConfig for running this gadget: incoming-utility model,
  /// theta = 0, lowest-AS-number tie-breaking (Appendix K.3), frozen nodes,
  /// single thread (gadgets are tiny).
  void configure(core::SimConfig& cfg) const;
};

/// Figure 21 CHICKEN gadget. Handles: "10", "20", "local1", "local2",
/// "cross1", "cross2", "d1", "d2". Both players start OFF.
/// `m` is the Cross-1 tree volume (Cross-2 carries 2m), `eps` the Local
/// tree volume; the construction requires eps << m.
[[nodiscard]] Gadget make_chicken(double m = 10000.0, double eps = 100.0);

/// Appendix K.6 k-SELECTOR gadget: k player ISPs pairwise connected through
/// CHICKEN gadgets (Figure 22), sharing one Local flow per player. Its
/// stable states are exactly the k one-hot states (player i ON, everyone
/// else OFF); with more than one player ON every ON player wants OFF, and
/// from all-OFF every player wants ON (so synchronous dynamics oscillate).
/// Handles: "p1".."pk" for the players, "d1".."dk" for their destinations.
[[nodiscard]] Gadget make_selector(std::size_t k, double m = 10000.0,
                                   double eps = 100.0);

/// Appendix K.7 TRANSITION gadget attached to a k-SELECTOR: resets the
/// selector from one-hot state `from` to one-hot state `to` (0-based player
/// indices). A selector-transition node "t" fires when player `from` is ON
/// (And traffic dominates its Hold traffic), steals player `to`'s Override
/// traffic (forcing `to` ON), whereupon selector pressure turns `from` OFF
/// and "t" retires to its Hold traffic — the Figure 23 five-phase
/// progression, ending stably in one-hot(`to`).
/// Handles: selector handles plus "t", "a", "bb", "c", "e", "and", "hold",
/// "override", "d_and", "d_ov".
[[nodiscard]] Gadget make_selector_with_transition(std::size_t k, std::size_t from,
                                                   std::size_t to,
                                                   double m = 10000.0,
                                                   double eps = 100.0);

/// Evaluates the Table 5 bi-matrix: incoming utilities of players 10 and 20
/// in each of the four (ON/OFF) states of the chicken gadget.
struct ChickenMatrix {
  // [i][j]: i = player-10 ON?, j = player-20 ON?; .first = u(10), .second = u(20)
  std::array<std::array<std::pair<double, double>, 2>, 2> u;
};
[[nodiscard]] ChickenMatrix evaluate_chicken_matrix(const Gadget& chicken,
                                                    std::size_t threads = 1);

/// Figure 20 AND gadget. Handles: "in1", "in2", "in3", "amp" (the output
/// node '&'), "hold", "and1".."and3", "d". Inputs are frozen at the given
/// values; the output starts OFF and is free.
[[nodiscard]] Gadget make_and(std::array<bool, 3> inputs, double m = 1000.0);

/// Figure 13 buyer's-remorse network. Handles: "akamai" (CP, weight w_cp),
/// "ntt" (provider of "telecom"), "telecom" (the ISP with the turn-off
/// incentive, AS 4755 in the paper), "reseller" (AS 9498), "stub<k>".
/// Initial state: akamai, ntt, telecom secure; telecom's stubs simplex.
/// Only "telecom" is free.
[[nodiscard]] Gadget make_buyers_remorse(std::size_t num_stubs = 24,
                                         double w_cp = 821.0);

/// A SET-COVER instance: `sets[i]` lists the covered elements of a
/// universe {0, ..., universe_size-1}.
struct SetCoverInstance {
  std::size_t universe_size = 0;
  std::vector<std::vector<std::size_t>> sets;
};

/// Theorem 6.1 reduction network. Handles: "d", "s<i>_1", "s<i>_2" per set,
/// "u<j>" per element, "alt<j>" / "altb<j>" for element j's decoy route.
/// Early adopters should be chosen among the s<i>_1 nodes; the number of
/// ASes secure at termination is (up to the fixed additive structure)
/// the number of covered elements.
[[nodiscard]] Gadget make_set_cover(const SetCoverInstance& instance);

/// Per-link deployment dilemma (Theorem 8.2 / Appendix J): ISP "x" must
/// decide whether to activate S*BGP on the link to its provider "2".
/// Activating it attracts the secure stub "c1" (weight m, enters x over a
/// customer edge) but repels the secure source "s" (weight w_s, whose
/// traffic to x's stub "c2" then arrives over the provider edge from "2"
/// instead of the customer edge from "r") — x cannot have both flows on
/// customer edges simultaneously, the DILEMMA at the heart of the
/// NP-hardness proof. Handles: "x", "2", "r", "y", "s", "c1", "c2", "d1".
/// All nodes except r and y are secure; everything is frozen (this gadget
/// is evaluated with per-link masks, not dynamics).
[[nodiscard]] Gadget make_per_link_dilemma(double m = 1000.0, double w_s = 2000.0);

/// Candidate early adopters of the set-cover network (the s<i>_1 nodes).
[[nodiscard]] std::vector<AsId> set_cover_candidates(const Gadget& g,
                                                     const SetCoverInstance& instance);

}  // namespace sbgp::gadgets
