// Executes one Job end-to-end: materialise the graph (cached — many grid
// points share a topology), resolve the early-adopter spec, run the
// deployment simulator, and fold the result into a JobRecord. Everything
// here is deterministic given the Job; timing metadata is filled in by the
// scheduler.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "exp/job_spec.h"
#include "exp/result_store.h"
#include "topology/topology_gen.h"

namespace sbgp::exp {

/// Thread-safe cache of materialised topologies keyed by GraphSpec::key().
/// The traffic model (CP fraction x) is applied once at build time, so a
/// cached Internet is ready to simulate on. Entries live for the cache's
/// lifetime; returned references are stable (values are heap-allocated).
class GraphCache {
 public:
  /// Returns the (possibly freshly built) topology for `spec`. Building
  /// happens under the cache lock, which serialises concurrent first
  /// requests for distinct graphs — deliberate: graph generation itself is
  /// memory-hungry, and jobs overwhelmingly reuse a small set of graphs.
  const topo::Internet& get(const GraphSpec& spec);

  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::unique_ptr<topo::Internet>> cache_;
};

/// Materialises a CLI-style adopter SPEC ("none", "top:K", "cps",
/// "cps+top:K", "random:K", "asn:1,2,3") against `net`. Throws
/// std::invalid_argument on malformed specs or unknown ASNs — shared by the
/// CLI and the job runner so both reject the same inputs.
[[nodiscard]] std::vector<topo::AsId> resolve_adopter_spec(
    const topo::Internet& net, const std::string& spec, std::uint64_t seed);

/// Runs `job` with `inner_threads` simulator threads. `stop` (nullable) is
/// polled once per simulation round; when it fires the record comes back
/// with status "timeout". Throws on invalid job parameters (unreadable
/// graph file, bad adopter spec, …) — the scheduler maps that to "failed".
[[nodiscard]] JobRecord run_job(const Job& job, GraphCache& cache,
                                std::size_t inner_threads,
                                const std::function<bool()>& stop);

}  // namespace sbgp::exp
