file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_secure_paths.dir/bench_fig9_secure_paths.cpp.o"
  "CMakeFiles/bench_fig9_secure_paths.dir/bench_fig9_secure_paths.cpp.o.d"
  "bench_fig9_secure_paths"
  "bench_fig9_secure_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_secure_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
