// Shared infrastructure for the per-table / per-figure bench harnesses.
// Every bench accepts:  --nodes N  --seed S  --threads T  --x F  --quiet
// and prints the paper's corresponding rows/series plus a "paper:" line
// quoting what the original reports, so shape can be compared at a glance.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/early_adopters.h"
#include "core/simulator.h"
#include "topology/topology_gen.h"

namespace sbgp::bench {

struct Options {
  std::uint32_t nodes = 1500;
  std::uint64_t seed = 42;
  std::size_t threads = 0;  // hardware
  double x = 0.10;          // CP traffic fraction
  bool quiet = false;
  /// When set, the harness appends its headline metrics as JSON records to
  /// this file (see JsonOut) so the perf/figure trajectory is tracked
  /// across PRs next to the google-benchmark BENCH_*.json files.
  std::string json_out;
};

inline Options parse_options(int argc, char** argv, std::uint32_t default_nodes = 1500) {
  Options opt;
  opt.nodes = default_nodes;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--nodes") opt.nodes = static_cast<std::uint32_t>(std::atoi(next()));
    else if (arg == "--seed") opt.seed = static_cast<std::uint64_t>(std::atoll(next()));
    else if (arg == "--threads") opt.threads = static_cast<std::size_t>(std::atoi(next()));
    else if (arg == "--x") opt.x = std::atof(next());
    else if (arg == "--quiet") opt.quiet = true;
    else if (arg == "--json-out") opt.json_out = next();
    else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0]
                << " [--nodes N] [--seed S] [--threads T] [--x F]"
                << " [--json-out FILE]\n";
      std::exit(0);
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      std::exit(2);
    }
  }
  return opt;
}

/// Generates the synthetic Internet with the CP traffic model applied.
inline topo::Internet make_internet(const Options& opt) {
  topo::InternetConfig cfg;
  cfg.total_ases = opt.nodes;
  cfg.seed = opt.seed;
  topo::Internet net = topo::generate_internet(cfg);
  topo::apply_traffic_model(net.graph, net.cps, opt.x);
  return net;
}

/// The Section 5 case-study early adopters: five CPs + five top-degree ISPs
/// (the paper's Sprint/Verizon/AT&T/Level3/Cogent analogues).
inline std::vector<topo::AsId> case_study_adopters(const topo::Internet& net) {
  return core::select_adopters(net, core::AdopterStrategy::CpsPlusTopIsps, 5,
                               /*seed=*/1);
}

/// Standard case-study simulator config (outgoing utility, theta = 5%).
inline core::SimConfig case_study_config(const Options& opt) {
  core::SimConfig cfg;
  cfg.model = core::UtilityModel::Outgoing;
  cfg.theta = 0.05;
  cfg.threads = opt.threads;
  return cfg;
}

/// Minimal metrics sink behind `--json-out`: collects (name, value, unit)
/// rows and writes one google-benchmark-shaped document on destruction, so
/// the table harnesses and the microbenchmarks land in the same BENCH_*.json
/// tracking flow (tools/run_bench.sh).
class JsonOut {
 public:
  explicit JsonOut(const Options& opt) : path_(opt.json_out), opt_(opt) {}
  JsonOut(const JsonOut&) = delete;
  JsonOut& operator=(const JsonOut&) = delete;

  void add(const std::string& name, double value, const std::string& unit) {
    if (path_.empty()) return;
    rows_.push_back({name, value, unit});
  }

  ~JsonOut() {
    if (path_.empty() || rows_.empty()) return;
    std::ofstream out(path_);
    out << "{\n  \"context\": {\"nodes\": " << opt_.nodes << ", \"seed\": "
        << opt_.seed << ", \"x\": " << opt_.x << "},\n  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      out << "    {\"name\": \"" << rows_[i].name << "\", \"value\": "
          << rows_[i].value << ", \"unit\": \"" << rows_[i].unit << "\"}"
          << (i + 1 < rows_.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
  }

 private:
  struct Row {
    std::string name;
    double value;
    std::string unit;
  };
  std::string path_;
  Options opt_;
  std::vector<Row> rows_;
};

inline void print_header(const std::string& what, const Options& opt) {
  std::cout << "=== " << what << " ===\n"
            << "synthetic Internet: " << opt.nodes << " ASes, seed " << opt.seed
            << ", CPs originate " << opt.x * 100 << "% of traffic\n\n";
}

inline void print_paper_note(const std::string& note) {
  std::cout << "paper: " << note << "\n";
}

}  // namespace sbgp::bench
