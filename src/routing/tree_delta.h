// Frontier-delta projection kernel: given a destination's base routing tree
// (over a sorted-tiebreak RibView + base SecureMask) and a hypothetical
// single-AS security flip, produce the flipped tree WITHOUT rebuilding it.
//
// The structure this exploits is Observation C.1: route classes, lengths and
// tiebreak sets are deployment-state independent, so a flip can only change
// (a) which candidate a node selects — and only where a candidate's
// path-security or the node's own mask bits changed — and (b) the subtree
// weights along the spine between moved nodes and the destination. Both
// effects propagate monotonically through rib.order: a node's selection
// reads only the path_secure bits of its tiebreak candidates, all of which
// precede it in the order; a node's subtree weight reads only the weights of
// its tree children, all of which follow it. Two heap-driven frontier passes
// (ascending rank for selection, descending for weights) therefore finalize
// every touched node exactly once, and untouched nodes provably keep their
// base values — the output is a copy-on-write overlay over the base tree.
//
// Bitwise identity with TreeComputer::compute is a hard contract (the
// --check-incremental differential layer compares doubles bit for bit, and
// CP weights are non-integer), so dirty subtree weights are not adjusted by
// ±deltas: each dirty parent is re-folded exactly, adding its children in
// the same descending-rank order the full fold uses.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "routing/arena.h"
#include "routing/rib.h"
#include "routing/routing_tree.h"
#include "routing/secure_state.h"
#include "topology/as_graph.h"

namespace sbgp::rt {

/// Per-apply accounting, also the input to the fallback threshold.
struct TreeDeltaStats {
  std::size_t seeds = 0;     ///< nodes whose mask bits differ base vs flip
  std::size_t resolved = 0;  ///< selection recomputations (phase 1 pops)
  std::size_t refolded = 0;  ///< subtree-weight refolds (phase 2 pops)
  std::size_t moved = 0;     ///< nodes whose next hop changed
  [[nodiscard]] std::size_t touched() const { return resolved + refolded; }
};

/// Reusable per-worker delta kernel. bind() indexes one destination's base
/// tree (amortized over every candidate projected against it); apply()
/// evaluates one flip mask as an overlay. All per-destination index arrays
/// live in an internal Arena (reset per bind, zero steady-state heap
/// allocations); the per-apply patch arrays are epoch-marked, so an apply
/// touches only O(frontier) cells, never O(N).
class TreeDelta {
 public:
  explicit TreeDelta(const AsGraph& graph);

  /// Indexes (rib, base, base_mask) for subsequent apply() calls. The three
  /// must stay alive and unchanged until the next bind(). Returns false —
  /// and leaves the kernel unbound — for RIBs the frontier rules don't
  /// cover: unsorted tiebreaks (selection is positional only under
  /// sort_tiebreaks) and two-origin hijack RIBs.
  bool bind(const RibView& rib, const RoutingTree& base,
            const SecureMask& base_mask);
  [[nodiscard]] bool bound() const { return bound_; }

  /// Fallback threshold: apply() bails out (returns false) once it has
  /// touched more than max(64, frac * num_reachable) nodes, so pathological
  /// flips cost at most a constant fraction of a full rebuild before the
  /// caller falls back to one.
  void set_max_touched_frac(double frac) { max_frac_ = frac; }

  /// Computes the flipped tree for `flip` (an assign_flipped patch of the
  /// bound base mask — it must share the graph and link set). Returns true
  /// and exposes the overlay on success; returns false past the touched-
  /// nodes threshold, in which case the overlay is invalid and the caller
  /// must take the full-rebuild path.
  [[nodiscard]] bool apply(const SecureMask& flip);

  [[nodiscard]] const TreeDeltaStats& stats() const { return stats_; }

  // --- Overlay reads. Valid after a successful apply(), until the next
  // apply()/bind(). Only nodes in rib.order may be queried (same contract
  // as RoutingTree: unreachable cells are stale there too).
  [[nodiscard]] AsId next_hop(AsId i) const {
    return sel_mark_[i] == epoch_ ? p_nh_[i] : base_->next_hop[i];
  }
  [[nodiscard]] bool path_secure(AsId i) const {
    return (sel_mark_[i] == epoch_ ? p_ps_[i] : base_->path_secure[i]) != 0;
  }
  [[nodiscard]] bool has_secure_candidate(AsId i) const {
    return (sel_mark_[i] == epoch_ ? p_hsc_[i]
                                   : base_->has_secure_candidate[i]) != 0;
  }
  [[nodiscard]] double subtree_weight(AsId i) const {
    return w_mark_[i] == epoch_ ? p_w_[i] : base_->subtree_weight[i];
  }

  /// Nodes whose has_secure_candidate bit is 1 in the flipped tree but 0 in
  /// the base tree, in rib.order order — exactly the per-projection
  /// footprint slice the incremental engine records (see project_candidate).
  [[nodiscard]] std::span<const AsId> hsc_gained() const {
    return hsc_gained_;
  }

  /// Eq. 1/2 contribution of `n` in the flipped tree; bit-identical to
  /// rt::node_contribution on a fully materialized flipped tree (same
  /// customer iteration order, same addends).
  [[nodiscard]] NodeContribution contribution(AsId n) const;

  /// Writes the full flipped tree into `out` (copy base + apply patches).
  /// O(N); for tests and debugging, not the hot path.
  void materialize(RoutingTree& out) const;

 private:
  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

  void push_sel(AsId x);
  void push_weight(AsId x);

  const AsGraph& graph_;

  // Bound per-destination state.
  RibView rib_;
  const RoutingTree* base_ = nullptr;
  const SecureMask* base_mask_ = nullptr;
  bool bound_ = false;
  double max_frac_ = 0.25;
  std::size_t max_touched_ = 0;

  // Per-destination indexes (arena: reset+realloc per bind, no heap traffic
  // once the arena reaches its steady shape).
  Arena arena_;
  std::uint32_t* rank_ = nullptr;       ///< position in rib.order (reachable only)
  std::uint32_t* rev_begin_ = nullptr;  ///< reverse-tiebreak CSR offsets, N+1
  AsId* rev_ids_ = nullptr;             ///< i appears under each j in tiebreak(i)
  std::uint32_t* kid_begin_ = nullptr;  ///< base-tree children CSR offsets, N+1
  AsId* kid_ids_ = nullptr;             ///< children in DESCENDING rank order

  // Epoch-marked per-apply patch slots (persistent vectors sized N once; a
  // slot is live iff its mark equals the current epoch).
  std::uint64_t epoch_ = 0;
  bool valid_ = false;
  std::vector<std::uint64_t> sel_mark_, w_mark_;
  std::vector<std::uint64_t> selq_mark_, wq_mark_, in_mark_;
  std::vector<AsId> p_nh_;
  std::vector<std::uint8_t> p_ps_, p_hsc_;
  std::vector<double> p_w_;
  std::vector<std::uint32_t> in_head_;  ///< head of the incomer chain per parent

  // Worklists (steady capacity).
  std::vector<std::uint64_t> sel_heap_;  ///< min-heap of (rank<<32)|node
  std::vector<std::uint64_t> w_heap_;    ///< max-heap of (rank<<32)|node
  struct Move {
    AsId node, from, to;
    std::uint32_t next;  ///< next index in the new parent's incomer chain
  };
  std::vector<Move> moved_;
  std::vector<AsId> hsc_gained_;
  std::vector<AsId> incomers_;  ///< per-refold scratch, sorted desc rank

  TreeDeltaStats stats_;
};

}  // namespace sbgp::rt
