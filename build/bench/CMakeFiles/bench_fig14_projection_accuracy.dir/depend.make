# Empty dependencies file for bench_fig14_projection_accuracy.
# This may be replaced when dependencies are built.
