
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/rib.cpp" "src/routing/CMakeFiles/sbgp_routing.dir/rib.cpp.o" "gcc" "src/routing/CMakeFiles/sbgp_routing.dir/rib.cpp.o.d"
  "/root/repo/src/routing/routing_tree.cpp" "src/routing/CMakeFiles/sbgp_routing.dir/routing_tree.cpp.o" "gcc" "src/routing/CMakeFiles/sbgp_routing.dir/routing_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/sbgp_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sbgp_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
