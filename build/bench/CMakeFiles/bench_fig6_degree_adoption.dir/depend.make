# Empty dependencies file for bench_fig6_degree_adoption.
# This may be replaced when dependencies are built.
