// Analysis passes over (graph, state) pairs used by the evaluation benches:
// secure-path counting (Figure 9), tiebreak-set distributions (Figure 10,
// Section 6.6), diamond counting (Table 1), and the per-destination
// turn-off-incentive scan of Section 7.3.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/simulator.h"
#include "parallel/thread_pool.h"
#include "stats/histogram.h"
#include "topology/as_graph.h"

namespace sbgp::core {

/// Figure 9: how many of the N*(N-1) ordered (source, destination) paths are
/// fully secure under `secure`, and the f^2 reference (f = fraction of
/// secure ASes).
struct SecurePathStats {
  std::uint64_t total_pairs = 0;
  std::uint64_t secure_pairs = 0;
  double fraction = 0.0;    ///< secure_pairs / total_pairs
  double f = 0.0;           ///< fraction of ASes secure
  double f_squared = 0.0;   ///< the upper-bound reference curve of Fig. 9
};

[[nodiscard]] SecurePathStats count_secure_paths(
    const AsGraph& graph, const std::vector<std::uint8_t>& secure,
    const SimConfig& cfg, par::ThreadPool& pool);

/// Figure 10 / Section 6.6: the distribution of tiebreak-set sizes across
/// all (source, destination) pairs, split by the source's class. This is
/// state-independent (Observation C.1).
struct TiebreakDistribution {
  stats::IntHistogram all;
  stats::IntHistogram isp;
  stats::IntHistogram stub;
};

[[nodiscard]] TiebreakDistribution tiebreak_distribution(const AsGraph& graph,
                                                         par::ThreadPool& pool);

/// Table 1: DIAMOND counting. For early adopter `e` and stub destination
/// `s`, a diamond exists when e's tiebreak set toward s contains >= 2
/// candidates — two ISPs compete for e's traffic to s (Figure 2). `strict`
/// additionally requires two of the competing next hops to be direct
/// providers of the stub.
struct DiamondCount {
  AsId adopter = topo::kNoAs;
  std::uint64_t diamonds = 0;         ///< stubs with a contested tiebreak at e
  std::uint64_t strict_diamonds = 0;  ///< ... where competitors are the stub's providers
};

[[nodiscard]] std::vector<DiamondCount> count_diamonds(
    const AsGraph& graph, std::span<const AsId> adopters, par::ThreadPool& pool);

/// Section 7.3: for the given state, find every secure ISP that could raise
/// its *incoming* utility by turning S*BGP off for at least one destination
/// ("turning off a destination is likely").
struct TurnOffScan {
  std::size_t secure_isps = 0;            ///< secure ISPs examined
  std::size_t isps_with_incentive = 0;    ///< ... with >= 1 profitable dest
  std::size_t isp_dest_pairs = 0;         ///< total profitable (ISP, dest) pairs
  double best_gain = 0.0;                 ///< largest single-destination gain
  AsId best_isp = topo::kNoAs;
};

[[nodiscard]] TurnOffScan scan_turn_off_incentives(
    const AsGraph& graph, const std::vector<std::uint8_t>& secure,
    const SimConfig& cfg, par::ThreadPool& pool);

/// Section 7.1, "turning off a destination": an ISP may refuse to propagate
/// S*BGP announcements for specific destinations (sending plain BGP ones
/// instead) while staying secure for everything else. This runs the
/// per-destination myopic dynamics to a fixed point: in each round every
/// secure ISP suppresses S*BGP for exactly the destinations where doing so
/// raises its incoming utility, re-evaluated until no ISP changes any
/// suppression.
struct PerDestTurnOffResult {
  std::size_t rounds = 0;
  bool converged = false;
  std::size_t suppressed_pairs = 0;     ///< final (ISP, destination) count
  std::size_t isps_suppressing = 0;     ///< ISPs with >= 1 suppressed dest
  /// suppressed[d] has a 1 for node n iff n runs plain BGP toward d.
  std::vector<std::vector<std::uint8_t>> suppressed;
};

[[nodiscard]] PerDestTurnOffResult run_per_destination_turn_off(
    const AsGraph& graph, const std::vector<std::uint8_t>& secure,
    const SimConfig& cfg, par::ThreadPool& pool, std::size_t max_rounds = 20);

}  // namespace sbgp::core
