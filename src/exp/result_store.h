// Structured result store for sweeps: one JSON object per line (JSONL),
// appended as jobs complete and fsync-free but flushed per record, so a
// killed sweep loses at most the record being written. Checkpoint/resume
// works by keying every record on (spec hash, job id): reloading the store
// tells the scheduler which jobs of a spec already have an "ok" record and
// can be skipped. The loader tolerates a truncated trailing line (the
// kill-mid-write case) by skipping anything that fails to parse.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "exp/json.h"

namespace sbgp::exp {

/// One job's outcome. The *deterministic* payload (outcome through
/// frac_isps) depends only on the job parameters; wall_ms and attempts are
/// timing metadata and are excluded from `canonical_row`, which is what the
/// serial-vs-parallel and resume equivalence guarantees are stated over.
struct JobRecord {
  std::uint64_t spec_hash = 0;
  std::size_t job_id = 0;
  std::string job_key;
  std::string status;  ///< "ok" | "failed" | "timeout"
  std::string error;   ///< non-empty for failed/timeout
  int attempts = 1;
  double wall_ms = 0.0;

  // Deterministic result payload (meaningful when status == "ok").
  std::string outcome;
  std::size_t rounds = 0;
  std::size_t secure_ases = 0;
  std::size_t secure_isps = 0;
  std::size_t num_ases = 0;
  std::size_t num_isps = 0;
  double frac_ases = 0.0;
  double frac_isps = 0.0;

  // Attack-scenario payload, present iff the job carried a scenario
  // (scenario_key non-empty). Serialised only when present, so
  // scenario-free records keep their historical byte layout.
  std::string scenario_key;
  std::size_t scn_pairs = 0;
  double scn_mean_fooled = 0.0;
  double scn_mean_fooled_weight = 0.0;
  double scn_p90_fooled = 0.0;
  std::uint64_t scn_disconnected = 0;
  std::size_t scn_nonconverged = 0;
  bool scn_has_baseline = false;
  double scn_baseline_fooled = 0.0;

  [[nodiscard]] Json to_json() const;
  static JobRecord from_json(const Json& j);

  /// Canonical comma-separated row of the deterministic fields only.
  [[nodiscard]] std::string canonical_row() const;
};

/// Append-only JSONL writer; thread-safe. Opening never truncates.
class ResultStore {
 public:
  explicit ResultStore(std::string path);

  [[nodiscard]] const std::string& path() const { return path_; }

  /// Serialises `r` as one line and flushes. Thread-safe.
  void append(const JobRecord& r);

  /// Loads every parseable record; malformed/truncated lines are skipped
  /// (with a count via `skipped_lines` when non-null). Missing file => {}.
  static std::vector<JobRecord> load(const std::string& path,
                                     std::size_t* skipped_lines = nullptr);

  /// Latest record per job id, restricted to `spec_hash`. "Latest" = last
  /// in file order, so a re-run's record supersedes an earlier failure.
  static std::unordered_map<std::size_t, JobRecord> latest_by_job(
      const std::vector<JobRecord>& records, std::uint64_t spec_hash);

  /// Job ids of `spec_hash` whose latest record is "ok" — the resume set.
  static std::unordered_set<std::size_t> completed_ok(
      const std::vector<JobRecord>& records, std::uint64_t spec_hash);

 private:
  std::string path_;
  std::ofstream out_;
  std::mutex mutex_;
};

/// Result of folding several stores (the fleet's per-worker JSONL files)
/// into one canonical record set.
struct StoreMerge {
  /// Winner per (spec_hash, job_id), sorted by spec_hash then job id.
  std::vector<JobRecord> records;
  std::size_t inputs = 0;         ///< records read across all stores
  std::size_t skipped_lines = 0;  ///< torn lines healed by the loader
  std::size_t duplicates = 0;     ///< extra records folded away
  /// Jobs recorded "ok" more than once — re-executed after a steal or an
  /// expired lease — and how many of those pairs disagreed on their
  /// canonical (deterministic-payload) row. A nonzero mismatch count means
  /// the sweep is not deterministic: always a bug, never expected.
  std::size_t reexecuted_ok = 0;
  std::size_t reconcile_mismatches = 0;
};

/// Merges `paths` (read in order; missing files contribute nothing). An
/// "ok" record beats any failed/timeout record for the same job; between
/// records of equal standing the later read wins, except that the first
/// "ok" is kept and later "ok"s are only *compared* against it (bitwise
/// reconciliation of re-executed jobs). When `spec_hash` is non-null only
/// that spec's records participate.
[[nodiscard]] StoreMerge merge_stores(const std::vector<std::string>& paths,
                                      const std::uint64_t* spec_hash = nullptr);

}  // namespace sbgp::exp
