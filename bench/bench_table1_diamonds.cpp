// Table 1: the number of DIAMONDs — stub destinations for which two ISPs
// compete for an early adopter's traffic (Figure 2's shape) — per early
// adopter in the case-study set.
#include "bench_common.h"
#include "core/analysis.h"
#include "stats/table.h"

int main(int argc, char** argv) {
  using namespace sbgp;
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header("Table 1 - diamonds per early adopter", opt);

  auto net = bench::make_internet(opt);
  const auto& g = net.graph;
  const auto adopters = bench::case_study_adopters(net);
  par::ThreadPool pool(opt.threads);
  const auto counts = core::count_diamonds(g, adopters, pool);

  stats::Table t({"early adopter", "class", "degree", "contested stub dests",
                  "strict diamonds (both competitors provide the stub)"});
  for (const auto& c : counts) {
    t.begin_row();
    t.add("AS" + std::to_string(g.asn(c.adopter)));
    t.add(std::string(topo::to_string(g.cls(c.adopter))));
    t.add(g.degree(c.adopter));
    t.add(static_cast<unsigned long long>(c.diamonds));
    t.add(static_cast<unsigned long long>(c.strict_diamonds));
  }
  t.print(std::cout);
  bench::print_paper_note(
      "Table 1 counts diamonds involving two ISPs, a stub and one early "
      "adopter; the DIAMOND scenario is 'quite common' in the 36K-AS graph.");
  return 0;
}
