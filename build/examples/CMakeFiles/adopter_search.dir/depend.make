# Empty dependencies file for adopter_search.
# This may be replaced when dependencies are built.
