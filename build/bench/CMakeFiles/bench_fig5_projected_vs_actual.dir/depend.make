# Empty dependencies file for bench_fig5_projected_vs_actual.
# This may be replaced when dependencies are built.
